# Empty compiler generated dependencies file for pmp_common.
# This may be replaced when dependencies are built.
