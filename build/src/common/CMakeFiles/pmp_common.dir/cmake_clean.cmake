file(REMOVE_RECURSE
  "CMakeFiles/pmp_common.dir/bytes.cpp.o"
  "CMakeFiles/pmp_common.dir/bytes.cpp.o.d"
  "CMakeFiles/pmp_common.dir/error.cpp.o"
  "CMakeFiles/pmp_common.dir/error.cpp.o.d"
  "CMakeFiles/pmp_common.dir/log.cpp.o"
  "CMakeFiles/pmp_common.dir/log.cpp.o.d"
  "libpmp_common.a"
  "libpmp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
