file(REMOVE_RECURSE
  "libpmp_common.a"
)
