# Empty compiler generated dependencies file for pmp_tspace.
# This may be replaced when dependencies are built.
