file(REMOVE_RECURSE
  "libpmp_tspace.a"
)
