file(REMOVE_RECURSE
  "CMakeFiles/pmp_tspace.dir/remote.cpp.o"
  "CMakeFiles/pmp_tspace.dir/remote.cpp.o.d"
  "CMakeFiles/pmp_tspace.dir/tuplespace.cpp.o"
  "CMakeFiles/pmp_tspace.dir/tuplespace.cpp.o.d"
  "libpmp_tspace.a"
  "libpmp_tspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_tspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
