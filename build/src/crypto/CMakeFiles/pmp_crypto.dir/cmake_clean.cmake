file(REMOVE_RECURSE
  "CMakeFiles/pmp_crypto.dir/hmac.cpp.o"
  "CMakeFiles/pmp_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/pmp_crypto.dir/sha256.cpp.o"
  "CMakeFiles/pmp_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/pmp_crypto.dir/trust.cpp.o"
  "CMakeFiles/pmp_crypto.dir/trust.cpp.o.d"
  "libpmp_crypto.a"
  "libpmp_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
