# Empty compiler generated dependencies file for pmp_crypto.
# This may be replaced when dependencies are built.
