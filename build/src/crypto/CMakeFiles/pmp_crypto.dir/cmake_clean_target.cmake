file(REMOVE_RECURSE
  "libpmp_crypto.a"
)
