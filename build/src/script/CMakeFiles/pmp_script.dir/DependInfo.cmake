
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/script/check.cpp" "src/script/CMakeFiles/pmp_script.dir/check.cpp.o" "gcc" "src/script/CMakeFiles/pmp_script.dir/check.cpp.o.d"
  "/root/repo/src/script/interp.cpp" "src/script/CMakeFiles/pmp_script.dir/interp.cpp.o" "gcc" "src/script/CMakeFiles/pmp_script.dir/interp.cpp.o.d"
  "/root/repo/src/script/lexer.cpp" "src/script/CMakeFiles/pmp_script.dir/lexer.cpp.o" "gcc" "src/script/CMakeFiles/pmp_script.dir/lexer.cpp.o.d"
  "/root/repo/src/script/parser.cpp" "src/script/CMakeFiles/pmp_script.dir/parser.cpp.o" "gcc" "src/script/CMakeFiles/pmp_script.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/pmp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
