# Empty compiler generated dependencies file for pmp_script.
# This may be replaced when dependencies are built.
