file(REMOVE_RECURSE
  "libpmp_script.a"
)
