file(REMOVE_RECURSE
  "CMakeFiles/pmp_script.dir/check.cpp.o"
  "CMakeFiles/pmp_script.dir/check.cpp.o.d"
  "CMakeFiles/pmp_script.dir/interp.cpp.o"
  "CMakeFiles/pmp_script.dir/interp.cpp.o.d"
  "CMakeFiles/pmp_script.dir/lexer.cpp.o"
  "CMakeFiles/pmp_script.dir/lexer.cpp.o.d"
  "CMakeFiles/pmp_script.dir/parser.cpp.o"
  "CMakeFiles/pmp_script.dir/parser.cpp.o.d"
  "libpmp_script.a"
  "libpmp_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
