# Empty compiler generated dependencies file for pmp_disco.
# This may be replaced when dependencies are built.
