
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disco/lookup.cpp" "src/disco/CMakeFiles/pmp_disco.dir/lookup.cpp.o" "gcc" "src/disco/CMakeFiles/pmp_disco.dir/lookup.cpp.o.d"
  "/root/repo/src/disco/registrar.cpp" "src/disco/CMakeFiles/pmp_disco.dir/registrar.cpp.o" "gcc" "src/disco/CMakeFiles/pmp_disco.dir/registrar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rt/CMakeFiles/pmp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pmp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
