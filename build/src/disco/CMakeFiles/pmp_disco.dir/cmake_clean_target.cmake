file(REMOVE_RECURSE
  "libpmp_disco.a"
)
