file(REMOVE_RECURSE
  "CMakeFiles/pmp_disco.dir/lookup.cpp.o"
  "CMakeFiles/pmp_disco.dir/lookup.cpp.o.d"
  "CMakeFiles/pmp_disco.dir/registrar.cpp.o"
  "CMakeFiles/pmp_disco.dir/registrar.cpp.o.d"
  "libpmp_disco.a"
  "libpmp_disco.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_disco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
