# Empty compiler generated dependencies file for pmp_midas.
# This may be replaced when dependencies are built.
