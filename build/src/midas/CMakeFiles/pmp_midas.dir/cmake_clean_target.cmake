file(REMOVE_RECURSE
  "libpmp_midas.a"
)
