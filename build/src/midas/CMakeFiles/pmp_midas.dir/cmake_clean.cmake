file(REMOVE_RECURSE
  "CMakeFiles/pmp_midas.dir/base.cpp.o"
  "CMakeFiles/pmp_midas.dir/base.cpp.o.d"
  "CMakeFiles/pmp_midas.dir/channel.cpp.o"
  "CMakeFiles/pmp_midas.dir/channel.cpp.o.d"
  "CMakeFiles/pmp_midas.dir/collector.cpp.o"
  "CMakeFiles/pmp_midas.dir/collector.cpp.o.d"
  "CMakeFiles/pmp_midas.dir/federation.cpp.o"
  "CMakeFiles/pmp_midas.dir/federation.cpp.o.d"
  "CMakeFiles/pmp_midas.dir/node.cpp.o"
  "CMakeFiles/pmp_midas.dir/node.cpp.o.d"
  "CMakeFiles/pmp_midas.dir/package.cpp.o"
  "CMakeFiles/pmp_midas.dir/package.cpp.o.d"
  "CMakeFiles/pmp_midas.dir/receiver.cpp.o"
  "CMakeFiles/pmp_midas.dir/receiver.cpp.o.d"
  "libpmp_midas.a"
  "libpmp_midas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_midas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
