# Empty compiler generated dependencies file for pmp_robot.
# This may be replaced when dependencies are built.
