file(REMOVE_RECURSE
  "libpmp_robot.a"
)
