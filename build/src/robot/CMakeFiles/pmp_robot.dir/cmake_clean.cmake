file(REMOVE_RECURSE
  "CMakeFiles/pmp_robot.dir/controller.cpp.o"
  "CMakeFiles/pmp_robot.dir/controller.cpp.o.d"
  "CMakeFiles/pmp_robot.dir/devices.cpp.o"
  "CMakeFiles/pmp_robot.dir/devices.cpp.o.d"
  "CMakeFiles/pmp_robot.dir/plotter.cpp.o"
  "CMakeFiles/pmp_robot.dir/plotter.cpp.o.d"
  "libpmp_robot.a"
  "libpmp_robot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_robot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
