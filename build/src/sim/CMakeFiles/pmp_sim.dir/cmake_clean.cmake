file(REMOVE_RECURSE
  "CMakeFiles/pmp_sim.dir/simulator.cpp.o"
  "CMakeFiles/pmp_sim.dir/simulator.cpp.o.d"
  "libpmp_sim.a"
  "libpmp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
