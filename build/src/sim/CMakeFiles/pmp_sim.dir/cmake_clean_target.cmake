file(REMOVE_RECURSE
  "libpmp_sim.a"
)
