# Empty compiler generated dependencies file for pmp_sim.
# This may be replaced when dependencies are built.
