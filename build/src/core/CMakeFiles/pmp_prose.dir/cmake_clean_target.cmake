file(REMOVE_RECURSE
  "libpmp_prose.a"
)
