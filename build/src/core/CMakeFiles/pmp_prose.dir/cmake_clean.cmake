file(REMOVE_RECURSE
  "CMakeFiles/pmp_prose.dir/aspect.cpp.o"
  "CMakeFiles/pmp_prose.dir/aspect.cpp.o.d"
  "CMakeFiles/pmp_prose.dir/pointcut.cpp.o"
  "CMakeFiles/pmp_prose.dir/pointcut.cpp.o.d"
  "CMakeFiles/pmp_prose.dir/script_aspect.cpp.o"
  "CMakeFiles/pmp_prose.dir/script_aspect.cpp.o.d"
  "CMakeFiles/pmp_prose.dir/weaver.cpp.o"
  "CMakeFiles/pmp_prose.dir/weaver.cpp.o.d"
  "libpmp_prose.a"
  "libpmp_prose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_prose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
