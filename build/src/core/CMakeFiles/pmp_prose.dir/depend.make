# Empty dependencies file for pmp_prose.
# This may be replaced when dependencies are built.
