
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aspect.cpp" "src/core/CMakeFiles/pmp_prose.dir/aspect.cpp.o" "gcc" "src/core/CMakeFiles/pmp_prose.dir/aspect.cpp.o.d"
  "/root/repo/src/core/pointcut.cpp" "src/core/CMakeFiles/pmp_prose.dir/pointcut.cpp.o" "gcc" "src/core/CMakeFiles/pmp_prose.dir/pointcut.cpp.o.d"
  "/root/repo/src/core/script_aspect.cpp" "src/core/CMakeFiles/pmp_prose.dir/script_aspect.cpp.o" "gcc" "src/core/CMakeFiles/pmp_prose.dir/script_aspect.cpp.o.d"
  "/root/repo/src/core/weaver.cpp" "src/core/CMakeFiles/pmp_prose.dir/weaver.cpp.o" "gcc" "src/core/CMakeFiles/pmp_prose.dir/weaver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/pmp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/pmp_script.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
