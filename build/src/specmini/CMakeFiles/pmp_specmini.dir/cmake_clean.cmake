file(REMOVE_RECURSE
  "CMakeFiles/pmp_specmini.dir/suite.cpp.o"
  "CMakeFiles/pmp_specmini.dir/suite.cpp.o.d"
  "libpmp_specmini.a"
  "libpmp_specmini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_specmini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
