file(REMOVE_RECURSE
  "libpmp_specmini.a"
)
