# Empty compiler generated dependencies file for pmp_specmini.
# This may be replaced when dependencies are built.
