file(REMOVE_RECURSE
  "libpmp_db.a"
)
