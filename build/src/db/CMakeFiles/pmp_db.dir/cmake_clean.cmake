file(REMOVE_RECURSE
  "CMakeFiles/pmp_db.dir/store.cpp.o"
  "CMakeFiles/pmp_db.dir/store.cpp.o.d"
  "libpmp_db.a"
  "libpmp_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
