# Empty compiler generated dependencies file for pmp_db.
# This may be replaced when dependencies are built.
