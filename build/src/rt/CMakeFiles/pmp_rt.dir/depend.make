# Empty dependencies file for pmp_rt.
# This may be replaced when dependencies are built.
