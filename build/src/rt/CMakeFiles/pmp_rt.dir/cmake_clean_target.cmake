file(REMOVE_RECURSE
  "libpmp_rt.a"
)
