file(REMOVE_RECURSE
  "CMakeFiles/pmp_rt.dir/object.cpp.o"
  "CMakeFiles/pmp_rt.dir/object.cpp.o.d"
  "CMakeFiles/pmp_rt.dir/rpc.cpp.o"
  "CMakeFiles/pmp_rt.dir/rpc.cpp.o.d"
  "CMakeFiles/pmp_rt.dir/runtime.cpp.o"
  "CMakeFiles/pmp_rt.dir/runtime.cpp.o.d"
  "CMakeFiles/pmp_rt.dir/type.cpp.o"
  "CMakeFiles/pmp_rt.dir/type.cpp.o.d"
  "CMakeFiles/pmp_rt.dir/value.cpp.o"
  "CMakeFiles/pmp_rt.dir/value.cpp.o.d"
  "libpmp_rt.a"
  "libpmp_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
