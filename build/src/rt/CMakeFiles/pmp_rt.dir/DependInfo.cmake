
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/object.cpp" "src/rt/CMakeFiles/pmp_rt.dir/object.cpp.o" "gcc" "src/rt/CMakeFiles/pmp_rt.dir/object.cpp.o.d"
  "/root/repo/src/rt/rpc.cpp" "src/rt/CMakeFiles/pmp_rt.dir/rpc.cpp.o" "gcc" "src/rt/CMakeFiles/pmp_rt.dir/rpc.cpp.o.d"
  "/root/repo/src/rt/runtime.cpp" "src/rt/CMakeFiles/pmp_rt.dir/runtime.cpp.o" "gcc" "src/rt/CMakeFiles/pmp_rt.dir/runtime.cpp.o.d"
  "/root/repo/src/rt/type.cpp" "src/rt/CMakeFiles/pmp_rt.dir/type.cpp.o" "gcc" "src/rt/CMakeFiles/pmp_rt.dir/type.cpp.o.d"
  "/root/repo/src/rt/value.cpp" "src/rt/CMakeFiles/pmp_rt.dir/value.cpp.o" "gcc" "src/rt/CMakeFiles/pmp_rt.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pmp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
