file(REMOVE_RECURSE
  "CMakeFiles/pmp_net.dir/mobility.cpp.o"
  "CMakeFiles/pmp_net.dir/mobility.cpp.o.d"
  "CMakeFiles/pmp_net.dir/network.cpp.o"
  "CMakeFiles/pmp_net.dir/network.cpp.o.d"
  "CMakeFiles/pmp_net.dir/router.cpp.o"
  "CMakeFiles/pmp_net.dir/router.cpp.o.d"
  "libpmp_net.a"
  "libpmp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
