file(REMOVE_RECURSE
  "libpmp_net.a"
)
