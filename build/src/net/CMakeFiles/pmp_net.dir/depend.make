# Empty dependencies file for pmp_net.
# This may be replaced when dependencies are built.
