# Empty compiler generated dependencies file for bench_adaptation_scale.
# This may be replaced when dependencies are built.
