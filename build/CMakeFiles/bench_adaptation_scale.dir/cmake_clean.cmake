file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptation_scale.dir/bench/bench_adaptation_scale.cpp.o"
  "CMakeFiles/bench_adaptation_scale.dir/bench/bench_adaptation_scale.cpp.o.d"
  "bench/bench_adaptation_scale"
  "bench/bench_adaptation_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptation_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
