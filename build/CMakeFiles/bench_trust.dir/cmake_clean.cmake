file(REMOVE_RECURSE
  "CMakeFiles/bench_trust.dir/bench/bench_trust.cpp.o"
  "CMakeFiles/bench_trust.dir/bench/bench_trust.cpp.o.d"
  "bench/bench_trust"
  "bench/bench_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
