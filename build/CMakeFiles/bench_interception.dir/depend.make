# Empty dependencies file for bench_interception.
# This may be replaced when dependencies are built.
