file(REMOVE_RECURSE
  "CMakeFiles/bench_interception.dir/bench/bench_interception.cpp.o"
  "CMakeFiles/bench_interception.dir/bench/bench_interception.cpp.o.d"
  "bench/bench_interception"
  "bench/bench_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
