# Empty dependencies file for bench_script.
# This may be replaced when dependencies are built.
