file(REMOVE_RECURSE
  "CMakeFiles/bench_script.dir/bench/bench_script.cpp.o"
  "CMakeFiles/bench_script.dir/bench/bench_script.cpp.o.d"
  "bench/bench_script"
  "bench/bench_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
