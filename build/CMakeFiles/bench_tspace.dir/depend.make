# Empty dependencies file for bench_tspace.
# This may be replaced when dependencies are built.
