file(REMOVE_RECURSE
  "CMakeFiles/bench_tspace.dir/bench/bench_tspace.cpp.o"
  "CMakeFiles/bench_tspace.dir/bench/bench_tspace.cpp.o.d"
  "bench/bench_tspace"
  "bench/bench_tspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
