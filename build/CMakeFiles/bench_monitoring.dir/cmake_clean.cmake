file(REMOVE_RECURSE
  "CMakeFiles/bench_monitoring.dir/bench/bench_monitoring.cpp.o"
  "CMakeFiles/bench_monitoring.dir/bench/bench_monitoring.cpp.o.d"
  "bench/bench_monitoring"
  "bench/bench_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
