# Empty compiler generated dependencies file for bench_leasing.
# This may be replaced when dependencies are built.
