file(REMOVE_RECURSE
  "CMakeFiles/bench_leasing.dir/bench/bench_leasing.cpp.o"
  "CMakeFiles/bench_leasing.dir/bench/bench_leasing.cpp.o.d"
  "bench/bench_leasing"
  "bench/bench_leasing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leasing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
