file(REMOVE_RECURSE
  "CMakeFiles/bench_callpath.dir/bench/bench_callpath.cpp.o"
  "CMakeFiles/bench_callpath.dir/bench/bench_callpath.cpp.o.d"
  "bench/bench_callpath"
  "bench/bench_callpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_callpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
