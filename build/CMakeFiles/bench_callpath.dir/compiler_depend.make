# Empty compiler generated dependencies file for bench_callpath.
# This may be replaced when dependencies are built.
