file(REMOVE_RECURSE
  "CMakeFiles/bench_db.dir/bench/bench_db.cpp.o"
  "CMakeFiles/bench_db.dir/bench/bench_db.cpp.o.d"
  "bench/bench_db"
  "bench/bench_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
