# Empty dependencies file for bench_db.
# This may be replaced when dependencies are built.
