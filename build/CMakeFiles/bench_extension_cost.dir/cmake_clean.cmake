file(REMOVE_RECURSE
  "CMakeFiles/bench_extension_cost.dir/bench/bench_extension_cost.cpp.o"
  "CMakeFiles/bench_extension_cost.dir/bench/bench_extension_cost.cpp.o.d"
  "bench/bench_extension_cost"
  "bench/bench_extension_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extension_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
