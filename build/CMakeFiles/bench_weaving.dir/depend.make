# Empty dependencies file for bench_weaving.
# This may be replaced when dependencies are built.
