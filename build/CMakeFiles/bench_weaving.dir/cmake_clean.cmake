file(REMOVE_RECURSE
  "CMakeFiles/bench_weaving.dir/bench/bench_weaving.cpp.o"
  "CMakeFiles/bench_weaving.dir/bench/bench_weaving.cpp.o.d"
  "bench/bench_weaving"
  "bench/bench_weaving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_weaving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
