# Empty dependencies file for bench_platform_overhead.
# This may be replaced when dependencies are built.
