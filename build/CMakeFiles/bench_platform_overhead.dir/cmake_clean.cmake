file(REMOVE_RECURSE
  "CMakeFiles/bench_platform_overhead.dir/bench/bench_platform_overhead.cpp.o"
  "CMakeFiles/bench_platform_overhead.dir/bench/bench_platform_overhead.cpp.o.d"
  "bench/bench_platform_overhead"
  "bench/bench_platform_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_platform_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
