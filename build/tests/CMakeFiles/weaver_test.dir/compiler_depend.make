# Empty compiler generated dependencies file for weaver_test.
# This may be replaced when dependencies are built.
