file(REMOVE_RECURSE
  "CMakeFiles/weaver_test.dir/weaver_test.cpp.o"
  "CMakeFiles/weaver_test.dir/weaver_test.cpp.o.d"
  "weaver_test"
  "weaver_test.pdb"
  "weaver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weaver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
