# Empty dependencies file for disco_test.
# This may be replaced when dependencies are built.
