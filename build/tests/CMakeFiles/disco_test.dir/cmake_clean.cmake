file(REMOVE_RECURSE
  "CMakeFiles/disco_test.dir/disco_test.cpp.o"
  "CMakeFiles/disco_test.dir/disco_test.cpp.o.d"
  "disco_test"
  "disco_test.pdb"
  "disco_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disco_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
