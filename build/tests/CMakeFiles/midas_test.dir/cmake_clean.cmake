file(REMOVE_RECURSE
  "CMakeFiles/midas_test.dir/midas_test.cpp.o"
  "CMakeFiles/midas_test.dir/midas_test.cpp.o.d"
  "midas_test"
  "midas_test.pdb"
  "midas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
