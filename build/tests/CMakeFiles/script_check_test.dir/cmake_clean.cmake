file(REMOVE_RECURSE
  "CMakeFiles/script_check_test.dir/script_check_test.cpp.o"
  "CMakeFiles/script_check_test.dir/script_check_test.cpp.o.d"
  "script_check_test"
  "script_check_test.pdb"
  "script_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
