# Empty compiler generated dependencies file for script_check_test.
# This may be replaced when dependencies are built.
