file(REMOVE_RECURSE
  "CMakeFiles/robot_test.dir/robot_test.cpp.o"
  "CMakeFiles/robot_test.dir/robot_test.cpp.o.d"
  "robot_test"
  "robot_test.pdb"
  "robot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
