file(REMOVE_RECURSE
  "CMakeFiles/tspace_test.dir/tspace_test.cpp.o"
  "CMakeFiles/tspace_test.dir/tspace_test.cpp.o.d"
  "tspace_test"
  "tspace_test.pdb"
  "tspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
