file(REMOVE_RECURSE
  "CMakeFiles/script_aspect_test.dir/script_aspect_test.cpp.o"
  "CMakeFiles/script_aspect_test.dir/script_aspect_test.cpp.o.d"
  "script_aspect_test"
  "script_aspect_test.pdb"
  "script_aspect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/script_aspect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
