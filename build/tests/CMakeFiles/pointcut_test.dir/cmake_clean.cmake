file(REMOVE_RECURSE
  "CMakeFiles/pointcut_test.dir/pointcut_test.cpp.o"
  "CMakeFiles/pointcut_test.dir/pointcut_test.cpp.o.d"
  "pointcut_test"
  "pointcut_test.pdb"
  "pointcut_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointcut_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
