# Empty compiler generated dependencies file for pointcut_test.
# This may be replaced when dependencies are built.
