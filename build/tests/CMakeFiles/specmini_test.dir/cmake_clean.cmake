file(REMOVE_RECURSE
  "CMakeFiles/specmini_test.dir/specmini_test.cpp.o"
  "CMakeFiles/specmini_test.dir/specmini_test.cpp.o.d"
  "specmini_test"
  "specmini_test.pdb"
  "specmini_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specmini_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
