# Empty dependencies file for specmini_test.
# This may be replaced when dependencies are built.
