# Empty dependencies file for midas_package_test.
# This may be replaced when dependencies are built.
