file(REMOVE_RECURSE
  "CMakeFiles/midas_package_test.dir/midas_package_test.cpp.o"
  "CMakeFiles/midas_package_test.dir/midas_package_test.cpp.o.d"
  "midas_package_test"
  "midas_package_test.pdb"
  "midas_package_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/midas_package_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
