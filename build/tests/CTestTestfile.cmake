# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/rt_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/script_test[1]_include.cmake")
include("/root/repo/build/tests/script_check_test[1]_include.cmake")
include("/root/repo/build/tests/pointcut_test[1]_include.cmake")
include("/root/repo/build/tests/weaver_test[1]_include.cmake")
include("/root/repo/build/tests/script_aspect_test[1]_include.cmake")
include("/root/repo/build/tests/disco_test[1]_include.cmake")
include("/root/repo/build/tests/midas_package_test[1]_include.cmake")
include("/root/repo/build/tests/midas_test[1]_include.cmake")
include("/root/repo/build/tests/robot_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/specmini_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/tspace_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
