# Empty dependencies file for tuple_hall.
# This may be replaced when dependencies are built.
