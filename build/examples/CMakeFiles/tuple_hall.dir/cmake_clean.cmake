file(REMOVE_RECURSE
  "CMakeFiles/tuple_hall.dir/tuple_hall.cpp.o"
  "CMakeFiles/tuple_hall.dir/tuple_hall.cpp.o.d"
  "tuple_hall"
  "tuple_hall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_hall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
