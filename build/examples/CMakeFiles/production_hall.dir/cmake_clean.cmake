file(REMOVE_RECURSE
  "CMakeFiles/production_hall.dir/production_hall.cpp.o"
  "CMakeFiles/production_hall.dir/production_hall.cpp.o.d"
  "production_hall"
  "production_hall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_hall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
