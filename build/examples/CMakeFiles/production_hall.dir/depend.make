# Empty dependencies file for production_hall.
# This may be replaced when dependencies are built.
