file(REMOVE_RECURSE
  "CMakeFiles/plotter_draw.dir/plotter_draw.cpp.o"
  "CMakeFiles/plotter_draw.dir/plotter_draw.cpp.o.d"
  "plotter_draw"
  "plotter_draw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plotter_draw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
