# Empty compiler generated dependencies file for plotter_draw.
# This may be replaced when dependencies are built.
