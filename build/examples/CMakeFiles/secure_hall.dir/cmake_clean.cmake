file(REMOVE_RECURSE
  "CMakeFiles/secure_hall.dir/secure_hall.cpp.o"
  "CMakeFiles/secure_hall.dir/secure_hall.cpp.o.d"
  "secure_hall"
  "secure_hall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_hall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
