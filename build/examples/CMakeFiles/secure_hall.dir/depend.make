# Empty dependencies file for secure_hall.
# This may be replaced when dependencies are built.
