file(REMOVE_RECURSE
  "CMakeFiles/adhoc_peers.dir/adhoc_peers.cpp.o"
  "CMakeFiles/adhoc_peers.dir/adhoc_peers.cpp.o.d"
  "adhoc_peers"
  "adhoc_peers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adhoc_peers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
