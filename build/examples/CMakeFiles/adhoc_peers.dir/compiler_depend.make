# Empty compiler generated dependencies file for adhoc_peers.
# This may be replaced when dependencies are built.
