# Empty dependencies file for monitor_tool.
# This may be replaced when dependencies are built.
