file(REMOVE_RECURSE
  "CMakeFiles/monitor_tool.dir/monitor_tool.cpp.o"
  "CMakeFiles/monitor_tool.dir/monitor_tool.cpp.o.d"
  "monitor_tool"
  "monitor_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
