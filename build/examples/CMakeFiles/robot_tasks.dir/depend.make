# Empty dependencies file for robot_tasks.
# This may be replaced when dependencies are built.
