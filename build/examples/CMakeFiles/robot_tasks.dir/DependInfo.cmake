
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/robot_tasks.cpp" "examples/CMakeFiles/robot_tasks.dir/robot_tasks.cpp.o" "gcc" "examples/CMakeFiles/robot_tasks.dir/robot_tasks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pmp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pmp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pmp_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pmp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/pmp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/pmp_script.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pmp_prose.dir/DependInfo.cmake"
  "/root/repo/build/src/disco/CMakeFiles/pmp_disco.dir/DependInfo.cmake"
  "/root/repo/build/src/midas/CMakeFiles/pmp_midas.dir/DependInfo.cmake"
  "/root/repo/build/src/robot/CMakeFiles/pmp_robot.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/pmp_db.dir/DependInfo.cmake"
  "/root/repo/build/src/specmini/CMakeFiles/pmp_specmini.dir/DependInfo.cmake"
  "/root/repo/build/src/tspace/CMakeFiles/pmp_tspace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
