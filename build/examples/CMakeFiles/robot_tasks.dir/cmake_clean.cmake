file(REMOVE_RECURSE
  "CMakeFiles/robot_tasks.dir/robot_tasks.cpp.o"
  "CMakeFiles/robot_tasks.dir/robot_tasks.cpp.o.d"
  "robot_tasks"
  "robot_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robot_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
