// E3 (paper §4.6): whole-program cost of carrying the adaptation platform.
//
// Paper: "When no extensions are added, an overhead of about 7% (measured
// using a SPECjvm benchmark) could be observed." We run the specmini suite
// (our SPECjvm98 stand-in; DESIGN.md E3) in three configurations:
//
//   baseline   — dispatch without the minimal hook (platform absent)
//   hooks-on   — minimal hook present, nothing woven  <- the 7% experiment
//   noop-woven — a do-nothing extension trapping every kernel method
//                (suite-level view of E2)
//
// and report per-kernel and geomean slowdowns.
// A second section prices the observability layer itself (PR 1): the same
// suite dispatched through invoke_no_obs (the pre-instrumentation hot path),
// through invoke with the obs flag off (compiled-in-but-idle), and with it
// on. The idle column is the tax every user pays for having metrics
// available; it must stay within noise (<2%).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>

#include "smoke.h"

#include "core/weaver.h"
#include "net/admission.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "specmini/suite.h"

namespace {

using namespace pmp;
using specmini::DispatchMode;
using specmini::Suite;

std::uint64_t kScale = 300'000;
int kRepeats = 9;

double run_once(Suite& suite, const std::string& kernel, DispatchMode mode) {
    auto start = std::chrono::steady_clock::now();
    auto result = suite.run(kernel, kScale, mode);
    auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(result.checksum);
    return std::chrono::duration<double>(stop - start).count();
}

/// Best-of-N wall times for both modes, strictly interleaved so slow drift
/// on a shared vCPU (noisy neighbours, frequency scaling) hits both modes
/// equally instead of biasing whichever ran later.
std::pair<double, double> measure_pair(Suite& suite, const std::string& kernel) {
    double best_base = 1e9, best_hooked = 1e9;
    for (int i = 0; i < kRepeats; ++i) {
        best_base = std::min(best_base, run_once(suite, kernel, DispatchMode::kUnhooked));
        best_hooked = std::min(best_hooked, run_once(suite, kernel, DispatchMode::kHooked));
    }
    return {best_base, best_hooked};
}

double measure(Suite& suite, const std::string& kernel, DispatchMode mode) {
    double best = 1e9;
    for (int i = 0; i < kRepeats; ++i) {
        best = std::min(best, run_once(suite, kernel, mode));
    }
    return best;
}

}  // namespace

int main(int argc, char** argv) {
    if (pmp::bench::strip_smoke(argc, argv)) {
        kScale = 20'000;
        kRepeats = 1;
    }
    rt::Runtime runtime("bench");
    prose::Weaver weaver(runtime);
    Suite suite(runtime);

    // The headline table reproduces the paper's experiment; keep the obs
    // counters out of it so the hooks-on column measures the minimal hook
    // alone. The ablation section below prices the counters separately.
    obs::set_enabled(false);

    printf("=== E3: platform overhead on the specmini suite "
           "(paper: ~7%% on SPECjvm, hooks on / nothing woven) ===\n");
    printf("scale: %llu dispatched calls per kernel, best of %d runs\n\n",
           static_cast<unsigned long long>(kScale), kRepeats);
    printf("%-10s %12s %12s %9s %14s %9s\n", "kernel", "baseline(s)", "hooks-on(s)",
           "overhead", "noop-woven(s)", "overhead");

    double geo_hooks = 1.0, geo_noop = 1.0;
    int n = 0;
    for (const std::string& kernel : Suite::kernel_names()) {
        // Warm up once per kernel.
        run_once(suite, kernel, DispatchMode::kUnhooked);

        auto [baseline, hooks_on] = measure_pair(suite, kernel);

        auto aspect = std::make_shared<prose::Aspect>("noop");
        aspect->before("call(* Spec*.*(..))", [](rt::CallFrame&) {});
        AspectId id = weaver.weave(aspect);
        double noop = measure(suite, kernel, DispatchMode::kHooked);
        weaver.withdraw(id);

        double oh_hooks = hooks_on / baseline - 1.0;
        double oh_noop = noop / baseline - 1.0;
        geo_hooks *= hooks_on / baseline;
        geo_noop *= noop / baseline;
        ++n;
        printf("%-10s %12.4f %12.4f %8.1f%% %14.4f %8.1f%%\n", kernel.c_str(), baseline,
               hooks_on, oh_hooks * 100, noop, oh_noop * 100);
    }
    printf("\n%-10s %34.1f%% %23.1f%%\n", "geomean",
           (std::pow(geo_hooks, 1.0 / n) - 1.0) * 100,
           (std::pow(geo_noop, 1.0 / n) - 1.0) * 100);
    printf("\npaper reference: hooks-on geomean ~7%% (JIT stub bloat on a 500MHz P2); the\n"
           "shape to check is: hooks-on is a small single-digit tax, noop-woven adds a\n"
           "per-call constant on every intercepted method.\n");

    // --- instrumentation ablation: what do the obs counters themselves cost?
    //
    //   no-obs  — invoke_no_obs: hooked dispatch exactly as before this
    //             instrumentation existed (the pre-PR baseline)
    //   idle    — invoke with obs disabled: counters compiled in, flag off
    //   enabled — invoke with obs enabled: counters counting
    printf("\n=== instrumentation ablation: cost of the obs counters on hooked dispatch ===\n");
    printf("%-10s %12s %12s %9s %12s %9s\n", "kernel", "no-obs(s)", "idle(s)", "overhead",
           "enabled(s)", "overhead");

    double geo_idle = 1.0, geo_enabled = 1.0;
    n = 0;
    for (const std::string& kernel : Suite::kernel_names()) {
        run_once(suite, kernel, DispatchMode::kHookedNoObs);  // warm up

        double no_obs = 1e9, idle = 1e9, on = 1e9;
        for (int i = 0; i < kRepeats; ++i) {
            no_obs = std::min(no_obs, run_once(suite, kernel, DispatchMode::kHookedNoObs));
            obs::set_enabled(false);
            idle = std::min(idle, run_once(suite, kernel, DispatchMode::kHooked));
            obs::set_enabled(true);
            on = std::min(on, run_once(suite, kernel, DispatchMode::kHooked));
            obs::set_enabled(false);
        }

        geo_idle *= idle / no_obs;
        geo_enabled *= on / no_obs;
        ++n;
        printf("%-10s %12.4f %12.4f %8.1f%% %12.4f %8.1f%%\n", kernel.c_str(), no_obs, idle,
               (idle / no_obs - 1.0) * 100, on, (on / no_obs - 1.0) * 100);
    }
    double idle_overhead = (std::pow(geo_idle, 1.0 / n) - 1.0) * 100;
    printf("\n%-10s %22.1f%% %21.1f%%\n", "geomean", idle_overhead,
           (std::pow(geo_enabled, 1.0 / n) - 1.0) * 100);
    printf("\nidle-instrumentation overhead: %.1f%% (target: < 2%% — metrics must be\n"
           "cheap enough to leave compiled into the interception hot path)\n",
           idle_overhead);

    // --- overload-protection ablation: the robustness layer's hot-path tax.
    //
    // Two mechanisms sit on paths that matter when nothing is wrong: the
    // governor's dispatch gate runs before every woven advice, and the
    // admission queue fronts every inbound rpc dispatch. Both must be
    // invisible on an unloaded node (<2%) or they could not default on.
    printf("\n=== overload ablation: governor gate + admission on the unloaded path ===\n");
    printf("%-10s %12s %12s %9s\n", "kernel", "no-gate(s)", "gated(s)", "overhead");
    auto noop_aspect = std::make_shared<prose::Aspect>("noop");
    noop_aspect->before("call(* Spec*.*(..))", [](rt::CallFrame&) {});
    AspectId gate_id = weaver.weave(noop_aspect);
    double geo_gate = 1.0;
    n = 0;
    for (const std::string& kernel : Suite::kernel_names()) {
        run_once(suite, kernel, DispatchMode::kHooked);  // warm up
        double ungated = 1e9, gated = 1e9;
        for (int i = 0; i < kRepeats; ++i) {
            weaver.set_dispatch_gate(nullptr);
            ungated = std::min(ungated, run_once(suite, kernel, DispatchMode::kHooked));
            weaver.set_dispatch_gate([](AspectId) { return true; });
            gated = std::min(gated, run_once(suite, kernel, DispatchMode::kHooked));
        }
        weaver.set_dispatch_gate(nullptr);
        geo_gate *= gated / ungated;
        ++n;
        printf("%-10s %12.4f %12.4f %8.1f%%\n", kernel.c_str(), ungated, gated,
               (gated / ungated - 1.0) * 100);
    }
    weaver.withdraw(gate_id);
    double gate_overhead = (std::pow(geo_gate, 1.0 / n) - 1.0) * 100;
    printf("\ngovernor-gate overhead on woven noop dispatch: %.1f%% (target: < 2%%)\n",
           gate_overhead);

    // Admission fast path: offer() with tokens on hand and empty queues,
    // against calling the same work directly.
    {
        sim::Simulator sim;
        net::AdmissionConfig ac;
        ac.rate_per_sec = 1e9;  // never the bottleneck: this is the happy path
        ac.burst = 1e9;
        net::AdmissionQueue queue(sim, ac);
        const int ops = kRepeats == 1 ? 20'000 : 2'000'000;
        std::uint64_t counter = 0;

        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < ops; ++i) benchmark::DoNotOptimize(++counter);
        auto t1 = std::chrono::steady_clock::now();
        for (int i = 0; i < ops; ++i) {
            queue.offer(net::AdmitClass::kApp,
                        [&counter] { benchmark::DoNotOptimize(++counter); });
        }
        auto t2 = std::chrono::steady_clock::now();

        double direct_ns =
            std::chrono::duration<double, std::nano>(t1 - t0).count() / ops;
        double offered_ns =
            std::chrono::duration<double, std::nano>(t2 - t1).count() / ops;
        printf("\nadmission fast path: direct %.1f ns/op, via offer() %.1f ns/op "
               "(+%.1f ns)\n",
               direct_ns, offered_ns, offered_ns - direct_ns);
        printf("(an rpc dispatch costs microseconds; tens of ns at admission is "
               "noise)\n");
    }
    // --- tracing ablation: what does causal tracing cost (PR 6)?
    //
    // The trace ring stays on permanently, so it must be absent from the
    // per-call hot path: with detail off (the default) spans are recorded
    // at platform operations only — weave, rpc round-trips, package push —
    // never per dispatched call. Three measurements:
    //   1. the hooked suite with tracing on vs. obs idle — the whole-
    //      program bound the ISSUE promises (< 2%, detail off)
    //   2. woven noop dispatch, detail off vs. detail on — what flipping
    //      the debugging tier actually buys you into
    //   3. the raw span cost on a warm ring — what each platform
    //      operation pays to be traced
    printf("\n=== tracing ablation: causal tracing on the hooked suite ===\n");
    printf("%-10s %12s %14s %9s\n", "kernel", "obs-idle(s)", "tracing-on(s)", "overhead");
    double geo_traced = 1.0;
    n = 0;
    for (const std::string& kernel : Suite::kernel_names()) {
        run_once(suite, kernel, DispatchMode::kHooked);  // warm up
        double idle = 1e9, traced = 1e9;
        for (int i = 0; i < kRepeats; ++i) {
            obs::set_enabled(false);
            idle = std::min(idle, run_once(suite, kernel, DispatchMode::kHooked));
            obs::set_enabled(true);
            obs::TraceBuffer::global().set_detail(false);
            traced = std::min(traced, run_once(suite, kernel, DispatchMode::kHooked));
            obs::set_enabled(false);
        }
        geo_traced *= traced / idle;
        ++n;
        printf("%-10s %12.4f %14.4f %8.1f%%\n", kernel.c_str(), idle, traced,
               (traced / idle - 1.0) * 100);
    }
    double traced_overhead = (std::pow(geo_traced, 1.0 / n) - 1.0) * 100;
    printf("\ntracing-on overhead (detail off): %.1f%% (target: < 2%% — spans live at\n"
           "platform operations, not on the dispatch hot path, so leaving the trace\n"
           "ring on permanently costs what the idle counters cost)\n",
           traced_overhead);

    // Detail tier: per-advice spans on a woven noop, the worst case (the
    // advice body is free, so the span machinery is the whole bill).
    obs::set_enabled(true);
    auto traced_aspect = std::make_shared<prose::Aspect>("noop");
    traced_aspect->before("call(* Spec*.*(..))", [](rt::CallFrame&) {});
    AspectId traced_id = weaver.weave(traced_aspect);
    printf("\n%-10s %14s %14s %9s\n", "kernel", "detail-off(s)", "detail-on(s)",
           "overhead");
    double geo_detail = 1.0;
    n = 0;
    for (const std::string& kernel : Suite::kernel_names()) {
        run_once(suite, kernel, DispatchMode::kHooked);  // warm up
        double off = 1e9, on = 1e9;
        for (int i = 0; i < kRepeats; ++i) {
            obs::TraceBuffer::global().set_detail(false);
            off = std::min(off, run_once(suite, kernel, DispatchMode::kHooked));
            obs::TraceBuffer::global().set_detail(true);
            on = std::min(on, run_once(suite, kernel, DispatchMode::kHooked));
            obs::TraceBuffer::global().set_detail(false);
        }
        geo_detail *= on / off;
        ++n;
        printf("%-10s %14.4f %14.4f %8.1f%%\n", kernel.c_str(), off, on,
               (on / off - 1.0) * 100);
    }
    weaver.withdraw(traced_id);
    printf("\ndetail-span overhead on woven noop dispatch: %.1f%% (the debugging tier:\n"
           "flip obs::TraceBuffer::set_detail(true) only while chasing a dispatch bug)\n",
           (std::pow(geo_detail, 1.0 / n) - 1.0) * 100);

    // Raw span cost: what one traced platform operation pays.
    {
        auto& tb = obs::TraceBuffer::global();
        tb.clear();
        const int ops = kRepeats == 1 ? 20'000 : 1'000'000;
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < ops; ++i) {
            std::uint64_t s = tb.begin_span("bench", "span");
            tb.end_span(s);
        }
        auto t1 = std::chrono::steady_clock::now();
        double span_ns = std::chrono::duration<double, std::nano>(t1 - t0).count() / ops;
        printf("\nspan begin+end on a warm ring: %.0f ns/op (a weave costs ~µs, an rpc\n"
               "round-trip ~ms of simulated time — span bookkeeping is noise there)\n",
               span_ns);
        tb.clear();
    }

    obs::set_enabled(true);
    return 0;
}
