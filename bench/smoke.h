// --smoke: CI-grade token runs of the bench binaries.
//
// A benchmark that only runs on a release engineer's laptop rots; CI runs
// every bench with `--smoke` so a binary that crashes, hangs, or trips a
// sanitizer is caught on the PR that broke it. Smoke mode proves the
// binaries execute end to end — the numbers it prints are meaningless.
//
//   google-benchmark mains:  int main(int argc, char** argv) {
//                                return pmp::bench::run_main(argc, argv);
//                            }
//   custom mains:            const bool smoke = pmp::bench::strip_smoke(argc, argv);
//                            ...collapse repeat/scale constants when set...
#pragma once

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

namespace pmp::bench {

/// Remove `--smoke` from argv if present; returns whether it was there.
inline bool strip_smoke(int& argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
            --argc;
            return true;
        }
    }
    return false;
}

/// Initialize google-benchmark, honouring `--smoke`: the flag collapses
/// every measurement to a token window. For benches that drive
/// RunSpecifiedBenchmarks themselves (custom reporters).
inline void init(int argc, char** argv) {
    static char min_time[] = "--benchmark_min_time=0.001";
    std::vector<char*> args(argv, argv + argc);
    if (strip_smoke(argc, argv)) {
        args.assign(argv, argv + argc);
        args.insert(args.begin() + 1, min_time);
    }
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
}

/// Drop-in replacement for BENCHMARK_MAIN().
inline int run_main(int argc, char** argv) {
    init(argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

}  // namespace pmp::bench
