// E8 / Fig 6: the hall database behind the monitoring tool.
//
// Measures the store operations the Fig 6 applications lean on: appending
// intercepted actions, querying a robot's action list, filtering by time
// range, listing sources, and replay-cursor iteration.
#include <benchmark/benchmark.h>

#include "smoke.h"

#include "db/store.h"

namespace {

using namespace pmp;
using rt::Dict;
using rt::Value;

Value motor_action(int i) {
    return Value{Dict{{"device", Value{"motor:x"}},
                      {"action", Value{"rotate"}},
                      {"degrees", Value{static_cast<double>(i % 360)}}}};
}

db::EventStore populated(int records, int robots) {
    db::EventStore store;
    for (int i = 0; i < records; ++i) {
        store.append("robot:" + std::to_string(i % robots), SimTime{i * 1'000'000},
                     motor_action(i));
    }
    return store;
}

void BM_Append(benchmark::State& state) {
    db::EventStore store;
    std::int64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            store.append("robot:1:1", SimTime{++i * 1'000'000}, motor_action(i)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Append);

void BM_QueryBySource(benchmark::State& state) {
    auto store = populated(static_cast<int>(state.range(0)), 8);
    db::Query q;
    q.source = "robot:3";
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.query(q));
    }
    state.counters["records"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_QueryBySource)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_QueryTimeRange(benchmark::State& state) {
    auto store = populated(static_cast<int>(state.range(0)), 8);
    db::Query q;
    q.from = SimTime{state.range(0) * 250'000};
    q.until = SimTime{state.range(0) * 750'000};
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.query(q));
    }
}
BENCHMARK(BM_QueryTimeRange)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_QueryWithLimit(benchmark::State& state) {
    auto store = populated(100'000, 8);
    db::Query q;
    q.source = "robot:1";
    q.limit = 20;  // the Fig 6 list panel shows a page at a time
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.query(q));
    }
}
BENCHMARK(BM_QueryWithLimit);

void BM_Sources(benchmark::State& state) {
    auto store = populated(static_cast<int>(state.range(0)), 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.sources());
    }
}
BENCHMARK(BM_Sources)->Arg(1'000)->Arg(100'000);

void BM_ReplayCursor(benchmark::State& state) {
    auto store = populated(static_cast<int>(state.range(0)), 4);
    db::Query q;
    q.source = "robot:1";
    auto records = store.query(q);
    for (auto _ : state) {
        db::ReplayCursor cursor(records);
        std::int64_t acc = 0;
        while (!cursor.done()) {
            acc += cursor.gap_before_next().count();
            cursor.next();
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ReplayCursor)->Arg(4'000)->Arg(40'000);

}  // namespace

int main(int argc, char** argv) { return pmp::bench::run_main(argc, argv); }
