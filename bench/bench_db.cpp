// E8 / Fig 6: the hall database behind the monitoring tool.
//
// Measures the store operations the Fig 6 applications lean on: appending
// intercepted actions, querying a robot's action list, filtering by time
// range, listing sources, and replay-cursor iteration. Two storage
// sections ride along (docs/storage.md): group-commit WAL append
// throughput, and recovery traffic per restarted node as the fleet grows.
#include <benchmark/benchmark.h>

#include "smoke.h"

#include "db/journal.h"
#include "db/store.h"
#include "midas/durable.h"
#include "midas/node.h"
#include "obs/metrics.h"

namespace {

using namespace pmp;
using rt::Dict;
using rt::Value;

Value motor_action(int i) {
    return Value{Dict{{"device", Value{"motor:x"}},
                      {"action", Value{"rotate"}},
                      {"degrees", Value{static_cast<double>(i % 360)}}}};
}

db::EventStore populated(int records, int robots) {
    db::EventStore store;
    for (int i = 0; i < records; ++i) {
        store.append("robot:" + std::to_string(i % robots), SimTime{i * 1'000'000},
                     motor_action(i));
    }
    return store;
}

void BM_Append(benchmark::State& state) {
    db::EventStore store;
    std::int64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            store.append("robot:1:1", SimTime{++i * 1'000'000}, motor_action(i)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Append);

void BM_QueryBySource(benchmark::State& state) {
    auto store = populated(static_cast<int>(state.range(0)), 8);
    db::Query q;
    q.source = "robot:3";
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.query(q));
    }
    state.counters["records"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_QueryBySource)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_QueryTimeRange(benchmark::State& state) {
    auto store = populated(static_cast<int>(state.range(0)), 8);
    db::Query q;
    q.from = SimTime{state.range(0) * 250'000};
    q.until = SimTime{state.range(0) * 750'000};
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.query(q));
    }
}
BENCHMARK(BM_QueryTimeRange)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_QueryWithLimit(benchmark::State& state) {
    auto store = populated(100'000, 8);
    db::Query q;
    q.source = "robot:1";
    q.limit = 20;  // the Fig 6 list panel shows a page at a time
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.query(q));
    }
}
BENCHMARK(BM_QueryWithLimit);

void BM_Sources(benchmark::State& state) {
    auto store = populated(static_cast<int>(state.range(0)), 16);
    for (auto _ : state) {
        benchmark::DoNotOptimize(store.sources());
    }
}
BENCHMARK(BM_Sources)->Arg(1'000)->Arg(100'000);

void BM_ReplayCursor(benchmark::State& state) {
    auto store = populated(static_cast<int>(state.range(0)), 4);
    db::Query q;
    q.source = "robot:1";
    auto records = store.query(q);
    for (auto _ : state) {
        db::ReplayCursor cursor(records);
        std::int64_t acc = 0;
        while (!cursor.done()) {
            acc += cursor.gap_before_next().count();
            cursor.next();
        }
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(records.size()));
}
BENCHMARK(BM_ReplayCursor)->Arg(4'000)->Arg(40'000);

// ---------------------------------------------------------------------------
// Group commit (docs/storage.md): one CRC-framed multi-record batch per
// medium commit instead of one frame per record. Arg(0) is the per-record
// baseline; the others are batch_bytes.
//
// The simulated medium is RAM, so the raw CPU rate (items_per_second)
// understates the win — a real WAL is commit-bound, not memcpy-bound. The
// section therefore also reports `records_per_commit` (the amortization
// factor group commit buys) and `modeled_sync_rps`, the throughput of a
// medium that charges 50us per commit, which is where the >=5x at 16KiB
// shows up. `amplification` is wal-bytes-written / payload-bytes.

void BM_JournalAppend(benchmark::State& state) {
    auto disk = std::make_shared<db::JournalStorage>();
    db::JournalConfig cfg;
    cfg.batch_bytes = static_cast<std::size_t>(state.range(0));
    db::Journal journal(disk, cfg);
    const Value record = motor_action(7);
    const std::size_t payload = record.encode().size();
    const std::uint64_t flushes0 =
        obs::Registry::global().counter("db.journal.batch_flushes", "").value();
    std::uint64_t written = 0;
    std::uint64_t appended = 0;
    for (auto _ : state) {
        journal.append(record);
        ++appended;
        if (disk->wal.size() > (64u << 20)) {
            state.PauseTiming();
            written += disk->wal.size();
            disk->wal.clear();
            state.ResumeTiming();
        }
    }
    journal.flush();
    written += disk->wal.size();
    const std::uint64_t commits =
        cfg.batching()
            ? obs::Registry::global().counter("db.journal.batch_flushes", "").value() -
                  flushes0
            : appended;
    const double per_commit = static_cast<double>(appended) /
                              static_cast<double>(std::max<std::uint64_t>(commits, 1));
    state.SetItemsProcessed(state.iterations());
    state.counters["records_per_commit"] = per_commit;
    state.counters["modeled_sync_rps"] = per_commit / 50e-6;
    state.counters["amplification"] =
        static_cast<double>(written) /
        static_cast<double>(payload * std::max<std::uint64_t>(appended, 1));
}
BENCHMARK(BM_JournalAppend)->Arg(0)->Arg(4096)->Arg(16384)->Arg(65536);

// ---------------------------------------------------------------------------
// Recovery traffic at fleet scale (docs/storage.md). The catch-up image a
// restarted receiver streams is policy-only — its size tracks the policy
// set, not the adapted-node book — so `catchup_bytes` stays flat as the
// fleet grows while the base's own durable state (`journal_bytes`) grows
// linearly. Measured end to end at 10^3 / 10^4 book entries: a durable
// base recovers a synthesized fleet journal and a fresh receiver streams
// the image through the real chunk protocol.

midas::ExtensionPackage hall_policy(int i) {
    midas::ExtensionPackage pkg;
    pkg.name = "hall/policy" + std::to_string(i);
    pkg.script = "fun onEntry() { }";
    pkg.bindings = {midas::PackageBinding{prose::AdviceKind::kBefore,
                                          "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

std::shared_ptr<db::JournalStorage> fleet_journal(std::int64_t fleet) {
    crypto::KeyStore keys;
    keys.add_key("hall", to_bytes("hk"));
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal journal(disk);
    journal.append(midas::BaseDurableState::rec_epoch(1));
    for (int p = 0; p < 3; ++p) {
        midas::ExtensionPackage pkg = hall_policy(p);
        journal.append(
            midas::BaseDurableState::rec_policy_add(pkg.name, 1, pkg.seal(keys, "hall")));
    }
    for (std::int64_t n = 0; n < fleet; ++n) {
        const std::string label = "fleet" + std::to_string(n);
        journal.append(midas::BaseDurableState::rec_adapt(
            static_cast<std::uint64_t>(1000 + n), label, SimTime{n * 1'000'000}));
        for (int p = 0; p < 3; ++p) {
            journal.append(midas::BaseDurableState::rec_install(
                static_cast<std::uint64_t>(1000 + n), label, "hall/policy" + std::to_string(p),
                static_cast<std::uint64_t>(n * 3 + p + 1)));
        }
    }
    return disk;
}

void BM_CatchupBytesPerRestartedNode(benchmark::State& state) {
    for (auto _ : state) {
        state.PauseTiming();
        auto disk = fleet_journal(state.range(0));
        state.ResumeTiming();

        sim::Simulator sim;
        net::Network net(sim, net::NetworkConfig{}, 29);
        midas::BaseConfig bc;
        bc.issuer = "hall";
        midas::BaseStation hub(net, "hall", net::Position{0, 0}, 120.0, bc, {}, disk);
        hub.keys().add_key("hall", to_bytes("hk"));
        midas::MobileNode robot(net, "fresh", net::Position{10, 0}, 120.0);
        robot.trust().trust("hall", to_bytes("hk"));
        robot.enable_catchup();
        for (int i = 0; i < 100 && robot.catchup()->stats().completed == 0; ++i) {
            sim.run_for(milliseconds(100));
        }
        benchmark::DoNotOptimize(robot.catchup()->stats().bytes);

        state.counters["catchup_bytes"] =
            static_cast<double>(robot.catchup()->stats().bytes);
        state.counters["journal_bytes"] =
            static_cast<double>(disk->snapshot.size() + disk->wal.size());
    }
}
BENCHMARK(BM_CatchupBytesPerRestartedNode)->Arg(1'000)->Arg(10'000)
    ->Unit(benchmark::kMillisecond);

// The 10^5 / 10^6 points, modeled: the catch-up image never references the
// book, so its size is the measured constant; the base's durable state is
// extrapolated from the measured per-entry snapshot cost.

void BM_RecoveryTrafficModel(benchmark::State& state) {
    // Per-entry snapshot cost from two small fleets (slope of the line).
    auto snapshot_bytes = [](std::int64_t fleet) {
        midas::BaseDurableState st;
        st.epoch = 1;
        for (std::int64_t n = 0; n < fleet; ++n) {
            const std::string label = "fleet" + std::to_string(n);
            auto& e = st.book[label];
            e.node = static_cast<std::uint64_t>(1000 + n);
            e.label = label;
            e.since = SimTime{n * 1'000'000};
            for (int p = 0; p < 3; ++p) {
                e.installed["hall/policy" + std::to_string(p)] =
                    static_cast<std::uint64_t>(n * 3 + p + 1);
            }
        }
        return static_cast<double>(st.to_snapshot().encode().size());
    };
    const double base = snapshot_bytes(1'000);
    const double slope = (snapshot_bytes(2'000) - base) / 1'000.0;

    crypto::KeyStore keys;
    keys.add_key("hall", to_bytes("hk"));
    double image = 0;
    for (int p = 0; p < 3; ++p) {
        midas::ExtensionPackage pkg = hall_policy(p);
        image += static_cast<double>(pkg.seal(keys, "hall").size());
    }

    for (auto _ : state) {
        benchmark::DoNotOptimize(slope);
    }
    const double fleet = static_cast<double>(state.range(0));
    state.counters["catchup_bytes_model"] = image;  // flat in fleet size
    state.counters["journal_bytes_model"] = base + slope * (fleet - 1'000.0);
}
BENCHMARK(BM_RecoveryTrafficModel)->Arg(100'000)->Arg(1'000'000);

}  // namespace

int main(int argc, char** argv) { return pmp::bench::run_main(argc, argv); }
