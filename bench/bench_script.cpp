// AdviceScript execution cost — the price of shipping *interpreted* code
// to devices (our substitution for the paper's compiled Java extensions,
// DESIGN.md §2).
//
// E2 showed ~150 ns for a do-nothing script interception vs ~50 ns native;
// this bench breaks the interpreter itself down: compile (parse + check +
// top level), call dispatch, arithmetic loops, recursion, string and
// container work — the operations real extensions (monitoring, access
// control, batching) are made of.
#include <benchmark/benchmark.h>

#include "smoke.h"

#include "script/check.h"
#include "script/interp.h"
#include "script/parser.h"

namespace {

using namespace pmp;
using rt::List;
using rt::Value;
using script::BuiltinRegistry;
using script::Interpreter;
using script::Program;
using script::Sandbox;

Interpreter make(const std::string& source) {
    auto program = std::make_shared<const Program>(script::parse(source));
    Sandbox sandbox;
    sandbox.step_budget = 100'000'000;
    Interpreter interp(program, sandbox,
                       std::make_shared<BuiltinRegistry>(BuiltinRegistry::with_core()));
    interp.run_top_level();
    return interp;
}

const char* kMonitoringLikeScript = R"(
    let buffer = [];
    fun onEntry(device, action, at) {
        buffer[len(buffer)] = {"device": device, "action": action, "at": at};
        if (len(buffer) >= 10) { buffer = []; return 1; }
        return 0;
    }
)";

void BM_CompileMonitoringExtension(benchmark::State& state) {
    BuiltinRegistry reg = BuiltinRegistry::with_core();
    for (auto _ : state) {
        auto program = std::make_shared<const Program>(script::parse(kMonitoringLikeScript));
        auto diags = script::check(*program, reg);
        Sandbox sandbox;
        Interpreter interp(program, sandbox, std::make_shared<BuiltinRegistry>(reg));
        interp.run_top_level();
        benchmark::DoNotOptimize(diags);
    }
}
BENCHMARK(BM_CompileMonitoringExtension);

void BM_CallDispatchEmptyFunction(benchmark::State& state) {
    auto interp = make("fun f() { }");
    for (auto _ : state) {
        benchmark::DoNotOptimize(interp.call("f", {}));
    }
}
BENCHMARK(BM_CallDispatchEmptyFunction);

void BM_MonitoringAdviceBody(benchmark::State& state) {
    auto interp = make(kMonitoringLikeScript);
    std::int64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            interp.call("onEntry", {Value{"motor:x"}, Value{"rotate"}, Value{++i}}));
    }
}
BENCHMARK(BM_MonitoringAdviceBody);

void BM_ArithmeticLoop(benchmark::State& state) {
    auto interp = make(R"(
        fun sum(n) {
            let s = 0;
            let i = 0;
            while (i < n) { i = i + 1; s = s + i * 3 % 7; }
            return s;
        }
    )");
    for (auto _ : state) {
        benchmark::DoNotOptimize(interp.call("sum", {Value{1000}}));
    }
    state.counters["ns_per_iteration"] = benchmark::Counter(
        1000.0 * static_cast<double>(state.iterations()),
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_ArithmeticLoop);

void BM_RecursiveFib(benchmark::State& state) {
    auto interp = make("fun fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }");
    for (auto _ : state) {
        benchmark::DoNotOptimize(interp.call("fib", {Value{12}}));
    }
}
BENCHMARK(BM_RecursiveFib);

void BM_StringBuilding(benchmark::State& state) {
    auto interp = make(R"(
        fun build(n) {
            let s = "";
            for (i in range(n)) { s = s + "x" + str(i); }
            return len(s);
        }
    )");
    for (auto _ : state) {
        benchmark::DoNotOptimize(interp.call("build", {Value{100}}));
    }
}
BENCHMARK(BM_StringBuilding);

void BM_DictHeavyAccessControl(benchmark::State& state) {
    auto interp = make(R"(
        let policy = {"alice": true, "bob": true, "carol": false};
        fun allowed(who, method) {
            if (!contains(policy, who)) { return false; }
            if (!policy[who]) { return false; }
            return method != "forbidden";
        }
    )");
    const char* callers[] = {"alice", "bob", "carol", "mallory"};
    int i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            interp.call("allowed", {Value{callers[i++ & 3]}, Value{"rotate"}}));
    }
}
BENCHMARK(BM_DictHeavyAccessControl);

void BM_StaticCheckLargeScript(benchmark::State& state) {
    // ~100 functions: the checker must stay cheap at install time.
    std::string big;
    for (int i = 0; i < 100; ++i) {
        big += "fun helper_" + std::to_string(i) +
               "(a) { let x = a + " + std::to_string(i) + "; return x * 2; }\n";
    }
    auto program = std::make_shared<const Program>(script::parse(big));
    BuiltinRegistry reg = BuiltinRegistry::with_core();
    for (auto _ : state) {
        benchmark::DoNotOptimize(script::check(*program, reg));
    }
}
BENCHMARK(BM_StaticCheckLargeScript);

}  // namespace

int main(int argc, char** argv) { return pmp::bench::run_main(argc, argv); }
