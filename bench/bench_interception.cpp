// E2 (paper §4.6): per-call interception cost.
//
// Paper numbers (Pentium II, 500 MHz): a void non-intercepted interface
// call costs ~700 ns; an intercepted method entry with a do-nothing
// extension costs ~900 ns — a small constant per interception — and methods
// not affected by interceptions are not slowed at all.
//
// We measure the same ladder on our dispatch path:
//   native          — plain C++ virtual call (floor, for context)
//   unhooked        — metaobject dispatch as if PROSE were absent
//   hooked_unwoven  — dispatch with the minimal hook, nothing woven
//                     ("methods not affected are not slowed")
//   woven_noop      — do-nothing native before-advice (the 900 ns analog)
//   woven_script    — do-nothing *script* before-advice (shipped-code cost)
//   woven_around    — do-nothing around advice (proceed() chain)
#include <benchmark/benchmark.h>

#include "smoke.h"

#include "core/script_aspect.h"
#include "core/weaver.h"

namespace {

using namespace pmp;
using rt::List;
using rt::TypeKind;
using rt::Value;

/// The native-call floor: what a C++ interface call costs.
struct Iface {
    virtual ~Iface() = default;
    virtual std::int64_t poke(std::int64_t x) = 0;
};
struct Impl final : Iface {
    std::int64_t acc = 0;
    std::int64_t poke(std::int64_t x) override {
        acc += x;
        return acc;
    }
};

struct Fixture {
    rt::Runtime runtime{"bench"};
    std::unique_ptr<prose::Weaver> weaver;
    std::shared_ptr<rt::ServiceObject> obj;
    rt::Method* method = nullptr;

    Fixture() {
        weaver = std::make_unique<prose::Weaver>(runtime);
        runtime.register_type(
            rt::TypeInfo::Builder("Target")
                .method("poke", TypeKind::kInt, {{"x", TypeKind::kInt}},
                        [](rt::ServiceObject&, List& args) -> Value {
                            benchmark::DoNotOptimize(args[0]);
                            return args[0];
                        })
                .build());
        obj = runtime.create("Target", "target");
        method = obj->type().method("poke");
    }
};

void BM_NativeInterfaceCall(benchmark::State& state) {
    Impl impl;
    Iface* iface = &impl;
    benchmark::DoNotOptimize(iface);
    std::int64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(iface->poke(++i));
    }
}
BENCHMARK(BM_NativeInterfaceCall);

void BM_DispatchUnhooked(benchmark::State& state) {
    Fixture f;
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.method->invoke_unhooked(*f.obj, {Value{1}}));
    }
}
BENCHMARK(BM_DispatchUnhooked);

void BM_DispatchHookedUnwoven(benchmark::State& state) {
    Fixture f;
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.method->invoke(*f.obj, {Value{1}}));
    }
}
BENCHMARK(BM_DispatchHookedUnwoven);

void BM_DispatchDebuggerStyle(benchmark::State& state) {
    // PROSE v1 (JVMDI-based) ablation: every call enters the interception
    // machinery even with nothing woven.
    Fixture f;
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.method->invoke_debugger_style(*f.obj, {Value{1}}));
    }
}
BENCHMARK(BM_DispatchDebuggerStyle);

void BM_DispatchWovenNoopBefore(benchmark::State& state) {
    Fixture f;
    auto aspect = std::make_shared<prose::Aspect>("noop");
    aspect->before("call(* Target.poke(..))", [](rt::CallFrame&) {});
    f.weaver->weave(aspect);
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.method->invoke(*f.obj, {Value{1}}));
    }
}
BENCHMARK(BM_DispatchWovenNoopBefore);

void BM_DispatchWovenScriptBefore(benchmark::State& state) {
    Fixture f;
    auto sa = std::make_shared<prose::ScriptAspect>(
        "noop-script", "fun onEntry() { }",
        std::vector<prose::ScriptBinding>{
            {prose::AdviceKind::kBefore, "call(* Target.poke(..))", "onEntry", 0}},
        script::Sandbox{}, script::BuiltinRegistry::with_core());
    f.weaver->weave(sa->aspect());
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.method->invoke(*f.obj, {Value{1}}));
    }
}
BENCHMARK(BM_DispatchWovenScriptBefore);

// Monitoring-extension workload for the script-engine ablation: the advice
// does representative work (bump counters, read the join point and an
// argument) rather than nothing, so the engine's per-statement cost shows.
std::shared_ptr<prose::ScriptAspect> make_monitoring_aspect(script::EngineMode mode) {
    return std::make_shared<prose::ScriptAspect>(
        "monitor",
        "let calls = 0;\n"
        "let total = 0;\n"
        "fun mix(h, i) {\n"
        "  return (h * 31 + i) % 1000000007;\n"
        "}\n"
        "fun onEntry() {\n"
        "  calls = calls + 1;\n"
        "  let h = ctx.arg(0);\n"
        "  let i = 0;\n"
        "  while (i < 8) {\n"
        "    h = mix(h, i);\n"
        "    i = i + 1;\n"
        "  }\n"
        "  total = total + h;\n"
        "}\n",
        std::vector<prose::ScriptBinding>{
            {prose::AdviceKind::kBefore, "call(* Target.poke(..))", "onEntry", 0}},
        script::Sandbox{}, script::BuiltinRegistry::with_core(), rt::Value{}, mode);
}

void BM_ScriptAdviceTreeWalk(benchmark::State& state) {
    // Ablation baseline: the same compiled aspect run on the reference
    // tree-walking interpreter.
    Fixture f;
    f.weaver->weave(make_monitoring_aspect(script::EngineMode::kInterpreter)->aspect());
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.method->invoke(*f.obj, {Value{1}}));
    }
}
BENCHMARK(BM_ScriptAdviceTreeWalk);

void BM_ScriptAdviceVm(benchmark::State& state) {
    // The production path: monitoring advice on the bytecode VM.
    Fixture f;
    f.weaver->weave(make_monitoring_aspect(script::EngineMode::kVm)->aspect());
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.method->invoke(*f.obj, {Value{1}}));
    }
}
BENCHMARK(BM_ScriptAdviceVm);

void BM_DispatchWovenNoopAround(benchmark::State& state) {
    Fixture f;
    auto aspect = std::make_shared<prose::Aspect>("around");
    aspect->around("call(* Target.poke(..))",
                   [](rt::CallFrame&, const std::function<Value()>& proceed) -> Value {
                       return proceed();
                   });
    f.weaver->weave(aspect);
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.method->invoke(*f.obj, {Value{1}}));
    }
}
BENCHMARK(BM_DispatchWovenNoopAround);

/// Print the paper-style comparison rows after the raw benchmark output.
class PaperReport : public benchmark::BenchmarkReporter {
public:
    bool ReportContext(const Context&) override { return true; }
    void ReportRuns(const std::vector<Run>& runs) override {
        for (const auto& run : runs) {
            times_[run.benchmark_name()] = run.GetAdjustedRealTime();
        }
    }
    void Finalize() override {
        auto t = [&](const char* name) -> double {
            auto it = times_.find(name);
            return it == times_.end() ? 0.0 : it->second;
        };
        double plain = t("BM_DispatchHookedUnwoven");
        double woven = t("BM_DispatchWovenNoopBefore");
        printf("\n=== E2: interception cost (paper: 700 ns plain vs ~900 ns intercepted, "
               "ratio ~1.29) ===\n");
        printf("%-34s %10.1f ns\n", "non-intercepted call (paper 700ns):", plain);
        printf("%-34s %10.1f ns\n", "do-nothing interception (paper 900ns):", woven);
        printf("%-34s %10.1f ns\n", "per-interception overhead (paper ~200ns):",
               woven - plain);
        printf("%-34s %10.2fx\n", "ratio (paper ~1.29x):", plain > 0 ? woven / plain : 0);
        printf("%-34s %10.1f ns (vs unhooked %.1f ns)\n",
               "dormant minimal hook cost:",
               t("BM_DispatchHookedUnwoven") - t("BM_DispatchUnhooked"),
               t("BM_DispatchUnhooked"));
        printf("%-34s %10.1f ns\n", "script advice interception:",
               t("BM_DispatchWovenScriptBefore"));
        printf("%-34s %10.1f ns\n", "around advice interception:",
               t("BM_DispatchWovenNoopAround"));
        printf("%-34s %10.1f ns (vs %.1f ns with minimal hooks — the PROSE\n"
               "%-34s             v1(JVMDI) vs v2(JIT) gap [PAG03])\n",
               "debugger-style dormant dispatch:", t("BM_DispatchDebuggerStyle"), plain,
               "");

        // Script-engine ablation: the same monitoring advice on the
        // reference tree-walking interpreter vs the bytecode VM.
        double tree = t("BM_ScriptAdviceTreeWalk");
        double vm = t("BM_ScriptAdviceVm");
        printf("\n=== script-engine ablation (monitoring advice) ===\n");
        printf("%-34s %10.1f ns\n", "tree-walk interpreter:", tree);
        printf("%-34s %10.1f ns\n", "bytecode VM:", vm);
        printf("%-34s %10.2fx\n", "speedup (target >= 2x):", vm > 0 ? tree / vm : 0);

        // Pre-refactor reference (same container/flags, recorded before the
        // compiled-dispatch PR: per-call hook-chain construction, vector
        // hook slots, tree-walk-only script advice). The dormant rows are
        // the regression guard: un-woven dispatch must not get slower.
        printf("\n=== pre-refactor baseline (recorded, same build flags) ===\n");
        printf("%-34s %10.1f ns (now %.1f ns)\n", "unhooked:", 29.6,
               t("BM_DispatchUnhooked"));
        printf("%-34s %10.1f ns (now %.1f ns)\n", "hooked, un-woven:", 32.8, plain);
        printf("%-34s %10.1f ns (now %.1f ns)\n", "woven no-op before:", 108.6, woven);
        printf("%-34s %10.1f ns (now %.1f ns)\n", "woven script before (tree-walk):",
               200.8, t("BM_DispatchWovenScriptBefore"));
        printf("%-34s %10.1f ns (now %.1f ns)\n", "woven no-op around:", 169.5,
               t("BM_DispatchWovenNoopAround"));
    }

private:
    std::map<std::string, double> times_;
};

}  // namespace

int main(int argc, char** argv) {
    pmp::bench::init(argc, argv);
    benchmark::ConsoleReporter console;
    PaperReport paper;
    // Run everything through the console reporter first, then re-run the
    // collected numbers through the paper-style summary.
    class Tee : public benchmark::BenchmarkReporter {
    public:
        Tee(benchmark::BenchmarkReporter& a, benchmark::BenchmarkReporter& b)
            : a_(a), b_(b) {}
        bool ReportContext(const Context& ctx) override {
            return a_.ReportContext(ctx) && b_.ReportContext(ctx);
        }
        void ReportRuns(const std::vector<Run>& runs) override {
            a_.ReportRuns(runs);
            b_.ReportRuns(runs);
        }
        void Finalize() override {
            a_.Finalize();
            b_.Finalize();
        }

    private:
        benchmark::BenchmarkReporter& a_;
        benchmark::BenchmarkReporter& b_;
    } tee(console, paper);
    benchmark::RunSpecifiedBenchmarks(&tee);
    benchmark::Shutdown();
    return 0;
}
