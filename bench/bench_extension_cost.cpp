// E4 (paper §4.6): interception cost vs the cost of real extensions.
//
// "We measured the overhead of extensions implementing security,
// transactions and orthogonal persistence. In all cases the cost of the
// interceptions was much less than the cost of executing the additional
// functionality, indicating that the platform overhead is negligible."
//
// We weave three realistic extensions over a small account service and
// compare, per call: bare dispatch, interception-only (do-nothing advice),
// and the full extension body.
//
//   security    — session note + allow-list check (the Fig 2 shape)
//   transaction — around advice: snapshot state, commit/rollback on error
//   persistence — after advice: append the state change to an event store
#include <benchmark/benchmark.h>

#include "smoke.h"

#include <cstdio>
#include <map>

#include "core/script_aspect.h"
#include "core/weaver.h"
#include "db/store.h"

namespace {

using namespace pmp;
using rt::List;
using rt::TypeKind;
using rt::Value;

struct Fixture {
    rt::Runtime runtime{"bench"};
    std::unique_ptr<prose::Weaver> weaver;
    std::shared_ptr<rt::ServiceObject> account;
    rt::Method* deposit = nullptr;
    db::EventStore store;

    Fixture() {
        weaver = std::make_unique<prose::Weaver>(runtime);
        runtime.register_type(
            rt::TypeInfo::Builder("Account")
                .field("balance", TypeKind::kInt, Value{std::int64_t{0}})
                .method("deposit", TypeKind::kInt, {{"amount", TypeKind::kInt}},
                        [](rt::ServiceObject& self, List& args) -> Value {
                            std::int64_t next =
                                self.peek("balance").as_int() + args[0].as_int();
                            self.poke("balance", Value{next});
                            return Value{next};
                        })
                .build());
        account = runtime.create("Account", "account");
        deposit = account->type().method("deposit");
    }
};

void BM_BareDispatch(benchmark::State& state) {
    Fixture f;
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.deposit->invoke(*f.account, {Value{1}}));
    }
}
BENCHMARK(BM_BareDispatch);

void BM_InterceptionOnly(benchmark::State& state) {
    Fixture f;
    auto aspect = std::make_shared<prose::Aspect>("noop");
    aspect->before("call(* Account.*(..))", [](rt::CallFrame&) {});
    f.weaver->weave(aspect);
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.deposit->invoke(*f.account, {Value{1}}));
    }
}
BENCHMARK(BM_InterceptionOnly);

void BM_SecurityExtension(benchmark::State& state) {
    Fixture f;
    // Session + access control, as MIDAS installs them (script advice).
    auto session = std::make_shared<prose::ScriptAspect>(
        "session", "fun onEntry() { ctx.set_note(\"caller\", \"alice\"); }",
        std::vector<prose::ScriptBinding>{
            {prose::AdviceKind::kBefore, "call(* Account.*(..))", "onEntry", -10}},
        script::Sandbox{}, script::BuiltinRegistry::with_core());
    auto access = std::make_shared<prose::ScriptAspect>(
        "access",
        R"(fun onEntry() {
               if (!contains(config.allowed, ctx.note("caller"))) {
                   ctx.deny("unauthorized");
               }
           })",
        std::vector<prose::ScriptBinding>{
            {prose::AdviceKind::kBefore, "call(* Account.*(..))", "onEntry", 0}},
        script::Sandbox{}, script::BuiltinRegistry::with_core(),
        Value{rt::Dict{{"allowed", Value{List{Value{"alice"}, Value{"bob"}}}}}});
    f.weaver->weave(session->aspect());
    f.weaver->weave(access->aspect());
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.deposit->invoke(*f.account, {Value{1}}));
    }
}
BENCHMARK(BM_SecurityExtension);

void BM_TransactionExtension(benchmark::State& state) {
    Fixture f;
    // Around advice: snapshot the balance, roll back on failure. Native
    // advice here — transactions are infrastructure the host provides.
    auto aspect = std::make_shared<prose::Aspect>("txn");
    aspect->around("call(* Account.*(..))",
                   [](rt::CallFrame& frame, const std::function<Value()>& proceed) -> Value {
                       Value snapshot = frame.self.peek("balance");
                       try {
                           return proceed();
                       } catch (...) {
                           frame.self.poke("balance", snapshot);
                           throw;
                       }
                   });
    f.weaver->weave(aspect);
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.deposit->invoke(*f.account, {Value{1}}));
    }
}
BENCHMARK(BM_TransactionExtension);

void BM_PersistenceExtension(benchmark::State& state) {
    Fixture f;
    // Orthogonal persistence: every completed call appends the resulting
    // state to the store (the local half of the paper's logging extension;
    // the radio hop is measured in E6).
    auto aspect = std::make_shared<prose::Aspect>("persist");
    db::EventStore* store = &f.store;
    std::int64_t tick = 0;
    aspect->after("call(* Account.*(..))", [store, &tick](rt::CallFrame& frame) {
        store->append(frame.self.name(), SimTime{++tick},
                      Value{rt::Dict{{"method", Value{frame.method.decl().name}},
                                     {"result", frame.result}}});
    });
    f.weaver->weave(aspect);
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.deposit->invoke(*f.account, {Value{1}}));
    }
}
BENCHMARK(BM_PersistenceExtension);

class PaperReport : public benchmark::BenchmarkReporter {
public:
    bool ReportContext(const Context&) override { return true; }
    void ReportRuns(const std::vector<Run>& runs) override {
        for (const auto& run : runs) times_[run.benchmark_name()] = run.GetAdjustedRealTime();
    }
    void Finalize() override {
        double bare = times_["BM_BareDispatch"];
        double hook = times_["BM_InterceptionOnly"];
        double interception = hook - bare;
        printf("\n=== E4: interception vs extension body "
               "(paper: body cost >> interception cost) ===\n");
        printf("%-24s %10.1f ns\n", "bare dispatch:", bare);
        printf("%-24s %10.1f ns  (interception alone: %.1f ns)\n",
               "interception only:", hook, interception);
        auto row = [&](const char* label, const char* key) {
            double total = times_[key];
            double body = total - hook;
            printf("%-24s %10.1f ns  body %.1f ns  body/interception %.1fx\n", label, total,
                   body, interception > 0 ? body / interception : 0.0);
        };
        row("security extension:", "BM_SecurityExtension");
        row("transaction extension:", "BM_TransactionExtension");
        row("persistence extension:", "BM_PersistenceExtension");
    }

private:
    std::map<std::string, double> times_;
};

}  // namespace

int main(int argc, char** argv) {
    pmp::bench::init(argc, argv);
    benchmark::ConsoleReporter console;
    PaperReport paper;
    class Tee : public benchmark::BenchmarkReporter {
    public:
        Tee(benchmark::BenchmarkReporter& a, benchmark::BenchmarkReporter& b)
            : a_(a), b_(b) {}
        bool ReportContext(const Context& ctx) override {
            return a_.ReportContext(ctx) && b_.ReportContext(ctx);
        }
        void ReportRuns(const std::vector<Run>& runs) override {
            a_.ReportRuns(runs);
            b_.ReportRuns(runs);
        }
        void Finalize() override {
            a_.Finalize();
            b_.Finalize();
        }

    private:
        benchmark::BenchmarkReporter& a_;
        benchmark::BenchmarkReporter& b_;
    } tee(console, paper);
    benchmark::RunSpecifiedBenchmarks(&tee);
    benchmark::Shutdown();
    return 0;
}
