// E9 (paper §3.2): locality of adaptations — leasing and revocation.
//
// "When a node leaves a given space, the leases on the extensions acquired
// in that space fail to be renewed and they will be discarded." The knob is
// the lease period: short leases revoke promptly but cost keep-alive
// traffic; long leases are cheap but leave stale extensions active longer.
//
// For each lease period we measure, in virtual time:
//   revocation latency — node leaves radio range -> extension withdrawn
//   keep-alive traffic — radio messages per node-second while resident
// and, separately, the policy-replacement latency (add_extension of a new
// version -> replacement observed on the node).
#include <benchmark/benchmark.h>

#include "smoke.h"

#include <cstdio>
#include <vector>
#include <functional>

#include "midas/node.h"
#include "robot/devices.h"

namespace {

using namespace pmp;
using midas::BaseConfig;
using midas::BaseStation;
using midas::ExtensionPackage;
using midas::MobileNode;

ExtensionPackage noop_package() {
    ExtensionPackage pkg;
    pkg.name = "hall/noop";
    pkg.script = "fun onEntry() { }\nfun onShutdown(reason) { }";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

struct World {
    sim::Simulator sim;
    net::Network net{sim, net::NetworkConfig{}, 77};
    std::unique_ptr<BaseStation> hall;
    std::unique_ptr<MobileNode> robot;

    explicit World(Duration lease) {
        BaseConfig bc;
        bc.issuer = "hall";
        bc.extension_lease = lease;
        bc.keepalive_period = lease * 2 / 5;  // ~2 keep-alives per lease
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 100.0, bc);
        hall->keys().add_key("hall", to_bytes("k"));
        robot = std::make_unique<MobileNode>(net, "robot", net::Position{10, 0}, 100.0);
        robot->trust().trust("hall", to_bytes("k"));
        robot->receiver().allow_capabilities("hall", {});
        robot::make_motor(robot->runtime(), "motor:x");
        hall->base().add_extension(noop_package());
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(20));
        }
        return pred();
    }
};

/// Crash–restart recovery bench: a durable hall adapting a fleet, killed
/// by the power-cord model and rebuilt over the same journal storage.
struct RecoveryWorld {
    sim::Simulator sim;
    net::Network net{sim, net::NetworkConfig{}, 91};
    std::shared_ptr<db::JournalStorage> disk = std::make_shared<db::JournalStorage>();
    std::unique_ptr<BaseStation> hall;
    std::vector<std::unique_ptr<MobileNode>> robots;

    RecoveryWorld(Duration keepalive, int fleet) {
        disk->name = "hall";
        start_hall(keepalive);
        for (int i = 0; i < fleet; ++i) {
            // Ring the hall so everyone stays in range.
            double x = 10.0 + 3.0 * i;
            auto robot = std::make_unique<MobileNode>(
                net, "robot" + std::to_string(i), net::Position{x, 5.0}, 100.0);
            robot->trust().trust("hall", to_bytes("k"));
            robot->receiver().allow_capabilities("hall", {});
            robots.push_back(std::move(robot));
        }
        hall->base().add_extension(noop_package());
    }

    void start_hall(Duration keepalive) {
        BaseConfig bc;
        bc.issuer = "hall";
        bc.keepalive_period = keepalive;
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 100.0, bc,
                                             disco::RegistrarConfig{}, disk);
        hall->keys().add_key("hall", to_bytes("k"));
    }

    void crash_hall() {
        hall->journal()->power_off();
        net.remove_node(hall->id());
        hall.reset();
    }

    bool fleet_converged() {
        for (auto& r : robots) {
            if (r->receiver().installed_count() != 1) return false;
            if (r->receiver().installed()[0].base_epoch != hall->base().epoch()) {
                return false;
            }
        }
        return true;
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(20));
        }
        return pred();
    }
};

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = pmp::bench::strip_smoke(argc, argv);
    printf("=== E9: lease period vs revocation latency and keep-alive cost ===\n\n");
    printf("%-12s %22s %26s\n", "lease", "revocation latency", "keepalive msgs/node-sec");

    for (auto lease_ms : smoke ? std::vector<int>{500}
                               : std::vector<int>{250, 500, 1000, 2000, 5000}) {
        World w{milliseconds(lease_ms)};
        if (!w.run_until([&] { return w.robot->receiver().installed_count() == 1; })) {
            printf("%-12d FATAL: install failed\n", lease_ms);
            continue;
        }

        // Resident phase: count keep-alive traffic over 20 virtual seconds.
        w.net.reset_stats();
        SimTime resident_start = w.sim.now();
        w.sim.run_for(seconds(smoke ? 2 : 20));
        double resident_secs =
            static_cast<double>((w.sim.now() - resident_start).count()) / 1e9;
        double msgs_per_sec = static_cast<double>(w.net.stats().delivered) / resident_secs;

        // Leave: measure time until autonomous withdrawal.
        SimTime left_at = w.sim.now();
        w.robot->move_to({1000, 0});
        bool revoked =
            w.run_until([&] { return w.robot->receiver().installed_count() == 0; });
        double revocation_ms =
            static_cast<double>((w.sim.now() - left_at).count()) / 1e6;

        printf("%-12s %18.0f ms %22.1f\n",
               (std::to_string(lease_ms) + " ms").c_str(),
               revoked ? revocation_ms : -1.0, msgs_per_sec);
    }

    printf("\nshape to check: revocation latency scales ~linearly with the lease\n"
           "period (bounded by lease + one keep-alive slack), while keep-alive\n"
           "traffic scales inversely — the classic leasing trade-off.\n\n");

    // Policy replacement latency (independent of leaving).
    printf("policy replacement latency (new version pushed to a resident node):\n");
    for (auto lease_ms : smoke ? std::vector<int>{500} : std::vector<int>{500, 2000}) {
        World w{milliseconds(lease_ms)};
        if (!w.run_until([&] { return w.robot->receiver().installed_count() == 1; })) {
            continue;
        }
        SimTime pushed_at = w.sim.now();
        ExtensionPackage v2 = noop_package();
        v2.script = "fun onEntry() { }\nfun onShutdown(r) { }\nfun v2() { return 2; }";
        w.hall->base().add_extension(v2);
        bool replaced =
            w.run_until([&] { return w.robot->receiver().stats().replacements >= 1; });
        printf("  lease %5d ms: %8.1f ms\n", lease_ms,
               replaced ? static_cast<double>((w.sim.now() - pushed_at).count()) / 1e6
                        : -1.0);
    }
    printf("\nshape to check: replacement is push-driven, so its latency is one\n"
           "radio round-trip plus install cost — independent of the lease period.\n");

    // Fault sweep: lease churn under an increasingly hostile radio. Burst
    // loss eats keep-alives in clusters, so leases lapse and re-install;
    // the interesting outputs are how often the lease churns (expirations
    // per minute), what fraction of the residence the extension was
    // actually in place, and how much install traffic the recovery spent.
    printf("\n=== fault sweep: lease churn vs radio loss (lease 1000 ms) ===\n\n");
    printf("%-10s %14s %16s %14s\n", "loss", "expirations/min", "availability %",
           "installs sent");
    for (double loss : smoke ? std::vector<double>{0.10}
                             : std::vector<double>{0.0, 0.10, 0.25, 0.40}) {
        World w{milliseconds(1000)};
        net::FaultPlan plan;
        plan.loss = loss;
        plan.burst_enter = loss / 4;  // bursts scale with the ambient loss
        plan.burst_exit = 0.3;
        w.net.set_fault_plan(plan, 1234);
        if (!w.run_until([&] { return w.robot->receiver().installed_count() == 1; })) {
            printf("%-10.2f FATAL: install never succeeded\n", loss);
            continue;
        }

        std::uint64_t expirations0 = w.robot->receiver().stats().expirations;
        std::uint64_t installs0 = w.hall->base().stats().installs_sent;
        int installed_samples = 0, total_samples = 0;
        SimTime sweep_start = w.sim.now();
        while (w.sim.now() - sweep_start < seconds(smoke ? 5 : 60)) {
            w.sim.run_for(milliseconds(100));
            ++total_samples;
            if (w.robot->receiver().installed_count() == 1) ++installed_samples;
        }
        double minutes =
            static_cast<double>((w.sim.now() - sweep_start).count()) / 60e9;
        printf("%-10.2f %14.1f %16.1f %14llu\n", loss,
               static_cast<double>(w.robot->receiver().stats().expirations - expirations0) /
                   minutes,
               100.0 * installed_samples / total_samples,
               static_cast<unsigned long long>(w.hall->base().stats().installs_sent -
                                               installs0));
    }
    printf("\nshape to check: availability degrades gracefully (no cliff) and\n"
           "install traffic grows sub-linearly with loss — the backoff keeps\n"
           "recovery from amplifying an already-bad radio.\n");

    // Recovery time: a durable hall crashes (1 s outage) and restarts over
    // its journal under a bumped epoch. We measure restart -> every robot
    // re-holding the policy under the new epoch. Recovered book entries
    // re-adapt on the keep-alive tick, so the keep-alive period is the
    // latency knob; the fleet size shows how re-adaptation scales.
    printf("\n=== recovery: base restart -> full re-adaptation ===\n\n");
    printf("%-16s %8s %22s %14s\n", "keepalive", "fleet", "recovery latency",
           "epoch after");
    for (auto ka_ms : smoke ? std::vector<int>{400} : std::vector<int>{200, 400, 800}) {
        for (int fleet : smoke ? std::vector<int>{4} : std::vector<int>{1, 4, 16}) {
            RecoveryWorld w{milliseconds(ka_ms), fleet};
            if (!w.run_until([&] { return w.fleet_converged(); })) {
                printf("%-16d %8d FATAL: initial adaptation failed\n", ka_ms, fleet);
                continue;
            }
            w.crash_hall();
            w.sim.run_for(seconds(1));
            w.start_hall(milliseconds(ka_ms));
            SimTime restarted_at = w.sim.now();
            bool ok = w.run_until([&] { return w.fleet_converged(); });
            printf("%-16s %8d %18.1f ms %14llu\n",
                   (std::to_string(ka_ms) + " ms").c_str(), fleet,
                   ok ? static_cast<double>((w.sim.now() - restarted_at).count()) / 1e6
                      : -1.0,
                   static_cast<unsigned long long>(w.hall->base().epoch()));
        }
    }
    printf("\nshape to check: recovery latency is dominated by one keep-alive\n"
           "period (the recovered book re-adapts on the first tick) and grows\n"
           "only mildly with fleet size — re-installs fan out in parallel.\n");
    return 0;
}
