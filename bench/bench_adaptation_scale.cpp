// E10 (paper §2.1, §3.2): adaptation at scale.
//
// A proactive environment must adapt whole communities of devices. We
// measure, in virtual time:
//
//   (a) time-to-adapt vs number of nodes entering the hall simultaneously
//   (b) time-to-adapt one node vs number of policy extensions
//   (c) install latency vs extension package size (the radio is the
//       bottleneck: bigger scripts take longer to ship)
#include <benchmark/benchmark.h>

#include "smoke.h"

#include <cstdio>
#include <functional>
#include <vector>

#include "midas/node.h"
#include "robot/devices.h"

namespace {

using namespace pmp;
using midas::BaseConfig;
using midas::BaseStation;
using midas::ExtensionPackage;
using midas::MobileNode;

ExtensionPackage noop_package(const std::string& name, std::size_t script_padding = 0) {
    ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = "fun onEntry() { }\n";
    if (script_padding > 0) {
        // Realistic padding: helper functions the extension never calls.
        std::string chunk = "fun helper_X() { let a = 1; let b = 2; return a + b; }\n";
        std::string padded;
        int i = 0;
        while (padded.size() < script_padding) {
            std::string fn = chunk;
            fn.replace(fn.find('X'), 1, std::to_string(i++));
            padded += fn;
        }
        pkg.script += padded;
    }
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

struct World {
    sim::Simulator sim;
    net::Network net{sim, net::NetworkConfig{}, 4242};
    std::unique_ptr<BaseStation> hall;
    std::vector<std::unique_ptr<MobileNode>> nodes;

    World() {
        BaseConfig bc;
        bc.issuer = "hall";
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 200.0, bc);
        hall->keys().add_key("hall", to_bytes("k"));
    }

    MobileNode& add_node(int i) {
        auto node = std::make_unique<MobileNode>(
            net, "node:" + std::to_string(i),
            net::Position{10.0 + static_cast<double>(i % 10), static_cast<double>(i / 10)},
            200.0);
        node->trust().trust("hall", to_bytes("k"));
        node->receiver().allow_capabilities("hall", {});
        robot::make_motor(node->runtime(), "motor:" + std::to_string(i));
        nodes.push_back(std::move(node));
        return *nodes.back();
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(120)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(1));
        }
        return pred();
    }
};

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = pmp::bench::strip_smoke(argc, argv);
    printf("=== E10: adaptation at scale (virtual time) ===\n\n");

    printf("(a) time to adapt N nodes entering simultaneously (1 extension):\n");
    printf("%8s %16s %16s\n", "nodes", "all adapted", "per node");
    for (int n : smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 5, 10, 20, 50}) {
        World w;
        w.hall->base().add_extension(noop_package("hall/noop"));
        for (int i = 0; i < n; ++i) w.add_node(i);
        SimTime start = w.sim.now();
        bool ok = w.run_until([&] {
            for (const auto& node : w.nodes) {
                if (node->receiver().installed_count() != 1) return false;
            }
            return true;
        });
        double total_ms = static_cast<double>((w.sim.now() - start).count()) / 1e6;
        printf("%8d %13.1f ms %13.2f ms\n", n, ok ? total_ms : -1.0,
               ok ? total_ms / n : -1.0);
    }

    printf("\n(b) time to adapt one node vs number of policy extensions:\n");
    printf("%12s %16s %16s\n", "extensions", "fully adapted", "per extension");
    for (int k : smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 5, 10, 20}) {
        World w;
        for (int i = 0; i < k; ++i) {
            w.hall->base().add_extension(noop_package("hall/ext" + std::to_string(i)));
        }
        w.add_node(0);
        SimTime start = w.sim.now();
        bool ok = w.run_until([&] {
            return w.nodes[0]->receiver().installed_count() == static_cast<std::size_t>(k);
        });
        double total_ms = static_cast<double>((w.sim.now() - start).count()) / 1e6;
        printf("%12d %13.1f ms %13.2f ms\n", k, ok ? total_ms : -1.0,
               ok ? total_ms / k : -1.0);
    }

    printf("\n(c) install latency vs package size (1 node, 1 extension):\n");
    printf("%14s %14s %16s\n", "script bytes", "wire bytes", "adapt latency");
    for (std::size_t padding : smoke ? std::vector<std::size_t>{1'000u}
                                     : std::vector<std::size_t>{0u, 1'000u, 10'000u,
                                                                100'000u}) {
        World w;
        ExtensionPackage pkg = noop_package("hall/sized", padding);
        std::size_t wire = pkg.wire_size();
        w.hall->base().add_extension(pkg);
        w.add_node(0);
        SimTime start = w.sim.now();
        bool ok =
            w.run_until([&] { return w.nodes[0]->receiver().installed_count() == 1; });
        printf("%14zu %14zu %13.1f ms\n", pkg.script.size(), wire,
               ok ? static_cast<double>((w.sim.now() - start).count()) / 1e6 : -1.0);
    }

    printf("\nshape to check: (a) per-node cost stays roughly flat (the base\n"
           "pipelines installs); (b) per-extension cost is roughly constant;\n"
           "(c) latency grows with package size once serialization dominates\n"
           "the fixed discovery+rpc cost.\n");
    return 0;
}
