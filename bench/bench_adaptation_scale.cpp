// E10 (paper §2.1, §3.2): adaptation at scale.
//
// A proactive environment must adapt whole communities of devices. We
// measure, in virtual time:
//
//   (a) time-to-adapt vs number of nodes entering the hall simultaneously
//   (b) time-to-adapt one node vs number of policy extensions
//   (c) install latency vs extension package size (the radio is the
//       bottleneck: bigger scripts take longer to ship)
//   (d) control-plane frames over the base's backhaul at fleet scale,
//       per-(node, extension) keep-alives vs one batched frame per cell
//       per period (midas/cell.h, docs/federation.md) — measured to 10^4
//       nodes, modeled to 10^6 from the measured per-cell constants
//   (e) the base's per-tick adoption scan: the old allocating lookup()
//       vs the in-place for_each() it was replaced with (wall time)
//   (f) staged canary rollout at fleet scale (midas/rollout.h): time for
//       a healthy canary to walk the 1%/10%/50%/100% ladder, and — for a
//       poisoned canary — the rollback blast radius (nodes that ever ran
//       the canary vs fleet size) and time-to-rollback
//   (g) wall-clock speedup of the sharded kernel (sim/shard.h): the same
//       per-hall event load run on 1, 2 and 4 workers; virtual-time
//       results are identical by construction (docs/parallelism.md), so
//       only the wall clock moves
#include <benchmark/benchmark.h>

#include "smoke.h"

#include <chrono>
#include <cstdint>
#include <thread>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/hash.h"
#include "midas/node.h"
#include "robot/devices.h"
#include "sim/shard.h"

namespace {

using namespace pmp;
using midas::BaseConfig;
using midas::BaseStation;
using midas::ExtensionPackage;
using midas::MobileNode;

ExtensionPackage noop_package(const std::string& name, std::size_t script_padding = 0) {
    ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = "fun onEntry() { }\n";
    if (script_padding > 0) {
        // Realistic padding: helper functions the extension never calls.
        std::string chunk = "fun helper_X() { let a = 1; let b = 2; return a + b; }\n";
        std::string padded;
        int i = 0;
        while (padded.size() < script_padding) {
            std::string fn = chunk;
            fn.replace(fn.find('X'), 1, std::to_string(i++));
            padded += fn;
        }
        pkg.script += padded;
    }
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

struct World {
    sim::Simulator sim;
    net::Network net{sim, net::NetworkConfig{}, 4242};
    std::unique_ptr<BaseStation> hall;
    std::vector<std::unique_ptr<MobileNode>> nodes;

    World() {
        BaseConfig bc;
        bc.issuer = "hall";
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 200.0, bc);
        hall->keys().add_key("hall", to_bytes("k"));
    }

    MobileNode& add_node(int i) {
        auto node = std::make_unique<MobileNode>(
            net, "node:" + std::to_string(i),
            net::Position{10.0 + static_cast<double>(i % 10), static_cast<double>(i / 10)},
            200.0);
        node->trust().trust("hall", to_bytes("k"));
        node->receiver().allow_capabilities("hall", {});
        robot::make_motor(node->runtime(), "motor:" + std::to_string(i));
        nodes.push_back(std::move(node));
        return *nodes.back();
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(120)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(1));
        }
        return pred();
    }
};

// ------------------------------------------------- fleet worlds (d, e) ----

/// Messages crossing the base's backhaul during the measurement window.
struct Traffic {
    std::uint64_t msgs = 0;
    std::uint64_t bytes = 0;
};

/// Discovery beacons are broadcast chatter, not per-node lease traffic;
/// they are excluded from BOTH arms so the comparison is pure control
/// plane (this is conservative: it favours the un-batched baseline, whose
/// flat discovery scope broadcasts to the whole fleet).
bool control_plane(const net::Message& m) { return m.kind.rfind("disco.", 0) != 0; }

struct FleetNumbers {
    bool converged = false;
    double adapt_s = 0;             ///< time until every node holds the policy
    double frames_node_period = 0;  ///< backhaul msgs / node / keep-alive period
    double bytes_node_period = 0;
    double msgs_sec_node = 0;
    double scan_old_us = 0;  ///< registrar lookup() adoption scan (direct arm)
    double scan_new_us = 0;  ///< registrar for_each() adoption scan (direct arm)
};

/// One fleet, one arm. cell_size == 0 wires every node straight to the
/// base (the un-batched baseline: per-(node, extension) keep-alives cross
/// the backhaul). cell_size > 0 groups nodes into radio cells of that size,
/// each anchored by a CellStation wired to the base: only the batched
/// frames cross the backhaul, the fan-out stays cell-local.
FleetNumbers run_fleet(int n, int cell_size) {
    sim::Simulator sim;
    net::Network net{sim, net::NetworkConfig{}, 4242};

    // One probe at power-on is enough here; at fleet scale the periodic
    // probe broadcast is itself a control-plane storm (registrar beacons
    // keep liveness fresh without it — see NodeStack).
    disco::DiscoveryConfig quiet;
    quiet.probe_period = seconds(3600);

    BaseConfig bc;
    bc.issuer = "hall";
    bc.extension_lease = seconds(4);
    bc.max_keepalive_failures = 4;
    const double period_s =
        static_cast<double>(bc.keepalive_period.count()) / 1e9;
    const Duration window = bc.keepalive_period * 4;
    const double periods = 4.0;

    const bool direct = cell_size == 0;
    auto hub = std::make_unique<BaseStation>(net, "hall", net::Position{0, -5000}, 1.0,
                                             bc, disco::RegistrarConfig{}, nullptr, quiet);
    hub->keys().add_key("hall", to_bytes("k"));
    hub->base().add_extension(noop_package("hall/noop"));
    // The hub's admission gate defaults to one-hall sizing (~2000 calls/s);
    // at 10^4 direct nodes the renewal stream alone exceeds it and the gate
    // sheds forever — the very failure mode the batched arm removes. Open
    // it wide, identically for both arms: this section measures the wire
    // frames each design costs, not the governor.
    net::AdmissionConfig wide;
    wide.rate_per_sec = 1e6;
    wide.burst = 65536;
    wide.queue_cap = {65536, 65536, 65536};
    hub->router().admission().set_config(wide);

    std::vector<std::unique_ptr<midas::CellStation>> stations;
    const int cells = direct ? 0 : (n + cell_size - 1) / cell_size;
    for (int c = 0; c < cells; ++c) {
        auto st = std::make_unique<midas::CellStation>(
            net, "cell:" + std::to_string(c), net::Position{1000.0 * c, 0.0}, 120.0,
            midas::CellRelayConfig{}, disco::RegistrarConfig{}, quiet);
        net.add_wire(hub->id(), st->id());
        hub->base().attach_cell(st->label(), st->id());
        stations.push_back(std::move(st));
    }

    std::vector<std::unique_ptr<MobileNode>> nodes;
    nodes.reserve(static_cast<std::size_t>(n));
    SimTime start = sim.now();
    for (int i = 0; i < n; ++i) {
        midas::ReceiverConfig rc;
        net::Position pos;
        if (direct) {
            pos = {10.0 * (i % 100), 1000.0 + 10.0 * (i / 100)};
        } else {
            int c = i / cell_size, k = i % cell_size;
            rc.cell = "cell:" + std::to_string(c);
            pos = {1000.0 * c - 22.5 + 5.0 * (k % 10), -22.5 + 5.0 * (k / 10)};
        }
        auto node = std::make_unique<MobileNode>(net, "n" + std::to_string(i), pos,
                                                 direct ? 1.0 : 60.0, rc, nullptr, quiet);
        node->trust().trust("hall", to_bytes("k"));
        if (direct) net.add_wire(hub->id(), node->id());
        nodes.push_back(std::move(node));
        // Stagger power-on: ten thousand devices do not boot in the same
        // microsecond in any real hall, and the burst would only measure
        // the admission queue.
        if (i % 200 == 199) sim.run_until(sim.now() + milliseconds(20));
    }

    FleetNumbers out;
    std::vector<const midas::AdaptationService*> waiting;
    waiting.reserve(nodes.size());
    for (const auto& node : nodes) waiting.push_back(&node->receiver());
    SimTime deadline = sim.now() + seconds(120);
    while (sim.now() < deadline) {
        std::erase_if(waiting, [](const midas::AdaptationService* r) {
            return r->installed_count() >= 1;
        });
        if (waiting.empty()) break;
        sim.run_until(sim.now() + milliseconds(5));
    }
    out.converged = waiting.empty();
    out.adapt_s = static_cast<double>((sim.now() - start).count()) / 1e9;
    if (!out.converged) return out;

    // Tap the backhaul: everything delivered to the base, plus everything
    // the base sends to its wired peers (nodes or cell stations).
    Traffic bh;
    const NodeId hub_id = hub->id();
    net.set_tap(hub_id, [&bh](const net::Message& m) {
        if (control_plane(m)) {
            ++bh.msgs;
            bh.bytes += m.wire_size();
        }
    });
    auto from_hub = [&bh, hub_id](const net::Message& m) {
        if (m.from == hub_id && control_plane(m)) {
            ++bh.msgs;
            bh.bytes += m.wire_size();
        }
    };
    if (direct) {
        for (auto& node : nodes) net.set_tap(node->id(), from_hub);
    } else {
        for (auto& st : stations) net.set_tap(st->id(), from_hub);
    }

    sim.run_until(sim.now() + bc.keepalive_period);  // settle install replies
    Traffic t0 = bh;
    sim.run_until(sim.now() + window);
    const double dm = static_cast<double>(bh.msgs - t0.msgs);
    const double db = static_cast<double>(bh.bytes - t0.bytes);
    out.frames_node_period = dm / n / periods;
    out.bytes_node_period = db / n / periods;
    out.msgs_sec_node = dm / n / (periods * period_s);

    if (direct) {
        // (e) the per-tick adoption scan over n live registrations: the old
        // vector-building lookup() against the in-place for_each() that
        // replaced it in ExtensionBase::keepalive_tick().
        auto& reg = hub->registrar();
        constexpr int kReps = 5;
        auto t_old = std::chrono::steady_clock::now();
        for (int r = 0; r < kReps; ++r) {
            auto items = reg.lookup("midas.adaptation");
            benchmark::DoNotOptimize(items);
        }
        auto t_mid = std::chrono::steady_clock::now();
        std::size_t seen = 0;
        for (int r = 0; r < kReps; ++r) {
            reg.for_each("midas.adaptation",
                         [&seen](const disco::ServiceItem&) { ++seen; });
        }
        auto t_end = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(seen);
        out.scan_old_us =
            std::chrono::duration<double, std::micro>(t_mid - t_old).count() / kReps;
        out.scan_new_us =
            std::chrono::duration<double, std::micro>(t_end - t_mid).count() / kReps;
    }
    return out;
}

// ------------------------------------------------- rollout at scale (f) ----

struct RolloutNumbers {
    bool converged = false;  ///< incumbent reached every node
    bool completed = false;  ///< healthy arm: canary graduated
    bool aborted = false;    ///< poison arm: rollout aborted
    double adapt_s = 0;      ///< incumbent convergence time
    double rollout_s = 0;    ///< begin_rollout -> complete (healthy arm)
    double rollback_s = 0;   ///< abort -> whole fleet back on incumbent
    std::size_t cohort = 0;  ///< stage-0 cohort size
    std::size_t blast = 0;   ///< nodes that ever held the canary
    std::size_t escapes = 0; ///< canary sightings outside the cohort
};

/// One direct-wired fleet, one canary incident. poison == false walks a
/// healthy canary through the full ladder; poison == true ships a canary
/// whose advice throws, drives motor traffic on the cohort until the
/// quarantine gate aborts, then times the fleet-wide rollback.
RolloutNumbers run_rollout_fleet(int n, bool poison) {
    sim::Simulator sim;
    net::Network net{sim, net::NetworkConfig{}, 4242};
    disco::DiscoveryConfig quiet;
    quiet.probe_period = seconds(3600);

    BaseConfig bc;
    bc.issuer = "hall";
    bc.rollout.stages = {0.01, 0.10, 0.50, 1.0};
    bc.rollout.stage_window = seconds(1);
    bc.rollout.tick_period = milliseconds(200);
    auto hub = std::make_unique<BaseStation>(net, "hall", net::Position{0, -5000}, 1.0,
                                             bc, disco::RegistrarConfig{}, nullptr, quiet);
    hub->keys().add_key("hall", to_bytes("k"));
    // Same wide-open admission gate as (d), for the same reason.
    net::AdmissionConfig wide;
    wide.rate_per_sec = 1e6;
    wide.burst = 65536;
    wide.queue_cap = {65536, 65536, 65536};
    hub->router().admission().set_config(wide);
    hub->base().add_extension(noop_package("hall/policy"));

    std::vector<std::unique_ptr<MobileNode>> nodes;
    std::vector<std::shared_ptr<rt::ServiceObject>> motors;
    nodes.reserve(static_cast<std::size_t>(n));
    SimTime start = sim.now();
    for (int i = 0; i < n; ++i) {
        auto node = std::make_unique<MobileNode>(
            net, "n" + std::to_string(i),
            net::Position{10.0 * (i % 100), 1000.0 + 10.0 * (i / 100)}, 1.0,
            midas::ReceiverConfig{}, nullptr, quiet);
        node->trust().trust("hall", to_bytes("k"));
        motors.push_back(robot::make_motor(node->runtime(), "motor:" + std::to_string(i)));
        net.add_wire(hub->id(), node->id());
        nodes.push_back(std::move(node));
        if (i % 200 == 199) sim.run_until(sim.now() + milliseconds(20));
    }

    auto count_on = [&](std::uint32_t version) {
        std::size_t c = 0;
        for (const auto& node : nodes) {
            for (const auto& info : node->receiver().installed()) {
                if (info.name == "hall/policy" && info.version == version) ++c;
            }
        }
        return c;
    };
    RolloutNumbers out;
    SimTime deadline = sim.now() + seconds(300);
    while (sim.now() < deadline && count_on(1) < static_cast<std::size_t>(n)) {
        sim.run_until(sim.now() + milliseconds(50));
    }
    out.converged = count_on(1) == static_cast<std::size_t>(n);
    out.adapt_s = static_cast<double>((sim.now() - start).count()) / 1e9;
    if (!out.converged) return out;

    const char* body = poison ? "fun onEntry() { throw \"poison\"; }"
                              : "fun onEntry() { let x = 1; }";
    ExtensionPackage canary = noop_package("hall/policy");
    canary.script = body;
    SimTime begin = sim.now();
    std::uint32_t v2 = hub->base().begin_rollout(canary);
    const midas::RolloutController& rc = hub->base().rollout();
    std::vector<std::size_t> cohort;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (rc.selects_canary("hall/policy", nodes[i]->label())) cohort.push_back(i);
    }
    out.cohort = cohort.size();

    std::vector<bool> saw_v2(nodes.size(), false);
    deadline = sim.now() + seconds(120);
    while (sim.now() < deadline) {
        auto v = rc.view("hall/policy");
        if (!v || v->status != midas::RolloutController::Status::kActive) break;
        if (poison) {
            // Only the cohort holds the canary; its advice throws on every
            // motor call and the quarantine gate does the rest.
            for (std::size_t i : cohort) {
                try {
                    motors[i]->call("rotate", {rt::Value{1.0}});
                } catch (const std::exception&) {
                }
            }
        }
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            for (const auto& info : nodes[i]->receiver().installed()) {
                if (info.name == "hall/policy" && info.version == v2) saw_v2[i] = true;
            }
        }
        sim.run_until(sim.now() + milliseconds(100));
    }
    auto v = rc.view("hall/policy");
    out.completed = v && v->status == midas::RolloutController::Status::kComplete;
    out.aborted = v && v->status == midas::RolloutController::Status::kAborted;
    out.rollout_s = static_cast<double>((sim.now() - begin).count()) / 1e9;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (!saw_v2[i]) continue;
        ++out.blast;
        bool in_cohort = false;
        for (std::size_t c : cohort) in_cohort |= (c == i);
        if (!in_cohort) ++out.escapes;
    }
    if (out.aborted) {
        SimTime rb = sim.now();
        deadline = sim.now() + seconds(120);
        while (sim.now() < deadline && count_on(1) < static_cast<std::size_t>(n)) {
            sim.run_until(sim.now() + milliseconds(100));
        }
        out.rollback_s = static_cast<double>((sim.now() - rb).count()) / 1e9;
    }
    return out;
}

// ------------------------------------------------ parallel kernel (g) ----

struct ParallelNumbers {
    double wall_s = 0;
    std::uint64_t executed = 0;
    std::uint64_t windows = 0;
};

/// One hall per shard, `n` periodic per-node duties spread across the
/// halls, one simulated second. Each duty burns a fixed slice of CPU (a
/// stand-in for the adoption scan + advice dispatch a real hall tick
/// does), so the workload is compute-bound and the kernel's window
/// barrier is what either scales or doesn't.
ParallelNumbers run_parallel_sweep(int n, std::size_t workers) {
    sim::ShardOptions opts;
    opts.shards = 8;
    opts.workers = workers;
    opts.lookahead = milliseconds(1);
    opts.seed = 4242;
    sim::ShardedSimulator shards(opts);

    const int per_shard = (n + static_cast<int>(opts.shards) - 1) /
                          static_cast<int>(opts.shards);
    for (std::size_t s = 0; s < opts.shards; ++s) {
        sim::Simulator& sim = shards.shard(s);
        for (int i = 0; i < per_shard; ++i) {
            std::uint64_t h = shards.shard_seed(s, "duty") + static_cast<std::uint64_t>(i);
            sim.schedule_every(milliseconds(10), [h]() mutable {
                for (int k = 0; k < 200; ++k) h = fnv1a64_mix(h, static_cast<std::uint64_t>(k));
                benchmark::DoNotOptimize(h);
            });
        }
    }

    ParallelNumbers out;
    auto t0 = std::chrono::steady_clock::now();
    shards.run_until(SimTime::zero() + seconds(1));
    auto t1 = std::chrono::steady_clock::now();
    out.wall_s = std::chrono::duration<double>(t1 - t0).count();
    out.executed = shards.executed();
    out.windows = shards.windows();
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = pmp::bench::strip_smoke(argc, argv);
    printf("=== E10: adaptation at scale (virtual time) ===\n\n");

    printf("(a) time to adapt N nodes entering simultaneously (1 extension):\n");
    printf("%8s %16s %16s\n", "nodes", "all adapted", "per node");
    for (int n : smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 5, 10, 20, 50}) {
        World w;
        w.hall->base().add_extension(noop_package("hall/noop"));
        for (int i = 0; i < n; ++i) w.add_node(i);
        SimTime start = w.sim.now();
        bool ok = w.run_until([&] {
            for (const auto& node : w.nodes) {
                if (node->receiver().installed_count() != 1) return false;
            }
            return true;
        });
        double total_ms = static_cast<double>((w.sim.now() - start).count()) / 1e6;
        printf("%8d %13.1f ms %13.2f ms\n", n, ok ? total_ms : -1.0,
               ok ? total_ms / n : -1.0);
    }

    printf("\n(b) time to adapt one node vs number of policy extensions:\n");
    printf("%12s %16s %16s\n", "extensions", "fully adapted", "per extension");
    for (int k : smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 5, 10, 20}) {
        World w;
        for (int i = 0; i < k; ++i) {
            w.hall->base().add_extension(noop_package("hall/ext" + std::to_string(i)));
        }
        w.add_node(0);
        SimTime start = w.sim.now();
        bool ok = w.run_until([&] {
            return w.nodes[0]->receiver().installed_count() == static_cast<std::size_t>(k);
        });
        double total_ms = static_cast<double>((w.sim.now() - start).count()) / 1e6;
        printf("%12d %13.1f ms %13.2f ms\n", k, ok ? total_ms : -1.0,
               ok ? total_ms / k : -1.0);
    }

    printf("\n(c) install latency vs package size (1 node, 1 extension):\n");
    printf("%14s %14s %16s\n", "script bytes", "wire bytes", "adapt latency");
    for (std::size_t padding : smoke ? std::vector<std::size_t>{1'000u}
                                     : std::vector<std::size_t>{0u, 1'000u, 10'000u,
                                                                100'000u}) {
        World w;
        ExtensionPackage pkg = noop_package("hall/sized", padding);
        std::size_t wire = pkg.wire_size();
        w.hall->base().add_extension(pkg);
        w.add_node(0);
        SimTime start = w.sim.now();
        bool ok =
            w.run_until([&] { return w.nodes[0]->receiver().installed_count() == 1; });
        printf("%14zu %14zu %13.1f ms\n", pkg.script.size(), wire,
               ok ? static_cast<double>((w.sim.now() - start).count()) / 1e6 : -1.0);
    }

    const int kCell = 100;
    printf("\n(d) control-plane frames over the base's backhaul, direct vs batched\n"
           "    (keep-alive period 800 ms, lease 4 s, cells of %d, discovery\n"
           "    beacons excluded from both arms):\n", kCell);
    printf("%8s %8s %12s %18s %17s %14s\n", "nodes", "arm", "adapted in",
           "frames/node/period", "bytes/node/period", "msgs/s/node");
    struct FleetRow {
        int n;
        FleetNumbers direct, cell;
    };
    std::vector<FleetRow> fleet;
    for (int n : smoke ? std::vector<int>{10'000} : std::vector<int>{1'000, 10'000}) {
        FleetRow row{n, run_fleet(n, 0), run_fleet(n, kCell)};
        for (auto [arm, r] : {std::pair{"direct", &row.direct}, {"cells", &row.cell}}) {
            if (r->converged) {
                printf("%8d %8s %10.1f s %18.3f %15.0f B %14.2f\n", n, arm,
                       r->adapt_s, r->frames_node_period, r->bytes_node_period,
                       r->msgs_sec_node);
            } else {
                printf("%8d %8s %12s\n", n, arm, "DID NOT CONVERGE");
            }
        }
        fleet.push_back(row);
    }
    for (const FleetRow& row : fleet) {
        if (!row.direct.converged || !row.cell.converged) continue;
        printf("    %d nodes: %.0fx fewer backhaul frames per node per period "
               "(batched vs direct)\n",
               row.n, row.direct.frames_node_period / row.cell.frames_node_period);
    }

    if (!fleet.empty() && fleet.back().direct.converged && fleet.back().cell.converged) {
        // Cells are independent radio neighbourhoods, so base-side load is
        // linear in cell count; extrapolate from the largest measured tier.
        const FleetNumbers& d = fleet.back().direct;
        const FleetNumbers& c = fleet.back().cell;
        const double per_cell_frames = c.frames_node_period * kCell;
        printf("\n    MODELED from the measured constants above (not simulated):\n");
        printf("%12s %22s %22s\n", "nodes", "direct: frames/s", "batched: frames/s");
        for (double n : {1e5, 1e6}) {
            printf("%12.0f %22.3g %22.3g\n", n, n * d.frames_node_period / 0.8,
                   (n / kCell) * per_cell_frames / 0.8);
        }
    }

    printf("\n(e) base per-tick adoption scan over N live registrations,\n"
           "    old allocating lookup() vs the in-place for_each() that\n"
           "    replaced it (wall time, direct world's registrar):\n");
    printf("%8s %16s %16s\n", "nodes", "lookup() scan", "for_each scan");
    for (const FleetRow& row : fleet) {
        if (!row.direct.converged) continue;
        printf("%8d %13.1f us %13.1f us\n", row.n, row.direct.scan_old_us,
               row.direct.scan_new_us);
    }

    printf("\n(f) staged canary rollout at fleet scale (stages 1%%/10%%/50%%/100%%,\n"
           "    window 1 s; poison arm aborts on the first cohort quarantine):\n");
    printf("%8s %8s %12s %14s %18s %12s\n", "nodes", "arm", "adapted in",
           "rollout done", "blast radius", "rollback");
    for (int n : smoke ? std::vector<int>{100} : std::vector<int>{1'000, 10'000}) {
        RolloutNumbers healthy = run_rollout_fleet(n, false);
        if (healthy.converged && healthy.completed) {
            printf("%8d %8s %10.1f s %12.1f s %11zu/%zu %12s\n", n, "healthy",
                   healthy.adapt_s, healthy.rollout_s, healthy.blast,
                   static_cast<std::size_t>(n), "-");
        } else {
            printf("%8d %8s %12s\n", n, "healthy",
                   healthy.converged ? "DID NOT COMPLETE" : "DID NOT CONVERGE");
        }
        RolloutNumbers bad = run_rollout_fleet(n, true);
        if (bad.converged && bad.aborted) {
            printf("%8d %8s %10.1f s %12s %8zu/%zu (%zu) %10.1f s\n", n, "poison",
                   bad.adapt_s, "aborted", bad.blast, static_cast<std::size_t>(n),
                   bad.cohort, bad.rollback_s);
            if (bad.escapes > 0) {
                printf("    WARNING: %zu canary sighting(s) OUTSIDE the cohort\n",
                       bad.escapes);
            }
        } else {
            printf("%8d %8s %12s\n", n, "poison",
                   bad.converged ? "DID NOT ABORT" : "DID NOT CONVERGE");
        }
    }

    printf("\n(g) sharded-kernel wall-clock speedup (8 halls, 1 simulated second\n"
           "    of periodic per-node duties; virtual time identical at every\n"
           "    worker count, only the wall clock moves). %u hardware thread(s)\n"
           "    detected -- speedup is capped at that:\n",
           std::thread::hardware_concurrency());
    printf("%8s %8s %12s %12s %10s %10s\n", "nodes", "workers", "wall", "speedup",
           "events", "windows");
    for (int n : smoke ? std::vector<int>{1'000} : std::vector<int>{1'000, 10'000}) {
        double base_wall = 0;
        std::uint64_t base_exec = 0;
        for (std::size_t w : smoke ? std::vector<std::size_t>{1, 2}
                                   : std::vector<std::size_t>{1, 2, 4}) {
            ParallelNumbers p = run_parallel_sweep(n, w);
            if (w == 1) {
                base_wall = p.wall_s;
                base_exec = p.executed;
            }
            const char* det = p.executed == base_exec ? "" : "  EVENT-COUNT MISMATCH";
            printf("%8d %8zu %9.3f s %11.2fx %10llu %10llu%s\n", n, w, p.wall_s,
                   base_wall / p.wall_s, static_cast<unsigned long long>(p.executed),
                   static_cast<unsigned long long>(p.windows), det);
        }
    }

    printf("\nshape to check: (a) per-node cost stays roughly flat (the base\n"
           "pipelines installs); (b) per-extension cost is roughly constant;\n"
           "(c) latency grows with package size once serialization dominates\n"
           "the fixed discovery+rpc cost; (d) batched backhaul frames per node\n"
           "per period sit >=10x below direct and stay flat as cells are added;\n"
           "(e) for_each stays well under the allocating lookup() scan;\n"
           "(f) healthy rollout time is dominated by the 4 stage windows, not\n"
           "fleet size; poison blast radius stays ~1%% of the fleet (the stage-0\n"
           "cohort) with zero escapes, and rollback is a couple of keep-alive\n"
           "periods; (g) >=2x at 4 workers on the 10^4 tier, with identical\n"
           "event counts at every worker count.\n");
    return 0;
}
