# Benchmark targets (one binary per paper table/figure — see DESIGN.md §4).
# Included from the top-level CMakeLists so that build/bench/ contains only
# the executables: the repro loop is `for b in build/bench/*; do $b; done`.

function(pmp_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    pmp_common pmp_sim pmp_crypto pmp_net pmp_rt pmp_script
    pmp_prose pmp_disco pmp_midas pmp_robot pmp_db pmp_specmini pmp_tspace
    benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

pmp_bench(bench_interception)
pmp_bench(bench_platform_overhead)
pmp_bench(bench_weaving)
pmp_bench(bench_extension_cost)
pmp_bench(bench_callpath)
pmp_bench(bench_monitoring)
pmp_bench(bench_db)
pmp_bench(bench_leasing)
pmp_bench(bench_adaptation_scale)
pmp_bench(bench_trust)
pmp_bench(bench_tspace)
pmp_bench(bench_script)
