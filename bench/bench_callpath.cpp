// E5 / Fig 2: the adapted remote call path, step by step.
//
// Reconstructs Fig 2c on the simulated radio: a client invokes m_R on the
// robot; MIDAS has installed session management, access control and
// quality control (state logging to the hall database). We report the
// virtual-time stamp of every step of one adapted call:
//
//   1. client issues the remote call
//   2. first interception: session information extracted
//   3. second interception: access control decides
//   4. state change intercepted and propagated to the hall database
//   5. result returned to the caller
//
// plus the end-to-end comparison adapted vs unadapted, and the wall-clock
// dispatch cost on the robot with and without the woven extensions.
#include <benchmark/benchmark.h>

#include "smoke.h"

#include <chrono>
#include <cstdio>

#include "midas/node.h"

namespace {

using namespace pmp;
using midas::BaseConfig;
using midas::BaseStation;
using midas::ExtensionPackage;
using midas::MobileNode;
using midas::PackageBinding;
using rt::Dict;
using rt::List;
using rt::TypeKind;
using rt::Value;

struct StepTrace {
    SimTime issued, session, access, state_logged, returned;
};

struct World {
    sim::Simulator sim;
    net::Network net{sim, net::NetworkConfig{}, 1234};
    std::unique_ptr<BaseStation> hall;
    std::unique_ptr<MobileNode> robot;
    std::unique_ptr<midas::NodeStack> client;
    std::shared_ptr<rt::ServiceObject> service;
    StepTrace trace;

    World() {
        BaseConfig bc;
        bc.issuer = "hall";
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 100.0, bc);
        hall->keys().add_key("hall", to_bytes("k"));

        robot = std::make_unique<MobileNode>(net, "robot:1:1", net::Position{10, 0}, 100.0);
        robot->trust().trust("hall", to_bytes("k"));
        robot->receiver().allow_capabilities("hall", {"net"});

        robot->runtime().register_type(
            rt::TypeInfo::Builder("RobotSvc")
                .field("state", TypeKind::kInt, Value{std::int64_t{0}})
                .method("work", TypeKind::kInt, {{"amount", TypeKind::kInt}},
                        [](rt::ServiceObject& self, List& args) -> Value {
                            std::int64_t next =
                                self.peek("state").as_int() + args[0].as_int();
                            self.set("state", Value{next});
                            return Value{next};
                        })
                .build());
        service = robot->runtime().create("RobotSvc", "m_R");
        robot->rpc().export_object("m_R");

        client = std::make_unique<midas::NodeStack>(net, "client", net::Position{5, 5},
                                                    100.0);
    }

    void install_policy() {
        ExtensionPackage session;
        session.name = "hall/session";
        session.script = "fun onEntry() { ctx.set_note(\"caller\", sys.caller()); }";
        session.bindings = {{prose::AdviceKind::kBefore, "call(* RobotSvc.*(..))",
                             "onEntry", -10}};
        hall->base().add_extension(session);

        ExtensionPackage access;
        access.name = "hall/access";
        access.script = R"(
            fun onEntry() {
                if (ctx.note("caller") == "") { ctx.deny("anonymous"); }
            })";
        access.bindings = {{prose::AdviceKind::kBefore, "call(* RobotSvc.*(..))",
                            "onEntry", 0}};
        access.implies = {"hall/session"};
        hall->base().add_extension(access);

        ExtensionPackage quality;
        quality.name = "hall/quality";
        quality.script = R"(
            fun onSet() {
                owner.post("collector", "post",
                           [sys.node(), {"field": ctx.field(), "new": ctx.newval()}]);
            })";
        quality.bindings = {{prose::AdviceKind::kFieldSet, "fieldset(RobotSvc.state)",
                             "onSet", 0}};
        quality.capabilities = {"net"};
        hall->base().add_extension(quality);
    }

    /// Step probes: native trace hooks around the installed policy.
    void arm_probes() {
        auto probe = std::make_shared<prose::Aspect>("probe");
        probe->before(
            "call(* RobotSvc.*(..))",
            [this](rt::CallFrame&) { trace.session = sim.now(); },
            /*priority=*/-5);  // after session (-10), before access (0)
        probe->before(
            "call(* RobotSvc.*(..))",
            [this](rt::CallFrame&) { trace.access = sim.now(); },
            /*priority=*/5);  // after access
        probe->on_field_set("fieldset(RobotSvc.state)",
                            [this](rt::ServiceObject&, const rt::FieldDecl&, const Value&,
                                   Value&) { trace.state_logged = sim.now(); },
                            /*priority=*/5);
        robot->weaver().weave(probe);
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(20)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(50));
        }
        return pred();
    }

    /// One remote call, returning end-to-end virtual latency.
    Duration remote_call() {
        trace = StepTrace{};
        trace.issued = sim.now();
        Value r = client->rpc().call_sync(robot->id(), "m_R", "work", {Value{1}});
        benchmark::DoNotOptimize(r);
        trace.returned = sim.now();
        return trace.returned - trace.issued;
    }
};

double ms(Duration d) { return static_cast<double>(d.count()) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = pmp::bench::strip_smoke(argc, argv);
    printf("=== E5 / Fig 2: adapted remote call path ===\n\n");

    // Unadapted baseline.
    World plain;
    plain.sim.run_for(seconds(1));
    Duration unadapted{0};
    for (int i = 0; i < 10; ++i) unadapted += plain.remote_call();
    unadapted /= 10;

    // Adapted world.
    World adapted;
    adapted.install_policy();
    if (!adapted.run_until(
            [&] { return adapted.robot->receiver().installed_count() == 3; })) {
        printf("FATAL: adaptation did not complete\n");
        return 1;
    }
    adapted.arm_probes();

    Duration adapted_latency{0};
    for (int i = 0; i < 10; ++i) adapted_latency += adapted.remote_call();
    adapted_latency /= 10;

    // One traced call for the step table.
    adapted.remote_call();
    const StepTrace& t = adapted.trace;
    adapted.run_until([&] { return adapted.hall->store().size() > 0; });

    printf("step table for one adapted call (virtual time from issue):\n");
    printf("  1. call issued                 %8.3f ms\n", 0.0);
    printf("  2. session info extracted      %8.3f ms\n", ms(t.session - t.issued));
    printf("  3. access control decided      %8.3f ms\n", ms(t.access - t.issued));
    printf("  4. state change intercepted    %8.3f ms\n", ms(t.state_logged - t.issued));
    printf("  5. result returned to caller   %8.3f ms\n", ms(t.returned - t.issued));
    printf("  (async) change in hall DB: %zu record(s) stored\n\n",
           adapted.hall->store().size());

    printf("end-to-end remote call latency (virtual, mean of 10):\n");
    printf("  unadapted m_R:  %8.3f ms\n", ms(unadapted));
    printf("  adapted m_R:    %8.3f ms   (+%.1f%%)\n", ms(adapted_latency),
           (ms(adapted_latency) / ms(unadapted) - 1.0) * 100.0);
    printf("\nshape to check: steps 2-4 add only dispatch-local work; the radio\n"
           "round-trip dominates end-to-end latency, so adaptation is nearly free\n"
           "at call granularity (paper: interception cost << functionality cost).\n");

    // Wall-clock dispatch cost on the robot, adapted vs not.
    auto measure_dispatch = [smoke](World& w, const char* label) {
        const int kCalls = smoke ? 2'000 : 200'000;
        w.robot->rpc();  // touch
        auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < kCalls; ++i) {
            try {
                w.service->call("work", {Value{1}});
            } catch (const Error&) {
                // access control denies anonymous local calls in the
                // adapted world; the cost of deciding is what we measure.
            }
        }
        auto stop = std::chrono::steady_clock::now();
        double ns_per =
            std::chrono::duration<double, std::nano>(stop - start).count() / kCalls;
        printf("  %-22s %8.1f ns/call (wall clock, %d calls)\n", label, ns_per, kCalls);
    };
    printf("\nrobot-side dispatch cost:\n");
    measure_dispatch(plain, "unadapted dispatch:");
    measure_dispatch(adapted, "adapted dispatch:");
    return 0;
}
