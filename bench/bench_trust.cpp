// E11 (paper §3.2, security): cost of the trust layer.
//
// "The verification of the originator of an extension is done before
// insertion of the extension in PROSE." We measure signing and verifying
// extension packages as a function of package size, plus the raw SHA-256 /
// HMAC building blocks and the negative paths (tampered package, untrusted
// issuer) that must stay cheap under attack.
#include <benchmark/benchmark.h>

#include "smoke.h"

#include "crypto/sha256.h"
#include "midas/package.h"

namespace {

using namespace pmp;
using midas::ExtensionPackage;

ExtensionPackage sized_package(std::size_t script_bytes) {
    ExtensionPackage pkg;
    pkg.name = "bench/sized";
    pkg.script = "fun onEntry() { }\n" + std::string(script_bytes, ' ');
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    pkg.capabilities = {"net"};
    return pkg;
}

crypto::KeyStore keys() {
    crypto::KeyStore ks;
    ks.add_key("hall", to_bytes("hall-signing-key"));
    return ks;
}

crypto::TrustStore trust() {
    crypto::TrustStore ts;
    ts.trust("hall", to_bytes("hall-signing-key"));
    return ts;
}

void BM_Sha256(benchmark::State& state) {
    Bytes data(static_cast<std::size_t>(state.range(0)), 0xAB);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Sha256::hash(std::span<const std::uint8_t>(data)));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSign(benchmark::State& state) {
    Bytes key = to_bytes("hall-signing-key");
    Bytes data(static_cast<std::size_t>(state.range(0)), 0xCD);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmac_sha256(std::span<const std::uint8_t>(key),
                                                     std::span<const std::uint8_t>(data)));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSign)->Arg(1024)->Arg(65536);

void BM_PackageSeal(benchmark::State& state) {
    auto ks = keys();
    ExtensionPackage pkg = sized_package(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(pkg.seal(ks, "hall"));
    }
    state.counters["wire_bytes"] = static_cast<double>(pkg.wire_size());
}
BENCHMARK(BM_PackageSeal)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_PackageOpenAndVerify(benchmark::State& state) {
    auto ks = keys();
    auto ts = trust();
    Bytes sealed = sized_package(static_cast<std::size_t>(state.range(0))).seal(ks, "hall");
    for (auto _ : state) {
        auto [pkg, sig] = ExtensionPackage::open(std::span<const std::uint8_t>(sealed));
        Bytes payload = pkg.signed_payload();
        ts.verify(std::span<const std::uint8_t>(payload), sig);
        benchmark::DoNotOptimize(pkg);
    }
    state.counters["wire_bytes"] = static_cast<double>(sealed.size());
}
BENCHMARK(BM_PackageOpenAndVerify)->Arg(1'000)->Arg(10'000)->Arg(100'000);

void BM_RejectTampered(benchmark::State& state) {
    auto ks = keys();
    auto ts = trust();
    Bytes sealed = sized_package(10'000).seal(ks, "hall");
    sealed[sealed.size() / 2] ^= 0x01;
    for (auto _ : state) {
        bool rejected = false;
        try {
            auto [pkg, sig] = ExtensionPackage::open(std::span<const std::uint8_t>(sealed));
            Bytes payload = pkg.signed_payload();
            ts.verify(std::span<const std::uint8_t>(payload), sig);
        } catch (const Error&) {
            rejected = true;
        }
        benchmark::DoNotOptimize(rejected);
    }
}
BENCHMARK(BM_RejectTampered);

void BM_RejectUntrustedIssuer(benchmark::State& state) {
    crypto::KeyStore mallory;
    mallory.add_key("mallory", to_bytes("mk"));
    auto ts = trust();  // trusts only "hall"
    Bytes sealed = sized_package(10'000).seal(mallory, "mallory");
    for (auto _ : state) {
        bool rejected = false;
        try {
            auto [pkg, sig] = ExtensionPackage::open(std::span<const std::uint8_t>(sealed));
            Bytes payload = pkg.signed_payload();
            ts.verify(std::span<const std::uint8_t>(payload), sig);
        } catch (const TrustError&) {
            rejected = true;
        }
        benchmark::DoNotOptimize(rejected);
    }
}
BENCHMARK(BM_RejectUntrustedIssuer);

}  // namespace

int main(int argc, char** argv) { return pmp::bench::run_main(argc, argv); }
