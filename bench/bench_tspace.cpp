// Ablation (paper §4.6 future work): push-based MIDAS distribution vs a
// tuple-space-based alternative.
//
// The paper's deployed MIDAS pushes extensions at discovered nodes and
// keeps them alive with keep-alives; the future-work direction is to
// publish extensions into a tuple space that devices read on their own
// schedule. Both achieve locality in time and space; they trade latency
// against traffic and decouple identity differently. We measure, in
// virtual time, for each transport:
//
//   adapt latency   — node enters the cell -> extension active
//   steady traffic  — radio messages per node-second while resident
//   policy-removal  — authority retracts the policy -> extension withdrawn
//   leave-removal   — node leaves the cell -> extension withdrawn
#include <cstdio>
#include <functional>

#include "midas/node.h"
#include "robot/devices.h"
#include "tspace/remote.h"

namespace {

using namespace pmp;
using midas::BaseConfig;
using midas::BaseStation;
using midas::ExtensionPackage;
using midas::MobileNode;

ExtensionPackage noop_pkg() {
    ExtensionPackage pkg;
    pkg.name = "hall/policy";
    pkg.script = "fun onEntry() { }";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

struct Measurement {
    double adapt_ms = -1;
    double msgs_per_sec = -1;
    double retract_ms = -1;
    double leave_ms = -1;
};

struct CommonWorld {
    sim::Simulator sim;
    net::Network net{sim, net::NetworkConfig{}, 555};
    std::unique_ptr<BaseStation> hall;
    std::unique_ptr<MobileNode> robot;

    CommonWorld() {
        BaseConfig bc;
        bc.issuer = "hall";
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 100.0, bc);
        hall->keys().add_key("hall", to_bytes("k"));
        robot = std::make_unique<MobileNode>(net, "robot", net::Position{10, 0}, 100.0);
        robot->trust().trust("hall", to_bytes("k"));
        robot->receiver().allow_capabilities("hall", {});
        robot::make_motor(robot->runtime(), "motor:x");
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(5));
        }
        return pred();
    }

    double since_ms(SimTime start) {
        return static_cast<double>((sim.now() - start).count()) / 1e6;
    }

    Measurement measure(const std::function<void()>& activate_policy,
                        const std::function<void()>& retract_policy) {
        Measurement m;
        SimTime start = sim.now();
        activate_policy();
        if (!run_until([&] { return robot->receiver().installed_count() == 1; })) return m;
        m.adapt_ms = since_ms(start);

        net.reset_stats();
        SimTime resident_start = sim.now();
        sim.run_for(seconds(30));
        m.msgs_per_sec = static_cast<double>(net.stats().delivered) /
                         ((sim.now() - resident_start).count() / 1e9);

        SimTime retract_at = sim.now();
        retract_policy();
        if (run_until([&] { return robot->receiver().installed_count() == 0; })) {
            m.retract_ms = since_ms(retract_at);
        }

        // Re-adapt, then leave.
        activate_policy();
        if (!run_until([&] { return robot->receiver().installed_count() == 1; })) return m;
        SimTime leave_at = sim.now();
        robot->move_to({1000, 0});
        if (run_until([&] { return robot->receiver().installed_count() == 0; })) {
            m.leave_ms = since_ms(leave_at);
        }
        return m;
    }
};

}  // namespace

int main() {
    printf("=== tuple-space ablation: push (MIDAS) vs pull (tuple space) ===\n");
    printf("lease/ttl 2s, keepalive 800ms, poll 1s\n\n");
    printf("%-10s %12s %18s %14s %12s\n", "transport", "adapt(ms)", "msgs/node-sec",
           "retract(ms)", "leave(ms)");

    {
        CommonWorld w;
        Measurement m = w.measure(
            [&]() { w.hall->base().add_extension(noop_pkg()); },
            [&]() { w.hall->base().remove_extension("hall/policy"); });
        printf("%-10s %12.1f %18.1f %14.1f %12.1f\n", "push", m.adapt_ms, m.msgs_per_sec,
               m.retract_ms, m.leave_ms);
    }
    {
        CommonWorld w;
        tspace::TupleSpace space(w.sim);
        tspace::TupleSpaceHost host(w.hall->rpc(), w.hall->registrar(), space);
        tspace::TupleSpacePublisher publisher(w.sim, space, w.hall->keys(), "hall",
                                              seconds(2));
        tspace::TupleSpacePuller puller(w.robot->discovery(), w.robot->receiver(),
                                        seconds(1));
        Measurement m = w.measure([&]() { publisher.publish(noop_pkg()); },
                                  [&]() { publisher.retract("hall/policy"); });
        printf("%-10s %12.1f %18.1f %14.1f %12.1f\n", "pull", m.adapt_ms, m.msgs_per_sec,
               m.retract_ms, m.leave_ms);
    }
    {
        CommonWorld w;
        tspace::TupleSpace space(w.sim);
        tspace::TupleSpaceHost host(w.hall->rpc(), w.hall->registrar(), space);
        tspace::TupleSpacePublisher publisher(w.sim, space, w.hall->keys(), "hall",
                                              seconds(2));
        tspace::TupleSpacePuller puller(w.robot->discovery(), w.robot->receiver(),
                                        seconds(1), tspace::TupleSpacePuller::Mode::kNotify);
        w.sim.run_for(seconds(3));  // let the subscription settle first
        Measurement m = w.measure([&]() { publisher.publish(noop_pkg()); },
                                  [&]() { publisher.retract("hall/policy"); });
        printf("%-10s %12.1f %18.1f %14.1f %12.1f\n", "notify", m.adapt_ms,
               m.msgs_per_sec, m.retract_ms, m.leave_ms);
    }

    printf("\nshape to check: push adapts faster (event-driven) and retracts in one\n"
           "round-trip; pull pays up to one poll period on every transition but\n"
           "needs no per-node state at the authority — the classic event-vs-poll\n"
           "trade, now for behaviour instead of data.\n");
    return 0;
}
