// E6 / Fig 3b + Fig 5: the hardware-monitoring and logging extension.
//
// Every Motor.* invocation on the plotter is intercepted, logged with its
// timestamp and robot identity, and sent asynchronously to the base
// station's database. We compare three configurations while the plotter
// draws a fixed workload:
//
//   unmonitored     — no extension
//   per-action post — the Fig 5 extension: one radio message per action
//   batched post    — a local buffer flushed every k actions ("data is
//                     first locally stored and then asynchronously sent")
//
// reporting records stored, radio messages, bytes on air, and virtual
// drawing time.
#include <benchmark/benchmark.h>

#include "smoke.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "midas/node.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "robot/plotter.h"

namespace {

using namespace pmp;
using midas::BaseConfig;
using midas::BaseStation;
using midas::ExtensionPackage;
using midas::MobileNode;
using rt::Value;

constexpr const char* kPerActionScript = R"(
    fun onEntry() {
        owner.post("collector", "post",
                   [sys.node(), {"device": ctx.target(), "action": ctx.method(),
                                 "at_ms": sys.now_ms()}]);
    }
)";

constexpr const char* kBatchedScript = R"(
    let buffer = [];
    fun onEntry() {
        buffer[len(buffer)] = {"device": ctx.target(), "action": ctx.method(),
                               "at_ms": sys.now_ms()};
        if (len(buffer) >= config.batch) { flush(); }
    }
    fun flush() {
        if (len(buffer) > 0) {
            owner.post("collector", "post_batch", [sys.node(), buffer]);
            buffer = [];
        }
    }
    fun onShutdown(reason) { flush(); }   // consistent state before leaving
)";

struct Scenario {
    sim::Simulator sim;
    net::Network net{sim, net::NetworkConfig{}, 99};
    std::unique_ptr<BaseStation> hall;
    std::unique_ptr<MobileNode> robot_node;
    std::unique_ptr<robot::RobotController> controller;
    std::unique_ptr<robot::Plotter> plotter;

    Scenario() {
        BaseConfig bc;
        bc.issuer = "hall";
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 100.0, bc);
        hall->keys().add_key("hall", to_bytes("k"));

        // Batch posts land via a dedicated sink service (the collector's
        // post() takes single entries; batches get their own endpoint).
        auto& store = hall->store();
        auto* sim_ptr = &sim;
        auto batch_type =
            rt::TypeInfo::Builder("BatchSink")
                .method("post_batch", rt::TypeKind::kInt,
                        {{"source", rt::TypeKind::kStr},
                         {"entries", rt::TypeKind::kList}},
                        [&store, sim_ptr](rt::ServiceObject&, rt::List& args) -> Value {
                            for (const Value& entry : args[1].as_list()) {
                                store.append(args[0].as_str(), sim_ptr->now(), entry);
                            }
                            return Value{
                                static_cast<std::int64_t>(args[1].as_list().size())};
                        })
                .build();
        hall->runtime().register_type(batch_type);
        hall->runtime().create("BatchSink", "batchsink");
        hall->rpc().export_object("batchsink");

        robot_node =
            std::make_unique<MobileNode>(net, "robot:1:1", net::Position{10, 0}, 100.0);
        robot_node->trust().trust("hall", to_bytes("k"));
        robot_node->receiver().allow_capabilities("hall", {"net"});

        controller = std::make_unique<robot::RobotController>(sim, robot_node->runtime(),
                                                              "robot:1:1");
        plotter = std::make_unique<robot::Plotter>(*controller);
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(20)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(50));
        }
        return pred();
    }

    /// Draw a zig-zag of `strokes` segments; returns virtual time taken.
    Duration draw(int strokes) {
        SimTime start = sim.now();
        auto drawing = plotter->drawing();
        drawing->call("move_to", {Value{0.0}, Value{0.0}});
        for (int i = 1; i <= strokes; ++i) {
            double x = static_cast<double>(i);
            double y = (i % 2) ? 1.0 : 0.0;
            drawing->call("line_to", {Value{x}, Value{y}});
        }
        drawing->call("pen_up", {});
        sim.run_for(seconds(5));  // drain async posts
        return sim.now() - start;
    }
};

void report(const char* label, Scenario& s, Duration took) {
    printf("%-18s %8zu records %10llu msgs %12llu bytes %10.2f s virtual\n", label,
           s.hall->store().size(),
           static_cast<unsigned long long>(s.net.stats().delivered),
           static_cast<unsigned long long>(s.net.stats().bytes_delivered),
           static_cast<double>(took.count()) / 1e9);
}

}  // namespace

int main(int argc, char** argv) {
    const bool smoke = pmp::bench::strip_smoke(argc, argv);
    const int kStrokes = smoke ? 10 : 100;
    printf("=== E6 / Fig 3b: hardware monitoring extension "
           "(%d plotter strokes; ~3 motor actions each) ===\n\n",
           kStrokes);

    {
        Scenario s;
        s.sim.run_for(seconds(3));
        s.net.reset_stats();
        Duration took = s.draw(kStrokes);
        report("unmonitored", s, took);
    }
    {
        Scenario s;
        ExtensionPackage pkg;
        pkg.name = "hall/monitoring";
        pkg.script = kPerActionScript;
        pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
        pkg.capabilities = {"net"};
        s.hall->base().add_extension(pkg);
        if (!s.run_until([&] { return s.robot_node->receiver().installed_count() == 1; })) {
            printf("FATAL: monitoring extension failed to install\n");
            return 1;
        }
        s.net.reset_stats();
        Duration took = s.draw(kStrokes);
        report("per-action post", s, took);
    }
    for (int batch : smoke ? std::vector<int>{10} : std::vector<int>{10, 50}) {
        Scenario s;
        ExtensionPackage pkg;
        pkg.name = "hall/monitoring";
        pkg.script = kBatchedScript;
        pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
        pkg.capabilities = {"net"};
        pkg.config = Value{rt::Dict{{"batch", Value{batch}}}};
        // Batched variant posts to the batch sink.
        pkg.script = std::string(kBatchedScript);
        // Replace collector target: post_batch lives on "batchsink".
        auto pos = pkg.script.find("\"collector\", \"post_batch\"");
        if (pos != std::string::npos) {
            pkg.script.replace(pos, strlen("\"collector\", \"post_batch\""),
                               "\"batchsink\", \"post_batch\"");
        }
        s.hall->base().add_extension(pkg);
        if (!s.run_until([&] { return s.robot_node->receiver().installed_count() == 1; })) {
            printf("FATAL: batched extension failed to install\n");
            return 1;
        }
        s.net.reset_stats();
        Duration took = s.draw(kStrokes);
        char label[32];
        snprintf(label, sizeof(label), "batched post(%d)", batch);
        report(label, s, took);
    }

    printf("\nshape to check: monitoring multiplies radio messages by ~1 per motor\n"
           "action; batching collapses messages (and bytes) by ~the batch factor\n"
           "without losing records; virtual drawing time is unchanged because the\n"
           "posts are asynchronous (paper: 'first locally stored and then\n"
           "asynchronously sent').\n");

    // --- what does watching cost? The same monitored scenario, wall-clock,
    // with the obs layer recording vs. compiled-in-but-idle.
    auto monitored_run_wall = [kStrokes](bool obs_on) {
        obs::set_enabled(obs_on);
        auto t0 = std::chrono::steady_clock::now();
        Scenario s;
        ExtensionPackage pkg;
        pkg.name = "hall/monitoring";
        pkg.script = kPerActionScript;
        pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
        pkg.capabilities = {"net"};
        s.hall->base().add_extension(pkg);
        s.run_until([&] { return s.robot_node->receiver().installed_count() == 1; });
        s.draw(kStrokes);
        obs::set_enabled(true);
        return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    };

    printf("\n=== obs instrumentation cost on this scenario (wall-clock, best of 5) ===\n");
    double idle = 1e9, enabled = 1e9;
    monitored_run_wall(true);  // warm-up
    for (int i = 0; i < (smoke ? 1 : 5); ++i) {
        idle = std::min(idle, monitored_run_wall(false));
        enabled = std::min(enabled, monitored_run_wall(true));
    }
    printf("idle:    %.4f s wall\n", idle);
    printf("enabled: %.4f s wall  (overhead %.1f%%)\n", enabled,
           (enabled / idle - 1.0) * 100);

    // Live metrics accumulated across everything this bench just did.
    printf("\n=== metrics snapshot (whole bench run) ===\n%s",
           obs::to_text(obs::snapshot_metrics()).c_str());
    return 0;
}
