// E1 / Fig 1: the run-time adaptation process itself.
//
// Measures what PROSE's weaver does when an extension arrives or leaves:
// resolving pointcuts against every registered class, arming the minimal
// hooks, and restoring baseline dispatch on withdrawal — as a function of
// how many join points the runtime exposes.
#include <benchmark/benchmark.h>

#include "smoke.h"

#include "core/script_aspect.h"
#include "core/weaver.h"

namespace {

using namespace pmp;
using rt::List;
using rt::TypeKind;
using rt::Value;

/// Build a runtime with `types` classes of `methods` methods each.
std::unique_ptr<rt::Runtime> make_runtime(int types, int methods) {
    auto runtime = std::make_unique<rt::Runtime>("bench");
    for (int t = 0; t < types; ++t) {
        rt::TypeInfo::Builder builder("Class" + std::to_string(t));
        for (int m = 0; m < methods; ++m) {
            builder.method("method" + std::to_string(m), TypeKind::kInt,
                           {{"x", TypeKind::kInt}},
                           [](rt::ServiceObject&, List& args) -> Value { return args[0]; });
        }
        builder.field("state", TypeKind::kInt, Value{std::int64_t{0}});
        runtime->register_type(builder.build());
    }
    return runtime;
}

std::shared_ptr<prose::Aspect> wildcard_aspect() {
    auto aspect = std::make_shared<prose::Aspect>("wild");
    aspect->before("call(* Class*.*(..))", [](rt::CallFrame&) {});
    return aspect;
}

/// Weave + withdraw across a runtime with state.range(0) classes x
/// state.range(1) methods (join points = product).
void BM_WeaveWithdraw(benchmark::State& state) {
    auto runtime = make_runtime(static_cast<int>(state.range(0)),
                                static_cast<int>(state.range(1)));
    prose::Weaver weaver(*runtime);
    auto aspect = wildcard_aspect();
    for (auto _ : state) {
        AspectId id = weaver.weave(aspect);
        benchmark::DoNotOptimize(id);
        weaver.withdraw(id);
    }
    state.counters["join_points"] =
        static_cast<double>(state.range(0) * state.range(1));
}
BENCHMARK(BM_WeaveWithdraw)
    ->Args({1, 10})
    ->Args({10, 10})
    ->Args({50, 10})
    ->Args({10, 100})
    ->Args({100, 100});

/// A narrow pointcut must not pay for unrelated classes beyond the match
/// test: weaving cost is dominated by candidate enumeration.
void BM_WeaveNarrowPointcut(benchmark::State& state) {
    auto runtime = make_runtime(static_cast<int>(state.range(0)), 10);
    prose::Weaver weaver(*runtime);
    auto aspect = std::make_shared<prose::Aspect>("narrow");
    aspect->before("call(* Class0.method0(..))", [](rt::CallFrame&) {});
    for (auto _ : state) {
        AspectId id = weaver.weave(aspect);
        weaver.withdraw(id);
    }
}
BENCHMARK(BM_WeaveNarrowPointcut)->Arg(1)->Arg(10)->Arg(100);

/// Script extension arrival: parse + compile + top-level + weave — the full
/// install path minus networking/crypto (those are E10/E11).
void BM_ScriptExtensionCompileAndWeave(benchmark::State& state) {
    auto runtime = make_runtime(10, 10);
    prose::Weaver weaver(*runtime);
    const std::string source = R"(
        let count = 0;
        fun onEntry() { count = count + 1; }
        fun onShutdown(reason) { }
    )";
    for (auto _ : state) {
        prose::ScriptAspect sa("ext", source,
                               {{prose::AdviceKind::kBefore, "call(* Class*.*(..))",
                                 "onEntry", 0}},
                               script::Sandbox{}, script::BuiltinRegistry::with_core());
        AspectId id = weaver.weave(sa.aspect());
        weaver.withdraw(id);
    }
}
BENCHMARK(BM_ScriptExtensionCompileAndWeave);

/// Pointcut matching alone (the per-candidate cost inside weaving).
void BM_PointcutMatch(benchmark::State& state) {
    prose::Pointcut pc = prose::Pointcut::parse("call(void *.send*(blob, ..))");
    rt::MethodDecl hit{"sendPacket", TypeKind::kVoid,
                       {{"data", TypeKind::kBlob}, {"len", TypeKind::kInt}}, false};
    rt::MethodDecl miss{"receive", TypeKind::kInt, {{"timeout", TypeKind::kInt}}, false};
    for (auto _ : state) {
        benchmark::DoNotOptimize(pc.matches_method("Radio", hit));
        benchmark::DoNotOptimize(pc.matches_method("Radio", miss));
    }
}
BENCHMARK(BM_PointcutMatch);

/// Pointcut parsing (done once per extension arrival).
void BM_PointcutParse(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(prose::Pointcut::parse(
            "call(void *.send*(blob, ..)) && within(Radio*) || fieldset(Motor.pos*)"));
    }
}
BENCHMARK(BM_PointcutParse);

}  // namespace

int main(int argc, char** argv) { return pmp::bench::run_main(argc, argv); }
