// Failure injection: radio loss and duplication, base-station crash,
// node disappearance, runtime capability violations, and federation
// handoff between halls. The platform must degrade exactly the way the
// paper's leasing design promises: no wedged state, extensions evaporate,
// applications revert to baseline.
#include <gtest/gtest.h>

#include <stdexcept>

#include "midas/federation.h"
#include "midas/node.h"
#include "obs/metrics.h"
#include "robot/devices.h"

namespace pmp::midas {
namespace {

using rt::Dict;
using rt::Value;

ExtensionPackage noop_pkg(const std::string& name = "hall/noop") {
    ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = "fun onEntry() { }";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

struct World {
    sim::Simulator sim;
    net::Network net;
    std::unique_ptr<BaseStation> hall;
    std::unique_ptr<MobileNode> robot;
    std::shared_ptr<rt::ServiceObject> motor;

    explicit World(net::NetworkConfig cfg, std::uint64_t seed = 13, BaseConfig bc = {})
        : net(sim, cfg, seed) {
        bc.issuer = "hall";
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 100.0, bc);
        hall->keys().add_key("hall", to_bytes("k"));
        robot = std::make_unique<MobileNode>(net, "robot", net::Position{10, 0}, 100.0);
        robot->trust().trust("hall", to_bytes("k"));
        robot->receiver().allow_capabilities("hall", {"net"});
        motor = robot::make_motor(robot->runtime(), "motor:x");
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }
};

TEST(FailureInjection, AdaptationSurvivesHeavyMessageLoss) {
    net::NetworkConfig cfg;
    cfg.loss_probability = 0.25;
    World w(cfg);
    w.hall->base().add_extension(noop_pkg());

    // Installation retries ride on discovery refresh + keep-alive
    // re-install, so it succeeds despite 25% loss.
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));

    // Availability over a long residence: the extension may blip out when
    // several keep-alives are lost in a row, but re-adaptation brings it
    // back; it must be installed most of the time.
    int installed_samples = 0, total_samples = 0;
    for (int i = 0; i < 300; ++i) {
        w.sim.run_until(w.sim.now() + milliseconds(100));
        ++total_samples;
        if (w.robot->receiver().installed_count() == 1) ++installed_samples;
    }
    EXPECT_GT(installed_samples * 100 / total_samples, 80);
}

TEST(FailureInjection, DuplicatedMessagesAreIdempotent) {
    net::NetworkConfig cfg;
    cfg.duplicate_probability = 0.5;
    World w(cfg);
    w.hall->base().add_extension(noop_pkg());
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));
    w.sim.run_for(seconds(20));
    // Duplicated installs register as refreshes, never as second copies.
    EXPECT_EQ(w.robot->receiver().installed_count(), 1u);
    EXPECT_EQ(w.robot->receiver().stats().installs, 1u);
}

TEST(FailureInjection, BaseStationCrashWithdrawsExtensions) {
    World w(net::NetworkConfig{});
    w.hall->base().add_extension(noop_pkg());
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));

    // The base station dies. Keep-alives stop; the receiver autonomously
    // withdraws and the robot reverts to its plain behaviour.
    w.net.remove_node(w.hall->id());
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 0; }));
    EXPECT_GE(w.robot->receiver().stats().expirations, 1u);
    EXPECT_FALSE(w.motor->type().method("rotate")->woven());
    EXPECT_NO_THROW(w.motor->call("rotate", {Value{10.0}}));
}

TEST(FailureInjection, NodeDisappearanceCleansUpBaseState) {
    World w(net::NetworkConfig{});
    w.hall->base().add_extension(noop_pkg());
    ASSERT_TRUE(w.run_until([&] { return w.hall->base().adapted_count() == 1; }));

    w.net.remove_node(w.robot->id());  // battery pulled
    ASSERT_TRUE(w.run_until([&] { return w.hall->base().adapted_count() == 0; }));
    EXPECT_GE(w.hall->base().stats().nodes_dropped, 1u);
}

TEST(FailureInjection, RuntimeCapabilityViolationIsContained) {
    World w(net::NetworkConfig{});
    // The package requests no capabilities (so it installs), but its advice
    // tries to use the network at run time: the sandbox denies per call.
    ExtensionPackage sneaky = noop_pkg("hall/sneaky");
    sneaky.script = R"(
        fun onEntry() { owner.post("collector", "post", [sys.node(), 1]); }
    )";
    sneaky.capabilities = {};  // no "net"
    w.hall->base().add_extension(sneaky);
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));

    // Every intercepted call fails with AccessDenied — contained, loud.
    EXPECT_THROW(w.motor->call("rotate", {Value{1.0}}), AccessDenied);
    EXPECT_EQ(w.hall->store().size(), 0u);

    // Revocation still works; baseline behaviour returns.
    w.hall->base().remove_extension("hall/sneaky");
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 0; }));
    EXPECT_NO_THROW(w.motor->call("rotate", {Value{1.0}}));
}

TEST(FailureInjection, JitterAndLossDoNotBreakLeaseInvariant) {
    // Property-flavoured sweep: under several loss rates, at no sampled
    // instant may an extension be woven while its receiver believes nothing
    // is installed (weaver/bookkeeping coherence).
    for (double loss : {0.0, 0.1, 0.3}) {
        net::NetworkConfig cfg;
        cfg.loss_probability = loss;
        World w(cfg, /*seed=*/1000 + static_cast<std::uint64_t>(loss * 10));
        w.hall->base().add_extension(noop_pkg());
        for (int i = 0; i < 200; ++i) {
            w.sim.run_until(w.sim.now() + milliseconds(100));
            bool woven = w.motor->type().method("rotate")->woven();
            bool installed = w.robot->receiver().installed_count() > 0;
            EXPECT_EQ(woven, installed) << "loss=" << loss << " i=" << i;
        }
    }
}

TEST(FailureInjection, ReceiverSideExpiryDoesNotCauseInstallStorm) {
    World w(net::NetworkConfig{});
    ExtensionPackage pkg = noop_pkg();
    pkg.capabilities = {"net"};
    w.hall->base().add_extension(pkg);
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));

    // The receiver forgets the extension (as after a local restart) and the
    // re-install is now persistently rejected. The base must drop the stale
    // remote id — a keep-alive against it answers false every tick — and
    // back off its retries instead of storming the node.
    w.robot->receiver().allow_capabilities("hall", {});
    w.robot->receiver().withdraw_all();
    std::uint64_t installs_before = w.hall->base().stats().installs_sent;
    w.sim.run_for(seconds(20));
    std::uint64_t delta = w.hall->base().stats().installs_sent - installs_before;
    EXPECT_GE(delta, 2u);   // it does keep trying...
    EXPECT_LE(delta, 12u);  // ...but O(log n) over the window, not per tick
    // The stale id left the base's books, so no keep-alives chase it.
    ASSERT_EQ(w.hall->base().adapted_count(), 1u);
    EXPECT_TRUE(w.hall->base().adapted()[0].installed.empty());
}

TEST(FailureInjection, InstallRetriesBackOffWhileNodeUnreachable) {
    BaseConfig bc;
    bc.max_keepalive_failures = 1'000'000;  // keep the node adapted throughout
    World w(net::NetworkConfig{}, 13, bc);
    w.hall->base().add_extension(noop_pkg());
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));

    // A new policy extension arrives while the node is out of range: every
    // install fails fast. The retry schedule must be logarithmic in the
    // outage length, not one attempt per keep-alive period.
    w.robot->move_to({1000, 0});
    std::uint64_t installs_before = w.hall->base().stats().installs_sent;
    w.hall->base().add_extension(noop_pkg("hall/second"));
    w.sim.run_for(seconds(30));
    std::uint64_t delta = w.hall->base().stats().installs_sent - installs_before;
    EXPECT_GE(delta, 3u);
    EXPECT_LE(delta, 13u);
}

TEST(FailureInjection, NonErrorExceptionDuringInstallIsContained) {
    World w(net::NetworkConfig{});
    // A host builtin with a bug: throws something that is not an Error.
    // The package's top level calls it at install time.
    w.robot->receiver().add_host_builtin("boom", "", [](rt::List&) -> Value {
        throw std::runtime_error("host bug: not an Error subclass");
    });
    ExtensionPackage pkg = noop_pkg("hall/booby");
    pkg.script = "boom();\nfun onEntry() { }";

    obs::Counter& router_errors =
        obs::Registry::global().counter("net.router.handler_errors");
    std::uint64_t router_errors_before = router_errors.value();
    w.hall->base().add_extension(pkg);
    ASSERT_TRUE(w.run_until([&] { return w.hall->base().stats().install_failures >= 1; }));
    EXPECT_EQ(w.robot->receiver().installed_count(), 0u);
    // The exception travelled back as an rpc error reply; it never escaped
    // into the router (let alone the simulator loop).
    EXPECT_EQ(router_errors.value(), router_errors_before);
    // And the platform keeps running.
    w.sim.run_for(seconds(2));
    EXPECT_EQ(w.hall->base().adapted_count(), 1u);
}

TEST(RoamingFederation, HandoffReleasesNodePromptly) {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 17);

    // Two halls with a backbone between their bases; keep-alive failure
    // detection configured slow so that a prompt release is observable.
    BaseConfig slow;
    slow.keepalive_period = seconds(2);
    slow.max_keepalive_failures = 5;  // natural drop would take >10s
    slow.issuer = "hall-a";
    BaseStation hall_a(net, "hall-a", {0, 0}, 100.0, slow);
    hall_a.keys().add_key("hall-a", to_bytes("ka"));
    slow.issuer = "hall-b";
    BaseStation hall_b(net, "hall-b", {400, 0}, 100.0, slow);
    hall_b.keys().add_key("hall-b", to_bytes("kb"));

    net.add_wire(hall_a.id(), hall_b.id());
    Federation fed_a(hall_a.rpc(), hall_a.base(), "hall-a");
    Federation fed_b(hall_b.rpc(), hall_b.base(), "hall-b");
    fed_a.add_neighbor(hall_b.id());
    fed_b.add_neighbor(hall_a.id());

    hall_a.base().add_extension(noop_pkg("hall-a/p"));
    hall_b.base().add_extension(noop_pkg("hall-b/p"));

    MobileNode robot(net, "robot", {10, 0}, 100.0);
    robot.trust().trust("hall-a", to_bytes("ka"));
    robot.trust().trust("hall-b", to_bytes("kb"));
    robot.receiver().allow_capabilities("hall-a", {"net"});
    robot.receiver().allow_capabilities("hall-b", {"net"});
    robot::make_motor(robot.runtime(), "motor:x");

    auto run_until = [&](const std::function<bool()>& pred, Duration timeout) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    };

    ASSERT_TRUE(run_until([&] { return hall_a.base().adapted_count() == 1; }, seconds(15)));

    // Roam to hall B.
    robot.move_to({410, 0});
    ASSERT_TRUE(run_until([&] { return hall_b.base().adapted_count() == 1; }, seconds(15)));
    SimTime b_adapted_at = sim.now();

    // The claim reaches hall A over the backbone almost immediately —
    // far faster than 5 keep-alive failures at 2s each.
    ASSERT_TRUE(run_until([&] { return hall_a.base().adapted_count() == 0; }, seconds(2)));
    EXPECT_LT(sim.now() - b_adapted_at, Duration{seconds(2)});
    EXPECT_EQ(hall_a.base().stats().nodes_handed_off, 1u);
    EXPECT_EQ(hall_a.base().stats().nodes_dropped, 0u);
    EXPECT_GE(fed_b.stats().claims_sent, 1u);
    EXPECT_GE(fed_a.stats().claims_received, 1u);

    bool saw_handoff = false;
    for (const auto& activity : hall_a.base().activity()) {
        if (activity.event == "handoff" && activity.node_label == "robot") {
            saw_handoff = true;
        }
    }
    EXPECT_TRUE(saw_handoff);
}

}  // namespace
}  // namespace pmp::midas
