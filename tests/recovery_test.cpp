// Crash–restart robustness: the journal (WAL + snapshot, corruption
// tolerance), epoch-based base recovery, the receiver's quarantine, named
// crash-points driven through the Supervisor, and federation claims
// resolving a hand-off that raced a base restart. See docs/recovery.md.
#include <gtest/gtest.h>

#include "db/journal.h"
#include "midas/federation.h"
#include "midas/node.h"
#include "midas/supervisor.h"
#include "net/fault.h"
#include "robot/devices.h"
#include "sim/failpoint.h"

namespace pmp::midas {
namespace {

using rt::Dict;
using rt::Value;

// ---------------------------------------------------------------------------
// Journal: frame format, compaction, crash debris.

Value rec(std::int64_t n) { return Value{Dict{{"n", Value{n}}}}; }

TEST(Journal, Crc32MatchesKnownVector) {
    const char* s = "123456789";
    EXPECT_EQ(db::crc32(std::span(reinterpret_cast<const std::uint8_t*>(s), 9)),
              0xCBF43926u);
}

TEST(Journal, RoundTripsSnapshotAndWal) {
    auto disk = std::make_shared<db::JournalStorage>();
    {
        db::Journal j(disk);
        j.append(rec(1));
        j.append(rec(2));
        j.compact(Value{std::string("state")});
        EXPECT_EQ(j.wal_records(), 0u);
        j.append(rec(3));
    }
    db::Journal j2(disk);
    auto restored = j2.restore();
    ASSERT_TRUE(restored.snapshot.has_value());
    EXPECT_EQ(restored.snapshot->as_str(), "state");
    ASSERT_EQ(restored.wal.size(), 1u);
    EXPECT_EQ(restored.wal[0].as_dict().at("n").as_int(), 3);
    EXPECT_FALSE(restored.tail_corrupt);
    EXPECT_EQ(restored.dropped_bytes, 0u);
}

TEST(Journal, TruncatedTailIsDroppedRestRecovered) {
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal j(disk);
    j.append(rec(1));
    j.append(rec(2));
    j.append(rec(3));
    // The process died mid-write: the last frame is torn.
    disk->wal.resize(disk->wal.size() - 3);
    auto restored = db::Journal(disk).restore();
    ASSERT_EQ(restored.wal.size(), 2u);
    EXPECT_TRUE(restored.tail_corrupt);
    EXPECT_GT(restored.dropped_bytes, 0u);
}

TEST(Journal, CorruptTailByteIsDropped) {
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal j(disk);
    j.append(rec(1));
    j.append(rec(2));
    disk->wal.back() ^= 0xFF;  // bit rot in the final frame
    auto restored = db::Journal(disk).restore();
    ASSERT_EQ(restored.wal.size(), 1u);
    EXPECT_EQ(restored.wal[0].as_dict().at("n").as_int(), 1);
    EXPECT_TRUE(restored.tail_corrupt);
}

TEST(Journal, CorruptionMidWalStopsReplayThere) {
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal j(disk);
    j.append(rec(1));
    std::size_t first_end = disk->wal.size();
    j.append(rec(2));
    j.append(rec(3));
    // Damage the second frame: everything from it on is untrusted.
    disk->wal[first_end + 9] ^= 0x55;
    auto restored = db::Journal(disk).restore();
    ASSERT_EQ(restored.wal.size(), 1u);
    EXPECT_TRUE(restored.tail_corrupt);
    EXPECT_EQ(restored.dropped_bytes, disk->wal.size() - first_end);
}

TEST(Journal, CorruptSnapshotStillReplaysWal) {
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal j(disk);
    j.compact(rec(7));
    j.append(rec(8));
    disk->snapshot[disk->snapshot.size() / 2] ^= 0x01;
    auto restored = db::Journal(disk).restore();
    EXPECT_FALSE(restored.snapshot.has_value());
    EXPECT_TRUE(restored.snapshot_corrupt);
    ASSERT_EQ(restored.wal.size(), 1u);
    EXPECT_EQ(restored.wal[0].as_dict().at("n").as_int(), 8);
}

TEST(Journal, PowerOffLosesSubsequentWrites) {
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal j(disk);
    j.append(rec(1));
    j.power_off();
    j.append(rec(2));
    j.compact(rec(3));
    auto restored = db::Journal(disk).restore();
    EXPECT_FALSE(restored.snapshot.has_value());
    ASSERT_EQ(restored.wal.size(), 1u);
    EXPECT_EQ(restored.wal[0].as_dict().at("n").as_int(), 1);
}

// ---------------------------------------------------------------------------
// Group commit: size/time-bounded batches, torn-group semantics, and
// transparent interleaving with legacy per-record frames (docs/storage.md).

TEST(JournalGroupCommit, SizeBoundedBatchFlushesAsOneFrame) {
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal j(disk, db::JournalConfig{.batch_bytes = 64});
    j.append(rec(1));
    j.append(rec(2));
    EXPECT_GT(j.pending_records(), 0u);  // under the size bound: buffered
    std::size_t before = disk->wal.size();
    while (j.pending_records() > 0) j.append(rec(99));  // cross the bound
    EXPECT_GT(disk->wal.size(), before);
    auto restored = db::Journal(disk).restore();
    ASSERT_GE(restored.wal.size(), 3u);
    EXPECT_EQ(restored.wal[0].as_dict().at("n").as_int(), 1);
    EXPECT_EQ(restored.wal[1].as_dict().at("n").as_int(), 2);
    EXPECT_FALSE(restored.tail_corrupt);
}

TEST(JournalGroupCommit, TimerFlushUsesVirtualTime) {
    sim::Simulator sim;
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal j(disk, db::JournalConfig{.batch_bytes = 1 << 20,
                                          .batch_ms = milliseconds(10)},
                  &sim);
    j.append(rec(1));
    EXPECT_EQ(j.pending_records(), 1u);
    EXPECT_TRUE(disk->wal.empty());
    sim.run_for(milliseconds(11));
    EXPECT_EQ(j.pending_records(), 0u);
    auto restored = db::Journal(disk).restore();
    ASSERT_EQ(restored.wal.size(), 1u);
    EXPECT_EQ(restored.wal[0].as_dict().at("n").as_int(), 1);
}

TEST(JournalGroupCommit, PowerOffTearsOnlyTheUnflushedGroup) {
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal j(disk, db::JournalConfig{.batch_bytes = 1 << 20});
    j.append(rec(1));
    j.append(rec(2));
    j.flush();  // group 1 durable
    j.append(rec(3));
    j.append(rec(4));  // group 2 buffered
    j.power_off();
    auto restored = db::Journal(disk).restore();
    ASSERT_EQ(restored.wal.size(), 2u);
    EXPECT_EQ(restored.wal[0].as_dict().at("n").as_int(), 1);
    EXPECT_EQ(restored.wal[1].as_dict().at("n").as_int(), 2);
    EXPECT_FALSE(restored.tail_corrupt);  // the tear never reached the disk
}

TEST(JournalGroupCommit, TornBatchFrameNeverDamagesEarlierGroups) {
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal j(disk, db::JournalConfig{.batch_bytes = 1 << 20});
    j.append(rec(1));
    j.flush();
    std::size_t first_group_end = disk->wal.size();
    j.append(rec(2));
    j.append(rec(3));
    j.flush();
    // Tear the second batch frame mid-payload (crash during the write).
    disk->wal.resize(first_group_end + (disk->wal.size() - first_group_end) / 2);
    auto restored = db::Journal(disk).restore();
    ASSERT_EQ(restored.wal.size(), 1u);
    EXPECT_EQ(restored.wal[0].as_dict().at("n").as_int(), 1);
    EXPECT_TRUE(restored.tail_corrupt);
    EXPECT_EQ(restored.dropped_bytes, disk->wal.size() - first_group_end);
}

TEST(JournalGroupCommit, CleanDestructionFlushesPending) {
    auto disk = std::make_shared<db::JournalStorage>();
    {
        db::Journal j(disk, db::JournalConfig{.batch_bytes = 1 << 20});
        j.append(rec(5));
    }  // clean shutdown is not a crash: the group is flushed
    auto restored = db::Journal(disk).restore();
    ASSERT_EQ(restored.wal.size(), 1u);
    EXPECT_EQ(restored.wal[0].as_dict().at("n").as_int(), 5);
}

TEST(JournalGroupCommit, BatchAndLegacyFramesInterleave) {
    auto disk = std::make_shared<db::JournalStorage>();
    {
        db::Journal batched(disk, db::JournalConfig{.batch_bytes = 1 << 20});
        batched.append(rec(1));
        batched.append(rec(2));
        batched.flush();
    }
    {
        db::Journal legacy(disk);  // per-record frames onto the same medium
        legacy.append(rec(3));
    }
    {
        db::Journal batched(disk, db::JournalConfig{.batch_bytes = 1 << 20});
        batched.append(rec(4));
        batched.flush();
    }
    auto restored = db::Journal(disk).restore();
    ASSERT_EQ(restored.wal.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(restored.wal[static_cast<std::size_t>(i)].as_dict().at("n").as_int(),
                  i + 1);
    }
    EXPECT_FALSE(restored.tail_corrupt);
}

// ---------------------------------------------------------------------------
// Incremental snapshots: manifest + chunk chains, previous-chain fallback.

TEST(JournalChunkedSnapshot, RoundTripsAcrossChunks) {
    auto disk = std::make_shared<db::JournalStorage>();
    std::string big(1000, 'x');
    {
        db::Journal j(disk, db::JournalConfig{.snapshot_chunk_bytes = 128});
        j.compact(Value{big});
        j.append(rec(1));
    }
    auto restored = db::Journal(disk).restore();
    ASSERT_TRUE(restored.snapshot.has_value());
    EXPECT_EQ(restored.snapshot->as_str(), big);
    EXPECT_FALSE(restored.snapshot_fallback);
    ASSERT_EQ(restored.wal.size(), 1u);
}

TEST(JournalChunkedSnapshot, CorruptChunkFallsBackToPreviousChain) {
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal j(disk, db::JournalConfig{.snapshot_chunk_bytes = 64});
    j.compact(Value{std::string(300, 'a')});
    j.compact(Value{std::string(300, 'b')});
    // Bit rot inside the current chain's chunk frames.
    disk->snapshot[disk->snapshot.size() / 2] ^= 0x20;
    auto restored = db::Journal(disk).restore();
    ASSERT_TRUE(restored.snapshot.has_value());
    EXPECT_EQ(restored.snapshot->as_str(), std::string(300, 'a'));
    EXPECT_TRUE(restored.snapshot_fallback);
    EXPECT_FALSE(restored.snapshot_corrupt);
}

TEST(JournalChunkedSnapshot, CorruptChunkWithoutFallbackReportsCorrupt) {
    auto disk = std::make_shared<db::JournalStorage>();
    db::Journal j(disk, db::JournalConfig{.snapshot_chunk_bytes = 64});
    j.compact(Value{std::string(300, 'c')});
    j.append(rec(9));
    disk->snapshot[disk->snapshot.size() / 2] ^= 0x20;
    auto restored = db::Journal(disk).restore();
    EXPECT_FALSE(restored.snapshot.has_value());
    EXPECT_TRUE(restored.snapshot_corrupt);
    ASSERT_EQ(restored.wal.size(), 1u);  // WAL replay survives regardless
}

TEST(JournalChunkedSnapshot, LegacyCompactClearsStaleFallback) {
    auto disk = std::make_shared<db::JournalStorage>();
    {
        db::Journal chunked(disk, db::JournalConfig{.snapshot_chunk_bytes = 64});
        chunked.compact(Value{std::string(300, 'a')});
        chunked.compact(Value{std::string(300, 'b')});
    }
    {
        db::Journal legacy(disk);
        legacy.compact(Value{std::string("c")});
    }
    // A later corruption of the legacy snapshot must NOT resurrect the
    // retired chunked state 'b' — it predates the legacy compact.
    disk->snapshot[disk->snapshot.size() / 2] ^= 0x01;
    auto restored = db::Journal(disk).restore();
    EXPECT_FALSE(restored.snapshot.has_value());
    EXPECT_TRUE(restored.snapshot_corrupt);
    EXPECT_FALSE(restored.snapshot_fallback);
}

// ---------------------------------------------------------------------------
// EventStore::restore rejects malformed input with typed errors.

TEST(EventStoreRestore, MalformedInputsRaiseTypedErrors) {
    // Raw garbage: the decoder's own typed escape.
    Bytes garbage = to_bytes("\xff\xfe\x01junk");
    EXPECT_THROW(db::EventStore::restore(std::span(garbage)), Error);

    // Valid encoding, wrong shape: not a list.
    Bytes not_list = Value{std::int64_t{42}}.encode();
    EXPECT_THROW(db::EventStore::restore(std::span(not_list)), Error);

    // A record that is not a dict.
    Bytes bad_rec = Value{rt::List{Value{std::string("x")}}}.encode();
    EXPECT_THROW(db::EventStore::restore(std::span(bad_rec)), Error);

    // A record missing its source.
    Bytes no_source =
        Value{rt::List{Value{Dict{{"at_ns", Value{std::int64_t{1}}},
                                  {"data", Value{std::int64_t{0}}}}}}}
            .encode();
    EXPECT_THROW(db::EventStore::restore(std::span(no_source)), Error);

    // The round trip still works.
    db::EventStore store;
    store.append("robot", SimTime{123}, Value{std::int64_t{9}});
    Bytes snap = store.snapshot();
    db::EventStore back = db::EventStore::restore(std::span(snap));
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back.at(1).source, "robot");
}

// ---------------------------------------------------------------------------
// CrashPlan expansion: deterministic, seed-sensitive, window-bounded.

TEST(CrashPlan, ExpansionIsDeterministicAndSeedSensitive) {
    net::CrashPlan plan;
    plan.events.push_back(net::CrashEvent{"a", SimTime::zero() + seconds(1), seconds(2)});
    plan.windows.push_back(net::CrashWindow{"b", SimTime::zero() + seconds(2),
                                            SimTime::zero() + seconds(30), 0.5,
                                            milliseconds(1500)});
    auto one = net::expand_crashes(plan, 42);
    auto two = net::expand_crashes(plan, 42);
    auto other = net::expand_crashes(plan, 43);
    ASSERT_EQ(one.size(), two.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].node, two[i].node);
        EXPECT_EQ(one[i].at.ns, two[i].at.ns);
    }
    // The scheduled event survives expansion verbatim; window events stay
    // inside their window and never overlap a downtime.
    ASSERT_GE(one.size(), 1u);
    EXPECT_EQ(one[0].node, "a");
    SimTime prev_up = SimTime::zero();
    for (const auto& ev : one) {
        if (ev.node != "b") continue;
        EXPECT_GE(ev.at.ns, (SimTime::zero() + seconds(2)).ns);
        EXPECT_LT(ev.at.ns, (SimTime::zero() + seconds(30)).ns);
        EXPECT_GE(ev.at.ns, prev_up.ns);  // no crash while already down
        prev_up = ev.at + milliseconds(1500);
    }
    // A different seed draws a different window expansion (sizes or times).
    bool differs = other.size() != one.size();
    for (std::size_t i = 0; !differs && i < one.size(); ++i) {
        differs = one[i].at.ns != other[i].at.ns;
    }
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------------
// Base recovery end to end.

constexpr const char* kMonitoringScript = R"(
    fun onEntry() {
        owner.post("collector", "post",
                   [sys.node(), {"device": ctx.target(), "action": ctx.method()}]);
    }
)";

ExtensionPackage monitoring_pkg(const std::string& name = "hall/monitoring") {
    ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = kMonitoringScript;
    pkg.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    pkg.capabilities = {"net", "target"};
    return pkg;
}

struct RecoveryWorld {
    sim::Simulator sim;
    net::Network net;
    std::shared_ptr<db::JournalStorage> disk;
    std::unique_ptr<BaseStation> hall;
    std::unique_ptr<MobileNode> robot;
    std::shared_ptr<rt::ServiceObject> motor;

    explicit RecoveryWorld(std::uint64_t seed = 11)
        : net(sim, net::NetworkConfig{}, seed),
          disk(std::make_shared<db::JournalStorage>()) {
        disk->name = "hall";
        start_hall();
        robot = std::make_unique<MobileNode>(net, "robot", net::Position{10, 0}, 100.0);
        robot->trust().trust("hall", to_bytes("k"));
        robot->receiver().allow_capabilities("hall", {"net", "target", "log"});
        motor = robot::make_motor(robot->runtime(), "motor:x");
    }

    void start_hall() {
        BaseConfig bc;
        bc.issuer = "hall";
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 100.0, bc,
                                             disco::RegistrarConfig{}, disk);
        hall->keys().add_key("hall", to_bytes("k"));
    }

    /// The power-cord crash: journal off, radio gone, object destroyed.
    void crash_hall() {
        hall->journal()->power_off();
        net.remove_node(hall->id());
        hall.reset();
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(20)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }
};

TEST(BaseRecovery, RestartedBaseRecoversPolicyBookAndHallDb) {
    RecoveryWorld w;
    w.hall->base().add_extension(monitoring_pkg());
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));

    // Hall activity lands in the database and — via the append hook — in
    // the journal.
    w.motor->call("rotate", {Value{30.0}});
    w.motor->call("stop", {});
    ASSERT_TRUE(w.run_until([&] { return w.hall->store().size() == 2; }));
    EXPECT_EQ(w.hall->base().epoch(), 1u);

    w.crash_hall();
    // Long enough for the robot's lease to lapse: its extension withdraws
    // autonomously while the base is down.
    w.sim.run_for(seconds(4));
    EXPECT_EQ(w.robot->receiver().installed_count(), 0u);

    w.start_hall();
    // Everything journaled before the crash is back, under a bumped epoch.
    EXPECT_EQ(w.hall->base().epoch(), 2u);
    ASSERT_EQ(w.hall->base().policy_names().size(), 1u);
    EXPECT_EQ(w.hall->base().policy_names()[0], "hall/monitoring");
    ASSERT_EQ(w.hall->store().size(), 2u);
    EXPECT_EQ(w.hall->store().at(1).source, "robot");
    ASSERT_EQ(w.hall->base().adapted_count(), 1u);  // recovered book entry

    // The ordinary adaptation loop re-extends the robot; new hall records
    // append after the recovered ones.
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));
    EXPECT_EQ(w.robot->receiver().installed()[0].base_epoch, 2u);
    w.motor->call("rotate", {Value{5.0}});
    ASSERT_TRUE(w.run_until([&] { return w.hall->store().size() == 3; }));
}

TEST(BaseRecovery, ShortOutageReadoptsLiveLeaseUnderNewEpoch) {
    RecoveryWorld w;
    w.hall->base().add_extension(monitoring_pkg());
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));
    EXPECT_EQ(w.robot->receiver().installed()[0].base_epoch, 1u);

    // Restart faster than the robot's lease: the robot still holds the
    // extension granted under epoch 1 when the base comes back as epoch 2.
    w.crash_hall();
    w.sim.run_for(milliseconds(300));
    EXPECT_EQ(w.robot->receiver().installed_count(), 1u);
    w.start_hall();
    EXPECT_EQ(w.hall->base().epoch(), 2u);

    // Whichever side wins the race — a refresh push re-adopting the lease
    // or a keep-alive tripping the stale-epoch withdrawal followed by one
    // re-install — the robot must end converged on epoch 2 with exactly
    // one copy.
    ASSERT_TRUE(w.run_until([&] {
        return w.robot->receiver().installed_count() == 1 &&
               w.robot->receiver().installed()[0].base_epoch == 2u;
    }));
    w.sim.run_for(seconds(5));
    EXPECT_EQ(w.robot->receiver().installed_count(), 1u);
    EXPECT_EQ(w.robot->receiver().installed()[0].base_epoch, 2u);
}

TEST(EpochProtocol, KeepaliveFromNewerEpochWithdrawsStaleLease) {
    RecoveryWorld w;
    w.sim.run_for(seconds(2));  // discovery settles; no policy pushed

    ExtensionPackage pkg = monitoring_pkg();
    Bytes sealed = pkg.seal(w.hall->keys(), "hall");
    Value reply = w.hall->rpc().call_sync(
        w.robot->id(), "adaptation", "install",
        {Value{sealed}, Value{std::int64_t{60'000}}, Value{std::int64_t{1}}});
    std::int64_t ext = reply.as_dict().at("ext").as_int();
    ASSERT_EQ(w.robot->receiver().installed_count(), 1u);

    // Same epoch: lease renews.
    EXPECT_TRUE(w.hall->rpc()
                    .call_sync(w.robot->id(), "adaptation", "keepalive",
                               {Value{ext}, Value{std::int64_t{60'000}},
                                Value{std::int64_t{1}}})
                    .as_bool());

    // A keep-alive from epoch 2 carries a recovered ext id from the base's
    // previous life: withdraw and report false so the base re-installs.
    EXPECT_FALSE(w.hall->rpc()
                     .call_sync(w.robot->id(), "adaptation", "keepalive",
                                {Value{ext}, Value{std::int64_t{60'000}},
                                 Value{std::int64_t{2}}})
                     .as_bool());
    EXPECT_EQ(w.robot->receiver().installed_count(), 0u);

    // The re-install is accepted cleanly under the new epoch.
    Value again = w.hall->rpc().call_sync(
        w.robot->id(), "adaptation", "install",
        {Value{sealed}, Value{std::int64_t{60'000}}, Value{std::int64_t{2}}});
    EXPECT_EQ(w.robot->receiver().installed_count(), 1u);
    EXPECT_EQ(w.robot->receiver().installed()[0].base_epoch, 2u);
    EXPECT_NE(again.as_dict().at("ext").as_int(), ext);
}

// ---------------------------------------------------------------------------
// Named crash-points via the Supervisor.

TEST(CrashPoints, CrashAfterInstallSentRecoversExactlyOnce) {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 29);
    Supervisor sup(net);
    auto disk = std::make_shared<db::JournalStorage>();
    disk->name = "hall";

    std::unique_ptr<BaseStation> hall;
    sup.manage("hall", Supervisor::Lifecycle{
                           [&]() {
                               BaseConfig bc;
                               bc.issuer = "hall";
                               hall = std::make_unique<BaseStation>(
                                   net, "hall", net::Position{0, 0}, 100.0, bc,
                                   disco::RegistrarConfig{}, disk);
                               hall->keys().add_key("hall", to_bytes("k"));
                           },
                           [&]() { return hall->id(); },
                           [&]() {
                               if (hall && hall->journal()) hall->journal()->power_off();
                           },
                           [&]() { hall.reset(); },
                       });

    MobileNode robot(net, "robot", net::Position{10, 0}, 100.0);
    robot.trust().trust("hall", to_bytes("k"));
    robot.receiver().allow_capabilities("hall", {"net", "target", "log"});
    robot::make_motor(robot.runtime(), "motor:x");

    // Die the instant the first install leaves the radio: the package is
    // in flight, the install not yet journaled — the canonical torn state.
    sim::ScopedFailPoint fp("hall", "install.sent", 1,
                            [&]() { sup.crash("hall", seconds(2)); });
    hall->base().add_extension(monitoring_pkg());

    auto run_until = [&](const std::function<bool()>& pred, Duration timeout) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    };

    ASSERT_TRUE(run_until([&] { return sup.stats().crashes == 1; }, seconds(5)));
    ASSERT_TRUE(run_until([&] { return sup.stats().restarts == 1; }, seconds(5)));
    // The restarted base recovered the policy (journaled before the send)
    // and converges the robot back to exactly one live copy.
    ASSERT_TRUE(hall != nullptr);
    EXPECT_EQ(hall->base().epoch(), 2u);
    ASSERT_TRUE(run_until(
        [&] {
            return robot.receiver().installed_count() == 1 &&
                   robot.receiver().installed()[0].base_epoch == 2u;
        },
        seconds(20)));
    sim.run_for(seconds(5));
    EXPECT_EQ(robot.receiver().installed_count(), 1u);
}

// ---------------------------------------------------------------------------
// Receiver quarantine.

ExtensionPackage throwing_pkg() {
    ExtensionPackage pkg;
    pkg.name = "hall/flaky";
    pkg.script = "fun onEntry() { throw \"boom\"; }";
    pkg.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

struct QuarantineWorld {
    sim::Simulator sim;
    net::Network net;
    std::shared_ptr<db::JournalStorage> robot_disk;
    std::unique_ptr<BaseStation> hall;
    std::unique_ptr<MobileNode> robot;
    std::shared_ptr<rt::ServiceObject> motor;

    QuarantineWorld() : net(sim, net::NetworkConfig{}, 31),
                        robot_disk(std::make_shared<db::JournalStorage>()) {
        robot_disk->name = "robot";
        BaseConfig bc;
        bc.issuer = "hall";
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 100.0, bc);
        hall->keys().add_key("hall", to_bytes("k"));
        start_robot();
    }

    void start_robot() {
        robot = std::make_unique<MobileNode>(net, "robot", net::Position{10, 0}, 100.0,
                                             ReceiverConfig{}, robot_disk);
        robot->trust().trust("hall", to_bytes("k"));
        robot->receiver().allow_capabilities("hall", {"net", "target", "log"});
        motor = robot::make_motor(robot->runtime(), "motor:x");
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(20)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }
};

TEST(Quarantine, RepeatedAdviceFailuresQuarantineTheExtension) {
    QuarantineWorld w;
    w.hall->base().add_extension(throwing_pkg());
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));
    std::uint32_t version = w.robot->receiver().installed()[0].version;

    // Each intercepted call blows up in the advice; the app sees the error
    // each time, and the third consecutive failure trips the quarantine.
    for (int i = 0; i < 3; ++i) {
        EXPECT_THROW(w.motor->call("rotate", {Value{1.0}}), std::exception);
    }
    // Withdrawal is deferred one tick (we were inside the dispatch).
    w.sim.run_for(milliseconds(10));
    EXPECT_EQ(w.robot->receiver().installed_count(), 0u);
    EXPECT_TRUE(w.robot->receiver().is_quarantined("hall/flaky", version));

    // The base keeps pushing; the node keeps refusing. No flapping.
    w.sim.run_for(seconds(5));
    EXPECT_EQ(w.robot->receiver().installed_count(), 0u);
    // The motor dispatches cleanly again (aspect really gone).
    w.motor->call("rotate", {Value{2.0}});

    // A fixed (newer) version is accepted.
    ExtensionPackage fixed = throwing_pkg();
    fixed.script = "fun onEntry() { }";
    w.hall->base().add_extension(fixed);  // version bumps past the bad one
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));
    EXPECT_GT(w.robot->receiver().installed()[0].version, version);
}

TEST(Quarantine, SurvivesReceiverRestart) {
    QuarantineWorld w;
    w.hall->base().add_extension(throwing_pkg());
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));
    std::uint32_t version = w.robot->receiver().installed()[0].version;
    for (int i = 0; i < 3; ++i) {
        EXPECT_THROW(w.motor->call("rotate", {Value{1.0}}), std::exception);
    }
    w.sim.run_for(milliseconds(10));
    ASSERT_TRUE(w.robot->receiver().is_quarantined("hall/flaky", version));

    // Crash the robot: journal off, radio gone, object destroyed; then a
    // fresh life over the same disk.
    w.robot->journal()->power_off();
    w.net.remove_node(w.robot->id());
    w.robot.reset();
    w.sim.run_for(seconds(1));
    w.start_robot();

    // The quarantine list came back; the crash-time manifest is readable;
    // the base's continuing pushes of the bad version still bounce.
    EXPECT_TRUE(w.robot->receiver().is_quarantined("hall/flaky", version));
    w.sim.run_for(seconds(5));
    EXPECT_EQ(w.robot->receiver().installed_count(), 0u);
}

TEST(Quarantine, AccessDeniedDoesNotCount) {
    QuarantineWorld w;
    // The script calls a capability-gated builtin (owner.post needs "net")
    // that the package never requested. The sandbox refuses at dispatch —
    // that is this node's own policy saying no, not broken extension code,
    // so it must never trip the quarantine however often it happens.
    ExtensionPackage pkg;
    pkg.name = "hall/nosy";
    pkg.script = "fun onEntry() { owner.post(\"collector\", \"post\", [1]); }";
    pkg.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    w.hall->base().add_extension(pkg);
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));
    std::uint32_t version = w.robot->receiver().installed()[0].version;
    for (int i = 0; i < 6; ++i) {
        EXPECT_THROW(w.motor->call("rotate", {Value{1.0}}), std::exception);
    }
    w.sim.run_for(milliseconds(10));
    EXPECT_EQ(w.robot->receiver().installed_count(), 1u);
    EXPECT_FALSE(w.robot->receiver().is_quarantined("hall/nosy", version));
}

// ---------------------------------------------------------------------------
// Federation hand-off racing a base restart.

ExtensionPackage noop_pkg(const std::string& name) {
    ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = "fun onEntry() { }";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

struct FederationWorld {
    sim::Simulator sim;
    net::Network net;
    std::shared_ptr<db::JournalStorage> disk_a;
    std::unique_ptr<BaseStation> hall_a;
    std::unique_ptr<BaseStation> hall_b;
    std::unique_ptr<Federation> fed_a;
    std::unique_ptr<Federation> fed_b;
    std::unique_ptr<MobileNode> robot;

    FederationWorld() : net(sim, net::NetworkConfig{}, 37),
                        disk_a(std::make_shared<db::JournalStorage>()) {
        disk_a->name = "hall-a";
        start_hall_a();
        BaseConfig bcb;
        bcb.issuer = "hall-b";
        hall_b = std::make_unique<BaseStation>(net, "hall-b", net::Position{300, 0}, 120.0,
                                               bcb);
        hall_b->keys().add_key("hall-b", to_bytes("kb"));
        fed_b = std::make_unique<Federation>(hall_b->rpc(), hall_b->base(), "hall-b");
        wire();

        hall_a->base().add_extension(noop_pkg("hall-a/p"));
        hall_b->base().add_extension(noop_pkg("hall-b/p"));

        robot = std::make_unique<MobileNode>(net, "robot", net::Position{10, 0}, 120.0);
        robot->trust().trust("hall-a", to_bytes("ka"));
        robot->trust().trust("hall-b", to_bytes("kb"));
        robot::make_motor(robot->runtime(), "motor:x");
    }

    void start_hall_a() {
        BaseConfig bca;
        bca.issuer = "hall-a";
        hall_a = std::make_unique<BaseStation>(net, "hall-a", net::Position{0, 0}, 120.0,
                                               bca, disco::RegistrarConfig{}, disk_a);
        hall_a->keys().add_key("hall-a", to_bytes("ka"));
        fed_a = std::make_unique<Federation>(hall_a->rpc(), hall_a->base(), "hall-a");
    }

    void wire() {
        net.add_wire(hall_a->id(), hall_b->id());
        fed_a->add_neighbor(hall_b->id());
        fed_b->add_neighbor(hall_a->id());
    }

    void crash_hall_a() {
        hall_a->journal()->power_off();
        net.remove_node(hall_a->id());
        fed_a.reset();
        hall_a.reset();
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(30)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }
};

TEST(FederationRecovery, HandoffDuringOutageBeatsTheRecoveredClaim) {
    FederationWorld w;
    ASSERT_TRUE(w.run_until([&] { return w.hall_a->base().adapted_count() == 1; }));

    // Hall A dies holding the robot in its journaled book; the robot
    // wanders into hall B's cell during the outage and B adapts it with a
    // fresher stamp.
    w.crash_hall_a();
    w.robot->move_to({310, 0});
    ASSERT_TRUE(w.run_until([&] { return w.hall_b->base().adapted_count() == 1; }));
    SimTime b_stamp = *w.hall_b->base().claim_stamp_of("robot");

    // A restarts, recovers the stale book entry, and probes the
    // federation. B's stamp is newer, so A cedes — no double-adaptation.
    w.start_hall_a();
    w.wire();
    ASSERT_EQ(w.hall_a->base().adapted_count(), 1u);  // probation entry
    ASSERT_TRUE(w.run_until([&] { return w.hall_a->base().adapted_count() == 0; },
                            seconds(10)));
    EXPECT_EQ(w.fed_a->stats().recoveries_ceded, 1u);
    EXPECT_EQ(w.fed_a->stats().recoveries_confirmed, 0u);
    // B keeps the robot with its original stamp; A sent it nothing.
    EXPECT_EQ(w.hall_b->base().adapted_count(), 1u);
    EXPECT_EQ(w.hall_b->base().claim_stamp_of("robot")->ns, b_stamp.ns);
    EXPECT_EQ(w.hall_a->base().stats().installs_sent, 0u);
    // The robot converges on exactly hall B's policy.
    ASSERT_TRUE(w.run_until([&] {
        return w.robot->receiver().installed_count() == 1 &&
               w.robot->receiver().installed()[0].issuer == "hall-b";
    }));
}

TEST(FederationRecovery, UnclaimedNodesAreConfirmedAndReadopted) {
    FederationWorld w;
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));

    // A short outage; the robot never leaves hall A's cell and B never
    // touches it. The recovery claim comes back unopposed.
    w.crash_hall_a();
    w.sim.run_for(seconds(1));
    w.start_hall_a();
    w.wire();
    ASSERT_TRUE(w.run_until([&] { return w.fed_a->stats().recoveries_confirmed == 1; },
                            seconds(10)));
    EXPECT_EQ(w.fed_a->stats().recoveries_ceded, 0u);
    ASSERT_TRUE(w.run_until([&] {
        return w.robot->receiver().installed_count() == 1 &&
               w.robot->receiver().installed()[0].base_epoch == 2u;
    }));
    EXPECT_EQ(w.hall_a->base().adapted_count(), 1u);
    EXPECT_EQ(w.hall_b->base().adapted_count(), 0u);
}

}  // namespace
}  // namespace pmp::midas
