// Property-style sweeps over seeds (gtest TEST_P):
//
//   * Weaver vs reference model: under random interleavings of weave and
//     withdraw, dispatch always runs exactly the advice of the currently
//     woven aspects, in priority order; after withdrawing everything the
//     methods are pristine.
//   * Whole-system determinism: the same seed replays the same world —
//     identical adaptation history, database contents and radio statistics
//     across two independent runs.
//   * Lease safety: a receiver never holds a woven extension whose lease
//     expired more than one sweep-tick ago.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/weaver.h"
#include "midas/node.h"
#include "robot/devices.h"
#include "script/compile.h"
#include "script/interp.h"
#include "script/parser.h"
#include "script/vm.h"

namespace pmp {
namespace {

using rt::List;
using rt::TypeKind;
using rt::Value;

// ------------------------------------------------ weaver random ops ----

class WeaverRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeaverRandomOps, DispatchAlwaysMatchesModel) {
    Rng rng(GetParam());
    rt::Runtime runtime("prop");
    runtime.register_type(
        rt::TypeInfo::Builder("Thing")
            .method("touch", TypeKind::kInt, {},
                    [](rt::ServiceObject&, List&) -> Value { return Value{0}; })
            .build());
    auto thing = runtime.create("Thing", "thing");
    prose::Weaver weaver(runtime);

    // Model: the set of live aspects with their tag and priority.
    struct Live {
        AspectId id;
        int tag;
        int priority;
    };
    std::vector<Live> model;
    std::vector<int> fired;  // tags, in firing order
    int next_tag = 0;

    for (int step = 0; step < 200; ++step) {
        bool do_weave = model.empty() || rng.chance(0.55);
        if (do_weave) {
            int tag = next_tag++;
            int priority = static_cast<int>(rng.next_in(-3, 3));
            auto aspect = std::make_shared<prose::Aspect>("a" + std::to_string(tag));
            aspect->before(
                "call(* Thing.*(..))",
                [&fired, tag](rt::CallFrame&) { fired.push_back(tag); }, priority);
            model.push_back(Live{weaver.weave(aspect), tag, priority});
        } else {
            std::size_t victim = rng.next_below(model.size());
            ASSERT_TRUE(weaver.withdraw(model[victim].id));
            model.erase(model.begin() + static_cast<std::ptrdiff_t>(victim));
        }

        // Expected firing order: stable sort of live aspects by priority,
        // ties by weave order (hooks append within equal priority).
        std::vector<Live> expected = model;
        std::stable_sort(expected.begin(), expected.end(),
                         [](const Live& a, const Live& b) { return a.priority < b.priority; });

        fired.clear();
        thing->call("touch", {});
        ASSERT_EQ(fired.size(), expected.size()) << "step " << step;
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(fired[i], expected[i].tag) << "step " << step << " slot " << i;
        }
        EXPECT_EQ(thing->type().method("touch")->woven(), !model.empty());
    }

    weaver.withdraw_all();
    fired.clear();
    thing->call("touch", {});
    EXPECT_TRUE(fired.empty());
    EXPECT_FALSE(thing->type().method("touch")->woven());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeaverRandomOps, ::testing::Values(11, 22, 33, 44, 55));

// ------------------------------------------------- determinism sweep ----

struct ScenarioOutcome {
    std::uint64_t installs, expirations, refreshes;
    std::size_t store_records;
    std::uint64_t net_delivered, net_dropped;
    std::string store_digest;

    bool operator==(const ScenarioOutcome&) const = default;
};

ScenarioOutcome run_scenario(std::uint64_t seed) {
    sim::Simulator sim;
    net::NetworkConfig cfg;
    cfg.loss_probability = 0.05;  // some nondeterminism *sources* to tame
    net::Network net(sim, cfg, seed);

    midas::BaseConfig bc;
    bc.issuer = "hall";
    midas::BaseStation hall(net, "hall", {0, 0}, 100.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));

    midas::ExtensionPackage pkg;
    pkg.name = "hall/mon";
    pkg.script = R"(
        fun onEntry() {
            owner.post("collector", "post", [sys.node(), ctx.method()]);
        })";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    pkg.capabilities = {"net"};
    hall.base().add_extension(pkg);

    midas::MobileNode robot(net, "robot", {10, 0}, 100.0);
    robot.trust().trust("hall", to_bytes("k"));
    robot.receiver().allow_capabilities("hall", {"net"});
    auto motor = robot::make_motor(robot.runtime(), "motor:x");

    // Scripted activity: rotate every 500ms, roam out at 10s, back at 15s.
    sim.schedule_every(milliseconds(500), [&]() {
        try {
            motor->call("rotate", {Value{15.0}});
        } catch (const Error&) {
        }
    });
    sim.schedule_at(SimTime::zero() + seconds(10), [&]() { robot.move_to({1000, 0}); });
    sim.schedule_at(SimTime::zero() + seconds(15), [&]() { robot.move_to({10, 0}); });
    sim.run_until(SimTime::zero() + seconds(25));

    ScenarioOutcome out;
    out.installs = robot.receiver().stats().installs;
    out.expirations = robot.receiver().stats().expirations;
    out.refreshes = robot.receiver().stats().refreshes;
    out.store_records = hall.store().size();
    out.net_delivered = net.stats().delivered;
    out.net_dropped = net.stats().dropped_loss + net.stats().dropped_out_of_range;
    for (const auto& rec : hall.store().query(db::Query{})) {
        out.store_digest += rec.source + "@" + std::to_string(rec.at.ns) + ";";
    }
    return out;
}

class Determinism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Determinism, SameSeedSameWorld) {
    ScenarioOutcome first = run_scenario(GetParam());
    ScenarioOutcome second = run_scenario(GetParam());
    EXPECT_EQ(first, second);
    // Sanity: the scenario actually did something.
    EXPECT_GE(first.installs, 1u);
    EXPECT_GE(first.store_records, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism, ::testing::Values(101, 202, 303));

TEST(Determinism, DifferentSeedsDivergeSomewhere) {
    // Not a strict requirement per-pair, but across a few seeds at 5% loss
    // at least one outcome must differ — otherwise the seed is not wired
    // through and the determinism test above would be vacuous.
    ScenarioOutcome a = run_scenario(1);
    ScenarioOutcome b = run_scenario(2);
    ScenarioOutcome c = run_scenario(3);
    EXPECT_TRUE(!(a == b) || !(b == c) || !(a == c));
}

// ------------------------------------------------------ lease safety ----

class LeaseSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeaseSafety, NoExtensionOutlivesItsLeaseByMoreThanATick) {
    Rng rng(GetParam());
    sim::Simulator sim;
    net::NetworkConfig cfg;
    cfg.loss_probability = 0.15;
    net::Network net(sim, cfg, GetParam());

    midas::BaseConfig bc;
    bc.issuer = "hall";
    midas::BaseStation hall(net, "hall", {0, 0}, 100.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));
    midas::ExtensionPackage pkg;
    pkg.name = "hall/noop";
    pkg.script = "fun onEntry() { }";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    hall.base().add_extension(pkg);

    midas::MobileNode robot(net, "robot", {10, 0}, 100.0);
    robot.trust().trust("hall", to_bytes("k"));
    robot.receiver().allow_capabilities("hall", {});
    robot::make_motor(robot.runtime(), "motor:x");

    // Random roaming; at every tick the lease-expiry invariant must hold.
    for (int i = 0; i < 400; ++i) {
        if (rng.chance(0.02)) {
            bool inside = rng.chance(0.5);
            robot.move_to({inside ? 10.0 : 1000.0, 0.0});
        }
        sim.run_until(sim.now() + milliseconds(50));
        for (const auto& inst : robot.receiver().installed()) {
            EXPECT_GE(inst.expires + milliseconds(50), sim.now())
                << "extension '" << inst.name << "' outlived its lease at tick " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeaseSafety, ::testing::Values(7, 17, 27));

// ------------------------------------- engine differential (VM parity) ----
//
// Random well-formed AdviceScript programs run on both engines; results,
// typed errors (type + message + line), step counts and global state must
// be identical. Programs deliberately hit runtime type errors, unknown
// functions, capability denials, step-budget exhaustion and watchdog
// deadlines — the error paths are exactly where a compiled engine tends to
// drift from its reference.

/// Emits syntactically valid programs; semantic faults (type errors,
/// unknown calls, infinite loops) are intentional outcomes, not bugs.
class ProgramGen {
public:
    explicit ProgramGen(Rng& rng) : rng_(rng) {}

    std::string program() {
        src_.clear();
        globals_ = {"g0", "g1"};
        line("let g0 = " + std::to_string(rng_.next_in(-5, 20)) + ";");
        line("let g1 = " + std::to_string(rng_.next_in(-5, 20)) + ";");
        fn("f0", {"p0", "p1"});
        fn("f1", {"p0"});
        fn("main", {});
        return src_;
    }

private:
    void line(const std::string& s) { src_ += s + "\n"; }

    void fn(const std::string& name, std::vector<std::string> params) {
        vars_ = params;
        line("fun " + name + "(" + join(params) + ") {");
        int n = static_cast<int>(rng_.next_in(1, 5));
        for (int i = 0; i < n; ++i) stmt(2);
        line("  return " + expr(2) + ";");
        line("}");
    }

    static std::string join(const std::vector<std::string>& xs) {
        std::string out;
        for (std::size_t i = 0; i < xs.size(); ++i) out += (i ? ", " : "") + xs[i];
        return out;
    }

    void stmt(int depth) {
        switch (rng_.next_below(depth > 0 ? 10 : 4)) {
            case 0: {  // declare
                std::string v = "v" + std::to_string(vars_.size());
                line("  let " + v + " = " + expr(depth) + ";");
                vars_.push_back(v);
                break;
            }
            case 1:  // assign local or global
                if (!vars_.empty() && rng_.chance(0.7)) {
                    line("  " + pick(vars_) + " = " + expr(depth) + ";");
                } else {
                    line("  " + pick(globals_) + " = " + expr(depth) + ";");
                }
                break;
            case 2:  // expression statement (often a call)
                line("  " + call_expr() + ";");
                break;
            case 3:  // throw, rarely
                if (rng_.chance(0.15)) line("  throw " + expr(0) + ";");
                else line("  " + pick(globals_) + " = " + expr(depth) + ";");
                break;
            case 4: {  // if/else
                line("  if (" + expr(depth - 1) + ") {");
                stmt(depth - 1);
                if (rng_.chance(0.5)) {
                    line("  } else {");
                    stmt(depth - 1);
                }
                line("  }");
                break;
            }
            case 5: {  // bounded counting loop (occasionally unbounded)
                std::string i = "v" + std::to_string(vars_.size());
                vars_.push_back(i);
                if (rng_.chance(0.12)) {
                    // Unbounded: terminated by the sandbox (both engines
                    // must burn identical steps before the typed error).
                    line("  let " + i + " = 0;");
                    line("  while (0 < 1) { " + i + " = " + i + " + 1; }");
                } else {
                    line("  let " + i + " = 0;");
                    line("  while (" + i + " < " + std::to_string(rng_.next_in(1, 5)) +
                         ") {");
                    stmt(depth - 1);
                    if (rng_.chance(0.2)) line("    if (" + i + " > 1) { break; }");
                    line("    " + i + " = " + i + " + 1;");
                    line("  }");
                }
                break;
            }
            case 6: {  // for-in over range or a fresh list
                std::string k = "v" + std::to_string(vars_.size());
                if (rng_.chance(0.5)) {
                    line("  for (" + k + " in range(0, " +
                         std::to_string(rng_.next_in(0, 4)) + ")) {");
                } else {
                    line("  for (" + k + " in [" + expr(0) + ", " + expr(0) + "]) {");
                }
                vars_.push_back(k);
                stmt(depth - 1);
                if (rng_.chance(0.2)) line("    continue;");
                line("  }");
                break;
            }
            default:
                line("  " + pick(globals_) + " = " + expr(depth) + ";");
                break;
        }
    }

    std::string call_expr() {
        switch (rng_.next_below(6)) {
            case 0: return "f0(" + expr(0) + ", " + expr(0) + ")";
            case 1: return "f1(" + expr(0) + ")";
            case 2: return "f1(" + expr(0) + ", " + expr(0) + ")";  // arity mismatch
            case 3: return "nosuch(" + expr(0) + ")";               // unknown function
            case 4: return "priv(" + expr(0) + ")";                 // capability-gated
            default: return "len(str(" + expr(0) + "))";
        }
    }

    std::string expr(int depth) {
        if (depth <= 0 || rng_.chance(0.35)) return atom();
        switch (rng_.next_below(8)) {
            case 0: return "(" + expr(depth - 1) + " " + binop() + " " + expr(depth - 1) + ")";
            case 1: return "(-" + expr(depth - 1) + ")";
            case 2: return "(!" + expr(depth - 1) + ")";
            case 3: return "(" + expr(depth - 1) + " && " + expr(depth - 1) + ")";
            case 4: return "(" + expr(depth - 1) + " || " + expr(depth - 1) + ")";
            case 5: return call_expr();
            case 6: return "[" + expr(depth - 1) + ", " + expr(depth - 1) + "]";
            default: return atom();
        }
    }

    std::string atom() {
        switch (rng_.next_below(8)) {
            case 0: return std::to_string(rng_.next_in(-3, 12));
            case 1: return "\"s" + std::to_string(rng_.next_below(3)) + "\"";
            case 2: return pick(globals_);
            case 3: return rng_.chance(0.5) ? "true" : "false";
            default: return vars_.empty() ? std::to_string(rng_.next_in(0, 9)) : pick(vars_);
        }
    }

    std::string binop() {
        static const char* ops[] = {"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">="};
        return ops[rng_.next_below(std::size(ops))];
    }

    std::string pick(const std::vector<std::string>& xs) {
        return xs[rng_.next_below(xs.size())];
    }

    Rng& rng_;
    std::string src_;
    std::vector<std::string> vars_;
    std::vector<std::string> globals_;
};

struct EngineOutcome {
    bool threw = false;
    std::string type;
    std::string message;
    std::string value;
    std::uint64_t steps = 0;
    std::string g0, g1;

    bool operator==(const EngineOutcome&) const = default;
};

EngineOutcome run_engine(script::Engine& e) {
    EngineOutcome out;
    auto record = [&](const char* type, const std::string& msg) {
        out.threw = true;
        out.type = type;
        out.message = msg;
    };
    try {
        e.run_top_level();
        out.value = e.call("main", {}).to_string();
    } catch (const DeadlineExceeded& ex) {
        record("DeadlineExceeded", ex.what());
    } catch (const ResourceExhausted& ex) {
        record("ResourceExhausted", ex.what());
    } catch (const AccessDenied& ex) {
        record("AccessDenied", ex.what());
    } catch (const ScriptError& ex) {
        record("ScriptError", ex.what());
    }
    out.steps = e.last_call_steps();
    for (const char* g : {"g0", "g1"}) {
        const Value* v = e.global(g);
        (g[1] == '0' ? out.g0 : out.g1) = v ? v->to_string() : "<unset>";
    }
    return out;
}

class EngineDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineDifferential, RandomProgramsBehaveIdenticallyOnBothEngines) {
    Rng rng(GetParam());
    int interesting = 0;  // programs that threw a typed error somewhere
    for (int i = 0; i < 60; ++i) {
        ProgramGen gen(rng);
        std::string source = gen.program();

        script::Sandbox sandbox;
        // Rotate budgets so exhaustion hits at different program points;
        // sometimes arm the watchdog tighter than the budget.
        sandbox.step_budget = static_cast<std::uint64_t>(rng.next_in(40, 4000));
        if (rng.chance(0.3)) {
            sandbox.deadline_steps = static_cast<std::uint64_t>(rng.next_in(20, 400));
        }
        auto registry = std::make_shared<script::BuiltinRegistry>(
            script::BuiltinRegistry::with_core());
        registry->add("priv", "net",
                      [](List& args) -> Value { return args.empty() ? Value{} : args[0]; });
        if (rng.chance(0.5)) sandbox.capabilities.insert("net");

        auto program = std::make_shared<const script::Program>(script::parse(source));
        script::Interpreter interp(program, sandbox, registry);
        script::Vm vm(script::compile(program), sandbox, registry);

        EngineOutcome a = run_engine(interp);
        EngineOutcome b = run_engine(vm);
        ASSERT_EQ(a, b) << "engines diverged (seed " << GetParam() << ", program " << i
                        << "):\n--- interp: " << a.type << " '" << a.message
                        << "' value=" << a.value << " steps=" << a.steps
                        << "\n--- vm:     " << b.type << " '" << b.message
                        << "' value=" << b.value << " steps=" << b.steps << "\n"
                        << source;
        if (a.threw) ++interesting;
    }
    // The sweep must actually exercise error paths, not just happy paths.
    EXPECT_GT(interesting, 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferential,
                         ::testing::Values(31, 62, 93, 124, 155, 186));

}  // namespace
}  // namespace pmp
