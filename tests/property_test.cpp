// Property-style sweeps over seeds (gtest TEST_P):
//
//   * Weaver vs reference model: under random interleavings of weave and
//     withdraw, dispatch always runs exactly the advice of the currently
//     woven aspects, in priority order; after withdrawing everything the
//     methods are pristine.
//   * Whole-system determinism: the same seed replays the same world —
//     identical adaptation history, database contents and radio statistics
//     across two independent runs.
//   * Lease safety: a receiver never holds a woven extension whose lease
//     expired more than one sweep-tick ago.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/weaver.h"
#include "midas/node.h"
#include "robot/devices.h"

namespace pmp {
namespace {

using rt::List;
using rt::TypeKind;
using rt::Value;

// ------------------------------------------------ weaver random ops ----

class WeaverRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeaverRandomOps, DispatchAlwaysMatchesModel) {
    Rng rng(GetParam());
    rt::Runtime runtime("prop");
    runtime.register_type(
        rt::TypeInfo::Builder("Thing")
            .method("touch", TypeKind::kInt, {},
                    [](rt::ServiceObject&, List&) -> Value { return Value{0}; })
            .build());
    auto thing = runtime.create("Thing", "thing");
    prose::Weaver weaver(runtime);

    // Model: the set of live aspects with their tag and priority.
    struct Live {
        AspectId id;
        int tag;
        int priority;
    };
    std::vector<Live> model;
    std::vector<int> fired;  // tags, in firing order
    int next_tag = 0;

    for (int step = 0; step < 200; ++step) {
        bool do_weave = model.empty() || rng.chance(0.55);
        if (do_weave) {
            int tag = next_tag++;
            int priority = static_cast<int>(rng.next_in(-3, 3));
            auto aspect = std::make_shared<prose::Aspect>("a" + std::to_string(tag));
            aspect->before(
                "call(* Thing.*(..))",
                [&fired, tag](rt::CallFrame&) { fired.push_back(tag); }, priority);
            model.push_back(Live{weaver.weave(aspect), tag, priority});
        } else {
            std::size_t victim = rng.next_below(model.size());
            ASSERT_TRUE(weaver.withdraw(model[victim].id));
            model.erase(model.begin() + static_cast<std::ptrdiff_t>(victim));
        }

        // Expected firing order: stable sort of live aspects by priority,
        // ties by weave order (hooks append within equal priority).
        std::vector<Live> expected = model;
        std::stable_sort(expected.begin(), expected.end(),
                         [](const Live& a, const Live& b) { return a.priority < b.priority; });

        fired.clear();
        thing->call("touch", {});
        ASSERT_EQ(fired.size(), expected.size()) << "step " << step;
        for (std::size_t i = 0; i < expected.size(); ++i) {
            EXPECT_EQ(fired[i], expected[i].tag) << "step " << step << " slot " << i;
        }
        EXPECT_EQ(thing->type().method("touch")->woven(), !model.empty());
    }

    weaver.withdraw_all();
    fired.clear();
    thing->call("touch", {});
    EXPECT_TRUE(fired.empty());
    EXPECT_FALSE(thing->type().method("touch")->woven());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeaverRandomOps, ::testing::Values(11, 22, 33, 44, 55));

// ------------------------------------------------- determinism sweep ----

struct ScenarioOutcome {
    std::uint64_t installs, expirations, refreshes;
    std::size_t store_records;
    std::uint64_t net_delivered, net_dropped;
    std::string store_digest;

    bool operator==(const ScenarioOutcome&) const = default;
};

ScenarioOutcome run_scenario(std::uint64_t seed) {
    sim::Simulator sim;
    net::NetworkConfig cfg;
    cfg.loss_probability = 0.05;  // some nondeterminism *sources* to tame
    net::Network net(sim, cfg, seed);

    midas::BaseConfig bc;
    bc.issuer = "hall";
    midas::BaseStation hall(net, "hall", {0, 0}, 100.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));

    midas::ExtensionPackage pkg;
    pkg.name = "hall/mon";
    pkg.script = R"(
        fun onEntry() {
            owner.post("collector", "post", [sys.node(), ctx.method()]);
        })";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    pkg.capabilities = {"net"};
    hall.base().add_extension(pkg);

    midas::MobileNode robot(net, "robot", {10, 0}, 100.0);
    robot.trust().trust("hall", to_bytes("k"));
    robot.receiver().allow_capabilities("hall", {"net"});
    auto motor = robot::make_motor(robot.runtime(), "motor:x");

    // Scripted activity: rotate every 500ms, roam out at 10s, back at 15s.
    sim.schedule_every(milliseconds(500), [&]() {
        try {
            motor->call("rotate", {Value{15.0}});
        } catch (const Error&) {
        }
    });
    sim.schedule_at(SimTime::zero() + seconds(10), [&]() { robot.move_to({1000, 0}); });
    sim.schedule_at(SimTime::zero() + seconds(15), [&]() { robot.move_to({10, 0}); });
    sim.run_until(SimTime::zero() + seconds(25));

    ScenarioOutcome out;
    out.installs = robot.receiver().stats().installs;
    out.expirations = robot.receiver().stats().expirations;
    out.refreshes = robot.receiver().stats().refreshes;
    out.store_records = hall.store().size();
    out.net_delivered = net.stats().delivered;
    out.net_dropped = net.stats().dropped_loss + net.stats().dropped_out_of_range;
    for (const auto& rec : hall.store().query(db::Query{})) {
        out.store_digest += rec.source + "@" + std::to_string(rec.at.ns) + ";";
    }
    return out;
}

class Determinism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Determinism, SameSeedSameWorld) {
    ScenarioOutcome first = run_scenario(GetParam());
    ScenarioOutcome second = run_scenario(GetParam());
    EXPECT_EQ(first, second);
    // Sanity: the scenario actually did something.
    EXPECT_GE(first.installs, 1u);
    EXPECT_GE(first.store_records, 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Determinism, ::testing::Values(101, 202, 303));

TEST(Determinism, DifferentSeedsDivergeSomewhere) {
    // Not a strict requirement per-pair, but across a few seeds at 5% loss
    // at least one outcome must differ — otherwise the seed is not wired
    // through and the determinism test above would be vacuous.
    ScenarioOutcome a = run_scenario(1);
    ScenarioOutcome b = run_scenario(2);
    ScenarioOutcome c = run_scenario(3);
    EXPECT_TRUE(!(a == b) || !(b == c) || !(a == c));
}

// ------------------------------------------------------ lease safety ----

class LeaseSafety : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LeaseSafety, NoExtensionOutlivesItsLeaseByMoreThanATick) {
    Rng rng(GetParam());
    sim::Simulator sim;
    net::NetworkConfig cfg;
    cfg.loss_probability = 0.15;
    net::Network net(sim, cfg, GetParam());

    midas::BaseConfig bc;
    bc.issuer = "hall";
    midas::BaseStation hall(net, "hall", {0, 0}, 100.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));
    midas::ExtensionPackage pkg;
    pkg.name = "hall/noop";
    pkg.script = "fun onEntry() { }";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    hall.base().add_extension(pkg);

    midas::MobileNode robot(net, "robot", {10, 0}, 100.0);
    robot.trust().trust("hall", to_bytes("k"));
    robot.receiver().allow_capabilities("hall", {});
    robot::make_motor(robot.runtime(), "motor:x");

    // Random roaming; at every tick the lease-expiry invariant must hold.
    for (int i = 0; i < 400; ++i) {
        if (rng.chance(0.02)) {
            bool inside = rng.chance(0.5);
            robot.move_to({inside ? 10.0 : 1000.0, 0.0});
        }
        sim.run_until(sim.now() + milliseconds(50));
        for (const auto& inst : robot.receiver().installed()) {
            EXPECT_GE(inst.expires + milliseconds(50), sim.now())
                << "extension '" << inst.name << "' outlived its lease at tick " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeaseSafety, ::testing::Values(7, 17, 27));

}  // namespace
}  // namespace pmp
