// Tests for the Jini-like lookup substrate: registration leases, lookup,
// watches with remote events, discovery probes, and lease-loss handling.
#include <gtest/gtest.h>

#include "disco/lookup.h"
#include "net/router.h"

namespace pmp::disco {
namespace {

using rt::Dict;
using rt::Value;

/// One node with router+runtime+rpc, optionally a registrar and/or client.
struct TestNode {
    TestNode(net::Network& net, const std::string& name, net::Position pos, double range)
        : id(net.add_node(name, pos, range)),
          router(net, id),
          runtime(name),
          rpc(router, runtime) {}

    NodeId id;
    net::MessageRouter router;
    rt::Runtime runtime;
    rt::RpcEndpoint rpc;
};

class DiscoTest : public ::testing::Test {
protected:
    DiscoTest()
        : net_(sim_, net::NetworkConfig{}, 11),
          base_(net_, "base", {0, 0}, 100),
          mobile_(net_, "mobile", {10, 0}, 100) {
        RegistrarConfig rc;
        rc.max_lease = seconds(2);
        registrar_ = std::make_unique<Registrar>(base_.router, base_.rpc, rc);
        client_ = std::make_unique<DiscoveryClient>(mobile_.router, mobile_.rpc);
    }

    sim::Simulator sim_;
    net::Network net_;
    TestNode base_, mobile_;
    std::unique_ptr<Registrar> registrar_;
    std::unique_ptr<DiscoveryClient> client_;
};

TEST_F(DiscoTest, ClientDiscoversRegistrarInRange) {
    sim_.run_for(seconds(2));
    auto found = client_->registrars();
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0], base_.id);
}

TEST_F(DiscoTest, RegistrarCallbackFiresOnAppearAndLoss) {
    std::vector<std::pair<NodeId, bool>> events;
    client_->on_registrar([&](NodeId node, bool ok) { events.emplace_back(node, ok); });
    sim_.run_for(seconds(2));
    ASSERT_GE(events.size(), 1u);
    EXPECT_TRUE(events[0].second);

    // Roam out of range: beacons stop arriving, timeout declares loss.
    net_.move_node(mobile_.id, {1000, 0});
    sim_.run_for(seconds(6));
    ASSERT_GE(events.size(), 2u);
    EXPECT_FALSE(events.back().second);
    EXPECT_TRUE(client_->registrars().empty());
}

TEST_F(DiscoTest, RegisterAndLookup) {
    sim_.run_for(seconds(1));
    std::shared_ptr<LeasedResource> handle;
    client_->register_service(
        base_.id, "drawing", Dict{{"node", Value{"robot:1"}}}, []() {},
        [&](std::shared_ptr<LeasedResource> h, std::exception_ptr e) {
            ASSERT_FALSE(e);
            handle = std::move(h);
        });
    sim_.run_for(seconds(1));
    ASSERT_NE(handle, nullptr);
    EXPECT_TRUE(handle->alive());

    auto items = registrar_->lookup("drawing");
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0].provider, mobile_.id);
    EXPECT_EQ(items[0].attributes.at("node").as_str(), "robot:1");
    EXPECT_TRUE(registrar_->lookup("unknown-type").empty());
}

TEST_F(DiscoTest, RemoteLookup) {
    sim_.run_for(seconds(1));
    std::shared_ptr<LeasedResource> handle;
    client_->register_service(base_.id, "printing", {}, []() {},
                              [&](std::shared_ptr<LeasedResource> h, std::exception_ptr) {
                                  handle = std::move(h);
                              });
    sim_.run_for(seconds(1));

    std::vector<ServiceItem> found;
    client_->lookup(base_.id, "printing",
                    [&](std::vector<ServiceItem> items, std::exception_ptr e) {
                        ASSERT_FALSE(e);
                        found = std::move(items);
                    });
    sim_.run_for(seconds(1));
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].type, "printing");
}

TEST_F(DiscoTest, LeaseRenewalKeepsRegistrationAlive) {
    sim_.run_for(seconds(1));
    std::shared_ptr<LeasedResource> handle;
    bool lost = false;
    client_->register_service(base_.id, "svc", {}, [&]() { lost = true; },
                              [&](std::shared_ptr<LeasedResource> h, std::exception_ptr) {
                                  handle = std::move(h);
                              });
    // Run far beyond the lease duration: auto-renewal must keep it alive.
    sim_.run_for(seconds(20));
    EXPECT_FALSE(lost);
    ASSERT_NE(handle, nullptr);
    EXPECT_TRUE(handle->alive());
    EXPECT_EQ(registrar_->lookup("svc").size(), 1u);
}

TEST_F(DiscoTest, RegistrationExpiresWhenNodeLeaves) {
    sim_.run_for(seconds(1));
    std::shared_ptr<LeasedResource> handle;
    bool lost = false;
    client_->register_service(base_.id, "svc", {}, [&]() { lost = true; },
                              [&](std::shared_ptr<LeasedResource> h, std::exception_ptr) {
                                  handle = std::move(h);
                              });
    sim_.run_for(seconds(1));
    ASSERT_EQ(registrar_->lookup("svc").size(), 1u);

    // The node roams away: renewals fail, the registrar expires the entry,
    // and the holder learns the lease was lost.
    net_.move_node(mobile_.id, {1000, 0});
    sim_.run_for(seconds(10));
    EXPECT_TRUE(registrar_->lookup("svc").empty());
    EXPECT_TRUE(lost);
    EXPECT_FALSE(handle->alive());
}

TEST_F(DiscoTest, CancelRemovesRegistration) {
    sim_.run_for(seconds(1));
    std::shared_ptr<LeasedResource> handle;
    client_->register_service(base_.id, "svc", {}, []() {},
                              [&](std::shared_ptr<LeasedResource> h, std::exception_ptr) {
                                  handle = std::move(h);
                              });
    sim_.run_for(seconds(1));
    handle->cancel();
    sim_.run_for(seconds(1));
    EXPECT_TRUE(registrar_->lookup("svc").empty());
    EXPECT_FALSE(handle->alive());
}

TEST_F(DiscoTest, LocalWatchSeesAppearAndExpire) {
    std::vector<std::pair<std::string, bool>> events;
    registrar_->watch_local("svc", [&](const ServiceItem& item, bool appeared) {
        events.emplace_back(item.type, appeared);
    });

    sim_.run_for(seconds(1));
    std::shared_ptr<LeasedResource> handle;
    client_->register_service(base_.id, "svc", {}, []() {},
                              [&](std::shared_ptr<LeasedResource> h, std::exception_ptr) {
                                  handle = std::move(h);
                              });
    sim_.run_for(seconds(1));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].second);

    net_.move_node(mobile_.id, {1000, 0});
    sim_.run_for(seconds(10));
    ASSERT_EQ(events.size(), 2u);
    EXPECT_FALSE(events[1].second);
}

TEST_F(DiscoTest, LocalWatchCatchesUpOnExistingServices) {
    sim_.run_for(seconds(1));
    std::shared_ptr<LeasedResource> handle;
    client_->register_service(base_.id, "svc", {}, []() {},
                              [&](std::shared_ptr<LeasedResource> h, std::exception_ptr) {
                                  handle = std::move(h);
                              });
    sim_.run_for(seconds(1));

    int appeared = 0;
    registrar_->watch_local("svc", [&](const ServiceItem&, bool ok) {
        if (ok) ++appeared;
    });
    EXPECT_EQ(appeared, 1);  // synchronous catch-up
}

TEST_F(DiscoTest, RemoteWatchDeliversEvents) {
    sim_.run_for(seconds(1));
    // A second mobile node watches for "drawing" services at the base.
    TestNode watcher(net_, "watcher", {20, 0}, 100);
    DiscoveryClient watcher_client(watcher.router, watcher.rpc);
    sim_.run_for(seconds(1));

    std::vector<std::pair<std::string, bool>> events;
    std::shared_ptr<LeasedResource> watch_handle;
    watcher_client.watch(
        base_.id, "drawing",
        [&](const ServiceItem& item, bool appeared) {
            const Value* label = item.attributes.find("node");
            events.emplace_back(label ? label->as_str() : "?", appeared);
        },
        []() {},
        [&](std::shared_ptr<LeasedResource> h, std::exception_ptr e) {
            ASSERT_FALSE(e);
            watch_handle = std::move(h);
        });
    sim_.run_for(seconds(1));
    ASSERT_NE(watch_handle, nullptr);

    std::shared_ptr<LeasedResource> reg_handle;
    client_->register_service(base_.id, "drawing", Dict{{"node", Value{"robot:9"}}},
                              []() {},
                              [&](std::shared_ptr<LeasedResource> h, std::exception_ptr) {
                                  reg_handle = std::move(h);
                              });
    sim_.run_for(seconds(1));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0], (std::pair<std::string, bool>{"robot:9", true}));

    // Provider leaves: watcher gets the disappearance event.
    net_.move_node(mobile_.id, {1000, 0});
    sim_.run_for(seconds(10));
    ASSERT_GE(events.size(), 2u);
    EXPECT_FALSE(events.back().second);
}

TEST_F(DiscoTest, RemoteWatchCatchesUpOnExistingService) {
    sim_.run_for(seconds(1));
    std::shared_ptr<LeasedResource> reg_handle;
    client_->register_service(base_.id, "drawing", {}, []() {},
                              [&](std::shared_ptr<LeasedResource> h, std::exception_ptr) {
                                  reg_handle = std::move(h);
                              });
    sim_.run_for(seconds(1));

    int appeared = 0;
    std::shared_ptr<LeasedResource> watch_handle;
    client_->watch(
        base_.id, "drawing", [&](const ServiceItem&, bool ok) { appeared += ok ? 1 : 0; },
        []() {},
        [&](std::shared_ptr<LeasedResource> h, std::exception_ptr) {
            watch_handle = std::move(h);
        });
    sim_.run_for(seconds(1));
    EXPECT_EQ(appeared, 1);
}

TEST_F(DiscoTest, PermanentRegistrationNeverExpires) {
    registrar_->register_permanent("infra", rt::Dict{{"kind", Value{"tspace"}}});
    // Far beyond max_lease (2s in this fixture): still there, locally and
    // remotely.
    sim_.run_for(seconds(20));
    ASSERT_EQ(registrar_->lookup("infra").size(), 1u);
    std::vector<ServiceItem> found;
    client_->lookup(base_.id, "infra",
                    [&](std::vector<ServiceItem> items, std::exception_ptr) {
                        found = std::move(items);
                    });
    sim_.run_for(seconds(1));
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].provider, base_.id);
    EXPECT_EQ(found[0].attributes.at("kind").as_str(), "tspace");
}

TEST_F(DiscoTest, PermanentRegistrationFiresLocalWatch) {
    int appeared = 0;
    registrar_->watch_local("infra", [&](const ServiceItem&, bool ok) {
        appeared += ok ? 1 : 0;
    });
    registrar_->register_permanent("infra", {});
    EXPECT_EQ(appeared, 1);
}

TEST_F(DiscoTest, AnnounceAloneDiscoversRegistrar) {
    // A passive client that never probes still finds the registrar through
    // its periodic beacon.
    TestNode passive(net_, "passive", {15, 0}, 100);
    // Do not create a DiscoveryClient; listen for the beacon directly.
    bool heard = false;
    passive.router.route("disco.here", [&](const net::Message&) { heard = true; });
    sim_.run_for(seconds(3));
    EXPECT_TRUE(heard);
}

TEST_F(DiscoTest, CancelledWatchStopsEvents) {
    sim_.run_for(seconds(1));
    int events = 0;
    std::shared_ptr<LeasedResource> watch_handle;
    client_->watch(
        base_.id, "svc", [&](const ServiceItem&, bool) { ++events; }, []() {},
        [&](std::shared_ptr<LeasedResource> h, std::exception_ptr) {
            watch_handle = std::move(h);
        });
    sim_.run_for(seconds(1));
    ASSERT_NE(watch_handle, nullptr);
    watch_handle->cancel();
    sim_.run_for(seconds(1));

    std::shared_ptr<LeasedResource> reg_handle;
    client_->register_service(base_.id, "svc", {}, []() {},
                              [&](std::shared_ptr<LeasedResource> h, std::exception_ptr) {
                                  reg_handle = std::move(h);
                              });
    sim_.run_for(seconds(2));
    EXPECT_EQ(events, 0);
}

TEST_F(DiscoTest, LeaseGrantsAreClamped) {
    sim_.run_for(seconds(1));
    // Ask for a day; the registrar grants at most its max (2s in this
    // fixture) — visible through the granted duration in the reply.
    Value reply = mobile_.rpc.call_sync(
        base_.id, "registrar", "register",
        {Value{"svc"}, Value{Dict{}}, Value{std::int64_t{24 * 3600 * 1000}}});
    EXPECT_LE(reply.as_dict().at("duration_ms").as_int(), 2000);
}

TEST_F(DiscoTest, RenewUnknownLeaseFails) {
    sim_.run_for(seconds(1));
    Value reply = mobile_.rpc.call_sync(base_.id, "registrar", "renew",
                                        {Value{9999}, Value{1000}});
    EXPECT_FALSE(reply.as_dict().at("ok").as_bool());
}

}  // namespace
}  // namespace pmp::disco
