// Unit tests for the common foundation: bytes, ids, time, rng, logging.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/error.h"
#include "common/ids.h"
#include "common/log.h"
#include "common/rng.h"
#include "common/time.h"

namespace pmp {
namespace {

TEST(Bytes, HexRoundTrip) {
    Bytes data{0x00, 0x01, 0xAB, 0xFF, 0x7E};
    std::string hex = hex_encode(std::span<const std::uint8_t>(data));
    EXPECT_EQ(hex, "0001abff7e");
    EXPECT_EQ(hex_decode(hex), data);
}

TEST(Bytes, HexDecodeAcceptsUppercase) {
    EXPECT_EQ(hex_decode("AB"), (Bytes{0xAB}));
}

TEST(Bytes, HexDecodeRejectsOddLength) {
    EXPECT_THROW(hex_decode("abc"), ParseError);
}

TEST(Bytes, HexDecodeRejectsNonHex) {
    EXPECT_THROW(hex_decode("zz"), ParseError);
}

TEST(Bytes, StringConversionRoundTrip) {
    std::string s = "hello \0 world";
    Bytes b = to_bytes(s);
    EXPECT_EQ(to_string(std::span<const std::uint8_t>(b)), s);
}

TEST(Bytes, AppendIntegersBigEndian) {
    Bytes out;
    append_u32(out, 0x01020304);
    append_u64(out, 0x1112131415161718ull);
    ASSERT_EQ(out.size(), 12u);
    EXPECT_EQ(out[0], 0x01);
    EXPECT_EQ(out[3], 0x04);
    EXPECT_EQ(out[4], 0x11);
    EXPECT_EQ(out[11], 0x18);
}

TEST(Bytes, ReaderRoundTrip) {
    Bytes out;
    append_u32(out, 42);
    append_u64(out, 1ull << 40);
    append(out, as_bytes("tail"));

    ByteReader reader{std::span<const std::uint8_t>(out)};
    EXPECT_EQ(reader.read_u32(), 42u);
    EXPECT_EQ(reader.read_u64(), 1ull << 40);
    EXPECT_EQ(reader.read_string(4), "tail");
    EXPECT_TRUE(reader.exhausted());
}

TEST(Bytes, ReaderThrowsPastEnd) {
    Bytes out;
    append_u32(out, 1);
    ByteReader reader{std::span<const std::uint8_t>(out)};
    reader.read_u32();
    EXPECT_THROW(reader.read_u32(), ParseError);
}

TEST(Ids, DistinctTypesDistinctValues) {
    IdGenerator<NodeId> nodes;
    IdGenerator<LeaseId> leases;
    NodeId n1 = nodes.next();
    NodeId n2 = nodes.next();
    EXPECT_NE(n1, n2);
    EXPECT_TRUE(n1.valid());
    EXPECT_FALSE(NodeId{}.valid());
    // LeaseId and NodeId are not comparable/convertible — compile-time
    // property; here we just check value independence.
    EXPECT_EQ(leases.next().value, 1u);
}

TEST(Ids, Hashable) {
    std::hash<NodeId> h;
    EXPECT_EQ(h(NodeId{7}), h(NodeId{7}));
}

TEST(Time, Arithmetic) {
    SimTime t = SimTime::zero();
    t += seconds(2);
    EXPECT_EQ(t.ns, 2'000'000'000);
    SimTime later = t + milliseconds(500);
    EXPECT_EQ(later - t, milliseconds(500));
    EXPECT_LT(t, later);
    EXPECT_DOUBLE_EQ(later.seconds_since_zero(), 2.5);
}

TEST(Time, MaxIsSentinel) {
    EXPECT_GT(SimTime::max(), SimTime::zero() + hours(24 * 365));
}

TEST(Rng, DeterministicForSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++same;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, RangesRespected) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.next_below(10), 10u);
        auto v = rng.next_in(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ChanceExtremes) {
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, SplitIndependent) {
    Rng parent(42);
    Rng child = parent.split();
    EXPECT_NE(parent.next_u64(), child.next_u64());
}

TEST(Log, SinkCapturesAtLevel) {
    std::vector<std::string> lines;
    Log::set_sink([&](LogLevel, const std::string& line) { lines.push_back(line); });
    Log::set_level(LogLevel::kInfo);
    log_debug(SimTime::zero(), "test", "invisible");
    log_info(SimTime{1'500'000'000}, "test", "visible ", 42);
    Log::set_level(LogLevel::kWarn);
    Log::set_sink(nullptr);

    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("visible 42"), std::string::npos);
    EXPECT_NE(lines[0].find("test"), std::string::npos);
}

}  // namespace
}  // namespace pmp
