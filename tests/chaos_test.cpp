// Chaos soak: the full platform (two halls, a small robot fleet) under a
// seeded hostile radio — burst loss, duplication, delay jitter, reordering
// and a scheduled blackout — across many seeds. The leasing design's
// promise is convergence, not uptime: after the faults settle, every
// reachable node must hold exactly its hall's policy, extensions must not
// outlive their base, and the same seed must replay the identical run.
#include <gtest/gtest.h>

#include "midas/node.h"

namespace pmp::midas {
namespace {

using rt::Value;

ExtensionPackage policy_pkg(const std::string& name) {
    ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = "fun onEntry() { }";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

struct ChaosWorld {
    sim::Simulator sim;
    net::Network net;
    std::unique_ptr<BaseStation> hall_a;
    std::unique_ptr<BaseStation> hall_b;
    std::vector<std::unique_ptr<MobileNode>> robots;

    explicit ChaosWorld(std::uint64_t seed, bool with_faults = true)
        : net(sim, net::NetworkConfig{}, seed) {
        BaseConfig bca;
        bca.issuer = "hallA";
        hall_a = std::make_unique<BaseStation>(net, "hallA", net::Position{0, 0}, 120.0, bca);
        hall_a->keys().add_key("hallA", to_bytes("ka"));
        BaseConfig bcb;
        bcb.issuer = "hallB";
        hall_b =
            std::make_unique<BaseStation>(net, "hallB", net::Position{300, 0}, 120.0, bcb);
        hall_b->keys().add_key("hallB", to_bytes("kb"));

        // Two robots live in hall A's cell, one in hall B's; the halls are
        // out of each other's reach.
        const net::Position spots[] = {{10, 0}, {20, 10}, {310, 0}};
        for (int i = 0; i < 3; ++i) {
            auto robot = std::make_unique<MobileNode>(net, "robot" + std::to_string(i),
                                                      spots[i], 120.0);
            robot->trust().trust("hallA", to_bytes("ka"));
            robot->trust().trust("hallB", to_bytes("kb"));
            robots.push_back(std::move(robot));
        }
        hall_a->base().add_extension(policy_pkg("hallA/policy"));
        hall_b->base().add_extension(policy_pkg("hallB/policy"));

        if (with_faults) {
            net::FaultPlan plan;
            plan.loss = 0.05;
            plan.burst_enter = 0.02;
            plan.burst_exit = 0.3;
            plan.delay_jitter = milliseconds(10);
            plan.duplicate = 0.1;
            plan.reorder = 0.05;
            // Mid-run blackout: robot0 loses all connectivity for 4s —
            // long past its lease — then heals.
            plan.partitions.push_back(net::PartitionWindow{
                SimTime::zero() + seconds(8), SimTime::zero() + seconds(12),
                {robots[0]->id()},
                {}});
            net.set_fault_plan(plan, seed * 1000003ULL + 17);
        }
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }

    bool converged() {
        return robots[0]->receiver().installed_count() == 1 &&
               robots[1]->receiver().installed_count() == 1 &&
               robots[2]->receiver().installed_count() == 1;
    }
};

TEST(ChaosSoak, ConvergesUnderInjectedFaultsAcrossSeeds) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ChaosWorld w(seed);
        // Ride through the fault-heavy phase including the blackout.
        w.sim.run_for(seconds(12));
        // Invariant 1: after the blackout heals, everything re-converges —
        // each robot holds exactly its hall's policy.
        ASSERT_TRUE(w.run_until([&] { return w.converged(); })) << "seed " << seed;
        // Invariant 2: it stays converged (keep-alives outrun the ongoing
        // background loss; blips must heal within the window).
        w.sim.run_for(seconds(5));
        ASSERT_TRUE(w.run_until([&] { return w.converged(); }, seconds(30)))
            << "seed " << seed;
        // Invariant 3: the books balance — nothing delivered that was not
        // sent, and the blackout actually bit.
        net::NetworkStats s = w.net.stats();
        EXPECT_LE(s.delivered, s.sent) << "seed " << seed;
        EXPECT_GT(s.fault_dropped_partition, 0u) << "seed " << seed;
        EXPECT_GT(s.fault_dropped_loss + s.fault_dropped_burst, 0u) << "seed " << seed;
    }
}

TEST(ChaosSoak, SameSeedReplaysIdentically) {
    auto fingerprint = [](std::uint64_t seed) {
        ChaosWorld w(seed);
        w.sim.run_for(seconds(20));
        net::NetworkStats s = w.net.stats();
        return std::tuple{s.sent,
                          s.delivered,
                          s.fault_dropped_loss,
                          s.fault_dropped_burst,
                          s.fault_dropped_partition,
                          s.fault_duplicated,
                          s.fault_delayed,
                          s.fault_reordered,
                          w.robots[0]->receiver().stats().installs,
                          w.robots[1]->receiver().stats().refreshes,
                          w.hall_a->base().stats().installs_sent,
                          w.hall_b->base().stats().keepalives_sent};
    };
    EXPECT_EQ(fingerprint(7), fingerprint(7));
    EXPECT_NE(fingerprint(7), fingerprint(8));
}

TEST(ChaosSoak, ExtensionsDoNotOutliveTheirBase) {
    ChaosWorld w(3, /*with_faults=*/false);
    ASSERT_TRUE(w.run_until([&] { return w.converged(); }));

    // Hall A's base station dies. Its extensions must evaporate from both
    // of its robots within a lease plus keep-alive slack — the receivers
    // withdraw autonomously, no teardown message required.
    w.net.remove_node(w.hall_a->id());
    SimTime gone_at = w.sim.now();
    ASSERT_TRUE(w.run_until([&] {
        return w.robots[0]->receiver().installed_count() == 0 &&
               w.robots[1]->receiver().installed_count() == 0;
    }, seconds(15)));
    EXPECT_LE(w.sim.now() - gone_at, seconds(10));
    // Hall B and its robot are untouched.
    EXPECT_EQ(w.robots[2]->receiver().installed_count(), 1u);
}

TEST(ChaosSoak, BlackedOutNodeRecoversItsPolicy) {
    ChaosWorld w(5);
    ASSERT_TRUE(w.run_until([&] { return w.converged(); }, seconds(8)));
    // During the blackout robot0's lease expires and hall A gives it up.
    w.sim.run_until(SimTime::zero() + seconds(11));
    EXPECT_EQ(w.robots[0]->receiver().installed_count(), 0u);
    // After the heal the ordinary discovery + adaptation loop must bring
    // the policy back without any operator involvement.
    ASSERT_TRUE(w.run_until([&] { return w.converged(); }));
}

}  // namespace
}  // namespace pmp::midas
