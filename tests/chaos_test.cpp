// Chaos soak: the full platform (two halls, a small robot fleet) under a
// seeded hostile radio — burst loss, duplication, delay jitter, reordering
// and a scheduled blackout — across many seeds. The leasing design's
// promise is convergence, not uptime: after the faults settle, every
// reachable node must hold exactly its hall's policy, extensions must not
// outlive their base, and the same seed must replay the identical run.
#include <gtest/gtest.h>

#include <cstdlib>

#include "midas/node.h"
#include "midas/supervisor.h"
#include "obs/metrics.h"
#include "robot/devices.h"

namespace pmp::midas {
namespace {

using rt::Value;

ExtensionPackage policy_pkg(const std::string& name) {
    ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = "fun onEntry() { }";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

struct ChaosWorld {
    sim::Simulator sim;
    net::Network net;
    std::unique_ptr<BaseStation> hall_a;
    std::unique_ptr<BaseStation> hall_b;
    std::vector<std::unique_ptr<MobileNode>> robots;

    explicit ChaosWorld(std::uint64_t seed, bool with_faults = true)
        : net(sim, net::NetworkConfig{}, seed) {
        BaseConfig bca;
        bca.issuer = "hallA";
        hall_a = std::make_unique<BaseStation>(net, "hallA", net::Position{0, 0}, 120.0, bca);
        hall_a->keys().add_key("hallA", to_bytes("ka"));
        BaseConfig bcb;
        bcb.issuer = "hallB";
        hall_b =
            std::make_unique<BaseStation>(net, "hallB", net::Position{300, 0}, 120.0, bcb);
        hall_b->keys().add_key("hallB", to_bytes("kb"));

        // Two robots live in hall A's cell, one in hall B's; the halls are
        // out of each other's reach.
        const net::Position spots[] = {{10, 0}, {20, 10}, {310, 0}};
        for (int i = 0; i < 3; ++i) {
            auto robot = std::make_unique<MobileNode>(net, "robot" + std::to_string(i),
                                                      spots[i], 120.0);
            robot->trust().trust("hallA", to_bytes("ka"));
            robot->trust().trust("hallB", to_bytes("kb"));
            robots.push_back(std::move(robot));
        }
        hall_a->base().add_extension(policy_pkg("hallA/policy"));
        hall_b->base().add_extension(policy_pkg("hallB/policy"));

        if (with_faults) {
            net::FaultPlan plan;
            plan.loss = 0.05;
            plan.burst_enter = 0.02;
            plan.burst_exit = 0.3;
            plan.delay_jitter = milliseconds(10);
            plan.duplicate = 0.1;
            plan.reorder = 0.05;
            // Mid-run blackout: robot0 loses all connectivity for 4s —
            // long past its lease — then heals.
            plan.partitions.push_back(net::PartitionWindow{
                SimTime::zero() + seconds(8), SimTime::zero() + seconds(12),
                {robots[0]->id()},
                {}});
            net.set_fault_plan(plan, seed * 1000003ULL + 17);
        }
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }

    bool converged() {
        return robots[0]->receiver().installed_count() == 1 &&
               robots[1]->receiver().installed_count() == 1 &&
               robots[2]->receiver().installed_count() == 1;
    }
};

TEST(ChaosSoak, ConvergesUnderInjectedFaultsAcrossSeeds) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ChaosWorld w(seed);
        // Ride through the fault-heavy phase including the blackout.
        w.sim.run_for(seconds(12));
        // Invariant 1: after the blackout heals, everything re-converges —
        // each robot holds exactly its hall's policy.
        ASSERT_TRUE(w.run_until([&] { return w.converged(); })) << "seed " << seed;
        // Invariant 2: it stays converged (keep-alives outrun the ongoing
        // background loss; blips must heal within the window).
        w.sim.run_for(seconds(5));
        ASSERT_TRUE(w.run_until([&] { return w.converged(); }, seconds(30)))
            << "seed " << seed;
        // Invariant 3: the books balance — nothing delivered that was not
        // sent, and the blackout actually bit.
        net::NetworkStats s = w.net.stats();
        EXPECT_LE(s.delivered, s.sent) << "seed " << seed;
        EXPECT_GT(s.fault_dropped_partition, 0u) << "seed " << seed;
        EXPECT_GT(s.fault_dropped_loss + s.fault_dropped_burst, 0u) << "seed " << seed;
    }
}

TEST(ChaosSoak, SameSeedReplaysIdentically) {
    auto fingerprint = [](std::uint64_t seed) {
        ChaosWorld w(seed);
        w.sim.run_for(seconds(20));
        net::NetworkStats s = w.net.stats();
        return std::tuple{s.sent,
                          s.delivered,
                          s.fault_dropped_loss,
                          s.fault_dropped_burst,
                          s.fault_dropped_partition,
                          s.fault_duplicated,
                          s.fault_delayed,
                          s.fault_reordered,
                          w.robots[0]->receiver().stats().installs,
                          w.robots[1]->receiver().stats().refreshes,
                          w.hall_a->base().stats().installs_sent,
                          w.hall_b->base().stats().keepalives_sent};
    };
    EXPECT_EQ(fingerprint(7), fingerprint(7));
    EXPECT_NE(fingerprint(7), fingerprint(8));
}

TEST(ChaosSoak, ExtensionsDoNotOutliveTheirBase) {
    ChaosWorld w(3, /*with_faults=*/false);
    ASSERT_TRUE(w.run_until([&] { return w.converged(); }));

    // Hall A's base station dies. Its extensions must evaporate from both
    // of its robots within a lease plus keep-alive slack — the receivers
    // withdraw autonomously, no teardown message required.
    w.net.remove_node(w.hall_a->id());
    SimTime gone_at = w.sim.now();
    ASSERT_TRUE(w.run_until([&] {
        return w.robots[0]->receiver().installed_count() == 0 &&
               w.robots[1]->receiver().installed_count() == 0;
    }, seconds(15)));
    EXPECT_LE(w.sim.now() - gone_at, seconds(10));
    // Hall B and its robot are untouched.
    EXPECT_EQ(w.robots[2]->receiver().installed_count(), 1u);
}

TEST(ChaosSoak, BlackedOutNodeRecoversItsPolicy) {
    ChaosWorld w(5);
    ASSERT_TRUE(w.run_until([&] { return w.converged(); }, seconds(8)));
    // During the blackout robot0's lease expires and hall A gives it up.
    w.sim.run_until(SimTime::zero() + seconds(11));
    EXPECT_EQ(w.robots[0]->receiver().installed_count(), 0u);
    // After the heal the ordinary discovery + adaptation loop must bring
    // the policy back without any operator involvement.
    ASSERT_TRUE(w.run_until([&] { return w.converged(); }));
}

// ---------------------------------------------------------------------------
// Crash chaos: the same hostile radio PLUS process crashes. Hall A runs
// durable (journal + epoch recovery) under a Supervisor; one robot crashes
// and restarts as a fresh, memory-less device. The promise is unchanged —
// convergence, not uptime — with two additions: the restarted hall's
// database must retain everything journaled before the power cut, and the
// whole run (crashes included) must replay bit-identically per seed.

struct CrashChaosWorld {
    sim::Simulator sim;
    net::Network net;
    Supervisor sup;
    std::shared_ptr<db::JournalStorage> disk_a;
    std::unique_ptr<BaseStation> hall_a;
    std::unique_ptr<BaseStation> hall_b;
    std::vector<std::unique_ptr<MobileNode>> robots;

    explicit CrashChaosWorld(std::uint64_t seed)
        : net(sim, net::NetworkConfig{}, seed),
          sup(net),
          disk_a(std::make_shared<db::JournalStorage>()) {
        disk_a->name = "hallA";
        robots.resize(3);

        sup.manage("hallA", Supervisor::Lifecycle{
                                [this]() {
                                    BaseConfig bc;
                                    bc.issuer = "hallA";
                                    // Group commit + chunked snapshots ON:
                                    // the PR 3 invariants below must hold
                                    // unchanged. batch_ms of 20 ms keeps
                                    // any record older than a tick flushed
                                    // well before a scheduled power cut.
                                    bc.journal = db::JournalConfig{
                                        .batch_bytes = 1024,
                                        .batch_ms = milliseconds(20),
                                        .snapshot_chunk_bytes = 256};
                                    hall_a = std::make_unique<BaseStation>(
                                        net, "hallA", net::Position{0, 0}, 120.0, bc,
                                        disco::RegistrarConfig{}, disk_a);
                                    hall_a->keys().add_key("hallA", to_bytes("ka"));
                                },
                                [this]() { return hall_a->id(); },
                                [this]() {
                                    if (hall_a && hall_a->journal())
                                        hall_a->journal()->power_off();
                                },
                                [this]() { hall_a.reset(); },
                            });
        BaseConfig bcb;
        bcb.issuer = "hallB";
        hall_b =
            std::make_unique<BaseStation>(net, "hallB", net::Position{300, 0}, 120.0, bcb);
        hall_b->keys().add_key("hallB", to_bytes("kb"));

        // Captured by the supervised restart lifecycle below, which runs
        // long after this constructor frame is gone — no reference captures.
        auto make_robot = [this](int i) {
            const net::Position spots[] = {{10, 0}, {20, 10}, {310, 0}};
            auto robot = std::make_unique<MobileNode>(net, "robot" + std::to_string(i),
                                                      spots[i], 120.0);
            robot->trust().trust("hallA", to_bytes("ka"));
            robot->trust().trust("hallB", to_bytes("kb"));
            return robot;
        };
        robots[0] = make_robot(0);
        robots[2] = make_robot(2);
        // robot1 is supervised: its crash loses all volatile state (no
        // journal) and its restart is a brand-new device with a new id.
        sup.manage("robot1", Supervisor::Lifecycle{
                                 [this, make_robot]() { robots[1] = make_robot(1); },
                                 [this]() { return robots[1]->id(); },
                                 []() {},
                                 [this]() { robots[1].reset(); },
                             });

        hall_a->base().add_extension(policy_pkg("hallA/policy"));
        hall_b->base().add_extension(policy_pkg("hallB/policy"));

        // The radio misbehaves exactly like the plain chaos soak.
        net::FaultPlan plan;
        plan.loss = 0.05;
        plan.burst_enter = 0.02;
        plan.burst_exit = 0.3;
        plan.delay_jitter = milliseconds(10);
        plan.duplicate = 0.1;
        plan.reorder = 0.05;
        plan.partitions.push_back(net::PartitionWindow{SimTime::zero() + seconds(8),
                                                       SimTime::zero() + seconds(12),
                                                       {robots[0]->id()},
                                                       {}});
        net.set_fault_plan(plan, seed * 1000003ULL + 17);

        // And on top of it, the power misbehaves: hall A dies mid-run,
        // robot1 dies once on schedule and again at random in a late
        // Poisson window. All faults are over by t=19s.
        net::CrashPlan crashes;
        crashes.events.push_back(
            net::CrashEvent{"hallA", SimTime::zero() + seconds(6), milliseconds(2500)});
        crashes.events.push_back(
            net::CrashEvent{"robot1", SimTime::zero() + seconds(9), milliseconds(1500)});
        crashes.windows.push_back(net::CrashWindow{"robot1", SimTime::zero() + seconds(14),
                                                   SimTime::zero() + seconds(18), 0.25,
                                                   seconds(1)});
        sup.apply(crashes, seed * 7919ULL + 3);
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }

    /// Every in-range node holds exactly its hall's policy.
    bool converged() {
        for (int i = 0; i < 3; ++i) {
            if (!robots[i] || robots[i]->receiver().installed_count() != 1) return false;
        }
        return robots[0]->receiver().installed()[0].name == "hallA/policy" &&
               robots[1]->receiver().installed()[0].name == "hallA/policy" &&
               robots[2]->receiver().installed()[0].name == "hallB/policy";
    }
};

std::uint64_t chaos_seed_base() {
    // CI sweeps disjoint seed ranges by exporting PMP_CHAOS_SEED_BASE.
    if (const char* env = std::getenv("PMP_CHAOS_SEED_BASE")) {
        return std::strtoull(env, nullptr, 10);
    }
    return 1;
}

TEST(CrashChaos, ConvergesAndHallDbSurvivesAcrossSeeds) {
    const std::uint64_t base = chaos_seed_base();
    for (std::uint64_t seed = base; seed < base + 20; ++seed) {
        CrashChaosWorld w(seed);
        ASSERT_TRUE(w.run_until([&] { return w.converged(); })) << "seed " << seed;

        // Hall activity lands in the database (and so in the journal)
        // before the power cut at t=6s.
        for (std::int64_t i = 1; i <= 5; ++i) {
            w.hall_a->store().append("op", w.sim.now(), Value{i});
        }

        // Ride out every scheduled fault: blackout, both crashes, the
        // Poisson window. Then the platform must re-converge and hold.
        w.sim.run_until(SimTime::zero() + seconds(20));
        ASSERT_TRUE(w.run_until([&] { return w.converged(); })) << "seed " << seed;
        w.sim.run_for(seconds(5));
        ASSERT_TRUE(w.run_until([&] { return w.converged(); }, seconds(30)))
            << "seed " << seed;

        // Hall A really died and recovered, under a bumped epoch.
        EXPECT_GE(w.sup.stats().crashes, 2u) << "seed " << seed;
        EXPECT_EQ(w.sup.stats().restarts, w.sup.stats().crashes) << "seed " << seed;
        ASSERT_TRUE(w.hall_a != nullptr);
        EXPECT_GE(w.hall_a->base().epoch(), 2u) << "seed " << seed;

        // The hall database retains every record journaled before the
        // crash, in order.
        ASSERT_EQ(w.hall_a->store().size(), 5u) << "seed " << seed;
        for (std::uint64_t i = 1; i <= 5; ++i) {
            EXPECT_EQ(w.hall_a->store().at(i).data.as_int(),
                      static_cast<std::int64_t>(i))
                << "seed " << seed;
        }
        EXPECT_LE(w.net.stats().delivered, w.net.stats().sent) << "seed " << seed;
    }
}

TEST(CrashChaos, SameSeedReplaysIdenticallyWithCrashes) {
    auto fingerprint = [](std::uint64_t seed) {
        CrashChaosWorld w(seed);
        w.sim.run_for(seconds(4));  // fixed instant, before the first crash
        for (std::int64_t i = 1; i <= 3; ++i) {
            w.hall_a->store().append("op", w.sim.now(), Value{i});
        }
        w.sim.run_for(seconds(21));
        net::NetworkStats s = w.net.stats();
        return std::tuple{s.sent,
                          s.delivered,
                          s.fault_dropped_loss,
                          s.fault_dropped_burst,
                          s.fault_dropped_partition,
                          s.fault_duplicated,
                          s.fault_reordered,
                          w.sup.stats().crashes,
                          w.sup.stats().restarts,
                          w.hall_a->base().epoch(),
                          w.hall_a->store().size(),
                          w.robots[0]->receiver().stats().installs,
                          w.robots[2]->receiver().stats().refreshes,
                          w.hall_b->base().stats().keepalives_sent};
    };
    EXPECT_EQ(fingerprint(7), fingerprint(7));
    EXPECT_NE(fingerprint(7), fingerprint(8));
}

// ---------------------------------------------------------------------------
// Overload chaos: an application storm at 10x the admission rate on top of
// the usual lossy radio, plus a robot yanked mid-run so the hall's breaker
// trips. The overload-protection promise (docs/overload.md): control
// traffic survives — no healthy node ever loses a lease — excess load is
// shed with typed errors rather than timeouts, the per-extension governor
// throttles the advice the storm drives, and once the storm passes the
// fleet re-converges within a few keep-alive periods. And, as always:
// the same seed replays the identical run.

std::uint64_t counter_now(const std::string& name, const std::string& label = "") {
    return obs::Registry::global().counter(name, label).value();
}

struct OverloadChaosWorld {
    sim::Simulator sim;
    net::Network net;
    std::unique_ptr<BaseStation> hall_a;
    std::unique_ptr<BaseStation> hall_b;
    std::vector<std::unique_ptr<MobileNode>> robots;
    std::unique_ptr<MobileNode> victim;  ///< near hall A, yanked mid-run
    std::unique_ptr<NodeStack> flood;    ///< the storm source
    std::vector<std::shared_ptr<rt::ServiceObject>> motors;
    /// Renewal-counter baselines at construction. Reading a counter via the
    /// global registry pins its slot, so a later same-process world inherits
    /// the previous world's total — established() must compare deltas, never
    /// absolutes, or replay runs diverge.
    std::uint64_t renew0[4] = {0, 0, 0, 0};

    explicit OverloadChaosWorld(std::uint64_t seed)
        : net(sim, net::NetworkConfig{}, seed) {
        BaseConfig bca;
        bca.issuer = "hallA";
        bca.keepalive_period = milliseconds(400);
        // Open fast toward the yanked robot — well before the base would
        // give it up — so the soak provably exercises the breaker.
        bca.breaker_threshold = 2;
        bca.breaker_open_period = milliseconds(500);
        bca.max_keepalive_failures = 4;
        hall_a = std::make_unique<BaseStation>(net, "hallA", net::Position{0, 0}, 120.0, bca);
        hall_a->keys().add_key("hallA", to_bytes("ka"));
        BaseConfig bcb;
        bcb.issuer = "hallB";
        bcb.keepalive_period = milliseconds(400);
        hall_b =
            std::make_unique<BaseStation>(net, "hallB", net::Position{300, 0}, 120.0, bcb);
        hall_b->keys().add_key("hallB", to_bytes("kb"));

        // The robots police their own advice: ~8 admitted app calls land
        // per 400ms lease window during the storm, so a budget of 8 keeps
        // the governor throttling for the storm's whole duration. No
        // quarantine — this is load, not malice.
        ReceiverConfig rc;
        rc.governor_invocation_budget = 8;
        rc.governor_suspend_factor = 4.0;
        rc.governor_throttle_keep = 4;
        rc.governor_quarantine_after = 0;
        const net::Position spots[] = {{10, 0}, {20, 10}, {310, 0}};
        for (int i = 0; i < 3; ++i) {
            auto robot = std::make_unique<MobileNode>(net, "robot" + std::to_string(i),
                                                      spots[i], 120.0, rc);
            robot->trust().trust("hallA", to_bytes("ka"));
            robot->trust().trust("hallB", to_bytes("kb"));
            // Tight admission, an order of magnitude below the storm: the
            // overflow must shed, and control must still cut the line.
            net::AdmissionConfig ac;
            ac.rate_per_sec = 50.0;
            ac.burst = 16.0;
            ac.queue_cap = {16, 8, 24};
            robot->router().admission().set_config(ac);
            motors.push_back(robot::make_motor(robot->runtime(), "motor:" + std::to_string(i)));
            robot->rpc().export_object("motor:" + std::to_string(i));
            robots.push_back(std::move(robot));
        }
        victim = std::make_unique<MobileNode>(net, "victim", net::Position{30, 0}, 120.0);
        victim->trust().trust("hallA", to_bytes("ka"));
        flood = std::make_unique<NodeStack>(net, "flood", net::Position{15, 5}, 120.0);

        hall_a->base().add_extension(policy_pkg("hallA/policy"));
        hall_b->base().add_extension(policy_pkg("hallB/policy"));

        // Background radio misbehaviour, continuous — no blackout windows;
        // the storm is the event here.
        net::FaultPlan plan;
        plan.loss = 0.02;
        plan.delay_jitter = milliseconds(5);
        plan.duplicate = 0.05;
        plan.reorder = 0.05;
        net.set_fault_plan(plan, seed * 1000003ULL + 17);

        for (int i = 0; i < 3; ++i) {
            renew0[i] = counter_now("midas.lease.renewals", "robot" + std::to_string(i));
        }
        renew0[3] = counter_now("midas.lease.renewals", "victim");
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }

    bool converged() {
        return robots[0]->receiver().installed_count() == 1 &&
               robots[1]->receiver().installed_count() == 1 &&
               robots[2]->receiver().installed_count() == 1;
    }

    /// A node is "established" once it has seen a lease renewal: the base's
    /// install rpc was acked and the node sits in the keep-alive rotation.
    /// Installed-but-unrenewed is not enough — if the storm starts while
    /// the install ack is still in flight, the base times out, never sends
    /// keep-alives, and the node loses a lease through no fault of the
    /// overload machinery (the invariant is about *healthy adapted* nodes).
    bool established() {
        auto ok = [this](MobileNode& n, const std::string& label, int i) {
            return n.receiver().installed_count() == 1 &&
                   counter_now("midas.lease.renewals", label) - renew0[i] >= 1;
        };
        return ok(*robots[0], "robot0", 0) && ok(*robots[1], "robot1", 1) &&
               ok(*robots[2], "robot2", 2) && ok(*victim, "victim", 3);
    }

    /// Drive the whole scripted run: converge, yank the victim, then blast
    /// robot0's motor at 500 calls/s for 5 virtual seconds and let three
    /// keep-alive periods pass. Returns {ok, errors} seen by the flood.
    std::pair<int, int> storm() {
        if (!run_until([&] { return established(); }, seconds(5))) {
            return {-1, -1};
        }
        net.remove_node(victim->id());
        int ok = 0;
        int errors = 0;
        SimTime storm_end = sim.now() + seconds(5);
        while (sim.now() < storm_end) {
            for (int i = 0; i < 5; ++i) {
                flood->rpc().call_async(
                    robots[0]->id(), "motor:0", "rotate", {rt::Value{1.0}},
                    [&](rt::Value, std::exception_ptr e) { ++(e ? errors : ok); });
            }
            sim.run_until(sim.now() + milliseconds(10));
        }
        sim.run_for(milliseconds(1200));  // 3 keep-alive periods of quiet
        return {ok, errors};
    }
};

TEST(OverloadChaos, ControlTrafficSurvivesStormsAcrossSeeds) {
    const std::uint64_t base = chaos_seed_base();
    for (std::uint64_t seed = base; seed < base + 20; ++seed) {
        OverloadChaosWorld w(seed);
        const std::uint64_t shed0 = counter_now("net.admission.shed");
        const std::uint64_t opens0 = counter_now("rpc.breaker_opens", "hallA");
        const std::uint64_t throttles0 = counter_now("recv.governor.throttles", "robot0");

        auto [ok, errors] = w.storm();
        ASSERT_GE(ok, 0) << "seed " << seed << ": fleet never converged pre-storm";

        // The point of the whole subsystem: a 10x storm plus a dead peer
        // never cost a healthy node its lease, and the fleet is converged
        // again within three keep-alive periods of the storm ending.
        for (int i = 0; i < 3; ++i) {
            EXPECT_EQ(w.robots[i]->receiver().stats().expirations, 0u)
                << "seed " << seed << " robot" << i;
        }
        EXPECT_TRUE(w.converged()) << "seed " << seed;

        // Every layer of protection demonstrably fired...
        EXPECT_GT(counter_now("net.admission.shed") - shed0, 0u) << "seed " << seed;
        EXPECT_GT(counter_now("rpc.breaker_opens", "hallA") - opens0, 0u)
            << "seed " << seed;
        EXPECT_GT(counter_now("recv.governor.throttles", "robot0") - throttles0, 0u)
            << "seed " << seed;
        EXPECT_GT(errors, 0) << "seed " << seed;  // sheds surfaced as typed errors
        EXPECT_GT(ok, 0) << "seed " << seed;      // ...while service continued
        // ...and the governor stood down once the storm passed.
        ASSERT_EQ(w.robots[0]->receiver().installed_count(), 1u) << "seed " << seed;
        EXPECT_EQ(w.robots[0]->receiver().governor_mode(
                      w.robots[0]->receiver().installed()[0].id),
                  AdaptationService::GovernorMode::kNormal)
            << "seed " << seed;
    }
}

TEST(OverloadChaos, SameSeedReplaysIdenticallyUnderStorm) {
    auto fingerprint = [](std::uint64_t seed) {
        OverloadChaosWorld w(seed);
        const std::uint64_t shed0 = counter_now("net.admission.shed");
        const std::uint64_t throttles0 = counter_now("recv.governor.throttles", "robot0");
        auto [ok, errors] = w.storm();
        net::NetworkStats s = w.net.stats();
        return std::tuple{s.sent,
                          s.delivered,
                          s.fault_dropped_loss,
                          s.fault_duplicated,
                          s.fault_delayed,
                          s.fault_reordered,
                          counter_now("net.admission.shed") - shed0,
                          counter_now("recv.governor.throttles", "robot0") - throttles0,
                          w.robots[0]->receiver().stats().installs,
                          w.robots[0]->receiver().stats().refreshes,
                          w.hall_a->base().stats().keepalives_sent,
                          ok,
                          errors};
    };
    EXPECT_EQ(fingerprint(7), fingerprint(7));
    EXPECT_NE(fingerprint(7), fingerprint(8));
}

}  // namespace
}  // namespace pmp::midas
