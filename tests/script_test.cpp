// Tests for AdviceScript: lexing, parsing, evaluation semantics, the
// capability sandbox and resource budgets.
#include <gtest/gtest.h>

#include "common/error.h"
#include "script/interp.h"
#include "script/parser.h"
#include "script/token.h"

namespace pmp::script {
namespace {

using rt::Dict;
using rt::List;
using rt::Value;

Interpreter make_interp(const std::string& source, Sandbox sandbox = {},
                        std::shared_ptr<BuiltinRegistry> builtins = nullptr) {
    if (!builtins) {
        builtins = std::make_shared<BuiltinRegistry>(BuiltinRegistry::with_core());
    }
    auto program = std::make_shared<const Program>(parse(source));
    Interpreter interp(program, std::move(sandbox), std::move(builtins));
    interp.run_top_level();
    return interp;
}

/// Evaluate an expression by wrapping it in a function.
Value eval(const std::string& expr) {
    auto interp = make_interp("fun f() { return " + expr + "; }");
    return interp.call("f", {});
}

// ------------------------------------------------------------- lexer ----

TEST(Lexer, TokenKinds) {
    auto toks = tokenize("let x = 1.5 + \"s\"; // comment\n fun");
    std::vector<Tok> kinds;
    for (const auto& t : toks) kinds.push_back(t.kind);
    EXPECT_EQ(kinds, (std::vector<Tok>{Tok::kLet, Tok::kIdent, Tok::kAssign, Tok::kReal,
                                       Tok::kPlus, Tok::kStr, Tok::kSemi, Tok::kFun,
                                       Tok::kEof}));
}

TEST(Lexer, LineColumnTracking) {
    auto toks = tokenize("a\n  b");
    EXPECT_EQ(toks[0].line, 1);
    EXPECT_EQ(toks[1].line, 2);
    EXPECT_EQ(toks[1].column, 3);
}

TEST(Lexer, StringEscapes) {
    auto toks = tokenize(R"("a\n\t\"\\b")");
    EXPECT_EQ(toks[0].text, "a\n\t\"\\b");
}

TEST(Lexer, BlockComments) {
    auto toks = tokenize("a /* ignore \n all this */ b");
    EXPECT_EQ(toks[0].text, "a");
    EXPECT_EQ(toks[1].text, "b");
}

TEST(Lexer, Errors) {
    EXPECT_THROW(tokenize("\"unterminated"), ParseError);
    EXPECT_THROW(tokenize("a & b"), ParseError);
    EXPECT_THROW(tokenize("@"), ParseError);
    EXPECT_THROW(tokenize("/* never closed"), ParseError);
}

// ------------------------------------------------------------ parser ----

TEST(Parser, RejectsBadSyntax) {
    EXPECT_THROW(parse("let = 5;"), ParseError);
    EXPECT_THROW(parse("if x { }"), ParseError);
    EXPECT_THROW(parse("fun () {}"), ParseError);
    EXPECT_THROW(parse("1 + ;"), ParseError);
    EXPECT_THROW(parse("x = 1"), ParseError);      // missing semicolon
    EXPECT_THROW(parse("1 = 2;"), ParseError);     // non-lvalue
    EXPECT_THROW(parse("f(1)(2);"), ParseError);   // only named callees
    EXPECT_THROW(parse("{ let x = 1;"), ParseError);
}

TEST(Parser, ErrorCarriesLocation) {
    try {
        parse("let a = 1;\nlet b = ;\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
        EXPECT_EQ(e.line(), 2);
    }
}

// --------------------------------------------------------- semantics ----

TEST(Interp, Arithmetic) {
    EXPECT_EQ(eval("1 + 2 * 3").as_int(), 7);
    EXPECT_EQ(eval("(1 + 2) * 3").as_int(), 9);
    EXPECT_EQ(eval("7 / 2").as_int(), 3);          // int division
    EXPECT_DOUBLE_EQ(eval("7.0 / 2").as_real(), 3.5);
    EXPECT_EQ(eval("7 % 3").as_int(), 1);
    EXPECT_EQ(eval("-4 + 1").as_int(), -3);
}

TEST(Interp, DivisionByZeroThrows) {
    EXPECT_THROW(eval("1 / 0"), ScriptError);
    EXPECT_THROW(eval("1 % 0"), ScriptError);
}

TEST(Interp, StringOps) {
    EXPECT_EQ(eval("\"a\" + \"b\"").as_str(), "ab");
    EXPECT_EQ(eval("\"n=\" + 42").as_str(), "n=42");  // number stringifies
    EXPECT_TRUE(eval("\"abc\" < \"abd\"").as_bool());
}

TEST(Interp, Comparisons) {
    EXPECT_TRUE(eval("1 < 2").as_bool());
    EXPECT_TRUE(eval("2 <= 2").as_bool());
    EXPECT_TRUE(eval("1 == 1.0").as_bool());  // numeric equality across kinds
    EXPECT_TRUE(eval("1 != 2").as_bool());
    EXPECT_TRUE(eval("null == null").as_bool());
}

TEST(Interp, LogicShortCircuits) {
    // The right side would throw if evaluated.
    EXPECT_FALSE(eval("false && (1 / 0 == 0)").as_bool());
    EXPECT_TRUE(eval("true || (1 / 0 == 0)").as_bool());
    EXPECT_TRUE(eval("!false").as_bool());
}

TEST(Interp, IfElseChain) {
    auto interp = make_interp(R"(
        fun grade(x) {
            if (x >= 90) { return "A"; }
            else if (x >= 80) { return "B"; }
            else { return "C"; }
        }
    )");
    EXPECT_EQ(interp.call("grade", {Value{95}}).as_str(), "A");
    EXPECT_EQ(interp.call("grade", {Value{85}}).as_str(), "B");
    EXPECT_EQ(interp.call("grade", {Value{10}}).as_str(), "C");
}

TEST(Interp, WhileWithBreakContinue) {
    auto interp = make_interp(R"(
        fun f() {
            let sum = 0;
            let i = 0;
            while (true) {
                i = i + 1;
                if (i > 10) { break; }
                if (i % 2 == 0) { continue; }
                sum = sum + i;
            }
            return sum;  // 1+3+5+7+9
        }
    )");
    EXPECT_EQ(interp.call("f", {}).as_int(), 25);
}

TEST(Interp, ForInListAndDict) {
    auto interp = make_interp(R"(
        fun sum_list(l) {
            let s = 0;
            for (x in l) { s = s + x; }
            return s;
        }
        fun join_keys(d) {
            let s = "";
            for (k in d) { s = s + k; }
            return s;
        }
    )");
    EXPECT_EQ(interp.call("sum_list", {Value{List{Value{1}, Value{2}, Value{3}}}}).as_int(),
              6);
    EXPECT_EQ(interp.call("join_keys", {Value{Dict{{"b", Value{1}}, {"a", Value{2}}}}})
                  .as_str(),
              "ab");  // sorted iteration
}

TEST(Interp, FunctionsAndRecursion) {
    auto interp = make_interp(R"(
        fun fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
    )");
    EXPECT_EQ(interp.call("fib", {Value{10}}).as_int(), 55);
}

TEST(Interp, FunctionArityChecked) {
    auto interp = make_interp("fun f(a, b) { return a; }");
    EXPECT_THROW(interp.call("f", {Value{1}}), ScriptError);
}

TEST(Interp, UnknownFunctionThrows) {
    auto interp = make_interp("");
    EXPECT_THROW(interp.call("missing", {}), ScriptError);
}

TEST(Interp, GlobalsPersistAcrossCalls) {
    auto interp = make_interp(R"(
        let counter = 0;
        fun bump() { counter = counter + 1; return counter; }
    )");
    EXPECT_EQ(interp.call("bump", {}).as_int(), 1);
    EXPECT_EQ(interp.call("bump", {}).as_int(), 2);
    ASSERT_NE(interp.global("counter"), nullptr);
    EXPECT_EQ(interp.global("counter")->as_int(), 2);
}

TEST(Interp, LocalsDoNotLeakBetweenFunctions) {
    auto interp = make_interp(R"(
        fun set_local() { let x = 5; return x; }
        fun read_x() { return x; }
    )");
    interp.call("set_local", {});
    EXPECT_THROW(interp.call("read_x", {}), ScriptError);
}

TEST(Interp, BlockScoping) {
    auto interp = make_interp(R"(
        fun f() {
            let x = 1;
            { let x = 2; }
            return x;
        }
    )");
    EXPECT_EQ(interp.call("f", {}).as_int(), 1);
}

TEST(Interp, AssignToUndeclaredThrows) {
    auto interp = make_interp("fun f() { y = 1; }");
    EXPECT_THROW(interp.call("f", {}), ScriptError);
}

TEST(Interp, IndexingAndAppendIdiom) {
    auto interp = make_interp(R"(
        fun f() {
            let l = [10, 20];
            l[0] = 11;
            l[len(l)] = 30;   // append idiom
            return l;
        }
    )");
    Value result = interp.call("f", {});
    EXPECT_EQ(result, (Value{List{Value{11}, Value{20}, Value{30}}}));
}

TEST(Interp, IndexOutOfRangeThrows) {
    EXPECT_THROW(eval("[1, 2][5]"), ScriptError);
    EXPECT_THROW(eval("[1, 2][-1]"), ScriptError);
}

TEST(Interp, DictLiteralsMembersAndAssignment) {
    auto interp = make_interp(R"(
        fun f() {
            let d = {"a": 1, "nested": {"x": 2}};
            d["b"] = 5;
            d.c = 6;
            d["nested"]["x"] = 3;
            return d.a + d["b"] + d.c + d.nested.x;
        }
    )");
    EXPECT_EQ(interp.call("f", {}).as_int(), 15);
}

TEST(Interp, MissingDictKeyReadsNull) {
    EXPECT_TRUE(eval("{\"a\": 1}[\"zzz\"]").is_null());
    EXPECT_TRUE(eval("{\"a\": 1}.zzz").is_null());
}

TEST(Interp, ThrowCarriesMessage) {
    auto interp = make_interp("fun f() { throw \"custom failure\"; }");
    try {
        interp.call("f", {});
        FAIL() << "expected ScriptError";
    } catch (const ScriptError& e) {
        EXPECT_NE(std::string(e.what()).find("custom failure"), std::string::npos);
    }
}

TEST(Interp, UserFunctionShadowsBuiltin) {
    auto interp = make_interp("fun len(x) { return 999; }\nfun f() { return len([1]); }");
    EXPECT_EQ(interp.call("f", {}).as_int(), 999);
}

// ------------------------------------------------------------ budgets ----

TEST(Sandbox, StepBudgetStopsInfiniteLoop) {
    Sandbox sb;
    sb.step_budget = 10'000;
    auto interp = make_interp("fun spin() { while (true) { } }", sb);
    EXPECT_THROW(interp.call("spin", {}), ResourceExhausted);
}

TEST(Sandbox, RecursionLimitEnforced) {
    Sandbox sb;
    sb.max_recursion = 16;
    auto interp = make_interp("fun down(n) { return down(n + 1); }", sb);
    EXPECT_THROW(interp.call("down", {Value{0}}), ResourceExhausted);
}

TEST(Sandbox, BudgetResetsPerCall) {
    Sandbox sb;
    sb.step_budget = 5'000;
    auto interp = make_interp(R"(
        fun work() {
            let i = 0;
            while (i < 100) { i = i + 1; }
            return i;
        }
    )", sb);
    // Each call is within budget even though the total across calls is not.
    for (int i = 0; i < 20; ++i) {
        EXPECT_EQ(interp.call("work", {}).as_int(), 100);
    }
}

TEST(Sandbox, CapabilityGatesBuiltin) {
    auto builtins = std::make_shared<BuiltinRegistry>(BuiltinRegistry::with_core());
    int fired = 0;
    builtins->add("net.post", "net", [&](List&) -> Value {
        ++fired;
        return Value{};
    });

    Sandbox denied;  // no capabilities
    auto interp1 = make_interp("fun f() { net.post(); }", denied, builtins);
    EXPECT_THROW(interp1.call("f", {}), AccessDenied);
    EXPECT_EQ(fired, 0);

    Sandbox granted;
    granted.capabilities.insert("net");
    auto interp2 = make_interp("fun f() { net.post(); }", granted, builtins);
    interp2.call("f", {});
    EXPECT_EQ(fired, 1);
}

// ------------------------------------------------------ core builtins ----

TEST(Builtins, LenStrIntTypeof) {
    EXPECT_EQ(eval("len(\"abc\")").as_int(), 3);
    EXPECT_EQ(eval("len([1, 2])").as_int(), 2);
    EXPECT_EQ(eval("len({\"a\": 1})").as_int(), 1);
    EXPECT_EQ(eval("str(12)").as_str(), "12");
    EXPECT_EQ(eval("str(\"x\")").as_str(), "x");  // unquoted
    EXPECT_EQ(eval("int(\"42\")").as_int(), 42);
    EXPECT_EQ(eval("int(3.9)").as_int(), 3);
    EXPECT_EQ(eval("int(true)").as_int(), 1);
    EXPECT_DOUBLE_EQ(eval("real(\"2.5\")").as_real(), 2.5);
    EXPECT_EQ(eval("typeof(1)").as_str(), "int");
    EXPECT_EQ(eval("typeof(null)").as_str(), "null");
}

TEST(Builtins, ListHelpers) {
    EXPECT_EQ(eval("push([1], 2)"), (Value{List{Value{1}, Value{2}}}));
    EXPECT_EQ(eval("concat([1], [2, 3])"), (Value{List{Value{1}, Value{2}, Value{3}}}));
    EXPECT_EQ(eval("slice([1, 2, 3, 4], 1, 3)"), (Value{List{Value{2}, Value{3}}}));
    EXPECT_TRUE(eval("contains([1, 2], 2)").as_bool());
    EXPECT_FALSE(eval("contains([1, 2], 9)").as_bool());
    EXPECT_EQ(eval("range(3)"), (Value{List{Value{0}, Value{1}, Value{2}}}));
    EXPECT_EQ(eval("range(2, 4)"), (Value{List{Value{2}, Value{3}}}));
}

TEST(Builtins, DictHelpers) {
    EXPECT_EQ(eval("keys({\"b\": 1, \"a\": 2})"), (Value{List{Value{"a"}, Value{"b"}}}));
    EXPECT_TRUE(eval("contains({\"k\": 1}, \"k\")").as_bool());
    EXPECT_FALSE(eval("contains(remove({\"k\": 1}, \"k\"), \"k\")").as_bool());
}

TEST(Builtins, MathHelpers) {
    EXPECT_EQ(eval("abs(-5)").as_int(), 5);
    EXPECT_DOUBLE_EQ(eval("abs(-2.5)").as_real(), 2.5);
    EXPECT_EQ(eval("min(3, 1, 2)").as_int(), 1);
    EXPECT_EQ(eval("max(3, 1, 2)").as_int(), 3);
    EXPECT_EQ(eval("floor(2.7)").as_int(), 2);
    EXPECT_DOUBLE_EQ(eval("sqrt(9)").as_real(), 3.0);
}

TEST(Builtins, StringHelpers) {
    EXPECT_EQ(eval("substr(\"hello\", 1, 3)").as_str(), "ell");
    EXPECT_EQ(eval("find(\"hello\", \"ll\")").as_int(), 2);
    EXPECT_EQ(eval("find(\"hello\", \"zz\")").as_int(), -1);
    EXPECT_EQ(eval("split(\"a,b,c\", \",\")"),
              (Value{List{Value{"a"}, Value{"b"}, Value{"c"}}}));
    EXPECT_EQ(eval("join([1, \"b\"], \"-\")").as_str(), "1-b");
}

TEST(Builtins, BadArgsThrow) {
    EXPECT_THROW(eval("len(1)"), ScriptError);
    EXPECT_THROW(eval("push(1, 2)"), ScriptError);
    EXPECT_THROW(eval("substr(\"abc\", 9, 1)"), ScriptError);
    EXPECT_THROW(eval("int(\"not a number\")"), ScriptError);
    EXPECT_THROW(eval("split(\"a\", \"\")"), ScriptError);
}

}  // namespace
}  // namespace pmp::script
