// Tests for script-backed aspects: the PROSE <-> AdviceScript bridge with
// its ctx.* join-point builtins, config, sandboxing and shutdown.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/script_aspect.h"
#include "core/weaver.h"

namespace pmp::prose {
namespace {

using rt::Dict;
using rt::List;
using rt::ServiceObject;
using rt::TypeKind;
using rt::Value;
using script::BuiltinRegistry;
using script::Sandbox;

class ScriptAspectTest : public ::testing::Test {
protected:
    ScriptAspectTest() : runtime_("node"), weaver_(runtime_) {
        runtime_.register_type(
            rt::TypeInfo::Builder("Motor")
                .field("position", TypeKind::kReal, Value{0.0})
                .method("rotate", TypeKind::kInt, {{"degrees", TypeKind::kReal}},
                        [](ServiceObject& self, List& args) -> Value {
                            self.set("position", Value{self.peek("position").as_real() +
                                                        args[0].as_real()});
                            return Value{std::int64_t{5}};
                        })
                .build());
        motor_ = runtime_.create("Motor", "motor:x");
        host_ = BuiltinRegistry::with_core();
    }

    /// Compile + weave a script extension; returns the aspect id.
    AspectId weave(const std::string& source, std::vector<ScriptBinding> bindings,
                   Sandbox sandbox = {}, Value config = Value{},
                   std::shared_ptr<ScriptAspect>* out = nullptr) {
        auto sa = std::make_shared<ScriptAspect>("test-ext", source, std::move(bindings),
                                                 std::move(sandbox), host_, std::move(config));
        if (out) *out = sa;
        keep_alive_.push_back(sa);
        return weaver_.weave(sa->aspect());
    }

    rt::Runtime runtime_;
    Weaver weaver_;
    std::shared_ptr<ServiceObject> motor_;
    BuiltinRegistry host_;
    std::vector<std::shared_ptr<ScriptAspect>> keep_alive_;
};

TEST_F(ScriptAspectTest, BeforeAdviceSeesJoinPoint) {
    weave(R"(
        let seen = [];
        fun onEntry() {
            seen[len(seen)] = ctx.type() + "." + ctx.method() + "@" + ctx.target()
                + ":" + str(ctx.arg(0));
        }
    )",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}}, {}, Value{},
          nullptr);

    std::shared_ptr<ScriptAspect> sa = keep_alive_.back();
    motor_->call("rotate", {Value{30.0}});
    const Value* seen = sa->engine().global("seen");
    ASSERT_NE(seen, nullptr);
    ASSERT_EQ(seen->as_list().size(), 1u);
    EXPECT_EQ(seen->as_list()[0].as_str(), "Motor.rotate@motor:x:30");
}

TEST_F(ScriptAspectTest, BeforeAdviceRewritesArgs) {
    // The paper's encryption shape: transform an argument before the body.
    weave("fun onEntry() { ctx.set_arg(0, ctx.arg(0) * 2); }",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}});
    motor_->call("rotate", {Value{10.0}});
    EXPECT_DOUBLE_EQ(motor_->peek("position").as_real(), 20.0);
}

TEST_F(ScriptAspectTest, AfterAdviceRewritesResult) {
    weave("fun onExit() { ctx.set_result(ctx.result() + 100); }",
          {{AdviceKind::kAfter, "call(* Motor.rotate(..))", "onExit"}});
    EXPECT_EQ(motor_->call("rotate", {Value{1.0}}).as_int(), 105);
}

TEST_F(ScriptAspectTest, DenyVetoesCall) {
    weave(R"(
        fun onEntry() {
            if (ctx.arg(0) > 90) { ctx.deny("rotation beyond limit"); }
        }
    )",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}});
    EXPECT_NO_THROW(motor_->call("rotate", {Value{45.0}}));
    try {
        motor_->call("rotate", {Value{120.0}});
        FAIL() << "expected AccessDenied";
    } catch (const AccessDenied& e) {
        EXPECT_NE(std::string(e.what()).find("rotation beyond limit"), std::string::npos);
    }
    EXPECT_DOUBLE_EQ(motor_->peek("position").as_real(), 45.0);
}

TEST_F(ScriptAspectTest, AroundAdviceControlsProceed) {
    weave(R"(
        fun onCall() {
            if (ctx.arg(0) < 0) { return -1; }   // skip the body entirely
            let r = ctx.proceed();
            return r * 3;
        }
    )",
          {{AdviceKind::kAround, "call(* Motor.rotate(..))", "onCall"}});
    EXPECT_EQ(motor_->call("rotate", {Value{10.0}}).as_int(), 15);
    EXPECT_EQ(motor_->call("rotate", {Value{-5.0}}).as_int(), -1);
    EXPECT_DOUBLE_EQ(motor_->peek("position").as_real(), 10.0);  // skipped call did nothing
}

TEST_F(ScriptAspectTest, FieldSetAdviceObservesStateChanges) {
    weave(R"(
        let changes = [];
        fun onSet() {
            changes[len(changes)] = [ctx.field(), ctx.oldval(), ctx.newval()];
        }
    )",
          {{AdviceKind::kFieldSet, "fieldset(Motor.position)", "onSet"}});
    std::shared_ptr<ScriptAspect> sa = keep_alive_.back();
    motor_->call("rotate", {Value{30.0}});
    const Value* changes = sa->engine().global("changes");
    ASSERT_EQ(changes->as_list().size(), 1u);
    const List& change = changes->as_list()[0].as_list();
    EXPECT_EQ(change[0].as_str(), "position");
    EXPECT_DOUBLE_EQ(change[1].as_real(), 0.0);
    EXPECT_DOUBLE_EQ(change[2].as_real(), 30.0);
}

TEST_F(ScriptAspectTest, FieldSetAdviceAdjustsWrite) {
    weave("fun onSet() { ctx.set_newval(ctx.newval() + 0.5); }",
          {{AdviceKind::kFieldSet, "fieldset(Motor.position)", "onSet"}});
    motor_->call("rotate", {Value{1.0}});
    EXPECT_DOUBLE_EQ(motor_->peek("position").as_real(), 1.5);
}

TEST_F(ScriptAspectTest, AfterThrowingSeesError) {
    runtime_.register_type(
        rt::TypeInfo::Builder("Flaky")
            .method("boom", TypeKind::kVoid, {},
                    [](ServiceObject&, List&) -> Value { throw Error("kaput"); })
            .build());
    auto flaky = runtime_.create("Flaky", "flaky");
    weave("let msg = \"\"; fun onError() { msg = ctx.error(); }",
          {{AdviceKind::kAfterThrowing, "call(* Flaky.*(..))", "onError"}});
    std::shared_ptr<ScriptAspect> sa = keep_alive_.back();
    EXPECT_THROW(flaky->call("boom", {}), Error);
    EXPECT_EQ(sa->engine().global("msg")->as_str(), "kaput");
}

TEST_F(ScriptAspectTest, ConfigIsVisibleToScript) {
    Value config{Dict{{"limit", Value{90}}}};
    weave(R"(
        fun onEntry() {
            if (ctx.arg(0) > config.limit) { ctx.deny("beyond configured limit"); }
        }
    )",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}}, {},
          std::move(config));
    EXPECT_NO_THROW(motor_->call("rotate", {Value{90.0}}));
    EXPECT_THROW(motor_->call("rotate", {Value{91.0}}), AccessDenied);
}

TEST_F(ScriptAspectTest, TargetFieldAccessNeedsCapability) {
    // Without the "target" capability, ctx.get_field is denied.
    weave("fun onEntry() { ctx.get_field(\"position\"); }",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}});
    EXPECT_THROW(motor_->call("rotate", {Value{1.0}}), AccessDenied);
}

TEST_F(ScriptAspectTest, TargetFieldAccessWithCapability) {
    Sandbox sb;
    sb.capabilities.insert("target");
    weave(R"(
        let snapshot = -1.0;
        fun onEntry() { snapshot = ctx.get_field("position"); }
    )",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}}, sb);
    std::shared_ptr<ScriptAspect> sa = keep_alive_.back();
    motor_->poke("position", Value{7.25});
    motor_->call("rotate", {Value{1.0}});
    EXPECT_DOUBLE_EQ(sa->engine().global("snapshot")->as_real(), 7.25);
}

TEST_F(ScriptAspectTest, HostBuiltinAvailableUnderCapability) {
    std::vector<std::string> posts;
    host_.add("owner.post", "net", [&](List& args) -> Value {
        posts.push_back(args[0].as_str());
        return Value{};
    });
    Sandbox sb;
    sb.capabilities.insert("net");
    weave("fun onEntry() { owner.post(\"moved \" + str(ctx.arg(0))); }",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}}, sb);
    motor_->call("rotate", {Value{12.0}});
    ASSERT_EQ(posts.size(), 1u);
    EXPECT_EQ(posts[0], "moved 12");
}

TEST_F(ScriptAspectTest, MissingBoundFunctionIsCompileError) {
    EXPECT_THROW(
        ScriptAspect("bad", "fun other() { }",
                     {{AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry"}}, Sandbox{},
                     host_),
        ScriptError);
}

TEST_F(ScriptAspectTest, SyntaxErrorIsCompileError) {
    EXPECT_THROW(ScriptAspect("bad", "fun onEntry() {", {}, Sandbox{}, host_), ParseError);
}

TEST_F(ScriptAspectTest, TopLevelRunsOnceAtCompile) {
    weave("let inits = 0; inits = inits + 1; fun onEntry() { }",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}});
    std::shared_ptr<ScriptAspect> sa = keep_alive_.back();
    motor_->call("rotate", {Value{1.0}});
    motor_->call("rotate", {Value{1.0}});
    EXPECT_EQ(sa->engine().global("inits")->as_int(), 1);
}

TEST_F(ScriptAspectTest, ShutdownRunsOnWithdrawWithReason) {
    AspectId id = weave(R"(
        let last_reason = "";
        fun onEntry() { }
        fun onShutdown(reason) { last_reason = reason; }
    )",
                        {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}});
    std::shared_ptr<ScriptAspect> sa = keep_alive_.back();
    weaver_.withdraw(id, WithdrawReason::kLeaseExpired);
    EXPECT_EQ(sa->engine().global("last_reason")->as_str(), "lease-expired");
}

TEST_F(ScriptAspectTest, FaultyShutdownDoesNotBlockWithdrawal) {
    AspectId id = weave(R"(
        fun onEntry() { }
        fun onShutdown(reason) { throw "shutdown tantrum"; }
    )",
                        {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}});
    EXPECT_TRUE(weaver_.withdraw(id));
    EXPECT_FALSE(motor_->type().method("rotate")->woven());
}

TEST_F(ScriptAspectTest, ScriptErrorInAdvicePropagatesToCaller) {
    weave("fun onEntry() { throw \"advice bug\"; }",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}});
    EXPECT_THROW(motor_->call("rotate", {Value{1.0}}), ScriptError);
}

TEST_F(ScriptAspectTest, RunawayAdviceHitsStepBudget) {
    Sandbox sb;
    sb.step_budget = 10'000;
    weave("fun onEntry() { while (true) { } }",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}}, sb);
    EXPECT_THROW(motor_->call("rotate", {Value{1.0}}), ResourceExhausted);
}

TEST_F(ScriptAspectTest, StatePersistsAcrossInterceptions) {
    weave(R"(
        let count = 0;
        fun onEntry() { count = count + 1; }
    )",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}});
    std::shared_ptr<ScriptAspect> sa = keep_alive_.back();
    for (int i = 0; i < 5; ++i) motor_->call("rotate", {Value{1.0}});
    EXPECT_EQ(sa->engine().global("count")->as_int(), 5);
}

TEST_F(ScriptAspectTest, ProceedOutsideAroundFails) {
    weave("fun onEntry() { ctx.proceed(); }",
          {{AdviceKind::kBefore, "call(* Motor.rotate(..))", "onEntry"}});
    EXPECT_THROW(motor_->call("rotate", {Value{1.0}}), ScriptError);
}

}  // namespace
}  // namespace pmp::prose
