// Tests for the tuple-space substrate and tuple-space-based extension
// distribution (paper §4.6 future work).
#include <gtest/gtest.h>

#include "midas/node.h"
#include "robot/devices.h"
#include "tspace/remote.h"

namespace pmp::tspace {
namespace {

using rt::List;
using rt::TypeKind;
using rt::Value;

List t(std::initializer_list<Value> fields) { return List(fields); }

// ------------------------------------------------------------- engine ----

class TupleSpaceTest : public ::testing::Test {
protected:
    sim::Simulator sim_;
    TupleSpace space_{sim_};
};

TEST_F(TupleSpaceTest, OutRdpInp) {
    space_.out(t({Value{"job"}, Value{1}}));
    space_.out(t({Value{"job"}, Value{2}}));
    EXPECT_EQ(space_.size(), 2u);

    Template any_job{Field::eq(Value{"job"}), Field::any()};
    auto read = space_.rdp(any_job);
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ((*read)[1].as_int(), 1);  // oldest first
    EXPECT_EQ(space_.size(), 2u);       // rdp is non-destructive

    auto taken = space_.inp(any_job);
    ASSERT_TRUE(taken.has_value());
    EXPECT_EQ((*taken)[1].as_int(), 1);
    EXPECT_EQ(space_.size(), 1u);

    auto second = space_.inp(any_job);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ((*second)[1].as_int(), 2);
    EXPECT_FALSE(space_.inp(any_job).has_value());
}

TEST_F(TupleSpaceTest, TemplatesMatchByArityValueAndType) {
    space_.out(t({Value{"a"}, Value{5}}));

    EXPECT_TRUE(space_.rdp(Template{Field::any(), Field::any()}).has_value());
    EXPECT_FALSE(space_.rdp(Template{Field::any()}).has_value());  // arity
    EXPECT_TRUE(space_.rdp(Template{Field::eq(Value{"a"}), Field::of_type(TypeKind::kInt)})
                    .has_value());
    EXPECT_FALSE(
        space_.rdp(Template{Field::eq(Value{"b"}), Field::any()}).has_value());
    EXPECT_FALSE(
        space_.rdp(Template{Field::any(), Field::of_type(TypeKind::kStr)}).has_value());
}

TEST_F(TupleSpaceTest, RdaReturnsAllMatches) {
    for (int i = 0; i < 5; ++i) space_.out(t({Value{"x"}, Value{i}}));
    space_.out(t({Value{"y"}, Value{99}}));
    auto all = space_.rda(Template{Field::eq(Value{"x"}), Field::any()});
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[4][1].as_int(), 4);
}

TEST_F(TupleSpaceTest, TtlEvaporatesTuples) {
    space_.out(t({Value{"ephemeral"}}), seconds(1));
    space_.out(t({Value{"durable"}}));
    sim_.run_until(SimTime::zero() + seconds(2));
    EXPECT_FALSE(space_.rdp(Template{Field::eq(Value{"ephemeral"})}).has_value());
    EXPECT_TRUE(space_.rdp(Template{Field::eq(Value{"durable"})}).has_value());
}

TEST_F(TupleSpaceTest, RemoveRetractsEarly) {
    TupleId id = space_.out(t({Value{"x"}}));
    EXPECT_TRUE(space_.remove(id));
    EXPECT_FALSE(space_.remove(id));
    EXPECT_EQ(space_.size(), 0u);
}

TEST_F(TupleSpaceTest, BlockingRdFiresOnArrival) {
    std::vector<std::int64_t> got;
    space_.rd(Template{Field::eq(Value{"k"}), Field::any()},
              [&](const List& tuple) { got.push_back(tuple[1].as_int()); });
    EXPECT_TRUE(got.empty());
    space_.out(t({Value{"k"}, Value{7}}));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 7);
    // One-shot: a second out does not re-fire.
    space_.out(t({Value{"k"}, Value{8}}));
    EXPECT_EQ(got.size(), 1u);
    // rd leaves the tuples in the space.
    EXPECT_EQ(space_.size(), 2u);
}

TEST_F(TupleSpaceTest, BlockingRdFiresImmediatelyOnExistingMatch) {
    space_.out(t({Value{"k"}, Value{1}}));
    int fired = 0;
    TupleId id = space_.rd(Template{Field::eq(Value{"k"}), Field::any()},
                           [&](const List&) { ++fired; });
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(id, 0u);  // satisfied synchronously, nothing registered
}

TEST_F(TupleSpaceTest, BlockingInConsumesArrivingTuple) {
    int fired = 0;
    space_.in(Template{Field::eq(Value{"k"})}, [&](List) { ++fired; });
    space_.out(t({Value{"k"}}));
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(space_.size(), 0u);  // consumed before storage
}

TEST_F(TupleSpaceTest, OnlyOneInWaiterConsumes) {
    int a = 0, b = 0;
    space_.in(Template{Field::any()}, [&](List) { ++a; });
    space_.in(Template{Field::any()}, [&](List) { ++b; });
    space_.out(t({Value{1}}));
    EXPECT_EQ(a + b, 1);
    space_.out(t({Value{2}}));
    EXPECT_EQ(a + b, 2);
}

TEST_F(TupleSpaceTest, NotifyIsPersistent) {
    int fired = 0;
    TupleId sub = space_.notify(Template{Field::eq(Value{"k"}), Field::any()},
                                [&](const List&) { ++fired; });
    space_.out(t({Value{"k"}, Value{1}}));
    space_.out(t({Value{"k"}, Value{2}}));
    space_.out(t({Value{"other"}, Value{3}}));
    EXPECT_EQ(fired, 2);
    space_.cancel_wait(sub);
    space_.out(t({Value{"k"}, Value{3}}));
    EXPECT_EQ(fired, 2);
}

TEST_F(TupleSpaceTest, CancelWaitStopsRd) {
    int fired = 0;
    TupleId id = space_.rd(Template{Field::any()}, [&](const List&) { ++fired; });
    space_.cancel_wait(id);
    space_.out(t({Value{1}}));
    EXPECT_EQ(fired, 0);
}

TEST_F(TupleSpaceTest, TemplateWireRoundTrip) {
    Template tmpl{Field::eq(Value{"midas.ext"}), Field::of_type(TypeKind::kStr),
                  Field::any()};
    Template back = Template::from_value(tmpl.to_value());
    List match = t({Value{"midas.ext"}, Value{"name"}, Value{42}});
    List miss = t({Value{"midas.ext"}, Value{7}, Value{42}});
    EXPECT_TRUE(back.matches(match));
    EXPECT_FALSE(back.matches(miss));
}

// ------------------------------------------- remote host & distribution ----

class TspaceDistributionTest : public ::testing::Test {
protected:
    TspaceDistributionTest() : net_(sim_, net::NetworkConfig{}, 31) {
        // The authority node: registrar + tuple space, but no push base.
        midas::BaseConfig bc;
        bc.issuer = "hall";
        hall_ = std::make_unique<midas::BaseStation>(net_, "hall", net::Position{0, 0},
                                                     100.0, bc);
        hall_->keys().add_key("hall", to_bytes("k"));
        space_ = std::make_unique<TupleSpace>(sim_);
        host_ = std::make_unique<TupleSpaceHost>(hall_->rpc(), hall_->registrar(), *space_);
        publisher_ = std::make_unique<TupleSpacePublisher>(sim_, *space_, hall_->keys(),
                                                           "hall", seconds(3));

        robot_ = std::make_unique<midas::MobileNode>(net_, "robot", net::Position{10, 0},
                                                     100.0);
        robot_->trust().trust("hall", to_bytes("k"));
        robot_->receiver().allow_capabilities("hall", {"net"});
        robot::make_motor(robot_->runtime(), "motor:x");
        puller_ = std::make_unique<TupleSpacePuller>(robot_->discovery(),
                                                     robot_->receiver(), seconds(1));
    }

    midas::ExtensionPackage noop_pkg(const std::string& name) {
        midas::ExtensionPackage pkg;
        pkg.name = name;
        pkg.script = "fun onEntry() { }";
        pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
        return pkg;
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(30)) {
        SimTime deadline = sim_.now() + timeout;
        while (sim_.now() < deadline) {
            if (pred()) return true;
            sim_.run_until(sim_.now() + milliseconds(100));
        }
        return pred();
    }

    sim::Simulator sim_;
    net::Network net_;
    std::unique_ptr<midas::BaseStation> hall_;
    std::unique_ptr<TupleSpace> space_;
    std::unique_ptr<TupleSpaceHost> host_;
    std::unique_ptr<TupleSpacePublisher> publisher_;
    std::unique_ptr<midas::MobileNode> robot_;
    std::unique_ptr<TupleSpacePuller> puller_;
};

TEST_F(TspaceDistributionTest, DeviceAdaptsFromTheSpace) {
    publisher_->publish(noop_pkg("hall/policy"));
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    EXPECT_EQ(robot_->receiver().installed()[0].name, "hall/policy");
    EXPECT_GE(puller_->stats().installs, 1u);
}

TEST_F(TspaceDistributionTest, PullKeepsExtensionAliveWhileTuplePresent) {
    publisher_->publish(noop_pkg("hall/policy"));
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    sim_.run_for(seconds(15));
    EXPECT_EQ(robot_->receiver().installed_count(), 1u);
    EXPECT_EQ(robot_->receiver().stats().expirations, 0u);
}

TEST_F(TspaceDistributionTest, RetractEvaporatesPolicy) {
    publisher_->publish(noop_pkg("hall/policy"));
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    publisher_->retract("hall/policy");
    // No tuple, no refresh: the lease lapses and the extension withdraws.
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 0; }));
    EXPECT_GE(robot_->receiver().stats().expirations, 1u);
}

TEST_F(TspaceDistributionTest, LeavingRangeEvaporatesPolicy) {
    publisher_->publish(noop_pkg("hall/policy"));
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    robot_->move_to({1000, 0});
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 0; }));
}

TEST_F(TspaceDistributionTest, RepublishingNewVersionReplaces) {
    publisher_->publish(noop_pkg("hall/policy"));
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    std::uint32_t v1 = robot_->receiver().installed()[0].version;

    midas::ExtensionPackage v2 = noop_pkg("hall/policy");
    v2.script = "fun onEntry() { }\nfun extra() { return 1; }";
    publisher_->publish(v2);
    ASSERT_TRUE(run_until([&] { return robot_->receiver().stats().replacements >= 1; }));
    EXPECT_GT(robot_->receiver().installed()[0].version, v1);
    // The superseded tuple was retracted: exactly one policy tuple remains.
    EXPECT_EQ(space_->rda(Template{Field::eq(Value{"midas.ext"}), Field::any(),
                                   Field::any(), Field::any()})
                  .size(),
              1u);
}

TEST_F(TspaceDistributionTest, NotifyModeAdaptsOnPublication) {
    // Replace the polling puller with an event-driven one.
    puller_ = std::make_unique<TupleSpacePuller>(robot_->discovery(), robot_->receiver(),
                                                 seconds(1), TupleSpacePuller::Mode::kNotify);
    sim_.run_for(seconds(3));  // discovery + subscription
    ASSERT_GE(host_->subscription_count(), 1u);

    SimTime published_at = sim_.now();
    publisher_->publish(noop_pkg("hall/policy"));
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; },
                          seconds(5)));
    // Event-driven: well under one poll period after publication.
    EXPECT_LT(sim_.now() - published_at, Duration{milliseconds(500)});
    EXPECT_GE(puller_->stats().notifications, 1u);
}

TEST_F(TspaceDistributionTest, NotifyModeCatchesUpOnExistingTuples) {
    publisher_->publish(noop_pkg("hall/policy"));
    sim_.run_for(seconds(1));
    puller_ = std::make_unique<TupleSpacePuller>(robot_->discovery(), robot_->receiver(),
                                                 seconds(1), TupleSpacePuller::Mode::kNotify);
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
}

TEST_F(TspaceDistributionTest, NotifyModeSustainedByRepublish) {
    puller_ = std::make_unique<TupleSpacePuller>(robot_->discovery(), robot_->receiver(),
                                                 seconds(1), TupleSpacePuller::Mode::kNotify);
    publisher_->publish(noop_pkg("hall/policy"));
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    sim_.run_for(seconds(15));
    EXPECT_EQ(robot_->receiver().installed_count(), 1u);
    EXPECT_EQ(robot_->receiver().stats().expirations, 0u);
}

TEST_F(TspaceDistributionTest, SubscriptionExpiresWithoutRenewal) {
    sim_.run_for(seconds(1));
    // Subscribe directly with a short lease and never renew.
    Template tmpl{Field::eq(Value{"x"})};
    robot_->rpc().export_object("adaptation");  // any listener-ish target
    Value reply = robot_->rpc().call_sync(
        hall_->id(), "tspace", "notify",
        {tmpl.to_value(), Value{"adaptation"}, Value{std::int64_t{1000}}});
    EXPECT_GT(reply.as_dict().at("watch").as_int(), 0);
    EXPECT_EQ(host_->subscription_count(), 1u);
    sim_.run_for(seconds(3));
    EXPECT_EQ(host_->subscription_count(), 0u);
}

TEST_F(TspaceDistributionTest, RemoteOutAndInpThroughService) {
    sim_.run_for(seconds(1));
    // A device writes a tuple into the hall's space and takes it back.
    Value out_id = robot_->rpc().call_sync(
        hall_->id(), "tspace", "out",
        {Value{List{Value{"job"}, Value{123}}}, Value{std::int64_t{0}}});
    EXPECT_GT(out_id.as_int(), 0);

    Template job{Field::eq(Value{"job"}), Field::any()};
    Value hit = robot_->rpc().call_sync(hall_->id(), "tspace", "inp", {job.to_value()});
    ASSERT_TRUE(hit.as_dict().at("found").as_bool());
    EXPECT_EQ(hit.as_dict().at("tuple").as_list()[1].as_int(), 123);

    Value miss = robot_->rpc().call_sync(hall_->id(), "tspace", "inp", {job.to_value()});
    EXPECT_FALSE(miss.as_dict().at("found").as_bool());
}

}  // namespace
}  // namespace pmp::tspace
