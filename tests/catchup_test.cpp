// Streaming catch-up (midas/catchup.h, docs/recovery.md, docs/storage.md):
// a restarted or newly entering receiver pulls the base's durable policy
// image in bounded, CRC-verified chunks with a per-chunk ack/resume cursor.
// The promises under test:
//
//   * the base serves a manifest + chunk protocol whose assembled bytes
//     verify against the advertised CRC and decode into the policy image;
//   * a partition mid-stream resumes from the last acked chunk — never
//     from chunk 0 — and only a chain change restarts the stream;
//   * a CellRelay proxies the protocol for its cell, so a whole cell
//     restarting together costs the backhaul ~one image fetch, not one
//     per node;
//   * the correlated-crash storm: a supervised fleet where the hub and
//     several receivers power-cycle mid-run converges with every restarted
//     node recovered via chunked catch-up, zero healthy-node expirations,
//     and bit-identical per-seed replay.
#include <gtest/gtest.h>

#include <cstdlib>

#include "db/journal.h"
#include "midas/node.h"
#include "midas/supervisor.h"
#include "net/fault.h"

namespace pmp::midas {
namespace {

using rt::Dict;
using rt::Value;

ExtensionPackage policy_pkg(const std::string& name,
                            const std::string& body = "fun onEntry() { }") {
    ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = body;
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

std::uint64_t chaos_seed_base() {
    // CI sweeps disjoint seed ranges by exporting PMP_CHAOS_SEED_BASE.
    if (const char* env = std::getenv("PMP_CHAOS_SEED_BASE")) {
        return std::strtoull(env, nullptr, 10);
    }
    return 1;
}

// ------------------------------------------------------- serving side ----

TEST(CatchupService, ManifestAndChunksAssembleIntoAVerifiedImage) {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 11);
    BaseConfig bc;
    bc.issuer = "hub";
    bc.catchup_chunk_bytes = 48;  // force a multi-chunk image
    BaseStation hub(net, "hub", net::Position{0, 0}, 120.0, bc);
    hub.keys().add_key("hub", to_bytes("hk"));
    for (int i = 0; i < 3; ++i) {
        hub.base().add_extension(policy_pkg("hub/p" + std::to_string(i)));
    }
    NodeStack reader(net, "reader", net::Position{10, 0}, 120.0);
    sim.run_for(seconds(1));

    auto call = [&](const std::string& method, rt::List args) {
        Value out;
        bool done = false;
        reader.rpc().call_async(hub.id(), "midas.catchup", method, std::move(args),
                                [&](Value r, std::exception_ptr e) {
                                    EXPECT_FALSE(e);
                                    out = std::move(r);
                                    done = true;
                                });
        SimTime deadline = sim.now() + seconds(5);
        while (!done && sim.now() < deadline) sim.run_until(sim.now() + milliseconds(5));
        EXPECT_TRUE(done);
        return out;
    };

    Value mv = call("manifest", {});
    const Dict& m = mv.as_dict();
    std::int64_t chain = m.at("chain").as_int();
    std::int64_t nchunks = m.at("chunks").as_int();
    std::size_t total = static_cast<std::size_t>(m.at("total").as_int());
    EXPECT_EQ(static_cast<std::uint64_t>(chain), hub.base().catchup_chain());
    EXPECT_EQ(m.at("epoch").as_int(), 1);
    EXPECT_EQ(static_cast<std::uint64_t>(m.at("base").as_int()), hub.id().value);
    EXPECT_GT(m.at("lease_ms").as_int(), 0);
    ASSERT_GE(nchunks, 3);  // 3 sealed policies cannot fit one 48-byte chunk
    EXPECT_EQ(m.at("chunk_bytes").as_int(), 48);

    Bytes image;
    for (std::int64_t i = 0; i < nchunks; ++i) {
        Value cv = call("chunk", {Value{chain}, Value{i}});
        const Bytes& data = cv.as_dict().at("data").as_blob();
        EXPECT_LE(data.size(), 48u);
        image.insert(image.end(), data.begin(), data.end());
    }
    ASSERT_EQ(image.size(), total);
    EXPECT_EQ(db::crc32(std::span<const std::uint8_t>(image)),
              static_cast<std::uint32_t>(m.at("crc").as_int()));

    Value decoded = Value::decode(std::span<const std::uint8_t>(image));
    const rt::List& policies = decoded.as_dict().at("policies").as_list();
    ASSERT_EQ(policies.size(), 3u);
    for (const Value& p : policies) {
        EXPECT_TRUE(p.as_dict().at("sealed").is_blob());
    }

    // A retired or unknown chain — and an out-of-range index — answer
    // `stale`, never garbage bytes.
    Value stale = call("chunk", {Value{chain + 1}, Value{std::int64_t{0}}});
    EXPECT_TRUE(stale.as_dict().at("stale").as_bool());
    Value range = call("chunk", {Value{chain}, Value{nchunks}});
    EXPECT_TRUE(range.as_dict().at("stale").as_bool());
    EXPECT_GE(hub.base().catchup_stats().stale, 2u);
    EXPECT_EQ(hub.base().catchup_stats().chunks,
              static_cast<std::uint64_t>(nchunks));

    // A policy change retires the chain: the old id goes stale and the new
    // manifest advertises a different one.
    hub.base().add_extension(policy_pkg("hub/p3"));
    Value after = call("chunk", {Value{chain}, Value{std::int64_t{0}}});
    EXPECT_TRUE(after.as_dict().at("stale").as_bool());
    Value m2 = call("manifest", {});
    EXPECT_NE(m2.as_dict().at("chain").as_int(), chain);
}

// -------------------------------------------------------- client side ----

TEST(CatchupClient, PartitionMidStreamResumesFromTheCursor) {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 21);
    BaseConfig bc;
    bc.issuer = "hub";
    bc.catchup_chunk_bytes = 48;
    bc.extension_lease = seconds(4);
    bc.max_keepalive_failures = 4;
    BaseStation hub(net, "hub", net::Position{0, 0}, 120.0, bc);
    hub.keys().add_key("hub", to_bytes("hk"));
    for (int i = 0; i < 4; ++i) {
        hub.base().add_extension(policy_pkg("hub/p" + std::to_string(i)));
    }
    MobileNode robot(net, "robot", net::Position{10, 0}, 120.0);
    robot.trust().trust("hub", to_bytes("hk"));
    CatchupConfig cc;
    cc.retry_backoff = milliseconds(100);
    robot.enable_catchup(cc);

    // Single-step until the stream is provably mid-flight, then cut the
    // provider off for longer than several fetch timeouts.
    SimTime deadline = sim.now() + seconds(10);
    while (robot.catchup()->stats().chunks < 3 && sim.now() < deadline) {
        if (!sim.step()) break;
    }
    ASSERT_GE(robot.catchup()->stats().chunks, 3u);
    ASSERT_TRUE(robot.catchup()->in_session());

    net::FaultPlan plan;
    plan.partitions.push_back(
        net::PartitionWindow{sim.now(), sim.now() + milliseconds(1200), {hub.id()}, {}});
    net.set_fault_plan(plan, 33);

    deadline = sim.now() + seconds(20);
    while (robot.catchup()->stats().completed == 0 && sim.now() < deadline) {
        sim.run_until(sim.now() + milliseconds(10));
    }
    const CatchupClient::Stats& s = robot.catchup()->stats();
    ASSERT_EQ(s.completed, 1u);
    // The partition bit — fetches failed — and the stream resumed from the
    // cursor rather than restarting: exactly one manifest adoption, zero
    // chain restarts, and the byte count says no chunk was fetched twice.
    EXPECT_GE(s.fetch_failures, 1u);
    EXPECT_GE(s.resumes, 1u);
    EXPECT_EQ(s.restarts, 0u);
    EXPECT_EQ(s.crc_failures, 0u);
    EXPECT_EQ(s.chunks, (s.bytes + 47) / 48);
    EXPECT_EQ(s.installs, 4u);
    EXPECT_EQ(robot.catchup()->completed_chain(), hub.base().catchup_chain());
    EXPECT_EQ(robot.receiver().installed_count(), 4u);

    // The catch-up image installs under the base's real epoch and lease:
    // the base's own keep-alives renew them, nothing expires.
    sim.run_for(seconds(8));
    EXPECT_EQ(robot.receiver().stats().expirations, 0u);
    EXPECT_EQ(robot.receiver().installed_count(), 4u);
}

// ------------------------------------------------------ cell proxying ----

TEST(CatchupProxy, WholeCellCatchesUpOnOneBackhaulImageFetch) {
    // CellWorld geometry (federation_test.cpp): the nodes reach only the
    // cell anchor; every catch-up read is served by the relay's proxy and
    // the backhaul pays for the image roughly once, not once per node.
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 31);
    BaseConfig bc;
    bc.issuer = "hub";
    bc.extension_lease = seconds(4);
    bc.max_keepalive_failures = 4;
    bc.catchup_chunk_bytes = 48;
    auto hub = std::make_unique<BaseStation>(net, "hub", net::Position{0, 0}, 120.0, bc);
    hub->keys().add_key("hub", to_bytes("hk"));
    auto anchor = std::make_unique<CellStation>(net, "cell-east",
                                                net::Position{100, 0}, 120.0);
    const int kNodes = 5;
    ReceiverConfig rc;
    rc.cell = "cell-east";
    std::vector<std::unique_ptr<MobileNode>> nodes;
    for (int i = 0; i < kNodes; ++i) {
        net::Position pos{130.0 + 5.0 * i, 0};
        auto node = std::make_unique<MobileNode>(net, "n" + std::to_string(i), pos,
                                                 60.0, rc);
        node->trust().trust("hub", to_bytes("hk"));
        node->enable_catchup();
        nodes.push_back(std::move(node));
    }
    hub->base().attach_cell("cell-east", anchor->id());
    hub->base().add_extension(policy_pkg("hub/p0"));
    hub->base().add_extension(policy_pkg("hub/p1"));

    auto all_caught_up = [&] {
        for (auto& n : nodes) {
            if (n->catchup()->stats().completed < 1) return false;
        }
        return true;
    };
    SimTime deadline = sim.now() + seconds(30);
    while (sim.now() < deadline && !all_caught_up()) {
        sim.run_until(sim.now() + milliseconds(50));
    }
    ASSERT_TRUE(all_caught_up());

    // Every node streamed the same multi-chunk image...
    std::uint64_t per_node = nodes[0]->catchup()->stats().chunks;
    ASSERT_GE(per_node, 2u);
    std::uint64_t served = 0;
    for (auto& n : nodes) {
        EXPECT_EQ(n->catchup()->stats().chunks, per_node) << n->label();
        EXPECT_EQ(n->catchup()->stats().installs, 2u) << n->label();
        served += n->catchup()->stats().chunks;
    }
    // ...but the backhaul saw each chunk once (plus a manifest fetch or
    // two), not once per node. The cache did the multiplication.
    const CellRelay::Stats& rs = anchor->relay().stats();
    EXPECT_LE(rs.catchup_upstream, per_node + 4);
    EXPECT_LT(rs.catchup_upstream, served);
    EXPECT_GT(rs.catchup_hits, 0u);
    EXPECT_GT(rs.catchup_waits, 0u);  // early readers parked on retry hints
    // The base served the image once — its chunk counter tracks the
    // upstream fetches, not the cell population.
    EXPECT_LE(hub->base().catchup_stats().chunks, rs.catchup_upstream);

    // And the ordinary batched keep-alive path still converges the cell.
    deadline = sim.now() + seconds(30);
    auto converged = [&] {
        for (auto& n : nodes) {
            if (n->receiver().installed_count() != 2) return false;
        }
        return true;
    };
    while (sim.now() < deadline && !converged()) {
        sim.run_until(sim.now() + milliseconds(100));
    }
    EXPECT_TRUE(converged());
    for (auto& n : nodes) {
        EXPECT_EQ(n->receiver().stats().expirations, 0u) << n->label();
    }
}

// ------------------------------------------- the correlated-crash storm ----

/// A durable, supervised hub (group commit + chunked snapshots enabled on
/// its journal) and four robots in range. robot0 never crashes — the
/// healthy control. robots 1..3 are supervised and all lose power at the
/// same instant (the correlated storm), restarting together as fresh,
/// memory-less devices whose only road back is streaming catch-up. The hub
/// itself power-cycles earlier (epoch bump => chain change), and a late
/// partition overlaps the robots' recovery so catch-up streams resume
/// mid-flight. Background radio faults run throughout.
struct CatchupChaosWorld {
    sim::Simulator sim;
    net::Network net;
    Supervisor sup;
    std::shared_ptr<db::JournalStorage> disk_hub;
    std::unique_ptr<BaseStation> hub;
    std::vector<std::unique_ptr<MobileNode>> robots;

    explicit CatchupChaosWorld(std::uint64_t seed)
        : net(sim, net::NetworkConfig{}, seed),
          sup(net),
          disk_hub(std::make_shared<db::JournalStorage>()) {
        disk_hub->name = "hub";
        robots.resize(4);

        sup.manage("hub", Supervisor::Lifecycle{
                              [this]() {
                                  BaseConfig bc;
                                  bc.issuer = "hub";
                                  bc.extension_lease = seconds(4);
                                  bc.max_keepalive_failures = 4;
                                  bc.catchup_chunk_bytes = 64;
                                  bc.journal = db::JournalConfig{
                                      .batch_bytes = 1024,
                                      .batch_ms = milliseconds(20),
                                      .snapshot_chunk_bytes = 256};
                                  hub = std::make_unique<BaseStation>(
                                      net, "hub", net::Position{0, 0}, 120.0, bc,
                                      disco::RegistrarConfig{}, disk_hub);
                                  hub->keys().add_key("hub", to_bytes("hk"));
                              },
                              [this]() { return hub->id(); },
                              [this]() {
                                  if (hub && hub->journal()) hub->journal()->power_off();
                              },
                              [this]() { hub.reset(); },
                          });

        auto make_robot = [this](int i) {
            auto robot = std::make_unique<MobileNode>(
                net, "robot" + std::to_string(i), net::Position{10.0 + 10 * i, 10},
                120.0);
            robot->trust().trust("hub", to_bytes("hk"));
            robot->enable_catchup();
            return robot;
        };
        robots[0] = make_robot(0);
        for (int i = 1; i <= 3; ++i) {
            sup.manage("robot" + std::to_string(i),
                       Supervisor::Lifecycle{
                           [this, make_robot, i]() { robots[i] = make_robot(i); },
                           [this, i]() { return robots[i]->id(); },
                           []() {},
                           [this, i]() { robots[i].reset(); },
                       });
        }

        hub->base().add_extension(policy_pkg("hub/p0"));
        hub->base().add_extension(policy_pkg("hub/p1"));

        net::FaultPlan plan;
        plan.loss = 0.03;
        plan.delay_jitter = milliseconds(5);
        plan.duplicate = 0.05;
        plan.reorder = 0.05;
        // A blackout of the healthy control while the storm recovers: its
        // lease must ride out the blip untouched. (Supervised nodes change
        // ids on restart, so only robot0's id is stable enough to target.)
        plan.partitions.push_back(net::PartitionWindow{
            SimTime::zero() + seconds(10), SimTime::zero() + milliseconds(11200),
            {robots[0]->id()},
            {}});
        net.set_fault_plan(plan, seed * 1000003ULL + 17);

        // The hub dies first (epoch 1 -> 2: every survivor re-streams the
        // new chain); then the storm — all three supervised robots lose
        // power in the same instant and come back together.
        net::CrashPlan crashes;
        crashes.events.push_back(
            net::CrashEvent{"hub", SimTime::zero() + seconds(5), milliseconds(1500)});
        for (int i = 1; i <= 3; ++i) {
            crashes.events.push_back(net::CrashEvent{"robot" + std::to_string(i),
                                                     SimTime::zero() + seconds(9),
                                                     milliseconds(1500)});
        }
        sup.apply(crashes, seed * 7919ULL + 3);
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }

    bool converged() {
        for (auto& r : robots) {
            if (!r || r->receiver().installed_count() != 2) return false;
        }
        return true;
    }
};

TEST(CatchupChaos, CorrelatedRestartStormConvergesViaChunkedCatchupAcrossSeeds) {
    const std::uint64_t base = chaos_seed_base();
    for (std::uint64_t seed = base; seed < base + 20; ++seed) {
        CatchupChaosWorld w(seed);
        ASSERT_TRUE(w.run_until([&] { return w.converged(); })) << "seed " << seed;

        // Ride out the hub crash, the correlated robot storm and the
        // partition, then the fleet must re-converge and hold.
        w.sim.run_until(SimTime::zero() + seconds(16));
        ASSERT_TRUE(w.run_until([&] { return w.converged(); })) << "seed " << seed;
        w.sim.run_for(seconds(5));
        ASSERT_TRUE(w.run_until([&] { return w.converged(); }, seconds(30)))
            << "seed " << seed;

        // Direct pushes may win the convergence race, but every restarted
        // robot's chunked stream must still run to completion (a shed or
        // breaker-open fetch only defers it through backoff).
        ASSERT_TRUE(w.run_until(
            [&] {
                for (int i = 1; i <= 3; ++i) {
                    if (w.robots[i]->catchup()->stats().completed < 1) return false;
                }
                return true;
            },
            seconds(30)))
            << "seed " << seed << [&] {
                   std::string out;
                   for (int i = 1; i <= 3; ++i) {
                       auto& s2 = w.robots[i]->catchup()->stats();
                       out += " robot" + std::to_string(i) + "{sess=" +
                              std::to_string(s2.sessions) + ",man=" +
                              std::to_string(s2.manifests) + ",chunks=" +
                              std::to_string(s2.chunks) + ",fail=" +
                              std::to_string(s2.fetch_failures) + ",done=" +
                              std::to_string(s2.completed) + ",in=" +
                              std::to_string(w.robots[i]->catchup()->in_session()) +
                              "}";
                   }
                   return out;
               }();

        // Everybody scheduled to die died and came back.
        EXPECT_EQ(w.sup.stats().crashes, 4u) << "seed " << seed;
        EXPECT_EQ(w.sup.stats().restarts, 4u) << "seed " << seed;
        ASSERT_TRUE(w.hub != nullptr);
        EXPECT_GE(w.hub->base().epoch(), 2u) << "seed " << seed;

        // Every restarted robot recovered via the chunked stream: a
        // completed, CRC-verified multi-chunk session that installed the
        // image's policies — not merely a lucky direct push.
        for (int i = 1; i <= 3; ++i) {
            const CatchupClient::Stats& s = w.robots[i]->catchup()->stats();
            EXPECT_GE(s.completed, 1u) << "seed " << seed << " robot" << i;
            EXPECT_GE(s.chunks, 2u) << "seed " << seed << " robot" << i;
            EXPECT_GE(s.installs, 2u) << "seed " << seed << " robot" << i;
            EXPECT_EQ(s.crc_failures, 0u) << "seed " << seed << " robot" << i;
            EXPECT_EQ(w.robots[i]->catchup()->completed_chain(),
                      w.hub->base().catchup_chain())
                << "seed " << seed << " robot" << i;
        }
        // The healthy control never paid for anyone else's storm.
        EXPECT_EQ(w.robots[0]->receiver().stats().expirations, 0u) << "seed " << seed;

        // Books balance under duplication-inflating faults.
        net::NetworkStats s = w.net.stats();
        EXPECT_LE(s.delivered, s.sent + s.fault_duplicated) << "seed " << seed;
        EXPECT_GT(s.fault_dropped_partition, 0u) << "seed " << seed;
    }
}

TEST(CatchupChaos, SameSeedReplaysIdentically) {
    auto fingerprint = [](std::uint64_t seed) {
        CatchupChaosWorld w(seed);
        w.sim.run_for(seconds(25));
        net::NetworkStats s = w.net.stats();
        std::uint64_t chunks = 0;
        std::uint64_t completed = 0;
        std::uint64_t resumes = 0;
        std::uint64_t sessions = 0;
        for (auto& r : w.robots) {
            if (!r || !r->catchup()) continue;
            chunks += r->catchup()->stats().chunks;
            completed += r->catchup()->stats().completed;
            resumes += r->catchup()->stats().resumes;
            sessions += r->catchup()->stats().sessions;
        }
        return std::tuple{s.sent,
                          s.delivered,
                          s.fault_dropped_loss,
                          s.fault_dropped_partition,
                          s.fault_duplicated,
                          s.fault_reordered,
                          w.sup.stats().crashes,
                          w.sup.stats().restarts,
                          w.hub ? w.hub->base().epoch() : 0,
                          w.hub ? w.hub->base().catchup_stats().chunks : 0,
                          chunks,
                          completed,
                          resumes,
                          sessions,
                          w.robots[0]->receiver().stats().installs};
    };
    EXPECT_EQ(fingerprint(7), fingerprint(7));
    EXPECT_NE(fingerprint(7), fingerprint(8));
}

}  // namespace
}  // namespace pmp::midas
