// Staged canary rollout (midas/rollout.h, docs/rollout.md): a new
// extension version walks a deterministic cohort ladder gated on health
// windows fed by the quarantine / governor / install-refusal / latency
// signals, and a breached gate rolls the whole cohort back to the pinned
// incumbent automatically. The promises under test:
//
//   * a healthy canary promotes through every stage and graduates into
//     the policy set; the blast radius while staged never exceeds the
//     stage cohort (membership is the public selects_canary predicate);
//   * a poisoned canary aborts on its first cohort quarantine and every
//     touched node re-converges on the incumbent — including a node that
//     once quarantined the incumbent's exact version (rollback amnesty);
//   * add_extension is refused with a typed error while a rollout is in
//     flight, and an aborted canary's version number is never reissued;
//   * the catch-up image serves the *pinned incumbent* for the whole
//     rollout, flipping to the canary only on completion;
//   * a base crash mid-rollout resumes at the journaled stage with a
//     fresh health window; an abort survives the crash too;
//   * the new durable record types stay total under version skew
//     (unknown ops, malformed fields, snapshots without the key);
//   * and the whole machine, under a hostile radio plus a mid-run base
//     crash, keeps the poison inside the cohort, converges the fleet
//     back to the incumbent, and replays bit-identically per seed.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "midas/node.h"
#include "midas/rollout.h"
#include "midas/supervisor.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "robot/devices.h"

namespace pmp::midas {
namespace {

using rt::Dict;
using rt::List;
using rt::Value;

ExtensionPackage policy_pkg(const std::string& name,
                            const std::string& body = "fun onEntry() { }") {
    ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = body;
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

std::uint64_t counter_now(const std::string& name, const std::string& label = "") {
    return obs::Registry::global().counter(name, label).value();
}

std::uint64_t chaos_seed_base() {
    // CI sweeps disjoint seed ranges by exporting PMP_CHAOS_SEED_BASE.
    if (const char* env = std::getenv("PMP_CHAOS_SEED_BASE")) {
        return std::strtoull(env, nullptr, 10);
    }
    return 101;
}

/// Fast-cadence rollout knobs shared by the direct-fleet tests: the
/// 1 → 4 → 8 cohort ladder of "hall/policy" over robot0..robot7 (FNV-1a
/// buckets: robot5 alone under 25%, +robot0/1/6 under 50%).
RolloutConfig fast_rollout() {
    RolloutConfig rc;
    rc.stages = {0.25, 0.5, 1.0};
    rc.stage_window = seconds(1);
    rc.tick_period = milliseconds(100);
    return rc;
}

/// One hall, `n` direct robots (each with a motor so advice actually
/// dispatches), everyone in radio range of everyone.
struct FleetWorld {
    sim::Simulator sim;
    net::Network net;
    std::unique_ptr<BaseStation> hall;
    std::vector<std::unique_ptr<MobileNode>> robots;
    std::vector<std::shared_ptr<rt::ServiceObject>> motors;

    FleetWorld(std::uint64_t seed, int n, BaseConfig bc, ReceiverConfig rc = {})
        : net(sim, net::NetworkConfig{}, seed) {
        bc.issuer = "hall";
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 200.0, bc);
        hall->keys().add_key("hall", to_bytes("k"));
        for (int i = 0; i < n; ++i) {
            auto robot = std::make_unique<MobileNode>(
                net, "robot" + std::to_string(i),
                net::Position{10.0 + 10.0 * i, (i % 2) * 10.0}, 200.0, rc);
            robot->trust().trust("hall", to_bytes("k"));
            motors.push_back(robot::make_motor(robot->runtime(), "motor:" + std::to_string(i)));
            robots.push_back(std::move(robot));
        }
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(50));
        }
        return pred();
    }

    /// Robots currently holding `name` at exactly `version`.
    std::set<std::string> on_version(const std::string& name, std::uint32_t version) {
        std::set<std::string> out;
        for (auto& r : robots) {
            for (const auto& info : r->receiver().installed()) {
                if (info.name == name && info.version == version) {
                    out.insert(r->label());
                }
            }
        }
        return out;
    }

    bool all_on(const std::string& name, std::uint32_t version) {
        return on_version(name, version).size() == robots.size();
    }
};

// ------------------------------------------------------------- basics ----

TEST(RolloutBasics, HealthyRolloutCompletesThroughStages) {
    BaseConfig bc;
    bc.rollout = fast_rollout();
    FleetWorld w(11, 8, bc);
    w.hall->base().add_extension(policy_pkg("hall/policy"));
    ASSERT_TRUE(w.run_until([&] { return w.all_on("hall/policy", 1); }));

    const std::uint64_t promos0 = counter_now("midas.rollout.promotions", "hall");
    const std::uint64_t completions0 = counter_now("midas.rollout.completions", "hall");
    std::uint32_t v2 = w.hall->base().begin_rollout(
        policy_pkg("hall/policy", "fun onEntry() { let x = 1; }"));
    EXPECT_EQ(v2, 2u);
    const RolloutController& rc = w.hall->base().rollout();
    ASSERT_TRUE(rc.active("hall/policy"));

    // The stage-0 cohort from the public predicate: a strict, non-empty
    // subset of the fleet.
    std::set<std::string> cohort0;
    for (auto& r : w.robots) {
        if (rc.selects_canary("hall/policy", r->label())) cohort0.insert(r->label());
    }
    ASSERT_FALSE(cohort0.empty());
    ASSERT_LT(cohort0.size(), w.robots.size());

    // Blast-radius invariant while stage 0 runs: the canary never appears
    // outside the stage-0 cohort.
    SimTime guard = w.sim.now() + seconds(30);
    while (w.sim.now() < guard) {
        auto v = rc.view("hall/policy");
        ASSERT_TRUE(v.has_value());
        if (v->status != RolloutController::Status::kActive || v->stage != 0) break;
        for (const std::string& label : w.on_version("hall/policy", v2)) {
            EXPECT_TRUE(cohort0.contains(label))
                << label << " got the canary while stage 0 covered only the cohort";
        }
        w.sim.run_until(w.sim.now() + milliseconds(50));
    }

    ASSERT_TRUE(w.run_until([&] {
        auto v = rc.view("hall/policy");
        return v && v->status == RolloutController::Status::kComplete;
    }));
    // Graduation: everyone converges on the canary, which is now policy.
    ASSERT_TRUE(w.run_until([&] { return w.all_on("hall/policy", v2); }));
    EXPECT_FALSE(rc.active("hall/policy"));
    EXPECT_EQ(counter_now("midas.rollout.promotions", "hall") - promos0, 2u);
    EXPECT_EQ(counter_now("midas.rollout.completions", "hall") - completions0, 1u);
    auto v = rc.view("hall/policy");
    ASSERT_TRUE(v.has_value());
    EXPECT_GE(v->verdicts.size(), 3u);  // two promotions + the completion
}

TEST(RolloutBasics, PoisonedCanaryAbortsAndRollsBackTheCohort) {
    BaseConfig bc;
    bc.rollout = fast_rollout();
    FleetWorld w(13, 8, bc);
    w.hall->base().add_extension(policy_pkg("hall/policy"));
    ASSERT_TRUE(w.run_until([&] { return w.all_on("hall/policy", 1); }));

    const std::uint64_t aborts0 = counter_now("midas.rollout.aborts", "hall");
    std::uint32_t v2 = w.hall->base().begin_rollout(
        policy_pkg("hall/policy", "fun onEntry() { throw \"poison\"; }"));
    const RolloutController& rc = w.hall->base().rollout();

    // Drive the motors so advice actually dispatches; canary holders blow
    // up each call and quarantine after three. Track where the canary was
    // ever seen and who the controller ever selected.
    std::set<std::string> v2_seen;
    std::set<std::string> cohort_seen;
    SimTime deadline = w.sim.now() + seconds(30);
    while (w.sim.now() < deadline) {
        auto v = rc.view("hall/policy");
        ASSERT_TRUE(v.has_value());
        if (v->status == RolloutController::Status::kAborted) break;
        for (std::size_t i = 0; i < w.robots.size(); ++i) {
            if (rc.selects_canary("hall/policy", w.robots[i]->label())) {
                cohort_seen.insert(w.robots[i]->label());
            }
            try {
                w.motors[i]->call("rotate", {Value{1.0}});
            } catch (const std::exception&) {
                // the poisoned advice surfacing to the app
            }
        }
        for (const std::string& label : w.on_version("hall/policy", v2)) {
            v2_seen.insert(label);
        }
        w.sim.run_until(w.sim.now() + milliseconds(100));
    }

    auto v = rc.view("hall/policy");
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(v->status, RolloutController::Status::kAborted);
    EXPECT_EQ(v->abort_cause.rfind("quarantine:", 0), 0u) << v->abort_cause;
    EXPECT_EQ(counter_now("midas.rollout.aborts", "hall") - aborts0, 1u);

    // Blast radius: the poison never escaped the cohort, and the cohort
    // never reached the whole fleet.
    EXPECT_FALSE(v2_seen.empty());
    for (const std::string& label : v2_seen) {
        EXPECT_TRUE(cohort_seen.contains(label)) << label;
    }
    EXPECT_LT(cohort_seen.size(), w.robots.size());

    // Automatic rollback: every node back on the incumbent, which still
    // dispatches cleanly; the canary version stays quarantined where it bit.
    ASSERT_TRUE(w.run_until([&] { return w.all_on("hall/policy", 1); }));
    bool someone_quarantined_v2 = false;
    for (auto& r : w.robots) {
        if (r->receiver().is_quarantined("hall/policy", v2)) someone_quarantined_v2 = true;
    }
    EXPECT_TRUE(someone_quarantined_v2);
    w.motors[0]->call("rotate", {Value{1.0}});
}

TEST(RolloutBasics, GovernorEscalationGatesPromotion) {
    BaseConfig bc;
    bc.rollout = fast_rollout();
    bc.rollout.escalation_tolerance = 1;
    ReceiverConfig rc;
    rc.governor_step_budget = 50;  // one busy advice invocation blows this
    rc.governor_suspend_factor = 20.0;
    rc.governor_throttle_keep = 1;
    rc.governor_quarantine_after = 0;  // isolate the escalation gate
    FleetWorld w(17, 8, bc, rc);
    w.hall->base().add_extension(policy_pkg("hall/policy"));
    ASSERT_TRUE(w.run_until([&] { return w.all_on("hall/policy", 1); }));

    w.hall->base().begin_rollout(policy_pkg(
        "hall/policy", "fun onEntry() { let i = 0; while (i < 50) { i = i + 1; } }"));
    const RolloutController& rolc = w.hall->base().rollout();

    // Drive only cohort members: their canary advice overruns the step
    // budget, the governor throttles, the gate counts the escalation.
    SimTime deadline = w.sim.now() + seconds(30);
    while (w.sim.now() < deadline) {
        auto v = rolc.view("hall/policy");
        ASSERT_TRUE(v.has_value());
        if (v->status == RolloutController::Status::kAborted) break;
        for (std::size_t i = 0; i < w.robots.size(); ++i) {
            if (!rolc.selects_canary("hall/policy", w.robots[i]->label())) continue;
            try {
                w.motors[i]->call("rotate", {Value{1.0}});
            } catch (const std::exception&) {
            }
        }
        w.sim.run_until(w.sim.now() + milliseconds(100));
    }
    auto v = rolc.view("hall/policy");
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(v->status, RolloutController::Status::kAborted);
    EXPECT_EQ(v->abort_cause.rfind("governor-escalation:", 0), 0u) << v->abort_cause;
    ASSERT_TRUE(w.run_until([&] { return w.all_on("hall/policy", 1); }));
}

TEST(RolloutBasics, LatencyRegressionGateAbortsWhenArmed) {
    BaseConfig bc;
    bc.rollout = fast_rollout();
    bc.rollout.stage_window = seconds(60);  // the gate must fire, not the ladder
    bc.rollout.latency_factor = 2.0;
    bc.rollout.latency_min_samples = 10;
    FleetWorld w(19, 2, bc);
    w.hall->base().add_extension(policy_pkg("hall/lat"));
    ASSERT_TRUE(w.run_until([&] { return w.all_on("hall/lat", 1); }));

    // The incumbent's advice cost, as the profiler would have recorded it.
    obs::Profiler::Site site =
        obs::Profiler::global().site("hall/lat", "call(* Motor.*(..))");
    for (int i = 0; i < 20; ++i) site.record(1'000.0);

    w.hall->base().begin_rollout(policy_pkg("hall/lat", "fun onEntry() { let x = 2; }"));
    const RolloutController& rolc = w.hall->base().rollout();
    {
        auto v = rolc.view("hall/lat");
        ASSERT_TRUE(v.has_value());
        EXPECT_GT(v->health.baseline_p95_ns, 0.0);
    }

    // The canary's windowed samples: 100x the incumbent. Next health poll
    // must breach the 2x factor and abort.
    for (int i = 0; i < 20; ++i) site.record(100'000.0);
    ASSERT_TRUE(w.run_until(
        [&] {
            auto v = rolc.view("hall/lat");
            return v && v->status == RolloutController::Status::kAborted;
        },
        seconds(5)));
    auto v = rolc.view("hall/lat");
    EXPECT_EQ(v->abort_cause.rfind("latency-regression:", 0), 0u) << v->abort_cause;
}

// -------------------------------------------------------------- guards ----

TEST(RolloutGuards, AddExtensionRejectedWhileRolloutInFlight) {
    BaseConfig bc;
    bc.rollout = fast_rollout();
    FleetWorld w(23, 3, bc);
    w.hall->base().add_extension(policy_pkg("hall/policy"));
    ASSERT_TRUE(w.run_until([&] { return w.all_on("hall/policy", 1); }));

    std::uint32_t v2 = w.hall->base().begin_rollout(
        policy_pkg("hall/policy", "fun onEntry() { let x = 1; }"));
    // Same name: typed refusal. A different name is untouched.
    EXPECT_THROW(w.hall->base().add_extension(policy_pkg("hall/policy")), RolloutInFlight);
    EXPECT_THROW(w.hall->base().begin_rollout(policy_pkg("hall/policy")), RolloutInFlight);
    w.hall->base().add_extension(policy_pkg("hall/other"));

    const RolloutController& rc = w.hall->base().rollout();
    ASSERT_TRUE(w.run_until([&] {
        auto v = rc.view("hall/policy");
        return v && v->status == RolloutController::Status::kComplete;
    }));
    // After completion the guard lifts, and the next version continues
    // past the canary's number.
    w.hall->base().add_extension(policy_pkg("hall/policy"));
    ASSERT_TRUE(w.run_until(
        [&] { return w.on_version("hall/policy", v2 + 1).size() == w.robots.size(); }));
}

TEST(RolloutGuards, AbortedCanaryVersionIsNeverReissued) {
    BaseConfig bc;
    bc.rollout = fast_rollout();
    bc.rollout.refusal_tolerance = 0;  // quarantine gate only
    FleetWorld w(29, 8, bc);
    w.hall->base().add_extension(policy_pkg("hall/policy"));
    ASSERT_TRUE(w.run_until([&] { return w.all_on("hall/policy", 1); }));

    std::uint32_t v2 = w.hall->base().begin_rollout(
        policy_pkg("hall/policy", "fun onEntry() { throw \"poison\"; }"));
    const RolloutController& rc = w.hall->base().rollout();
    SimTime deadline = w.sim.now() + seconds(30);
    while (w.sim.now() < deadline) {
        auto v = rc.view("hall/policy");
        if (v && v->status == RolloutController::Status::kAborted) break;
        for (std::size_t i = 0; i < w.robots.size(); ++i) {
            try {
                w.motors[i]->call("rotate", {Value{1.0}});
            } catch (const std::exception&) {
            }
        }
        w.sim.run_until(w.sim.now() + milliseconds(100));
    }
    ASSERT_EQ(rc.view("hall/policy")->status, RolloutController::Status::kAborted);

    // The canary's number died with it: the next add_extension must land
    // strictly above it, or a node still quarantining v2 would silently
    // refuse what the base believes is a fresh version.
    w.hall->base().add_extension(policy_pkg("hall/policy"));
    ASSERT_TRUE(w.run_until(
        [&] { return w.on_version("hall/policy", v2 + 1).size() == w.robots.size(); }));
}

TEST(RolloutGuards, CatchupImageServesThePinnedIncumbentDuringRollout) {
    BaseConfig bc;
    bc.rollout.stages = {1.0};
    bc.rollout.stage_window = seconds(2);
    bc.rollout.tick_period = milliseconds(100);
    FleetWorld w(31, 1, bc);
    NodeStack reader(w.net, "reader", net::Position{0, 30}, 200.0);
    w.hall->base().add_extension(policy_pkg("hall/policy"));
    ASSERT_TRUE(w.run_until([&] { return w.all_on("hall/policy", 1); }));

    auto call = [&](const std::string& method, List args) {
        Value out;
        bool done = false;
        reader.rpc().call_async(w.hall->id(), "midas.catchup", method, std::move(args),
                                [&](Value r, std::exception_ptr e) {
                                    EXPECT_FALSE(e);
                                    out = std::move(r);
                                    done = true;
                                });
        SimTime deadline = w.sim.now() + seconds(5);
        while (!done && w.sim.now() < deadline) {
            w.sim.run_until(w.sim.now() + milliseconds(5));
        }
        EXPECT_TRUE(done);
        return out;
    };
    auto image_version = [&](const std::string& name) -> std::uint32_t {
        Value mv = call("manifest", {});
        const Dict& m = mv.as_dict();
        std::int64_t chain = m.at("chain").as_int();
        std::int64_t nchunks = m.at("chunks").as_int();
        Bytes image;
        for (std::int64_t i = 0; i < nchunks; ++i) {
            Value cv = call("chunk", {Value{chain}, Value{i}});
            const Bytes& data = cv.as_dict().at("data").as_blob();
            image.insert(image.end(), data.begin(), data.end());
        }
        Value decoded = Value::decode(std::span<const std::uint8_t>(image));
        for (const Value& p : decoded.as_dict().at("policies").as_list()) {
            const Bytes& sealed = p.as_dict().at("sealed").as_blob();
            auto [pkg, sig] = ExtensionPackage::open(std::span<const std::uint8_t>(sealed));
            if (pkg.name == name) return pkg.version;
        }
        return 0;
    };

    std::uint32_t v2 = w.hall->base().begin_rollout(
        policy_pkg("hall/policy", "fun onEntry() { let x = 1; }"));
    const RolloutController& rc = w.hall->base().rollout();
    ASSERT_TRUE(rc.active("hall/policy"));
    // Mid-rollout — even with the whole (one-robot) fleet on the canary —
    // a late joiner's bootstrap image still carries the incumbent.
    ASSERT_TRUE(w.run_until([&] { return !w.on_version("hall/policy", v2).empty(); }));
    EXPECT_EQ(image_version("hall/policy"), 1u);

    ASSERT_TRUE(w.run_until([&] {
        auto v = rc.view("hall/policy");
        return v && v->status == RolloutController::Status::kComplete;
    }));
    EXPECT_EQ(image_version("hall/policy"), v2);
}

// ------------------------------------------- quarantine rollback amnesty ----

struct QuarantineWorld {
    sim::Simulator sim;
    net::Network net;
    std::shared_ptr<db::JournalStorage> robot_disk;
    std::unique_ptr<BaseStation> hall;
    std::unique_ptr<MobileNode> robot;
    std::shared_ptr<rt::ServiceObject> motor;

    explicit QuarantineWorld(BaseConfig bc = {})
        : net(sim, net::NetworkConfig{}, 37),
          robot_disk(std::make_shared<db::JournalStorage>()) {
        robot_disk->name = "robot";
        bc.issuer = "hall";
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 100.0, bc);
        hall->keys().add_key("hall", to_bytes("k"));
        start_robot();
    }

    void start_robot() {
        robot = std::make_unique<MobileNode>(net, "robot", net::Position{10, 0}, 100.0,
                                             ReceiverConfig{}, robot_disk);
        robot->trust().trust("hall", to_bytes("k"));
        motor = robot::make_motor(robot->runtime(), "motor:x");
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(30)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(50));
        }
        return pred();
    }

    void trip_quarantine(std::uint32_t version) {
        for (int i = 0; i < 3; ++i) {
            EXPECT_THROW(motor->call("rotate", {Value{1.0}}), std::exception);
        }
        sim.run_for(milliseconds(10));  // deferred withdrawal
        ASSERT_TRUE(robot->receiver().is_quarantined("hall/policy", version));
    }
};

// Regression for the original quarantine contract: (name, version) pairs
// were refused "until a newer version" — which strands a deliberate
// rollback to a once-quarantined incumbent forever. The explicit
// unquarantine is the rollback-scoped amnesty.
TEST(QuarantineRollback, ExplicitUnquarantineRestoresARefusedVersion) {
    QuarantineWorld w;
    w.hall->base().add_extension(policy_pkg("hall/policy", "fun onEntry() { throw \"x\"; }"));
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));
    std::uint32_t v1 = w.robot->receiver().installed()[0].version;
    w.trip_quarantine(v1);

    // The base keeps pushing; the pair keeps bouncing.
    w.sim.run_for(seconds(3));
    EXPECT_EQ(w.robot->receiver().installed_count(), 0u);

    const std::uint64_t unq0 = counter_now("midas.receiver.unquarantined", "robot");
    EXPECT_TRUE(w.robot->receiver().unquarantine("hall/policy", v1));
    EXPECT_FALSE(w.robot->receiver().unquarantine("hall/policy", v1));  // idempotent
    EXPECT_EQ(counter_now("midas.receiver.unquarantined", "robot") - unq0, 1u);
    EXPECT_FALSE(w.robot->receiver().is_quarantined("hall/policy", v1));
    // The very version that was refused is accepted again.
    ASSERT_TRUE(w.run_until([&] {
        return w.robot->receiver().installed_count() == 1 &&
               w.robot->receiver().installed()[0].version == v1;
    }));
}

TEST(QuarantineRollback, NewerVersionLiftsOlderEntriesDurably) {
    QuarantineWorld w;
    w.hall->base().add_extension(policy_pkg("hall/policy", "fun onEntry() { throw \"x\"; }"));
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));
    std::uint32_t v1 = w.robot->receiver().installed()[0].version;
    w.trip_quarantine(v1);

    // A fixed, newer version lands — and its arrival lifts the older
    // entry (the documented "until a newer version" contract, now made
    // durable instead of implicit).
    w.hall->base().add_extension(policy_pkg("hall/policy"));
    ASSERT_TRUE(w.run_until([&] {
        return w.robot->receiver().installed_count() == 1 &&
               w.robot->receiver().installed()[0].version > v1;
    }));
    EXPECT_FALSE(w.robot->receiver().is_quarantined("hall/policy", v1));

    // ...and stays lifted across a crash-restart over the same disk.
    w.robot->journal()->power_off();
    w.net.remove_node(w.robot->id());
    w.robot.reset();
    w.sim.run_for(seconds(1));
    w.start_robot();
    EXPECT_FALSE(w.robot->receiver().is_quarantined("hall/policy", v1));
}

// End-to-end: the incumbent itself was once quarantined on the node, the
// node was then upgraded to the canary, the canary aborts — rollback must
// unquarantine the incumbent or the node is stranded with nothing.
TEST(QuarantineRollback, RollbackReinstallsAOnceQuarantinedIncumbent) {
    BaseConfig bc;
    bc.rollout.stages = {1.0};
    bc.rollout.stage_window = seconds(5);
    bc.rollout.tick_period = milliseconds(100);
    QuarantineWorld w(bc);
    w.hall->base().add_extension(policy_pkg("hall/policy", "fun onEntry() { throw \"x\"; }"));
    ASSERT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));
    std::uint32_t v1 = w.robot->receiver().installed()[0].version;
    w.trip_quarantine(v1);

    // The canary (also poisoned) is a *different* version, so the node
    // accepts it — then quarantines it too, which aborts the rollout.
    std::uint32_t v2 = w.hall->base().begin_rollout(
        policy_pkg("hall/policy", "fun onEntry() { throw \"y\"; }"));
    const RolloutController& rc = w.hall->base().rollout();
    SimTime deadline = w.sim.now() + seconds(20);
    while (w.sim.now() < deadline) {
        auto v = rc.view("hall/policy");
        if (v && v->status == RolloutController::Status::kAborted) break;
        try {
            w.motor->call("rotate", {Value{1.0}});
        } catch (const std::exception&) {
        }
        w.sim.run_until(w.sim.now() + milliseconds(100));
    }
    ASSERT_EQ(rc.view("hall/policy")->status, RolloutController::Status::kAborted);

    // Rollback amnesty: the once-quarantined incumbent v1 comes back.
    ASSERT_TRUE(w.run_until([&] {
        return w.robot->receiver().installed_count() == 1 &&
               w.robot->receiver().installed()[0].version == v1;
    }));
    EXPECT_FALSE(w.robot->receiver().is_quarantined("hall/policy", v1));
    EXPECT_TRUE(w.robot->receiver().is_quarantined("hall/policy", v2));
}

// ------------------------------------------------------ crash recovery ----

struct DurableRolloutWorld {
    sim::Simulator sim;
    net::Network net;
    Supervisor sup;
    std::shared_ptr<db::JournalStorage> disk;
    std::unique_ptr<BaseStation> hall;
    std::vector<std::unique_ptr<MobileNode>> robots;
    std::vector<std::shared_ptr<rt::ServiceObject>> motors;

    DurableRolloutWorld(std::uint64_t seed, RolloutConfig rollout)
        : net(sim, net::NetworkConfig{}, seed),
          sup(net),
          disk(std::make_shared<db::JournalStorage>()) {
        disk->name = "hall";
        sup.manage("hall", Supervisor::Lifecycle{
                               [this, rollout]() {
                                   BaseConfig bc;
                                   bc.issuer = "hall";
                                   bc.rollout = rollout;
                                   bc.journal = db::JournalConfig{
                                       .batch_bytes = 1024,
                                       .batch_ms = milliseconds(20),
                                       .snapshot_chunk_bytes = 256};
                                   hall = std::make_unique<BaseStation>(
                                       net, "hall", net::Position{0, 0}, 200.0, bc,
                                       disco::RegistrarConfig{}, disk);
                                   hall->keys().add_key("hall", to_bytes("k"));
                               },
                               [this]() { return hall->id(); },
                               [this]() {
                                   if (hall && hall->journal()) hall->journal()->power_off();
                               },
                               [this]() { hall.reset(); },
                           });
        for (int i = 0; i < 8; ++i) {
            auto robot = std::make_unique<MobileNode>(
                net, "robot" + std::to_string(i),
                net::Position{10.0 + 10.0 * i, (i % 2) * 10.0}, 200.0);
            robot->trust().trust("hall", to_bytes("k"));
            motors.push_back(robot::make_motor(robot->runtime(), "motor:" + std::to_string(i)));
            robots.push_back(std::move(robot));
        }
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(50));
        }
        return pred();
    }

    std::set<std::string> on_version(const std::string& name, std::uint32_t version) {
        std::set<std::string> out;
        for (auto& r : robots) {
            for (const auto& info : r->receiver().installed()) {
                if (info.name == name && info.version == version) out.insert(r->label());
            }
        }
        return out;
    }
};

TEST(RolloutRecovery, MidRolloutRestartResumesAtTheJournaledStage) {
    RolloutConfig rc = fast_rollout();
    rc.stage_window = milliseconds(1500);
    DurableRolloutWorld w(41, rc);
    w.hall->base().add_extension(policy_pkg("hall/policy"));
    ASSERT_TRUE(w.run_until([&] { return w.on_version("hall/policy", 1).size() == 8; }));

    std::uint32_t v2 = w.hall->base().begin_rollout(
        policy_pkg("hall/policy", "fun onEntry() { let x = 1; }"));
    ASSERT_TRUE(w.run_until([&] {
        auto v = w.hall->base().rollout().view("hall/policy");
        return v && v->stage >= 1;
    }));

    // Power cut mid-rollout. The journaled stage is the resume point —
    // give the 20ms group commit one window to flush the stage record
    // first (a promotion that never hit the WAL legitimately resumes a
    // stage earlier).
    w.sim.run_for(milliseconds(100));
    w.sup.crash("hall", milliseconds(1500));
    ASSERT_TRUE(w.run_until([&] { return w.sup.stats().restarts >= 1 && w.hall; },
                            seconds(10)));
    EXPECT_GE(w.hall->base().epoch(), 2u);
    {
        auto v = w.hall->base().rollout().view("hall/policy");
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(v->status, RolloutController::Status::kActive);
        EXPECT_GE(v->stage, 1u);  // resumed, not restarted at 0%
        ASSERT_FALSE(v->verdicts.empty());
        EXPECT_NE(v->verdicts.back().find("recovered at stage"), std::string::npos);
    }

    // And the resumed rollout still finishes the job.
    ASSERT_TRUE(w.run_until([&] {
        auto v = w.hall->base().rollout().view("hall/policy");
        return v && v->status == RolloutController::Status::kComplete;
    }));
    ASSERT_TRUE(w.run_until([&] { return w.on_version("hall/policy", v2).size() == 8; }));
}

TEST(RolloutRecovery, AbortSurvivesTheRestart) {
    DurableRolloutWorld w(43, fast_rollout());
    w.hall->base().add_extension(policy_pkg("hall/policy"));
    ASSERT_TRUE(w.run_until([&] { return w.on_version("hall/policy", 1).size() == 8; }));

    std::uint32_t v2 = w.hall->base().begin_rollout(
        policy_pkg("hall/policy", "fun onEntry() { throw \"poison\"; }"));
    SimTime deadline = w.sim.now() + seconds(30);
    while (w.sim.now() < deadline) {
        auto v = w.hall->base().rollout().view("hall/policy");
        if (v && v->status == RolloutController::Status::kAborted) break;
        for (std::size_t i = 0; i < w.robots.size(); ++i) {
            try {
                w.motors[i]->call("rotate", {Value{1.0}});
            } catch (const std::exception&) {
            }
        }
        w.sim.run_until(w.sim.now() + milliseconds(100));
    }
    auto before = w.hall->base().rollout().view("hall/policy");
    ASSERT_TRUE(before && before->status == RolloutController::Status::kAborted);
    w.sim.run_for(milliseconds(100));  // let the group commit flush the abort

    w.sup.crash("hall", milliseconds(1500));
    ASSERT_TRUE(w.run_until([&] { return w.sup.stats().restarts >= 1 && w.hall; },
                            seconds(10)));
    auto after = w.hall->base().rollout().view("hall/policy");
    ASSERT_TRUE(after.has_value());
    EXPECT_EQ(after->status, RolloutController::Status::kAborted);
    EXPECT_EQ(after->abort_cause, before->abort_cause);
    // The restarted base keeps serving the incumbent, never the dead canary.
    ASSERT_TRUE(w.run_until([&] { return w.on_version("hall/policy", 1).size() == 8; }));
    EXPECT_TRUE(w.on_version("hall/policy", v2).empty());
}

// ------------------------------------------------- durable version skew ----

BaseDurableState::RolloutEntry sample_entry() {
    BaseDurableState::RolloutEntry e;
    e.name = "hall/policy";
    e.version = 7;
    e.sealed = to_bytes("sealed-bytes");
    e.incumbent_version = 6;
    e.stages_bp = {2500, 5000, 10000};
    e.stage = 1;
    e.status = 0;
    e.abort_cause = "";
    return e;
}

TEST(DurableSkew, UnknownAndMalformedRolloutRecordsSkipTotally) {
    auto disk = std::make_shared<db::JournalStorage>();
    {
        db::Journal j(disk);
        j.append(BaseDurableState::rec_epoch(3));
        j.append(BaseDurableState::rec_rollout_begin(sample_entry()));
        // A future op this build has never heard of.
        j.append(Value{Dict{{"op", Value{"rollout-pause"}}, {"name", Value{"hall/policy"}}}});
        // A malformed begin: version is a string.
        Value bad = BaseDurableState::rec_rollout_begin(sample_entry());
        {
            Dict d = bad.as_dict();
            d.set("version", Value{"seven"});
            d.set("name", Value{"hall/broken"});
            bad = Value{std::move(d)};
        }
        j.append(bad);
        // Stage/abort records for a rollout that was never begun: ignored
        // without being counted as damage (an old journal truncated at a
        // snapshot boundary looks exactly like this).
        j.append(BaseDurableState::rec_rollout_stage("hall/ghost", 2));
        j.append(BaseDurableState::rec_rollout_abort("hall/ghost", "x"));
        j.append(BaseDurableState::rec_rollout_stage("hall/policy", 2));
    }
    BaseDurableState st = BaseDurableState::replay(db::Journal(disk).restore());
    EXPECT_EQ(st.skipped_records, 2u);  // the unknown op + the malformed begin
    ASSERT_EQ(st.rollouts.size(), 1u);
    const auto& r = st.rollouts.at("hall/policy");
    EXPECT_EQ(r.version, 7u);
    EXPECT_EQ(r.stage, 2u);
    EXPECT_EQ(r.incumbent_version, 6u);
    EXPECT_EQ(r.stages_bp, (std::vector<std::uint32_t>{2500, 5000, 10000}));
    // The canary's number is claimed even if only the journal knows it.
    EXPECT_GE(st.last_version["hall/policy"], 7u);
}

TEST(DurableSkew, EveryFieldMutationOfABeginRecordStaysTotal) {
    // Deterministic single-field fuzz: for every key of a valid
    // rollout-begin record, replace the value with each of a few wrong
    // types. Replay must never throw — each mutant either skips or decodes
    // to something harmless.
    Value good = BaseDurableState::rec_rollout_begin(sample_entry());
    std::vector<std::string> keys;
    for (const auto& [k, _] : good.as_dict()) keys.push_back(k);
    const Value wrong[] = {Value{"x"}, Value{std::int64_t{-1}}, Value{List{}},
                           Value{Dict{}}};
    for (const std::string& key : keys) {
        for (const Value& w : wrong) {
            auto disk = std::make_shared<db::JournalStorage>();
            {
                db::Journal j(disk);
                Dict d = good.as_dict();
                d.set(key, w);
                j.append(Value{std::move(d)});
                // Dropped-key variant too.
                Dict d2 = good.as_dict();
                d2.erase(key);
                j.append(Value{std::move(d2)});
            }
            BaseDurableState st;
            ASSERT_NO_THROW(st = BaseDurableState::replay(db::Journal(disk).restore()))
                << "key=" << key;
            EXPECT_LE(st.rollouts.size(), 2u) << "key=" << key;
        }
    }
}

TEST(DurableSkew, SnapshotsCrossRolloutVersionsBothWays) {
    // Backward: a snapshot written before rollouts existed (no "rollouts"
    // key) loads cleanly, and WAL rollout records after it still apply.
    BaseDurableState old_state;
    old_state.epoch = 2;
    Value old_snap = old_state.to_snapshot();
    {
        Dict d = old_snap.as_dict();
        ASSERT_TRUE(d.erase("rollouts"));
        old_snap = Value{std::move(d)};
    }
    auto disk = std::make_shared<db::JournalStorage>();
    {
        db::Journal j(disk);
        j.compact(old_snap);
        j.append(BaseDurableState::rec_rollout_begin(sample_entry()));
    }
    BaseDurableState st = BaseDurableState::replay(db::Journal(disk).restore());
    EXPECT_EQ(st.skipped_records, 0u);
    EXPECT_EQ(st.epoch, 2u);
    ASSERT_TRUE(st.rollouts.contains("hall/policy"));

    // Forward: a snapshot from a *newer* build (extra top-level key, extra
    // per-rollout field) reads back with nothing lost and nothing fatal.
    BaseDurableState new_state;
    new_state.epoch = 5;
    new_state.rollouts["hall/policy"] = sample_entry();
    Value new_snap = new_state.to_snapshot();
    {
        Dict d = new_snap.as_dict();
        d.set("rollout-schedules", Value{List{}});  // future sibling feature
        List rl = d.at("rollouts").as_list();
        Dict r0 = rl[0].as_dict();
        r0.set("pause_until_ns", Value{std::int64_t{99}});  // future field
        rl[0] = Value{std::move(r0)};
        d.set("rollouts", Value{std::move(rl)});
        new_snap = Value{std::move(d)};
    }
    auto disk2 = std::make_shared<db::JournalStorage>();
    {
        db::Journal j(disk2);
        j.compact(new_snap);
    }
    BaseDurableState st2 = BaseDurableState::replay(db::Journal(disk2).restore());
    EXPECT_EQ(st2.skipped_records, 0u);
    EXPECT_EQ(st2.epoch, 5u);
    ASSERT_TRUE(st2.rollouts.contains("hall/policy"));
    EXPECT_EQ(st2.rollouts.at("hall/policy").stage, 1u);
}

// ---------------------------------------------------------- chaos soak ----
// A poisoned canary under a hostile radio plus a mid-run base power cut.
// The promises: the poison never escapes the canary cohort, the whole
// fleet re-converges on the incumbent after the automatic rollback, the
// rollout's terminal state survives the crash, and the same seed replays
// the identical run.

struct RolloutChaosWorld {
    sim::Simulator sim;
    net::Network net;
    Supervisor sup;
    std::shared_ptr<db::JournalStorage> disk;
    std::unique_ptr<BaseStation> hall;
    std::vector<std::unique_ptr<MobileNode>> robots;
    std::vector<std::shared_ptr<rt::ServiceObject>> motors;

    explicit RolloutChaosWorld(std::uint64_t seed)
        : net(sim, net::NetworkConfig{}, seed),
          sup(net),
          disk(std::make_shared<db::JournalStorage>()) {
        disk->name = "hall";
        sup.manage("hall", Supervisor::Lifecycle{
                               [this]() {
                                   BaseConfig bc;
                                   bc.issuer = "hall";
                                   bc.rollout.stages = {0.25, 0.5, 1.0};
                                   bc.rollout.stage_window = seconds(2);
                                   bc.rollout.tick_period = milliseconds(200);
                                   bc.journal = db::JournalConfig{
                                       .batch_bytes = 1024,
                                       .batch_ms = milliseconds(20),
                                       .snapshot_chunk_bytes = 256};
                                   hall = std::make_unique<BaseStation>(
                                       net, "hall", net::Position{0, 0}, 200.0, bc,
                                       disco::RegistrarConfig{}, disk);
                                   hall->keys().add_key("hall", to_bytes("k"));
                               },
                               [this]() { return hall->id(); },
                               [this]() {
                                   if (hall && hall->journal()) hall->journal()->power_off();
                               },
                               [this]() { hall.reset(); },
                           });
        for (int i = 0; i < 8; ++i) {
            auto robot = std::make_unique<MobileNode>(
                net, "robot" + std::to_string(i),
                net::Position{10.0 + 10.0 * i, (i % 2) * 10.0}, 200.0);
            robot->trust().trust("hall", to_bytes("k"));
            motors.push_back(robot::make_motor(robot->runtime(), "motor:" + std::to_string(i)));
            robots.push_back(std::move(robot));
        }

        net::FaultPlan plan;
        plan.loss = 0.05;
        plan.burst_enter = 0.02;
        plan.burst_exit = 0.3;
        plan.delay_jitter = milliseconds(10);
        plan.duplicate = 0.1;
        plan.reorder = 0.05;
        net.set_fault_plan(plan, seed * 1000003ULL + 17);

        // The power cut lands while the rollout drama is typically still
        // unfolding (converge ~2s, canary lands, quarantine, abort).
        net::CrashPlan crashes;
        crashes.events.push_back(
            net::CrashEvent{"hall", SimTime::zero() + seconds(3), milliseconds(2000)});
        sup.apply(crashes, seed * 7919ULL + 3);
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(60)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }

    std::set<std::string> on_version(const std::string& name, std::uint32_t version) {
        std::set<std::string> out;
        for (auto& r : robots) {
            for (const auto& info : r->receiver().installed()) {
                if (info.name == name && info.version == version) out.insert(r->label());
            }
        }
        return out;
    }

    /// Drive one scripted poisoned-canary incident and return when the
    /// rollout is terminal (or the deadline passes). Samples cohort
    /// membership and canary sightings every 100ms along the way.
    struct Incident {
        bool converged = false;
        bool aborted = false;
        std::uint32_t canary_version = 0;
        std::set<std::string> cohort_seen;
        std::set<std::string> v2_seen;
    };
    Incident run_incident() {
        Incident out;
        hall->base().add_extension(policy_pkg("hall/policy"));
        if (!run_until([&] { return on_version("hall/policy", 1).size() == 8 && hall; },
                       seconds(30))) {
            return out;
        }
        out.converged = true;
        out.canary_version = hall->base().begin_rollout(
            policy_pkg("hall/policy", "fun onEntry() { throw \"poison\"; }"));
        SimTime deadline = sim.now() + seconds(40);
        while (sim.now() < deadline) {
            if (hall) {
                const RolloutController& rc = hall->base().rollout();
                for (auto& r : robots) {
                    if (rc.selects_canary("hall/policy", r->label())) {
                        out.cohort_seen.insert(r->label());
                    }
                }
                auto v = rc.view("hall/policy");
                if (v && v->status == RolloutController::Status::kAborted &&
                    sim.now() >= SimTime::zero() + seconds(6)) {
                    // Terminal, and the crash window is behind us.
                    out.aborted = true;
                    break;
                }
            }
            for (const std::string& label : on_version("hall/policy", out.canary_version)) {
                out.v2_seen.insert(label);
            }
            for (std::size_t i = 0; i < robots.size(); ++i) {
                try {
                    motors[i]->call("rotate", {Value{1.0}});
                } catch (const std::exception&) {
                }
            }
            sim.run_until(sim.now() + milliseconds(100));
        }
        if (!out.aborted && hall) {
            auto v = hall->base().rollout().view("hall/policy");
            out.aborted = v && v->status == RolloutController::Status::kAborted;
        }
        return out;
    }
};

TEST(RolloutChaos, PoisonNeverEscapesTheCohortAcrossSeeds) {
    const std::uint64_t base = chaos_seed_base();
    for (std::uint64_t seed = base; seed < base + 20; ++seed) {
        RolloutChaosWorld w(seed);
        RolloutChaosWorld::Incident inc = w.run_incident();
        ASSERT_TRUE(inc.converged) << "seed " << seed << ": fleet never converged";
        ASSERT_TRUE(inc.aborted) << "seed " << seed << ": poisoned canary not aborted";

        // Blast radius: the canary was only ever seen inside the cohort,
        // and the cohort never reached the whole fleet.
        EXPECT_FALSE(inc.v2_seen.empty()) << "seed " << seed;
        for (const std::string& label : inc.v2_seen) {
            EXPECT_TRUE(inc.cohort_seen.contains(label)) << "seed " << seed << " " << label;
        }
        EXPECT_LT(inc.cohort_seen.size(), w.robots.size()) << "seed " << seed;

        // The crash really happened, and the journaled verdict survived it.
        EXPECT_GE(w.sup.stats().crashes, 1u) << "seed " << seed;
        ASSERT_TRUE(w.run_until([&] { return w.sup.stats().restarts >= 1 && w.hall; },
                                seconds(10)))
            << "seed " << seed;
        EXPECT_GE(w.hall->base().epoch(), 2u) << "seed " << seed;
        auto v = w.hall->base().rollout().view("hall/policy");
        ASSERT_TRUE(v.has_value()) << "seed " << seed;
        EXPECT_EQ(v->status, RolloutController::Status::kAborted) << "seed " << seed;

        // Automatic rollback: every node back on the incumbent, despite
        // the radio and the power cut.
        ASSERT_TRUE(w.run_until(
            [&] { return w.on_version("hall/policy", 1).size() == 8; }, seconds(60)))
            << "seed " << seed;
        EXPECT_TRUE(w.on_version("hall/policy", inc.canary_version).empty())
            << "seed " << seed;
        EXPECT_LE(w.net.stats().delivered, w.net.stats().sent) << "seed " << seed;
    }
}

TEST(RolloutChaos, SameSeedReplaysIdentically) {
    auto fingerprint = [](std::uint64_t seed) {
        const std::uint64_t aborts0 = counter_now("midas.rollout.aborts", "hall");
        const std::uint64_t strikes0 = counter_now("midas.rollout.strikes", "hall");
        const std::uint64_t rollbacks0 =
            counter_now("midas.rollout.rollback_installs", "hall");
        RolloutChaosWorld w(seed);
        RolloutChaosWorld::Incident inc = w.run_incident();
        w.run_until([&] { return w.on_version("hall/policy", 1).size() == 8; },
                    seconds(60));
        net::NetworkStats s = w.net.stats();
        return std::tuple{s.sent,
                          s.delivered,
                          s.fault_dropped_loss,
                          s.fault_dropped_burst,
                          s.fault_duplicated,
                          s.fault_reordered,
                          inc.aborted,
                          inc.canary_version,
                          inc.cohort_seen,
                          inc.v2_seen,
                          w.sup.stats().crashes,
                          w.sup.stats().restarts,
                          w.hall ? w.hall->base().epoch() : 0,
                          counter_now("midas.rollout.aborts", "hall") - aborts0,
                          counter_now("midas.rollout.strikes", "hall") - strikes0,
                          counter_now("midas.rollout.rollback_installs", "hall") - rollbacks0,
                          w.robots[0]->receiver().stats().installs,
                          w.robots[5]->receiver().stats().installs};
    };
    EXPECT_EQ(fingerprint(7), fingerprint(7));
    EXPECT_NE(fingerprint(7), fingerprint(8));
}

}  // namespace
}  // namespace pmp::midas
