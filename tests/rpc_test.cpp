// Tests for remote invocation: marshaling, error propagation, timeouts,
// caller identity and hook transparency across the wire.
#include <gtest/gtest.h>

#include <stdexcept>

#include "common/error.h"
#include "net/router.h"
#include "obs/metrics.h"
#include "rt/rpc.h"

namespace pmp::rt {
namespace {

class RpcTest : public ::testing::Test {
protected:
    RpcTest()
        : net_(sim_, net::NetworkConfig{}, 7),
          a_id_(net_.add_node("client", {0, 0}, 50)),
          b_id_(net_.add_node("server", {1, 0}, 50)),
          a_router_(net_, a_id_),
          b_router_(net_, b_id_),
          a_rt_("client"),
          b_rt_("server"),
          a_rpc_(a_router_, a_rt_),
          b_rpc_(b_router_, b_rt_) {
        b_rt_.register_type(
            TypeInfo::Builder("Greeter")
                .method("greet", TypeKind::kStr, {{"who", TypeKind::kStr}},
                        [](ServiceObject&, List& args) -> Value {
                            return Value{"hello " + args[0].as_str()};
                        })
                .method("deny", TypeKind::kVoid, {},
                        [](ServiceObject&, List&) -> Value {
                            throw AccessDenied("not allowed");
                        })
                .method("whoami", TypeKind::kStr, {},
                        [this](ServiceObject&, List&) -> Value {
                            NodeId caller = b_rpc_.current_caller();
                            return Value{net_.name_of(caller)};
                        })
                .build());
        obj_ = b_rt_.create("Greeter", "greeter");
        b_rpc_.export_object("greeter");
    }

    sim::Simulator sim_;
    net::Network net_;
    NodeId a_id_, b_id_;
    net::MessageRouter a_router_, b_router_;
    Runtime a_rt_, b_rt_;
    RpcEndpoint a_rpc_, b_rpc_;
    std::shared_ptr<ServiceObject> obj_;
};

TEST_F(RpcTest, RoundTrip) {
    Value result = a_rpc_.call_sync(b_id_, "greeter", "greet", {Value{"world"}});
    EXPECT_EQ(result.as_str(), "hello world");
}

TEST_F(RpcTest, RemoteAccessDeniedPropagates) {
    EXPECT_THROW(a_rpc_.call_sync(b_id_, "greeter", "deny", {}), AccessDenied);
}

TEST_F(RpcTest, RemoteTypeErrorPropagates) {
    EXPECT_THROW(a_rpc_.call_sync(b_id_, "greeter", "greet", {Value{42}}), TypeError);
    EXPECT_THROW(a_rpc_.call_sync(b_id_, "greeter", "missing_method", {}), TypeError);
}

TEST_F(RpcTest, UnexportedObjectRejected) {
    b_rt_.create("Greeter", "hidden");
    EXPECT_THROW(a_rpc_.call_sync(b_id_, "hidden", "greet", {Value{"x"}}), RemoteError);
}

TEST_F(RpcTest, UnexportStopsAccess) {
    b_rpc_.unexport_object("greeter");
    EXPECT_THROW(a_rpc_.call_sync(b_id_, "greeter", "greet", {Value{"x"}}), RemoteError);
}

TEST_F(RpcTest, CallerIdentityVisible) {
    EXPECT_EQ(a_rpc_.call_sync(b_id_, "greeter", "whoami", {}).as_str(), "client");
}

TEST_F(RpcTest, CallerIdentityClearedAfterDispatch) {
    a_rpc_.call_sync(b_id_, "greeter", "greet", {Value{"x"}});
    EXPECT_FALSE(b_rpc_.current_caller().valid());
}

TEST_F(RpcTest, OutOfRangeFailsFast) {
    net_.move_node(b_id_, {1000, 0});
    bool done = false;
    std::exception_ptr error;
    a_rpc_.call_async(b_id_, "greeter", "greet", {Value{"x"}},
                      [&](Value, std::exception_ptr e) {
                          done = true;
                          error = e;
                      });
    sim_.run();
    ASSERT_TRUE(done);
    ASSERT_TRUE(error);
    EXPECT_THROW(std::rethrow_exception(error), RemoteError);
    // Fail-fast, not timeout: virtual time stayed near zero.
    EXPECT_LT(sim_.now(), SimTime::zero() + milliseconds(100));
}

TEST_F(RpcTest, TimeoutWhenReplyNeverComes) {
    // The server moves away after receiving the call, so the reply is lost.
    b_rt_.register_type(TypeInfo::Builder("Mover")
                            .method("vanish", TypeKind::kVoid, {},
                                    [this](ServiceObject&, List&) -> Value {
                                        net_.move_node(b_id_, {1000, 0});
                                        return Value{};
                                    })
                            .build());
    b_rt_.create("Mover", "mover");
    b_rpc_.export_object("mover");

    bool done = false;
    std::exception_ptr error;
    a_rpc_.call_async(
        b_id_, "mover", "vanish", {},
        [&](Value, std::exception_ptr e) {
            done = true;
            error = e;
        },
        milliseconds(200));
    sim_.run();
    ASSERT_TRUE(done);
    ASSERT_TRUE(error);
    EXPECT_THROW(std::rethrow_exception(error), RemoteError);
}

TEST_F(RpcTest, TransportRetriesOutliveAPartition) {
    // The link is cut for the first 1.2 seconds; a call armed with retries
    // keeps re-issuing (with doubling backoff) until the heal lets one
    // attempt through.
    net::FaultPlan plan;
    plan.partitions.push_back(net::PartitionWindow{
        SimTime::zero(), SimTime::zero() + milliseconds(1200), {a_id_}, {b_id_}});
    net_.set_fault_plan(plan, 3);

    bool done = false;
    Value out;
    std::exception_ptr error;
    CallOptions opts;
    opts.timeout = milliseconds(300);
    opts.retries = 6;
    opts.retry_backoff = milliseconds(100);
    a_rpc_.call_async(b_id_, "greeter", "greet", {Value{"world"}}, opts,
                      [&](Value r, std::exception_ptr e) {
                          done = true;
                          out = std::move(r);
                          error = e;
                      });
    sim_.run();
    ASSERT_TRUE(done);
    ASSERT_FALSE(error);
    EXPECT_EQ(out.as_str(), "hello world");
}

TEST_F(RpcTest, RemoteErrorsAreNeverRetried) {
    obs::Counter& calls_sent = obs::Registry::global().counter("rpc.calls_sent");
    std::uint64_t before = calls_sent.value();
    CallOptions opts;
    opts.retries = 5;
    bool done = false;
    std::exception_ptr error;
    a_rpc_.call_async(b_id_, "greeter", "deny", {}, opts,
                      [&](Value, std::exception_ptr e) {
                          done = true;
                          error = e;
                      });
    sim_.run();
    ASSERT_TRUE(done);
    ASSERT_TRUE(error);
    EXPECT_THROW(std::rethrow_exception(error), AccessDenied);
    // An error reply is the call's answer: exactly one attempt on the air.
    EXPECT_EQ(calls_sent.value() - before, 1u);
}

TEST_F(RpcTest, RetriesGiveUpAfterBudget) {
    net_.move_node(b_id_, {1000, 0});
    bool done = false;
    std::exception_ptr error;
    CallOptions opts;
    opts.retries = 3;
    opts.retry_backoff = milliseconds(10);
    a_rpc_.call_async(b_id_, "greeter", "greet", {Value{"x"}}, opts,
                      [&](Value, std::exception_ptr e) {
                          done = true;
                          error = e;
                      });
    sim_.run();
    ASSERT_TRUE(done);
    ASSERT_TRUE(error);
    EXPECT_THROW(std::rethrow_exception(error), RemoteError);
}

TEST_F(RpcTest, DuplicatedCallExecutesExactlyOnce) {
    // The radio duplicates every frame; the reply cache must absorb the
    // second copy of each call instead of re-dispatching it.
    int executions = 0;
    b_rt_.register_type(TypeInfo::Builder("Ledger")
                            .method("bump", TypeKind::kInt, {},
                                    [&executions](ServiceObject&, List&) -> Value {
                                        return Value{static_cast<std::int64_t>(++executions)};
                                    })
                            .build());
    b_rt_.create("Ledger", "ledger");
    b_rpc_.export_object("ledger");

    net::FaultPlan plan;
    plan.duplicate = 1.0;
    net_.set_fault_plan(plan, 3);

    obs::Counter& dup_calls = obs::Registry::global().counter("rpc.dup_calls");
    std::uint64_t dups_before = dup_calls.value();
    Value r = a_rpc_.call_sync(b_id_, "ledger", "bump", {});
    EXPECT_EQ(r.as_int(), 1);
    EXPECT_EQ(executions, 1);
    EXPECT_EQ(dup_calls.value() - dups_before, 1u);
}

TEST_F(RpcTest, NonErrorExceptionBecomesErrorReply) {
    b_rt_.register_type(TypeInfo::Builder("Buggy")
                            .method("crash", TypeKind::kVoid, {},
                                    [](ServiceObject&, List&) -> Value {
                                        throw std::runtime_error("not an Error subclass");
                                    })
                            .build());
    b_rt_.create("Buggy", "buggy");
    b_rpc_.export_object("buggy");
    // The caller gets a proper remote error instead of the server's
    // simulator loop unwinding.
    EXPECT_THROW(a_rpc_.call_sync(b_id_, "buggy", "crash", {}), Error);
}

TEST_F(RpcTest, HooksFireForRemoteCalls) {
    // Weave an entry hook on the server; a remote call must trigger it —
    // this is what makes MIDAS extensions transparent to remote clients.
    int fired = 0;
    obj_->type().method("greet")->add_entry_hook(1, 0, [&](CallFrame& f) {
        ++fired;
        f.args[0] = Value{"intercepted"};
    });
    Value result = a_rpc_.call_sync(b_id_, "greeter", "greet", {Value{"world"}});
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(result.as_str(), "hello intercepted");
}

namespace {
/// Toy cipher filter pair for the tests.
RpcEndpoint::WireFilter xor_filter(std::uint8_t key) {
    return [key](Bytes data) {
        for (auto& b : data) b ^= key;
        return data;
    };
}
}  // namespace

TEST_F(RpcTest, WireFiltersRoundTripWhenBothEndsMatch) {
    a_rpc_.add_wire_filter(1, 0, xor_filter(0x5A), xor_filter(0x5A));
    b_rpc_.add_wire_filter(1, 0, xor_filter(0x5A), xor_filter(0x5A));
    Value r = a_rpc_.call_sync(b_id_, "greeter", "greet", {Value{"world"}});
    EXPECT_EQ(r.as_str(), "hello world");
}

TEST_F(RpcTest, WireFiltersActuallyTransformTheAir) {
    // Capture what the radio carries: it must not contain the plaintext.
    std::string on_air;
    net_.set_handler(b_id_, [&](const net::Message& m) {
        on_air = to_string(std::span<const std::uint8_t>(m.payload));
    });
    a_rpc_.add_wire_filter(1, 0, xor_filter(0x5A), xor_filter(0x5A));
    a_rpc_.call_async(b_id_, "greeter", "greet", {Value{"world"}},
                      [](Value, std::exception_ptr) {});
    sim_.run();
    EXPECT_EQ(on_air.find("world"), std::string::npos);
    EXPECT_EQ(on_air.find("greet"), std::string::npos);
}

TEST_F(RpcTest, OneSidedFilterBreaksCommunicationGracefully) {
    // Only the client encrypts: the server drops the garbled call and the
    // client times out — no crash, no partial execution.
    a_rpc_.add_wire_filter(1, 0, xor_filter(0x5A), xor_filter(0x5A));
    bool done = false;
    std::exception_ptr error;
    a_rpc_.call_async(
        b_id_, "greeter", "greet", {Value{"x"}},
        [&](Value, std::exception_ptr e) {
            done = true;
            error = e;
        },
        milliseconds(300));
    sim_.run();
    ASSERT_TRUE(done);
    ASSERT_TRUE(error);
    EXPECT_THROW(std::rethrow_exception(error), RemoteError);
}

TEST_F(RpcTest, FilterRemovalRestoresPlainWire) {
    a_rpc_.add_wire_filter(7, 0, xor_filter(0x11), xor_filter(0x11));
    b_rpc_.add_wire_filter(7, 0, xor_filter(0x11), xor_filter(0x11));
    a_rpc_.call_sync(b_id_, "greeter", "greet", {Value{"x"}});
    EXPECT_TRUE(a_rpc_.remove_wire_filters(7));
    EXPECT_TRUE(b_rpc_.remove_wire_filters(7));
    EXPECT_EQ(a_rpc_.wire_filter_count(), 0u);
    Value r = a_rpc_.call_sync(b_id_, "greeter", "greet", {Value{"y"}});
    EXPECT_EQ(r.as_str(), "hello y");
    EXPECT_FALSE(a_rpc_.remove_wire_filters(7));
}

TEST_F(RpcTest, StackedFiltersComposeInPriorityOrder) {
    // Outbound applies low->high priority; inbound undoes high->low. An
    // add-then-xor stack only decodes if the order is honoured.
    auto add_one_out = [](Bytes d) {
        for (auto& b : d) b = static_cast<std::uint8_t>(b + 1);
        return d;
    };
    auto add_one_in = [](Bytes d) {
        for (auto& b : d) b = static_cast<std::uint8_t>(b - 1);
        return d;
    };
    for (auto* rpc : {&a_rpc_, &b_rpc_}) {
        rpc->add_wire_filter(1, 0, add_one_out, add_one_in);
        rpc->add_wire_filter(2, 10, xor_filter(0xA7), xor_filter(0xA7));
    }
    Value r = a_rpc_.call_sync(b_id_, "greeter", "greet", {Value{"stack"}});
    EXPECT_EQ(r.as_str(), "hello stack");
}

TEST_F(RpcTest, ControlKindCannotBypassFiltersToAppObjects) {
    // Both ends filtered; "greeter" is an application object. A peer that
    // marks it exempt locally (i.e. forges the control kind on the wire)
    // must not reach it: the server enforces exemption on its own list.
    a_rpc_.add_wire_filter(1, 0, xor_filter(0x5A), xor_filter(0x5A));
    b_rpc_.add_wire_filter(1, 0, xor_filter(0x5A), xor_filter(0x5A));
    a_rpc_.exempt_from_filters("greeter");  // client-side forgery
    EXPECT_THROW(a_rpc_.call_sync(b_id_, "greeter", "greet", {Value{"x"}}), AccessDenied);
}

TEST_F(RpcTest, ExemptObjectsWorkAcrossFilterMismatch) {
    // Only the server filters its application traffic; an exempt control
    // object stays reachable regardless.
    b_rpc_.add_wire_filter(1, 0, xor_filter(0x5A), xor_filter(0x5A));
    b_rpc_.exempt_from_filters("greeter");
    a_rpc_.exempt_from_filters("greeter");
    Value r = a_rpc_.call_sync(b_id_, "greeter", "greet", {Value{"ctl"}});
    EXPECT_EQ(r.as_str(), "hello ctl");
}

TEST_F(RpcTest, ExemptionMatchesByPrefix) {
    a_rpc_.exempt_from_filters("disco.listener:");
    EXPECT_TRUE(a_rpc_.is_exempt("disco.listener:42"));
    EXPECT_FALSE(a_rpc_.is_exempt("disco"));
    EXPECT_FALSE(a_rpc_.is_exempt("other"));
}

TEST_F(RpcTest, ConcurrentCallsCorrelate) {
    std::vector<std::string> results(3);
    int done = 0;
    for (int i = 0; i < 3; ++i) {
        a_rpc_.call_async(b_id_, "greeter", "greet", {Value{std::to_string(i)}},
                          [&, i](Value v, std::exception_ptr e) {
                              ASSERT_FALSE(e);
                              results[i] = v.as_str();
                              ++done;
                          });
    }
    sim_.run();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(results[0], "hello 0");
    EXPECT_EQ(results[2], "hello 2");
}

}  // namespace
}  // namespace pmp::rt
