// Federation-scale machinery: consistent-hash sharded discovery with live
// lease migration, the deterministic renewal jitter, and the cell-level
// batched lease protocol (one delta-encoded frame per cell per period; see
// midas/cell.h and docs/federation.md). The batched path carries the same
// promises as the direct one — healthy nodes never lose a lease, breaker /
// epoch / failure-ledger semantics are unchanged — and a chaos band checks
// them under dropped, duplicated and reordered frames across many seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/hash.h"
#include "disco/shard.h"
#include "midas/node.h"
#include "net/fault.h"
#include "obs/metrics.h"

namespace pmp::midas {
namespace {

using rt::Value;

ExtensionPackage policy_pkg(const std::string& name,
                            const std::string& body = "fun onEntry() { }") {
    ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = body;
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

std::uint64_t counter_now(const std::string& name, const std::string& label = "") {
    return obs::Registry::global().counter(name, label).value();
}

// ------------------------------------------------------------ hash ring ----

TEST(HashRing, OwnershipIsDeterministicAndCoversAllShards) {
    disco::HashRing a;
    a.add("s0", NodeId{10});
    a.add("s1", NodeId{11});
    a.add("s2", NodeId{12});
    a.add("s3", NodeId{13});

    // Same membership added in another order: identical owners — every
    // party that knows the ring routes identically with no coordination.
    disco::HashRing b;
    b.add("s3", NodeId{13});
    b.add("s1", NodeId{11});
    b.add("s0", NodeId{10});
    b.add("s2", NodeId{12});

    std::set<std::uint64_t> owners_seen;
    for (int i = 0; i < 256; ++i) {
        std::string key = "service/type/" + std::to_string(i);
        NodeId owner = a.owner(key);
        EXPECT_EQ(owner, b.owner(key)) << key;
        ASSERT_NE(owner.value, 0u) << key;
        owners_seen.insert(owner.value);
        const std::string* shard = a.owner_shard(key);
        ASSERT_NE(shard, nullptr);
        EXPECT_EQ(a.node_of(*shard), owner);
    }
    // 64 vnodes per shard spread 256 keys over every shard.
    EXPECT_EQ(owners_seen.size(), 4u);
}

TEST(HashRing, JoinMovesOnlyKeysBoundForTheNewShard) {
    disco::HashRing ring;
    ring.add("s0", NodeId{10});
    ring.add("s1", NodeId{11});
    ring.add("s2", NodeId{12});
    ring.add("s3", NodeId{13});

    std::map<std::string, NodeId> before;
    for (int i = 0; i < 512; ++i) {
        std::string key = "k" + std::to_string(i);
        before[key] = ring.owner(key);
    }
    ring.add("s4", NodeId{14});

    std::size_t moved = 0;
    for (const auto& [key, old_owner] : before) {
        NodeId now = ring.owner(key);
        if (now != old_owner) {
            ++moved;
            // Consistent hashing's defining property: a join only pulls
            // keys toward the joiner; no key moves between old shards.
            EXPECT_EQ(now, NodeId{14}) << key;
        }
    }
    EXPECT_GT(moved, 0u);
    EXPECT_LT(moved, 512u / 2);  // ~1/5 expected; far from full reshuffle

    ring.remove("s4");
    for (const auto& [key, old_owner] : before) {
        EXPECT_EQ(ring.owner(key), old_owner) << key;
    }
}

// ------------------------------------------------------- renewal jitter ----

TEST(RenewalJitter, SpreadIsBoundedDeterministicAndWide) {
    const Duration lease = seconds(2);
    const std::int64_t lo = lease.count() * 3 / 8;
    const std::int64_t hi = lease.count() * 5 / 8;
    std::set<std::int64_t> phases;
    std::int64_t min_seen = lease.count();
    std::int64_t max_seen = 0;
    for (std::uint64_t l = 1; l <= 256; ++l) {
        Duration p = disco::lease_renewal_phase(NodeId{42}, LeaseId{l}, lease);
        // Replay-stable: the phase is a pure function of (registrar, lease).
        EXPECT_EQ(p, disco::lease_renewal_phase(NodeId{42}, LeaseId{l}, lease));
        // Bounded: worst case (renew at 5/8·d, lost and timed out at
        // 7/8·d, retried d/16 later) still lands at 15/16·d, inside the
        // lease.
        EXPECT_GE(p.count(), lo) << "lease " << l;
        EXPECT_LE(p.count(), hi) << "lease " << l;
        phases.insert(p.count());
        min_seen = std::min(min_seen, p.count());
        max_seen = std::max(max_seen, p.count());
    }
    // The regression this guards: 256 leases granted in the same instant
    // must NOT renew in the same instant forever (the pre-fix behavior —
    // every phase was exactly duration/2, one thundering herd per period).
    EXPECT_GT(phases.size(), 64u);
    EXPECT_LT(min_seen, lease.count() / 2 - lease.count() / 16);
    EXPECT_GT(max_seen, lease.count() / 2 + lease.count() / 16);
}

TEST(RenewalJitter, LostRenewRetriesPromptlyInsideTheLease) {
    // One registrar, one client, 16 leases with first-renewal phases
    // spread over [3/8·d, 5/8·d] (d = 2 s). A 660 ms partition swallows
    // every first renewal — each fails fast with *unreachable* (the
    // network refuses the send), so the lease still has over half its
    // life left when the failure lands. The holder must keep retrying on
    // the d/16 cadence until the granted budget is gone: the window lifts
    // well before any lease expires, so every one must recover. The
    // regression this guards is the old fixed single retry, which landed
    // back inside the partition and tore down all 16 leases over a blip
    // a third the length of the lease.
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 808);
    NodeStack host(net, "reg", net::Position{0, 0}, 200.0);
    disco::Registrar registrar(host.router(), host.rpc());
    NodeStack client(net, "client", net::Position{10, 0}, 200.0);
    sim.run_for(seconds(1));

    int registered = 0;
    int lost = 0;
    std::vector<std::shared_ptr<disco::LeasedResource>> handles;
    SimTime t_issue = sim.now();
    for (int i = 0; i < 16; ++i) {
        client.discovery().register_service(
            host.id(), "svc/" + std::to_string(i), rt::Dict{}, [&lost] { ++lost; },
            [&](std::shared_ptr<disco::LeasedResource> h, std::exception_ptr e) {
                ASSERT_FALSE(e);
                handles.push_back(std::move(h));
                ++registered;
            });
    }
    SimTime deadline = sim.now() + seconds(2);
    while (sim.now() < deadline && registered < 16) {
        sim.run_until(sim.now() + milliseconds(10));
    }
    ASSERT_EQ(registered, 16);
    // The window math below assumes all grants happened within this slop.
    ASSERT_LT(sim.now() - t_issue, milliseconds(100));

    // First renewals fire in [750 ms, 1250 ms] after each grant. Black out
    // the registrar across that whole band; every lease's expiry (grant +
    // 2 s) falls safely after the window lifts, so the retry loop always
    // gets at least one attempt on a healed network.
    net::FaultPlan plan;
    plan.partitions.push_back(net::PartitionWindow{
        t_issue + milliseconds(700), t_issue + milliseconds(1360), {host.id()}, {}});
    net.set_fault_plan(plan, 1);

    sim.run_for(seconds(4));  // two lease lifetimes
    EXPECT_EQ(lost, 0);
    for (auto& h : handles) EXPECT_TRUE(h->alive());
    EXPECT_EQ(registrar.registration_count(), 16u);
}

// --------------------------------------------- sharded discovery (live) ----

/// Three registrar hosts plus one client, all in mutual radio range. The
/// client routes by key through a ShardedLookup instead of picking one
/// registrar.
struct ShardWorld {
    sim::Simulator sim;
    net::Network net;
    std::vector<std::unique_ptr<NodeStack>> hosts;
    std::vector<std::unique_ptr<disco::Registrar>> registrars;
    std::unique_ptr<NodeStack> client;
    std::unique_ptr<disco::ShardedLookup> route;

    explicit ShardWorld(std::uint64_t seed, int shards = 3)
        : net(sim, net::NetworkConfig{}, seed) {
        for (int i = 0; i < shards; ++i) {
            auto host = std::make_unique<NodeStack>(
                net, "shard" + std::to_string(i), net::Position{double(i) * 10, 0}, 200.0);
            registrars.push_back(
                std::make_unique<disco::Registrar>(host->router(), host->rpc()));
            hosts.push_back(std::move(host));
        }
        client = std::make_unique<NodeStack>(net, "client", net::Position{5, 5}, 200.0);
        route = std::make_unique<disco::ShardedLookup>(client->discovery());
        for (int i = 0; i < shards; ++i) {
            route->ring().add("shard" + std::to_string(i), hosts[i]->id());
        }
        sim.run_for(seconds(1));  // beacons out, registrars discovered
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(30)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(50));
        }
        return pred();
    }
};

TEST(ShardedDiscovery, RegistrationsAndLookupsRouteToTheOwningShard) {
    ShardWorld w(101);
    std::vector<std::string> types;
    for (int i = 0; i < 12; ++i) types.push_back("svc/type" + std::to_string(i));

    int registered = 0;
    std::vector<std::shared_ptr<disco::LeasedResource>> handles;
    for (const std::string& type : types) {
        w.route->register_service(
            type, rt::Dict{{"node", Value{"client"}}}, /*on_lost=*/[] {},
            [&](std::shared_ptr<disco::LeasedResource> h, std::exception_ptr e) {
                ASSERT_FALSE(e);
                handles.push_back(std::move(h));
                ++registered;
            });
    }
    ASSERT_TRUE(w.run_until([&] { return registered == 12; }));

    // Each registration physically lives on the shard the ring names as
    // the key's owner — and on no other.
    for (const std::string& type : types) {
        NodeId owner = w.route->registrar_for(type);
        for (std::size_t i = 0; i < w.hosts.size(); ++i) {
            std::size_t n = w.registrars[i]->lookup(type).size();
            EXPECT_EQ(n, w.hosts[i]->id() == owner ? 1u : 0u)
                << type << " on shard" << i;
        }
    }

    // Routed lookup finds every one of them.
    int found = 0;
    for (const std::string& type : types) {
        w.route->lookup(type, [&](std::vector<disco::ServiceItem> items,
                                  std::exception_ptr e) {
            ASSERT_FALSE(e);
            ASSERT_EQ(items.size(), 1u);
            EXPECT_EQ(items[0].type, *std::find(types.begin(), types.end(), items[0].type));
            ++found;
        });
    }
    ASSERT_TRUE(w.run_until([&] { return found == 12; }));
}

TEST(ShardedDiscovery, RebalanceMigratesLeasesAndRenewalsFollowTheMove) {
    // Start with a 2-shard ring; the third registrar exists but owns
    // nothing yet.
    ShardWorld w(202);
    w.route->ring().remove("shard2");

    int registered = 0;
    int lost = 0;
    std::vector<std::shared_ptr<disco::LeasedResource>> handles;
    for (int i = 0; i < 16; ++i) {
        w.route->register_service(
            "svc/type" + std::to_string(i), rt::Dict{{"node", Value{"client"}}},
            /*on_lost=*/[&] { ++lost; },
            [&](std::shared_ptr<disco::LeasedResource> h, std::exception_ptr e) {
                ASSERT_FALSE(e);
                handles.push_back(std::move(h));
                ++registered;
            });
    }
    ASSERT_TRUE(w.run_until([&] { return registered == 16; }));
    std::size_t on01 =
        w.registrars[0]->registration_count() + w.registrars[1]->registration_count();
    ASSERT_EQ(on01, 16u);

    // shard2 joins: both old homes rebalance against the new ring and ship
    // every lease whose key now hashes to shard2 — one batched RPC per
    // target, remaining lease durations intact.
    w.route->ring().add("shard2", w.hosts[2]->id());
    w.registrars[0]->rebalance(w.route->ring());
    w.registrars[1]->rebalance(w.route->ring());
    ASSERT_TRUE(w.run_until([&] {
        return w.registrars[2]->registration_count() > 0 &&
               w.registrars[0]->shard_stats().migrated_out +
                       w.registrars[1]->shard_stats().migrated_out ==
                   w.registrars[2]->shard_stats().migrated_in;
    }));
    std::uint64_t migrated = w.registrars[2]->shard_stats().migrated_in;
    EXPECT_GT(migrated, 0u);
    // Nothing was lost in transit: every registration still lives somewhere.
    EXPECT_EQ(w.registrars[0]->registration_count() +
                  w.registrars[1]->registration_count() +
                  w.registrars[2]->registration_count(),
              16u);
    // And it landed where the ring says it belongs.
    for (int i = 0; i < 16; ++i) {
        std::string type = "svc/type" + std::to_string(i);
        NodeId owner = w.route->registrar_for(type);
        for (std::size_t s = 0; s < w.hosts.size(); ++s) {
            EXPECT_EQ(w.registrars[s]->lookup(type).size(),
                      w.hosts[s]->id() == owner ? 1u : 0u)
                << type << " on shard" << s;
        }
    }

    // The clients were never told. Their next renewal against the old home
    // is answered with a forward (moved_redirects), the LeasedResource
    // re-homes itself, and several lease lifetimes later nothing has
    // lapsed: no renewal is ever silently dropped by a move.
    w.sim.run_for(seconds(6));  // 3 lease durations (default 2s, renew at ~1s)
    EXPECT_EQ(lost, 0);
    EXPECT_GT(w.registrars[0]->shard_stats().moved_redirects +
                  w.registrars[1]->shard_stats().moved_redirects,
              0u);
    EXPECT_EQ(w.registrars[0]->registration_count() +
                  w.registrars[1]->registration_count() +
                  w.registrars[2]->registration_count(),
              16u);
    for (auto& h : handles) EXPECT_TRUE(h->alive());
}

TEST(ShardedDiscovery, RebalanceMigratesWatchesAndEventsFollowTheMove) {
    // Start with a 2-shard ring; shard2 joins later.
    ShardWorld w(505);
    w.route->ring().remove("shard2");

    const int kTypes = 12;
    std::map<std::string, int> appeared;
    int watching = 0;
    int lost = 0;
    std::vector<std::shared_ptr<disco::LeasedResource>> watch_handles;
    for (int i = 0; i < kTypes; ++i) {
        std::string type = "svc/type" + std::to_string(i);
        w.route->watch(
            type,
            [&appeared, type](const disco::ServiceItem&, bool is_appear) {
                if (is_appear) ++appeared[type];
            },
            /*on_lost=*/[&lost] { ++lost; },
            [&](std::shared_ptr<disco::LeasedResource> h, std::exception_ptr e) {
                ASSERT_FALSE(e);
                watch_handles.push_back(std::move(h));
                ++watching;
            });
    }
    ASSERT_TRUE(w.run_until([&] { return watching == kTypes; }));

    // shard2 joins and the old homes rebalance: the remote watches whose
    // type now hashes to shard2 must follow the registrations there. The
    // regression this guards: a watch left on the old owner keeps renewing
    // successfully — do_renew still finds it — yet new registrations of
    // its type route to the new owner, so it silently never fires again.
    w.route->ring().add("shard2", w.hosts[2]->id());
    w.registrars[0]->rebalance(w.route->ring());
    w.registrars[1]->rebalance(w.route->ring());
    ASSERT_TRUE(w.run_until([&] {
        return w.registrars[2]->shard_stats().watches_migrated_in > 0 &&
               w.registrars[0]->shard_stats().watches_migrated_out +
                       w.registrars[1]->shard_stats().watches_migrated_out ==
                   w.registrars[2]->shard_stats().watches_migrated_in;
    }));

    // Services of every type register through the new ring; every watcher
    // must hear of its type appearing, wherever its watch now lives.
    int registered = 0;
    std::vector<std::shared_ptr<disco::LeasedResource>> reg_handles;
    for (int i = 0; i < kTypes; ++i) {
        w.route->register_service(
            "svc/type" + std::to_string(i), rt::Dict{{"node", Value{"client"}}},
            /*on_lost=*/[] {},
            [&](std::shared_ptr<disco::LeasedResource> h, std::exception_ptr e) {
                ASSERT_FALSE(e);
                reg_handles.push_back(std::move(h));
                ++registered;
            });
    }
    ASSERT_TRUE(w.run_until([&] { return registered == kTypes; }));
    ASSERT_TRUE(w.run_until([&] {
        for (int i = 0; i < kTypes; ++i) {
            if (appeared["svc/type" + std::to_string(i)] < 1) return false;
        }
        return true;
    }));

    // The watchers were never told about the move. Their renewals against
    // the old home follow the moved forwarding entry exactly like service
    // leases, and several lease lifetimes later nothing has lapsed.
    w.sim.run_for(seconds(6));
    EXPECT_EQ(lost, 0);
    for (auto& h : watch_handles) EXPECT_TRUE(h->alive());
}

// -------------------------------------------------- receiver LRU caches ----

TEST(ReceiverCaches, CompileCacheIsBoundedAndEvictionsAreCounted) {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 7);
    BaseConfig bc;
    bc.issuer = "hall";
    BaseStation hall(net, "hall", net::Position{0, 0}, 120.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));

    ReceiverConfig rc;
    rc.compile_cache_cap = 2;
    rc.pointcut_cache_cap = 2;
    MobileNode robot(net, "robot", net::Position{10, 0}, 120.0, rc);
    robot.trust().trust("hall", to_bytes("k"));

    const std::uint64_t evictions0 =
        counter_now("midas.receiver.cache_evictions", "robot");

    // Five distinct scripts -> five distinct compile-cache entries wanted;
    // a cap of 2 must evict at least three, and the counter must say so.
    for (int i = 0; i < 5; ++i) {
        hall.base().add_extension(
            policy_pkg("hall/p" + std::to_string(i),
                       "fun onEntry() { let x = " + std::to_string(i) + "; }"));
    }
    SimTime deadline = sim.now() + seconds(20);
    while (sim.now() < deadline && robot.receiver().installed_count() < 5) {
        sim.run_until(sim.now() + milliseconds(100));
    }
    ASSERT_EQ(robot.receiver().installed_count(), 5u);

    EXPECT_LE(robot.receiver().compile_cache_size(), 2u);
    EXPECT_LE(robot.receiver().pointcut_cache_size(), 2u);
    EXPECT_GE(counter_now("midas.receiver.cache_evictions", "robot") - evictions0, 3u);

    // The caches are an optimization, not a correctness device: everything
    // still installed and stays alive past a lease lifetime.
    sim.run_for(seconds(3));
    EXPECT_EQ(robot.receiver().installed_count(), 5u);
    EXPECT_EQ(robot.receiver().stats().expirations, 0u);
}

// ------------------------------------------------- batched cell protocol ----

/// A far-away base, a cell anchor (registrar + relay) on the backhaul, and
/// `n` nodes that can reach only the cell anchor: base <-> anchor at
/// distance 100, nodes clustered past x=130 with 60 m radios. Everything
/// the base learns about the cell and everything it keeps alive flows
/// through one batch frame per period.
struct CellWorld {
    sim::Simulator sim;
    net::Network net;
    std::unique_ptr<BaseStation> hub;
    std::unique_ptr<CellStation> anchor;
    std::vector<std::unique_ptr<MobileNode>> nodes;

    explicit CellWorld(std::uint64_t seed, int n, BaseConfig bc = make_config())
        : net(sim, net::NetworkConfig{}, seed) {
        hub = std::make_unique<BaseStation>(net, "hub", net::Position{0, 0}, 120.0, bc);
        hub->keys().add_key("hub", to_bytes("hk"));
        anchor = std::make_unique<CellStation>(net, "cell-east",
                                               net::Position{100, 0}, 120.0);
        ReceiverConfig rc;
        rc.cell = "cell-east";
        for (int i = 0; i < n; ++i) {
            net::Position pos{130.0 + 5.0 * (i % 6), 5.0 * (i / 6)};
            auto node = std::make_unique<MobileNode>(
                net, "n" + std::to_string(i), pos, 60.0, rc);
            node->trust().trust("hub", to_bytes("hk"));
            nodes.push_back(std::move(node));
        }
        hub->base().attach_cell("cell-east", anchor->id());
        hub->base().add_extension(policy_pkg("hub/policy"));
    }

    static BaseConfig make_config() {
        BaseConfig bc;
        bc.issuer = "hub";
        // Room for a couple of lost rounds before anything lapses — the
        // relay link is a backhaul, not a radio whisper.
        bc.extension_lease = seconds(4);
        bc.max_keepalive_failures = 4;
        return bc;
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(30)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }

    bool converged() {
        for (auto& n : nodes) {
            if (n->receiver().installed_count() != 1) return false;
        }
        return true;
    }

    std::uint64_t expirations() {
        std::uint64_t total = 0;
        for (auto& n : nodes) total += n->receiver().stats().expirations;
        return total;
    }
};

TEST(CellBatch, OneFrameAndOneBlobPerPeriodAdaptsAWholeCell) {
    const int kNodes = 8;
    CellWorld w(303, kNodes);
    // The base never hears the nodes directly (they are out of its radio
    // range); membership arrives as join records through the relay, and
    // every install flows through the batch path.
    ASSERT_TRUE(w.run_until([&] { return w.converged(); }));
    EXPECT_EQ(w.hub->base().adapted_count(), static_cast<std::size_t>(kNodes));
    // The reply to frame N carries the results collected since frame N-1:
    // give the pipeline one more period to surface the install statuses.
    ASSERT_TRUE(w.run_until([&] {
        return w.hub->base().cell_stats("cell-east").statuses >=
               static_cast<std::uint64_t>(kNodes);
    }));

    ExtensionBase::CellStats cs = w.hub->base().cell_stats("cell-east");
    EXPECT_EQ(cs.joins, static_cast<std::uint64_t>(kNodes));
    // Content-hash policy sync: one policy, one blob on the wire — not one
    // per node.
    EXPECT_EQ(cs.blobs_sent, 1u);
    EXPECT_EQ(w.anchor->relay().roster_size(), static_cast<std::size_t>(kNodes));
    EXPECT_EQ(w.anchor->relay().cached_blobs(), 1u);

    // Steady state: frame cost per period is O(1) in the cell size. Over a
    // 4 s window (5 keep-alive periods at 800 ms) the base sends ~5 frames;
    // the direct path would have sent kNodes keep-alives per period.
    std::uint64_t frames0 = w.hub->base().cell_stats("cell-east").frames_sent;
    std::uint64_t fanout0 = w.anchor->relay().stats().fanout_calls;
    w.sim.run_for(seconds(4));
    std::uint64_t frames = w.hub->base().cell_stats("cell-east").frames_sent - frames0;
    std::uint64_t fanout = w.anchor->relay().stats().fanout_calls - fanout0;
    EXPECT_GE(frames, 4u);
    EXPECT_LE(frames, 7u);  // one per period, +slack for boundary ticks
    // The relay did the per-node work locally: ~kNodes keep-alives per
    // period left the anchor while ~1 frame per period crossed the backhaul.
    EXPECT_GE(fanout, frames * (kNodes - 1));
    // And nobody lapsed while batched keep-alives carried the cell.
    EXPECT_EQ(w.expirations(), 0u);
    EXPECT_EQ(w.hub->base().stats().nodes_dropped, 0u);

    // A policy change propagates through the same path: replacing the
    // package bumps the version, ships exactly one new blob to the cell,
    // and every node converges onto the replacement.
    std::uint64_t replaced0 = 0;
    for (auto& n : w.nodes) replaced0 += n->receiver().stats().replacements;
    w.hub->base().add_extension(policy_pkg("hub/policy", "fun onEntry() { let y = 1; }"));
    ASSERT_TRUE(w.run_until([&] {
        std::uint64_t replaced = 0;
        for (auto& n : w.nodes) replaced += n->receiver().stats().replacements;
        return replaced - replaced0 == kNodes;
    }));
    EXPECT_EQ(w.hub->base().cell_stats("cell-east").blobs_sent, 2u);
    EXPECT_EQ(w.expirations(), 0u);
}

TEST(CellBatch, RelayDeathDetachesTheCellAndNodesFallBackToDirect) {
    // Everything in mutual range this time: the nodes advertise to the
    // hub's registrar too (their advertisement carries attrs["cell"]), so
    // when the relay dies the direct per-node path can take over.
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 404);
    BaseConfig bc = CellWorld::make_config();
    // The fallback window must fit inside a lease: with the default
    // threshold the base detaches ~3 periods after the relay dies and the
    // very next tick renews directly, comfortably under a 5 s lease.
    bc.extension_lease = seconds(5);
    bc.max_keepalive_failures = 2;
    BaseStation hub(net, "hub", net::Position{0, 0}, 150.0, bc);
    hub.keys().add_key("hub", to_bytes("hk"));
    auto anchor = std::make_unique<CellStation>(net, "cell-east",
                                                net::Position{40, 0}, 150.0);
    ReceiverConfig rc;
    rc.cell = "cell-east";
    std::vector<std::unique_ptr<MobileNode>> nodes;
    for (int i = 0; i < 4; ++i) {
        auto node = std::make_unique<MobileNode>(
            net, "n" + std::to_string(i), net::Position{20.0 + 10 * i, 20}, 150.0, rc);
        node->trust().trust("hub", to_bytes("hk"));
        nodes.push_back(std::move(node));
    }
    hub.base().attach_cell("cell-east", anchor->id());
    hub.base().add_extension(policy_pkg("hub/policy"));

    auto run_until = [&](const std::function<bool()>& pred, Duration timeout) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    };
    auto converged = [&] {
        return std::all_of(nodes.begin(), nodes.end(), [](auto& n) {
            return n->receiver().installed_count() == 1;
        });
    };
    ASSERT_TRUE(run_until(converged, seconds(30)));
    // Batching is in effect.
    ASSERT_GT(hub.base().cell_stats("cell-east").frames_sent, 0u);

    // The anchor dies. Frames start failing; past max_keepalive_failures
    // consecutive failures the base detaches the cell and the members fall
    // back to direct keep-alives — without any node losing its lease
    // (frame failures say nothing about member health, so no failure
    // ledger moves).
    net.remove_node(anchor->id());
    ASSERT_TRUE(run_until(
        [&] { return hub.base().cell_stats("cell-east").frames_sent == 0; },
        seconds(15)));  // detached cells read back as zeros

    sim.run_for(seconds(8));  // two lease lifetimes on the direct path
    EXPECT_TRUE(converged());
    for (auto& n : nodes) {
        EXPECT_EQ(n->receiver().stats().expirations, 0u) << n->label();
    }
    EXPECT_EQ(hub.base().stats().nodes_dropped, 0u);
    EXPECT_EQ(hub.base().adapted_count(), 4u);
    // Direct keep-alives are flowing again (counted per (node, ext) per
    // period once the cell no longer swallows them into frames).
    std::uint64_t ka0 = hub.base().stats().keepalives_sent;
    sim.run_for(seconds(2));
    EXPECT_GT(hub.base().stats().keepalives_sent, ka0);
}

TEST(CellBatch, NeedBlobOnSyncedRosterForcesPutResendWithBlob) {
    // A scripted relay stands in for a real one so the protocol corner is
    // deterministic: the roster reaches full sync (no ops flowing), the
    // blob was delivered — and THEN the relay claims it lost its blob
    // cache (a restart), via a kNeedBlob status. Blobs only ride frames
    // next to put ops, so erasing relay_has alone is not enough: the base
    // must also un-sync the entries naming that hash, or no op is ever
    // generated again and the install stalls forever.
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 606);
    BaseConfig bc = CellWorld::make_config();
    BaseStation hub(net, "hub", net::Position{0, 0}, 200.0, bc);
    hub.keys().add_key("hub", to_bytes("hk"));
    NodeStack relayhost(net, "relayhost", net::Position{50, 0}, 200.0);
    NodeStack member(net, "m0", net::Position{60, 0}, 200.0);

    struct ScriptState {
        std::uint64_t member = 0;
        bool sent_join = false;
        bool blob_delivered = false;
        bool reported_need_blob = false;
        bool reblobbed = false;  // a frame carried the blob again after the report
    } script;
    script.member = member.id().value;

    auto& runtime = relayhost.rpc().runtime();
    auto type =
        rt::TypeInfo::Builder("ScriptedCellRelay")
            .method("batch", rt::TypeKind::kDict, {{"frame", rt::TypeKind::kDict}},
                    [&script](rt::ServiceObject&, rt::List& args) -> Value {
                        const rt::Dict& frame = args[0].as_dict();
                        std::int64_t seq = frame.at("seq").as_int();
                        bool has_ops = !frame.at("ops").as_list().empty();
                        bool has_blob = !frame.at("blobs").as_dict().empty();
                        if (has_blob) {
                            if (script.reported_need_blob) script.reblobbed = true;
                            script.blob_delivered = true;
                        }
                        rt::List statuses;
                        rt::List joins;
                        if (!script.sent_join) {
                            script.sent_join = true;
                            joins.push_back(Value{rt::Dict{
                                {"id", Value{std::int64_t{1}}},
                                {"node",
                                 Value{static_cast<std::int64_t>(script.member)}},
                                {"label", Value{std::string("m0")}}}});
                        } else if (script.blob_delivered && !has_ops &&
                                   !script.reported_need_blob) {
                            script.reported_need_blob = true;
                            statuses.push_back(Value{rt::Dict{
                                {"id", Value{std::int64_t{2}}},
                                {"node",
                                 Value{static_cast<std::int64_t>(script.member)}},
                                {"name", Value{std::string("hub/policy")}},
                                {"code",
                                 Value{std::int64_t{cellproto::kNeedBlob}}},
                                {"ext", Value{std::int64_t{0}}}}});
                        }
                        return Value{rt::Dict{
                            {"applied", Value{seq}},
                            {"resync", Value{false}},
                            {"bitmap_seq", Value{seq}},
                            {"ok", Value{Bytes{}}},
                            {"statuses", Value{std::move(statuses)}},
                            {"joins", Value{std::move(joins)}}}};
                    })
            .build();
    runtime.register_type(type);
    auto relay_object = runtime.create("ScriptedCellRelay", "midas.cell");
    relayhost.rpc().export_object("midas.cell");

    hub.base().attach_cell("cell-x", relayhost.id());
    hub.base().add_extension(policy_pkg("hub/policy"));

    SimTime deadline = sim.now() + seconds(20);
    while (sim.now() < deadline && !script.reblobbed) {
        sim.run_until(sim.now() + milliseconds(100));
    }
    EXPECT_TRUE(script.reported_need_blob);
    // The regression: without the un-sync, desired == synced after the
    // report, no frame ever carries an op again, and the blob never comes.
    EXPECT_TRUE(script.reblobbed);
}

TEST(CellBatch, ReattachToSurvivingRelayResyncsInOneRound) {
    // The relay outlives a detach/re-attach (e.g. a transient backhaul
    // partition makes the base give up on the cell, then re-adopt it).
    // The fresh CellState restarts at seq 0 while the relay still holds
    // its applied high-water mark — the base must adopt it from the first
    // resync reply. The regression: counting up one seq per period until
    // it passes the relay's mark, with no fan-out the whole time, which
    // outlasts the 4 s extension lease and expires every healthy member.
    CellWorld w(707, 6);
    ASSERT_TRUE(w.run_until([&] { return w.converged(); }));
    // Let the relay's applied_seq_ climb well past lease/period.
    w.sim.run_for(seconds(8));
    ASSERT_EQ(w.expirations(), 0u);
    std::uint64_t resyncs0 = w.anchor->relay().stats().resyncs;

    w.hub->base().detach_cell("cell-east");
    w.hub->base().attach_cell("cell-east", w.anchor->id());

    w.sim.run_for(seconds(6));
    EXPECT_TRUE(w.converged());
    EXPECT_EQ(w.expirations(), 0u);
    EXPECT_EQ(w.hub->base().stats().nodes_dropped, 0u);
    // Recovery cost one resync round (plus slack for a boundary tick),
    // not applied_seq_ rounds.
    EXPECT_LE(w.anchor->relay().stats().resyncs - resyncs0, 2u);
}

TEST(CellBatch, StaleFrameLeavesRelayEpochAndLeaseUntouched) {
    CellWorld w(808, 4);
    ASSERT_TRUE(w.run_until([&] { return w.converged(); }));
    std::uint64_t epoch0 = w.anchor->relay().epoch();
    std::int64_t lease0 = w.anchor->relay().lease_ms();
    ASSERT_GT(lease0, 0);
    std::uint64_t resyncs0 = w.anchor->relay().stats().resyncs;

    // A late-delivered old frame (possible when a timeout makes the base
    // pipeline a newer frame behind a delayed one): stale seq, a
    // rolled-back epoch and a poisonous 1 ms lease. It must be refused
    // with resync AND leave the relay's adopted epoch/lease untouched —
    // the regression assigned them before the staleness check, handing
    // the next fan-out round stale values for every receiver.
    rt::Dict frame{{"seq", Value{std::int64_t{1}}},
                   {"base", Value{std::int64_t{0}}},
                   {"epoch", Value{std::int64_t{4242}}},
                   {"lease_ms", Value{std::int64_t{1}}},
                   {"ack", Value{std::int64_t{0}}},
                   {"pause", Value{rt::List{}}},
                   {"ops", Value{rt::List{}}},
                   {"blobs", Value{rt::Dict{}}}};
    bool replied = false;
    bool resync = false;
    w.hub->rpc().call_async(w.anchor->id(), "midas.cell", "batch",
                            {Value{std::move(frame)}},
                            [&](Value result, std::exception_ptr error) {
                                ASSERT_FALSE(error);
                                replied = true;
                                resync = result.as_dict().at("resync").as_bool();
                            });
    ASSERT_TRUE(w.run_until([&] { return replied; }, seconds(5)));
    EXPECT_TRUE(resync);
    EXPECT_EQ(w.anchor->relay().stats().resyncs, resyncs0 + 1);
    EXPECT_EQ(w.anchor->relay().epoch(), epoch0);
    EXPECT_EQ(w.anchor->relay().lease_ms(), lease0);

    // And the cell rides on unharmed.
    w.sim.run_for(seconds(3));
    EXPECT_TRUE(w.converged());
    EXPECT_EQ(w.expirations(), 0u);
}

// -------------------------------------------------- batched-frame chaos ----

/// The CellWorld under a hostile backhaul and radio: loss, heavy
/// duplication, reordering, delay jitter, plus a scheduled 1.2 s blackout
/// of the hub (shorter than the extension lease). The protocol's promise:
/// no duplicated/reordered/replayed frame or reply ever double-applies a
/// renewal or counts a phantom failure — so across the whole band, zero
/// healthy-node expirations and zero drops.
struct CellChaosWorld : CellWorld {
    explicit CellChaosWorld(std::uint64_t seed, int n = 6)
        : CellWorld(seed, n) {
        net::FaultPlan plan;
        plan.loss = 0.02;
        plan.delay_jitter = milliseconds(5);
        plan.duplicate = 0.15;  // the interesting hazard for a seq protocol
        plan.reorder = 0.10;
        plan.partitions.push_back(net::PartitionWindow{
            SimTime::zero() + seconds(6), SimTime::zero() + milliseconds(7200),
            {hub->id()},
            {}});
        net.set_fault_plan(plan, seed * 1000003ULL + 17);
    }
};

TEST(CellChaos, BatchedFramesSurviveLossDupAndReorderAcrossSeeds) {
    std::uint64_t total_resyncs = 0;
    std::uint64_t total_dups = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        CellChaosWorld w(seed);
        // Ride through the fault band including the hub blackout.
        w.sim.run_for(seconds(12));
        ASSERT_TRUE(w.run_until([&] { return w.converged(); })) << "seed " << seed;
        // Hold: the batched keep-alive stream outruns the ongoing faults.
        w.sim.run_for(seconds(5));
        ASSERT_TRUE(w.run_until([&] { return w.converged(); })) << "seed " << seed;

        // The core acceptance bar: a healthy node never pays for a dropped,
        // duplicated or reordered *frame* — no expirations, no drops, every
        // member still adapted, exactly one install per node (duplicates
        // never double-applied).
        EXPECT_EQ(w.expirations(), 0u) << "seed " << seed;
        EXPECT_EQ(w.hub->base().stats().nodes_dropped, 0u) << "seed " << seed;
        EXPECT_EQ(w.hub->base().adapted_count(), w.nodes.size()) << "seed " << seed;
        for (auto& n : w.nodes) {
            EXPECT_EQ(n->receiver().stats().installs, 1u)
                << "seed " << seed << " " << n->label();
        }

        net::NetworkStats s = w.net.stats();
        // Duplication inflates deliveries past sends; the books balance
        // once the duplicated frames are counted.
        EXPECT_LE(s.delivered, s.sent + s.fault_duplicated) << "seed " << seed;
        EXPECT_GT(s.fault_dropped_partition, 0u) << "seed " << seed;
        total_dups += s.fault_duplicated;
        total_resyncs += w.hub->base().cell_stats("cell-east").resyncs;
    }
    // The band actually exercised the machinery it certifies: duplicated
    // frames were injected, and lost replies forced full-roster resyncs.
    EXPECT_GT(total_dups, 0u);
    EXPECT_GT(total_resyncs, 0u);
}

TEST(CellChaos, SameSeedReplaysIdentically) {
    auto fingerprint = [](std::uint64_t seed) {
        CellChaosWorld w(seed);
        w.sim.run_for(seconds(15));
        net::NetworkStats s = w.net.stats();
        ExtensionBase::CellStats cs = w.hub->base().cell_stats("cell-east");
        return std::tuple{s.sent,
                          s.delivered,
                          s.fault_dropped_loss,
                          s.fault_dropped_partition,
                          s.fault_duplicated,
                          s.fault_delayed,
                          s.fault_reordered,
                          cs.frames_sent,
                          cs.frame_failures,
                          cs.resyncs,
                          cs.statuses,
                          cs.joins,
                          w.anchor->relay().stats().frames,
                          w.anchor->relay().stats().fanout_calls,
                          w.anchor->relay().stats().resyncs,
                          w.nodes[0]->receiver().stats().installs,
                          w.nodes[1]->receiver().stats().refreshes};
    };
    EXPECT_EQ(fingerprint(7), fingerprint(7));
    EXPECT_NE(fingerprint(7), fingerprint(8));
}

}  // namespace
}  // namespace pmp::midas
