// Causal distributed tracing (PR 6): TraceContext propagation through rpc
// and the radio, deterministic id assignment under seed replay, orphan-end
// accounting, the flight recorder (crash + quarantine black boxes), the
// per-extension profiler, and the causal-tree analysis behind trace_tool.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "db/journal.h"
#include "midas/node.h"
#include "midas/supervisor.h"
#include "net/fault.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/profile.h"
#include "robot/devices.h"

namespace pmp::midas {
namespace {

using rt::Dict;
using rt::List;
using rt::Value;

/// Restores the global enable flag so tests cannot leak a disabled state.
struct EnabledGuard {
    bool saved = obs::enabled();
    ~EnabledGuard() { obs::set_enabled(saved); }
};

bool has_kv(const obs::KeyValues& kv, const std::string& k, const std::string& v) {
    return std::find(kv.begin(), kv.end(), std::make_pair(k, v)) != kv.end();
}

// ------------------------------------------------------- context basics ----

TEST(TraceContext, SpanWithoutAmbientContextRootsAFreshTrace) {
    obs::TraceBuffer buf(64);
    std::uint64_t a = buf.begin_span("test", "a");
    std::uint64_t b = buf.begin_span("test", "b");
    auto events = buf.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_NE(events[0].trace, 0u);
    EXPECT_NE(events[1].trace, 0u);
    EXPECT_NE(events[0].trace, events[1].trace);  // independent roots
    EXPECT_EQ(events[0].parent, 0u);
    buf.end_span(a);
    buf.end_span(b);
}

TEST(TraceContext, ContextScopeParentsChildrenAndInstants) {
    obs::TraceBuffer buf(64);
    std::uint64_t root = buf.begin_span("test", "root");
    {
        obs::TraceBuffer::ContextScope scope(buf, buf.context_of(root));
        std::uint64_t child = buf.begin_span("test", "child");
        buf.instant("test", "mark");
        {
            obs::TraceBuffer::ContextScope inner(buf, buf.context_of(child));
            buf.instant("test", "deep");
        }
        buf.end_span(child);
    }
    buf.end_span(root);

    auto events = buf.events();
    ASSERT_EQ(events.size(), 6u);
    std::uint64_t trace = events[0].trace;
    for (const auto& ev : events) EXPECT_EQ(ev.trace, trace);  // one tree
    EXPECT_EQ(events[1].name, "child");
    EXPECT_EQ(events[1].parent, root);
    EXPECT_EQ(events[2].name, "mark");
    EXPECT_EQ(events[2].parent, root);
    EXPECT_EQ(events[3].name, "deep");
    EXPECT_EQ(events[3].parent, events[1].span);
    // end events inherit the begin's linkage
    EXPECT_EQ(events[4].trace, trace);
    EXPECT_EQ(events[5].span, root);
}

TEST(TraceContext, ContextOfClosedOrUnknownSpanIsInvalid) {
    obs::TraceBuffer buf(64);
    EXPECT_FALSE(buf.context_of(0).valid());
    EXPECT_FALSE(buf.context_of(999).valid());
    std::uint64_t s = buf.begin_span("test", "s");
    EXPECT_TRUE(buf.context_of(s).valid());
    buf.end_span(s);
    EXPECT_FALSE(buf.context_of(s).valid());
}

TEST(TraceContext, NewRootAllocatesDistinctTraces) {
    obs::TraceBuffer buf(64);
    obs::TraceContext a = buf.new_root();
    obs::TraceContext b = buf.new_root();
    EXPECT_TRUE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_NE(a.trace_id, b.trace_id);
    // A span recorded under such a root joins it at root position.
    obs::TraceBuffer::ContextScope scope(buf, a);
    buf.begin_span("test", "attempt");
    EXPECT_EQ(buf.events().back().trace, a.trace_id);
    EXPECT_EQ(buf.events().back().parent, 0u);
}

TEST(TraceContext, IdAssignmentIsDeterministicAcrossClear) {
    obs::TraceBuffer buf(64);
    auto record = [&buf]() {
        std::uint64_t r = buf.begin_span("test", "r");
        obs::TraceBuffer::ContextScope scope(buf, buf.context_of(r));
        buf.instant("test", "i");
        std::uint64_t c = buf.begin_span("test", "c");
        buf.end_span(c);
        buf.end_span(r);
        return buf.events();
    };
    auto first = record();
    buf.clear();
    auto second = record();
    EXPECT_EQ(first, second);  // TraceEvent has operator==
}

// ----------------------------------------------------------- orphan ends ----

TEST(TraceOrphans, EndAfterBeginEvictionIsCountedAndTagged) {
    EnabledGuard guard;
    obs::set_enabled(true);
    obs::TraceBuffer buf(2);  // tiny ring: the begin is evicted quickly
    auto& reg_counter = obs::Registry::global().counter("obs.trace.orphan_ends");
    std::uint64_t before = reg_counter.value();

    std::uint64_t s = buf.begin_span("test", "s");
    buf.instant("test", "a");
    buf.instant("test", "b");  // evicts the begin of s
    buf.end_span(s);

    EXPECT_EQ(buf.orphan_ends(), 1u);
    EXPECT_EQ(reg_counter.value(), before + 1);
    const auto events = buf.events();
    ASSERT_FALSE(events.empty());
    const obs::TraceEvent& end = events.back();
    EXPECT_EQ(end.kind, obs::EventKind::kSpanEnd);
    EXPECT_TRUE(has_kv(end.kv, "orphan", "true"));
    EXPECT_EQ(end.trace, 0u);  // no linkage invented
}

TEST(TraceOrphans, NormallyEndedSpansAreNotOrphans) {
    obs::TraceBuffer buf(16);
    std::uint64_t s = buf.begin_span("test", "s");
    buf.end_span(s);
    EXPECT_EQ(buf.orphan_ends(), 0u);
}

// ------------------------------------------------------- flight recorder ----

TEST(FlightRecorder, MirrorsTheGlobalBufferOnly) {
    obs::TraceBuffer::global().clear();
    obs::FlightRecorder::global().clear();

    obs::TraceBuffer::global().instant("test", "global-event");
    obs::TraceBuffer scratch(16);
    scratch.instant("test", "scratch-event");  // must NOT reach the black box

    auto tail = obs::FlightRecorder::global().tail();
    ASSERT_EQ(tail.size(), 1u);
    EXPECT_EQ(tail[0].name, "global-event");
}

TEST(FlightRecorder, DumpFreezesTheTail) {
    obs::TraceBuffer::global().clear();
    obs::FlightRecorder::global().clear();
    obs::TraceBuffer::global().instant("test", "before-death");

    const auto& dump =
        obs::FlightRecorder::global().dump("node-x", "crash", SimTime{123});
    EXPECT_EQ(dump.node, "node-x");
    EXPECT_EQ(dump.reason, "crash");
    EXPECT_EQ(dump.at.ns, 123);
    ASSERT_EQ(dump.events.size(), 1u);
    EXPECT_EQ(dump.events[0].name, "before-death");

    // Later traffic does not disturb the frozen dump.
    obs::TraceBuffer::global().instant("test", "after-death");
    EXPECT_EQ(obs::FlightRecorder::global().dumps()[0].events.size(), 1u);
}

TEST(FlightRecorder, DumpsAreBounded) {
    obs::FlightRecorder::global().clear();
    for (std::size_t i = 0; i < obs::FlightRecorder::kMaxDumps + 5; ++i) {
        obs::FlightRecorder::global().dump("n", "r" + std::to_string(i), SimTime{});
    }
    EXPECT_EQ(obs::FlightRecorder::global().dumps().size(), obs::FlightRecorder::kMaxDumps);
    // Oldest forgotten first.
    EXPECT_EQ(obs::FlightRecorder::global().dumps().front().reason, "r5");
    obs::FlightRecorder::global().clear();
}

// --------------------------------------------------------- causal trees ----

TEST(TraceTrees, BuildsRenderAndWalksCriticalPath) {
    obs::TraceBuffer buf(64);
    std::uint64_t clock = 0;
    auto at = [&clock]() { return SimTime{static_cast<std::int64_t>(clock)}; };

    clock = 1'000'000;
    std::uint64_t root = buf.begin_span_at(at(), "rt.rpc", "rpc.call", {{"obj", "m_R"}});
    std::uint64_t fast, slow;
    {
        obs::TraceBuffer::ContextScope scope(buf, buf.context_of(root));
        clock = 2'000'000;
        fast = buf.begin_span_at(at(), "prose.weaver", "weave", {});
        clock = 3'000'000;
        buf.end_span_at(at(), fast, {});
        slow = buf.begin_span_at(at(), "midas.receiver", "pkg.verify", {});
        {
            obs::TraceBuffer::ContextScope inner(buf, buf.context_of(slow));
            buf.instant_at(at(), "midas.receiver", "sig.ok", {});
        }
        clock = 9'000'000;
        buf.end_span_at(at(), slow, {});
    }
    clock = 10'000'000;
    buf.end_span_at(at(), root, {{"outcome", "ok"}});

    auto trees = obs::build_trace_trees(buf.events());
    ASSERT_EQ(trees.size(), 1u);
    const obs::TraceTree& tree = trees[0];
    ASSERT_EQ(tree.spans.size(), 3u);
    ASSERT_EQ(tree.roots.size(), 1u);
    EXPECT_EQ(tree.spans[tree.roots[0]].span, root);
    EXPECT_EQ(tree.spans[tree.roots[0]].children.size(), 2u);
    ASSERT_EQ(tree.instants.size(), 1u);
    EXPECT_EQ(tree.instants[0].parent, slow);

    // Rendering is deterministic and mentions every span.
    std::string text = obs::render_tree(tree);
    EXPECT_EQ(text, obs::render_tree(tree));
    EXPECT_NE(text.find("rpc.call"), std::string::npos);
    EXPECT_NE(text.find("pkg.verify"), std::string::npos);
    EXPECT_NE(text.find("weave"), std::string::npos);

    // The critical path follows the child that bounded completion: the
    // 6ms verify, not the 1ms weave.
    auto path = obs::critical_path(tree);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0].span, root);
    EXPECT_EQ(path[1].span, slow);
    EXPECT_EQ(path[0].total, milliseconds(9));
    EXPECT_EQ(path[1].total, milliseconds(6));
    EXPECT_EQ(path[0].self, milliseconds(3));
}

TEST(TraceTrees, ChromeExportContainsSpansAndInstants) {
    obs::TraceBuffer buf(64);
    std::uint64_t s = buf.begin_span_at(SimTime{1'000'000}, "rt.rpc", "rpc.call", {});
    {
        obs::TraceBuffer::ContextScope scope(buf, buf.context_of(s));
        buf.instant_at(SimTime{1'500'000}, "rt.rpc", "rpc.shed", {{"obj", "m_R"}});
    }
    buf.end_span_at(SimTime{2'000'000}, s, {});

    std::string json = obs::to_chrome_trace(buf.events());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete span
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant
    EXPECT_NE(json.find("process_name"), std::string::npos);
    EXPECT_NE(json.find("rpc.call"), std::string::npos);
}

TEST(TraceTrees, JsonRoundTripPreservesCausalFields) {
    obs::Snapshot snap;
    obs::TraceEvent ev;
    ev.at = SimTime{42};
    ev.kind = obs::EventKind::kSpanBegin;
    ev.span = 7;
    ev.trace = 3;
    ev.parent = 5;
    ev.component = "rt.rpc";
    ev.name = "rpc.call";
    ev.kv = {{"obj", "m_R"}};
    snap.trace.push_back(ev);
    obs::Snapshot back = obs::snapshot_from_json(obs::to_json(snap));
    EXPECT_EQ(back, snap);
}

// --------------------------------------------------------------- profiler ----

TEST(Profiler, AttributionFoldsSitesIntoExtensionBills) {
    obs::Profiler::Site site_a = obs::Profiler::global().site("extA", "call(* T.m(..))");
    obs::Profiler::Site site_b = obs::Profiler::global().site("extA", "fieldset(T.f)");
    obs::Profiler::Site site_c = obs::Profiler::global().site("extB", "call(* T.m(..))");
    site_a.record(1000.0);
    site_a.record(3000.0);
    site_b.record(500.0);
    site_c.record(50.0);
    obs::Profiler::global().step_counter("extA")->inc(25);

    auto bills = obs::attribution_from(obs::snapshot_metrics());
    auto find = [&](const std::string& name) -> const obs::ExtensionCost* {
        for (const auto& b : bills) {
            if (b.extension == name) return &b;
        }
        return nullptr;
    };
    const obs::ExtensionCost* a = find("extA");
    ASSERT_NE(a, nullptr);
    EXPECT_GE(a->invocations, 3u);
    EXPECT_GE(a->total_ns, 4500.0);
    EXPECT_GE(a->steps, 25u);
    ASSERT_GE(a->sites.size(), 2u);
    // Sites sorted by descending total cost.
    EXPECT_GE(a->sites[0].total_ns, a->sites[1].total_ns);
    ASSERT_NE(find("extB"), nullptr);
    // The heavier extension bills first.
    EXPECT_EQ(bills.front().extension, "extA");
}

// --------------------------------------------- end-to-end: install chain ----

ExtensionPackage motor_monitor_pkg() {
    ExtensionPackage pkg;
    pkg.name = "hall/monitor";
    pkg.script = "fun onEntry() { let x = 1 + 2; }";
    pkg.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

struct TraceWorld {
    sim::Simulator sim;
    net::Network net;
    std::unique_ptr<BaseStation> hall;
    std::unique_ptr<MobileNode> robot;
    std::shared_ptr<rt::ServiceObject> motor;

    explicit TraceWorld(std::uint64_t seed = 42) : net(sim, net::NetworkConfig{}, seed) {
        BaseConfig bc;
        bc.issuer = "hall";
        hall = std::make_unique<BaseStation>(net, "hall", net::Position{0, 0}, 100.0, bc);
        hall->keys().add_key("hall", to_bytes("k"));
        robot = std::make_unique<MobileNode>(net, "robot", net::Position{10, 0}, 100.0);
        robot->trust().trust("hall", to_bytes("k"));
        robot->receiver().allow_capabilities("hall", {"net", "target", "log"});
        motor = robot::make_motor(robot->runtime(), "motor:x");
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(20)) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    }
};

/// Runs the install scenario from a clean global trace ring; returns the
/// full event stream after one advice dispatch.
std::vector<obs::TraceEvent> run_install_scenario(std::uint64_t seed,
                                                  net::FaultPlan* plan = nullptr) {
    obs::TraceBuffer::global().clear();
    obs::FlightRecorder::global().clear();
    TraceWorld w(seed);
    if (plan) w.net.set_fault_plan(*plan, seed);
    w.hall->base().add_extension(motor_monitor_pkg());
    EXPECT_TRUE(w.run_until([&] { return w.robot->receiver().installed_count() == 1; }));
    w.motor->call("rotate", {Value{1.0}});  // first advice dispatch
    w.sim.run_for(milliseconds(200));
    return obs::TraceBuffer::global().events();
}

TEST(InstallChain, ReconstructsAsOneTreeSpanningBothNodes) {
    EnabledGuard guard;
    obs::set_enabled(true);
    auto events = run_install_scenario(42);
    auto trees = obs::build_trace_trees(events);

    // Find the tree carrying the package push.
    const obs::TraceTree* install_tree = nullptr;
    for (const auto& tree : trees) {
        for (const auto& span : tree.spans) {
            if (span.name == "pkg.push") install_tree = &tree;
        }
    }
    ASSERT_NE(install_tree, nullptr) << "no pkg.push span traced";

    std::set<std::string> span_names;
    std::set<std::string> components;
    for (const auto& span : install_tree->spans) {
        span_names.insert(span.name);
        components.insert(span.component);
    }
    std::set<std::string> instant_names;
    for (const auto& inst : install_tree->instants) instant_names.insert(inst.name);

    // Base-side (hall) and receiver-side (robot) work share the tree: the
    // push span, both halves of the rpc round-trip, the package verify,
    // the weave — and the first advice dispatch, which happened later on
    // an unrelated local call but is causally the install's.
    EXPECT_TRUE(span_names.contains("pkg.push"));
    EXPECT_TRUE(span_names.contains("rpc.call"));
    EXPECT_TRUE(span_names.contains("rpc.serve"));
    EXPECT_TRUE(span_names.contains("pkg.verify"));
    EXPECT_TRUE(span_names.contains("weave"));
    EXPECT_TRUE(components.contains("midas.base"));     // hall side
    EXPECT_TRUE(components.contains("midas.receiver")); // robot side
    EXPECT_TRUE(instant_names.contains("pkg.install"));
    EXPECT_TRUE(instant_names.contains("advice.first_dispatch"));

    // The serve span is the call span's child; verify nests under serve.
    for (const auto& span : install_tree->spans) {
        if (span.name != "rpc.serve") continue;
        const auto& parent = *std::find_if(
            install_tree->spans.begin(), install_tree->spans.end(),
            [&](const obs::SpanNode& s) { return s.span == span.parent; });
        EXPECT_EQ(parent.name, "rpc.call");
    }
}

TEST(InstallChain, SeedReplayYieldsByteIdenticalTrees) {
    EnabledGuard guard;
    obs::set_enabled(true);
    auto render_all = [](const std::vector<obs::TraceEvent>& events) {
        std::string out;
        for (const auto& tree : obs::build_trace_trees(events)) {
            out += obs::render_tree(tree);
        }
        return out;
    };
    std::string first = render_all(run_install_scenario(7));
    std::string second = render_all(run_install_scenario(7));
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(InstallChain, RpcSpansCarryOutcomeCause) {
    EnabledGuard guard;
    obs::set_enabled(true);
    obs::TraceBuffer::global().clear();
    obs::FlightRecorder::global().clear();
    TraceWorld w;
    // Remote error: the object is not exported.
    EXPECT_THROW(w.hall->rpc().call_sync(w.robot->id(), "nope", "x", {}), RemoteError);
    // Transport failure: nobody at that position.
    bool failed = false;
    w.hall->rpc().call_async(NodeId{9999}, "m", "x", {},
                             [&](Value, std::exception_ptr e) { failed = e != nullptr; },
                             milliseconds(200));
    w.sim.run_for(seconds(1));
    EXPECT_TRUE(failed);

    bool saw_remote_cause = false, saw_transport_cause = false;
    for (const auto& ev : obs::TraceBuffer::global().events()) {
        if (ev.kind != obs::EventKind::kSpanEnd) continue;
        if (has_kv(ev.kv, "outcome", "error") && has_kv(ev.kv, "cause", "RemoteError")) {
            saw_remote_cause = true;
        }
        if (has_kv(ev.kv, "cause", "transport")) saw_transport_cause = true;
    }
    EXPECT_TRUE(saw_remote_cause);
    EXPECT_TRUE(saw_transport_cause);
}

TEST(InstallChain, ProfilerBillsTheInstalledExtension) {
    EnabledGuard guard;
    obs::set_enabled(true);
    run_install_scenario(42);
    auto bills = obs::attribution_from(obs::snapshot_metrics());
    const obs::ExtensionCost* monitor = nullptr;
    for (const auto& b : bills) {
        if (b.extension == "hall/monitor") monitor = &b;
    }
    ASSERT_NE(monitor, nullptr);
    EXPECT_GE(monitor->invocations, 1u);
    EXPECT_GT(monitor->total_ns, 0.0);
    EXPECT_GE(monitor->steps, 1u);  // the script engine's step feed
    ASSERT_GE(monitor->sites.size(), 1u);
    EXPECT_EQ(monitor->sites[0].pointcut, "call(* Motor.*(..))");
}

// --------------------------------------- satellite: 20-seed chaos replay ----

TEST(TraceSoak, DuplicationAndReorderingReplayIdenticallyPerSeed) {
    EnabledGuard guard;
    obs::set_enabled(true);
    // Duplication + reordering only: partition instants carry the network
    // instance label, which is a process-global sequence and would differ
    // between the two runs of a pair.
    net::FaultPlan plan;
    plan.duplicate = 0.30;
    plan.reorder = 0.25;
    plan.reorder_hold = milliseconds(5);

    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        auto run = [&](std::vector<obs::TraceEvent>* out) {
            *out = run_install_scenario(seed, &plan);
        };
        std::vector<obs::TraceEvent> first, second;
        run(&first);
        run(&second);

        // Identical trace trees, byte for byte.
        std::string ra, rb;
        for (const auto& t : obs::build_trace_trees(first)) ra += obs::render_tree(t);
        for (const auto& t : obs::build_trace_trees(second)) rb += obs::render_tree(t);
        EXPECT_FALSE(ra.empty()) << "seed " << seed;
        EXPECT_EQ(ra, rb) << "seed " << seed;

        // Zero double-counted spans: a duplicated frame must never open a
        // second span with the same id (the dup is answered from the reply
        // cache, not re-dispatched).
        std::set<std::uint64_t> begins;
        for (const auto& ev : first) {
            if (ev.kind != obs::EventKind::kSpanBegin) continue;
            EXPECT_TRUE(begins.insert(ev.span).second)
                << "span " << ev.span << " began twice (seed " << seed << ")";
        }
    }
}

// ----------------------------------- flight recorder: quarantine + crash ----

ExtensionPackage throwing_pkg() {
    ExtensionPackage pkg;
    pkg.name = "hall/flaky";
    pkg.script = "fun onEntry() { throw \"boom\"; }";
    pkg.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

TEST(FlightRecorder, QuarantineDumpIsJournaledAndRecovered) {
    EnabledGuard guard;
    obs::set_enabled(true);
    obs::TraceBuffer::global().clear();
    obs::FlightRecorder::global().clear();

    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 31);
    auto disk = std::make_shared<db::JournalStorage>();
    disk->name = "robot";
    BaseConfig bc;
    bc.issuer = "hall";
    BaseStation hall(net, "hall", net::Position{0, 0}, 100.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));
    auto robot = std::make_unique<MobileNode>(net, "robot", net::Position{10, 0}, 100.0,
                                              ReceiverConfig{}, disk);
    robot->trust().trust("hall", to_bytes("k"));
    robot->receiver().allow_capabilities("hall", {"net", "target", "log"});
    auto motor = robot::make_motor(robot->runtime(), "motor:x");

    auto run_until = [&](const std::function<bool()>& pred) {
        SimTime deadline = sim.now() + seconds(20);
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    };

    hall.base().add_extension(throwing_pkg());
    ASSERT_TRUE(run_until([&] { return robot->receiver().installed_count() == 1; }));
    for (int i = 0; i < 3; ++i) {
        EXPECT_THROW(motor->call("rotate", {Value{1.0}}), std::exception);
    }
    sim.run_for(milliseconds(10));  // deferred quarantine fires
    ASSERT_EQ(robot->receiver().flight_dumps().size(), 1u);
    // Copy: the receiver (and its dump) dies in the crash below.
    const auto dump = robot->receiver().flight_dumps()[0];
    EXPECT_EQ(dump.reason, "quarantine:hall/flaky");
    EXPECT_FALSE(dump.events.empty());
    std::size_t dumped_events = dump.events.size();

    // The supervisor-style black box saw it too.
    ASSERT_FALSE(obs::FlightRecorder::global().dumps().empty());
    EXPECT_EQ(obs::FlightRecorder::global().dumps().back().reason, "quarantine:hall/flaky");

    // Crash-restart over the same disk: the journaled dump comes back.
    robot->journal()->power_off();
    net.remove_node(robot->id());
    robot.reset();
    sim.run_for(seconds(1));
    robot = std::make_unique<MobileNode>(net, "robot", net::Position{10, 0}, 100.0,
                                         ReceiverConfig{}, disk);
    ASSERT_EQ(robot->receiver().flight_dumps().size(), 1u);
    EXPECT_EQ(robot->receiver().flight_dumps()[0].reason, "quarantine:hall/flaky");
    EXPECT_EQ(robot->receiver().flight_dumps()[0].events.size(), dumped_events);
    EXPECT_EQ(robot->receiver().flight_dumps()[0].events, dump.events);
}

TEST(FlightRecorder, SupervisorCrashFreezesATail) {
    EnabledGuard guard;
    obs::set_enabled(true);
    obs::TraceBuffer::global().clear();
    obs::FlightRecorder::global().clear();

    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 29);
    Supervisor sup(net);
    std::unique_ptr<NodeStack> node;
    sup.manage("victim", Supervisor::Lifecycle{
                             [&]() {
                                 node = std::make_unique<NodeStack>(
                                     net, "victim", net::Position{0, 0}, 50.0);
                             },
                             [&]() { return node->id(); },
                             [&]() {},
                             [&]() { node.reset(); },
                         });
    sim.run_for(milliseconds(10));
    sup.crash("victim", seconds(1));
    sim.run_for(milliseconds(10));

    ASSERT_EQ(obs::FlightRecorder::global().dumps().size(), 1u);
    const auto& dump = obs::FlightRecorder::global().dumps()[0];
    EXPECT_EQ(dump.node, "victim");
    EXPECT_EQ(dump.reason, "crash");
    // The node.crash instant is recorded before the chip is read, so the
    // dump's last event is the death itself.
    ASSERT_FALSE(dump.events.empty());
    EXPECT_EQ(dump.events.back().name, "node.crash");
    sim.run_for(seconds(2));  // restart completes; nothing double-dumps
    EXPECT_EQ(obs::FlightRecorder::global().dumps().size(), 1u);
}

// ---------------------------------------------- durable flight round-trip ----

TEST(DurableFlight, RecordRoundTripsThroughJournal) {
    obs::TraceEvent ev;
    ev.at = SimTime{1'000'000};
    ev.kind = obs::EventKind::kInstant;
    ev.trace = 4;
    ev.parent = 2;
    ev.component = "midas.receiver";
    ev.name = "pkg.quarantine";
    ev.kv = {{"pkg", "hall/flaky"}, {"version", "1"}};

    auto disk = std::make_shared<db::JournalStorage>();
    {
        db::Journal j(disk);
        j.append(ReceiverDurableState::rec_quarantine("hall/flaky", 1));
        j.append(ReceiverDurableState::rec_flight("quarantine:hall/flaky",
                                                  SimTime{2'000'000}, {ev}));
    }
    auto st = ReceiverDurableState::replay(db::Journal(disk).restore());
    EXPECT_EQ(st.skipped_records, 0u);
    ASSERT_EQ(st.flights.size(), 1u);
    EXPECT_EQ(st.flights[0].reason, "quarantine:hall/flaky");
    EXPECT_EQ(st.flights[0].at.ns, 2'000'000);
    ASSERT_EQ(st.flights[0].events.size(), 1u);
    EXPECT_EQ(st.flights[0].events[0], ev);

    // And through snapshot compaction.
    {
        db::Journal j(disk);
        j.compact(st.to_snapshot());
    }
    auto st2 = ReceiverDurableState::replay(db::Journal(disk).restore());
    ASSERT_EQ(st2.flights.size(), 1u);
    EXPECT_EQ(st2.flights[0].events[0], ev);
}

}  // namespace
}  // namespace pmp::midas
