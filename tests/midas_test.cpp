// MIDAS integration tests: discovery-driven adaptation, leasing and
// autonomous withdrawal, policy replacement, trust and capability policy,
// implicit prerequisites, and the symmetric peer-to-peer mode.
#include <gtest/gtest.h>

#include "midas/node.h"
#include "robot/devices.h"

namespace pmp::midas {
namespace {

using rt::Dict;
using rt::Value;

constexpr const char* kMonitoringScript = R"(
    let posts = 0;
    fun onEntry() {
        owner.post("collector", "post",
                   [sys.node(), {"device": ctx.target(), "action": ctx.method()}]);
        posts = posts + 1;
    }
    fun onShutdown(reason) { }
)";

ExtensionPackage monitoring_package() {
    ExtensionPackage pkg;
    pkg.name = "hall-a/monitoring";
    pkg.script = kMonitoringScript;
    pkg.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    pkg.capabilities = {"net"};
    return pkg;
}

class MidasTest : public ::testing::Test {
protected:
    MidasTest() : net_(sim_, net::NetworkConfig{}, 21) {
        BaseConfig bc;
        bc.issuer = "hall-a";
        base_ = std::make_unique<BaseStation>(net_, "base-a", net::Position{0, 0}, 100.0, bc);
        base_->keys().add_key("hall-a", to_bytes("hall-a-key"));

        robot_ = std::make_unique<MobileNode>(net_, "robot:1:1", net::Position{10, 0}, 100.0);
        robot_->trust().trust("hall-a", to_bytes("hall-a-key"));
        robot_->receiver().allow_capabilities("hall-a", {"net", "log", "target"});

        motor_ = robot::make_motor(robot_->runtime(), "motor:x");
    }

    /// Run the simulation until `pred` holds or `timeout` elapses.
    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(10)) {
        SimTime deadline = sim_.now() + timeout;
        while (sim_.now() < deadline) {
            if (pred()) return true;
            sim_.run_until(sim_.now() + milliseconds(100));
        }
        return pred();
    }

    sim::Simulator sim_;
    net::Network net_;
    std::unique_ptr<BaseStation> base_;
    std::unique_ptr<MobileNode> robot_;
    std::shared_ptr<rt::ServiceObject> motor_;
};

TEST_F(MidasTest, NodeIsAdaptedOnEnteringTheHall) {
    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));

    auto installed = robot_->receiver().installed();
    ASSERT_EQ(installed.size(), 1u);
    EXPECT_EQ(installed[0].name, "hall-a/monitoring");
    EXPECT_EQ(installed[0].issuer, "hall-a");
    EXPECT_EQ(base_->base().adapted_count(), 1u);
}

TEST_F(MidasTest, InterceptedActionsLandInHallDatabase) {
    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));

    motor_->call("rotate", {Value{30.0}});
    motor_->call("rotate", {Value{-10.0}});
    motor_->call("stop", {});
    ASSERT_TRUE(run_until([&] { return base_->store().size() == 3; }));

    auto records = base_->store().query(db::Query{});
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].source, "robot:1:1");
    EXPECT_EQ(records[0].data.as_dict().at("device").as_str(), "motor:x");
    EXPECT_EQ(records[0].data.as_dict().at("action").as_str(), "rotate");
    EXPECT_EQ(records[2].data.as_dict().at("action").as_str(), "stop");
}

TEST_F(MidasTest, KeepalivesSustainExtensionWhileInRange) {
    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    // Far longer than the extension lease: keep-alives must sustain it.
    sim_.run_for(seconds(30));
    EXPECT_EQ(robot_->receiver().installed_count(), 1u);
    EXPECT_EQ(robot_->receiver().stats().expirations, 0u);
}

TEST_F(MidasTest, ExtensionsWithdrawnWhenNodeLeaves) {
    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));

    robot_->move_to({1000, 0});
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 0; }));
    EXPECT_GE(robot_->receiver().stats().expirations, 1u);
    // The motor dispatch is back to baseline.
    EXPECT_FALSE(motor_->type().method("rotate")->woven());
    // The base eventually notices the node is gone.
    ASSERT_TRUE(run_until([&] { return base_->base().adapted_count() == 0; }));
}

TEST_F(MidasTest, ShutdownProcedureRunsOnLeaseExpiry) {
    // Shutdown posts a farewell marker into a global; we inspect via the
    // receiver event hook instead (black-box: observe the expire event).
    std::vector<std::string> events;
    robot_->receiver().on_event(
        [&](const std::string& event, const AdaptationService::Installed& info) {
            events.push_back(event + ":" + info.name);
        });
    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    robot_->move_to({1000, 0});
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 0; }));
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front(), "install:hall-a/monitoring");
    EXPECT_EQ(events.back(), "expire:hall-a/monitoring");
}

TEST_F(MidasTest, ReturningNodeIsReAdapted) {
    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    robot_->move_to({1000, 0});
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 0; }));

    robot_->move_to({10, 0});
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    EXPECT_GE(robot_->receiver().stats().installs, 2u);
}

TEST_F(MidasTest, PolicyChangeReplacesExtensionOnAdaptedNodes) {
    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    std::uint32_t v1 = robot_->receiver().installed()[0].version;

    // The hall's policy evolves: same name, new content.
    ExtensionPackage updated = monitoring_package();
    updated.script = std::string(kMonitoringScript) + "\nfun helper() { return 1; }";
    base_->base().add_extension(updated);

    ASSERT_TRUE(run_until(
        [&] { return robot_->receiver().stats().replacements >= 1; }));
    EXPECT_EQ(robot_->receiver().installed_count(), 1u);
    EXPECT_GT(robot_->receiver().installed()[0].version, v1);
}

TEST_F(MidasTest, RemoveExtensionRevokesEverywhere) {
    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));

    base_->base().remove_extension("hall-a/monitoring");
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 0; }));
    EXPECT_GE(robot_->receiver().stats().revocations, 1u);
    EXPECT_FALSE(motor_->type().method("rotate")->woven());
}

TEST_F(MidasTest, UntrustedIssuerIsRejected) {
    // A rogue base station the robot does not trust.
    BaseConfig bc;
    bc.issuer = "mallory";
    BaseStation rogue(net_, "rogue", net::Position{20, 0}, 100.0, bc);
    rogue.keys().add_key("mallory", to_bytes("mallory-key"));
    ExtensionPackage evil = monitoring_package();
    evil.name = "mallory/spyware";
    evil.capabilities = {};  // even a capability-free package is refused
    rogue.base().add_extension(evil);

    ASSERT_TRUE(run_until([&] { return robot_->receiver().stats().rejections >= 1; }));
    for (const auto& inst : robot_->receiver().installed()) {
        EXPECT_NE(inst.issuer, "mallory");
    }
}

TEST_F(MidasTest, UngrantableCapabilityIsRejected) {
    ExtensionPackage greedy = monitoring_package();
    greedy.name = "hall-a/greedy";
    greedy.capabilities = {"net", "robot.control"};  // robot.control not allowed
    base_->base().add_extension(greedy);

    ASSERT_TRUE(run_until([&] { return robot_->receiver().stats().rejections >= 1; }));
    EXPECT_EQ(robot_->receiver().installed_count(), 0u);
    EXPECT_GE(base_->base().stats().install_failures, 1u);
}

TEST_F(MidasTest, ImpliedExtensionInstallsFirst) {
    // Access control implies session management (the paper's example).
    ExtensionPackage session;
    session.name = "hall-a/session";
    session.script = "fun onEntry() { }";
    session.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", -10}};
    base_->base().add_extension(session);

    ExtensionPackage access = monitoring_package();
    access.name = "hall-a/access-control";
    access.implies = {"hall-a/session"};
    base_->base().add_extension(access);

    std::vector<std::string> installs;
    robot_->receiver().on_event(
        [&](const std::string& event, const AdaptationService::Installed& info) {
            if (event == "install") installs.push_back(info.name);
        });
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 2; }));
    // Dependencies install before dependents on each adaptation pass.
    auto session_pos = std::find(installs.begin(), installs.end(), "hall-a/session");
    auto access_pos = std::find(installs.begin(), installs.end(), "hall-a/access-control");
    ASSERT_NE(session_pos, installs.end());
    ASSERT_NE(access_pos, installs.end());
    EXPECT_LT(session_pos - installs.begin(), access_pos - installs.begin());
}

TEST_F(MidasTest, BaseActivityLogRecordsAdaptations) {
    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    bool saw_adapt = false, saw_install = false;
    for (const auto& activity : base_->base().activity()) {
        if (activity.event == "adapt" && activity.node_label == "robot:1:1") saw_adapt = true;
        if (activity.event == "install" && activity.extension == "hall-a/monitoring") {
            saw_install = true;
        }
    }
    EXPECT_TRUE(saw_adapt);
    EXPECT_TRUE(saw_install);
}

TEST_F(MidasTest, RoamingBetweenHallsSwapsPolicies) {
    // Hall B sits far from hall A with its own policy and key.
    BaseConfig bc;
    bc.issuer = "hall-b";
    BaseStation hall_b(net_, "base-b", net::Position{500, 0}, 100.0, bc);
    hall_b.keys().add_key("hall-b", to_bytes("hall-b-key"));
    robot_->trust().trust("hall-b", to_bytes("hall-b-key"));
    robot_->receiver().allow_capabilities("hall-b", {"net"});

    ExtensionPackage policy_b = monitoring_package();
    policy_b.name = "hall-b/limits";
    hall_b.base().add_extension(policy_b);
    base_->base().add_extension(monitoring_package());

    // In hall A.
    ASSERT_TRUE(run_until([&] {
        auto installed = robot_->receiver().installed();
        return installed.size() == 1 && installed[0].issuer == "hall-a";
    }));

    // Roam to hall B: hall A's extension lapses, hall B's arrives.
    robot_->move_to({510, 0});
    ASSERT_TRUE(run_until(
        [&] {
            auto installed = robot_->receiver().installed();
            return installed.size() == 1 && installed[0].issuer == "hall-b";
        },
        seconds(20)));
    EXPECT_GE(robot_->receiver().stats().expirations, 1u);
}

TEST_F(MidasTest, TheMiddlewareItselfIsAdaptable) {
    // The paper's generality claim cuts both ways: the adaptation service
    // is an ordinary service object, so an aspect can observe MIDAS doing
    // its own work — every install/keepalive that reaches this node.
    std::vector<std::string> control_plane_calls;
    auto audit = std::make_shared<prose::Aspect>("meta-audit");
    audit->before("call(* AdaptationService.*(..))", [&](rt::CallFrame& f) {
        control_plane_calls.push_back(f.method.decl().name);
    });
    robot_->weaver().weave(audit);

    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    sim_.run_for(seconds(3));

    int installs = 0, keepalives = 0;
    for (const std::string& name : control_plane_calls) {
        installs += name == "install";
        keepalives += name == "keepalive";
    }
    EXPECT_GE(installs, 1);
    EXPECT_GE(keepalives, 1);
}

TEST_F(MidasTest, RemoteListShowsInstalledExtensions) {
    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    // Anyone in range can ask the adaptation service what it runs.
    Value listed = base_->rpc().call_sync(robot_->id(), "adaptation", "list", {});
    ASSERT_EQ(listed.as_list().size(), 1u);
    const Dict& entry = listed.as_list()[0].as_dict();
    EXPECT_EQ(entry.at("name").as_str(), "hall-a/monitoring");
    EXPECT_EQ(entry.at("issuer").as_str(), "hall-a");
}

TEST_F(MidasTest, LeaseGrantIsClampedByReceiver) {
    // Ask for an hour; the receiver grants at most its configured max (5s
    // default) — visible in the install reply.
    ExtensionPackage pkg = monitoring_package();
    Bytes sealed = pkg.seal(base_->keys(), "hall-a");
    sim_.run_for(seconds(2));  // let discovery settle
    Value reply = base_->rpc().call_sync(
        robot_->id(), "adaptation", "install",
        {Value{sealed}, Value{std::int64_t{3600 * 1000}}, Value{std::int64_t{1}}});
    EXPECT_LE(reply.as_dict().at("lease_ms").as_int(), 5000);
}

TEST_F(MidasTest, ReinstallSameVersionIsRefresh) {
    base_->base().add_extension(monitoring_package());
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 1; }));
    // Keep-alives already refresh; force an explicit duplicate install.
    ExtensionPackage pkg = monitoring_package();
    pkg.version = robot_->receiver().installed()[0].version;  // same version
    Bytes sealed = pkg.seal(base_->keys(), "hall-a");
    Value reply = base_->rpc().call_sync(robot_->id(), "adaptation", "install",
                                         {Value{sealed}, Value{std::int64_t{1000}},
                                          Value{std::int64_t{1}}});
    EXPECT_EQ(static_cast<std::uint64_t>(reply.as_dict().at("ext").as_int()),
              robot_->receiver().installed()[0].id.value);
    EXPECT_GE(robot_->receiver().stats().refreshes, 1u);
    EXPECT_EQ(robot_->receiver().stats().installs, 1u);
    EXPECT_EQ(robot_->receiver().installed_count(), 1u);
}

TEST_F(MidasTest, KeepaliveForUnknownExtensionReportsFalse) {
    sim_.run_for(seconds(2));
    Value reply = base_->rpc().call_sync(robot_->id(), "adaptation", "keepalive",
                                         {Value{9999}, Value{std::int64_t{1000}},
                                          Value{std::int64_t{1}}});
    EXPECT_FALSE(reply.as_bool());
}

TEST_F(MidasTest, SecureChannelExtensionEncryptsRpc) {
    // The paper's application-blind encryption extension: the hall ships a
    // package whose top level keys the node's rpc channel. The hall's own
    // stack stays plaintext here, so we verify against a second adapted
    // node: robot <-> probe both encrypted, unadapted mallory locked out.
    ExtensionPackage secure;
    secure.name = "hall-a/secure-channel";
    secure.script = "rpc.set_channel(config.key);\nfun onEntry() { }";
    secure.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* Motor.stop())", "onEntry", 0}};
    secure.capabilities = {"rpc"};
    secure.config = Value{Dict{{"key", Value{"hall-a-wire-key"}}}};
    robot_->receiver().allow_capabilities("hall-a", {"rpc"});

    // A second adapted node that talks to the robot.
    MobileNode probe(net_, "probe", net::Position{12, 0}, 100.0);
    probe.trust().trust("hall-a", to_bytes("hall-a-key"));
    probe.receiver().allow_capabilities("hall-a", {"rpc"});

    // The robot exports a service the others call.
    robot_->rpc().export_object("motor:x");

    base_->base().add_extension(secure);
    ASSERT_TRUE(run_until([&] {
        return robot_->receiver().installed_count() == 1 &&
               probe.receiver().installed_count() == 1;
    }));
    EXPECT_EQ(robot_->rpc().wire_filter_count(), 1u);

    // Stability: the control plane is filter-exempt, so keep-alives keep
    // flowing and the extension does not flap.
    sim_.run_for(seconds(10));
    EXPECT_EQ(robot_->receiver().installed_count(), 1u);
    EXPECT_EQ(robot_->receiver().stats().expirations, 0u);

    // Adapted <-> adapted: works.
    Value status = probe.rpc().call_sync(robot_->id(), "motor:x", "status", {});
    EXPECT_TRUE(status.as_dict().contains("position"));

    // Unadapted node: its plaintext call is dropped by the robot.
    midas::NodeStack mallory(net_, "mallory-node", net::Position{-5, 0}, 100.0);
    EXPECT_THROW(mallory.rpc().call_sync(robot_->id(), "motor:x", "status", {},
                                         milliseconds(500)),
                 RemoteError);

    // Leaving the hall removes the channel along with the extension.
    robot_->move_to({1000, 0});
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 0; }));
    EXPECT_EQ(robot_->rpc().wire_filter_count(), 0u);
}

TEST(MidasPeerTest, SymmetricPeersAdaptEachOther) {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 5);

    BaseConfig ca;
    ca.issuer = "peer-a";
    Peer a(net, "peer-a", {0, 0}, 50.0, ca);
    BaseConfig cb;
    cb.issuer = "peer-b";
    Peer b(net, "peer-b", {10, 0}, 50.0, cb);

    a.keys().add_key("peer-a", to_bytes("ka"));
    b.keys().add_key("peer-b", to_bytes("kb"));
    a.trust().trust("peer-b", to_bytes("kb"));
    b.trust().trust("peer-a", to_bytes("ka"));
    a.receiver().allow_capabilities("peer-b", {"net"});
    b.receiver().allow_capabilities("peer-a", {"net"});

    // Each peer shares one extension targeting any Motor.
    ExtensionPackage pa = monitoring_package();
    pa.name = "peer-a/monitor";
    a.base().add_extension(pa);
    ExtensionPackage pb = monitoring_package();
    pb.name = "peer-b/monitor";
    b.base().add_extension(pb);

    SimTime deadline = sim.now() + seconds(15);
    while (sim.now() < deadline &&
           !(a.receiver().installed_count() == 1 && b.receiver().installed_count() == 1)) {
        sim.run_until(sim.now() + milliseconds(100));
    }
    ASSERT_EQ(a.receiver().installed_count(), 1u);
    ASSERT_EQ(b.receiver().installed_count(), 1u);
    EXPECT_EQ(a.receiver().installed()[0].issuer, "peer-b");
    EXPECT_EQ(b.receiver().installed()[0].issuer, "peer-a");
}

}  // namespace
}  // namespace pmp::midas
