// Tests for the robot substrate: device physics, the task layer with
// sensor-event freezing, direct mode, the overriding layer, and the plotter.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/weaver.h"
#include "robot/plotter.h"

namespace pmp::robot {
namespace {

using rt::List;
using rt::Value;

class RobotTest : public ::testing::Test {
protected:
    RobotTest() : runtime_("robot:1"), controller_(sim_, runtime_, "robot:1") {}

    sim::Simulator sim_;
    rt::Runtime runtime_;
    RobotController controller_;
};

TEST_F(RobotTest, MotorRotateUpdatesPositionAndReportsDuration) {
    auto motor = controller_.add_motor("motor:x", /*deg_per_sec_full=*/90.0);
    std::int64_t ms = motor->call("rotate", {Value{45.0}}).as_int();
    EXPECT_EQ(ms, 500);  // 45 deg at 90 deg/s
    EXPECT_DOUBLE_EQ(motor->peek("position").as_real(), 45.0);

    motor->call("rotate", {Value{-45.0}});
    EXPECT_DOUBLE_EQ(motor->peek("position").as_real(), 0.0);
}

TEST_F(RobotTest, MotorPowerScalesSpeed) {
    auto motor = controller_.add_motor("motor:x", 90.0);
    motor->call("set_power", {Value{1}});
    std::int64_t slow = motor->call("rotate", {Value{45.0}}).as_int();
    motor->call("set_power", {Value{7}});
    std::int64_t fast = motor->call("rotate", {Value{45.0}}).as_int();
    EXPECT_EQ(slow, 7 * fast);
}

TEST_F(RobotTest, MotorPowerValidated) {
    auto motor = controller_.add_motor("motor:x");
    EXPECT_THROW(motor->call("set_power", {Value{0}}), TypeError);
    EXPECT_THROW(motor->call("set_power", {Value{8}}), TypeError);
}

TEST_F(RobotTest, MotorStatusCountsActions) {
    auto motor = controller_.add_motor("motor:x");
    motor->call("rotate", {Value{10.0}});
    motor->call("stop", {});
    Value status = motor->call("status", {});
    EXPECT_EQ(status.as_dict().at("actions").as_int(), 2);
}

TEST_F(RobotTest, DevicesShareTheDeviceBaseClass) {
    auto motor = controller_.add_motor("motor:x");
    auto sensor = controller_.add_sensor("sensor:t", "touch");
    EXPECT_TRUE(motor->type().is_a("Device"));
    EXPECT_TRUE(sensor->type().is_a("Device"));
    // Inherited behaviour.
    EXPECT_EQ(motor->call("id", {}).as_str(), "motor:x");
    EXPECT_EQ(sensor->call("id", {}).as_str(), "sensor:t");

    // Disabling through the base-class method stops the motor.
    motor->call("set_enabled", {Value{false}});
    EXPECT_THROW(motor->call("rotate", {Value{10.0}}), Error);
    motor->call("set_enabled", {Value{true}});
    EXPECT_NO_THROW(motor->call("rotate", {Value{10.0}}));
}

TEST_F(RobotTest, DeviceFamilyPointcutCoversMotorsAndSensors) {
    auto motor = controller_.add_motor("motor:x");
    auto sensor = controller_.add_sensor("sensor:t", "touch");
    prose::Weaver weaver(runtime_);
    std::vector<std::string> seen;
    auto aspect = std::make_shared<prose::Aspect>("family");
    aspect->before("call(* Device+.*(..))", [&](rt::CallFrame& f) {
        seen.push_back(f.self.name() + "." + f.method.decl().name);
    });
    weaver.weave(aspect);

    motor->call("rotate", {Value{5.0}});
    sensor->call("read", {});
    motor->call("id", {});
    EXPECT_EQ(seen, (std::vector<std::string>{"motor:x.rotate", "sensor:t.read",
                                              "motor:x.id"}));
}

TEST_F(RobotTest, SensorReadAndKind) {
    auto sensor = controller_.add_sensor("sensor:touch", "touch");
    EXPECT_EQ(sensor->call("kind", {}).as_str(), "touch");
    EXPECT_EQ(sensor->call("read", {}).as_int(), 0);
    inject_reading(*sensor, 1);
    EXPECT_EQ(sensor->call("read", {}).as_int(), 1);
}

TEST_F(RobotTest, TaskExecutesStepsPacedByPhysics) {
    controller_.add_motor("motor:x", 90.0);
    bool completed = false;
    Task task;
    task.name = "sweep";
    task.steps = {MacroStep{"motor:x", "rotate", {Value{90.0}}},
                  MacroStep{"motor:x", "rotate", {Value{-90.0}}},
                  MacroStep{"motor:x", "stop", {}}};
    task.on_done = [&](bool ok) { completed = ok; };
    ASSERT_TRUE(controller_.start_task(task));
    EXPECT_TRUE(controller_.busy());

    // Two 90-degree rotations at 90 deg/s take 2 virtual seconds.
    sim_.run_until(SimTime::zero() + milliseconds(1500));
    EXPECT_FALSE(completed);
    sim_.run_until(SimTime::zero() + seconds(3));
    EXPECT_TRUE(completed);
    EXPECT_FALSE(controller_.busy());
    EXPECT_EQ(controller_.stats().macros_executed, 3u);
    EXPECT_EQ(controller_.stats().tasks_completed, 1u);
}

TEST_F(RobotTest, OnlyOneTaskAtATime) {
    controller_.add_motor("motor:x");
    Task t1;
    t1.name = "one";
    t1.steps = {MacroStep{"motor:x", "rotate", {Value{360.0}}}};
    ASSERT_TRUE(controller_.start_task(t1));
    Task t2;
    t2.name = "two";
    EXPECT_FALSE(controller_.start_task(t2));
}

TEST_F(RobotTest, SensorEventDefaultAborts) {
    controller_.add_motor("motor:x");
    auto sensor = controller_.add_sensor("sensor:touch", "touch");
    bool completed = true;
    Task task;
    task.name = "march";
    for (int i = 0; i < 10; ++i) {
        task.steps.push_back(MacroStep{"motor:x", "rotate", {Value{90.0}}});
    }
    task.on_done = [&](bool ok) { completed = ok; };
    controller_.start_task(task);

    sim_.run_until(SimTime::zero() + milliseconds(1200));
    inject_reading(*sensor, 1);  // obstacle!
    EXPECT_FALSE(completed);
    EXPECT_FALSE(controller_.busy());
    EXPECT_EQ(controller_.stats().tasks_aborted, 1u);
    EXPECT_EQ(controller_.stats().events_handled, 1u);
}

TEST_F(RobotTest, TaskMayDecideToContinueAfterEvent) {
    controller_.add_motor("motor:x");
    auto sensor = controller_.add_sensor("sensor:light", "light");
    bool completed = false;
    int events = 0;
    Task task;
    task.name = "resilient";
    for (int i = 0; i < 3; ++i) {
        task.steps.push_back(MacroStep{"motor:x", "rotate", {Value{90.0}}});
    }
    task.on_event = [&](const std::string& sensor_name, std::int64_t reading) {
        ++events;
        EXPECT_EQ(sensor_name, "sensor:light");
        EXPECT_EQ(reading, 42);
        return TaskDecision::kContinue;
    };
    task.on_done = [&](bool ok) { completed = ok; };
    controller_.start_task(task);

    sim_.run_until(SimTime::zero() + milliseconds(500));
    inject_reading(*sensor, 42);
    sim_.run_until(SimTime::zero() + seconds(5));
    EXPECT_EQ(events, 1);
    EXPECT_TRUE(completed);
}

TEST_F(RobotTest, HardwareFreezesDuringEventHandling) {
    auto motor = controller_.add_motor("motor:x");
    auto sensor = controller_.add_sensor("sensor:touch", "touch");
    Task task;
    task.name = "t";
    task.steps = {MacroStep{"motor:x", "rotate", {Value{90.0}}}};
    task.on_event = [&](const std::string&, std::int64_t) {
        // While the task deliberates, the hardware must refuse commands.
        EXPECT_THROW(motor->call("rotate", {Value{1.0}}), Error);
        return TaskDecision::kAbort;
    };
    controller_.start_task(task);
    sim_.run_until(SimTime::zero() + milliseconds(100));
    inject_reading(*sensor, 1);
    // After handling, the hardware thaws.
    EXPECT_NO_THROW(motor->call("rotate", {Value{1.0}}));
}

TEST_F(RobotTest, OverrideSuspendsAndResumes) {
    auto motor = controller_.add_motor("motor:x");
    std::vector<std::string> done_order;
    Task main_task;
    main_task.name = "main";
    for (int i = 0; i < 4; ++i) {
        main_task.steps.push_back(MacroStep{"motor:x", "rotate", {Value{90.0}}});
    }
    main_task.on_done = [&](bool) { done_order.push_back("main"); };
    controller_.start_task(main_task);
    sim_.run_until(SimTime::zero() + milliseconds(1100));

    Task rescue;
    rescue.name = "rescue";
    rescue.steps = {MacroStep{"motor:x", "rotate", {Value{-360.0}}}};
    rescue.on_done = [&](bool) { done_order.push_back("rescue"); };
    controller_.push_override(rescue);

    sim_.run_until(SimTime::zero() + seconds(15));
    ASSERT_EQ(done_order.size(), 2u);
    EXPECT_EQ(done_order[0], "rescue");
    EXPECT_EQ(done_order[1], "main");
    EXPECT_EQ(controller_.stats().overrides_run, 1u);
    // All of main's 4 plus the rescue rotation happened.
    EXPECT_EQ(motor->state<MotorImpl>().actions, 5u);
}

TEST_F(RobotTest, DirectModeBypassesTasks) {
    auto motor = controller_.add_motor("motor:x");
    controller_.direct("motor:x", "rotate", {Value{30.0}});
    EXPECT_DOUBLE_EQ(motor->peek("position").as_real(), 30.0);
    EXPECT_THROW(controller_.direct("ghost", "rotate", {Value{1.0}}), Error);
}

TEST_F(RobotTest, DeniedMacroAbortsTask) {
    // A policy aspect vetoes large rotations; the task must abort cleanly.
    prose::Weaver weaver(runtime_);
    auto aspect = std::make_shared<prose::Aspect>("limits");
    aspect->before("call(* Motor.rotate(..))", [](rt::CallFrame& f) {
        if (f.args[0].as_real() > 45.0) throw AccessDenied("limit");
    });
    weaver.weave(aspect);

    controller_.add_motor("motor:x");
    bool completed = true;
    Task task;
    task.name = "too-far";
    task.steps = {MacroStep{"motor:x", "rotate", {Value{30.0}}},
                  MacroStep{"motor:x", "rotate", {Value{90.0}}},   // denied
                  MacroStep{"motor:x", "rotate", {Value{30.0}}}};  // never runs
    task.on_done = [&](bool ok) { completed = ok; };
    controller_.start_task(task);
    sim_.run_until(SimTime::zero() + seconds(5));
    EXPECT_FALSE(completed);
    EXPECT_EQ(controller_.stats().macros_executed, 1u);
}

// ------------------------------------------------------------ plotter ----

class PlotterTest : public ::testing::Test {
protected:
    PlotterTest()
        : runtime_("plotter:1"),
          controller_(sim_, runtime_, "plotter:1"),
          plotter_(controller_) {}

    sim::Simulator sim_;
    rt::Runtime runtime_;
    RobotController controller_;
    Plotter plotter_;
};

TEST_F(PlotterTest, MoveDoesNotDrawPenUp) {
    auto drawing = plotter_.drawing();
    drawing->call("move_to", {Value{10.0}, Value{5.0}});
    EXPECT_TRUE(plotter_.trace().empty());
    EXPECT_DOUBLE_EQ(drawing->peek("pos_x").as_real(), 10.0);
    EXPECT_DOUBLE_EQ(drawing->peek("pos_y").as_real(), 5.0);
}

TEST_F(PlotterTest, LineToDrawsSegment) {
    auto drawing = plotter_.drawing();
    drawing->call("move_to", {Value{1.0}, Value{1.0}});
    drawing->call("line_to", {Value{4.0}, Value{5.0}});
    ASSERT_EQ(plotter_.trace().size(), 1u);
    const Segment& seg = plotter_.trace()[0];
    EXPECT_DOUBLE_EQ(seg.x0, 1.0);
    EXPECT_DOUBLE_EQ(seg.y0, 1.0);
    EXPECT_DOUBLE_EQ(seg.x1, 4.0);
    EXPECT_DOUBLE_EQ(seg.y1, 5.0);
    EXPECT_TRUE(drawing->peek("pen").as_bool());
}

TEST_F(PlotterTest, PolylineDecomposesIntoSegments) {
    auto drawing = plotter_.drawing();
    rt::List square{
        Value{List{Value{0.0}, Value{0.0}}}, Value{List{Value{10.0}, Value{0.0}}},
        Value{List{Value{10.0}, Value{10.0}}}, Value{List{Value{0.0}, Value{10.0}}},
        Value{List{Value{0.0}, Value{0.0}}}};
    std::int64_t total_ms = drawing->call("draw_polyline", {Value{square}}).as_int();
    EXPECT_EQ(plotter_.trace().size(), 4u);
    EXPECT_GT(total_ms, 0);
    EXPECT_FALSE(drawing->peek("pen").as_bool());  // pen lifted at the end
}

TEST_F(PlotterTest, MovementsDriveMotors) {
    auto drawing = plotter_.drawing();
    drawing->call("line_to", {Value{3.0}, Value{0.0}});
    auto motor_x = controller_.device("drawing.motor:x");
    ASSERT_NE(motor_x, nullptr);
    // 3 units at 10 deg/unit = 30 degrees on the x motor.
    EXPECT_DOUBLE_EQ(motor_x->peek("position").as_real(), 30.0);
}

TEST_F(PlotterTest, MotorAdviceSeesPlotterMovements) {
    // The hardware-monitoring shape: weave on Motor.*, draw, count events.
    prose::Weaver weaver(runtime_);
    int motor_calls = 0;
    auto aspect = std::make_shared<prose::Aspect>("monitor");
    aspect->before("call(* Motor.rotate(..))", [&](rt::CallFrame&) { ++motor_calls; });
    weaver.weave(aspect);

    plotter_.drawing()->call("line_to", {Value{5.0}, Value{5.0}});
    // Pen-down (z motor) + x and y motors.
    EXPECT_EQ(motor_calls, 3);
}

TEST_F(PlotterTest, CoordinateLimitAspectBlocksDrawing) {
    // The paper's "Control" application: forbid movements beyond certain
    // coordinates so parts of the paper remain untouched.
    prose::Weaver weaver(runtime_);
    auto aspect = std::make_shared<prose::Aspect>("bounds");
    aspect->before("call(* Drawing.line_to(..)) || call(* Drawing.move_to(..))",
                   [](rt::CallFrame& f) {
                       if (f.args[0].as_real() > 100.0 || f.args[1].as_real() > 100.0) {
                           throw AccessDenied("outside drawable area");
                       }
                   });
    weaver.weave(aspect);

    auto drawing = plotter_.drawing();
    EXPECT_NO_THROW(drawing->call("line_to", {Value{50.0}, Value{50.0}}));
    EXPECT_THROW(drawing->call("line_to", {Value{150.0}, Value{50.0}}), AccessDenied);
    EXPECT_EQ(plotter_.trace().size(), 1u);
    EXPECT_DOUBLE_EQ(drawing->peek("pos_x").as_real(), 50.0);  // blocked move didn't happen
}

}  // namespace
}  // namespace pmp::robot
