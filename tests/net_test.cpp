// Tests for the simulated radio network, mobility and message routing.
#include <gtest/gtest.h>

#include "common/error.h"
#include "net/mobility.h"
#include "net/network.h"
#include "net/router.h"

namespace pmp::net {
namespace {

NetworkConfig quiet() {
    NetworkConfig cfg;
    cfg.jitter = Duration{0};
    return cfg;
}

TEST(Position, Distance) {
    EXPECT_DOUBLE_EQ((Position{0, 0}.distance_to(Position{3, 4})), 5.0);
    EXPECT_DOUBLE_EQ((Position{1, 1}.distance_to(Position{1, 1})), 0.0);
}

TEST(Network, ContactRequiresMutualRange) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId big = net.add_node("base", {0, 0}, 100);
    NodeId small = net.add_node("pda", {50, 0}, 10);
    // base reaches pda, but pda's radio cannot reach back at 50m.
    EXPECT_FALSE(net.in_contact(big, small));
    net.move_node(small, {5, 0});
    EXPECT_TRUE(net.in_contact(big, small));
    EXPECT_TRUE(net.in_contact(small, big));
}

TEST(Network, NoSelfContact) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    EXPECT_FALSE(net.in_contact(a, a));
}

TEST(Network, DeliversWithLatency) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);

    SimTime delivered_at = SimTime::max();
    std::string got_kind;
    net.set_handler(b, [&](const Message& m) {
        delivered_at = sim.now();
        got_kind = m.kind;
    });
    ASSERT_TRUE(net.send(Message{a, b, "test.ping", to_bytes("hi")}));
    sim.run();
    EXPECT_EQ(got_kind, "test.ping");
    EXPECT_GE(delivered_at, SimTime::zero() + quiet().base_latency);
    EXPECT_EQ(net.stats().delivered, 1u);
}

TEST(Network, DropsWhenOutOfRangeAtSend) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {100, 0}, 10);
    net.set_handler(b, [&](const Message&) { FAIL() << "should not deliver"; });
    EXPECT_FALSE(net.send(Message{a, b, "x", {}}));
    sim.run();
    EXPECT_EQ(net.stats().dropped_out_of_range, 1u);
}

TEST(Network, DropsWhenReceiverMovesAwayMidFlight) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    bool delivered = false;
    net.set_handler(b, [&](const Message&) { delivered = true; });
    ASSERT_TRUE(net.send(Message{a, b, "x", {}}));
    net.move_node(b, {1000, 0});  // teleports away before delivery
    sim.run();
    EXPECT_FALSE(delivered);
    EXPECT_EQ(net.stats().dropped_out_of_range, 1u);
}

TEST(Network, RemovedNodeDoesNotReceive) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    bool delivered = false;
    net.set_handler(b, [&](const Message&) { delivered = true; });
    ASSERT_TRUE(net.send(Message{a, b, "x", {}}));
    net.remove_node(b);
    sim.run();
    EXPECT_FALSE(delivered);
}

TEST(Network, LossInjection) {
    sim::Simulator sim;
    NetworkConfig cfg = quiet();
    cfg.loss_probability = 1.0;
    Network net(sim, cfg, 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    net.set_handler(b, [&](const Message&) { FAIL() << "lossy link delivered"; });
    EXPECT_FALSE(net.send(Message{a, b, "x", {}}));
    sim.run();
    EXPECT_EQ(net.stats().dropped_loss, 1u);
}

TEST(Network, DuplicateInjection) {
    sim::Simulator sim;
    NetworkConfig cfg = quiet();
    cfg.duplicate_probability = 1.0;
    Network net(sim, cfg, 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    int deliveries = 0;
    net.set_handler(b, [&](const Message&) { ++deliveries; });
    net.send(Message{a, b, "x", {}});
    sim.run();
    EXPECT_EQ(deliveries, 2);
    EXPECT_EQ(net.stats().duplicated, 1u);
}

TEST(Network, BroadcastReachesOnlyNeighbors) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId near1 = net.add_node("n1", {1, 0}, 10);
    NodeId near2 = net.add_node("n2", {0, 1}, 10);
    NodeId far = net.add_node("far", {100, 0}, 10);

    int near_got = 0;
    net.set_handler(near1, [&](const Message&) { ++near_got; });
    net.set_handler(near2, [&](const Message&) { ++near_got; });
    net.set_handler(far, [&](const Message&) { FAIL() << "far node reached"; });

    EXPECT_EQ(net.broadcast(a, "hello", {}), 2u);
    sim.run();
    EXPECT_EQ(near_got, 2);
}

TEST(Network, NeighborsList) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    net.add_node("b", {1, 0}, 10);
    net.add_node("c", {100, 0}, 10);
    EXPECT_EQ(net.neighbors(a).size(), 1u);
}

TEST(Network, LargerMessagesTakeLonger) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    SimTime small_at, big_at;
    int got = 0;
    net.set_handler(b, [&](const Message& m) {
        (got++ == 0 ? small_at : big_at) = sim.now();
        (void)m;
    });
    net.send(Message{a, b, "s", Bytes(10)});
    sim.run();
    SimTime start2 = sim.now();
    net.send(Message{a, b, "b", Bytes(100 * 1024)});
    sim.run();
    EXPECT_GT(big_at - start2, small_at - SimTime::zero() + Duration{0});
}

TEST(Network, UnknownNodeThrows) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    EXPECT_THROW(net.position_of(NodeId{99}), RemoteError);
    EXPECT_THROW(net.move_node(NodeId{99}, {0, 0}), RemoteError);
    EXPECT_THROW(net.set_handler(NodeId{99}, [](const Message&) {}), RemoteError);
}

TEST(Mobility, LinearInterpolation) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    PathMover mover(net, a, {Waypoint{{100, 0}, SimTime::zero() + seconds(10)}});

    sim.run_until(SimTime::zero() + seconds(5));
    Position mid = net.position_of(a);
    EXPECT_NEAR(mid.x, 50.0, 2.0);  // within one tick of the midpoint
    sim.run_until(SimTime::zero() + seconds(11));
    EXPECT_NEAR(net.position_of(a).x, 100.0, 0.01);
    EXPECT_TRUE(mover.finished());
}

TEST(Mobility, MultiLegPath) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    PathMover mover(net, a, {Waypoint{{10, 0}, SimTime::zero() + seconds(1)},
                             Waypoint{{10, 20}, SimTime::zero() + seconds(3)}});
    sim.run_until(SimTime::zero() + seconds(2));
    Position p = net.position_of(a);
    EXPECT_NEAR(p.x, 10.0, 0.5);
    EXPECT_NEAR(p.y, 10.0, 1.5);
    sim.run_until(SimTime::zero() + seconds(4));
    EXPECT_NEAR(net.position_of(a).y, 20.0, 0.01);
}

TEST(Mobility, EmptyPathFinishesImmediately) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    PathMover mover(net, a, {});
    EXPECT_TRUE(mover.finished());
}

TEST(Network, WiredLinkIgnoresDistance) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("base-a", {0, 0}, 10);
    NodeId b = net.add_node("base-b", {10000, 0}, 10);
    EXPECT_FALSE(net.in_contact(a, b));
    net.add_wire(a, b);
    EXPECT_TRUE(net.in_contact(a, b));
    EXPECT_TRUE(net.in_contact(b, a));  // symmetric regardless of argument order

    int got = 0;
    net.set_handler(b, [&](const Message&) { ++got; });
    EXPECT_TRUE(net.send(Message{a, b, "backbone", {}}));
    sim.run();
    EXPECT_EQ(got, 1);
}

TEST(Network, WireDoesNotAffectThirdParties) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {10000, 0}, 10);
    NodeId c = net.add_node("c", {20000, 0}, 10);
    net.add_wire(a, b);
    EXPECT_FALSE(net.in_contact(a, c));
    EXPECT_FALSE(net.in_contact(b, c));
    // Broadcast from a reaches only the wired peer.
    EXPECT_EQ(net.broadcast(a, "x", {}), 1u);
}

TEST(Router, RoutesByKind) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    MessageRouter ra(net, a);
    MessageRouter rb(net, b);

    int pings = 0, pongs = 0;
    rb.route("ping", [&](const Message&) { ++pings; });
    rb.route("pong", [&](const Message&) { ++pongs; });
    ra.send(b, "ping", {});
    ra.send(b, "other", {});  // unrouted: silently dropped
    sim.run();
    EXPECT_EQ(pings, 1);
    EXPECT_EQ(pongs, 0);
}

TEST(Fault, VerdictStreamIsSeedDeterministic) {
    FaultPlan plan;
    plan.loss = 0.2;
    plan.burst_enter = 0.1;
    plan.delay_jitter = milliseconds(10);
    plan.duplicate = 0.1;
    plan.reorder = 0.1;
    FaultInjector a(plan, 42), b(plan, 42), other(plan, 43);

    NodeId n1{1}, n2{2};
    bool any_difference_from_other_seed = false;
    for (int i = 0; i < 200; ++i) {
        SimTime t = SimTime::zero() + milliseconds(i);
        auto va = a.judge(n1, n2, t);
        auto vb = b.judge(n1, n2, t);
        auto vo = other.judge(n1, n2, t);
        EXPECT_EQ(va.drop, vb.drop);
        EXPECT_EQ(va.extra_delay, vb.extra_delay);
        EXPECT_EQ(va.duplicate, vb.duplicate);
        EXPECT_EQ(va.reordered, vb.reordered);
        if (va.drop != vo.drop || va.extra_delay != vo.extra_delay) {
            any_difference_from_other_seed = true;
        }
    }
    EXPECT_TRUE(any_difference_from_other_seed);
}

TEST(Fault, LinkStreamsAreIndependentOfJudgeOrder) {
    // Interleaving traffic on other links must not perturb a link's own
    // fault stream — the property that makes multi-node soaks replayable.
    FaultPlan plan;
    plan.loss = 0.3;
    plan.delay_jitter = milliseconds(10);
    NodeId n1{1}, n2{2}, n3{3};

    FaultInjector alone(plan, 7), interleaved(plan, 7);
    for (int i = 0; i < 100; ++i) {
        SimTime t = SimTime::zero() + milliseconds(i);
        auto va = alone.judge(n1, n2, t);
        interleaved.judge(n3, n1, t);  // extra traffic on another link
        auto vb = interleaved.judge(n1, n2, t);
        interleaved.judge(n2, n3, t);
        EXPECT_EQ(va.drop, vb.drop);
        EXPECT_EQ(va.extra_delay, vb.extra_delay);
    }
}

TEST(Fault, BurstLossClusters) {
    FaultPlan plan;
    plan.burst_enter = 0.05;
    plan.burst_exit = 0.2;
    plan.burst_loss = 1.0;  // every in-burst message drops
    FaultInjector inj(plan, 11);

    NodeId n1{1}, n2{2};
    int drops = 0, runs = 0;
    bool in_run = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = inj.judge(n1, n2, SimTime::zero() + milliseconds(i));
        bool dropped = v.drop == FaultInjector::Drop::kBurst;
        if (dropped) ++drops;
        if (dropped && !in_run) ++runs;
        in_run = dropped;
    }
    ASSERT_GT(drops, 0);
    ASSERT_GT(runs, 0);
    // Clustering: far fewer distinct runs than drops (uniform loss would
    // give runs ~= drops at these rates).
    EXPECT_GT(drops / runs, 2);
}

TEST(Fault, OneWayPartitionCutsSingleDirection) {
    NodeId n1{1}, n2{2}, n3{3};
    FaultPlan plan;
    plan.partitions.push_back(PartitionWindow{SimTime::zero() + seconds(1),
                                             SimTime::zero() + seconds(2),
                                             {n1},
                                             {n2},
                                             /*one_way=*/true});
    FaultInjector inj(plan, 1);

    SimTime before = SimTime::zero(), during = SimTime::zero() + milliseconds(1500),
            after = SimTime::zero() + seconds(2);
    EXPECT_FALSE(inj.partitioned(n1, n2, before));
    EXPECT_TRUE(inj.partitioned(n1, n2, during));
    EXPECT_FALSE(inj.partitioned(n2, n1, during));  // reverse stays up
    EXPECT_FALSE(inj.partitioned(n1, n3, during));  // uninvolved link
    EXPECT_FALSE(inj.partitioned(n1, n2, after));   // healed (exclusive end)
}

TEST(Fault, EmptySideMatchesEveryNode) {
    NodeId n1{1}, n2{2}, n3{3};
    FaultPlan plan;
    // Isolate n1 from everyone, both directions.
    plan.partitions.push_back(
        PartitionWindow{SimTime::zero(), SimTime::max(), {n1}, {}});
    FaultInjector inj(plan, 1);
    SimTime t = SimTime::zero() + seconds(1);
    EXPECT_TRUE(inj.partitioned(n1, n2, t));
    EXPECT_TRUE(inj.partitioned(n3, n1, t));
    EXPECT_FALSE(inj.partitioned(n2, n3, t));
}

TEST(Fault, NetworkDropsDuringPartitionWindowAndHeals) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    int got = 0;
    net.set_handler(b, [&](const Message&) { ++got; });

    FaultPlan plan;
    plan.partitions.push_back(PartitionWindow{SimTime::zero() + seconds(1),
                                             SimTime::zero() + seconds(2),
                                             {a},
                                             {b}});
    net.set_fault_plan(plan, 5);

    auto send_at = [&](Duration when) {
        sim.schedule_at(SimTime::zero() + when,
                        [&] { net.send(Message{a, b, "k", to_bytes("x")}); });
    };
    send_at(milliseconds(500));   // before the window: delivered
    send_at(milliseconds(1500));  // inside: dropped
    send_at(milliseconds(2500));  // after heal: delivered
    sim.run();
    EXPECT_EQ(got, 2);
    EXPECT_EQ(net.stats().fault_dropped_partition, 1u);
}

TEST(Fault, PartitionOpeningMidFlightSwallowsMessage) {
    sim::Simulator sim;
    NetworkConfig cfg = quiet();
    cfg.base_latency = milliseconds(20);
    Network net(sim, cfg, 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    int got = 0;
    net.set_handler(b, [&](const Message&) { ++got; });

    FaultPlan plan;
    plan.partitions.push_back(
        PartitionWindow{SimTime::zero() + milliseconds(10), SimTime::max(), {a}, {b}});
    net.set_fault_plan(plan, 5);

    // Sent while the link is still up, but the window opens before the
    // 20ms transit completes: the jammed radio eats it at delivery time.
    ASSERT_TRUE(net.send(Message{a, b, "k", to_bytes("x")}));
    sim.run();
    EXPECT_EQ(got, 0);
    EXPECT_EQ(net.stats().fault_dropped_partition, 1u);
}

TEST(Fault, DuplicationAndDelayCounters) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    int got = 0;
    net.set_handler(b, [&](const Message&) { ++got; });

    FaultPlan plan;
    plan.duplicate = 1.0;
    plan.delay_jitter = milliseconds(5);
    net.set_fault_plan(plan, 9);
    for (int i = 0; i < 10; ++i) net.send(Message{a, b, "k", to_bytes("x")});
    sim.run();
    EXPECT_EQ(got, 20);  // every message doubled
    EXPECT_EQ(net.stats().fault_duplicated, 10u);
}

TEST(Network, ChurnKeepsNodeTableBounded) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId base = net.add_node("base", {0, 0}, 10);
    net.set_handler(base, [](const Message&) {});

    for (int i = 0; i < 1000; ++i) {
        NodeId n = net.add_node("n" + std::to_string(i), {1, 0}, 10);
        net.set_handler(n, [](const Message&) {});
        net.send(Message{base, n, "k", to_bytes("x")});  // leave one in flight
        net.remove_node(n);
        // Pump occasionally, as a long-lived sim would.
        if (i % 10 == 9) sim.run();
    }
    sim.run();
    // Tombstones are compacted once in-flight deliveries drain: only the
    // base survives 1000 add/remove cycles.
    EXPECT_EQ(net.node_count(), 1u);
}

TEST(Network, RemoveNodeFromItsOwnHandlerIsSafe) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    int got = 0;
    net.set_handler(b, [&](const Message&) {
        ++got;
        net.remove_node(b);  // node removes itself while handling a message
    });
    net.send(Message{a, b, "k", to_bytes("x")});
    net.send(Message{a, b, "k", to_bytes("x")});
    sim.run();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(net.node_count(), 1u);
}

TEST(Router, ThrowingHandlerCostsOneMessageOnly) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    MessageRouter ra(net, a);
    MessageRouter rb(net, b);
    int got = 0;
    rb.route("boom", [&](const Message&) -> void {
        throw std::runtime_error("not an Error subclass");
    });
    rb.route("ok", [&](const Message&) { ++got; });
    ra.send(b, "boom", {});
    ra.send(b, "ok", {});
    EXPECT_NO_THROW(sim.run());  // the throw must not unwind the sim loop
    EXPECT_EQ(got, 1);
}

TEST(Router, UnrouteStopsDelivery) {
    sim::Simulator sim;
    Network net(sim, quiet(), 1);
    NodeId a = net.add_node("a", {0, 0}, 10);
    NodeId b = net.add_node("b", {1, 0}, 10);
    MessageRouter ra(net, a);
    MessageRouter rb(net, b);
    int got = 0;
    rb.route("k", [&](const Message&) { ++got; });
    ra.send(b, "k", {});
    sim.run();
    rb.unroute("k");
    ra.send(b, "k", {});
    sim.run();
    EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace pmp::net
