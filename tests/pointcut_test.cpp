// Tests for the pointcut expression language: glob matching, signature
// patterns, field patterns, boolean algebra, and parse errors.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/pointcut.h"

namespace pmp::prose {
namespace {

using rt::FieldDecl;
using rt::MethodDecl;
using rt::ParamSpec;
using rt::TypeKind;

MethodDecl decl(std::string name, TypeKind ret, std::vector<TypeKind> params,
                bool varargs = false) {
    MethodDecl d;
    d.name = std::move(name);
    d.returns = ret;
    for (std::size_t i = 0; i < params.size(); ++i) {
        d.params.push_back(ParamSpec{"p" + std::to_string(i), params[i]});
    }
    d.varargs = varargs;
    return d;
}

// ------------------------------------------------------------- globs ----

struct GlobCase {
    const char* pattern;
    const char* text;
    bool expect;
};

class GlobMatch : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatch, Matches) {
    const auto& c = GetParam();
    EXPECT_EQ(glob_match(c.pattern, c.text), c.expect)
        << c.pattern << " vs " << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GlobMatch,
    ::testing::Values(GlobCase{"*", "", true}, GlobCase{"*", "anything", true},
                      GlobCase{"", "", true}, GlobCase{"", "x", false},
                      GlobCase{"abc", "abc", true}, GlobCase{"abc", "abd", false},
                      GlobCase{"a*c", "abc", true}, GlobCase{"a*c", "ac", true},
                      GlobCase{"a*c", "abdc", true}, GlobCase{"a*c", "abcd", false},
                      GlobCase{"send*", "sendBytes", true},
                      GlobCase{"send*", "resend", false}, GlobCase{"*send*", "resend", true},
                      GlobCase{"a?c", "abc", true}, GlobCase{"a?c", "ac", false},
                      GlobCase{"**", "x", true}, GlobCase{"*a*b*", "xaxbx", true},
                      GlobCase{"*a*b*", "xbxax", false}));

// Property sweep: the iterative matcher agrees with a naive recursive
// reference implementation on random patterns and texts.
namespace {
bool glob_reference(std::string_view p, std::string_view t) {
    if (p.empty()) return t.empty();
    if (p[0] == '*') {
        return glob_reference(p.substr(1), t) ||
               (!t.empty() && glob_reference(p, t.substr(1)));
    }
    if (t.empty()) return false;
    if (p[0] != '?' && p[0] != t[0]) return false;
    return glob_reference(p.substr(1), t.substr(1));
}
}  // namespace

class GlobProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GlobProperty, AgreesWithReferenceImplementation) {
    pmp::Rng rng(GetParam());
    const char alphabet[] = "ab*?";
    for (int i = 0; i < 2000; ++i) {
        std::string pattern, text;
        for (std::uint64_t n = rng.next_below(8); n > 0; --n) {
            pattern.push_back(alphabet[rng.next_below(4)]);
        }
        for (std::uint64_t n = rng.next_below(8); n > 0; --n) {
            text.push_back(alphabet[rng.next_below(2)]);  // letters only
        }
        EXPECT_EQ(glob_match(pattern, text), glob_reference(pattern, text))
            << "pattern='" << pattern << "' text='" << text << "'";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlobProperty, ::testing::Values(3, 14, 159, 2653));

// --------------------------------------------------------- signatures ----

TEST(Pointcut, PaperExampleSendSignature) {
    // The paper's aspect: before methods 'void *.send*(byte[] x, ..)'.
    Pointcut pc = Pointcut::parse("call(void *.send*(blob, ..))");
    EXPECT_TRUE(pc.matches_method("Radio", decl("sendPacket", TypeKind::kVoid,
                                                {TypeKind::kBlob, TypeKind::kInt})));
    EXPECT_TRUE(pc.matches_method("Mailer", decl("send", TypeKind::kVoid, {TypeKind::kBlob})));
    // Wrong first parameter type.
    EXPECT_FALSE(pc.matches_method("Radio", decl("sendPacket", TypeKind::kVoid,
                                                 {TypeKind::kStr})));
    // Wrong return type.
    EXPECT_FALSE(pc.matches_method("Radio", decl("send", TypeKind::kInt, {TypeKind::kBlob})));
    // Name does not start with send.
    EXPECT_FALSE(pc.matches_method("Radio", decl("resend", TypeKind::kVoid,
                                                 {TypeKind::kBlob})));
}

TEST(Pointcut, MotorStarMatchesAllMethods) {
    Pointcut pc = Pointcut::parse("call(* Motor.*(..))");
    EXPECT_TRUE(pc.matches_method("Motor", decl("rotate", TypeKind::kInt, {TypeKind::kReal})));
    EXPECT_TRUE(pc.matches_method("Motor", decl("stop", TypeKind::kVoid, {})));
    EXPECT_FALSE(pc.matches_method("Sensor", decl("read", TypeKind::kInt, {})));
}

TEST(Pointcut, EmptyParamListMatchesOnlyNullary) {
    Pointcut pc = Pointcut::parse("call(* *.m())");
    EXPECT_TRUE(pc.matches_method("T", decl("m", TypeKind::kVoid, {})));
    EXPECT_FALSE(pc.matches_method("T", decl("m", TypeKind::kVoid, {TypeKind::kInt})));
}

TEST(Pointcut, ExactParamList) {
    Pointcut pc = Pointcut::parse("call(* *.m(int, str))");
    EXPECT_TRUE(pc.matches_method("T", decl("m", TypeKind::kVoid,
                                            {TypeKind::kInt, TypeKind::kStr})));
    EXPECT_FALSE(pc.matches_method("T", decl("m", TypeKind::kVoid, {TypeKind::kInt})));
    EXPECT_FALSE(pc.matches_method(
        "T", decl("m", TypeKind::kVoid, {TypeKind::kInt, TypeKind::kStr, TypeKind::kInt})));
}

TEST(Pointcut, EllipsisAfterPrefix) {
    Pointcut pc = Pointcut::parse("call(* *.m(int, ..))");
    EXPECT_TRUE(pc.matches_method("T", decl("m", TypeKind::kVoid, {TypeKind::kInt})));
    EXPECT_TRUE(pc.matches_method(
        "T", decl("m", TypeKind::kVoid, {TypeKind::kInt, TypeKind::kStr})));
    EXPECT_FALSE(pc.matches_method("T", decl("m", TypeKind::kVoid, {})));
    EXPECT_FALSE(pc.matches_method("T", decl("m", TypeKind::kVoid, {TypeKind::kStr})));
}

TEST(Pointcut, ParamWildcardMatchesSingle) {
    Pointcut pc = Pointcut::parse("call(* *.m(*))");
    EXPECT_TRUE(pc.matches_method("T", decl("m", TypeKind::kVoid, {TypeKind::kDict})));
    EXPECT_FALSE(pc.matches_method("T", decl("m", TypeKind::kVoid, {})));
}

TEST(Pointcut, ExecutionIsSynonymForCall) {
    Pointcut pc = Pointcut::parse("execution(* Motor.*(..))");
    EXPECT_TRUE(pc.matches_method("Motor", decl("stop", TypeKind::kVoid, {})));
}

TEST(Pointcut, ClassPatternGlob) {
    Pointcut pc = Pointcut::parse("call(* Spec*.run(..))");
    EXPECT_TRUE(pc.matches_method("SpecDb", decl("run", TypeKind::kVoid, {})));
    EXPECT_FALSE(pc.matches_method("Motor", decl("run", TypeKind::kVoid, {})));
}

TEST(Pointcut, SubtypePatternMatchesThroughChain) {
    auto device = rt::TypeInfo::Builder("Device").build();
    auto motor = rt::TypeInfo::Builder("Motor").extends(device).build();
    auto servo = rt::TypeInfo::Builder("Servo").extends(motor).build();
    auto other = rt::TypeInfo::Builder("Printer").build();
    MethodDecl m = decl("rotate", TypeKind::kVoid, {});

    Pointcut family = Pointcut::parse("call(* Device+.*(..))");
    EXPECT_TRUE(family.matches_method(*device, m));
    EXPECT_TRUE(family.matches_method(*motor, m));
    EXPECT_TRUE(family.matches_method(*servo, m));  // two levels deep
    EXPECT_FALSE(family.matches_method(*other, m));

    // Without '+', only the concrete class matches.
    Pointcut exact = Pointcut::parse("call(* Device.*(..))");
    EXPECT_TRUE(exact.matches_method(*device, m));
    EXPECT_FALSE(exact.matches_method(*motor, m));

    // The string overload treats the name as a chain of one.
    EXPECT_FALSE(family.matches_method("Motor", m));
    EXPECT_TRUE(family.matches_method("Device", m));
}

TEST(Pointcut, WithinSupportsSubtypes) {
    auto device = rt::TypeInfo::Builder("Device").build();
    auto motor = rt::TypeInfo::Builder("Motor").extends(device).build();
    MethodDecl m = decl("rotate", TypeKind::kVoid, {});

    Pointcut pc = Pointcut::parse("call(* *.rotate(..)) && within(Device+)");
    EXPECT_TRUE(pc.matches_method(*motor, m));
    EXPECT_FALSE(pc.matches_method("Wheel", m));
}

TEST(Pointcut, SubtypeFieldPatterns) {
    auto device = rt::TypeInfo::Builder("Device")
                      .field("enabled", TypeKind::kBool, rt::Value{true})
                      .build();
    auto motor = rt::TypeInfo::Builder("Motor").extends(device).build();
    FieldDecl enabled{"enabled", TypeKind::kBool, {}};

    Pointcut pc = Pointcut::parse("fieldset(Device+.enabled)");
    EXPECT_TRUE(pc.matches_field_set(*motor, enabled));
    EXPECT_TRUE(pc.matches_field_set(*device, enabled));
    EXPECT_FALSE(Pointcut::parse("fieldset(Device.enabled)").matches_field_set(*motor,
                                                                               enabled));
}

TEST(Pointcut, DanglingPlusIsError) {
    EXPECT_THROW(Pointcut::parse("call(* +.m())"), ParseError);
    EXPECT_THROW(Pointcut::parse("within(+)"), ParseError);
}

// -------------------------------------------------------------- fields ----

TEST(Pointcut, FieldSetAndGetAreDistinct) {
    Pointcut set_pc = Pointcut::parse("fieldset(Motor.position)");
    Pointcut get_pc = Pointcut::parse("fieldget(Motor.position)");
    FieldDecl pos{"position", TypeKind::kReal, {}};
    FieldDecl pow{"power", TypeKind::kInt, {}};

    EXPECT_TRUE(set_pc.matches_field_set("Motor", pos));
    EXPECT_FALSE(set_pc.matches_field_get("Motor", pos));
    EXPECT_FALSE(set_pc.matches_field_set("Motor", pow));
    EXPECT_FALSE(set_pc.matches_field_set("Sensor", pos));

    EXPECT_TRUE(get_pc.matches_field_get("Motor", pos));
    EXPECT_FALSE(get_pc.matches_field_set("Motor", pos));
}

TEST(Pointcut, FieldWildcards) {
    Pointcut pc = Pointcut::parse("fieldset(*.pos*)");
    EXPECT_TRUE(pc.matches_field_set("Drawing", FieldDecl{"pos_x", TypeKind::kReal, {}}));
    EXPECT_TRUE(pc.matches_field_set("Motor", FieldDecl{"position", TypeKind::kReal, {}}));
    EXPECT_FALSE(pc.matches_field_set("Motor", FieldDecl{"power", TypeKind::kInt, {}}));
}

TEST(Pointcut, MethodPrimitiveNeverMatchesFields) {
    Pointcut pc = Pointcut::parse("call(* Motor.*(..))");
    EXPECT_FALSE(pc.matches_field_set("Motor", FieldDecl{"position", TypeKind::kReal, {}}));
}

// ------------------------------------------------------------- algebra ----

TEST(Pointcut, AndCombination) {
    Pointcut pc = Pointcut::parse("call(* *.rotate(..)) && within(Motor)");
    EXPECT_TRUE(pc.matches_method("Motor", decl("rotate", TypeKind::kInt, {TypeKind::kReal})));
    EXPECT_FALSE(pc.matches_method("Wheel", decl("rotate", TypeKind::kInt, {TypeKind::kReal})));
}

TEST(Pointcut, OrCombination) {
    Pointcut pc = Pointcut::parse("call(* Motor.stop()) || call(* Sensor.read())");
    EXPECT_TRUE(pc.matches_method("Motor", decl("stop", TypeKind::kVoid, {})));
    EXPECT_TRUE(pc.matches_method("Sensor", decl("read", TypeKind::kInt, {})));
    EXPECT_FALSE(pc.matches_method("Motor", decl("read", TypeKind::kInt, {})));
}

TEST(Pointcut, NotExcludes) {
    Pointcut pc = Pointcut::parse("call(* Motor.*(..)) && !call(* Motor.status(..))");
    EXPECT_TRUE(pc.matches_method("Motor", decl("rotate", TypeKind::kInt, {TypeKind::kReal})));
    EXPECT_FALSE(pc.matches_method("Motor", decl("status", TypeKind::kDict, {})));
}

TEST(Pointcut, PrecedenceAndBindsTighterThanOr) {
    // a || b && c  ==  a || (b && c)
    Pointcut pc = Pointcut::parse(
        "call(* A.x()) || call(* *.y()) && within(B)");
    EXPECT_TRUE(pc.matches_method("A", decl("x", TypeKind::kVoid, {})));
    EXPECT_TRUE(pc.matches_method("B", decl("y", TypeKind::kVoid, {})));
    EXPECT_FALSE(pc.matches_method("C", decl("y", TypeKind::kVoid, {})));
}

TEST(Pointcut, ParenthesesOverridePrecedence) {
    Pointcut pc = Pointcut::parse(
        "(call(* A.x()) || call(* *.y())) && within(B)");
    EXPECT_FALSE(pc.matches_method("A", decl("x", TypeKind::kVoid, {})));
    EXPECT_TRUE(pc.matches_method("B", decl("y", TypeKind::kVoid, {})));
}

// Property: for any method, (a && b) implies a, and a implies (a || b).
TEST(Pointcut, AlgebraImplications) {
    Pointcut a = Pointcut::parse("call(* Motor.*(..))");
    Pointcut b = Pointcut::parse("call(* *.rotate(..))");
    Pointcut a_and_b = Pointcut::parse("call(* Motor.*(..)) && call(* *.rotate(..))");
    Pointcut a_or_b = Pointcut::parse("call(* Motor.*(..)) || call(* *.rotate(..))");

    std::vector<std::pair<std::string, MethodDecl>> samples = {
        {"Motor", decl("rotate", TypeKind::kInt, {TypeKind::kReal})},
        {"Motor", decl("stop", TypeKind::kVoid, {})},
        {"Wheel", decl("rotate", TypeKind::kInt, {TypeKind::kReal})},
        {"Sensor", decl("read", TypeKind::kInt, {})},
    };
    for (const auto& [type, m] : samples) {
        bool am = a.matches_method(type, m);
        bool bm = b.matches_method(type, m);
        EXPECT_EQ(a_and_b.matches_method(type, m), am && bm);
        EXPECT_EQ(a_or_b.matches_method(type, m), am || bm);
    }
}

TEST(Pointcut, SourcePreserved) {
    std::string src = "call(* Motor.*(..))";
    EXPECT_EQ(Pointcut::parse(src).source(), src);
}

TEST(Pointcut, ParseErrors) {
    EXPECT_THROW(Pointcut::parse(""), ParseError);
    EXPECT_THROW(Pointcut::parse("call("), ParseError);
    EXPECT_THROW(Pointcut::parse("call(* Motor)"), ParseError);        // no member
    EXPECT_THROW(Pointcut::parse("call(* Motor.m(int)"), ParseError);  // unbalanced
    EXPECT_THROW(Pointcut::parse("frobnicate(* A.b())"), ParseError);  // unknown primitive
    EXPECT_THROW(Pointcut::parse("call(* A.b()) &&"), ParseError);
    EXPECT_THROW(Pointcut::parse("call(* A.b()) garbage"), ParseError);
    EXPECT_THROW(Pointcut::parse("fieldset(position)"), ParseError);   // needs Class.field
}

TEST(Pointcut, VarargsMethodMatchesPrefixPatterns) {
    // sum(..varargs) should match (int, ..) style and (..).
    MethodDecl sum = decl("sum", TypeKind::kInt, {}, /*varargs=*/true);
    EXPECT_TRUE(Pointcut::parse("call(* T.sum(..))").matches_method("T", sum));
    EXPECT_TRUE(Pointcut::parse("call(* T.sum())").matches_method("T", sum));
}

}  // namespace
}  // namespace pmp::prose
