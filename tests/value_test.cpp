// Tests for the dynamic Value type: accessors, Dict, rendering, and the
// canonical encoding (including a property-style random round-trip sweep).
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "rt/value.h"

namespace pmp::rt {
namespace {

TEST(Value, KindsAndAccessors) {
    EXPECT_TRUE(Value{}.is_null());
    EXPECT_EQ(Value{true}.as_bool(), true);
    EXPECT_EQ(Value{42}.as_int(), 42);
    EXPECT_DOUBLE_EQ(Value{2.5}.as_real(), 2.5);
    EXPECT_EQ(Value{"hi"}.as_str(), "hi");
    EXPECT_EQ((Value{Bytes{1, 2}}.as_blob()), (Bytes{1, 2}));
    EXPECT_EQ((Value{List{Value{1}}}.as_list().size()), 1u);
    EXPECT_EQ((Value{Dict{{"k", Value{1}}}}.as_dict().size()), 1u);
}

TEST(Value, IntPromotesToRealAccessor) {
    EXPECT_DOUBLE_EQ(Value{3}.as_real(), 3.0);
}

TEST(Value, WrongKindThrows) {
    EXPECT_THROW(Value{1}.as_str(), TypeError);
    EXPECT_THROW(Value{"x"}.as_int(), TypeError);
    EXPECT_THROW(Value{2.5}.as_int(), TypeError);  // no silent truncation
    EXPECT_THROW(Value{}.as_list(), TypeError);
}

TEST(Value, Truthiness) {
    EXPECT_FALSE(Value{}.truthy());
    EXPECT_FALSE(Value{false}.truthy());
    EXPECT_FALSE(Value{0}.truthy());
    EXPECT_FALSE(Value{0.0}.truthy());
    EXPECT_FALSE(Value{""}.truthy());
    EXPECT_FALSE(Value{List{}}.truthy());
    EXPECT_FALSE(Value{Dict{}}.truthy());
    EXPECT_TRUE(Value{true}.truthy());
    EXPECT_TRUE(Value{-1}.truthy());
    EXPECT_TRUE(Value{"x"}.truthy());
    EXPECT_TRUE((Value{List{Value{}}}.truthy()));
}

TEST(Value, EqualityIsStrict) {
    EXPECT_EQ(Value{1}, Value{1});
    EXPECT_NE(Value{1}, Value{1.0});  // different kinds
    EXPECT_EQ(Value{"a"}, Value{"a"});
    EXPECT_EQ((Value{List{Value{1}, Value{2}}}), (Value{List{Value{1}, Value{2}}}));
}

TEST(Value, ToStringRendering) {
    EXPECT_EQ(Value{}.to_string(), "null");
    EXPECT_EQ(Value{true}.to_string(), "true");
    EXPECT_EQ(Value{42}.to_string(), "42");
    EXPECT_EQ(Value{"a\"b"}.to_string(), "\"a\\\"b\"");
    EXPECT_EQ((Value{List{Value{1}, Value{"x"}}}.to_string()), "[1, \"x\"]");
    Dict d{{"b", Value{2}}, {"a", Value{1}}};
    EXPECT_EQ(Value{d}.to_string(), "{\"a\": 1, \"b\": 2}");  // sorted keys
}

TEST(Dict, SetFindErase) {
    Dict d;
    EXPECT_TRUE(d.empty());
    d.set("x", Value{1});
    d.set("a", Value{2});
    d.set("x", Value{3});  // overwrite
    EXPECT_EQ(d.size(), 2u);
    ASSERT_NE(d.find("x"), nullptr);
    EXPECT_EQ(d.find("x")->as_int(), 3);
    EXPECT_EQ(d.find("missing"), nullptr);
    EXPECT_EQ(d.at("a").as_int(), 2);
    EXPECT_THROW(d.at("missing"), TypeError);
    EXPECT_TRUE(d.erase("a"));
    EXPECT_FALSE(d.erase("a"));
    EXPECT_EQ(d.size(), 1u);
}

TEST(Dict, IterationIsSorted) {
    Dict d{{"zebra", Value{1}}, {"apple", Value{2}}, {"mango", Value{3}}};
    std::vector<std::string> keys;
    for (const auto& [k, _] : d) keys.push_back(k);
    EXPECT_EQ(keys, (std::vector<std::string>{"apple", "mango", "zebra"}));
}

TEST(ValueEncode, ScalarsRoundTrip) {
    for (const Value& v :
         {Value{}, Value{true}, Value{false}, Value{0}, Value{-1}, Value{INT64_MAX},
          Value{3.14159}, Value{-0.0}, Value{""}, Value{"hello"}, Value{Bytes{0, 255}}}) {
        EXPECT_EQ(Value::decode(std::span<const std::uint8_t>(v.encode())), v)
            << v.to_string();
    }
}

TEST(ValueEncode, NestedRoundTrip) {
    Value v{Dict{{"list", Value{List{Value{1}, Value{"two"}, Value{Dict{{"x", Value{}}}}}}},
                 {"blob", Value{Bytes{1, 2, 3}}}}};
    EXPECT_EQ(Value::decode(std::span<const std::uint8_t>(v.encode())), v);
}

TEST(ValueEncode, CanonicalAcrossInsertionOrder) {
    Dict d1;
    d1.set("a", Value{1});
    d1.set("b", Value{2});
    Dict d2;
    d2.set("b", Value{2});
    d2.set("a", Value{1});
    EXPECT_EQ(Value{d1}.encode(), Value{d2}.encode());
}

TEST(ValueEncode, TruncatedInputThrows) {
    Bytes enc = Value{"hello"}.encode();
    enc.resize(enc.size() - 2);
    EXPECT_THROW(Value::decode(std::span<const std::uint8_t>(enc)), ParseError);
}

TEST(ValueEncode, UnknownTagThrows) {
    Bytes enc{0x7F};
    EXPECT_THROW(Value::decode(std::span<const std::uint8_t>(enc)), ParseError);
}

// Property sweep: random value trees survive encode/decode for many seeds.
class ValueRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
protected:
    static Value random_value(Rng& rng, int depth) {
        int pick = static_cast<int>(rng.next_below(depth > 3 ? 6 : 8));
        switch (pick) {
            case 0: return Value{};
            case 1: return Value{rng.chance(0.5)};
            case 2: return Value{static_cast<std::int64_t>(rng.next_u64())};
            case 3: return Value{rng.next_double() * 1e6 - 5e5};
            case 4: {
                std::string s;
                for (std::uint64_t i = rng.next_below(20); i > 0; --i) {
                    s.push_back(static_cast<char>('a' + rng.next_below(26)));
                }
                return Value{std::move(s)};
            }
            case 5: {
                Bytes b;
                for (std::uint64_t i = rng.next_below(32); i > 0; --i) {
                    b.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
                }
                return Value{std::move(b)};
            }
            case 6: {
                List l;
                for (std::uint64_t i = rng.next_below(5); i > 0; --i) {
                    l.push_back(random_value(rng, depth + 1));
                }
                return Value{std::move(l)};
            }
            default: {
                Dict d;
                for (std::uint64_t i = rng.next_below(5); i > 0; --i) {
                    d.set("k" + std::to_string(rng.next_below(100)),
                          random_value(rng, depth + 1));
                }
                return Value{std::move(d)};
            }
        }
    }
};

TEST_P(ValueRoundTrip, EncodeDecodeIdentity) {
    Rng rng(GetParam());
    for (int i = 0; i < 50; ++i) {
        Value v = random_value(rng, 0);
        Value back = Value::decode(std::span<const std::uint8_t>(v.encode()));
        EXPECT_EQ(back, v) << v.to_string();
        // Canonical: re-encoding the decoded value gives identical bytes.
        EXPECT_EQ(back.encode(), v.encode());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

}  // namespace
}  // namespace pmp::rt
