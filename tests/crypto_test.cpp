// Crypto tests: SHA-256 against FIPS 180-4 vectors, HMAC against RFC 4231,
// and the trust model (sign / verify / tamper / unknown issuer).
#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/trust.h"

namespace pmp::crypto {
namespace {

TEST(Sha256, EmptyString) {
    EXPECT_EQ(to_hex(Sha256::hash("")),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(to_hex(Sha256::hash("abc")),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(to_hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
    Sha256 h;
    std::string chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(to_hex(h.finalize()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
    std::string message = "The quick brown fox jumps over the lazy dog";
    // Feed in awkward chunk sizes crossing the 64-byte block boundary.
    for (std::size_t chunk : {1u, 3u, 7u, 13u, 63u, 64u, 65u}) {
        Sha256 h;
        for (std::size_t i = 0; i < message.size(); i += chunk) {
            h.update(std::string_view(message).substr(i, chunk));
        }
        EXPECT_EQ(h.finalize(), Sha256::hash(message)) << "chunk=" << chunk;
    }
}

TEST(Sha256, ExactBlockBoundaries) {
    // 55/56/64 bytes exercise the padding edge cases.
    for (std::size_t n : {55u, 56u, 63u, 64u, 119u, 120u}) {
        std::string a(n, 'x');
        Sha256 h;
        h.update(a);
        EXPECT_EQ(h.finalize(), Sha256::hash(a)) << "n=" << n;
    }
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
    Bytes key(20, 0x0b);
    Mac mac = hmac_sha256(std::span<const std::uint8_t>(key), as_bytes("Hi There"));
    EXPECT_EQ(to_hex(mac),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 (short key "Jefe").
TEST(Hmac, Rfc4231Case2) {
    Mac mac = hmac_sha256("Jefe", "what do ya want for nothing?");
    EXPECT_EQ(to_hex(mac),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (0xaa key, 0xdd data).
TEST(Hmac, Rfc4231Case3) {
    Bytes key(20, 0xaa);
    Bytes data(50, 0xdd);
    Mac mac = hmac_sha256(std::span<const std::uint8_t>(key),
                          std::span<const std::uint8_t>(data));
    EXPECT_EQ(to_hex(mac),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6 (131-byte key: longer than the block size).
TEST(Hmac, Rfc4231LongKey) {
    Bytes key(131, 0xaa);
    Mac mac = hmac_sha256(std::span<const std::uint8_t>(key),
                          as_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
    EXPECT_EQ(to_hex(mac),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, MacEqualConstantTimeSemantics) {
    Mac a = hmac_sha256("k", "m");
    Mac b = a;
    EXPECT_TRUE(mac_equal(a, b));
    b[31] ^= 1;
    EXPECT_FALSE(mac_equal(a, b));
}

TEST(Trust, SignVerifyRoundTrip) {
    KeyStore keys;
    keys.add_key("hall-a", to_bytes("secret-key-hall-a"));
    TrustStore trust;
    trust.trust("hall-a", to_bytes("secret-key-hall-a"));

    Bytes payload = to_bytes("extension payload");
    Signature sig = keys.sign("hall-a", std::span<const std::uint8_t>(payload));
    EXPECT_EQ(sig.issuer, "hall-a");
    EXPECT_NO_THROW(trust.verify(std::span<const std::uint8_t>(payload), sig));
}

TEST(Trust, TamperedPayloadRejected) {
    KeyStore keys;
    keys.add_key("hall-a", to_bytes("k"));
    TrustStore trust;
    trust.trust("hall-a", to_bytes("k"));

    Bytes payload = to_bytes("payload");
    Signature sig = keys.sign("hall-a", std::span<const std::uint8_t>(payload));
    payload[0] ^= 0xFF;
    EXPECT_THROW(trust.verify(std::span<const std::uint8_t>(payload), sig), TrustError);
}

TEST(Trust, UnknownIssuerRejected) {
    KeyStore keys;
    keys.add_key("mallory", to_bytes("mk"));
    TrustStore trust;  // trusts nobody

    Bytes payload = to_bytes("payload");
    Signature sig = keys.sign("mallory", std::span<const std::uint8_t>(payload));
    EXPECT_THROW(trust.verify(std::span<const std::uint8_t>(payload), sig), TrustError);
}

TEST(Trust, WrongKeyRejected) {
    KeyStore keys;
    keys.add_key("hall-a", to_bytes("real-key"));
    TrustStore trust;
    trust.trust("hall-a", to_bytes("other-key"));

    Bytes payload = to_bytes("payload");
    Signature sig = keys.sign("hall-a", std::span<const std::uint8_t>(payload));
    EXPECT_THROW(trust.verify(std::span<const std::uint8_t>(payload), sig), TrustError);
}

TEST(Trust, RevokeRemovesTrust) {
    KeyStore keys;
    keys.add_key("hall-a", to_bytes("k"));
    TrustStore trust;
    trust.trust("hall-a", to_bytes("k"));
    EXPECT_TRUE(trust.trusts("hall-a"));
    trust.revoke("hall-a");
    EXPECT_FALSE(trust.trusts("hall-a"));

    Bytes payload = to_bytes("p");
    Signature sig = keys.sign("hall-a", std::span<const std::uint8_t>(payload));
    EXPECT_THROW(trust.verify(std::span<const std::uint8_t>(payload), sig), TrustError);
}

TEST(Trust, SigningWithoutKeyThrows) {
    KeyStore keys;
    Bytes payload = to_bytes("p");
    EXPECT_THROW(keys.sign("nobody", std::span<const std::uint8_t>(payload)), TrustError);
}

TEST(Trust, SignatureEncodeDecodeRoundTrip) {
    KeyStore keys;
    keys.add_key("issuer with spaces", to_bytes("k"));
    Bytes payload = to_bytes("data");
    Signature sig = keys.sign("issuer with spaces", std::span<const std::uint8_t>(payload));

    Bytes encoded = sig.encode();
    ByteReader reader{std::span<const std::uint8_t>(encoded)};
    Signature decoded = Signature::decode(reader);
    EXPECT_EQ(decoded.issuer, sig.issuer);
    EXPECT_TRUE(mac_equal(decoded.mac, sig.mac));
    EXPECT_TRUE(reader.exhausted());
}

}  // namespace
}  // namespace pmp::crypto
