// Overload protection: admission control (bounded class-prioritized queues,
// load shedding with retry-after), caller-side circuit breakers, the
// receiver's per-extension resource governor (throttle -> suspend ->
// quarantine, plus the virtual-time advice watchdog), reply-cache bounds
// under duplication storms, and log-storm suppression.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "common/log.h"
#include "midas/node.h"
#include "net/fault.h"
#include "net/router.h"
#include "obs/metrics.h"
#include "robot/devices.h"
#include "rt/breaker.h"
#include "rt/rpc.h"
#include "sim/token_bucket.h"

namespace pmp {
namespace {

using midas::AdaptationService;
using midas::ExtensionPackage;
using midas::MobileNode;
using midas::PackageBinding;
using midas::ReceiverConfig;
using rt::Dict;
using rt::List;
using rt::ServiceObject;
using rt::TypeInfo;
using rt::TypeKind;
using rt::Value;

std::uint64_t counter_value(const char* name, const std::string& label = {}) {
    return obs::Registry::global().counter(name, label).value();
}

// ---------------------------------------------------------------------------
// Token bucket: pure virtual-time math.

TEST(TokenBucket, StartsFullAndRefillsWithVirtualTime) {
    sim::TokenBucket bucket(10.0, 2.0);  // 10 tokens/s, burst 2
    SimTime t0 = SimTime::zero();
    EXPECT_TRUE(bucket.try_take(t0));
    EXPECT_TRUE(bucket.try_take(t0));
    EXPECT_FALSE(bucket.try_take(t0));
    Duration wait = bucket.time_until(t0);
    EXPECT_GT(wait.count(), 0);
    EXPECT_LE(wait, milliseconds(101));
    EXPECT_TRUE(bucket.try_take(t0 + milliseconds(150)));
}

TEST(TokenBucket, NonPositiveRateMeansUnlimited) {
    sim::TokenBucket bucket(0.0, 0.0);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(bucket.try_take(SimTime::zero()));
    }
    EXPECT_EQ(bucket.time_until(SimTime::zero()).count(), 0);
}

// ---------------------------------------------------------------------------
// Admission queue.

TEST(Admission, FastPathRunsSynchronously) {
    sim::Simulator sim;
    net::AdmissionQueue q(sim, net::AdmissionConfig{});
    bool ran = false;
    auto d = q.offer(net::AdmitClass::kApp, [&] { ran = true; });
    EXPECT_TRUE(ran);
    EXPECT_TRUE(d.admitted);
    EXPECT_FALSE(d.queued);
    EXPECT_EQ(q.queued_total(), 0u);
}

TEST(Admission, DisabledAdmitsEverything) {
    sim::Simulator sim;
    net::AdmissionConfig cfg;
    cfg.enabled = false;
    cfg.rate_per_sec = 0.0001;  // would shed everything if enabled
    cfg.queue_cap = {0, 0, 0};
    net::AdmissionQueue q(sim, cfg);
    int ran = 0;
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(q.offer(net::AdmitClass::kApp, [&] { ++ran; }).admitted);
    }
    EXPECT_EQ(ran, 100);
}

TEST(Admission, DrainsQueuedWorkInClassPriorityOrder) {
    sim::Simulator sim;
    net::AdmissionConfig cfg;
    cfg.rate_per_sec = 10.0;
    cfg.burst = 1.0;
    net::AdmissionQueue q(sim, cfg);

    std::vector<std::string> order;
    // Burn the single token.
    q.offer(net::AdmitClass::kApp, [&] { order.push_back("first"); });
    // These queue — note offer order is the *reverse* of priority order.
    q.offer(net::AdmitClass::kApp, [&] { order.push_back("app"); });
    q.offer(net::AdmitClass::kInstall, [&] { order.push_back("install"); });
    q.offer(net::AdmitClass::kControl, [&] { order.push_back("control"); });
    EXPECT_EQ(q.queued_total(), 3u);

    sim.run_for(seconds(1));
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], "first");
    EXPECT_EQ(order[1], "control");
    EXPECT_EQ(order[2], "install");
    EXPECT_EQ(order[3], "app");
    EXPECT_EQ(q.queued_total(), 0u);
}

TEST(Admission, ShedsWhenClassQueueFullWithRetryAfterHint) {
    sim::Simulator sim;
    net::AdmissionConfig cfg;
    cfg.rate_per_sec = 10.0;
    cfg.burst = 1.0;
    cfg.queue_cap = {4, 4, 1};
    net::AdmissionQueue q(sim, cfg);

    int ran = 0;
    q.offer(net::AdmitClass::kApp, [&] { ++ran; });  // token gone
    auto queued = q.offer(net::AdmitClass::kApp, [&] { ++ran; });
    EXPECT_TRUE(queued.queued);
    auto shed = q.offer(net::AdmitClass::kApp, [&] { ++ran; });
    EXPECT_FALSE(shed.admitted);
    EXPECT_FALSE(shed.queued);
    // The hint covers the backlog ahead of the shed call: ~2 tokens at
    // 10/s.
    EXPECT_GT(shed.retry_after.count(), 0);
    EXPECT_LE(shed.retry_after, milliseconds(500));

    sim.run_for(seconds(1));
    EXPECT_EQ(ran, 2);  // shed work never runs
}

// ---------------------------------------------------------------------------
// RPC + admission: typed Overloaded error, retry-after, control bypass.

class OverloadRpcTest : public ::testing::Test {
protected:
    OverloadRpcTest()
        : net_(sim_, net::NetworkConfig{}, 7),
          a_id_(net_.add_node("client", {0, 0}, 50)),
          b_id_(net_.add_node("server", {1, 0}, 50)),
          a_router_(net_, a_id_),
          b_router_(net_, b_id_),
          a_rt_("client"),
          b_rt_("server"),
          a_rpc_(a_router_, a_rt_),
          b_rpc_(b_router_, b_rt_) {
        b_rt_.register_type(TypeInfo::Builder("Echo")
                                .method("ping", TypeKind::kInt, {},
                                        [this](ServiceObject&, List&) -> Value {
                                            return Value{std::int64_t{++pings_}};
                                        })
                                .build());
        b_rt_.create("Echo", "echo");
        b_rpc_.export_object("echo");
        // An object *named* like the adaptation service: admission
        // classifies by name, so this rides the control class.
        b_rt_.register_type(TypeInfo::Builder("Ctl")
                                .method("list", TypeKind::kInt, {},
                                        [this](ServiceObject&, List&) -> Value {
                                            return Value{std::int64_t{++ctl_}};
                                        })
                                .build());
        b_rt_.create("Ctl", "adaptation");
        b_rpc_.export_object("adaptation");
        // The control-plane prefix registration NodeStack normally does;
        // this raw fixture wires it by hand so classify() sees it.
        a_rpc_.exempt_from_filters("adaptation");
        b_rpc_.exempt_from_filters("adaptation");
    }

    sim::Simulator sim_;
    net::Network net_;
    NodeId a_id_, b_id_;
    net::MessageRouter a_router_, b_router_;
    rt::Runtime a_rt_, b_rt_;
    rt::RpcEndpoint a_rpc_, b_rpc_;
    std::int64_t pings_ = 0;
    std::int64_t ctl_ = 0;
};

TEST_F(OverloadRpcTest, ShedCallSurfacesTypedOverloadedWithRetryAfter) {
    net::AdmissionConfig cfg;
    cfg.rate_per_sec = 2.0;
    cfg.burst = 1.0;
    cfg.queue_cap = {0, 0, 0};
    b_router_.admission().set_config(cfg);
    const std::uint64_t shed0 = counter_value("rpc.shed");

    int ok = 0;
    std::exception_ptr err;
    for (int i = 0; i < 2; ++i) {
        a_rpc_.call_async(b_id_, "echo", "ping", {}, [&](Value, std::exception_ptr e) {
            if (e) {
                err = e;
            } else {
                ++ok;
            }
        });
    }
    sim_.run_for(seconds(1));
    EXPECT_EQ(ok, 1);
    ASSERT_TRUE(err != nullptr);
    try {
        std::rethrow_exception(err);
    } catch (const Overloaded& e) {
        EXPECT_GT(e.retry_after().count(), 0);
        EXPECT_LE(e.retry_after(), seconds(1));
    } catch (...) {
        FAIL() << "expected Overloaded";
    }
    EXPECT_GE(counter_value("rpc.shed") - shed0, 1u);
}

TEST_F(OverloadRpcTest, RetryMachineryHonorsRetryAfterHint) {
    net::AdmissionConfig cfg;
    cfg.rate_per_sec = 2.0;  // a token every 500ms
    cfg.burst = 1.0;
    cfg.queue_cap = {0, 0, 0};
    b_router_.admission().set_config(cfg);
    const std::uint64_t retries0 = counter_value("rpc.overload_retries");

    // Burn the token, then call with retries: the first attempt is shed
    // with a ~500ms hint, the retry waits it out and succeeds.
    a_rpc_.call_async(b_id_, "echo", "ping", {}, [](Value, std::exception_ptr) {});
    bool ok = false;
    std::exception_ptr err;
    rt::CallOptions opts;
    opts.retries = 2;
    opts.retry_backoff = milliseconds(10);
    a_rpc_.call_async(b_id_, "echo", "ping", {}, opts,
                      [&](Value, std::exception_ptr e) {
                          ok = !e;
                          err = e;
                      });
    sim_.run_for(seconds(3));
    EXPECT_TRUE(ok) << "retry after shed should have succeeded";
    EXPECT_GE(counter_value("rpc.overload_retries") - retries0, 1u);
    EXPECT_EQ(pings_, 2);
}

TEST_F(OverloadRpcTest, ControlTrafficOvertakesAQueuedAppStorm) {
    net::AdmissionConfig cfg;
    cfg.rate_per_sec = 2.0;
    cfg.burst = 1.0;
    cfg.queue_cap = {4, 2, 8};
    b_router_.admission().set_config(cfg);

    // An app storm: one admitted, eight queued (4s of backlog), the rest
    // shed.
    int app_errors = 0;
    for (int i = 0; i < 20; ++i) {
        a_rpc_.call_async(b_id_, "echo", "ping", {},
                          [&](Value, std::exception_ptr e) { app_errors += e ? 1 : 0; });
    }
    sim_.run_for(milliseconds(50));
    // A control-plane call arrives *behind* the whole storm, yet completes
    // on the next token instead of waiting out the app queue.
    bool ctl_done = false;
    a_rpc_.call_async(b_id_, "adaptation", "list", {},
                      [&](Value, std::exception_ptr e) { ctl_done = !e; });
    sim_.run_for(milliseconds(700));
    EXPECT_TRUE(ctl_done) << "control call must jump the app backlog";
    EXPECT_GT(app_errors, 0);  // the overflow really was shed
}

TEST_F(OverloadRpcTest, ReplyCacheStaysBoundedUnderDuplicationStorm) {
    const std::uint64_t evict0 = counter_value("rpc.reply_cache_evictions");
    net::FaultPlan plan;
    plan.duplicate = 1.0;  // the radio doubles every frame
    net_.set_fault_plan(plan, 99);

    for (int i = 0; i < 300; ++i) {
        a_rpc_.call_sync(b_id_, "echo", "ping", {});
    }
    std::int64_t size = obs::Registry::global().gauge("rpc.reply_cache_size", "server").value();
    EXPECT_GT(size, 0);
    EXPECT_LE(size, 256) << "reply cache must stay bounded";
    EXPECT_GE(counter_value("rpc.reply_cache_evictions") - evict0, 40u);
    EXPECT_EQ(pings_, 300) << "dups must not re-execute calls";
}

// ---------------------------------------------------------------------------
// Circuit breaker state machine.

TEST(Breaker, OpensAfterThresholdShortCircuitsThenProbes) {
    sim::Simulator sim;
    rt::CircuitBreaker br(sim, "test", rt::BreakerConfig{2, seconds(1), seconds(4)});
    NodeId n{42};

    EXPECT_TRUE(br.allow(n));
    br.on_failure(n, /*relevant=*/true);
    EXPECT_TRUE(br.allow(n));  // below threshold
    br.on_failure(n, /*relevant=*/true);
    EXPECT_EQ(br.state_of(n), rt::CircuitBreaker::State::kOpen);
    EXPECT_FALSE(br.allow(n));  // short-circuited

    sim.run_for(milliseconds(1100));
    EXPECT_TRUE(br.allow(n));  // half-open: one probe granted
    EXPECT_EQ(br.state_of(n), rt::CircuitBreaker::State::kHalfOpen);
    EXPECT_FALSE(br.allow(n));  // second probe refused while one is in flight
    br.on_success(n);
    EXPECT_EQ(br.state_of(n), rt::CircuitBreaker::State::kClosed);
    EXPECT_TRUE(br.allow(n));
}

TEST(Breaker, FailedProbeReopensWithDoubledCooldown) {
    sim::Simulator sim;
    rt::CircuitBreaker br(sim, "test2", rt::BreakerConfig{1, seconds(1), seconds(8)});
    NodeId n{7};

    br.on_failure(n, true);  // open, cooldown 1s
    sim.run_for(milliseconds(1100));
    EXPECT_TRUE(br.allow(n));   // probe
    br.on_failure(n, true);     // probe fails: open again, cooldown 2s
    EXPECT_EQ(br.state_of(n), rt::CircuitBreaker::State::kOpen);
    sim.run_for(milliseconds(1100));
    EXPECT_FALSE(br.allow(n)) << "doubled cooldown not elapsed yet";
    sim.run_for(milliseconds(1000));
    EXPECT_TRUE(br.allow(n));
    br.on_success(n);
    EXPECT_EQ(br.state_of(n), rt::CircuitBreaker::State::kClosed);
}

TEST(Breaker, IrrelevantFailuresAndSuccessesResetTheStreak) {
    sim::Simulator sim;
    rt::CircuitBreaker br(sim, "test3", rt::BreakerConfig{2, seconds(1), seconds(8)});
    NodeId n{9};

    // A remote *application* error proves the peer is alive and answering:
    // it must reset the streak, not extend it.
    br.on_failure(n, true);
    br.on_failure(n, /*relevant=*/false);
    br.on_failure(n, true);
    EXPECT_EQ(br.state_of(n), rt::CircuitBreaker::State::kClosed);
    EXPECT_TRUE(br.allow(n));
}

TEST(Breaker, DisabledByNonPositiveThreshold) {
    sim::Simulator sim;
    rt::CircuitBreaker br(sim, "test4", rt::BreakerConfig{0, seconds(1), seconds(8)});
    NodeId n{3};
    for (int i = 0; i < 50; ++i) br.on_failure(n, true);
    EXPECT_TRUE(br.allow(n));
    EXPECT_EQ(br.state_of(n), rt::CircuitBreaker::State::kClosed);
}

// ---------------------------------------------------------------------------
// Receiver resource governor.

ExtensionPackage advice_pkg(const std::string& name, const std::string& body) {
    ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = "fun onEntry() { " + body + " }";
    pkg.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

struct GovWorld {
    sim::Simulator sim;
    net::Network net;
    crypto::KeyStore keys;
    std::unique_ptr<MobileNode> robot;
    std::shared_ptr<ServiceObject> motor;
    ExtensionId ext{};

    explicit GovWorld(ReceiverConfig rc) : net(sim, net::NetworkConfig{}, 11) {
        keys.add_key("hall", to_bytes("k"));
        robot = std::make_unique<MobileNode>(net, "robot", net::Position{0, 0}, 100.0, rc);
        robot->trust().trust("hall", to_bytes("k"));
        motor = robot::make_motor(robot->runtime(), "motor:x");
    }

    void install(const ExtensionPackage& pkg, std::int64_t lease_ms = 60'000) {
        Bytes sealed = pkg.seal(keys, "hall");
        Value r = robot->receiver().install_from(robot->id(), sealed, lease_ms);
        ext = ExtensionId{static_cast<std::uint64_t>(r.as_dict().at("ext").as_int())};
    }

    AdaptationService::GovernorMode mode() { return robot->receiver().governor_mode(ext); }
};

TEST(Governor, InvocationBudgetClimbsThrottleThenSuspend) {
    ReceiverConfig rc;
    rc.governor_invocation_budget = 3;
    rc.governor_suspend_factor = 2.0;
    rc.governor_throttle_keep = 2;
    rc.governor_quarantine_after = 0;  // never; this test is about the ladder
    GovWorld w(rc);
    w.install(advice_pkg("hall/noop", ""));
    const std::uint64_t throttles0 = counter_value("recv.governor.throttles", "robot");
    const std::uint64_t suspends0 = counter_value("recv.governor.suspends", "robot");
    const std::uint64_t skipped0 = counter_value("recv.governor.skipped", "robot");

    for (int i = 0; i < 4; ++i) w.motor->call("rotate", {Value{1.0}});
    EXPECT_EQ(w.mode(), AdaptationService::GovernorMode::kThrottled);
    EXPECT_EQ(counter_value("recv.governor.throttles", "robot") - throttles0, 1u);

    for (int i = 0; i < 8; ++i) w.motor->call("rotate", {Value{1.0}});
    EXPECT_EQ(w.mode(), AdaptationService::GovernorMode::kSuspended);
    EXPECT_EQ(counter_value("recv.governor.suspends", "robot") - suspends0, 1u);
    EXPECT_GT(counter_value("recv.governor.skipped", "robot") - skipped0, 0u);

    // Suspended means pass-through, not broken: the application call works
    // and the extension stays installed.
    w.motor->call("rotate", {Value{1.0}});
    EXPECT_EQ(w.robot->receiver().installed_count(), 1u);
}

TEST(Governor, LeaseRenewalOpensAFreshWindow) {
    ReceiverConfig rc;
    rc.governor_invocation_budget = 2;
    rc.governor_suspend_factor = 2.0;
    rc.governor_quarantine_after = 0;
    GovWorld w(rc);
    w.install(advice_pkg("hall/noop", ""));

    for (int i = 0; i < 8; ++i) w.motor->call("rotate", {Value{1.0}});
    ASSERT_EQ(w.mode(), AdaptationService::GovernorMode::kSuspended);

    ASSERT_TRUE(w.robot->receiver().keepalive_local(w.ext.value, 60'000));
    EXPECT_EQ(w.mode(), AdaptationService::GovernorMode::kNormal);
    // And the allowance really is fresh.
    w.motor->call("rotate", {Value{1.0}});
    EXPECT_EQ(w.mode(), AdaptationService::GovernorMode::kNormal);
}

TEST(Governor, StepBudgetOverrunClimbsTheLadder) {
    ReceiverConfig rc;
    rc.governor_step_budget = 50;        // one busy invocation blows this
    rc.governor_suspend_factor = 20.0;   // suspend past 1000 steps
    rc.governor_throttle_keep = 1;       // throttled still runs (keeps charging)
    rc.governor_quarantine_after = 0;
    GovWorld w(rc);
    w.install(advice_pkg("hall/busy", "let i = 0; while (i < 50) { i = i + 1; }"));

    w.motor->call("rotate", {Value{1.0}});
    EXPECT_EQ(w.mode(), AdaptationService::GovernorMode::kThrottled);
    for (int i = 0; i < 50 && w.mode() != AdaptationService::GovernorMode::kSuspended; ++i) {
        w.motor->call("rotate", {Value{1.0}});
    }
    EXPECT_EQ(w.mode(), AdaptationService::GovernorMode::kSuspended);
}

TEST(Governor, RepeatedSuspendedWindowsQuarantine) {
    ReceiverConfig rc;
    rc.governor_invocation_budget = 1;
    rc.governor_suspend_factor = 1.0;
    rc.governor_quarantine_after = 1;
    GovWorld w(rc);
    w.install(advice_pkg("hall/hog", ""));
    const std::uint64_t quar0 = counter_value("recv.governor.quarantines", "robot");
    std::uint32_t version = w.robot->receiver().installed()[0].version;

    for (int i = 0; i < 4; ++i) w.motor->call("rotate", {Value{1.0}});
    ASSERT_EQ(w.mode(), AdaptationService::GovernorMode::kSuspended);
    // The window closes suspended -> the streak crosses the limit -> the
    // deferred quarantine path (same one advice crashes use) fires.
    w.robot->receiver().keepalive_local(w.ext.value, 60'000);
    w.sim.run_for(milliseconds(10));
    EXPECT_EQ(w.robot->receiver().installed_count(), 0u);
    EXPECT_TRUE(w.robot->receiver().is_quarantined("hall/hog", version));
    EXPECT_EQ(counter_value("recv.governor.quarantines", "robot") - quar0, 1u);
}

// ---------------------------------------------------------------------------
// Advice watchdog (virtual-time deadline) + quarantine accounting.

TEST(Watchdog, DeadlineOverrunKillsTheAdviceAndCountsTowardQuarantine) {
    ReceiverConfig rc;
    rc.governor_advice_deadline = milliseconds(1);  // 1000 steps at 1us/step
    rc.governor_step_cost = microseconds(1);
    rc.quarantine_after = 3;
    GovWorld w(rc);
    w.install(advice_pkg("hall/spin", "while (true) { }"));
    const std::uint64_t trips0 = counter_value("recv.governor.watchdog_trips", "robot");
    std::uint32_t version = w.robot->receiver().installed()[0].version;

    // Regression (the old bug): DeadlineExceeded is not a ScriptError nor a
    // ResourceExhausted, and overruns silently never reached the
    // quarantine ledger. Three consecutive trips must quarantine.
    for (int i = 0; i < 3; ++i) {
        EXPECT_THROW(w.motor->call("rotate", {Value{1.0}}), DeadlineExceeded);
    }
    EXPECT_EQ(counter_value("recv.governor.watchdog_trips", "robot") - trips0, 3u);
    w.sim.run_for(milliseconds(10));
    EXPECT_EQ(w.robot->receiver().installed_count(), 0u);
    EXPECT_TRUE(w.robot->receiver().is_quarantined("hall/spin", version));
}

TEST(Watchdog, AccessDeniedStillDoesNotCountTowardQuarantine) {
    ReceiverConfig rc;
    rc.quarantine_after = 3;
    GovWorld w(rc);
    // The script calls a capability-gated builtin the package never asked
    // for: the node's own policy refuses. That is not the script's fault.
    w.install(advice_pkg("hall/nosy", "log.info(\"peek\");"));

    for (int i = 0; i < 6; ++i) {
        EXPECT_THROW(w.motor->call("rotate", {Value{1.0}}), AccessDenied);
    }
    w.sim.run_for(milliseconds(10));
    EXPECT_EQ(w.robot->receiver().installed_count(), 1u);
    EXPECT_FALSE(w.robot->receiver().is_quarantined("hall/nosy", 1));
}

// ---------------------------------------------------------------------------
// Log storm suppression.

TEST(LogStorm, SuppressesBeyondTheCapAndSummarizesNextWindow) {
    std::vector<std::string> lines;
    Log::set_sink([&](LogLevel, const std::string& line) { lines.push_back(line); });
    Log::set_storm_guard(5, seconds(1));
    const std::uint64_t sup0 = counter_value("log.suppressed", "stormy");

    for (int i = 0; i < 20; ++i) {
        log_warn(SimTime::zero() + milliseconds(i), "stormy", "spam ", i);
    }
    EXPECT_EQ(lines.size(), 5u);
    EXPECT_EQ(counter_value("log.suppressed", "stormy") - sup0, 15u);

    // The next window leads with the suppression summary, then the line.
    log_warn(SimTime::zero() + seconds(2), "stormy", "calm again");
    ASSERT_EQ(lines.size(), 7u);
    EXPECT_NE(lines[5].find("15 similar lines suppressed"), std::string::npos);
    EXPECT_NE(lines[6].find("calm again"), std::string::npos);

    Log::set_storm_guard(128, seconds(1));
    Log::set_sink(nullptr);
}

TEST(LogStorm, DifferentLevelsThrottleIndependently) {
    std::vector<std::string> lines;
    Log::set_sink([&](LogLevel, const std::string& line) { lines.push_back(line); });
    Log::set_storm_guard(3, seconds(1));

    for (int i = 0; i < 10; ++i) {
        log_warn(SimTime::zero() + milliseconds(i), "chatty", "warn ", i);
    }
    for (int i = 0; i < 2; ++i) {
        log_error(SimTime::zero() + milliseconds(i), "chatty", "error ", i);
    }
    // 3 warns kept, both errors kept: an error storm is not hidden behind a
    // warn storm.
    EXPECT_EQ(lines.size(), 5u);

    Log::set_storm_guard(128, seconds(1));
    Log::set_sink(nullptr);
}

// ---------------------------------------------------------------------------
// Storm-scale admission gate soak (docs/overload.md).
//
// The question PR 4 left open: does the gate hold at fleet scale? 10^5
// nodes re-installing after a regional power cut cannot run as 10^5
// NodeStacks on a CI box, but the gate itself — token bucket plus bounded
// class-prioritized queues — sees only offer() calls, so the storm drives
// the hub's AdmissionQueue directly while a small *real* fleet rides the
// same gate and proves control traffic stays alive underneath.

midas::ExtensionPackage storm_policy(const std::string& name) {
    midas::ExtensionPackage pkg;
    pkg.name = name;
    pkg.script = "fun onEntry() { }";
    pkg.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    return pkg;
}

TEST(StormScale, HundredThousandNodeReinstallStormDrainsThroughTheGate) {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 83);

    midas::BaseConfig bc;
    bc.issuer = "hub";
    midas::BaseStation hub(net, "hub", net::Position{0, 0}, 200.0, bc);
    hub.keys().add_key("hub", to_bytes("hk"));
    hub.base().add_extension(storm_policy("hub/p0"));

    // The sized gate (constants recorded in docs/overload.md): 2000
    // admitted frames/s, a short control queue that strict-priority drain
    // empties first, a deep install queue for the storm's class, a modest
    // app queue.
    net::AdmissionConfig gate;
    gate.rate_per_sec = 2000.0;
    gate.burst = 256.0;
    gate.queue_cap = {64, 512, 64};  // {control, install, app}
    hub.router().admission().set_config(gate);

    std::vector<std::unique_ptr<MobileNode>> robots;
    for (int i = 0; i < 4; ++i) {
        auto r = std::make_unique<MobileNode>(net, "storm-robot" + std::to_string(i),
                                              net::Position{20.0 + 10.0 * i, 0}, 200.0);
        r->trust().trust("hub", to_bytes("hk"));
        robots.push_back(std::move(r));
    }
    sim.run_for(seconds(3));
    for (auto& r : robots) ASSERT_EQ(r->receiver().installed_count(), 1u);
    const std::size_t regs0 = hub.registrar().registration_count();
    ASSERT_GT(regs0, 0u);

    // 10^5 virtual re-installers, ramped over 2s. Each is an honest
    // client: on shed it waits out max(hint, own backoff) plus
    // deterministic per-node jitter, doubling its backoff up to 4s — the
    // same shape CatchupClient and the rpc retry machinery use.
    struct Storm {
        sim::Simulator& sim;
        net::AdmissionQueue& gate;
        std::uint64_t landed = 0;
        std::uint64_t offers = 0;
        std::uint64_t sheds = 0;
        std::size_t peak_backlog = 0;

        void offer_one(std::uint32_t node, Duration backoff) {
            ++offers;
            auto d = gate.offer(net::AdmitClass::kInstall, [this] { ++landed; });
            peak_backlog = std::max(peak_backlog, gate.queued_total());
            if (d.admitted || d.queued) return;
            ++sheds;
            Duration wait = std::max(d.retry_after, backoff);
            if (wait > seconds(4)) wait = seconds(4);
            wait += milliseconds((node * 2654435761ULL) % 997);
            Duration next = std::min<Duration>(backoff * 2, seconds(4));
            sim.schedule_after(wait, [this, node, next] { offer_one(node, next); });
        }
    };
    constexpr std::uint32_t kStorm = 100'000;
    Storm storm{sim, hub.router().admission()};
    SimTime t0 = sim.now();
    for (std::uint32_t node = 0; node < kStorm; ++node) {
        sim.schedule_after(milliseconds(node % 2000),
                           [&storm, node] { storm.offer_one(node, milliseconds(200)); });
    }

    // Drain. The theoretical floor is kStorm / rate = 50s; honest-client
    // backoff pays a jittered tail on top.
    SimTime deadline = t0 + seconds(120);
    while (storm.landed < kStorm && sim.now() < deadline) {
        sim.run_until(sim.now() + milliseconds(200));
    }
    Duration drain = sim.now() - t0;

    EXPECT_EQ(storm.landed, kStorm) << "every re-installer must converge";
    EXPECT_LE(drain, seconds(80)) << "bounded shed-retry convergence";
    EXPECT_GT(storm.sheds, 0u) << "the gate must actually close";
    EXPECT_LE(storm.offers, std::uint64_t{kStorm} * 12)
        << "shed-retry amplification must stay bounded";
    EXPECT_LE(storm.peak_backlog, std::size_t{64 + 512 + 64})
        << "class queues must hold their caps";

    // The real fleet underneath the storm: leases held, registrations
    // alive, nobody dropped — strict-priority drain cuts the control
    // queue past the storm's install backlog every token.
    sim.run_for(seconds(3));
    for (auto& r : robots) {
        EXPECT_EQ(r->receiver().stats().expirations, 0u) << r->label();
        EXPECT_EQ(r->receiver().installed_count(), 1u) << r->label();
    }
    EXPECT_EQ(hub.registrar().registration_count(), regs0);
    EXPECT_EQ(hub.base().stats().nodes_dropped, 0u);
}

TEST(LogStorm, ZeroDisablesSuppression) {
    std::vector<std::string> lines;
    Log::set_sink([&](LogLevel, const std::string& line) { lines.push_back(line); });
    Log::set_storm_guard(0, seconds(1));

    for (int i = 0; i < 300; ++i) {
        log_warn(SimTime::zero() + milliseconds(i), "firehose", "line ", i);
    }
    EXPECT_EQ(lines.size(), 300u);

    Log::set_storm_guard(128, seconds(1));
    Log::set_sink(nullptr);
}

}  // namespace
}  // namespace pmp
