// Tests for the specmini workload suite: determinism, mode-independence of
// results (hooks must not change semantics), and advice transparency.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/weaver.h"
#include "specmini/suite.h"

namespace pmp::specmini {
namespace {

TEST(Specmini, KernelNamesStable) {
    EXPECT_EQ(Suite::kernel_names(),
              (std::vector<std::string>{"compress", "db", "ray", "parse"}));
}

TEST(Specmini, UnknownKernelThrows) {
    rt::Runtime runtime("n");
    Suite suite(runtime);
    EXPECT_THROW(suite.run("javac", 10, DispatchMode::kHooked), Error);
}

class KernelModes : public ::testing::TestWithParam<std::string> {};

TEST_P(KernelModes, ChecksumIdenticalAcrossDispatchModes) {
    rt::Runtime runtime("n");
    Suite suite(runtime);
    auto hooked = suite.run(GetParam(), 5000, DispatchMode::kHooked);
    auto unhooked = suite.run(GetParam(), 5000, DispatchMode::kUnhooked);
    EXPECT_EQ(hooked.checksum, unhooked.checksum);
    EXPECT_EQ(hooked.calls, unhooked.calls);
    EXPECT_GT(hooked.calls, 0u);
}

TEST_P(KernelModes, DeterministicAcrossRuns) {
    rt::Runtime runtime("n");
    Suite suite(runtime);
    auto first = suite.run(GetParam(), 3000, DispatchMode::kHooked);
    auto second = suite.run(GetParam(), 3000, DispatchMode::kHooked);
    EXPECT_EQ(first.checksum, second.checksum);
}

TEST_P(KernelModes, ScaleGrowsCalls) {
    rt::Runtime runtime("n");
    Suite suite(runtime);
    auto small = suite.run(GetParam(), 1000, DispatchMode::kHooked);
    auto large = suite.run(GetParam(), 4000, DispatchMode::kHooked);
    EXPECT_GT(large.calls, small.calls);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelModes,
                         ::testing::ValuesIn(Suite::kernel_names()));

TEST(Specmini, RunAllCoversEveryKernel) {
    rt::Runtime runtime("n");
    Suite suite(runtime);
    auto results = suite.run_all(1000, DispatchMode::kHooked);
    ASSERT_EQ(results.size(), 4u);
    for (const auto& r : results) EXPECT_GT(r.calls, 0u) << r.name;
}

TEST(Specmini, DoNothingAdviceDoesNotChangeResults) {
    // The E2 shape: a do-nothing extension trapping method entries must not
    // alter any workload result.
    rt::Runtime runtime("n");
    Suite suite(runtime);
    auto baseline = suite.run_all(2000, DispatchMode::kHooked);

    prose::Weaver weaver(runtime);
    auto aspect = std::make_shared<prose::Aspect>("noop");
    aspect->before("call(* Spec*.*(..))", [](rt::CallFrame&) {});
    AspectId id = weaver.weave(aspect);
    EXPECT_GT(weaver.report(id)->methods_matched, 0u);

    auto woven = suite.run_all(2000, DispatchMode::kHooked);
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(woven[i].checksum, baseline[i].checksum) << baseline[i].name;
    }

    weaver.withdraw(id);
    auto after = suite.run_all(2000, DispatchMode::kHooked);
    for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_EQ(after[i].checksum, baseline[i].checksum) << baseline[i].name;
    }
}

TEST(Specmini, UnhookedModeIgnoresWovenAdvice) {
    rt::Runtime runtime("n");
    Suite suite(runtime);
    prose::Weaver weaver(runtime);
    int fired = 0;
    auto aspect = std::make_shared<prose::Aspect>("counter");
    aspect->before("call(* Spec*.*(..))", [&](rt::CallFrame&) { ++fired; });
    weaver.weave(aspect);

    suite.run("ray", 100, DispatchMode::kUnhooked);
    EXPECT_EQ(fired, 0);
    suite.run("ray", 100, DispatchMode::kHooked);
    EXPECT_EQ(fired, 100);
}

}  // namespace
}  // namespace pmp::specmini
