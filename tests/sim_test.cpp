// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include "obs/trace.h"
#include "sim/simulator.h"

namespace pmp::sim {
namespace {

TEST(Simulator, StartsAtZero) {
    Simulator sim;
    EXPECT_EQ(sim.now(), SimTime::zero());
    EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(SimTime{300}, [&]() { order.push_back(3); });
    sim.schedule_at(SimTime{100}, [&]() { order.push_back(1); });
    sim.schedule_at(SimTime{200}, [&]() { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), SimTime{300});
}

TEST(Simulator, SameTimeIsFifo) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_at(SimTime{50}, [&order, i]() { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesNow) {
    Simulator sim;
    SimTime observed;
    sim.schedule_at(SimTime{1000}, [&]() {
        sim.schedule_after(Duration{500}, [&]() { observed = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(observed, SimTime{1500});
}

TEST(Simulator, PastSchedulingClampsToNow) {
    Simulator sim;
    sim.schedule_at(SimTime{100}, []() {});
    sim.run();
    bool fired = false;
    sim.schedule_at(SimTime{50}, [&]() {
        fired = true;
        EXPECT_EQ(sim.now(), SimTime{100});
    });
    sim.run();
    EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsExecution) {
    Simulator sim;
    bool fired = false;
    TimerId id = sim.schedule_after(Duration{10}, [&]() { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIsNoop) {
    Simulator sim;
    EXPECT_FALSE(sim.cancel(TimerId{}));
    EXPECT_FALSE(sim.cancel(TimerId{9999}));
}

TEST(Simulator, DoubleCancelSecondReturnsFalse) {
    Simulator sim;
    TimerId id = sim.schedule_after(Duration{10}, []() {});
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, StepRunsExactlyOne) {
    Simulator sim;
    int fired = 0;
    sim.schedule_after(Duration{1}, [&]() { ++fired; });
    sim.schedule_after(Duration{2}, [&]() { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunLimitStops) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 5; ++i) sim.schedule_after(Duration{i + 1}, [&]() { ++fired; });
    EXPECT_EQ(sim.run(3), 3u);
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenIdle) {
    Simulator sim;
    sim.run_until(SimTime{5000});
    EXPECT_EQ(sim.now(), SimTime{5000});
}

TEST(Simulator, RunUntilDoesNotRunLaterEvents) {
    Simulator sim;
    bool early = false, late = false;
    sim.schedule_at(SimTime{100}, [&]() { early = true; });
    sim.schedule_at(SimTime{201}, [&]() { late = true; });
    sim.run_until(SimTime{200});
    EXPECT_TRUE(early);
    EXPECT_FALSE(late);
    EXPECT_EQ(sim.now(), SimTime{200});
    sim.run();
    EXPECT_TRUE(late);
}

TEST(Simulator, RunForIsRelative) {
    Simulator sim;
    sim.run_until(SimTime{1000});
    sim.run_for(Duration{500});
    EXPECT_EQ(sim.now(), SimTime{1500});
}

TEST(Simulator, ScheduleEveryRepeats) {
    Simulator sim;
    int fired = 0;
    TimerId id = sim.schedule_every(Duration{100}, [&]() { ++fired; });
    sim.run_until(SimTime{1000});
    EXPECT_EQ(fired, 10);
    sim.cancel(id);
    sim.run_until(SimTime{2000});
    EXPECT_EQ(fired, 10);
}

TEST(Simulator, ScheduleEveryCanCancelItself) {
    Simulator sim;
    int fired = 0;
    TimerId id;
    id = sim.schedule_every(Duration{10}, [&]() {
        if (++fired == 3) sim.cancel(id);
    });
    sim.run_until(SimTime{1000});
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, NestedSchedulingWithinEvent) {
    Simulator sim;
    std::vector<SimTime> at;
    sim.schedule_at(SimTime{10}, [&]() {
        at.push_back(sim.now());
        sim.schedule_after(Duration{5}, [&]() { at.push_back(sim.now()); });
    });
    sim.run();
    ASSERT_EQ(at.size(), 2u);
    EXPECT_EQ(at[0], SimTime{10});
    EXPECT_EQ(at[1], SimTime{15});
}


// ------------------------------------------------------- edge semantics ----
// These pin down the corners the sharded kernel leans on: cancellation
// from inside a firing callback, the strict horizon edge of run_window,
// rearm ordering for repeating timers, tombstone compaction, and the
// scoped trace-clock binding.

TEST(Simulator, CancelOtherTimerFromInsideFiringCallback) {
    Simulator sim;
    int fired = 0;
    TimerId victim = sim.schedule_at(SimTime{20}, [&]() { ++fired; });
    sim.schedule_at(SimTime{10}, [&]() {
        EXPECT_TRUE(sim.cancel(victim));
        // A second cancel of the same id from the same callback is a no-op.
        EXPECT_FALSE(sim.cancel(victim));
    });
    sim.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelSelfFromInsideFiringCallbackIsNoop) {
    // Once an event is firing it has already left the queue; cancelling
    // its own id must return false and must not poison a later event that
    // could reuse queue position.
    Simulator sim;
    TimerId self;
    int after = 0;
    self = sim.schedule_at(SimTime{5}, [&]() { EXPECT_FALSE(sim.cancel(self)); });
    sim.schedule_at(SimTime{6}, [&]() { ++after; });
    sim.run();
    EXPECT_EQ(after, 1);
}

TEST(Simulator, ScheduleAtNowDuringWindowRunsInSameWindow) {
    // An event that schedules a follow-up at the *current* instant must see
    // it fire inside the same window: now < horizon still holds.
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(SimTime{10}, [&]() {
        order.push_back(1);
        sim.schedule_at(sim.now(), [&]() { order.push_back(2); });
    });
    std::size_t ran = sim.run_window(SimTime{11});
    EXPECT_EQ(ran, 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RunWindowHorizonIsExclusive) {
    // Events exactly at the horizon belong to the *next* window — this
    // strictness is what makes the conservative barrier safe.
    Simulator sim;
    int at_horizon = 0;
    int before = 0;
    sim.schedule_at(SimTime{9}, [&]() { ++before; });
    sim.schedule_at(SimTime{10}, [&]() { ++at_horizon; });
    EXPECT_EQ(sim.run_window(SimTime{10}), 1u);
    EXPECT_EQ(before, 1);
    EXPECT_EQ(at_horizon, 0);
    EXPECT_EQ(sim.next_event_time(), SimTime{10});
    // The barrier commits the clock, then the next window picks it up.
    sim.advance_to(SimTime{10});
    EXPECT_EQ(sim.run_window(SimTime{11}), 1u);
    EXPECT_EQ(at_horizon, 1);
}

TEST(Simulator, AdvanceToNeverMovesBackwards) {
    Simulator sim;
    sim.advance_to(SimTime{100});
    EXPECT_EQ(sim.now(), SimTime{100});
    sim.advance_to(SimTime{50});
    EXPECT_EQ(sim.now(), SimTime{100});
}

TEST(Simulator, NextEventTimeSkipsTombstones) {
    Simulator sim;
    TimerId first = sim.schedule_at(SimTime{10}, []() {});
    sim.schedule_at(SimTime{20}, []() {});
    sim.cancel(first);
    EXPECT_EQ(sim.next_event_time(), SimTime{20});
    EXPECT_EQ(sim.pending(), 1u);
}

TEST(Simulator, NextEventTimeEmptyIsMax) {
    Simulator sim;
    EXPECT_EQ(sim.next_event_time(), SimTime::max());
}

TEST(Simulator, RearmCompetesFairlyWithSameInstantOneShots) {
    // A repeating timer that re-arms to t+period gets a *fresh* sequence
    // number at rearm time, so one-shots scheduled earlier for the same
    // instant fire first (FIFO by scheduling order, not by timer age).
    Simulator sim;
    std::vector<std::string> order;
    sim.schedule_every(Duration{10}, [&]() { order.push_back("every"); });
    sim.schedule_at(SimTime{20}, [&]() { order.push_back("shot"); });
    sim.run_until(SimTime{20});
    // t=10: every. t=20: the one-shot was scheduled before the rearm
    // (which happened while firing at t=10), so it wins the tie.
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "every");
    EXPECT_EQ(order[1], "shot");
    EXPECT_EQ(order[2], "every");
}

TEST(Simulator, RearmRunsAfterOneShotScheduledFromItsOwnCallback) {
    // The rearm event is pushed *after* the user callback returns, so a
    // one-shot the callback schedules for the same future instant takes an
    // earlier sequence number and wins the tie.
    Simulator sim;
    std::vector<std::string> order;
    sim.schedule_every(Duration{10}, [&]() {
        if (order.empty()) {
            // Runs at t=10, after the rearm for t=20 was pushed.
            sim.schedule_at(SimTime{20}, [&]() { order.push_back("late-shot"); });
        }
        order.push_back("every");
    });
    EXPECT_EQ(order.size(), 0u);
    sim.run_until(SimTime{20});
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[1], "late-shot");
    EXPECT_EQ(order[2], "every");
}

TEST(Simulator, CompactionFiresWhenTombstonesDominate) {
    Simulator sim;
    std::vector<TimerId> ids;
    for (int i = 0; i < 100; ++i) {
        ids.push_back(sim.schedule_at(SimTime{100 + i}, []() {}));
    }
    EXPECT_EQ(sim.compactions(), 0u);
    // Cancel from the back so early cancels stay under the threshold.
    for (int i = 99; i >= 30; --i) sim.cancel(ids[static_cast<std::size_t>(i)]);
    EXPECT_GT(sim.compactions(), 0u);
    EXPECT_EQ(sim.pending(), 30u);
    // Order of survivors is unchanged by compaction.
    std::vector<SimTime> fired_at;
    std::size_t executed = 0;
    while (sim.next_event_time() < SimTime::max() && executed < 30) {
        SimTime t = sim.next_event_time();
        sim.step();
        fired_at.push_back(t);
        ++executed;
    }
    for (std::size_t i = 1; i < fired_at.size(); ++i) {
        EXPECT_LE(fired_at[i - 1], fired_at[i]);
    }
    EXPECT_EQ(fired_at.size(), 30u);
    // Survivors are the first 30 scheduled, at 100..129.
    EXPECT_EQ(fired_at.front(), SimTime{100});
    EXPECT_EQ(fired_at.back(), SimTime{129});
}

TEST(Simulator, CompactionPreservesFifoWithinSameInstant) {
    Simulator sim;
    std::vector<int> order;
    std::vector<TimerId> doomed;
    sim.schedule_at(SimTime{10}, [&]() { order.push_back(1); });
    for (int i = 0; i < 8; ++i) {
        doomed.push_back(sim.schedule_at(SimTime{10}, [&, i]() { order.push_back(100 + i); }));
    }
    sim.schedule_at(SimTime{10}, [&]() { order.push_back(2); });
    sim.schedule_at(SimTime{10}, [&]() { order.push_back(3); });
    for (TimerId id : doomed) sim.cancel(id);
    EXPECT_GT(sim.compactions(), 0u);
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, ScopedTraceClockBindingRestoresOuter) {
    // Nested simulators on the same buffer: destroying the inner one must
    // restore the outer clock, and destroying them out of order must not
    // drop a live registration.
    auto& tb = obs::TraceBuffer::global();
    auto outer = std::make_unique<Simulator>();
    outer->advance_to(SimTime{111});
    EXPECT_EQ(tb.now(), SimTime{111});
    {
        Simulator inner;
        inner.advance_to(SimTime{222});
        EXPECT_EQ(tb.now(), SimTime{222});
    }
    // Inner gone: the outer simulator is the live clock again.
    EXPECT_EQ(tb.now(), SimTime{111});
    outer.reset();
    EXPECT_EQ(tb.now(), SimTime::zero());
}

TEST(Simulator, TraceClockBindsToRedirectedBuffer) {
    // A simulator constructed under a Redirect binds the *shard* buffer;
    // the root buffer's clock stack is untouched.
    auto& root = obs::TraceBuffer::global();
    obs::TraceBuffer shard_buf(64);
    auto sim = std::make_unique<Simulator>();
    sim->advance_to(SimTime{5});
    {
        obs::TraceBuffer::Redirect r(shard_buf);
        Simulator inner;
        inner.advance_to(SimTime{77});
        EXPECT_EQ(shard_buf.now(), SimTime{77});
        EXPECT_EQ(root.now(), SimTime{5});  // via the redirect-free handle
    }
    EXPECT_EQ(shard_buf.now(), SimTime::zero());
    EXPECT_EQ(root.now(), SimTime{5});
}

}  // namespace
}  // namespace pmp::sim
