// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace pmp::sim {
namespace {

TEST(Simulator, StartsAtZero) {
    Simulator sim;
    EXPECT_EQ(sim.now(), SimTime::zero());
    EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
    Simulator sim;
    std::vector<int> order;
    sim.schedule_at(SimTime{300}, [&]() { order.push_back(3); });
    sim.schedule_at(SimTime{100}, [&]() { order.push_back(1); });
    sim.schedule_at(SimTime{200}, [&]() { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sim.now(), SimTime{300});
}

TEST(Simulator, SameTimeIsFifo) {
    Simulator sim;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        sim.schedule_at(SimTime{50}, [&order, i]() { order.push_back(i); });
    }
    sim.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesNow) {
    Simulator sim;
    SimTime observed;
    sim.schedule_at(SimTime{1000}, [&]() {
        sim.schedule_after(Duration{500}, [&]() { observed = sim.now(); });
    });
    sim.run();
    EXPECT_EQ(observed, SimTime{1500});
}

TEST(Simulator, PastSchedulingClampsToNow) {
    Simulator sim;
    sim.schedule_at(SimTime{100}, []() {});
    sim.run();
    bool fired = false;
    sim.schedule_at(SimTime{50}, [&]() {
        fired = true;
        EXPECT_EQ(sim.now(), SimTime{100});
    });
    sim.run();
    EXPECT_TRUE(fired);
}

TEST(Simulator, CancelPreventsExecution) {
    Simulator sim;
    bool fired = false;
    TimerId id = sim.schedule_after(Duration{10}, [&]() { fired = true; });
    EXPECT_TRUE(sim.cancel(id));
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, CancelUnknownIsNoop) {
    Simulator sim;
    EXPECT_FALSE(sim.cancel(TimerId{}));
    EXPECT_FALSE(sim.cancel(TimerId{9999}));
}

TEST(Simulator, DoubleCancelSecondReturnsFalse) {
    Simulator sim;
    TimerId id = sim.schedule_after(Duration{10}, []() {});
    EXPECT_TRUE(sim.cancel(id));
    EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, StepRunsExactlyOne) {
    Simulator sim;
    int fired = 0;
    sim.schedule_after(Duration{1}, [&]() { ++fired; });
    sim.schedule_after(Duration{2}, [&]() { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunLimitStops) {
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 5; ++i) sim.schedule_after(Duration{i + 1}, [&]() { ++fired; });
    EXPECT_EQ(sim.run(3), 3u);
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenIdle) {
    Simulator sim;
    sim.run_until(SimTime{5000});
    EXPECT_EQ(sim.now(), SimTime{5000});
}

TEST(Simulator, RunUntilDoesNotRunLaterEvents) {
    Simulator sim;
    bool early = false, late = false;
    sim.schedule_at(SimTime{100}, [&]() { early = true; });
    sim.schedule_at(SimTime{201}, [&]() { late = true; });
    sim.run_until(SimTime{200});
    EXPECT_TRUE(early);
    EXPECT_FALSE(late);
    EXPECT_EQ(sim.now(), SimTime{200});
    sim.run();
    EXPECT_TRUE(late);
}

TEST(Simulator, RunForIsRelative) {
    Simulator sim;
    sim.run_until(SimTime{1000});
    sim.run_for(Duration{500});
    EXPECT_EQ(sim.now(), SimTime{1500});
}

TEST(Simulator, ScheduleEveryRepeats) {
    Simulator sim;
    int fired = 0;
    TimerId id = sim.schedule_every(Duration{100}, [&]() { ++fired; });
    sim.run_until(SimTime{1000});
    EXPECT_EQ(fired, 10);
    sim.cancel(id);
    sim.run_until(SimTime{2000});
    EXPECT_EQ(fired, 10);
}

TEST(Simulator, ScheduleEveryCanCancelItself) {
    Simulator sim;
    int fired = 0;
    TimerId id;
    id = sim.schedule_every(Duration{10}, [&]() {
        if (++fired == 3) sim.cancel(id);
    });
    sim.run_until(SimTime{1000});
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, NestedSchedulingWithinEvent) {
    Simulator sim;
    std::vector<SimTime> at;
    sim.schedule_at(SimTime{10}, [&]() {
        at.push_back(sim.now());
        sim.schedule_after(Duration{5}, [&]() { at.push_back(sim.now()); });
    });
    sim.run();
    ASSERT_EQ(at.size(), 2u);
    EXPECT_EQ(at[0], SimTime{10});
    EXPECT_EQ(at[1], SimTime{15});
}

}  // namespace
}  // namespace pmp::sim
