// Robustness sweeps for every parser that consumes bytes off the radio:
// random garbage must produce a clean ParseError (or parse), never a crash
// or an uncaught foreign exception. Seeded, so failures reproduce.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pointcut.h"
#include "db/journal.h"
#include "db/store.h"
#include "midas/node.h"
#include "midas/package.h"
#include "script/parser.h"
#include "tspace/tuplespace.h"

namespace pmp {
namespace {

Bytes random_bytes(Rng& rng, std::size_t max_len) {
    Bytes out;
    for (std::uint64_t n = rng.next_below(max_len); n > 0; --n) {
        out.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
    }
    return out;
}

std::string random_text(Rng& rng, std::size_t max_len, const std::string& alphabet) {
    std::string out;
    for (std::uint64_t n = rng.next_below(max_len); n > 0; --n) {
        out.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    return out;
}

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSweep, ValueDecodeNeverCrashes) {
    Rng rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        Bytes garbage = random_bytes(rng, 64);
        try {
            rt::Value v = rt::Value::decode(std::span<const std::uint8_t>(garbage));
            // If it decoded, it must re-encode decodably.
            rt::Value::decode(std::span<const std::uint8_t>(v.encode()));
        } catch (const ParseError&) {
        }
    }
}

TEST_P(FuzzSweep, PackageOpenNeverCrashes) {
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        Bytes garbage = random_bytes(rng, 128);
        try {
            auto [pkg, sig] =
                midas::ExtensionPackage::open(std::span<const std::uint8_t>(garbage));
            (void)pkg;
            (void)sig;
        } catch (const Error&) {  // ParseError or TypeError, both fine
        }
    }
}

TEST_P(FuzzSweep, MutatedPackagesNeverCrash) {
    // Start from a valid sealed package and flip random bytes: the decoder
    // must either reject cleanly or produce a package whose signature then
    // fails; nothing else.
    midas::ExtensionPackage pkg;
    pkg.name = "fuzz/pkg";
    pkg.script = "fun onEntry() { }";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* X.*(..))", "onEntry", 0}};
    crypto::KeyStore keys;
    keys.add_key("f", to_bytes("k"));
    Bytes sealed = pkg.seal(keys, "f");
    crypto::TrustStore trust;
    trust.trust("f", to_bytes("k"));

    Rng rng(GetParam());
    for (int i = 0; i < 300; ++i) {
        Bytes mutated = sealed;
        for (std::uint64_t flips = 1 + rng.next_below(4); flips > 0; --flips) {
            mutated[rng.next_below(mutated.size())] ^=
                static_cast<std::uint8_t>(1 + rng.next_below(255));
        }
        try {
            auto [opened, sig] =
                midas::ExtensionPackage::open(std::span<const std::uint8_t>(mutated));
            Bytes payload = opened.signed_payload();
            trust.verify(std::span<const std::uint8_t>(payload), sig);
            // If verification passes, the *content* must be the original:
            // the MAC covers the canonical payload, so an attacker cannot
            // smuggle altered behaviour (flips may cancel or land in
            // non-semantic slack, which is fine).
            EXPECT_EQ(opened.name, pkg.name);
            EXPECT_EQ(opened.script, pkg.script);
            EXPECT_EQ(opened.version, pkg.version);
            ASSERT_EQ(opened.bindings.size(), pkg.bindings.size());
            EXPECT_EQ(opened.bindings[0].pointcut, pkg.bindings[0].pointcut);
        } catch (const Error&) {
        }
    }
}

TEST_P(FuzzSweep, ScriptParserNeverCrashes) {
    Rng rng(GetParam());
    const std::string alphabet =
        "abcdefghijklmnopqrstuvwxyz0123456789 \n\t(){}[];,.=+-*/%<>!&|\"'_";
    for (int i = 0; i < 500; ++i) {
        std::string source = random_text(rng, 80, alphabet);
        try {
            script::parse(source);
        } catch (const ParseError&) {
        }
    }
}

TEST_P(FuzzSweep, PointcutParserNeverCrashes) {
    Rng rng(GetParam());
    const std::string alphabet = "abcxyz*?+.(),&|! ";
    for (int i = 0; i < 500; ++i) {
        std::string source = random_text(rng, 40, alphabet);
        try {
            prose::Pointcut::parse(source);
        } catch (const ParseError&) {
        }
    }
}

// Exponential-time reference matcher: obviously correct, usable only on
// tiny inputs. The production matcher must agree with it everywhere.
bool glob_oracle(std::string_view p, std::string_view t) {
    if (p.empty()) return t.empty();
    if (p[0] == '*') {
        return glob_oracle(p.substr(1), t) || (!t.empty() && glob_oracle(p, t.substr(1)));
    }
    if (t.empty()) return false;
    if (p[0] == '?' || p[0] == t[0]) return glob_oracle(p.substr(1), t.substr(1));
    return false;
}

TEST_P(FuzzSweep, GlobMatchAgreesWithOracleAndStaysLinear) {
    Rng rng(GetParam());
    const std::string alphabet = "ab*?";
    for (int i = 0; i < 2000; ++i) {
        std::string pattern = random_text(rng, 12, alphabet);
        std::string text = random_text(rng, 12, "ab");
        EXPECT_EQ(prose::glob_match(pattern, text), glob_oracle(pattern, text))
            << "pattern='" << pattern << "' text='" << text << "'";
    }

    // Adversarial star-heavy patterns against long near-miss texts: a
    // matcher with unbounded backtracking goes exponential here and the
    // test times out; the two-pointer scan finishes instantly.
    std::string almost(5000, 'a');
    almost.push_back('b');
    EXPECT_TRUE(prose::glob_match("*a*a*a*a*a*a*a*a*b", almost));
    EXPECT_FALSE(prose::glob_match("*a*a*a*a*a*a*a*a*c", almost));
    EXPECT_TRUE(prose::glob_match("*a*a*a*a*a*a*a*a*ab", almost));
    EXPECT_FALSE(prose::glob_match("*a*a*a*a*a*a*a*a*bb", almost));
    EXPECT_TRUE(prose::glob_match("a*a*a*a*", std::string(5000, 'a')));
}

TEST_P(FuzzSweep, TemplateDecodeNeverCrashes) {
    Rng rng(GetParam());
    for (int i = 0; i < 300; ++i) {
        Bytes garbage = random_bytes(rng, 48);
        try {
            rt::Value v = rt::Value::decode(std::span<const std::uint8_t>(garbage));
            tspace::Template::from_value(v);
        } catch (const Error&) {
        }
    }
}

TEST_P(FuzzSweep, JournalRestoreIsTotal) {
    // restore() is the recovery entry point: whatever the disk holds —
    // garbage, torn writes, flipped bits — it must return, never throw.
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        auto disk = std::make_shared<db::JournalStorage>();
        disk->snapshot = random_bytes(rng, 96);
        disk->wal = random_bytes(rng, 192);
        db::Journal::Restored restored = db::Journal(disk).restore();
        // Whatever survived must be well-formed enough to re-encode.
        for (const rt::Value& rec : restored.wal) (void)rec.encode();
    }
    // Mutated real journals: valid frames with a single flipped bit.
    for (int i = 0; i < 200; ++i) {
        auto disk = std::make_shared<db::JournalStorage>();
        db::Journal j(disk);
        j.compact(rt::Value{std::int64_t{7}});
        for (std::int64_t n = 0; n < 4; ++n) j.append(rt::Value{n});
        Bytes& target = (rng.next_below(2) == 0 && !disk->snapshot.empty())
                            ? disk->snapshot
                            : disk->wal;
        if (target.empty()) continue;
        target[rng.next_below(target.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
        (void)db::Journal(disk).restore();
    }
}

TEST_P(FuzzSweep, JournalBatchAndChunkRestoreIsTotal) {
    // Group-commit batches and chunked snapshot chains widen the on-disk
    // grammar; restore() must stay total over all of it. Damage is
    // reported through the typed Restored fields, never thrown.
    Rng rng(GetParam());

    auto build = [&](bool interleave) {
        auto disk = std::make_shared<db::JournalStorage>();
        {
            db::Journal j(disk, db::JournalConfig{.batch_bytes = 96,
                                                  .snapshot_chunk_bytes = 48});
            j.compact(rt::Value{std::string(200, 's')});
            j.compact(rt::Value{std::string(200, 't')});  // prev chain armed
            for (std::int64_t n = 0; n < 6; ++n) j.append(rt::Value{n});
            j.flush();
        }
        if (interleave) {
            db::Journal legacy(disk);  // single-record frames between batches
            legacy.append(rt::Value{std::int64_t{100}});
            db::Journal batched(disk, db::JournalConfig{.batch_bytes = 96});
            for (std::int64_t n = 0; n < 4; ++n) batched.append(rt::Value{n});
            batched.flush();
        }
        return disk;
    };

    // Torn mid-batch: truncate the WAL at a random point.
    for (int i = 0; i < 100; ++i) {
        auto disk = build(rng.next_below(2) == 0);
        disk->wal.resize(rng.next_below(disk->wal.size() + 1));
        auto restored = db::Journal(disk).restore();
        for (const rt::Value& r : restored.wal) (void)r.encode();
        EXPECT_TRUE(restored.snapshot.has_value());  // snapshot untouched
    }

    // Bit-flipped chunk chains: damage lands somewhere in the manifest or
    // a chunk frame; restore falls back to the previous chain or reports
    // snapshot_corrupt — and still replays the clean WAL prefix.
    for (int i = 0; i < 100; ++i) {
        auto disk = build(rng.next_below(2) == 0);
        disk->snapshot[rng.next_below(disk->snapshot.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
        auto restored = db::Journal(disk).restore();
        if (!restored.snapshot.has_value()) {
            EXPECT_TRUE(restored.snapshot_corrupt);
        }
        for (const rt::Value& r : restored.wal) (void)r.encode();
    }

    // Truncated manifests: cut the snapshot region short.
    for (int i = 0; i < 100; ++i) {
        auto disk = build(false);
        disk->snapshot.resize(rng.next_below(disk->snapshot.size() + 1));
        (void)db::Journal(disk).restore();
    }

    // Random flips across both regions and the fallback chain at once.
    for (int i = 0; i < 100; ++i) {
        auto disk = build(true);
        for (int f = 0; f < 4; ++f) {
            Bytes* target = nullptr;
            switch (rng.next_below(3)) {
                case 0: target = &disk->snapshot; break;
                case 1: target = &disk->snapshot_prev; break;
                default: target = &disk->wal; break;
            }
            if (target->empty()) continue;
            (*target)[rng.next_below(target->size())] ^=
                static_cast<std::uint8_t>(1u << rng.next_below(8));
        }
        auto restored = db::Journal(disk).restore();
        for (const rt::Value& r : restored.wal) (void)r.encode();
    }
}

TEST_P(FuzzSweep, EventStoreRestoreThrowsOnlyTypedErrors) {
    Rng rng(GetParam());
    for (int i = 0; i < 200; ++i) {
        Bytes garbage = random_bytes(rng, 96);
        try {
            db::EventStore::restore(std::span<const std::uint8_t>(garbage));
        } catch (const Error&) {  // ParseError or TypeError, both fine
        }
    }
    // Mutated real snapshots: structurally valid encodings with damage.
    db::EventStore store;
    for (std::int64_t n = 1; n <= 5; ++n) {
        store.append("robot", SimTime{n * 1000}, rt::Value{n});
    }
    Bytes good = store.snapshot();
    for (int i = 0; i < 300; ++i) {
        Bytes bad = good;
        bad[rng.next_below(bad.size())] ^=
            static_cast<std::uint8_t>(1u << rng.next_below(8));
        try {
            db::EventStore::restore(std::span<const std::uint8_t>(bad));
        } catch (const Error&) {
        }
    }
}

TEST_P(FuzzSweep, ReceiverInstallVerifyPathIsTotal) {
    // The receiver's install path is the platform's widest attack surface:
    // it takes whole signed packages off the radio. Garbage, oversized
    // blobs, bit-flipped real packages and forged issuers must all come
    // back as typed Errors with the rejection counters moving — and the
    // node must still install a pristine package afterwards.
    Rng rng(GetParam());
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, GetParam());
    midas::MobileNode robot(net, "fuzzbot", {0, 0}, 50.0);
    robot.trust().trust("hall", to_bytes("k"));
    crypto::KeyStore keys;
    keys.add_key("hall", to_bytes("k"));

    const std::uint64_t rejections0 = robot.receiver().stats().rejections;
    for (int i = 0; i < 150; ++i) {
        Bytes garbage = random_bytes(rng, 512);
        try {
            robot.receiver().install_from(robot.id(), garbage, 1000);
        } catch (const Error&) {
        }
    }
    // Oversized: far past any real package, partially structured.
    Bytes huge(256 * 1024, 0xA5);
    for (int i = 0; i < 64; ++i) {
        huge[rng.next_below(huge.size())] = static_cast<std::uint8_t>(rng.next_below(256));
    }
    try {
        robot.receiver().install_from(robot.id(), huge, 1000);
    } catch (const Error&) {
    }

    midas::ExtensionPackage pkg;
    pkg.name = "hall/fz";
    pkg.script = "fun onEntry() { }";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    Bytes sealed = pkg.seal(keys, "hall");

    // Bit-flipped real packages: either the MAC rejects them (Error) or
    // the flips were non-semantic and the original installs — never a
    // crash, never foreign exceptions.
    for (int i = 0; i < 100; ++i) {
        Bytes mutated = sealed;
        for (std::uint64_t flips = 1 + rng.next_below(4); flips > 0; --flips) {
            mutated[rng.next_below(mutated.size())] ^=
                static_cast<std::uint8_t>(1 + rng.next_below(255));
        }
        try {
            robot.receiver().install_from(robot.id(), mutated, 1000);
        } catch (const Error&) {
        }
    }

    // A correctly sealed package from an issuer this node never trusted.
    crypto::KeyStore rogue;
    rogue.add_key("evil", to_bytes("zz"));
    EXPECT_THROW(robot.receiver().install_from(robot.id(), pkg.seal(rogue, "evil"), 1000),
                 Error);

    EXPECT_GT(robot.receiver().stats().rejections, rejections0);

    // The node is unharmed: a pristine install still succeeds.
    robot.receiver().withdraw_all();
    robot.receiver().install_from(robot.id(), sealed, 1000);
    EXPECT_EQ(robot.receiver().installed_count(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace pmp
