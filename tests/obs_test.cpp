// Unit tests for the observability subsystem: metrics registry semantics,
// quantile interpolation, trace ring eviction, label cardinality capping,
// component canonicalisation, and the JSON snapshot round-trip.
#include <gtest/gtest.h>

#include "obs/component.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace pmp::obs {
namespace {

/// Restores the global enable flag so tests cannot leak a disabled state.
struct EnabledGuard {
    bool saved = enabled();
    ~EnabledGuard() { set_enabled(saved); }
};

// ------------------------------------------------------------- metrics ----

TEST(Counter, IncrementAndReset) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, DisabledFlagSuppressesIncrements) {
    EnabledGuard guard;
    Counter c;
    set_enabled(false);
    c.inc(100);
    EXPECT_EQ(c.value(), 0u);
    set_enabled(true);
    c.inc(2);
    EXPECT_EQ(c.value(), 2u);
}

TEST(Gauge, SetAddReset) {
    Gauge g;
    g.set(10);
    g.add(-3);
    EXPECT_EQ(g.value(), 7);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, CountsSumAndBuckets) {
    Histogram h({10.0, 20.0, 30.0});
    h.observe(5);
    h.observe(10);   // inclusive upper edge: lands in the first bucket
    h.observe(25);
    h.observe(100);  // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 140.0);
    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 0u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 1u);
    EXPECT_DOUBLE_EQ(h.mean(), 35.0);
}

TEST(Histogram, QuantileInterpolatesInsideBucket) {
    Histogram h({100.0});
    for (int i = 0; i < 10; ++i) h.observe(1);
    // All ten samples sit in [0, 100]; the median rank is halfway through
    // the bucket, so linear interpolation lands on 50.
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(Histogram, QuantileCrossesBuckets) {
    Histogram h({10.0, 20.0});
    h.observe(5);
    h.observe(15);
    EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);   // halfway into [0,10]
    EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);  // halfway into (10,20]
}

TEST(Histogram, QuantileClampsOverflowToLastBound) {
    Histogram h({10.0});
    h.observe(1000);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 10.0);
}

TEST(Histogram, EmptyQuantileIsZero) {
    Histogram h({10.0});
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Histogram, DefaultBoundsAreLatencyNs) {
    Histogram h({});
    EXPECT_EQ(h.bounds(), Histogram::latency_ns_bounds());
    EXPECT_EQ(h.buckets().size(), h.bounds().size() + 1);
}

// ------------------------------------------------------------ registry ----

TEST(Registry, PinnedAccessorsShareOneSlot) {
    Registry reg;
    reg.counter("a.hits").inc();
    reg.counter("a.hits").inc();
    EXPECT_EQ(reg.counter("a.hits").value(), 2u);
    EXPECT_EQ(reg.size(), 1u);
    // A different label is a different slot within the family.
    reg.counter("a.hits", "n1").inc(5);
    EXPECT_EQ(reg.counter("a.hits").value(), 2u);
    EXPECT_EQ(reg.counter("a.hits", "n1").value(), 5u);
    EXPECT_EQ(reg.size(), 2u);
}

TEST(Registry, ResetZeroesButKeepsSlots) {
    Registry reg;
    reg.counter("c").inc(3);
    reg.gauge("g").set(7);
    reg.histogram("h", {}, {1.0}).observe(0.5);
    reg.reset();
    EXPECT_EQ(reg.counter("c").value(), 0u);
    EXPECT_EQ(reg.gauge("g").value(), 0);
    EXPECT_EQ(reg.histogram("h").count(), 0u);
    EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, LabelCardinalityCapCollapsesToOverflow) {
    Registry reg;
    for (std::size_t i = 0; i < Registry::kLabelCap; ++i) {
        reg.counter("spam", "l" + std::to_string(i)).inc();
    }
    // The family is full: new labels all collapse into one overflow slot.
    reg.counter("spam", "straw").inc();
    reg.counter("spam", "camel").inc();
    EXPECT_EQ(reg.counter("spam", Registry::kOverflowLabel).value(), 2u);

    std::size_t slots = 0;
    bool saw_overflow = false;
    reg.visit_counters([&](const std::string& name, const std::string& label, const Counter&) {
        ASSERT_EQ(name, "spam");
        ++slots;
        if (label == Registry::kOverflowLabel) saw_overflow = true;
    });
    EXPECT_EQ(slots, Registry::kLabelCap + 1);
    EXPECT_TRUE(saw_overflow);
}

TEST(Registry, AcquireReleaseFreesSlotForSuccessor) {
    Registry reg;
    {
        OwnedCounter c(reg, "net.sent", "net1");
        c.inc(3);
        EXPECT_EQ(c.value(), 3u);
    }
    // The instance died; a successor with the same label starts from zero.
    OwnedCounter again(reg, "net.sent", "net1");
    EXPECT_EQ(again.value(), 0u);
}

TEST(Registry, PinnedSlotSurvivesRelease) {
    Registry reg;
    reg.counter("keep", "x").inc(9);
    {
        OwnedCounter c(reg, "keep", "x");
        c.inc();
    }
    // Pinned by the plain accessor: release does not erase the value.
    EXPECT_EQ(reg.counter("keep", "x").value(), 10u);
}

TEST(Registry, VisitOrderIsDeterministic) {
    Registry reg;
    reg.counter("b");
    reg.counter("a", "z");
    reg.counter("a", "a");
    std::vector<std::string> seen;
    reg.visit_counters([&](const std::string& name, const std::string& label, const Counter&) {
        seen.push_back(name + "/" + label);
    });
    EXPECT_EQ(seen, (std::vector<std::string>{"a/a", "a/z", "b/"}));
}

// --------------------------------------------------------------- trace ----

TEST(Trace, RingEvictsOldestFirst) {
    TraceBuffer buf(4);
    for (int i = 0; i < 6; ++i) {
        buf.instant_at(SimTime{i}, "test", "e" + std::to_string(i));
    }
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.dropped(), 2u);
    EXPECT_EQ(buf.recorded(), 6u);
    auto events = buf.events();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().name, "e2");
    EXPECT_EQ(events.back().name, "e5");
    for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_LE(events[i - 1].at, events[i].at);
    }
}

TEST(Trace, SpanBeginEndLink) {
    TraceBuffer buf(8);
    std::uint64_t span = buf.begin_span("rt.rpc", "rpc.call", {{"obj", "motor"}});
    EXPECT_NE(span, 0u);
    buf.end_span(span, {{"outcome", "ok"}});
    auto events = buf.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].kind, EventKind::kSpanBegin);
    EXPECT_EQ(events[1].kind, EventKind::kSpanEnd);
    EXPECT_EQ(events[0].span, span);
    EXPECT_EQ(events[1].span, span);
    EXPECT_EQ(events[0].component, "rt.rpc");
}

TEST(Trace, DisabledRecordsNothing) {
    EnabledGuard guard;
    TraceBuffer buf(8);
    set_enabled(false);
    EXPECT_EQ(buf.begin_span("x", "y"), 0u);
    buf.instant("x", "z");
    EXPECT_EQ(buf.size(), 0u);
}

TEST(Trace, SimulatorDrivesTheClock) {
    TraceBuffer& buf = TraceBuffer::global();
    buf.clear();
    {
        sim::Simulator sim;
        sim.schedule_after(seconds(3), [&]() { buf.instant("test", "tick"); });
        sim.run();
        auto events = buf.events();
        ASSERT_EQ(events.size(), 1u);
        EXPECT_EQ(events[0].at, SimTime::zero() + seconds(3));
    }
    // The simulator is gone; the buffer falls back to time zero.
    buf.instant("test", "after");
    EXPECT_EQ(buf.events().back().at, SimTime::zero());
    buf.clear();
}

// ---------------------------------------------------------- components ----

TEST(Component, AliasesMapLegacyTags) {
    auto& reg = ComponentRegistry::global();
    EXPECT_EQ(reg.canonical("rpc"), "rt.rpc");
    EXPECT_EQ(reg.canonical("receiver"), "midas.receiver");
    EXPECT_EQ(reg.canonical("base@hall"), "midas.base@hall");
    EXPECT_EQ(reg.family("base@hall"), "midas.base");
    // Unknown and already-canonical tags pass through unchanged.
    EXPECT_EQ(reg.canonical("rt.rpc"), "rt.rpc");
    EXPECT_EQ(reg.canonical("mystery"), "mystery");
}

TEST(Component, InterningIsStable) {
    auto& reg = ComponentRegistry::global();
    std::uint32_t a = reg.id("midas.base");
    std::uint32_t b = reg.id("midas.base");
    std::uint32_t c = reg.id("midas.receiver");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(reg.name(a), "midas.base");
}

// ------------------------------------------------------------ snapshot ----

Snapshot make_snapshot() {
    static Registry reg;       // static: pinned references must outlive use
    static TraceBuffer trace(8);
    reg.reset();
    trace.clear();
    reg.counter("weaver.advice_calls", "logger").inc(12);
    reg.counter("net.sent").inc(3);
    reg.gauge("midas.extensions", "robot-1").set(2);
    auto& h = reg.histogram("rpc.roundtrip_ms", "", {1.0, 10.0, 100.0});
    h.observe(0.5);
    h.observe(42.0);
    std::uint64_t span = trace.begin_span("prose.weaver", "weave", {{"aspect", "log \"all\""}});
    trace.end_span(span, {{"methods", "3"}});
    trace.instant("midas.receiver", "lease.expire", {{"node", "a\nb"}});
    return snapshot(reg, trace);
}

TEST(Snapshot, CounterLookupHelper) {
    Snapshot snap = make_snapshot();
    EXPECT_EQ(snap.counter("net.sent"), 3u);
    EXPECT_EQ(snap.counter("weaver.advice_calls", "logger"), 12u);
    EXPECT_EQ(snap.counter("no.such.metric"), 0u);
}

TEST(Snapshot, JsonRoundTripIsExact) {
    Snapshot snap = make_snapshot();
    std::string json = to_json(snap);
    Snapshot back = snapshot_from_json(json);
    EXPECT_EQ(back, snap);
    // And rendering the parsed snapshot again is byte-identical.
    EXPECT_EQ(to_json(back), json);
}

TEST(Snapshot, JsonRejectsGarbage) {
    EXPECT_THROW(snapshot_from_json("{"), std::runtime_error);
    EXPECT_THROW(snapshot_from_json("[]"), std::runtime_error);
    EXPECT_THROW(snapshot_from_json(R"({"counters": [}]})"), std::runtime_error);
}

TEST(Snapshot, TextRenderingMentionsEveryMetric) {
    Snapshot snap = make_snapshot();
    std::string text = to_text(snap);
    EXPECT_NE(text.find("weaver.advice_calls"), std::string::npos);
    EXPECT_NE(text.find("net.sent"), std::string::npos);
    EXPECT_NE(text.find("midas.extensions"), std::string::npos);
    EXPECT_NE(text.find("rpc.roundtrip_ms"), std::string::npos);
    EXPECT_NE(text.find("lease.expire"), std::string::npos);
}

}  // namespace
}  // namespace pmp::obs
