// Differential tests for the AdviceScript bytecode VM against the
// reference tree-walking Interpreter: identical results, identical typed
// errors (same message text), identical step counts. The VM is the hot
// path; the interpreter is the executable spec.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/error.h"
#include "script/compile.h"
#include "script/interp.h"
#include "script/parser.h"
#include "script/vm.h"

namespace pmp::script {
namespace {

using rt::Dict;
using rt::List;
using rt::Value;

struct Engines {
    std::shared_ptr<Interpreter> interp;
    std::shared_ptr<Vm> vm;
};

Engines make_engines(const std::string& source, Sandbox sandbox = {},
                     std::shared_ptr<BuiltinRegistry> builtins = nullptr) {
    if (!builtins) {
        builtins = std::make_shared<BuiltinRegistry>(BuiltinRegistry::with_core());
    }
    auto program = std::make_shared<const Program>(parse(source));
    Engines e;
    e.interp = std::make_shared<Interpreter>(program, sandbox, builtins);
    e.vm = std::make_shared<Vm>(compile(program), sandbox, builtins);
    return e;
}

/// Capture the outcome of one engine action: either a value or a typed
/// error. Comparing two Outcomes is the heart of every test here.
struct Outcome {
    bool threw = false;
    std::string type;     // typeid name of the exception
    std::string message;  // e.what()
    Value value;
    std::uint64_t steps = 0;
};

template <typename Fn>
Outcome capture(Engine& engine, Fn&& fn) {
    Outcome out;
    try {
        out.value = fn(engine);
    } catch (const DeadlineExceeded& e) {
        out.threw = true;
        out.type = "DeadlineExceeded";
        out.message = e.what();
    } catch (const ResourceExhausted& e) {
        out.threw = true;
        out.type = "ResourceExhausted";
        out.message = e.what();
    } catch (const AccessDenied& e) {
        out.threw = true;
        out.type = "AccessDenied";
        out.message = e.what();
    } catch (const ScriptError& e) {
        out.threw = true;
        out.type = "ScriptError";
        out.message = e.what();
    }
    out.steps = engine.last_call_steps();
    return out;
}

void expect_same(const Outcome& a, const Outcome& b, const std::string& what) {
    EXPECT_EQ(a.threw, b.threw) << what;
    EXPECT_EQ(a.type, b.type) << what;
    EXPECT_EQ(a.message, b.message) << what;
    if (!a.threw && !b.threw) {
        EXPECT_EQ(a.value, b.value) << what << " interp=" << a.value.to_string()
                                    << " vm=" << b.value.to_string();
    }
    EXPECT_EQ(a.steps, b.steps) << what << " (step counts diverge)";
}

/// Run `source` through both engines, call `fn(args)` on each, and
/// assert the outcomes (value or typed error, plus step counts) match.
/// Returns the VM outcome for additional assertions.
Outcome both(const std::string& source, const std::string& fn, List args = {},
             Sandbox sandbox = {},
             std::shared_ptr<BuiltinRegistry> builtins = nullptr) {
    auto engines = make_engines(source, sandbox, std::move(builtins));
    auto run = [&](Engine& e) {
        e.run_top_level();
        return e.call(fn, args);
    };
    Outcome oi = capture(*engines.interp, run);
    Outcome ov = capture(*engines.vm, run);
    expect_same(oi, ov, "source: " + source);
    return ov;
}

/// Evaluate one expression through both engines; returns the agreed value.
Value eval(const std::string& expr) {
    Outcome o = both("fun f() { return " + expr + "; }", "f");
    EXPECT_FALSE(o.threw) << o.message;
    return o.value;
}

// --------------------------------------------------------- results ----

TEST(VmParity, Arithmetic) {
    EXPECT_EQ(eval("1 + 2 * 3"), Value{std::int64_t{7}});
    EXPECT_EQ(eval("(1 + 2) * 3"), Value{std::int64_t{9}});
    EXPECT_EQ(eval("7 / 2"), Value{std::int64_t{3}});
    EXPECT_EQ(eval("7.0 / 2"), Value{3.5});
    EXPECT_EQ(eval("7 % 3"), Value{std::int64_t{1}});
    EXPECT_EQ(eval("-3 + 1"), Value{std::int64_t{-2}});
    EXPECT_EQ(eval("\"a\" + 1"), Value{std::string{"a1"}});
    EXPECT_EQ(eval("[1] + [2, 3]"), eval("[1, 2, 3]"));
}

TEST(VmParity, ComparisonAndLogic) {
    EXPECT_EQ(eval("1 < 2"), Value{true});
    EXPECT_EQ(eval("1.0 == 1"), Value{true});
    EXPECT_EQ(eval("\"a\" < \"b\""), Value{true});
    EXPECT_EQ(eval("true && false"), Value{false});
    EXPECT_EQ(eval("false || true"), Value{true});
    EXPECT_EQ(eval("!false"), Value{true});
    // Short-circuit: rhs must not run (it would throw).
    EXPECT_EQ(eval("false && (1 / 0 == 0)"), Value{false});
    EXPECT_EQ(eval("true || (1 / 0 == 0)"), Value{true});
}

TEST(VmParity, ControlFlow) {
    const char* src = R"(
        fun classify(n) {
            if (n < 0) { return "neg"; }
            else { if (n == 0) { return "zero"; } }
            return "pos";
        }
        fun sum_to(n) {
            let total = 0;
            let i = 1;
            while (i <= n) {
                total = total + i;
                i = i + 1;
            }
            return total;
        }
        fun skip_odd(n) {
            let total = 0;
            for (x in range(0, n)) {
                if (x % 2 == 1) { continue; }
                if (x > 10) { break; }
                total = total + x;
            }
            return total;
        }
    )";
    EXPECT_EQ(both(src, "classify", {Value{std::int64_t{-5}}}).value,
              Value{std::string{"neg"}});
    EXPECT_EQ(both(src, "classify", {Value{std::int64_t{0}}}).value,
              Value{std::string{"zero"}});
    EXPECT_EQ(both(src, "sum_to", {Value{std::int64_t{100}}}).value,
              Value{std::int64_t{5050}});
    EXPECT_EQ(both(src, "skip_odd", {Value{std::int64_t{40}}}).value,
              Value{std::int64_t{30}});
}

TEST(VmParity, Recursion) {
    const char* src = "fun fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }";
    EXPECT_EQ(both(src, "fib", {Value{std::int64_t{15}}}).value,
              Value{std::int64_t{610}});
}

TEST(VmParity, ForInDict) {
    const char* src = R"(
        fun keys_of() {
            let d = {"b": 2, "a": 1};
            let out = [];
            for (k in d) { out = push(out, k); }
            return out;
        }
    )";
    EXPECT_EQ(both(src, "keys_of").value, eval("[\"a\", \"b\"]"));
}

TEST(VmParity, LvaluePaths) {
    const char* src = R"(
        fun build() {
            let d = {"xs": [1, 2]};
            d["xs"][0] = 10;
            d["xs"][2] = 30;       // append at exactly len
            d.fresh = {"n": 1};    // create missing member
            d.fresh.n = d.fresh.n + 1;
            return d;
        }
    )";
    Outcome o = both(src, "build");
    ASSERT_FALSE(o.threw) << o.message;
    EXPECT_EQ(o.value, eval("{\"xs\": [10, 2, 30], \"fresh\": {\"n\": 2}}"));
}

TEST(VmParity, GlobalsAndShadowing) {
    const char* src = R"(
        let counter = 0;
        fun bump() { counter = counter + 1; return counter; }
        fun shadow() { let counter = 100; counter = counter + 1; return counter; }
        if (true) { let block_local = 9; }
    )";
    auto engines = make_engines(src);
    engines.interp->run_top_level();
    engines.vm->run_top_level();
    engines.interp->call("bump", {});
    engines.vm->call("bump", {});
    EXPECT_EQ(engines.interp->call("bump", {}), Value{std::int64_t{2}});
    EXPECT_EQ(engines.vm->call("bump", {}), Value{std::int64_t{2}});
    EXPECT_EQ(engines.vm->call("shadow", {}), Value{std::int64_t{101}});
    // A let inside a top-level block is block-local in both engines.
    EXPECT_EQ(engines.interp->global("block_local"), nullptr);
    EXPECT_EQ(engines.vm->global("block_local"), nullptr);
    ASSERT_NE(engines.vm->global("counter"), nullptr);
    EXPECT_EQ(*engines.vm->global("counter"), Value{std::int64_t{2}});
}

TEST(VmParity, SetGlobalVisibleToScript) {
    auto engines = make_engines("fun get() { return ctx; }");
    for (Engine* e : {static_cast<Engine*>(engines.interp.get()),
                      static_cast<Engine*>(engines.vm.get())}) {
        e->run_top_level();
        e->set_global("ctx", Value{std::string{"injected"}});
        EXPECT_EQ(e->call("get", {}), Value{std::string{"injected"}});
    }
}

TEST(VmParity, Builtins) {
    EXPECT_EQ(eval("len(\"hello\")"), Value{std::int64_t{5}});
    EXPECT_EQ(eval("join(split(\"a,b,c\", \",\"), \"-\")"),
              Value{std::string{"a-b-c"}});
    EXPECT_EQ(eval("contains({\"k\": 1}, \"k\")"), Value{true});
    EXPECT_EQ(eval("min(3, max(1, 2))"), Value{std::int64_t{2}});
    EXPECT_EQ(eval("slice(range(0, 10), 2, 4)"), eval("[2, 3]"));
}

// ---------------------------------------------------------- errors ----

TEST(VmParity, TypeErrors) {
    both("fun f() { return 1 + true; }", "f");
    both("fun f() { return -\"x\"; }", "f");
    both("fun f() { return {\"a\": 1}[true]; }", "f");
    both("fun f() { return [1][5]; }", "f");
    both("fun f() { return 1 / 0; }", "f");
    both("fun f() { return 1 % 0; }", "f");
    both("fun f() { let x = 1; x.y = 2; return x; }", "f");
    both("fun f() { for (x in 42) { } }", "f");
    both("fun f() { return 1 < \"a\"; }", "f");
    both("fun f() { let d = {}; d[3] = 1; return d; }", "f");
}

TEST(VmParity, ThrowStatement) {
    Outcome o = both("fun f() { throw \"custom failure\"; }", "f");
    EXPECT_TRUE(o.threw);
    EXPECT_NE(o.message.find("custom failure"), std::string::npos);
}

TEST(VmParity, UndefinedVariable) {
    Outcome o = both("fun f() { return nope; }", "f");
    EXPECT_TRUE(o.threw);
    EXPECT_NE(o.message.find("undefined variable 'nope'"), std::string::npos);
}

TEST(VmParity, AssignToUndeclared) {
    Outcome o = both("fun f() { nope = 1; }", "f");
    EXPECT_TRUE(o.threw);
    EXPECT_NE(o.message.find("nope"), std::string::npos);
}

TEST(VmParity, ArityMismatch) {
    Outcome o = both("fun g(a, b) { return a; } fun f() { return g(1); }", "f");
    EXPECT_TRUE(o.threw);
    EXPECT_NE(o.message.find("expects 2 args, got 1"), std::string::npos);
}

TEST(VmParity, ArityMismatchEvaluatesArgsFirst) {
    // The interpreter evaluates arguments before checking arity; a side
    // effect in an argument must land even though the call then fails.
    const char* src = R"(
        let log = [];
        fun note(x) { log = push(log, x); return x; }
        fun g(a, b) { return a; }
        fun f() { return g(note(1)); }
    )";
    auto engines = make_engines(src);
    for (Engine* e : {static_cast<Engine*>(engines.interp.get()),
                      static_cast<Engine*>(engines.vm.get())}) {
        e->run_top_level();
        EXPECT_THROW(e->call("f", {}), ScriptError);
        const Value* log = e->global("log");
        ASSERT_NE(log, nullptr);
        EXPECT_EQ(log->to_string(), "[1]");
    }
}

TEST(VmParity, UnknownFunction) {
    Outcome o = both("fun f() { return whodis(1); }", "f");
    EXPECT_TRUE(o.threw);
    EXPECT_NE(o.message.find("unknown function 'whodis'"), std::string::npos);
}

TEST(VmParity, BreakContinueReturnOutsidePlacement) {
    both("fun f() { break; }", "f");
    both("fun f() { continue; }", "f");
    // At the top level the fault fires during run_top_level.
    auto engines = make_engines("break;");
    Outcome oi = capture(*engines.interp, [](Engine& e) {
        e.run_top_level();
        return Value{};
    });
    Outcome ov = capture(*engines.vm, [](Engine& e) {
        e.run_top_level();
        return Value{};
    });
    expect_same(oi, ov, "top-level break");
    EXPECT_TRUE(ov.threw);

    auto engines2 = make_engines("return 1;");
    Outcome oi2 = capture(*engines2.interp, [](Engine& e) {
        e.run_top_level();
        return Value{};
    });
    Outcome ov2 = capture(*engines2.vm, [](Engine& e) {
        e.run_top_level();
        return Value{};
    });
    expect_same(oi2, ov2, "top-level return");
    EXPECT_TRUE(ov2.threw);
}

// --------------------------------------------------------- sandbox ----

TEST(VmParity, StepBudgetExhaustion) {
    Sandbox tight;
    tight.step_budget = 200;
    Outcome o = both("fun spin() { while (true) { } }", "spin", {}, tight);
    EXPECT_TRUE(o.threw);
    EXPECT_EQ(o.type, "ResourceExhausted");
    EXPECT_NE(o.message.find("step budget"), std::string::npos);
}

TEST(VmParity, DeadlineWatchdog) {
    Sandbox s;
    s.deadline_steps = 50;
    Outcome o = both("fun spin() { while (true) { } }", "spin", {}, s);
    EXPECT_TRUE(o.threw);
    EXPECT_EQ(o.type, "DeadlineExceeded");
    EXPECT_NE(o.message.find("watchdog deadline"), std::string::npos);
}

TEST(VmParity, RecursionLimit) {
    Sandbox s;
    s.max_recursion = 16;
    Outcome o = both("fun down(n) { return down(n + 1); }", "down",
                     {Value{std::int64_t{0}}}, s);
    EXPECT_TRUE(o.threw);
    EXPECT_EQ(o.type, "ResourceExhausted");
    EXPECT_NE(o.message.find("recursion limit"), std::string::npos);
}

TEST(VmParity, CapabilityDenied) {
    auto builtins = std::make_shared<BuiltinRegistry>(BuiltinRegistry::with_core());
    builtins->add("privileged", "net", [](List&) { return Value{std::int64_t{1}}; });
    Sandbox closed;  // no capabilities
    Outcome o = both("fun f() { return privileged(); }", "f", {}, closed, builtins);
    EXPECT_TRUE(o.threw);
    EXPECT_EQ(o.type, "AccessDenied");
    EXPECT_NE(o.message.find("capability 'net'"), std::string::npos);

    Sandbox open;
    open.capabilities.insert("net");
    Outcome ok = both("fun f() { return privileged(); }", "f", {}, open, builtins);
    EXPECT_FALSE(ok.threw) << ok.message;
    EXPECT_EQ(ok.value, Value{std::int64_t{1}});
}

TEST(VmParity, StepCountsMatchExactly) {
    // Exercise every statement/expression kind and compare last_call_steps.
    const char* src = R"(
        fun work(n) {
            let acc = [];
            let d = {"hits": 0};
            for (i in range(0, n)) {
                if (i % 3 == 0) { continue; }
                d["hits"] = d["hits"] + 1;
                acc = push(acc, {"i": i, "sq": i * i});
                let j = 0;
                while (j < 2) { j = j + 1; }
            }
            return len(acc) + d.hits;
        }
    )";
    Outcome o = both(src, "work", {Value{std::int64_t{25}}});
    ASSERT_FALSE(o.threw) << o.message;
    EXPECT_GT(o.steps, 100u);
}

TEST(VmParity, StepObserverFires) {
    auto engines = make_engines("fun f() { return 1 + 2; }");
    std::uint64_t interp_seen = 0, vm_seen = 0;
    engines.interp->set_step_observer([&](std::uint64_t n) { interp_seen = n; });
    engines.vm->set_step_observer([&](std::uint64_t n) { vm_seen = n; });
    engines.interp->run_top_level();
    engines.vm->run_top_level();
    engines.interp->call("f", {});
    engines.vm->call("f", {});
    EXPECT_GT(interp_seen, 0u);
    EXPECT_EQ(interp_seen, vm_seen);
}

TEST(VmParity, ReentrantHostCallback) {
    // A host builtin that calls back into the engine mid-call: the nested
    // invocation shares the outer step meter in both engines.
    auto make = [](Engine** cell) {
        auto builtins = std::make_shared<BuiltinRegistry>(BuiltinRegistry::with_core());
        builtins->add("reenter", "", [cell](List&) {
            return (*cell)->call("callee", {});
        });
        return builtins;
    };
    const char* src =
        "fun callee() { return 7; } fun f() { return reenter() + 1; }";
    auto program = std::make_shared<const Program>(parse(src));

    Engine* icell = nullptr;
    Interpreter interp(program, Sandbox{}, make(&icell));
    icell = &interp;
    Engine* vcell = nullptr;
    Vm vm(compile(program), Sandbox{}, make(&vcell));
    vcell = &vm;

    interp.run_top_level();
    vm.run_top_level();
    Value iv = interp.call("f", {});
    Value vv = vm.call("f", {});
    EXPECT_EQ(iv, Value{std::int64_t{8}});
    EXPECT_EQ(iv, vv);
    EXPECT_EQ(interp.last_call_steps(), vm.last_call_steps());
}

TEST(VmParity, BudgetResetsPerOutermostCall) {
    Sandbox s;
    s.step_budget = 500;
    const char* src = "fun f() { let i = 0; while (i < 20) { i = i + 1; } return i; }";
    auto engines = make_engines(src, s);
    engines.interp->run_top_level();
    engines.vm->run_top_level();
    // Each outermost call gets a fresh budget; 50 calls must all succeed.
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(engines.interp->call("f", {}), Value{std::int64_t{20}});
        EXPECT_EQ(engines.vm->call("f", {}), Value{std::int64_t{20}});
    }
}

TEST(VmParity, ErrorLineNumbersMatch) {
    // The budget error message embeds the line that overran; both engines
    // must charge steps to the same lines.
    Sandbox s;
    s.step_budget = 100;
    const char* src = "fun spin() {\n  let i = 0;\n  while (true) {\n    i = i + 1;\n  }\n}";
    Outcome o = both(src, "spin", {}, s);
    EXPECT_TRUE(o.threw);
    EXPECT_EQ(o.type, "ResourceExhausted");
}

}  // namespace
}  // namespace pmp::script
