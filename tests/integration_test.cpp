// End-to-end reproduction of the paper's Fig 2 scenario: a remote call to a
// robot service m_R, adapted by the production hall with cooperating
// extensions — session extraction (implicit), access control, and quality
// control that persists every state change to the hall database — plus the
// full lifecycle: enter, adapt, operate, leave, revert.
#include <gtest/gtest.h>

#include "midas/channel.h"
#include "midas/node.h"

namespace pmp::midas {
namespace {

using rt::Dict;
using rt::List;
using rt::TypeKind;
using rt::Value;

/// Session management: extracts the caller identity into the call's
/// implicit context (Fig 2c step 2). Installed automatically because the
/// access-control extension implies it.
ExtensionPackage session_package() {
    ExtensionPackage pkg;
    pkg.name = "hall/session";
    pkg.script = R"(
        fun onEntry() { ctx.set_note("caller", sys.caller()); }
    )";
    pkg.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* RobotSvc.*(..))", "onEntry",
                       /*priority=*/-10}};
    return pkg;
}

/// Access control: uses the session information to decide whether the call
/// proceeds (Fig 2c step 3).
ExtensionPackage access_package(List allowed) {
    ExtensionPackage pkg;
    pkg.name = "hall/access-control";
    pkg.script = R"(
        fun onEntry() {
            let caller = ctx.note("caller");
            if (!contains(config.allowed, caller)) {
                ctx.deny("caller " + caller + " is not authorized in this hall");
            }
        }
    )";
    pkg.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* RobotSvc.*(..))", "onEntry",
                       /*priority=*/0}};
    pkg.config = Value{Dict{{"allowed", Value{std::move(allowed)}}}};
    pkg.implies = {"hall/session"};
    return pkg;
}

/// Quality assurance: intercepts changes to the robot's state (the * in
/// Fig 2) and persists them in the hall database (step 4).
ExtensionPackage quality_package() {
    ExtensionPackage pkg;
    pkg.name = "hall/quality";
    pkg.script = R"(
        fun onStateChange() {
            owner.post("collector", "post",
                       [sys.node(), {"field": ctx.field(),
                                     "old": ctx.oldval(), "new": ctx.newval()}]);
        }
    )";
    pkg.bindings = {PackageBinding{prose::AdviceKind::kFieldSet, "fieldset(RobotSvc.state)",
                                   "onStateChange", 0}};
    pkg.capabilities = {"net"};
    return pkg;
}

class Fig2Scenario : public ::testing::Test {
protected:
    Fig2Scenario() : net_(sim_, net::NetworkConfig{}, 42) {
        BaseConfig bc;
        bc.issuer = "hall";
        hall_ = std::make_unique<BaseStation>(net_, "hall-base", net::Position{0, 0}, 100.0,
                                              bc);
        hall_->keys().add_key("hall", to_bytes("hall-key"));

        robot_ = std::make_unique<MobileNode>(net_, "robot:1:1", net::Position{10, 0}, 100.0);
        robot_->trust().trust("hall", to_bytes("hall-key"));
        robot_->receiver().allow_capabilities("hall", {"net"});

        // m_R: the robot's exported service. It only knows its own logic;
        // every policy above arrives from the hall.
        robot_->runtime().register_type(
            rt::TypeInfo::Builder("RobotSvc")
                .field("state", TypeKind::kInt, Value{std::int64_t{0}})
                .method("work", TypeKind::kInt, {{"amount", TypeKind::kInt}},
                        [](rt::ServiceObject& self, List& args) -> Value {
                            std::int64_t next = self.peek("state").as_int() + args[0].as_int();
                            self.set("state", Value{next});  // state change (*)
                            return Value{next};
                        })
                .build());
        service_ = robot_->runtime().create("RobotSvc", "m_R");
        robot_->rpc().export_object("m_R");

        // Two clients: one authorized by hall policy, one not.
        alice_ = std::make_unique<NodeStack>(net_, "alice", net::Position{5, 5}, 100.0);
        mallory_ = std::make_unique<NodeStack>(net_, "mallory", net::Position{-5, 5}, 100.0);

        hall_->base().add_extension(session_package());
        hall_->base().add_extension(access_package(List{Value{"alice"}}));
        hall_->base().add_extension(quality_package());
    }

    bool run_until(const std::function<bool()>& pred, Duration timeout = seconds(15)) {
        SimTime deadline = sim_.now() + timeout;
        while (sim_.now() < deadline) {
            if (pred()) return true;
            sim_.run_until(sim_.now() + milliseconds(100));
        }
        return pred();
    }

    bool adapted() { return robot_->receiver().installed_count() == 3; }

    sim::Simulator sim_;
    net::Network net_;
    std::unique_ptr<BaseStation> hall_;
    std::unique_ptr<MobileNode> robot_;
    std::unique_ptr<NodeStack> alice_, mallory_;
    std::shared_ptr<rt::ServiceObject> service_;
};

TEST_F(Fig2Scenario, UnadaptedServiceAcceptsAnyone) {
    // Before the hall adapts the robot (instantly at t=0), anyone may call.
    Value r = mallory_->rpc().call_sync(robot_->id(), "m_R", "work", {Value{5}});
    EXPECT_EQ(r.as_int(), 5);
}

TEST_F(Fig2Scenario, AllThreeExtensionsInstall) {
    ASSERT_TRUE(run_until([&] { return adapted(); }));
    std::set<std::string> names;
    for (const auto& inst : robot_->receiver().installed()) names.insert(inst.name);
    EXPECT_TRUE(names.contains("hall/session"));
    EXPECT_TRUE(names.contains("hall/access-control"));
    EXPECT_TRUE(names.contains("hall/quality"));
}

TEST_F(Fig2Scenario, AuthorizedCallerCompletesAndStateIsLogged) {
    ASSERT_TRUE(run_until([&] { return adapted(); }));

    Value r = alice_->rpc().call_sync(robot_->id(), "m_R", "work", {Value{7}});
    EXPECT_EQ(r.as_int(), 7);

    // Step 4: the state change was propagated to the hall database.
    ASSERT_TRUE(run_until([&] { return hall_->store().size() >= 1; }));
    auto records = hall_->store().query(db::Query{});
    ASSERT_GE(records.size(), 1u);
    EXPECT_EQ(records[0].source, "robot:1:1");
    const Dict& data = records[0].data.as_dict();
    EXPECT_EQ(data.at("field").as_str(), "state");
    EXPECT_EQ(data.at("old").as_int(), 0);
    EXPECT_EQ(data.at("new").as_int(), 7);
}

TEST_F(Fig2Scenario, UnauthorizedCallerIsDenied) {
    ASSERT_TRUE(run_until([&] { return adapted(); }));

    try {
        mallory_->rpc().call_sync(robot_->id(), "m_R", "work", {Value{5}});
        FAIL() << "expected AccessDenied";
    } catch (const AccessDenied& e) {
        EXPECT_NE(std::string(e.what()).find("mallory"), std::string::npos);
    }
    // The denied call never executed the body nor changed state.
    EXPECT_EQ(service_->peek("state").as_int(), 0);
    EXPECT_EQ(hall_->store().size(), 0u);
}

TEST_F(Fig2Scenario, LocalCallsAreGovernedToo) {
    ASSERT_TRUE(run_until([&] { return adapted(); }));
    // A local (non-RPC) invocation has no caller identity; the policy
    // rejects it like any unauthorized caller.
    EXPECT_THROW(service_->call("work", {Value{1}}), AccessDenied);
}

TEST_F(Fig2Scenario, LeavingTheHallRevertsEverything) {
    ASSERT_TRUE(run_until([&] { return adapted(); }));
    robot_->move_to({1000, 0});
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 0; }));

    // Out of the hall the robot is its plain self again. (Mallory cannot
    // reach it by radio anymore, but local calls show the policy is gone.)
    EXPECT_EQ(service_->call("work", {Value{3}}).as_int(), 3);
    EXPECT_FALSE(service_->type().method("work")->woven());
}

TEST_F(Fig2Scenario, DeviceAgeExtensionGatesByTrust) {
    // §4.6: "a proactive context can add an extension that records the
    // 'birth date' of a device. The very same extension may intercept all
    // service invocations ... and decide how to proceed depending on the
    // device's age." Here: devices younger than 5 virtual seconds may not
    // execute service calls.
    ASSERT_TRUE(run_until([&] { return adapted(); }));

    ExtensionPackage age;
    age.name = "hall/age-gate";
    age.script = R"SCRIPT(
        let birth_ms = sys.now_ms();   // recorded when the extension arrives
        fun onEntry() {
            let age_ms = sys.now_ms() - birth_ms;
            if (age_ms < config.min_age_ms) {
                ctx.deny("device too young (" + str(age_ms) + "ms)");
            }
        }
    )SCRIPT";
    age.bindings = {{prose::AdviceKind::kBefore, "call(* RobotSvc.*(..))", "onEntry",
                     /*priority=*/-20}};
    age.config = Value{Dict{{"min_age_ms", Value{5000}}}};
    hall_->base().add_extension(age);
    ASSERT_TRUE(run_until([&] { return robot_->receiver().installed_count() == 4; }));

    // Too young: even the authorized caller is refused.
    SimTime installed_at = sim_.now();
    EXPECT_THROW(alice_->rpc().call_sync(robot_->id(), "m_R", "work", {Value{1}}),
                 AccessDenied);

    // Old enough: calls pass the age gate (and then the other policies).
    sim_.run_until(installed_at + seconds(6));
    EXPECT_EQ(alice_->rpc().call_sync(robot_->id(), "m_R", "work", {Value{2}}).as_int(), 2);
}

TEST_F(Fig2Scenario, PolicyUpdateChangesAuthorizationLive) {
    ASSERT_TRUE(run_until([&] { return adapted(); }));
    EXPECT_THROW(mallory_->rpc().call_sync(robot_->id(), "m_R", "work", {Value{1}}),
                 AccessDenied);

    // The hall now authorizes mallory as well; the new policy replaces the
    // old one on the adapted robot without any robot-side involvement.
    hall_->base().add_extension(access_package(List{Value{"alice"}, Value{"mallory"}}));
    ASSERT_TRUE(run_until([&] { return robot_->receiver().stats().replacements >= 1; }));

    EXPECT_EQ(mallory_->rpc().call_sync(robot_->id(), "m_R", "work", {Value{2}}).as_int(),
              2);
}

// The paper's §1 PDA scenario: "PDAs entering a building being adapted
// with an encryption layer, a persistence module, and a filter that
// prevents using certain resources." All three arrive together; none is in
// the PDA's code.
TEST(PdaBuildingScenario, ThreeExtensionsComposeOnEntry) {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 99);

    BaseConfig bc;
    bc.issuer = "building";
    BaseStation building(net, "building", {0, 0}, 100.0, bc);
    building.keys().add_key("building", to_bytes("bk"));
    // The building mandates an encrypted application channel, so its own
    // application endpoints (the collector) must speak it too. MIDAS
    // control traffic is filter-exempt either way.
    key_channel(building.rpc(), /*owner=*/1, "building-key");

    MobileNode pda(net, "pda:ann", {10, 0}, 100.0);
    pda.trust().trust("building", to_bytes("bk"));
    pda.receiver().allow_capabilities("building", {"rpc", "net"});

    // The PDA's own application: notes plus a camera it can trigger.
    pda.runtime().register_type(
        rt::TypeInfo::Builder("PdaApps")
            .field("note_count", TypeKind::kInt, Value{std::int64_t{0}})
            .method("add_note", TypeKind::kInt, {{"text", TypeKind::kStr}},
                    [](rt::ServiceObject& self, List& args) -> Value {
                        (void)args;
                        std::int64_t n = self.peek("note_count").as_int() + 1;
                        self.set("note_count", Value{n});
                        return Value{n};
                    })
            .method("take_photo", TypeKind::kStr, {},
                    [](rt::ServiceObject&, List&) -> Value { return Value{"click"}; })
            .build());
    auto apps = pda.runtime().create("PdaApps", "apps");
    pda.rpc().export_object("apps");

    // 1. Encryption layer (application-blind).
    ExtensionPackage enc;
    enc.name = "building/encryption";
    enc.script = "rpc.set_channel(config.key);";
    enc.capabilities = {"rpc"};
    enc.config = Value{Dict{{"key", Value{"building-key"}}}};
    building.base().add_extension(enc);

    // 2. Persistence module: every state change lands in the building DB.
    ExtensionPackage persist;
    persist.name = "building/persistence";
    persist.script = R"(
        fun onSet() {
            owner.post("collector", "post",
                       [sys.node(), {"field": ctx.field(), "value": ctx.newval()}]);
        })";
    persist.bindings = {{prose::AdviceKind::kFieldSet, "fieldset(PdaApps.*)", "onSet", 0}};
    persist.capabilities = {"net"};
    building.base().add_extension(persist);

    // 3. Resource filter: no cameras inside the building.
    ExtensionPackage filter;
    filter.name = "building/no-cameras";
    filter.script = R"(
        fun onEntry() { ctx.deny("cameras are not allowed in this building"); }
    )";
    filter.bindings = {{prose::AdviceKind::kBefore, "call(* PdaApps.take_photo(..))",
                        "onEntry", 0}};
    building.base().add_extension(filter);

    auto run_until = [&](const std::function<bool()>& pred, Duration timeout) {
        SimTime deadline = sim.now() + timeout;
        while (sim.now() < deadline) {
            if (pred()) return true;
            sim.run_until(sim.now() + milliseconds(100));
        }
        return pred();
    };
    ASSERT_TRUE(run_until([&] { return pda.receiver().installed_count() == 3; },
                          seconds(15)));

    // The filter blocks the camera; notes still work and are persisted.
    EXPECT_THROW(apps->call("take_photo", {}), AccessDenied);
    EXPECT_EQ(apps->call("add_note", {Value{"meeting at 3"}}).as_int(), 1);
    ASSERT_TRUE(run_until([&] { return building.store().size() >= 1; }, seconds(5)));
    EXPECT_EQ(building.store().query(db::Query{})[0].data.as_dict().at("field").as_str(),
              "note_count");

    // The encryption layer is live: an outsider's plaintext call is dropped.
    NodeStack outsider(net, "outsider", {-10, 0}, 100.0);
    EXPECT_THROW(outsider.rpc().call_sync(pda.id(), "apps", "add_note",
                                          {Value{"spam"}}, milliseconds(500)),
                 RemoteError);

    // Leaving the building removes all three at once.
    pda.move_to({1000, 0});
    ASSERT_TRUE(run_until([&] { return pda.receiver().installed_count() == 0; },
                          seconds(15)));
    EXPECT_NO_THROW(apps->call("take_photo", {}));
    EXPECT_EQ(pda.rpc().wire_filter_count(), 0u);
}

}  // namespace
}  // namespace pmp::midas
