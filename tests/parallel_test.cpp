// Tests for the deterministic parallel simulation kernel and the
// epoch/RCU hook-table publication path it leans on:
//   - EpochDomain grace periods (participants, read guards, reclamation)
//   - concurrent advice dispatch vs. weave/withdraw on live threads
//   - window/mailbox semantics of ShardedSimulator
//   - the determinism contract: identical seeds produce byte-identical
//     merged traces and journals at 1, 2 and 4 workers (the ShardChaos
//     soak drives shard-local radios, faults and cross-shard mesh traffic
//     to make that comparison mean something).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch.h"
#include "core/weaver.h"
#include "net/mesh.h"
#include "net/network.h"
#include "net/router.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "rt/runtime.h"
#include "sim/shard.h"

namespace pmp {
namespace {

// ----------------------------------------------------------- EpochDomain ----

TEST(EpochDomain, ReclaimsOnceParticipantsQuiesce) {
    EpochDomain domain;
    std::atomic<bool> freed{false};

    std::atomic<int> phase{0};
    std::thread worker([&]() {
        EpochDomain::Participant p(domain);
        phase.store(1);
        while (phase.load() != 2) std::this_thread::yield();
        p.quiescent();
        phase.store(3);
        while (phase.load() != 4) std::this_thread::yield();
    });
    while (phase.load() != 1) std::this_thread::yield();

    domain.retire([&]() { freed.store(true); });
    // The worker registered before the retirement and has not quiesced
    // since: the entry must be deferred.
    domain.reap();
    EXPECT_FALSE(freed.load());
    EXPECT_EQ(domain.pending(), 1u);

    phase.store(2);
    while (phase.load() != 3) std::this_thread::yield();
    domain.reap();
    EXPECT_TRUE(freed.load());
    EXPECT_EQ(domain.pending(), 0u);
    phase.store(4);
    worker.join();
}

TEST(EpochDomain, ParticipantDestructionCountsAsQuiescence) {
    EpochDomain domain;
    bool freed = false;
    std::thread worker([&]() {
        EpochDomain::Participant p(domain);
        domain.retire([&]() { freed = true; });
        // No quiescent() call: destruction must release the entry.
    });
    worker.join();
    domain.reap();
    EXPECT_TRUE(freed);
}

TEST(EpochDomain, ReadGuardPinsReclamation) {
    // Guards from unregistered threads (this one) defer everything,
    // including entries retired by the guarded thread itself — the
    // withdraw-from-inside-advice shape.
    auto& domain = EpochDomain::global();
    bool freed = false;
    {
        EpochDomain::ReadGuard guard;
        domain.retire([&]() { freed = true; });
        domain.reap();
        EXPECT_FALSE(freed);
    }
    domain.reap();
    EXPECT_TRUE(freed);
}

TEST(EpochDomain, NestedGuardsReleaseOnce) {
    auto& domain = EpochDomain::global();
    bool freed = false;
    {
        EpochDomain::ReadGuard outer;
        {
            EpochDomain::ReadGuard inner;
            domain.retire([&]() { freed = true; });
        }
        domain.reap();
        EXPECT_FALSE(freed);  // outer guard still live
    }
    domain.reap();
    EXPECT_TRUE(freed);
}

TEST(EpochDomain, CountersTrackRetirements) {
    EpochDomain domain;
    std::uint64_t before = domain.retired_total();
    domain.retire([]() {});
    domain.retire([]() {});
    EXPECT_EQ(domain.retired_total(), before + 2);
    domain.reap();
    EXPECT_EQ(domain.reclaimed_total(), domain.retired_total());
}

// ------------------------------------------------- RCU hook publication ----

std::shared_ptr<rt::TypeInfo> calc_type() {
    return rt::TypeInfo::Builder("Calc")
        .method("add", rt::TypeKind::kInt, {{"x", rt::TypeKind::kInt}},
                [](rt::ServiceObject&, rt::List& args) -> rt::Value {
                    return rt::Value{args[0].as_int() + 1};
                })
        .build();
}

TEST(RcuDispatch, ConcurrentReadersSurviveHookChurn) {
    // Raw reader threads hammer dispatch while this thread publishes and
    // retires hook tables as fast as it can. Failure mode without the
    // epoch scheme: use-after-free of a superseded table mid-chain.
    rt::Runtime runtime("rcu-node");
    runtime.register_type(calc_type());
    auto obj = runtime.create("Calc", "calc:1");
    rt::Method* add = obj->type().method("add");

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> calls{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&]() {
            // One trace buffer per thread — the same contract the shard
            // workers follow (trace.h: buffers are thread-compatible).
            obs::TraceBuffer local(256);
            obs::TraceBuffer::Redirect redirect(local);
            while (!stop.load(std::memory_order_relaxed)) {
                rt::Value v = obj->call("add", {rt::Value{std::int64_t{41}}});
                // The body's result is stable whatever advice is woven.
                ASSERT_EQ(v.as_int(), 42);
                calls.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    // Don't start churning until every reader is demonstrably in its loop,
    // or the whole mutation phase can finish before the first dispatch.
    while (calls.load(std::memory_order_relaxed) < 16) std::this_thread::yield();

    std::atomic<std::uint64_t> advised{0};
    for (int round = 0; round < 400; ++round) {
        add->add_entry_hook(/*owner=*/7, /*priority=*/0,
                            [&](rt::CallFrame&) { advised.fetch_add(1); });
        add->add_exit_hook(/*owner=*/7, /*priority=*/0, [&](rt::CallFrame&) {});
        add->remove_hooks(7);
    }
    stop.store(true);
    for (auto& t : readers) t.join();
    EXPECT_GT(calls.load(), 0u);
    EXPECT_FALSE(add->woven());
    EpochDomain::global().reap();
    EXPECT_EQ(EpochDomain::global().pending(), 0u);
}

TEST(RcuDispatch, ConcurrentReadersSurviveWeaveWithdraw) {
    // Same shape one layer up: the Weaver publishes via the same RCU path
    // and retires each Woven through the domain; reader threads must never
    // observe a dangling Woven from a withdrawn aspect.
    rt::Runtime runtime("rcu-weave-node");
    runtime.register_type(calc_type());
    auto obj = runtime.create("Calc", "calc:2");
    prose::Weaver weaver(runtime);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> calls{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) {
        readers.emplace_back([&]() {
            obs::TraceBuffer local(256);
            obs::TraceBuffer::Redirect redirect(local);
            while (!stop.load(std::memory_order_relaxed)) {
                ASSERT_EQ(obj->call("add", {rt::Value{std::int64_t{1}}}).as_int(), 2);
                calls.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    while (calls.load(std::memory_order_relaxed) < 8) std::this_thread::yield();
    for (int round = 0; round < 200; ++round) {
        auto aspect = std::make_shared<prose::Aspect>("churn");
        aspect->before("call(* Calc.add(..))", [](rt::CallFrame&) {});
        AspectId id = weaver.weave(aspect);
        weaver.withdraw(id);
    }
    stop.store(true);
    for (auto& t : readers) t.join();
    EXPECT_GT(calls.load(), 0u);
}

// ---------------------------------------------------- window semantics ----

TEST(ShardedSimulator, PostClampsToLookahead) {
    sim::ShardOptions opts;
    opts.shards = 2;
    opts.workers = 2;
    opts.lookahead = Duration{1000};
    sim::ShardedSimulator shards(opts);

    SimTime delivered = SimTime::zero();
    // Ask for instant delivery; the lookahead clamp must defer it.
    shards.post(0, 1, SimTime::zero(), [&]() { delivered = shards.shard(1).now(); });
    shards.run_until(SimTime{5000});
    EXPECT_EQ(delivered, SimTime{1000});
}

TEST(ShardedSimulator, MailboxesDrainInDstSrcFifoOrder) {
    sim::ShardOptions opts;
    opts.shards = 3;
    opts.workers = 1;
    opts.lookahead = Duration{10};
    sim::ShardedSimulator shards(opts);

    // All messages land on shard 0 at the same instant; the drain order
    // (src ascending, FIFO within a lane) decides the seq tie-breakers.
    std::vector<int> order;
    SimTime when{50};
    shards.post(2, 0, when, [&]() { order.push_back(20); });
    shards.post(2, 0, when, [&]() { order.push_back(21); });
    shards.post(1, 0, when, [&]() { order.push_back(10); });
    shards.post(0, 0, when, [&]() { order.push_back(0); });
    shards.run_until(SimTime{100});
    EXPECT_EQ(order, (std::vector<int>{0, 10, 20, 21}));
}

TEST(ShardedSimulator, CrossShardPingPongConverges) {
    sim::ShardOptions opts;
    opts.shards = 2;
    opts.workers = 2;
    opts.lookahead = Duration{100};
    sim::ShardedSimulator shards(opts);

    int volleys = 0;
    std::function<void(std::size_t)> volley = [&](std::size_t at) {
        ++volleys;
        if (volleys >= 10) return;
        std::size_t other = 1 - at;
        shards.post(at, other, shards.shard(at).now(), [&volley, other]() { volley(other); });
    };
    shards.shard(0).schedule_at(SimTime{0}, [&]() { volley(0); });
    shards.run_until(SimTime{10000});
    EXPECT_EQ(volleys, 10);
    EXPECT_GE(shards.windows(), 10u);  // each volley needs its own window
    EXPECT_EQ(shards.now(), SimTime{10000});
}

TEST(ShardedSimulator, ShardPlacementAndSeedsAreStable) {
    sim::ShardOptions opts;
    opts.shards = 4;
    opts.seed = 77;
    sim::ShardedSimulator a(opts);
    sim::ShardedSimulator b(opts);
    for (auto name : {"hall/0", "hall/1", "robot/7", "base/entrance"}) {
        EXPECT_EQ(a.shard_of(name), b.shard_of(name));
    }
    EXPECT_EQ(a.shard_seed(2, "radio"), b.shard_seed(2, "radio"));
    EXPECT_NE(a.shard_seed(2, "radio"), a.shard_seed(3, "radio"));
    EXPECT_NE(a.shard_seed(2, "radio"), a.shard_seed(2, "mobility"));
}

// ------------------------------------------------------- determinism ----

/// One ShardChaos world: per shard a small radio network (a hub and two
/// leaves) with burst loss and a mid-run partition, local broadcast
/// traffic, and cross-shard mesh pings hub -> next hub. Journals record
/// every delivery in shard-event order.
struct ChaosRun {
    std::string trace_render;
    std::vector<std::string> journals;       // one per shard, '\n'-joined
    std::vector<std::uint64_t> delivered;    // per shard
    std::uint64_t mesh_sent = 0;
    std::uint64_t executed = 0;
    std::uint64_t windows = 0;
};

ChaosRun run_shard_chaos(std::size_t workers) {
    constexpr std::size_t kShards = 4;
    sim::ShardOptions opts;
    opts.shards = kShards;
    opts.workers = workers;
    opts.lookahead = microseconds(200);
    opts.seed = 424242;
    opts.trace_capacity = 8192;
    sim::ShardedSimulator shards(opts);
    net::ShardMesh mesh(shards, net::MeshOptions{microseconds(500), /*loss=*/0.1});

    struct ShardWorld {
        std::unique_ptr<net::Network> net;
        NodeId hub, leaf_a, leaf_b;
        std::unique_ptr<net::MessageRouter> hub_router;
        std::unique_ptr<net::MessageRouter> leaf_a_router;
        std::unique_ptr<net::MessageRouter> leaf_b_router;
        std::vector<std::string> journal;
    };
    std::vector<ShardWorld> worlds(kShards);

    for (std::size_t i = 0; i < kShards; ++i) {
        ShardWorld& w = worlds[i];
        net::NetworkConfig cfg;
        cfg.jitter = microseconds(50);
        cfg.obs_label = "chaos-hall" + std::to_string(i);
        w.net = std::make_unique<net::Network>(shards.shard(i), cfg,
                                               shards.shard_seed(i, "radio"));
        std::string tag = "s" + std::to_string(i);
        w.hub = w.net->add_node("hub/" + tag, {0, 0}, 100);
        w.leaf_a = w.net->add_node("leaf-a/" + tag, {10, 0}, 100);
        w.leaf_b = w.net->add_node("leaf-b/" + tag, {0, 10}, 100);
        net::FaultPlan plan;
        plan.burst_enter = 0.05;
        plan.delay_jitter = microseconds(80);
        plan.partitions.push_back(net::PartitionWindow{
            SimTime{0} + milliseconds(20), SimTime{0} + milliseconds(30),
            {w.leaf_b}, {}, false});
        w.net->set_fault_plan(std::move(plan), shards.shard_seed(i, "faults"));

        w.hub_router = std::make_unique<net::MessageRouter>(*w.net, w.hub);
        w.leaf_a_router = std::make_unique<net::MessageRouter>(*w.net, w.leaf_a);
        w.leaf_b_router = std::make_unique<net::MessageRouter>(*w.net, w.leaf_b);
        w.hub_router->attach_mesh(mesh, i);

        auto journal_handler = [&w, i](const char* who) {
            return [&w, i, who](const net::Message& m) {
                w.journal.push_back(std::string(who) + " got " + m.kind + " at " +
                                    to_string(w.net->simulator().now()));
                obs::TraceBuffer::global().instant("chaos.node", "deliver",
                                                   {{"who", who}, {"kind", m.kind}});
            };
        };
        w.leaf_a_router->route("tick", journal_handler("leaf-a"));
        w.leaf_b_router->route("tick", journal_handler("leaf-b"));
        w.hub_router->route("mesh.ping", journal_handler("hub"));

        // Local traffic: the hub broadcasts a tick every 700us, and every
        // third tick pings the next shard's hub across the backbone.
        shards.shard(i).schedule_every(microseconds(700), [&w, i]() {
            std::uint64_t span = obs::TraceBuffer::global().begin_span(
                "chaos.hub", "tick", {{"shard", std::to_string(i)}});
            w.hub_router->broadcast("tick", Bytes{1, 2, 3});
            if (w.journal.size() % 3 == 0) {
                std::size_t next = (i + 1) % kShards;
                w.hub_router->send_remote(next, "hub/s" + std::to_string(next),
                                          "mesh.ping", Bytes{9});
            }
            obs::TraceBuffer::global().end_span(span);
        });
    }
    // A mid-run crash on shard 2's leaf-a: deliveries to it stop cleanly.
    shards.shard(2).schedule_at(SimTime{0} + milliseconds(25),
                                [&worlds]() { worlds[2].net->remove_node(worlds[2].leaf_a); });

    shards.run_until(SimTime{0} + milliseconds(60));

    ChaosRun out;
    for (const auto& tree : obs::build_trace_trees(shards.merged_trace())) {
        out.trace_render += obs::render_tree(tree);
        out.trace_render += '\n';
    }
    for (std::size_t i = 0; i < kShards; ++i) {
        std::string j;
        for (const auto& line : worlds[i].journal) {
            j += line;
            j += '\n';
        }
        out.journals.push_back(std::move(j));
        out.delivered.push_back(worlds[i].net->stats().delivered);
    }
    out.mesh_sent = mesh.sent();
    out.executed = shards.executed();
    out.windows = shards.windows();
    return out;
}

TEST(ShardChaos, ByteIdenticalAcrossWorkerCounts) {
    ChaosRun one = run_shard_chaos(1);
    ChaosRun two = run_shard_chaos(2);
    ChaosRun four = run_shard_chaos(4);

    // The world actually did something worth comparing.
    ASSERT_GT(one.executed, 100u);
    ASSERT_GT(one.mesh_sent, 0u);
    ASSERT_FALSE(one.trace_render.empty());

    EXPECT_EQ(one.trace_render, two.trace_render);
    EXPECT_EQ(one.trace_render, four.trace_render);
    EXPECT_EQ(one.journals, two.journals);
    EXPECT_EQ(one.journals, four.journals);
    EXPECT_EQ(one.delivered, two.delivered);
    EXPECT_EQ(one.delivered, four.delivered);
    EXPECT_EQ(one.mesh_sent, two.mesh_sent);
    EXPECT_EQ(one.mesh_sent, four.mesh_sent);
    EXPECT_EQ(one.executed, two.executed);
    EXPECT_EQ(one.executed, four.executed);
    EXPECT_EQ(one.windows, two.windows);
    EXPECT_EQ(one.windows, four.windows);
}

TEST(ShardChaos, RepeatRunIsIdenticalTooWithSameWorkers) {
    ChaosRun a = run_shard_chaos(2);
    ChaosRun b = run_shard_chaos(2);
    EXPECT_EQ(a.trace_render, b.trace_render);
    EXPECT_EQ(a.journals, b.journals);
}

}  // namespace
}  // namespace pmp
