// Tests for the AdviceScript static checker and its integration with the
// MIDAS receiver (reject-at-install).
#include <gtest/gtest.h>

#include "midas/node.h"
#include "robot/devices.h"
#include "script/check.h"
#include "script/parser.h"

namespace pmp::script {
namespace {

std::vector<Diagnostic> run_check(const std::string& source,
                                  std::vector<std::string> extra_builtins = {}) {
    BuiltinRegistry reg = BuiltinRegistry::with_core();
    for (const std::string& name : extra_builtins) {
        reg.add(name, "", [](rt::List&) { return rt::Value{}; });
    }
    Program program = parse(source);
    return check(program, reg);
}

bool mentions(const std::vector<Diagnostic>& diags, const std::string& needle) {
    for (const auto& d : diags) {
        if (d.message.find(needle) != std::string::npos) return true;
    }
    return false;
}

TEST(Checker, CleanProgramHasNoDiagnostics) {
    auto diags = run_check(R"(
        let buffer = [];
        fun onEntry() {
            buffer[len(buffer)] = 1;
            if (len(buffer) > 10) { flush(); }
        }
        fun flush() { buffer = []; }
        fun onShutdown(reason) { flush(); }
    )");
    EXPECT_TRUE(diags.empty()) << format_diagnostics(diags);
}

TEST(Checker, UndefinedVariable) {
    auto diags = run_check("fun f() { return missing_var; }");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_TRUE(mentions(diags, "undefined variable 'missing_var'"));
}

TEST(Checker, TopLevelLetVisibleInFunctions) {
    EXPECT_TRUE(run_check("let g = 1; fun f() { return g; }").empty());
    // ...even when the function is declared before the let.
    EXPECT_TRUE(run_check("fun f() { return g; } let g = 1;").empty());
}

TEST(Checker, TopLevelUseBeforeLetIsFlagged) {
    auto diags = run_check("let a = b; let b = 1;");
    EXPECT_TRUE(mentions(diags, "undefined variable 'b'"));
}

TEST(Checker, BlockScopedLetDoesNotLeak) {
    auto diags = run_check(R"(
        fun f() {
            if (true) { let x = 1; }
            return x;
        }
    )");
    EXPECT_TRUE(mentions(diags, "undefined variable 'x'"));
}

TEST(Checker, ConditionalTopLevelLetIsNotGlobal) {
    // Mirrors the interpreter: only *direct* top-level lets create globals.
    auto diags = run_check("if (true) { let x = 1; }\nfun f() { return x; }");
    EXPECT_TRUE(mentions(diags, "undefined variable 'x'"));
}

TEST(Checker, UnknownFunction) {
    auto diags = run_check("fun f() { frobnicate(); }");
    EXPECT_TRUE(mentions(diags, "unknown function 'frobnicate'"));
}

TEST(Checker, KnownBuiltinAccepted) {
    EXPECT_TRUE(run_check("fun f() { owner.post(); }", {"owner.post"}).empty());
    EXPECT_TRUE(mentions(run_check("fun f() { owner.post(); }"), "unknown function"));
}

TEST(Checker, UserFunctionArity) {
    auto diags = run_check("fun two(a, b) { return a + b; }\nfun f() { two(1); }");
    EXPECT_TRUE(mentions(diags, "expects 2 args, got 1"));
}

TEST(Checker, AssignToUndeclared) {
    auto diags = run_check("fun f() { y = 1; }");
    EXPECT_TRUE(mentions(diags, "assignment to undeclared variable 'y'"));
}

TEST(Checker, ParamsAreDefined) {
    EXPECT_TRUE(run_check("fun f(a, b) { return a + b; }").empty());
}

TEST(Checker, ForLoopVariableScoped) {
    EXPECT_TRUE(run_check(R"(
        fun f(l) {
            let s = 0;
            for (x in l) { s = s + x; }
            return s;
        }
    )").empty());
    EXPECT_TRUE(mentions(run_check("fun f(l) { for (x in l) { } return x; }"),
                         "undefined variable 'x'"));
}

TEST(Checker, BreakContinueOutsideLoop) {
    EXPECT_TRUE(mentions(run_check("fun f() { break; }"), "'break' outside a loop"));
    EXPECT_TRUE(mentions(run_check("fun f() { continue; }"), "'continue' outside a loop"));
    EXPECT_TRUE(run_check("fun f() { while (true) { break; } }").empty());
    // A function body does not inherit the caller's loop.
    EXPECT_TRUE(mentions(run_check(R"(
        fun inner() { break; }
        fun f() { while (true) { inner(); } }
    )"),
                         "'break' outside a loop"));
}

TEST(Checker, ReturnOutsideFunction) {
    EXPECT_TRUE(mentions(run_check("return 1;"), "'return' outside a function"));
}

TEST(Checker, UnreachableCode) {
    auto diags = run_check(R"(
        fun f() {
            return 1;
            let dead = 2;
        }
    )");
    EXPECT_TRUE(mentions(diags, "unreachable statement"));
}

TEST(Checker, DuplicateFunctionsAndParams) {
    EXPECT_TRUE(mentions(run_check("fun f() { }\nfun f() { }"), "duplicate function 'f'"));
    EXPECT_TRUE(mentions(run_check("fun g(a, a) { return a; }"), "duplicate parameter 'a'"));
}

TEST(Checker, PredefinedConfigIsKnown) {
    EXPECT_TRUE(run_check("fun f() { return config.limit; }").empty());
}

TEST(Checker, MultipleDiagnosticsReported) {
    auto diags = run_check("fun f() { aa(); return bb; }");
    EXPECT_GE(diags.size(), 2u);
    std::string all = format_diagnostics(diags);
    EXPECT_NE(all.find("aa"), std::string::npos);
    EXPECT_NE(all.find("bb"), std::string::npos);
    EXPECT_NE(all.find("line"), std::string::npos);
}

// --------------------------------------------- interpreter signal fixes ----

TEST(InterpSignals, TopLevelReturnIsScriptError) {
    auto program = std::make_shared<const Program>(parse("return 1;"));
    Interpreter interp(program, Sandbox{},
                       std::make_shared<BuiltinRegistry>(BuiltinRegistry::with_core()));
    EXPECT_THROW(interp.run_top_level(), ScriptError);
}

TEST(InterpSignals, BreakDoesNotEscapeFunctionIntoCallerLoop) {
    auto program = std::make_shared<const Program>(parse(R"(
        let iterations = 0;
        fun bad() { break; }
        fun f() {
            let i = 0;
            while (i < 3) {
                i = i + 1;
                iterations = iterations + 1;
                bad();
            }
            return iterations;
        }
    )"));
    Interpreter interp(program, Sandbox{},
                       std::make_shared<BuiltinRegistry>(BuiltinRegistry::with_core()));
    interp.run_top_level();
    // The stray break surfaces as a script error on the first iteration —
    // it must NOT silently terminate the caller's loop.
    EXPECT_THROW(interp.call("f", {}), ScriptError);
    EXPECT_EQ(interp.global("iterations")->as_int(), 1);
}

}  // namespace
}  // namespace pmp::script

// ------------------------------------------------- receiver integration ----

namespace pmp::midas {
namespace {

using rt::Value;

TEST(ReceiverStaticCheck, BrokenExtensionRejectedAtInstall) {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 3);
    BaseConfig bc;
    bc.issuer = "hall";
    BaseStation hall(net, "hall", {0, 0}, 100.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));
    MobileNode device(net, "robot", {10, 0}, 100.0);
    device.trust().trust("hall", to_bytes("k"));
    device.receiver().allow_capabilities("hall", {});
    robot::make_motor(device.runtime(), "motor:x");

    ExtensionPackage broken;
    broken.name = "hall/broken";
    broken.script = "fun onEntry() { misspelled_builtin(ctx.argg(0)); }";
    broken.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    hall.base().add_extension(broken);

    SimTime deadline = sim.now() + seconds(10);
    while (sim.now() < deadline && device.receiver().stats().rejections == 0) {
        sim.run_until(sim.now() + milliseconds(100));
    }
    EXPECT_GE(device.receiver().stats().rejections, 1u);
    EXPECT_EQ(device.receiver().installed_count(), 0u);
    EXPECT_GE(hall.base().stats().install_failures, 1u);
}

TEST(ReceiverStaticCheck, CtxBuiltinsAreKnownToTheChecker) {
    // A script that uses the join-point API extensively must pass the
    // static check and install.
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 4);
    BaseConfig bc;
    bc.issuer = "hall";
    BaseStation hall(net, "hall", {0, 0}, 100.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));
    MobileNode device(net, "robot", {10, 0}, 100.0);
    device.trust().trust("hall", to_bytes("k"));
    device.receiver().allow_capabilities("hall", {"net"});
    robot::make_motor(device.runtime(), "motor:x");

    ExtensionPackage rich;
    rich.name = "hall/rich";
    rich.script = R"(
        fun onEntry() {
            ctx.set_note("who", sys.caller());
            if (ctx.method() == "rotate" && ctx.arg(0) > 100) {
                ctx.deny("too far");
            }
            owner.post("collector", "post", [sys.node(), ctx.args()]);
        }
        fun onShutdown(reason) { log.info("bye ", reason); }
    )";
    rich.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    rich.capabilities = {"net", "log"};
    device.receiver().allow_capabilities("hall", {"net", "log"});
    hall.base().add_extension(rich);

    SimTime deadline = sim.now() + seconds(10);
    while (sim.now() < deadline && device.receiver().installed_count() == 0) {
        sim.run_until(sim.now() + milliseconds(100));
    }
    EXPECT_EQ(device.receiver().installed_count(), 1u);
    EXPECT_EQ(device.receiver().stats().rejections, 0u);
}

}  // namespace
}  // namespace pmp::midas
