// Tests for the hall database: append, query predicates, sources, replay.
#include <gtest/gtest.h>

#include "common/error.h"
#include "db/store.h"

namespace pmp::db {
namespace {

using rt::Dict;
using rt::Value;

Value action(const std::string& motor, double degrees) {
    return Value{Dict{{"device", Value{motor}}, {"degrees", Value{degrees}}}};
}

TEST(EventStore, AppendAssignsIncreasingSeq) {
    EventStore store;
    EXPECT_EQ(store.append("r1", SimTime{100}, action("x", 10)), 1u);
    EXPECT_EQ(store.append("r1", SimTime{200}, action("y", 20)), 2u);
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.at(1).source, "r1");
    EXPECT_THROW(store.at(0), Error);
    EXPECT_THROW(store.at(3), Error);
}

TEST(EventStore, QueryBySource) {
    EventStore store;
    store.append("r1", SimTime{1}, action("x", 1));
    store.append("r2", SimTime{2}, action("x", 2));
    store.append("r1", SimTime{3}, action("x", 3));

    Query q;
    q.source = "r1";
    auto out = store.query(q);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].seq, 1u);
    EXPECT_EQ(out[1].seq, 3u);
}

TEST(EventStore, QueryByTimeRange) {
    EventStore store;
    for (int i = 0; i < 10; ++i) {
        store.append("r1", SimTime{i * 100}, action("x", i));
    }
    Query q;
    q.from = SimTime{300};   // inclusive
    q.until = SimTime{600};  // exclusive
    auto out = store.query(q);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out.front().at, SimTime{300});
    EXPECT_EQ(out.back().at, SimTime{500});
}

TEST(EventStore, QueryLimit) {
    EventStore store;
    for (int i = 0; i < 10; ++i) store.append("r1", SimTime{i}, action("x", i));
    Query q;
    q.limit = 4;
    EXPECT_EQ(store.query(q).size(), 4u);
}

TEST(EventStore, QueryCombinedPredicates) {
    EventStore store;
    for (int i = 0; i < 10; ++i) {
        store.append(i % 2 ? "odd" : "even", SimTime{i * 10}, action("x", i));
    }
    Query q;
    q.source = "even";
    q.from = SimTime{20};
    q.limit = 2;
    auto out = store.query(q);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].at, SimTime{20});
    EXPECT_EQ(out[1].at, SimTime{40});
}

TEST(EventStore, SourcesAreDistinctSorted) {
    EventStore store;
    store.append("r2", SimTime{1}, action("x", 1));
    store.append("r1", SimTime{2}, action("x", 2));
    store.append("r2", SimTime{3}, action("x", 3));
    EXPECT_EQ(store.sources(), (std::vector<std::string>{"r1", "r2"}));
}

TEST(EventStore, SnapshotRestoreRoundTrip) {
    EventStore store;
    store.append("r1", SimTime{100}, action("x", 10));
    store.append("r2", SimTime{200}, action("y", -3.5));

    EventStore back = EventStore::restore(std::span<const std::uint8_t>(store.snapshot()));
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back.at(1).source, "r1");
    EXPECT_EQ(back.at(1).at, SimTime{100});
    EXPECT_EQ(back.at(1).data, store.at(1).data);
    EXPECT_EQ(back.at(2).source, "r2");
    // Appends continue with the right sequence numbers.
    EXPECT_EQ(back.append("r3", SimTime{300}, action("z", 1)), 3u);
}

TEST(EventStore, EmptySnapshotRestores) {
    EventStore store;
    EventStore back = EventStore::restore(std::span<const std::uint8_t>(store.snapshot()));
    EXPECT_EQ(back.size(), 0u);
}

TEST(EventStore, CorruptSnapshotThrows) {
    Bytes garbage{0xFF, 0x01, 0x02};
    EXPECT_THROW(EventStore::restore(std::span<const std::uint8_t>(garbage)), ParseError);
}

// ---------------------------------------------------------------------------
// Retention: the hall log must not grow without bound (docs/storage.md).

TEST(EventStoreRetention, RecordCapTrimsOldestKeepsSeqs) {
    EventStore store;
    store.set_retention(Retention{.max_records = 3}, "hall");
    for (int i = 1; i <= 5; ++i) {
        store.append("r", SimTime{i * 100}, action("x", i));
    }
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.base_seq(), 2u);
    // Trimmed seqs no longer resolve; retained ones keep their numbers.
    EXPECT_THROW(store.at(2), Error);
    EXPECT_EQ(store.at(3).at, SimTime{300});
    EXPECT_EQ(store.at(5).at, SimTime{500});
    // New appends continue the sequence — numbers are never reused.
    EXPECT_EQ(store.append("r", SimTime{600}, action("x", 6)), 6u);
    EXPECT_EQ(store.size(), 3u);
    EXPECT_EQ(store.base_seq(), 3u);
}

TEST(EventStoreRetention, ByteCapTrimsUntilUnderBudget) {
    EventStore store;
    // Each record is a few dozen bytes; a 200-byte budget holds only a few.
    store.set_retention(Retention{.max_bytes = 200}, "hall");
    for (int i = 1; i <= 50; ++i) {
        store.append("robot", SimTime{i}, action("motor", i));
    }
    EXPECT_LT(store.size(), 10u);
    EXPECT_GT(store.size(), 0u);
    EXPECT_EQ(store.base_seq() + store.size(), 50u);
}

TEST(EventStoreRetention, PolicyAppliedRetroactivelyOnSet) {
    EventStore store;
    for (int i = 1; i <= 10; ++i) store.append("r", SimTime{i}, action("x", i));
    store.set_retention(Retention{.max_records = 4});
    EXPECT_EQ(store.size(), 4u);
    EXPECT_EQ(store.base_seq(), 6u);
}

TEST(EventStoreRetention, SnapshotRestoreReconstructsCurrentState) {
    // The regression the retention satellite guards: restore after a
    // compaction must rebuild exactly the retained window, with the same
    // sequence numbers — not a store renumbered from 1.
    EventStore store;
    store.set_retention(Retention{.max_records = 3}, "hall");
    for (int i = 1; i <= 7; ++i) store.append("r", SimTime{i * 10}, action("x", i));
    Bytes snap = store.snapshot();
    EventStore back = EventStore::restore(std::span(snap));
    EXPECT_EQ(back.size(), 3u);
    EXPECT_EQ(back.base_seq(), 4u);
    EXPECT_EQ(back.at(5).at, SimTime{50});
    EXPECT_EQ(back.at(7).at, SimTime{70});
    EXPECT_THROW(back.at(4), Error);
    // And the untrimmed format stays byte-identical to the seed: a store
    // that never trimmed snapshots as a bare list (no retention header).
    EventStore plain;
    plain.append("r", SimTime{1}, action("x", 1));
    Bytes plain_snap = plain.snapshot();
    rt::Value v = rt::Value::decode(std::span(plain_snap));
    EXPECT_TRUE(v.is_list());
}

TEST(EventStoreRetention, MalformedRetentionHeaderRaisesTypedError) {
    Bytes bad = rt::Value{Dict{{"base_seq", rt::Value{std::string("nope")}},
                               {"records", rt::Value{rt::List{}}}}}
                    .encode();
    EXPECT_THROW(EventStore::restore(std::span(bad)), Error);
    Bytes negative = rt::Value{Dict{{"base_seq", rt::Value{std::int64_t{-4}}},
                                    {"records", rt::Value{rt::List{}}}}}
                         .encode();
    EXPECT_THROW(EventStore::restore(std::span(negative)), Error);
}

TEST(ReplayCursor, IteratesInTimeOrder) {
    std::vector<Record> records;
    records.push_back(Record{3, "r", SimTime{300}, action("x", 3)});
    records.push_back(Record{1, "r", SimTime{100}, action("x", 1)});
    records.push_back(Record{2, "r", SimTime{200}, action("x", 2)});
    ReplayCursor cursor(std::move(records));

    std::vector<std::int64_t> times;
    while (!cursor.done()) times.push_back(cursor.next().at.ns);
    EXPECT_EQ(times, (std::vector<std::int64_t>{100, 200, 300}));
}

TEST(ReplayCursor, GapsPreserveRelativeTiming) {
    std::vector<Record> records;
    records.push_back(Record{1, "r", SimTime{100}, action("x", 1)});
    records.push_back(Record{2, "r", SimTime{350}, action("x", 2)});
    ReplayCursor cursor(std::move(records));

    EXPECT_EQ(cursor.gap_before_next(), Duration{0});  // before first
    cursor.next();
    EXPECT_EQ(cursor.gap_before_next(), Duration{250});
    // Scaled replay: half-speed doubles nothing — 0.5 halves the gap.
    EXPECT_EQ(cursor.gap_before_next(0.5), Duration{125});
    cursor.next();
    EXPECT_TRUE(cursor.done());
    EXPECT_THROW(cursor.next(), Error);
}

TEST(ReplayCursor, EmptyIsDone) {
    ReplayCursor cursor({});
    EXPECT_TRUE(cursor.done());
}

}  // namespace
}  // namespace pmp::db
