// Tests for the metaobject runtime: type building, dispatch with minimal
// hooks, advice chains, field hooks, and the per-node Runtime registry.
#include <gtest/gtest.h>

#include "common/error.h"
#include "rt/runtime.h"

namespace pmp::rt {
namespace {

std::shared_ptr<TypeInfo> make_calc_type() {
    return TypeInfo::Builder("Calc")
        .field("total", TypeKind::kInt, Value{std::int64_t{0}})
        .method("add", TypeKind::kInt, {{"x", TypeKind::kInt}},
                [](ServiceObject& self, List& args) -> Value {
                    std::int64_t total = self.peek("total").as_int() + args[0].as_int();
                    self.poke("total", Value{total});
                    return Value{total};
                })
        .method("fail", TypeKind::kVoid, {},
                [](ServiceObject&, List&) -> Value { throw Error("boom"); })
        .method("echo", TypeKind::kAny, {{"v", TypeKind::kAny}},
                [](ServiceObject&, List& args) -> Value { return args[0]; })
        .method("sum", TypeKind::kInt, {},
                [](ServiceObject&, List& args) -> Value {
                    std::int64_t s = 0;
                    for (const Value& v : args) s += v.as_int();
                    return Value{s};
                },
                /*varargs=*/true)
        .build();
}

class RtTest : public ::testing::Test {
protected:
    RtTest() : runtime_("test-node") {
        runtime_.register_type(make_calc_type());
        obj_ = runtime_.create("Calc", "calc:1");
    }

    Runtime runtime_;
    std::shared_ptr<ServiceObject> obj_;
};

TEST_F(RtTest, BasicInvocation) {
    EXPECT_EQ(obj_->call("add", {Value{5}}).as_int(), 5);
    EXPECT_EQ(obj_->call("add", {Value{3}}).as_int(), 8);
}

TEST_F(RtTest, UnknownMethodThrows) {
    EXPECT_THROW(obj_->call("nope", {}), TypeError);
}

TEST_F(RtTest, ArityChecked) {
    EXPECT_THROW(obj_->call("add", {}), TypeError);
    EXPECT_THROW(obj_->call("add", {Value{1}, Value{2}}), TypeError);
}

TEST_F(RtTest, ArgumentTypesChecked) {
    EXPECT_THROW(obj_->call("add", {Value{"not an int"}}), TypeError);
}

TEST_F(RtTest, VarargsAcceptsExtra) {
    EXPECT_EQ(obj_->call("sum", {Value{1}, Value{2}, Value{3}}).as_int(), 6);
    EXPECT_EQ(obj_->call("sum", {}).as_int(), 0);
}

TEST_F(RtTest, AnyParameterAcceptsEverything) {
    EXPECT_EQ(obj_->call("echo", {Value{"s"}}).as_str(), "s");
    EXPECT_TRUE(obj_->call("echo", {Value{}}).is_null());
}

TEST_F(RtTest, DuplicateMethodRejected) {
    TypeInfo::Builder builder("Dup");
    builder.method("m", TypeKind::kVoid, {}, [](ServiceObject&, List&) { return Value{}; });
    builder.method("m", TypeKind::kVoid, {}, [](ServiceObject&, List&) { return Value{}; });
    EXPECT_THROW(builder.build(), TypeError);
}

TEST_F(RtTest, MethodStartsUnwoven) {
    EXPECT_FALSE(obj_->type().method("add")->woven());
}

TEST_F(RtTest, EntryHookSeesAndRewritesArgs) {
    Method* add = obj_->type().method("add");
    add->add_entry_hook(1, 0, [](CallFrame& f) {
        f.args[0] = Value{f.args[0].as_int() * 10};
    });
    EXPECT_TRUE(add->woven());
    EXPECT_EQ(obj_->call("add", {Value{2}}).as_int(), 20);
}

TEST_F(RtTest, EntryHookCanVeto) {
    Method* add = obj_->type().method("add");
    add->add_entry_hook(1, 0, [](CallFrame&) { throw AccessDenied("no"); });
    EXPECT_THROW(obj_->call("add", {Value{1}}), AccessDenied);
    // Veto means the handler never ran.
    EXPECT_EQ(obj_->peek("total").as_int(), 0);
}

TEST_F(RtTest, ExitHookSeesAndReplacesResult) {
    Method* add = obj_->type().method("add");
    add->add_exit_hook(1, 0, [](CallFrame& f) {
        f.result = Value{f.result.as_int() + 1000};
    });
    EXPECT_EQ(obj_->call("add", {Value{1}}).as_int(), 1001);
}

TEST_F(RtTest, ErrorHookFiresOnThrow) {
    Method* fail = obj_->type().method("fail");
    std::string seen;
    fail->add_error_hook(1, 0, [&](CallFrame&, std::exception_ptr e) {
        try {
            std::rethrow_exception(e);
        } catch (const Error& err) {
            seen = err.what();
        }
    });
    EXPECT_THROW(obj_->call("fail", {}), Error);
    EXPECT_EQ(seen, "boom");
}

TEST_F(RtTest, ErrorHookDoesNotFireOnSuccess) {
    Method* add = obj_->type().method("add");
    bool fired = false;
    add->add_error_hook(1, 0, [&](CallFrame&, std::exception_ptr) { fired = true; });
    obj_->call("add", {Value{1}});
    EXPECT_FALSE(fired);
}

TEST_F(RtTest, HookPriorityOrdersExecution) {
    Method* add = obj_->type().method("add");
    std::vector<int> order;
    add->add_entry_hook(1, 10, [&](CallFrame&) { order.push_back(10); });
    add->add_entry_hook(2, -5, [&](CallFrame&) { order.push_back(-5); });
    add->add_entry_hook(3, 0, [&](CallFrame&) { order.push_back(0); });
    obj_->call("add", {Value{1}});
    EXPECT_EQ(order, (std::vector<int>{-5, 0, 10}));
}

TEST_F(RtTest, AroundHookWrapsAndControlsProceed) {
    Method* add = obj_->type().method("add");
    add->add_around_hook(1, 0, [](CallFrame& f, const std::function<Value()>& proceed) {
        if (f.args[0].as_int() < 0) return Value{-1};  // short-circuit
        Value r = proceed();
        return Value{r.as_int() * 2};
    });
    EXPECT_EQ(obj_->call("add", {Value{5}}).as_int(), 10);   // 5 -> proceed=5 -> *2
    EXPECT_EQ(obj_->call("add", {Value{-3}}).as_int(), -1);  // skipped
    EXPECT_EQ(obj_->peek("total").as_int(), 5);              // second call never ran
}

TEST_F(RtTest, NestedAroundHooksComposeOutsideIn) {
    Method* echo = obj_->type().method("echo");
    std::vector<std::string> order;
    echo->add_around_hook(1, 0, [&](CallFrame&, const std::function<Value()>& proceed) {
        order.push_back("outer-in");
        Value v = proceed();
        order.push_back("outer-out");
        return v;
    });
    echo->add_around_hook(2, 1, [&](CallFrame&, const std::function<Value()>& proceed) {
        order.push_back("inner-in");
        Value v = proceed();
        order.push_back("inner-out");
        return v;
    });
    obj_->call("echo", {Value{1}});
    EXPECT_EQ(order, (std::vector<std::string>{"outer-in", "inner-in", "inner-out",
                                               "outer-out"}));
}

TEST_F(RtTest, AroundWrapsEntryAndExitHooks) {
    Method* echo = obj_->type().method("echo");
    std::vector<std::string> order;
    echo->add_entry_hook(1, 0, [&](CallFrame&) { order.push_back("entry"); });
    echo->add_exit_hook(1, 0, [&](CallFrame&) { order.push_back("exit"); });
    echo->add_around_hook(2, 0, [&](CallFrame&, const std::function<Value()>& proceed) {
        order.push_back("around-in");
        Value v = proceed();
        order.push_back("around-out");
        return v;
    });
    obj_->call("echo", {Value{1}});
    EXPECT_EQ(order, (std::vector<std::string>{"around-in", "entry", "exit", "around-out"}));
}

TEST_F(RtTest, RemoveHooksRestoresBaseline) {
    Method* add = obj_->type().method("add");
    add->add_entry_hook(7, 0, [](CallFrame& f) { f.args[0] = Value{100}; });
    add->add_exit_hook(7, 0, [](CallFrame& f) { f.result = Value{0}; });
    EXPECT_TRUE(add->woven());
    EXPECT_TRUE(add->remove_hooks(7));
    EXPECT_FALSE(add->woven());
    EXPECT_EQ(obj_->call("add", {Value{2}}).as_int(), 2);
    EXPECT_FALSE(add->remove_hooks(7));  // second remove: nothing left
}

TEST_F(RtTest, RemoveOnlyNamedOwner) {
    Method* add = obj_->type().method("add");
    int a = 0, b = 0;
    add->add_entry_hook(1, 0, [&](CallFrame&) { ++a; });
    add->add_entry_hook(2, 0, [&](CallFrame&) { ++b; });
    add->remove_hooks(1);
    obj_->call("add", {Value{1}});
    EXPECT_EQ(a, 0);
    EXPECT_EQ(b, 1);
    EXPECT_TRUE(add->woven());
}

TEST_F(RtTest, DebuggerStyleDispatchIsSemanticallyIdentical) {
    // The PROSE-v1 ablation path must behave exactly like invoke(), woven
    // or not — it only differs in cost.
    Method* add = obj_->type().method("add");
    EXPECT_EQ(add->invoke_debugger_style(*obj_, {Value{3}}).as_int(), 3);
    add->add_entry_hook(1, 0, [](CallFrame& f) { f.args[0] = Value{10}; });
    EXPECT_EQ(add->invoke_debugger_style(*obj_, {Value{3}}).as_int(), 13);
    EXPECT_THROW(add->invoke_debugger_style(*obj_, {Value{"x"}}), TypeError);
}

TEST_F(RtTest, UnhookedInvokeBypassesHooks) {
    Method* add = obj_->type().method("add");
    add->add_entry_hook(1, 0, [](CallFrame&) { throw AccessDenied("no"); });
    EXPECT_EQ(obj_->call_unhooked("add", {Value{4}}).as_int(), 4);
}

TEST_F(RtTest, FieldReadWriteAndTypeCheck) {
    obj_->set("total", Value{9});
    EXPECT_EQ(obj_->get("total").as_int(), 9);
    EXPECT_THROW(obj_->set("total", Value{"nan"}), TypeError);
    EXPECT_THROW(obj_->get("missing"), TypeError);
}

TEST_F(RtTest, FieldSetHookSeesOldAndAdjustsNew) {
    Field* total = obj_->type().field("total");
    std::int64_t seen_old = -1;
    total->add_set_hook(1, 0,
                        [&](ServiceObject&, const FieldDecl&, const Value& old_v, Value& new_v) {
                            seen_old = old_v.as_int();
                            new_v = Value{new_v.as_int() + 1};  // adjust the write
                        });
    obj_->set("total", Value{10});
    EXPECT_EQ(seen_old, 0);
    EXPECT_EQ(obj_->peek("total").as_int(), 11);
}

TEST_F(RtTest, FieldSetHookCanVeto) {
    Field* total = obj_->type().field("total");
    total->add_set_hook(1, 0,
                        [](ServiceObject&, const FieldDecl&, const Value&, Value& new_v) {
                            if (new_v.as_int() > 100) throw AccessDenied("limit");
                        });
    EXPECT_THROW(obj_->set("total", Value{101}), AccessDenied);
    EXPECT_EQ(obj_->peek("total").as_int(), 0);  // unchanged
    obj_->set("total", Value{50});
    EXPECT_EQ(obj_->peek("total").as_int(), 50);
}

TEST_F(RtTest, FieldGetHookAdjustsView) {
    Field* total = obj_->type().field("total");
    total->add_get_hook(1, 0, [](ServiceObject&, const FieldDecl&, Value& v) {
        v = Value{v.as_int() + 7};
    });
    obj_->poke("total", Value{1});
    EXPECT_EQ(obj_->get("total").as_int(), 8);
    EXPECT_EQ(obj_->peek("total").as_int(), 1);  // raw access unaffected
}

TEST_F(RtTest, PokeBypassesHooks) {
    Field* total = obj_->type().field("total");
    total->add_set_hook(1, 0, [](ServiceObject&, const FieldDecl&, const Value&, Value&) {
        throw AccessDenied("never");
    });
    obj_->poke("total", Value{5});
    EXPECT_EQ(obj_->peek("total").as_int(), 5);
}

TEST_F(RtTest, RuntimeRegistryAndObjects) {
    EXPECT_NE(runtime_.find_type("Calc"), nullptr);
    EXPECT_EQ(runtime_.find_type("Nope"), nullptr);
    EXPECT_THROW(runtime_.register_type(make_calc_type()), TypeError);  // duplicate
    EXPECT_THROW(runtime_.create("Nope", "x"), TypeError);
    EXPECT_THROW(runtime_.create("Calc", "calc:1"), TypeError);  // duplicate name

    auto second = runtime_.create("Calc", "calc:2");
    EXPECT_EQ(runtime_.objects_of("Calc").size(), 2u);
    EXPECT_EQ(runtime_.find_object("calc:2"), second);
    runtime_.destroy("calc:2");
    EXPECT_EQ(runtime_.find_object("calc:2"), nullptr);
}

TEST_F(RtTest, InstancesShareClassLevelHooks) {
    auto other = runtime_.create("Calc", "calc:other");
    obj_->type().method("add")->add_entry_hook(1, 0, [](CallFrame& f) {
        f.args[0] = Value{f.args[0].as_int() + 1};
    });
    EXPECT_EQ(other->call("add", {Value{1}}).as_int(), 2);
}

TEST_F(RtTest, InstancesHaveIndependentFields) {
    auto other = runtime_.create("Calc", "calc:other");
    obj_->set("total", Value{5});
    EXPECT_EQ(other->peek("total").as_int(), 0);
}

TEST_F(RtTest, TypeObserverFiresOnRegistration) {
    std::vector<std::string> seen;
    auto token = runtime_.add_type_observer([&](TypeInfo& t) { seen.push_back(t.name()); });
    runtime_.register_type(TypeInfo::Builder("Late").build());
    EXPECT_EQ(seen, (std::vector<std::string>{"Late"}));
    runtime_.remove_type_observer(token);
    runtime_.register_type(TypeInfo::Builder("Later").build());
    EXPECT_EQ(seen.size(), 1u);
}

TEST_F(RtTest, NativeStateAccess) {
    struct Payload {
        int x = 3;
    };
    obj_->emplace_state<Payload>();
    EXPECT_EQ(obj_->state<Payload>().x, 3);
    auto other = runtime_.create("Calc", "calc:bare");
    EXPECT_THROW(other->state<Payload>(), TypeError);
}

TEST_F(RtTest, InheritanceCopiesMembersDown) {
    auto base = TypeInfo::Builder("Base")
                    .field("shared", TypeKind::kInt, Value{std::int64_t{7}})
                    .method("hello", TypeKind::kStr, {},
                            [](ServiceObject& self, List&) -> Value {
                                return Value{"hello from " + self.name()};
                            })
                    .build();
    runtime_.register_type(base);
    auto derived = TypeInfo::Builder("Derived")
                       .extends(base)
                       .method("extra", TypeKind::kInt, {},
                               [](ServiceObject&, List&) -> Value { return Value{1}; })
                       .build();
    runtime_.register_type(derived);

    auto obj = runtime_.create("Derived", "d1");
    EXPECT_EQ(obj->call("hello", {}).as_str(), "hello from d1");  // inherited
    EXPECT_EQ(obj->call("extra", {}).as_int(), 1);                // own
    EXPECT_EQ(obj->peek("shared").as_int(), 7);                   // inherited field
    EXPECT_TRUE(derived->is_a("Base"));
    EXPECT_TRUE(derived->is_a("Derived"));
    EXPECT_FALSE(base->is_a("Derived"));
    EXPECT_EQ(derived->parent(), base);
}

TEST_F(RtTest, InheritanceOverridesByName) {
    auto base = TypeInfo::Builder("Animal")
                    .method("speak", TypeKind::kStr, {},
                            [](ServiceObject&, List&) -> Value { return Value{"..."}; })
                    .field("legs", TypeKind::kInt, Value{std::int64_t{4}})
                    .build();
    auto bird = TypeInfo::Builder("Bird")
                    .extends(base)
                    .method("speak", TypeKind::kStr, {},
                            [](ServiceObject&, List&) -> Value { return Value{"tweet"}; })
                    .field("legs", TypeKind::kInt, Value{std::int64_t{2}})
                    .build();
    runtime_.register_type(base);
    runtime_.register_type(bird);
    auto obj = runtime_.create("Bird", "b1");
    EXPECT_EQ(obj->call("speak", {}).as_str(), "tweet");
    EXPECT_EQ(obj->peek("legs").as_int(), 2);
    // Exactly one 'speak' method on the subtype.
    int speaks = 0;
    for (Method* m : bird->methods()) {
        if (m->decl().name == "speak") ++speaks;
    }
    EXPECT_EQ(speaks, 1);
}

TEST_F(RtTest, WeavingSubtypeDoesNotLeakToSiblingsOrParent) {
    auto base = TypeInfo::Builder("Shape")
                    .method("area", TypeKind::kInt, {},
                            [](ServiceObject&, List&) -> Value { return Value{0}; })
                    .build();
    auto circle = TypeInfo::Builder("Circle").extends(base).build();
    auto square = TypeInfo::Builder("Square").extends(base).build();
    runtime_.register_type(base);
    runtime_.register_type(circle);
    runtime_.register_type(square);

    // Hook only Circle's copy of area.
    circle->method("area")->add_entry_hook(1, 0, [](CallFrame&) {});
    EXPECT_TRUE(circle->method("area")->woven());
    EXPECT_FALSE(square->method("area")->woven());
    EXPECT_FALSE(base->method("area")->woven());
}

TEST_F(RtTest, SignatureRendering) {
    const MethodDecl& decl = obj_->type().method("add")->decl();
    EXPECT_EQ(decl.signature("Calc"), "int Calc.add(int)");
    const MethodDecl& sum = obj_->type().method("sum")->decl();
    EXPECT_EQ(sum.signature("Calc"), "int Calc.sum(..)");
}

// ----------------------------------------------------- SmallVec (hooks) ----

TEST(SmallVecTest, StaysInlineUpToCapacityThenSpills) {
    SmallVec<int, 2> v;
    EXPECT_TRUE(v.empty());
    v.push_back(1);
    v.push_back(2);
    EXPECT_TRUE(v.inlined());
    EXPECT_EQ(v.size(), 2u);
    v.push_back(3);
    EXPECT_FALSE(v.inlined());
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], 1);
    EXPECT_EQ(v[1], 2);
    EXPECT_EQ(v[2], 3);
}

TEST(SmallVecTest, InsertAtArbitraryPositions) {
    SmallVec<int, 2> v;
    v.insert(v.end(), 30);
    v.insert(v.begin(), 10);           // front, still inline
    v.insert(v.begin() + 1, 20);       // middle, forces spill
    v.insert(v.end(), 40);             // append after spill
    std::vector<int> got(v.begin(), v.end());
    EXPECT_EQ(got, (std::vector<int>{10, 20, 30, 40}));
}

TEST(SmallVecTest, RemoveIfCompactsAndCounts) {
    SmallVec<int, 2> v;
    for (int i = 0; i < 6; ++i) v.push_back(i);
    EXPECT_EQ(v.remove_if([](int x) { return x % 2 == 0; }), 3u);
    std::vector<int> got(v.begin(), v.end());
    EXPECT_EQ(got, (std::vector<int>{1, 3, 5}));
    EXPECT_EQ(v.remove_if([](int) { return false; }), 0u);
}

TEST(SmallVecTest, MoveTransfersInlineAndHeapStates) {
    SmallVec<std::string, 2> inline_v;
    inline_v.push_back("a");
    SmallVec<std::string, 2> moved_inline{std::move(inline_v)};
    ASSERT_EQ(moved_inline.size(), 1u);
    EXPECT_EQ(moved_inline[0], "a");
    EXPECT_TRUE(inline_v.empty());

    SmallVec<std::string, 2> heap_v;
    for (int i = 0; i < 5; ++i) heap_v.push_back(std::to_string(i));
    SmallVec<std::string, 2> moved_heap;
    moved_heap = std::move(heap_v);
    ASSERT_EQ(moved_heap.size(), 5u);
    EXPECT_EQ(moved_heap[4], "4");
    EXPECT_TRUE(heap_v.empty());
    EXPECT_TRUE(heap_v.inlined());
    heap_v.push_back("reuse");  // moved-from container stays usable
    EXPECT_EQ(heap_v[0], "reuse");
}

// Around advice beyond the inline hook capacity must still chain correctly
// (the proceed chain walks the spilled table by index).
TEST_F(RtTest, DeepAroundStackBeyondInlineCapacity) {
    Method* add = obj_->type().method("add");
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        add->add_around_hook(
            static_cast<HookOwner>(100 + i), /*priority=*/i,
            [i, &order](CallFrame&, const std::function<Value()>& proceed) -> Value {
                order.push_back(i);
                Value out = proceed();
                order.push_back(-i);
                return out;
            });
    }
    Value result = add->invoke(*obj_, List{Value{std::int64_t{2}}});
    EXPECT_EQ(result.as_int(), 2);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, -4, -3, -2, -1, 0}));
    for (int i = 0; i < 5; ++i) add->remove_hooks(static_cast<HookOwner>(100 + i));
    EXPECT_FALSE(add->woven());
}

}  // namespace
}  // namespace pmp::rt
