// Tests for the signed extension package format.
#include <gtest/gtest.h>

#include "common/error.h"
#include "midas/package.h"

namespace pmp::midas {
namespace {

using rt::Dict;
using rt::Value;

ExtensionPackage sample() {
    ExtensionPackage pkg;
    pkg.name = "hall-a/monitoring";
    pkg.version = 3;
    pkg.script = "fun onEntry() { }\nfun onShutdown(r) { }";
    pkg.bindings = {
        PackageBinding{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0},
        PackageBinding{prose::AdviceKind::kFieldSet, "fieldset(Motor.position)", "onSet", 5},
    };
    pkg.config = Value{Dict{{"limit", Value{90}}, {"owner", Value{"hall-a"}}}};
    pkg.capabilities = {"net", "log"};
    pkg.implies = {"hall-a/session"};
    return pkg;
}

crypto::KeyStore keys_with(const std::string& issuer) {
    crypto::KeyStore keys;
    keys.add_key(issuer, to_bytes("key-of-" + issuer));
    return keys;
}

TEST(Package, SealOpenRoundTrip) {
    ExtensionPackage pkg = sample();
    crypto::KeyStore keys = keys_with("hall-a");
    Bytes sealed = pkg.seal(keys, "hall-a");

    auto [opened, sig] = ExtensionPackage::open(std::span<const std::uint8_t>(sealed));
    EXPECT_EQ(opened.name, pkg.name);
    EXPECT_EQ(opened.version, pkg.version);
    EXPECT_EQ(opened.script, pkg.script);
    ASSERT_EQ(opened.bindings.size(), 2u);
    EXPECT_EQ(opened.bindings[0].kind, prose::AdviceKind::kBefore);
    EXPECT_EQ(opened.bindings[0].pointcut, "call(* Motor.*(..))");
    EXPECT_EQ(opened.bindings[1].function, "onSet");
    EXPECT_EQ(opened.bindings[1].priority, 5);
    EXPECT_EQ(opened.config, pkg.config);
    EXPECT_EQ(opened.capabilities, pkg.capabilities);
    EXPECT_EQ(opened.implies, pkg.implies);
    EXPECT_EQ(sig.issuer, "hall-a");
}

TEST(Package, SignatureVerifiesAfterRoundTrip) {
    ExtensionPackage pkg = sample();
    crypto::KeyStore keys = keys_with("hall-a");
    Bytes sealed = pkg.seal(keys, "hall-a");

    crypto::TrustStore trust;
    trust.trust("hall-a", to_bytes("key-of-hall-a"));
    auto [opened, sig] = ExtensionPackage::open(std::span<const std::uint8_t>(sealed));
    Bytes payload = opened.signed_payload();
    EXPECT_NO_THROW(trust.verify(std::span<const std::uint8_t>(payload), sig));
}

TEST(Package, TamperedScriptFailsVerification) {
    ExtensionPackage pkg = sample();
    crypto::KeyStore keys = keys_with("hall-a");
    Bytes sealed = pkg.seal(keys, "hall-a");

    // Flip one byte inside the payload region (skip the length prefix).
    sealed[20] ^= 0x01;

    crypto::TrustStore trust;
    trust.trust("hall-a", to_bytes("key-of-hall-a"));
    bool rejected = false;
    try {
        auto [opened, sig] = ExtensionPackage::open(std::span<const std::uint8_t>(sealed));
        Bytes payload = opened.signed_payload();
        trust.verify(std::span<const std::uint8_t>(payload), sig);
    } catch (const Error&) {
        rejected = true;  // either parse failure or MAC mismatch is fine
    }
    EXPECT_TRUE(rejected);
}

TEST(Package, CanonicalPayloadIsStable) {
    // Same logical package built twice gives identical signed payloads,
    // which is what makes the MAC meaningful.
    EXPECT_EQ(sample().signed_payload(), sample().signed_payload());
}

TEST(Package, DifferentVersionsDiffer) {
    ExtensionPackage a = sample();
    ExtensionPackage b = sample();
    b.version = 4;
    EXPECT_NE(a.signed_payload(), b.signed_payload());
}

TEST(Package, TruncatedSealedDataThrows) {
    ExtensionPackage pkg = sample();
    crypto::KeyStore keys = keys_with("hall-a");
    Bytes sealed = pkg.seal(keys, "hall-a");
    sealed.resize(sealed.size() / 2);
    EXPECT_THROW(ExtensionPackage::open(std::span<const std::uint8_t>(sealed)), ParseError);
}

TEST(Package, BadAdviceKindCodeRejected) {
    // Craft a payload with an out-of-range advice kind.
    ExtensionPackage pkg = sample();
    pkg.bindings.clear();
    Bytes payload = pkg.signed_payload();
    Value v = Value::decode(std::span<const std::uint8_t>(payload));
    Dict d = v.as_dict();
    rt::List bad_binding{Value{Dict{{"kind", Value{99}},
                                    {"pointcut", Value{"call(* A.b())"}},
                                    {"function", Value{"f"}},
                                    {"priority", Value{0}}}}};
    d.set("bindings", Value{std::move(bad_binding)});

    crypto::KeyStore keys = keys_with("x");
    Bytes raw = Value{std::move(d)}.encode();
    crypto::Signature sig = keys.sign("x", std::span<const std::uint8_t>(raw));
    Bytes sealed;
    append_u32(sealed, static_cast<std::uint32_t>(raw.size()));
    append(sealed, std::span<const std::uint8_t>(raw));
    append(sealed, std::span<const std::uint8_t>(sig.encode()));

    EXPECT_THROW(ExtensionPackage::open(std::span<const std::uint8_t>(sealed)), ParseError);
}

TEST(Package, WireSizeTracksScriptSize) {
    ExtensionPackage small = sample();
    ExtensionPackage big = sample();
    big.script = std::string(10'000, 'x');
    EXPECT_GT(big.wire_size(), small.wire_size() + 9'000);
}

}  // namespace
}  // namespace pmp::midas
