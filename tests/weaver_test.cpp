// Tests for the run-time weaver: matching, firing, withdrawal restoring the
// baseline, weaving into late-registered classes, and shutdown notification.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/weaver.h"

namespace pmp::prose {
namespace {

using rt::CallFrame;
using rt::List;
using rt::ServiceObject;
using rt::TypeKind;
using rt::Value;

std::shared_ptr<rt::TypeInfo> motor_type() {
    return rt::TypeInfo::Builder("Motor")
        .field("position", TypeKind::kReal, Value{0.0})
        .method("rotate", TypeKind::kInt, {{"degrees", TypeKind::kReal}},
                [](ServiceObject& self, List& args) -> Value {
                    self.set("position",
                             Value{self.peek("position").as_real() + args[0].as_real()});
                    return Value{std::int64_t{10}};
                })
        .method("stop", TypeKind::kVoid, {},
                [](ServiceObject&, List&) -> Value { return Value{}; })
        .build();
}

std::shared_ptr<rt::TypeInfo> sensor_type() {
    return rt::TypeInfo::Builder("Sensor")
        .method("read", TypeKind::kInt, {},
                [](ServiceObject&, List&) -> Value { return Value{7}; })
        .build();
}

class WeaverTest : public ::testing::Test {
protected:
    WeaverTest() : runtime_("node"), weaver_(runtime_) {
        runtime_.register_type(motor_type());
        runtime_.register_type(sensor_type());
        motor_ = runtime_.create("Motor", "motor:x");
        sensor_ = runtime_.create("Sensor", "sensor:t");
    }

    rt::Runtime runtime_;
    Weaver weaver_;
    std::shared_ptr<ServiceObject> motor_, sensor_;
};

TEST_F(WeaverTest, BeforeAdviceFiresOnMatchedMethodsOnly) {
    int fired = 0;
    auto aspect = std::make_shared<Aspect>("count-motor");
    aspect->before("call(* Motor.*(..))", [&](CallFrame&) { ++fired; });
    weaver_.weave(aspect);

    motor_->call("rotate", {Value{30.0}});
    motor_->call("stop", {});
    sensor_->call("read", {});
    EXPECT_EQ(fired, 2);
}

TEST_F(WeaverTest, WeaveReportCountsJoinPoints) {
    auto aspect = std::make_shared<Aspect>("a");
    aspect->before("call(* Motor.*(..))", [](CallFrame&) {});
    aspect->on_field_set("fieldset(Motor.position)",
                         [](ServiceObject&, const rt::FieldDecl&, const Value&, Value&) {});
    AspectId id = weaver_.weave(aspect);
    const WeaveReport* report = weaver_.report(id);
    ASSERT_NE(report, nullptr);
    EXPECT_EQ(report->methods_matched, 2u);  // rotate + stop
    EXPECT_EQ(report->fields_matched, 1u);
}

TEST_F(WeaverTest, WithdrawRestoresBaseline) {
    auto aspect = std::make_shared<Aspect>("boost");
    aspect->before("call(* Motor.rotate(..))",
                   [](CallFrame& f) { f.args[0] = Value{f.args[0].as_real() * 2}; });
    AspectId id = weaver_.weave(aspect);
    motor_->call("rotate", {Value{10.0}});
    EXPECT_DOUBLE_EQ(motor_->peek("position").as_real(), 20.0);

    EXPECT_TRUE(weaver_.withdraw(id));
    motor_->call("rotate", {Value{10.0}});
    EXPECT_DOUBLE_EQ(motor_->peek("position").as_real(), 30.0);
    EXPECT_FALSE(motor_->type().method("rotate")->woven());
    EXPECT_FALSE(weaver_.withdraw(id));  // already gone
}

TEST_F(WeaverTest, WeaveWithdrawIsIdempotentOnDispatchState) {
    // Property: weaving then withdrawing N times leaves dispatch unwoven.
    for (int round = 0; round < 5; ++round) {
        auto aspect = std::make_shared<Aspect>("tmp");
        aspect->before("call(* Motor.*(..))", [](CallFrame&) {});
        AspectId id = weaver_.weave(aspect);
        EXPECT_TRUE(motor_->type().method("rotate")->woven());
        weaver_.withdraw(id);
        EXPECT_FALSE(motor_->type().method("rotate")->woven());
        EXPECT_FALSE(motor_->type().method("stop")->woven());
    }
}

TEST_F(WeaverTest, LateRegisteredTypeGetsWoven) {
    int fired = 0;
    auto aspect = std::make_shared<Aspect>("all-rotate");
    aspect->before("call(* *.rotate(..))", [&](CallFrame&) { ++fired; });
    AspectId id = weaver_.weave(aspect);

    // A class that appears after weaving (the JIT "class loaded later" case).
    runtime_.register_type(
        rt::TypeInfo::Builder("Wheel")
            .method("rotate", TypeKind::kVoid, {{"deg", TypeKind::kReal}},
                    [](ServiceObject&, List&) -> Value { return Value{}; })
            .build());
    auto wheel = runtime_.create("Wheel", "wheel:1");
    wheel->call("rotate", {Value{5.0}});
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(weaver_.report(id)->methods_matched, 2u);  // Motor.rotate + Wheel.rotate
}

TEST_F(WeaverTest, FieldAdviceFiresThroughWeaver) {
    std::vector<double> observed;
    auto aspect = std::make_shared<Aspect>("qc");
    aspect->on_field_set("fieldset(Motor.position)",
                         [&](ServiceObject&, const rt::FieldDecl&, const Value&,
                             Value& new_v) { observed.push_back(new_v.as_real()); });
    weaver_.weave(aspect);
    motor_->call("rotate", {Value{15.0}});
    motor_->call("rotate", {Value{5.0}});
    EXPECT_EQ(observed, (std::vector<double>{15.0, 20.0}));
}

TEST_F(WeaverTest, MultipleAspectsCoexistAndWithdrawIndependently) {
    std::vector<std::string> order;
    auto first = std::make_shared<Aspect>("first");
    first->before("call(* Motor.rotate(..))", [&](CallFrame&) { order.push_back("first"); },
                  /*priority=*/0);
    auto second = std::make_shared<Aspect>("second");
    second->before("call(* Motor.rotate(..))", [&](CallFrame&) { order.push_back("second"); },
                   /*priority=*/-1);

    AspectId id1 = weaver_.weave(first);
    weaver_.weave(second);
    motor_->call("rotate", {Value{1.0}});
    EXPECT_EQ(order, (std::vector<std::string>{"second", "first"}));  // priority order

    order.clear();
    weaver_.withdraw(id1);
    motor_->call("rotate", {Value{1.0}});
    EXPECT_EQ(order, (std::vector<std::string>{"second"}));
}

TEST_F(WeaverTest, AroundAdviceThroughWeaver) {
    auto aspect = std::make_shared<Aspect>("limiter");
    aspect->around("call(* Motor.rotate(..))",
                   [](CallFrame& f, const std::function<Value()>& proceed) -> Value {
                       if (f.args[0].as_real() > 90.0) {
                           throw AccessDenied("rotation too large");
                       }
                       return proceed();
                   });
    weaver_.weave(aspect);
    EXPECT_NO_THROW(motor_->call("rotate", {Value{45.0}}));
    EXPECT_THROW(motor_->call("rotate", {Value{120.0}}), AccessDenied);
    EXPECT_DOUBLE_EQ(motor_->peek("position").as_real(), 45.0);
}

TEST_F(WeaverTest, AfterThrowingAdvice) {
    runtime_.register_type(
        rt::TypeInfo::Builder("Flaky")
            .method("boom", TypeKind::kVoid, {},
                    [](ServiceObject&, List&) -> Value { throw Error("kaput"); })
            .build());
    auto flaky = runtime_.create("Flaky", "flaky");

    std::string caught;
    auto aspect = std::make_shared<Aspect>("watcher");
    aspect->after_throwing("call(* Flaky.*(..))",
                           [&](CallFrame&, std::exception_ptr e) {
                               try {
                                   std::rethrow_exception(e);
                               } catch (const Error& err) {
                                   caught = err.what();
                               }
                           });
    weaver_.weave(aspect);
    EXPECT_THROW(flaky->call("boom", {}), Error);
    EXPECT_EQ(caught, "kaput");
}

TEST_F(WeaverTest, WithdrawNotifiesShutdownWithReason) {
    WithdrawReason seen{};
    bool notified = false;
    auto aspect = std::make_shared<Aspect>("with-shutdown");
    aspect->before("call(* Motor.*(..))", [](CallFrame&) {});
    aspect->on_withdraw([&](WithdrawReason reason) {
        notified = true;
        seen = reason;
    });
    AspectId id = weaver_.weave(aspect);
    weaver_.withdraw(id, WithdrawReason::kLeaseExpired);
    EXPECT_TRUE(notified);
    EXPECT_EQ(seen, WithdrawReason::kLeaseExpired);
}

TEST_F(WeaverTest, DestructorWithdrawsEverything) {
    int shutdowns = 0;
    {
        Weaver scoped(runtime_);
        for (int i = 0; i < 3; ++i) {
            auto aspect = std::make_shared<Aspect>("a" + std::to_string(i));
            aspect->before("call(* Motor.*(..))", [](CallFrame&) {});
            aspect->on_withdraw([&](WithdrawReason) { ++shutdowns; });
            scoped.weave(aspect);
        }
        EXPECT_TRUE(motor_->type().method("rotate")->woven());
    }
    EXPECT_EQ(shutdowns, 3);
    EXPECT_FALSE(motor_->type().method("rotate")->woven());
}

TEST_F(WeaverTest, FindAndCount) {
    auto aspect = std::make_shared<Aspect>("named");
    aspect->before("call(* Motor.*(..))", [](CallFrame&) {});
    AspectId id = weaver_.weave(aspect);
    EXPECT_EQ(weaver_.woven_count(), 1u);
    ASSERT_NE(weaver_.find(id), nullptr);
    EXPECT_EQ(weaver_.find(id)->name(), "named");
    EXPECT_EQ(weaver_.find(AspectId{999}), nullptr);
}

TEST_F(WeaverTest, BadPointcutThrowsAtConstruction) {
    auto aspect = std::make_shared<Aspect>("bad");
    EXPECT_THROW(aspect->before("call(", [](CallFrame&) {}), ParseError);
}

TEST_F(WeaverTest, MatchPlanCachesPointcutMatchesAcrossWeaves) {
    auto make = [] {
        auto aspect = std::make_shared<Aspect>("cached");
        aspect->before("call(* Motor.*(..))", [](CallFrame&) {});
        return aspect;
    };
    AspectId first = weaver_.weave(make());
    std::size_t entries_after_first = weaver_.plan().cached_entries();
    EXPECT_GT(entries_after_first, 0u);

    // Same pointcut, new aspect: the plan serves the cached member lists —
    // no new entries, identical report.
    AspectId second = weaver_.weave(make());
    EXPECT_EQ(weaver_.plan().cached_entries(), entries_after_first);
    EXPECT_EQ(weaver_.report(first)->methods_matched,
              weaver_.report(second)->methods_matched);
    weaver_.withdraw(first);
    weaver_.withdraw(second);
}

TEST_F(WeaverTest, HundredAspectsWeaveIdenticallyAndWithdrawCleanly) {
    // Acceptance sweep for the MatchPlan refactor: 100 aspects with the
    // same bindings must produce identical WeaveReports (the plan must not
    // change what matches), and withdrawing all of them must restore
    // pristine dispatch.
    std::vector<AspectId> ids;
    for (int i = 0; i < 100; ++i) {
        auto aspect = std::make_shared<Aspect>("a" + std::to_string(i));
        aspect->before("call(* Motor.*(..))", [](CallFrame&) {});
        aspect->around("call(int Sensor.read())",
                       [](CallFrame&, const std::function<Value()>& proceed) -> Value {
                           return proceed();
                       });
        aspect->on_field_set("fieldset(Motor.position)",
                             [](ServiceObject&, const rt::FieldDecl&, const Value&,
                                Value&) {});
        ids.push_back(weaver_.weave(aspect));
    }
    const WeaveReport* first = weaver_.report(ids.front());
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->methods_matched, 3u);  // Motor.rotate, Motor.stop, Sensor.read
    EXPECT_EQ(first->fields_matched, 1u);
    for (AspectId id : ids) {
        const WeaveReport* r = weaver_.report(id);
        ASSERT_NE(r, nullptr);
        EXPECT_EQ(r->methods_matched, first->methods_matched);
        EXPECT_EQ(r->fields_matched, first->fields_matched);
    }
    for (AspectId id : ids) EXPECT_TRUE(weaver_.withdraw(id));
    EXPECT_FALSE(motor_->type().method("rotate")->woven());
    EXPECT_FALSE(sensor_->type().method("read")->woven());
    EXPECT_EQ(weaver_.woven_count(), 0u);
}

}  // namespace
}  // namespace pmp::prose
