// Tests for the AdviceScript bytecode compiler: slot allocation, builtin
// interning, static fault lowering, and the disassembler.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "script/compile.h"
#include "script/parser.h"

namespace pmp::script {
namespace {

std::shared_ptr<const CompiledUnit> comp(const std::string& source) {
    return compile(std::make_shared<const Program>(parse(source)));
}

int count_ops(const Chunk& c, Op op) {
    return static_cast<int>(
        std::count_if(c.code.begin(), c.code.end(),
                      [op](const Insn& i) { return i.op == op; }));
}

TEST(Compile, FunctionTable) {
    auto unit = comp("fun a() { } fun b(x) { return x; }");
    ASSERT_EQ(unit->functions.size(), 2u);
    EXPECT_NE(unit->find_function("a"), nullptr);
    ASSERT_NE(unit->find_function("b"), nullptr);
    EXPECT_EQ(unit->find_function("b")->n_params, 1);
    EXPECT_EQ(unit->find_function("nope"), nullptr);
}

TEST(Compile, DuplicateFunctionFirstWins) {
    // Program::find_function returns the first match; the compiled table
    // must preserve that.
    auto unit = comp("fun f() { return 1; } fun f() { return 2; }");
    const Chunk* f = unit->find_function("f");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f, &unit->functions[0]);
}

TEST(Compile, ParamsOccupyLeadingSlots) {
    auto unit = comp("fun f(a, b, c) { let d = a; return d; }");
    const Chunk* f = unit->find_function("f");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->n_params, 3);
    EXPECT_GE(f->n_slots, 4);  // 3 params + d
}

TEST(Compile, SiblingBlocksReuseSlots) {
    // Two sibling blocks each declaring 3 locals need 3 slots, not 6.
    auto unit = comp(R"(
        fun f() {
            if (true) { let a = 1; let b = 2; let c = 3; }
            if (true) { let x = 1; let y = 2; let z = 3; }
        }
    )");
    EXPECT_EQ(unit->find_function("f")->n_slots, 3);
}

TEST(Compile, NestedBlocksStackSlots) {
    auto unit = comp(R"(
        fun f() {
            let a = 1;
            if (true) { let b = 2; if (true) { let c = 3; } }
        }
    )");
    EXPECT_EQ(unit->find_function("f")->n_slots, 3);
}

TEST(Compile, TopLevelLetIsGlobal) {
    auto unit = comp("let g = 1; if (true) { let local = 2; }");
    EXPECT_GE(count_ops(unit->top_level, Op::kLetGlobal), 1);
    // The nested let is a local slot, not a global.
    EXPECT_GE(unit->top_level.n_slots, 1);
}

TEST(Compile, LocalsNeverTouchGlobalOps) {
    auto unit = comp("fun f(x) { let y = x + 1; y = y * 2; return y; }");
    const Chunk* f = unit->find_function("f");
    EXPECT_EQ(count_ops(*f, Op::kLoadGlobal), 0);
    EXPECT_EQ(count_ops(*f, Op::kStoreGlobal), 0);
    EXPECT_GT(count_ops(*f, Op::kLoadLocal), 0);
    EXPECT_GT(count_ops(*f, Op::kStoreLocal), 0);
}

TEST(Compile, BuiltinCalleesInternedOnce) {
    // Three call sites of `len`, one of `push`: two distinct entries.
    auto unit = comp(R"(
        fun f(xs) { push(xs, len(xs)); return len(xs) + len(xs); }
    )");
    EXPECT_EQ(unit->builtin_names.size(), 2u);
    const Chunk* f = unit->find_function("f");
    EXPECT_EQ(count_ops(*f, Op::kCallBuiltin), 4);
}

TEST(Compile, UserCallsResolveToFunctionIndex) {
    auto unit = comp("fun g() { return 1; } fun f() { return g(); }");
    const Chunk* f = unit->find_function("f");
    EXPECT_EQ(count_ops(*f, Op::kCallFn), 1);
    EXPECT_EQ(count_ops(*f, Op::kCallBuiltin), 0);
    EXPECT_TRUE(unit->builtin_names.empty());
}

TEST(Compile, StaticFaultsLowerToFail) {
    // None of these throw at compile time — the fault is an instruction
    // that fires only if reached, preserving interpreter semantics.
    EXPECT_GE(count_ops(comp("fun f() { break; }")->functions[0], Op::kFail), 1);
    EXPECT_GE(count_ops(comp("fun f() { continue; }")->functions[0], Op::kFail), 1);
    EXPECT_GE(count_ops(comp("return 1;")->top_level, Op::kFail), 1);
    EXPECT_GE(count_ops(comp("fun g(a, b) { } fun f() { g(1); }")->functions[1],
                        Op::kFail),
              1);
}

TEST(Compile, EveryStatementAndExpressionTicks) {
    auto unit = comp("fun f() { let x = 1 + 2; return x; }");
    const Chunk* f = unit->find_function("f");
    // let stmt, binary expr, two literals, return stmt, var read = 6 ticks.
    EXPECT_EQ(count_ops(*f, Op::kTick), 6);
}

TEST(Compile, ConstantsInterned) {
    auto unit = comp("fun f() { return 1 + 1 + 1 + \"x\" + \"x\"; }");
    // 1 and "x" each appear once in the pool.
    EXPECT_EQ(unit->constants.size(), 2u);
}

TEST(Compile, JumpTargetsInBounds) {
    auto unit = comp(R"(
        fun f(n) {
            let t = 0;
            for (i in range(0, n)) {
                if (i % 2 == 0) { continue; }
                if (i > 5) { break; }
                t = t + i;
            }
            while (t > 100) { t = t - 1; }
            return t;
        }
    )");
    for (const Chunk* c : {&unit->top_level, unit->find_function("f")}) {
        for (const Insn& i : c->code) {
            switch (i.op) {
                case Op::kJump:
                case Op::kJumpIfFalse:
                case Op::kAndShort:
                case Op::kOrShort:
                case Op::kForNext:
                    EXPECT_GE(i.a, 0);
                    EXPECT_LE(static_cast<std::size_t>(i.a), c->code.size());
                    break;
                default:
                    break;
            }
        }
    }
}

TEST(Compile, DisassembleListsEveryChunk) {
    auto unit = comp("fun hello(who) { return \"hi \" + who; } let z = hello(\"x\");");
    std::string listing = disassemble(*unit);
    EXPECT_NE(listing.find("hello"), std::string::npos);
    EXPECT_NE(listing.find(op_name(Op::kCallFn)), std::string::npos);
    EXPECT_NE(listing.find(op_name(Op::kLetGlobal)), std::string::npos);
}

TEST(Compile, UnitRetainsProgram) {
    auto program = std::make_shared<const Program>(parse("fun f() { }"));
    auto unit = compile(program);
    EXPECT_EQ(unit->program.get(), program.get());
}

}  // namespace
}  // namespace pmp::script
