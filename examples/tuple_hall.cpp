// Extension distribution through a tuple space (paper §4.6 future work).
//
// The hall does not push anything: it *publishes* its policy into a tuple
// space as leased tuples and walks away. Devices read the space — polling,
// or via a notify subscription — and adapt themselves from what they find.
// Provider and consumer never address each other; when the authority stops
// republishing, the policy evaporates everywhere on its own.
#include <cstdio>

#include "midas/node.h"
#include "robot/devices.h"
#include "tspace/remote.h"

using namespace pmp;
using midas::BaseConfig;
using midas::BaseStation;
using midas::ExtensionPackage;
using midas::MobileNode;
using rt::Value;

int main() {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 46);

    // The hall node hosts registrar + tuple space. Its ExtensionBase is
    // idle: distribution happens through the space alone.
    BaseConfig bc;
    bc.issuer = "hall";
    BaseStation hall(net, "hall", {0, 0}, 150.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));
    tspace::TupleSpace space(sim);
    tspace::TupleSpaceHost host(hall.rpc(), hall.registrar(), space);
    tspace::TupleSpacePublisher publisher(sim, space, hall.keys(), "hall",
                                          /*ttl=*/seconds(3));

    // Two devices with different consumption styles.
    MobileNode poller(net, "pda:poll", {10, 0}, 150.0);
    MobileNode subscriber(net, "pda:notify", {-10, 0}, 150.0);
    for (MobileNode* node : {&poller, &subscriber}) {
        node->trust().trust("hall", to_bytes("k"));
        node->receiver().allow_capabilities("hall", {"log"});
        robot::make_motor(node->runtime(), "motor:" + node->label());
    }
    tspace::TupleSpacePuller pull(poller.discovery(), poller.receiver(), seconds(1),
                                  tspace::TupleSpacePuller::Mode::kPoll);
    tspace::TupleSpacePuller push(subscriber.discovery(), subscriber.receiver(),
                                  seconds(1), tspace::TupleSpacePuller::Mode::kNotify);

    auto status = [&](const char* when) {
        printf("[%6.2fs] %-28s space=%zu tuple(s)  pda:poll=%zu ext  pda:notify=%zu ext\n",
               sim.now().seconds_since_zero(), when, space.size(),
               poller.receiver().installed_count(),
               subscriber.receiver().installed_count());
    };

    sim.run_for(seconds(3));
    status("before publication:");

    printf("\nhall publishes its logging policy into the space...\n");
    ExtensionPackage pkg;
    pkg.name = "hall/log-motors";
    pkg.script = R"(
        fun onEntry() { log.info("motor action: ", ctx.method()); }
    )";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    pkg.capabilities = {"log"};
    publisher.publish(pkg);

    sim.run_for(milliseconds(300));
    status("0.3s after publish:");  // the subscriber already has it
    sim.run_for(seconds(2));
    status("2.3s after publish:");  // the poller caught up on its period

    printf("\nhall retracts the policy and stops republishing...\n");
    publisher.retract("hall/log-motors");
    sim.run_for(seconds(10));
    status("after retraction:");

    printf("\nnobody ever sent anything *to* a device: the policy lived in the\n"
           "space, leased, and the devices helped themselves — the decoupling\n"
           "the paper wanted from tuple spaces.\n");
    return 0;
}
