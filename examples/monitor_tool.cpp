// The Fig 6 monitoring tool (paper §4.5).
//
// A client connects to the base station — itself exported as a service —
// and queries the database of all movements performed by robots monitored
// in the hall: the action list on the left of Fig 6. It then selects a
// range and *replays* it onto the robot at the right relative time (the
// paper's simulation application), here at double speed.
#include <cstdio>

#include "midas/node.h"
#include "obs/export.h"
#include "robot/devices.h"

using namespace pmp;
using midas::BaseConfig;
using midas::BaseStation;
using midas::ExtensionPackage;
using midas::MobileNode;
using rt::Dict;
using rt::List;
using rt::Value;

int main() {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 66);

    BaseConfig bc;
    bc.issuer = "hall";
    // Demo-speed canary ladder for the rollout section below.
    bc.rollout.stages = {0.5, 1.0};
    bc.rollout.stage_window = seconds(1);
    bc.rollout.tick_period = milliseconds(200);
    BaseStation hall(net, "hall", {0, 0}, 200.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));

    // The monitoring extension (Fig 5 shape) that feeds the database.
    ExtensionPackage monitoring;
    monitoring.name = "hall/monitoring";
    monitoring.script = R"(
        fun onEntry() {
            owner.post("collector", "post",
                       [sys.node(), {"device": ctx.target(), "action": ctx.method(),
                                     "args": ctx.args(), "at_ms": sys.now_ms()}]);
        }
    )";
    monitoring.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.rotate(..))",
                            "onEntry", 0}};
    monitoring.capabilities = {"net"};
    hall.base().add_extension(monitoring);

    MobileNode robot(net, "robot:1:1", {10, 0}, 200.0);
    robot.trust().trust("hall", to_bytes("k"));
    robot.receiver().allow_capabilities("hall", {"net"});
    auto motor = robot::make_motor(robot.runtime(), "motor:arm");
    robot.rpc().export_object("motor:arm");

    sim.run_for(seconds(3));  // adaptation

    // The robot does a shift of work; every movement lands in the DB.
    printf("robot performs a work sequence (monitored by the hall)...\n");
    const double moves[] = {90, -45, 30, 180, -90, 15, -15, 60};
    for (double deg : moves) {
        motor->call("rotate", {Value{deg}});
        sim.run_for(milliseconds(750));
    }
    sim.run_for(seconds(2));

    // --- the tool: a client node connecting to the base station ---
    midas::NodeStack operator_node(net, "operator", {5, 5}, 200.0);

    printf("\n[monitor] robots known to this base station:\n");
    Value sources = operator_node.rpc().call_sync(hall.id(), "collector", "sources", {});
    for (const Value& s : sources.as_list()) {
        printf("  %s\n", s.as_str().c_str());
    }

    printf("\n[monitor] all motor actions of robot:1:1 (Fig 6, left panel):\n");
    Value actions = operator_node.rpc().call_sync(
        hall.id(), "collector", "query",
        {Value{"robot:1:1"}, Value{-1}, Value{-1}});
    printf("  %-5s %-10s %-10s %-8s %s\n", "seq", "device", "action", "at", "args");
    for (const Value& v : actions.as_list()) {
        const Dict& rec = v.as_dict();
        const Dict& data = rec.at("data").as_dict();
        printf("  %-5lld %-10s %-10s %6.2fs  %s\n",
               static_cast<long long>(rec.at("seq").as_int()),
               data.at("device").as_str().c_str(), data.at("action").as_str().c_str(),
               static_cast<double>(rec.at("at_ms").as_int()) / 1000.0,
               data.at("args").to_string().c_str());
    }

    // Select the middle of the sequence (Fig 6, right panel) and replay it
    // onto the robot at 2x speed, preserving relative timing.
    printf("\n[monitor] replaying actions 3-6 onto the robot at 2x speed:\n");
    double before = motor->peek("position").as_real();
    const List& all = actions.as_list();
    std::int64_t prev_ms = -1;
    for (std::size_t i = 2; i < 6 && i < all.size(); ++i) {
        const Dict& rec = all[i].as_dict();
        const Dict& data = rec.at("data").as_dict();
        std::int64_t at_ms = rec.at("at_ms").as_int();
        if (prev_ms >= 0) {
            sim.run_for(milliseconds((at_ms - prev_ms) / 2));  // time scale 0.5
        }
        prev_ms = at_ms;
        Value result = operator_node.rpc().call_sync(
            robot.id(), "motor:arm", "rotate", data.at("args").as_list());
        printf("  [%6.2fs] replayed rotate%s\n", sim.now().seconds_since_zero(),
               data.at("args").to_string().c_str());
        (void)result;
    }
    printf("\nrobot position before replay: %.0f, after: %.0f\n", before,
           motor->peek("position").as_real());
    printf("(replayed movements were themselves monitored: the DB now holds %zu "
           "records)\n",
           hall.store().size());

    // --- staged rollout: ship monitoring v2 through the canary ladder
    // (docs/rollout.md) and watch stage, cohort and health verdicts from
    // the operator's seat — the dashboard panel an ops team would keep
    // next to the Fig 6 action list.
    printf("\n[monitor] staged rollout of hall/monitoring v2 (live status):\n");
    ExtensionPackage monitoring_v2 = monitoring;
    hall.base().begin_rollout(monitoring_v2);
    const midas::RolloutController& rollouts = hall.base().rollout();
    for (int i = 0; i < 30 && rollouts.active("hall/monitoring"); ++i) {
        printf("  [%6.2fs] %s\n", sim.now().seconds_since_zero(),
               rollouts.status_value().to_string().c_str());
        sim.run_for(milliseconds(500));
    }
    printf("  [%6.2fs] %s\n", sim.now().seconds_since_zero(),
           rollouts.status_value().to_string().c_str());

    // --- the platform watching itself: the tool also pulls the live obs
    // snapshot — weaving activity, radio traffic, lease churn — exactly what
    // a dashboard next to the Fig 6 action list would chart.
    sim.run_for(seconds(10));  // let a few keep-alive rounds land

    obs::Snapshot snap = obs::snapshot_metrics();
    printf("\n[monitor] live platform metrics (JSON snapshot):\n%s\n",
           obs::to_json(snap).c_str());

    const auto trace = obs::TraceBuffer::global().events();
    printf("\n[monitor] last platform trace events (%zu retained, %llu recorded):\n",
           trace.size(),
           static_cast<unsigned long long>(obs::TraceBuffer::global().recorded()));
    std::size_t start = trace.size() > 10 ? trace.size() - 10 : 0;
    for (std::size_t i = start; i < trace.size(); ++i) {
        const obs::TraceEvent& ev = trace[i];
        printf("  [%7.3fs] %-10s %-16s %s\n", ev.at.seconds_since_zero(),
               obs::event_kind_name(ev.kind), ev.component.c_str(), ev.name.c_str());
    }
    return 0;
}
