// Quickstart: dynamic AOP in a dozen lines.
//
// Builds a service class, weaves the paper's example aspect —
//   "before methods-with-signature 'void *.send*(byte[] x, ..)'
//    do encrypt(x)"
// — into the *running* program, calls the service, and withdraws the
// aspect again. No restart, no recompilation of the service, and the
// service code itself knows nothing about encryption.
#include <cstdio>

#include "core/weaver.h"

using namespace pmp;
using rt::List;
using rt::TypeKind;
using rt::Value;

int main() {
    // 1. A node's runtime with one ordinary service class.
    rt::Runtime runtime("quickstart-node");
    runtime.register_type(
        rt::TypeInfo::Builder("Mailer")
            .method("sendMessage", TypeKind::kVoid,
                    {{"payload", TypeKind::kBlob}, {"to", TypeKind::kStr}},
                    [](rt::ServiceObject&, List& args) -> Value {
                        printf("  Mailer.sendMessage -> %s: %s\n",
                               args[1].as_str().c_str(),
                               hex_encode(std::span<const std::uint8_t>(args[0].as_blob()))
                                   .c_str());
                        return Value{};
                    })
            .build());
    auto mailer = runtime.create("Mailer", "mailer");

    List hello{Value{to_bytes("hello")}, Value{"alice"}};

    printf("before weaving (payload goes out in the clear):\n");
    mailer->call("sendMessage", hello);

    // 2. The extension: encrypt the byte[] argument of every send* method.
    //    The pointcut is the paper's example, the action a toy XOR cipher.
    prose::Weaver weaver(runtime);
    auto encryption = std::make_shared<prose::Aspect>("encryption");
    encryption->before("call(void *.send*(blob, ..))", [](rt::CallFrame& frame) {
        Bytes encrypted = frame.args[0].as_blob();
        for (auto& byte : encrypted) byte ^= 0x42;
        frame.args[0] = Value{std::move(encrypted)};
    });
    AspectId id = weaver.weave(encryption);

    printf("after weaving (same call, payload now encrypted in flight):\n");
    mailer->call("sendMessage", hello);

    // 3. Leave the "location": the extension is withdrawn, behaviour reverts.
    weaver.withdraw(id);
    printf("after withdrawal (back to the original behaviour):\n");
    mailer->call("sendMessage", hello);

    printf("\nThat is the whole idea: functionality arrives and leaves at run\n"
           "time; the application never changes. See production_hall for the\n"
           "distributed version where a base station does the weaving.\n");
    return 0;
}
