// Symmetric / ad-hoc mode (paper §2.1, §3.2): "if a mobile device is
// capable of receiving extensions, it should also be able to provide
// extensions to other nodes."
//
// Three PDAs meet spontaneously. Each one is simultaneously extension base
// and extension receiver: on contact, each shares its own extension with
// the others — a tiny information-system infrastructure built with no base
// station at all. When one peer wanders off, everything it provided
// evaporates from the others, and everything it received evaporates from it.
#include <cstdio>

#include "midas/node.h"

using namespace pmp;
using midas::BaseConfig;
using midas::ExtensionPackage;
using midas::Peer;
using rt::Dict;
using rt::List;
using rt::TypeKind;
using rt::Value;

namespace {

/// Every PDA runs a little note-keeping service other peers can call.
void add_notes_service(Peer& peer) {
    peer.runtime().register_type(
        rt::TypeInfo::Builder("Notes")
            .field("count", TypeKind::kInt, Value{std::int64_t{0}})
            .method("add", TypeKind::kInt, {{"text", TypeKind::kStr}},
                    [](rt::ServiceObject& self, List& args) -> Value {
                        (void)args;
                        std::int64_t n = self.peek("count").as_int() + 1;
                        self.set("count", Value{n});
                        return Value{n};
                    })
            .build());
    peer.runtime().create("Notes", "notes");
    peer.rpc().export_object("notes");
}

/// The extension each peer offers: stamps incoming notes with the peer's
/// identity ("age of the device" flavour from §4.6 — context added by
/// whoever is around).
ExtensionPackage stamp_pkg(const std::string& owner) {
    ExtensionPackage pkg;
    pkg.name = owner + "/stamp";
    pkg.script = R"(
        let stamped = 0;
        fun onEntry() {
            ctx.set_arg(0, ctx.arg(0) + " [seen-by:" + config.owner + "]");
            stamped = stamped + 1;
        }
        fun onShutdown(reason) { }
    )";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Notes.add(..))", "onEntry", 0}};
    pkg.config = Value{Dict{{"owner", Value{owner}}}};
    return pkg;
}

void print_installed(sim::Simulator& sim, Peer& peer) {
    printf("[%6.2fs] %s runs %zu foreign extension(s):", sim.now().seconds_since_zero(),
           peer.label().c_str(), peer.receiver().installed_count());
    for (const auto& inst : peer.receiver().installed()) {
        printf(" %s", inst.name.c_str());
    }
    printf("\n");
}

}  // namespace

int main() {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 777);

    std::vector<std::unique_ptr<Peer>> peers;
    const char* names[] = {"pda-ann", "pda-bob", "pda-cli"};
    for (int i = 0; i < 3; ++i) {
        BaseConfig bc;
        bc.issuer = names[i];
        peers.push_back(std::make_unique<Peer>(net, names[i],
                                               net::Position{static_cast<double>(i * 8), 0},
                                               30.0, bc));
        peers[i]->keys().add_key(names[i], to_bytes(std::string("key-") + names[i]));
        add_notes_service(*peers[i]);
    }
    // Everyone trusts everyone here (a community of colleagues).
    for (auto& receiver : peers) {
        for (int i = 0; i < 3; ++i) {
            if (receiver->label() == names[i]) continue;
            receiver->trust().trust(names[i], to_bytes(std::string("key-") + names[i]));
            receiver->receiver().allow_capabilities(names[i], {});
        }
    }
    for (int i = 0; i < 3; ++i) peers[i]->base().add_extension(stamp_pkg(names[i]));

    printf("=== three PDAs meet; each shares its extension with the others ===\n");
    sim.run_for(seconds(5));
    for (auto& peer : peers) print_installed(sim, *peer);

    // Ann calls Bob's notes service: Bob's copy of *Ann's and Cli's*
    // extensions stamps the note as it arrives.
    printf("\nann adds a note on bob's PDA (stamped by the extensions bob "
           "acquired):\n");
    Value n = peers[0]->rpc().call_sync(peers[1]->id(), "notes", "add", {Value{"milk"}});
    printf("  note stored, count=%lld\n", static_cast<long long>(n.as_int()));

    printf("\n=== pda-cli wanders out of range ===\n");
    net.move_node(peers[2]->id(), {500, 500});
    sim.run_for(seconds(15));
    for (auto& peer : peers) print_installed(sim, *peer);
    printf("\ncli's extension evaporated from ann and bob; cli lost theirs —\n"
           "locality in time and space, with no infrastructure anywhere.\n");
    return 0;
}
