// The robot software architecture of Fig 3a (paper §4.1), exercised
// standalone: tasks decomposed into hardware macros, sensor events that
// freeze the hardware and let the task decide, the overriding layer that
// suspends and resumes tasks, and the direct mode for human control —
// plus one hall extension watching it all without the robot knowing.
#include <cstdio>

#include "core/weaver.h"
#include "robot/controller.h"

using namespace pmp;
using robot::MacroStep;
using robot::Task;
using robot::TaskDecision;
using rt::Value;

int main() {
    sim::Simulator sim;
    rt::Runtime runtime("robot:demo");
    robot::RobotController robot(sim, runtime, "robot:demo");

    auto arm = robot.add_motor("motor:arm", /*deg_per_sec_full=*/90.0);
    auto touch = robot.add_sensor("sensor:touch", "touch");

    // A location policy, woven as the environment would: log every macro.
    prose::Weaver weaver(runtime);
    auto audit = std::make_shared<prose::Aspect>("audit");
    audit->before("call(* Motor.*(..))", [&](rt::CallFrame& frame) {
        printf("  [%6.2fs] %s.%s(%s)\n", sim.now().seconds_since_zero(),
               frame.self.name().c_str(), frame.method.decl().name.c_str(),
               frame.args.empty() ? "" : frame.args[0].to_string().c_str());
    });
    weaver.weave(audit);

    printf("=== a task: sweep the arm, with an obstacle on the way ===\n");
    Task sweep;
    sweep.name = "sweep";
    for (int i = 0; i < 6; ++i) {
        sweep.steps.push_back(MacroStep{"motor:arm", "rotate", {Value{30.0}}});
    }
    sweep.on_event = [&](const std::string& sensor, std::int64_t reading) {
        printf("  [%6.2fs] EVENT from %s (reading %lld): hardware frozen, task "
               "deliberates -> back off and continue\n",
               sim.now().seconds_since_zero(), sensor.c_str(),
               static_cast<long long>(reading));
        return TaskDecision::kContinue;
    };
    sweep.on_done = [&](bool completed) {
        printf("  [%6.2fs] task 'sweep' %s\n", sim.now().seconds_since_zero(),
               completed ? "completed" : "aborted");
    };
    robot.start_task(sweep);

    // The environment: an obstacle appears mid-sweep.
    sim.schedule_at(SimTime::zero() + milliseconds(700),
                    [&]() { robot::inject_reading(*touch, 1); });
    sim.run_until(SimTime::zero() + seconds(4));

    printf("\n=== the overriding layer: an urgent re-position interrupts ===\n");
    Task patrol;
    patrol.name = "patrol";
    for (int i = 0; i < 8; ++i) {
        patrol.steps.push_back(MacroStep{"motor:arm", "rotate", {Value{-15.0}}});
    }
    patrol.on_done = [&](bool completed) {
        printf("  [%6.2fs] task 'patrol' %s (resumed after the override)\n",
               sim.now().seconds_since_zero(), completed ? "completed" : "aborted");
    };
    robot.start_task(patrol);
    sim.run_until(SimTime::zero() + seconds(4) + milliseconds(400));

    Task rescue;
    rescue.name = "rescue";
    rescue.steps = {MacroStep{"motor:arm", "rotate", {Value{180.0}}},
                    MacroStep{"motor:arm", "stop", {}}};
    rescue.on_done = [&](bool) {
        printf("  [%6.2fs] override 'rescue' done\n", sim.now().seconds_since_zero());
    };
    robot.push_override(rescue);
    sim.run_until(SimTime::zero() + seconds(10));

    printf("\n=== direct mode: a human takes the controls ===\n");
    robot.direct("motor:arm", "set_power", {Value{2}});
    robot.direct("motor:arm", "rotate", {Value{-90.0}});

    const auto& stats = robot.stats();
    printf("\nsummary: %llu macros, %llu tasks completed, %llu aborted, %llu events, "
           "%llu overrides; arm at %.0f degrees\n",
           static_cast<unsigned long long>(stats.macros_executed),
           static_cast<unsigned long long>(stats.tasks_completed),
           static_cast<unsigned long long>(stats.tasks_aborted),
           static_cast<unsigned long long>(stats.events_handled),
           static_cast<unsigned long long>(stats.overrides_run),
           arm->peek("position").as_real());
    return 0;
}
