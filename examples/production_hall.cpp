// The paper's headline scenario (§1, §4): a robot roams between production
// halls and is proactively adapted by each one.
//
//   Hall A logs every movement persistently (quality assurance) and
//   enforces access control; Hall B instead forbids large movements
//   (a safety policy). The robot carries NO policy code — only the
//   adaptation service. Watch the extensions arrive, act, and evaporate
//   as the robot moves.
#include <cstdio>

#include "midas/node.h"
#include "net/mobility.h"
#include "robot/devices.h"

using namespace pmp;
using midas::BaseConfig;
using midas::BaseStation;
using midas::ExtensionPackage;
using midas::MobileNode;
using rt::Dict;
using rt::Value;

namespace {

ExtensionPackage monitoring_pkg() {
    ExtensionPackage pkg;
    pkg.name = "hall-a/monitoring";
    pkg.script = R"(
        let logged = 0;
        fun onEntry() {
            owner.post("collector", "post",
                       [sys.node(), {"device": ctx.target(), "action": ctx.method(),
                                     "at_ms": sys.now_ms()}]);
            logged = logged + 1;
        }
        fun onShutdown(reason) {
            log.info("monitoring shut down (" + reason + ") after " + str(logged)
                     + " actions");
        }
    )";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    pkg.capabilities = {"net", "log"};
    return pkg;
}

ExtensionPackage safety_pkg() {
    ExtensionPackage pkg;
    pkg.name = "hall-b/safety";
    pkg.script = R"(
        fun onEntry() {
            if (ctx.method() == "rotate" && abs(ctx.arg(0)) > config.max_degrees) {
                ctx.deny("hall B forbids rotations beyond "
                         + str(config.max_degrees) + " degrees");
            }
        }
    )";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    pkg.config = Value{Dict{{"max_degrees", Value{45}}}};
    return pkg;
}

}  // namespace

int main() {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 2003);

    // Two production halls, 400m apart, each covering ~100m.
    BaseConfig ca;
    ca.issuer = "hall-a";
    BaseStation hall_a(net, "hall-a", {0, 0}, 100.0, ca);
    hall_a.keys().add_key("hall-a", to_bytes("key-a"));
    hall_a.base().add_extension(monitoring_pkg());

    BaseConfig cb;
    cb.issuer = "hall-b";
    BaseStation hall_b(net, "hall-b", {400, 0}, 100.0, cb);
    hall_b.keys().add_key("hall-b", to_bytes("key-b"));
    hall_b.base().add_extension(safety_pkg());

    // The robot: trusts both halls, carries only its motors + adaptation
    // service.
    MobileNode robot(net, "robot:1:1", {20, 0}, 100.0);
    robot.trust().trust("hall-a", to_bytes("key-a"));
    robot.trust().trust("hall-b", to_bytes("key-b"));
    robot.receiver().allow_capabilities("hall-a", {"net", "log"});
    robot.receiver().allow_capabilities("hall-b", {});
    auto motor = robot::make_motor(robot.runtime(), "motor:arm");

    robot.receiver().on_event(
        [&](const std::string& event, const midas::AdaptationService::Installed& info) {
            printf("[%7.2fs] robot: %s '%s' (from %s)\n", sim.now().seconds_since_zero(),
                   event.c_str(), info.name.c_str(), info.issuer.c_str());
        });

    auto try_rotate = [&](double degrees) {
        try {
            motor->call("rotate", {Value{degrees}});
            printf("[%7.2fs] rotate(%+.0f) -> ok (position now %.0f)\n",
                   sim.now().seconds_since_zero(), degrees,
                   motor->peek("position").as_real());
        } catch (const AccessDenied& e) {
            printf("[%7.2fs] rotate(%+.0f) -> DENIED: %s\n",
                   sim.now().seconds_since_zero(), degrees, e.what());
        }
    };

    printf("=== phase 1: robot works in hall A (movements are logged) ===\n");
    sim.run_for(seconds(3));  // discovery + adaptation
    try_rotate(90);
    try_rotate(-30);
    sim.run_for(seconds(1));
    printf("[%7.2fs] hall A database now holds %zu movement record(s)\n",
           sim.now().seconds_since_zero(), hall_a.store().size());

    printf("\n=== phase 2: robot drives to hall B (hall A's policy evaporates) ===\n");
    net::PathMover trip(net, robot.id(),
                        {net::Waypoint{{400, 10}, sim.now() + seconds(20)}});
    sim.run_for(seconds(30));  // travel + lease expiry + hall B adaptation

    printf("\n=== phase 3: robot works in hall B (safety limits active) ===\n");
    try_rotate(30);
    try_rotate(90);  // exceeds hall B's 45-degree limit
    sim.run_for(seconds(1));
    printf("[%7.2fs] hall A database still holds %zu record(s); hall B logged nothing "
           "(different policy)\n",
           sim.now().seconds_since_zero(), hall_a.store().size());

    printf("\n=== phase 4: robot leaves both halls ===\n");
    net::PathMover home(net, robot.id(),
                        {net::Waypoint{{400, 900}, sim.now() + seconds(15)}});
    sim.run_for(seconds(25));
    try_rotate(180);  // nobody restricts or logs it out here
    printf("\nextensions installed at the end: %zu (the robot is its plain self "
           "again)\n",
           robot.receiver().installed_count());
    return 0;
}
