// The Fig 4 plotter with remote replication (paper §4.5).
//
// Plotter #1 draws a figure. The hall has installed a replication extension
// on it: every drawing command is mirrored — through the base station — to
// an identical plotter in another location, at 2x scale ("it is also
// possible that the replication of the work takes place at a scale
// different from what is being done by the original robot"). Neither
// plotter contains any replication code.
#include <cstdio>

#include "midas/node.h"
#include "robot/plotter.h"

using namespace pmp;
using midas::BaseConfig;
using midas::BaseStation;
using midas::ExtensionPackage;
using midas::MobileNode;
using rt::Dict;
using rt::List;
using rt::TypeKind;
using rt::Value;

int main() {
    sim::Simulator sim;
    // Zero jitter: mirrored drawing commands must arrive in order. (A real
    // deployment would sequence-number them; ordering is not the point of
    // this example.)
    net::NetworkConfig cfg;
    cfg.jitter = Duration{0};
    net::Network net(sim, cfg, 44);

    BaseConfig bc;
    bc.issuer = "hall";
    BaseStation hall(net, "hall", {0, 0}, 200.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));

    // Two identical plotters on two mobile nodes.
    MobileNode node1(net, "plotter:1", {10, 0}, 200.0);
    node1.trust().trust("hall", to_bytes("k"));
    node1.receiver().allow_capabilities("hall", {"net"});
    robot::RobotController ctl1(sim, node1.runtime(), "plotter:1");
    robot::Plotter plotter1(ctl1);
    node1.rpc().export_object("drawing");

    // The replica is a plain node: it runs no adaptation service, so the
    // hall never tries to adapt it — it only executes mirrored commands.
    midas::NodeStack node2(net, "plotter:2", {50, 0}, 200.0);
    robot::RobotController ctl2(sim, node2.runtime(), "plotter:2");
    robot::Plotter plotter2(ctl2);
    node2.rpc().export_object("drawing");

    // The hall-side mirror: receives drawing commands from the extension
    // and forwards them — scaled — to plotter #2. Only the base station
    // knows where the replica lives.
    const double kScale = 2.0;
    NodeId replica = node2.id();
    hall.runtime().register_type(
        rt::TypeInfo::Builder("Mirror")
            .method("post", TypeKind::kInt,
                    {{"source", TypeKind::kStr}, {"cmd", TypeKind::kDict}},
                    [&](rt::ServiceObject&, List& args) -> Value {
                        const Dict& cmd = args[1].as_dict();
                        List scaled;
                        for (const Value& v : cmd.at("args").as_list()) {
                            scaled.push_back(Value{v.as_real() * kScale});
                        }
                        hall.rpc().call_async(replica, "drawing",
                                              cmd.at("method").as_str(), scaled,
                                              [](Value, std::exception_ptr) {});
                        return Value{1};
                    })
            .build());
    hall.runtime().create("Mirror", "mirror");
    hall.rpc().export_object("mirror");

    // The replication extension the hall pushes onto plotter #1.
    ExtensionPackage replication;
    replication.name = "hall/replication";
    replication.script = R"(
        fun onEntry() {
            owner.post("mirror", "post",
                       [sys.node(), {"method": ctx.method(), "args": ctx.args()}]);
        }
    )";
    replication.bindings = {{prose::AdviceKind::kBefore,
                             "call(* Drawing.move_to(..)) || call(* Drawing.line_to(..))",
                             "onEntry", 0}};
    replication.capabilities = {"net"};
    hall.base().add_extension(replication);

    sim.run_for(seconds(3));  // adaptation
    printf("plotter:1 adapted with %zu extension(s); drawing a house...\n\n",
           node1.receiver().installed_count());

    // The drawing program: a little house.
    auto drawing = plotter1.drawing();
    drawing->call("move_to", {Value{0.0}, Value{0.0}});
    drawing->call("line_to", {Value{4.0}, Value{0.0}});
    drawing->call("line_to", {Value{4.0}, Value{3.0}});
    drawing->call("line_to", {Value{2.0}, Value{5.0}});
    drawing->call("line_to", {Value{0.0}, Value{3.0}});
    drawing->call("line_to", {Value{0.0}, Value{0.0}});
    sim.run_for(seconds(5));  // let mirrored commands arrive

    auto print_trace = [](const char* label, const robot::Plotter& plotter) {
        printf("%s drew %zu segment(s):\n", label, plotter.trace().size());
        for (const auto& seg : plotter.trace()) {
            printf("  (%5.1f,%5.1f) -> (%5.1f,%5.1f)\n", seg.x0, seg.y0, seg.x1, seg.y1);
        }
    };
    print_trace("plotter:1 (original) ", plotter1);
    printf("\n");
    print_trace("plotter:2 (replica @2x)", plotter2);

    printf("\nthe replica's figure is the same house at twice the size — and\n"
           "plotter:1's program contains nothing but drawing code.\n");
    return 0;
}
