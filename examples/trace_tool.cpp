// trace_tool — offline causal-trace analysis (PR 6).
//
// Reads an observability snapshot dumped by `obs::to_json` (from a file or
// stdin) and reconstructs what the platform actually did, causally:
//
//   trace_tool dump.json                 # causal trees, one per trace id
//   trace_tool --critical dump.json      # the latency-bounding span chain
//   trace_tool --attribution dump.json   # per-extension cost bills
//   trace_tool --chrome out.json dump.json   # Chrome trace-event export
//                                            # (chrome://tracing, Perfetto)
//
// The input is the same JSON monitor_tool and the soak tests emit; the
// flight-recorder dumps journaled at quarantine serialize the same
// TraceEvent fields, so a recovered dump pasted into a snapshot's "trace"
// array reads identically.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "midas/node.h"
#include "net/fault.h"
#include "obs/export.h"
#include "obs/profile.h"
#include "robot/devices.h"

using namespace pmp;

namespace {

int usage() {
    std::cerr << "usage: trace_tool [--tree|--critical|--attribution|--chrome OUT] "
                 "[snapshot.json]\n"
                 "       trace_tool --chaos-dump [seed]\n"
                 "  reads an obs::to_json snapshot (stdin when no file is given);\n"
                 "  --chaos-dump runs the Fig 2 install chain under duplication +\n"
                 "  reordering faults and prints the resulting snapshot as JSON\n";
    return 2;
}

/// Run one install → verify → weave → first-dispatch chain across a
/// two-node hall under a chaotic radio, and print the traced snapshot.
/// This is the same scenario the trace soak tests replay; piping its
/// output back into trace_tool is the CI smoke for the whole loop.
int chaos_dump(std::uint64_t seed) {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, seed);
    net::FaultPlan plan;
    plan.duplicate = 0.30;
    plan.reorder = 0.25;
    plan.reorder_hold = milliseconds(5);
    net.set_fault_plan(plan, seed);

    midas::BaseConfig bc;
    bc.issuer = "hall";
    midas::BaseStation hall(net, "hall", {0, 0}, 100.0, bc);
    hall.keys().add_key("hall", to_bytes("k"));
    midas::MobileNode robot(net, "robot", {10, 0}, 100.0);
    robot.trust().trust("hall", to_bytes("k"));
    robot.receiver().allow_capabilities("hall", {"net", "target", "log"});
    auto motor = robot::make_motor(robot.runtime(), "motor:x");

    midas::ExtensionPackage pkg;
    pkg.name = "hall/monitor";
    pkg.script = "fun onEntry() { let x = 1 + 2; }";
    pkg.bindings = {{prose::AdviceKind::kBefore, "call(* Motor.*(..))", "onEntry", 0}};
    hall.base().add_extension(pkg);

    SimTime deadline = sim.now() + seconds(20);
    while (sim.now() < deadline && robot.receiver().installed_count() == 0) {
        sim.run_until(sim.now() + milliseconds(100));
    }
    if (robot.receiver().installed_count() == 0) {
        std::cerr << "trace_tool: install never completed under seed " << seed << "\n";
        return 1;
    }
    motor->call("rotate", {rt::Value{1.0}});  // first advice dispatch
    sim.run_for(milliseconds(200));

    std::cout << obs::to_json(obs::snapshot()) << "\n";
    return 0;
}

std::string read_input(const std::string& path) {
    if (path.empty() || path == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        return ss.str();
    }
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

double ms(pmp::Duration d) { return static_cast<double>(d.count()) / 1e6; }

}  // namespace

int main(int argc, char** argv) {
    std::string mode = "--tree";
    std::string chrome_out;
    std::string input_path;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--chaos-dump") {
            std::uint64_t seed = 42;
            if (i + 1 < argc) seed = std::stoull(argv[i + 1]);
            return chaos_dump(seed);
        } else if (arg == "--tree" || arg == "--critical" || arg == "--attribution") {
            mode = arg;
        } else if (arg == "--chrome") {
            mode = arg;
            if (++i >= argc) return usage();
            chrome_out = argv[i];
        } else if (arg == "--help" || arg == "-h") {
            return usage();
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::cerr << "unknown option '" << arg << "'\n";
            return usage();
        } else {
            input_path = arg;
        }
    }

    obs::Snapshot snap;
    try {
        snap = obs::snapshot_from_json(read_input(input_path));
    } catch (const std::exception& e) {
        std::cerr << "trace_tool: " << e.what() << "\n";
        return 1;
    }

    if (mode == "--attribution") {
        auto bills = obs::attribution_from(snap);
        if (bills.empty()) {
            std::cout << "no profile.* samples in snapshot (obs disabled, or nothing "
                         "dispatched)\n";
            return 0;
        }
        for (const obs::ExtensionCost& ext : bills) {
            std::cout << ext.extension << ": " << ext.invocations << " advice calls, "
                      << ext.total_ns / 1e6 << " ms total, " << ext.steps
                      << " interpreter steps\n";
            for (const obs::SiteCost& site : ext.sites) {
                std::cout << "  " << site.pointcut << ": " << site.invocations
                          << " calls, " << site.total_ns / 1e6 << " ms total, p95 "
                          << site.p95_ns / 1e3 << " us\n";
            }
        }
        return 0;
    }

    if (mode == "--chrome") {
        std::string json = obs::to_chrome_trace(snap.trace);
        if (chrome_out == "-") {
            std::cout << json << "\n";
        } else {
            std::ofstream out(chrome_out);
            if (!out) {
                std::cerr << "trace_tool: cannot write '" << chrome_out << "'\n";
                return 1;
            }
            out << json;
            std::cout << "wrote " << json.size() << " bytes to " << chrome_out << "\n";
        }
        return 0;
    }

    std::vector<obs::TraceTree> trees = obs::build_trace_trees(snap.trace);
    if (trees.empty()) {
        std::cout << "no traced events in snapshot (" << snap.trace.size()
                  << " events total)\n";
        return 0;
    }

    if (mode == "--critical") {
        for (const obs::TraceTree& tree : trees) {
            auto path = obs::critical_path(tree);
            if (path.empty()) continue;
            std::cout << "trace " << tree.trace_id << " critical path ("
                      << ms(path.front().total) << " ms):\n";
            for (const obs::CriticalHop& hop : path) {
                std::cout << "  #" << hop.span << " " << hop.component << " " << hop.name
                          << "  total " << ms(hop.total) << " ms, self " << ms(hop.self)
                          << " ms\n";
            }
        }
        return 0;
    }

    for (const obs::TraceTree& tree : trees) {
        std::cout << obs::render_tree(tree);
    }
    std::cout << trees.size() << " traces, " << snap.trace.size() << " events ("
              << snap.trace_dropped << " evicted before the dump)\n";
    return 0;
}
