// The paper's application-blind encryption extension (§3.3): "it is very
// easy to design an extension that will encrypt every outgoing call from
// an application and decrypt every incoming call."
//
// A secure hall requires every device inside to speak an encrypted channel
// for application traffic. The extension knows nothing about any
// application — not even an interface; its one-line top level keys wire
// filters on the node's rpc marshaling path. Devices adapted by the hall
// talk normally; an eavesdropper sees ciphertext; an unadapted intruder
// cannot get an application call through. When a device leaves, the
// channel evaporates with the extension.
#include <cstdio>

#include "midas/node.h"

using namespace pmp;
using midas::BaseConfig;
using midas::BaseStation;
using midas::ExtensionPackage;
using midas::MobileNode;
using rt::Dict;
using rt::List;
using rt::TypeKind;
using rt::Value;

namespace {

void add_chat_service(MobileNode& node) {
    node.runtime().register_type(
        rt::TypeInfo::Builder("Chat")
            .method("say", TypeKind::kStr, {{"text", TypeKind::kStr}},
                    [label = node.label()](rt::ServiceObject&, List& args) -> Value {
                        printf("    [%s hears] \"%s\"\n", label.c_str(),
                               args[0].as_str().c_str());
                        return Value{"ack from " + label};
                    })
            .build());
    node.runtime().create("Chat", "chat");
    node.rpc().export_object("chat");
}

bool frame_contains(const std::string& frame, const std::string& needle) {
    return frame.find(needle) != std::string::npos;
}

}  // namespace

int main() {
    sim::Simulator sim;
    net::Network net(sim, net::NetworkConfig{}, 1337);

    BaseConfig bc;
    bc.issuer = "secure-hall";
    BaseStation hall(net, "secure-hall", {0, 0}, 100.0, bc);
    hall.keys().add_key("secure-hall", to_bytes("hall-master-key"));

    MobileNode alice(net, "alice", {10, 0}, 100.0);
    MobileNode bob(net, "bob", {-10, 0}, 100.0);
    for (MobileNode* node : {&alice, &bob}) {
        node->trust().trust("secure-hall", to_bytes("hall-master-key"));
        node->receiver().allow_capabilities("secure-hall", {"rpc"});
        add_chat_service(*node);
    }

    // An eavesdropper taps everything delivered to bob (passive: the
    // messages still reach bob's stack).
    std::string last_app_frame;
    net.set_tap(bob.id(), [&](const net::Message& m) {
        if (m.kind == "rpc.call") {
            last_app_frame = to_string(std::span<const std::uint8_t>(m.payload));
        }
    });

    printf("=== before adaptation: application traffic is plaintext ===\n");
    sim.run_for(seconds(1));
    Value r = alice.rpc().call_sync(bob.id(), "chat", "say", {Value{"attack at dawn"}});
    printf("  alice got: \"%s\"\n", r.as_str().c_str());
    printf("  eavesdropper sees the message on the air: %s\n\n",
           frame_contains(last_app_frame, "attack at dawn") ? "YES (plaintext!)" : "no");

    printf("=== the hall ships its channel extension to everyone ===\n");
    ExtensionPackage secure;
    secure.name = "secure-hall/channel";
    secure.script = R"(
        rpc.set_channel(config.key);   // runs once, on arrival
        fun onShutdown(reason) { }
    )";
    secure.capabilities = {"rpc"};
    secure.config = Value{Dict{{"key", Value{"todays-hall-key"}}}};
    hall.base().add_extension(secure);

    SimTime deadline = sim.now() + seconds(10);
    while (sim.now() < deadline && (alice.receiver().installed_count() != 1 ||
                                    bob.receiver().installed_count() != 1)) {
        sim.run_until(sim.now() + milliseconds(100));
    }
    printf("  alice: %zu extension(s), bob: %zu extension(s)\n\n",
           alice.receiver().installed_count(), bob.receiver().installed_count());

    printf("=== after adaptation: same call, sealed channel ===\n");
    r = alice.rpc().call_sync(bob.id(), "chat", "say", {Value{"attack at dawn"}});
    printf("  alice got: \"%s\"\n", r.as_str().c_str());
    printf("  eavesdropper sees the message on the air: %s\n\n",
           frame_contains(last_app_frame, "attack at dawn") ? "YES (plaintext!)"
                                                            : "no (ciphertext)");

    printf("=== an unadapted intruder tries to call bob ===\n");
    midas::NodeStack intruder(net, "intruder", {0, 20}, 100.0);
    try {
        intruder.rpc().call_sync(bob.id(), "chat", "say", {Value{"let me in"}},
                                 milliseconds(800));
        printf("  intruder got through?!\n");
    } catch (const Error&) {
        printf("  intruder's plaintext call was dropped (timed out)\n\n");
    }

    printf("=== bob leaves the hall: the channel evaporates with the lease ===\n");
    bob.move_to({1000, 0});
    deadline = sim.now() + seconds(15);
    while (sim.now() < deadline && bob.receiver().installed_count() != 0) {
        sim.run_until(sim.now() + milliseconds(100));
    }
    printf("  bob's extensions: %zu, wire filters: %zu — plain node again\n",
           bob.receiver().installed_count(), bob.rpc().wire_filter_count());
    return 0;
}
