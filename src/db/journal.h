// Append-only journal: write-ahead log plus compacting snapshot.
//
// The paper's production-hall database — and the extension base's policy
// set and adapted-node book — must survive a base-station restart. The
// Journal provides that durability in the simulated world: records are
// framed with a CRC and appended to a byte medium (`JournalStorage`) that
// outlives the node object holding the Journal. A restarted node builds a
// fresh Journal over the same storage and restores: snapshot first, then
// the WAL records in order. A torn write at the tail (the process died
// mid-append) or a corrupted tail is dropped and reported; everything
// before it is recovered intact.
//
// Group commit (docs/storage.md): with a non-zero `JournalConfig`, append()
// buffers records and flushes them as one CRC-framed multi-record batch
// when the buffer reaches `batch_bytes` or `batch_ms` of virtual time has
// passed since the first buffered record. A power cut mid-batch loses only
// the unflushed group — never a previously flushed frame — and restore()
// replays batch and per-record frames transparently, interleaved in any
// order.
//
// Incremental snapshots: with `snapshot_chunk_bytes` set, compact() writes
// the snapshot as a chain of CRC-framed chunk records (one manifest frame
// plus N chunk frames, each independently verifiable) and keeps the
// previous complete chain in `JournalStorage::snapshot_prev`. A corrupt
// chunk degrades recovery to the previous chain (`snapshot_fallback`)
// instead of discarding the snapshot wholesale.
//
// Crash modelling: power_off() simulates the instant the process dies —
// writes issued after it never reach the medium (and buffered batch
// records are torn away), which is how a crash between "send install" and
// "record activity" is expressed without unwinding the C++ call stack.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "rt/value.h"
#include "sim/simulator.h"

namespace pmp::db {

/// The durable medium. Held by shared_ptr from outside the node object so
/// it survives the node's destruction — the simulated disk.
struct JournalStorage {
    std::string name;   ///< obs label, typically the node label
    Bytes snapshot;     ///< last compacted snapshot (frame or chunk chain)
    Bytes snapshot_prev;  ///< previous complete chunk chain (fallback)
    Bytes wal;          ///< CRC-framed records appended since the snapshot
};

/// CRC-32 (IEEE 802.3, reflected) over `data`. Exposed so tests can build
/// hand-crafted frames.
std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Group-commit and snapshot-chunking knobs. The all-zero default is the
/// seed behavior: one frame per record, one monolithic snapshot frame.
struct JournalConfig {
    /// Flush the pending batch once its payload reaches this size. 0
    /// disables size-based batching.
    std::size_t batch_bytes = 0;
    /// Flush at most this long (virtual time) after the first buffered
    /// record. Requires a simulator; 0 disables the timer.
    Duration batch_ms = Duration{0};
    /// Emit snapshots as a manifest + chunks of this size. 0 keeps the
    /// single-frame snapshot.
    std::size_t snapshot_chunk_bytes = 0;

    bool batching() const { return batch_bytes > 0 || batch_ms.count() > 0; }
};

class Journal {
public:
    /// Builds a journal over `storage` (created if null). Does not touch
    /// the medium: call restore() to read, append()/compact() to write.
    explicit Journal(std::shared_ptr<JournalStorage> storage);

    /// Group-commit variant. `sim` drives the batch_ms flush timer; it may
    /// be null, in which case only size-based flushing applies.
    Journal(std::shared_ptr<JournalStorage> storage, JournalConfig config,
            sim::Simulator* sim = nullptr);

    ~Journal();

    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    struct Restored {
        std::optional<rt::Value> snapshot;  ///< absent if none / corrupt
        std::vector<rt::Value> wal;         ///< valid records, in append order
        std::size_t dropped_bytes = 0;      ///< trailing wal bytes discarded
        bool snapshot_corrupt = false;      ///< no usable chain at all
        bool snapshot_fallback = false;     ///< current chain bad; prev used
        bool tail_corrupt = false;  ///< wal ended in a torn or damaged frame
    };

    /// Decode the medium. Total: never throws. A truncated or corrupt tail
    /// is dropped (torn final write = normal crash debris); a corrupt
    /// snapshot falls back to the previous chunk chain if one exists, else
    /// yields no snapshot but still replays the WAL. Batch frames replay
    /// transparently as their member records.
    Restored restore() const;

    /// Append one record. Without batching, writes one frame immediately.
    /// With batching, buffers into the pending group (see flush()). Dropped
    /// silently when powered off (the process died; the write never reached
    /// the disk).
    void append(const rt::Value& record);

    /// Write the pending batch, if any, as one multi-record frame.
    void flush();

    /// Atomically replace the snapshot with `state` and truncate the WAL
    /// (buffered records are folded into `state` by the caller and are
    /// discarded). Chunked mode retires the current chain to
    /// `snapshot_prev`.
    void compact(const rt::Value& state);

    /// Process death: every write after this instant is lost, including
    /// the buffered batch (torn-group semantics).
    void power_off();
    bool powered() const { return powered_; }

    /// Records appended since construction or the last compact(), buffered
    /// or flushed — the compaction-threshold input.
    std::size_t wal_records() const { return wal_records_; }

    /// Records currently buffered and not yet flushed (tests).
    std::size_t pending_records() const { return pending_count_; }

    const std::shared_ptr<JournalStorage>& storage() const { return storage_; }

private:
    void arm_flush_timer();
    void cancel_flush_timer();

    std::shared_ptr<JournalStorage> storage_;
    JournalConfig config_;
    sim::Simulator* sim_ = nullptr;
    bool powered_ = true;
    std::size_t wal_records_ = 0;

    Bytes pending_;                 ///< batch payload under construction
    std::size_t pending_count_ = 0;
    sim::TimerId flush_timer_{};
    bool flush_armed_ = false;
    std::uint64_t chain_counter_ = 0;  ///< chunk-chain ids within this life
};

}  // namespace pmp::db
