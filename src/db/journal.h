// Append-only journal: write-ahead log plus compacting snapshot.
//
// The paper's production-hall database — and the extension base's policy
// set and adapted-node book — must survive a base-station restart. The
// Journal provides that durability in the simulated world: records are
// framed with a CRC and appended to a byte medium (`JournalStorage`) that
// outlives the node object holding the Journal. A restarted node builds a
// fresh Journal over the same storage and restores: snapshot first, then
// the WAL records in order. A torn write at the tail (the process died
// mid-append) or a corrupted tail is dropped and reported; everything
// before it is recovered intact.
//
// Crash modelling: power_off() simulates the instant the process dies —
// writes issued after it never reach the medium, which is how a crash
// between "send install" and "record activity" is expressed without
// unwinding the C++ call stack.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "rt/value.h"

namespace pmp::db {

/// The durable medium. Held by shared_ptr from outside the node object so
/// it survives the node's destruction — the simulated disk.
struct JournalStorage {
    std::string name;  ///< obs label, typically the node label
    Bytes snapshot;    ///< last compacted snapshot (one frame; empty = none)
    Bytes wal;         ///< CRC-framed records appended since the snapshot
};

/// CRC-32 (IEEE 802.3, reflected) over `data`. Exposed so tests can build
/// hand-crafted frames.
std::uint32_t crc32(std::span<const std::uint8_t> data);

class Journal {
public:
    /// Builds a journal over `storage` (created if null). Does not touch
    /// the medium: call restore() to read, append()/compact() to write.
    explicit Journal(std::shared_ptr<JournalStorage> storage);

    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    struct Restored {
        std::optional<rt::Value> snapshot;  ///< absent if none / corrupt
        std::vector<rt::Value> wal;         ///< valid records, in append order
        std::size_t dropped_bytes = 0;      ///< trailing wal bytes discarded
        bool snapshot_corrupt = false;
        bool tail_corrupt = false;  ///< wal ended in a torn or damaged frame
    };

    /// Decode the medium. Total: never throws. A truncated or corrupt tail
    /// is dropped (torn final write = normal crash debris); a corrupt
    /// snapshot yields no snapshot but still replays the WAL.
    Restored restore() const;

    /// Append one record frame to the WAL. Dropped silently when powered
    /// off (the process died; the write never reached the disk).
    void append(const rt::Value& record);

    /// Atomically replace the snapshot with `state` and truncate the WAL.
    void compact(const rt::Value& state);

    /// Process death: every write after this instant is lost.
    void power_off() { powered_ = false; }
    bool powered() const { return powered_; }

    /// Frames appended since construction or the last compact() — the
    /// compaction-threshold input.
    std::size_t wal_records() const { return wal_records_; }

    const std::shared_ptr<JournalStorage>& storage() const { return storage_; }

private:
    std::shared_ptr<JournalStorage> storage_;
    bool powered_ = true;
    std::size_t wal_records_ = 0;
};

}  // namespace pmp::db
