#include "db/store.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace pmp::db {

std::uint64_t EventStore::append(std::string source, SimTime at, rt::Value data) {
    Record rec;
    rec.seq = records_.size() + 1;
    rec.source = std::move(source);
    rec.at = at;
    rec.data = std::move(data);
    records_.push_back(std::move(rec));
    if (append_hook_) append_hook_(records_.back());
    return records_.back().seq;
}

std::vector<Record> EventStore::query(const Query& q) const {
    std::vector<Record> out;
    for (const Record& rec : records_) {
        if (out.size() >= q.limit) break;
        if (q.source && rec.source != *q.source) continue;
        if (q.from && rec.at < *q.from) continue;
        if (q.until && rec.at >= *q.until) continue;
        out.push_back(rec);
    }
    return out;
}

std::vector<std::string> EventStore::sources() const {
    std::set<std::string> seen;
    for (const Record& rec : records_) seen.insert(rec.source);
    return {seen.begin(), seen.end()};
}

const Record& EventStore::at(std::uint64_t seq) const {
    if (seq == 0 || seq > records_.size()) {
        throw Error("no record with seq " + std::to_string(seq));
    }
    return records_[seq - 1];
}

Bytes EventStore::snapshot() const {
    rt::List out;
    out.reserve(records_.size());
    for (const Record& rec : records_) {
        rt::Dict d{{"source", rt::Value{rec.source}},
                   {"at_ns", rt::Value{rec.at.ns}},
                   {"data", rec.data}};
        out.push_back(rt::Value{std::move(d)});
    }
    return rt::Value{std::move(out)}.encode();
}

EventStore EventStore::restore(std::span<const std::uint8_t> snapshot) {
    EventStore store;
    rt::Value v;
    try {
        v = rt::Value::decode(snapshot);
    } catch (const Error&) {
        throw;  // already typed (ParseError etc.)
    } catch (const std::exception& e) {
        // A hostile length prefix can trip the allocator or a container
        // guard; keep the escape typed.
        throw Error(std::string("event store snapshot: ") + e.what());
    }
    if (!v.is_list()) {
        throw Error("event store snapshot: expected a list of records, got " +
                    std::string(rt::Value::kind_name(v.kind())));
    }
    for (const rt::Value& rec : v.as_list()) {
        if (!rec.is_dict()) {
            throw Error("event store snapshot: record is not a dict");
        }
        const rt::Dict& d = rec.as_dict();
        const rt::Value* source = d.find("source");
        const rt::Value* at_ns = d.find("at_ns");
        const rt::Value* data = d.find("data");
        if (!source || !source->is_str()) {
            throw Error("event store snapshot: record missing string 'source'");
        }
        if (!at_ns || !at_ns->is_int()) {
            throw Error("event store snapshot: record missing int 'at_ns'");
        }
        if (!data) {
            throw Error("event store snapshot: record missing 'data'");
        }
        store.append(source->as_str(), SimTime{at_ns->as_int()}, *data);
    }
    return store;
}

ReplayCursor::ReplayCursor(std::vector<Record> records) : records_(std::move(records)) {
    std::sort(records_.begin(), records_.end(),
              [](const Record& a, const Record& b) { return a.at < b.at; });
}

Record ReplayCursor::next() {
    if (done()) throw Error("replay cursor exhausted");
    return records_[pos_++];
}

Duration ReplayCursor::gap_before_next(double time_scale) const {
    if (pos_ == 0 || done()) return Duration{0};
    auto gap = records_[pos_].at - records_[pos_ - 1].at;
    return Duration{static_cast<std::int64_t>(static_cast<double>(gap.count()) * time_scale)};
}

}  // namespace pmp::db
