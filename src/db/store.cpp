#include "db/store.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "obs/metrics.h"

namespace pmp::db {

std::uint64_t EventStore::append(std::string source, SimTime at, rt::Value data) {
    Record rec;
    rec.seq = base_seq_ + records_.size() + 1;
    rec.source = std::move(source);
    rec.at = at;
    rec.data = std::move(data);
    records_.push_back(std::move(rec));
    if (retention_.max_bytes > 0) {
        sizes_.push_back(approx_size(records_.back()));
        bytes_ += sizes_.back();
    }
    if (append_hook_) append_hook_(records_.back());
    std::uint64_t seq = records_.back().seq;
    apply_retention();
    return seq;
}

std::size_t EventStore::approx_size(const Record& rec) {
    // The serialized footprint, give or take framing: source + payload
    // encoding + seq/time fixed cost.
    return rec.source.size() + rec.data.encode().size() + 24;
}

void EventStore::set_retention(Retention retention, std::string label) {
    const bool had_bytes = retention_.max_bytes > 0;
    retention_ = retention;
    label_ = std::move(label);
    if (retention_.max_bytes > 0 && !had_bytes) {
        sizes_.clear();
        sizes_.reserve(records_.size());
        bytes_ = 0;
        for (const Record& rec : records_) {
            sizes_.push_back(approx_size(rec));
            bytes_ += sizes_.back();
        }
    } else if (retention_.max_bytes == 0) {
        sizes_.clear();
        bytes_ = 0;
    }
    apply_retention();
}

void EventStore::apply_retention() {
    std::size_t drop = 0;
    if (retention_.max_records > 0 && records_.size() > retention_.max_records) {
        drop = records_.size() - retention_.max_records;
    }
    if (retention_.max_bytes > 0) {
        std::size_t remaining = bytes_;
        for (std::size_t i = 0; i < drop; ++i) remaining -= sizes_[i];
        while (drop < records_.size() && remaining > retention_.max_bytes) {
            remaining -= sizes_[drop];
            ++drop;
        }
    }
    if (drop == 0) return;
    if (!sizes_.empty()) {
        for (std::size_t i = 0; i < drop; ++i) bytes_ -= sizes_[i];
        sizes_.erase(sizes_.begin(), sizes_.begin() + static_cast<std::ptrdiff_t>(drop));
    }
    records_.erase(records_.begin(), records_.begin() + static_cast<std::ptrdiff_t>(drop));
    base_seq_ += drop;
    auto& reg = obs::Registry::global();
    reg.counter("db.eventstore.compactions", label_).inc();
    reg.counter("db.eventstore.trimmed_records", label_)
        .inc(static_cast<std::uint64_t>(drop));
}

std::vector<Record> EventStore::query(const Query& q) const {
    std::vector<Record> out;
    for (const Record& rec : records_) {
        if (out.size() >= q.limit) break;
        if (q.source && rec.source != *q.source) continue;
        if (q.from && rec.at < *q.from) continue;
        if (q.until && rec.at >= *q.until) continue;
        out.push_back(rec);
    }
    return out;
}

std::vector<std::string> EventStore::sources() const {
    std::set<std::string> seen;
    for (const Record& rec : records_) seen.insert(rec.source);
    return {seen.begin(), seen.end()};
}

const Record& EventStore::at(std::uint64_t seq) const {
    if (seq <= base_seq_ || seq > base_seq_ + records_.size()) {
        throw Error("no record with seq " + std::to_string(seq));
    }
    return records_[seq - base_seq_ - 1];
}

Bytes EventStore::snapshot() const {
    rt::List out;
    out.reserve(records_.size());
    for (const Record& rec : records_) {
        rt::Dict d{{"source", rt::Value{rec.source}},
                   {"at_ns", rt::Value{rec.at.ns}},
                   {"data", rec.data}};
        out.push_back(rt::Value{std::move(d)});
    }
    if (base_seq_ == 0) {
        // The seed format: a bare record list. Kept whenever nothing was
        // trimmed so existing snapshots stay byte-identical.
        return rt::Value{std::move(out)}.encode();
    }
    return rt::Value{rt::Dict{{"base_seq",
                               rt::Value{static_cast<std::int64_t>(base_seq_)}},
                              {"records", rt::Value{std::move(out)}}}}
        .encode();
}

EventStore EventStore::restore(std::span<const std::uint8_t> snapshot) {
    EventStore store;
    rt::Value v;
    try {
        v = rt::Value::decode(snapshot);
    } catch (const Error&) {
        throw;  // already typed (ParseError etc.)
    } catch (const std::exception& e) {
        // A hostile length prefix can trip the allocator or a container
        // guard; keep the escape typed.
        throw Error(std::string("event store snapshot: ") + e.what());
    }
    const rt::Value* records = &v;
    if (v.is_dict()) {
        // Post-retention format: {base_seq, records}.
        const rt::Value* base = v.as_dict().find("base_seq");
        records = v.as_dict().find("records");
        if (!base || !base->is_int() || base->as_int() < 0 || !records) {
            throw Error("event store snapshot: malformed retention header");
        }
        store.base_seq_ = static_cast<std::uint64_t>(base->as_int());
    }
    if (!records->is_list()) {
        throw Error("event store snapshot: expected a list of records, got " +
                    std::string(rt::Value::kind_name(records->kind())));
    }
    for (const rt::Value& rec : records->as_list()) {
        if (!rec.is_dict()) {
            throw Error("event store snapshot: record is not a dict");
        }
        const rt::Dict& d = rec.as_dict();
        const rt::Value* source = d.find("source");
        const rt::Value* at_ns = d.find("at_ns");
        const rt::Value* data = d.find("data");
        if (!source || !source->is_str()) {
            throw Error("event store snapshot: record missing string 'source'");
        }
        if (!at_ns || !at_ns->is_int()) {
            throw Error("event store snapshot: record missing int 'at_ns'");
        }
        if (!data) {
            throw Error("event store snapshot: record missing 'data'");
        }
        store.append(source->as_str(), SimTime{at_ns->as_int()}, *data);
    }
    return store;
}

ReplayCursor::ReplayCursor(std::vector<Record> records) : records_(std::move(records)) {
    std::sort(records_.begin(), records_.end(),
              [](const Record& a, const Record& b) { return a.at < b.at; });
}

Record ReplayCursor::next() {
    if (done()) throw Error("replay cursor exhausted");
    return records_[pos_++];
}

Duration ReplayCursor::gap_before_next(double time_scale) const {
    if (pos_ == 0 || done()) return Duration{0};
    auto gap = records_[pos_].at - records_[pos_ - 1].at;
    return Duration{static_cast<std::int64_t>(static_cast<double>(gap.count()) * time_scale)};
}

}  // namespace pmp::db
