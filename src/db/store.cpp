#include "db/store.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace pmp::db {

std::uint64_t EventStore::append(std::string source, SimTime at, rt::Value data) {
    Record rec;
    rec.seq = records_.size() + 1;
    rec.source = std::move(source);
    rec.at = at;
    rec.data = std::move(data);
    records_.push_back(std::move(rec));
    return records_.back().seq;
}

std::vector<Record> EventStore::query(const Query& q) const {
    std::vector<Record> out;
    for (const Record& rec : records_) {
        if (out.size() >= q.limit) break;
        if (q.source && rec.source != *q.source) continue;
        if (q.from && rec.at < *q.from) continue;
        if (q.until && rec.at >= *q.until) continue;
        out.push_back(rec);
    }
    return out;
}

std::vector<std::string> EventStore::sources() const {
    std::set<std::string> seen;
    for (const Record& rec : records_) seen.insert(rec.source);
    return {seen.begin(), seen.end()};
}

const Record& EventStore::at(std::uint64_t seq) const {
    if (seq == 0 || seq > records_.size()) {
        throw Error("no record with seq " + std::to_string(seq));
    }
    return records_[seq - 1];
}

Bytes EventStore::snapshot() const {
    rt::List out;
    out.reserve(records_.size());
    for (const Record& rec : records_) {
        rt::Dict d{{"source", rt::Value{rec.source}},
                   {"at_ns", rt::Value{rec.at.ns}},
                   {"data", rec.data}};
        out.push_back(rt::Value{std::move(d)});
    }
    return rt::Value{std::move(out)}.encode();
}

EventStore EventStore::restore(std::span<const std::uint8_t> snapshot) {
    EventStore store;
    rt::Value v = rt::Value::decode(snapshot);
    for (const rt::Value& rec : v.as_list()) {
        const rt::Dict& d = rec.as_dict();
        store.append(d.at("source").as_str(), SimTime{d.at("at_ns").as_int()},
                     d.at("data"));
    }
    return store;
}

ReplayCursor::ReplayCursor(std::vector<Record> records) : records_(std::move(records)) {
    std::sort(records_.begin(), records_.end(),
              [](const Record& a, const Record& b) { return a.at < b.at; });
}

Record ReplayCursor::next() {
    if (done()) throw Error("replay cursor exhausted");
    return records_[pos_++];
}

Duration ReplayCursor::gap_before_next(double time_scale) const {
    if (pos_ == 0 || done()) return Duration{0};
    auto gap = records_[pos_].at - records_[pos_ - 1].at;
    return Duration{static_cast<std::int64_t>(static_cast<double>(gap.count()) * time_scale)};
}

}  // namespace pmp::db
