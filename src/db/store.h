// The database associated with a production hall (paper §3.3, §4.4-4.5).
//
// The hardware-monitoring extension posts every intercepted motor action to
// its base station, which persists it here. The Fig 6 monitoring tool then
// queries by robot and time range, and the remote-replication / simulation
// applications replay selected ranges.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "rt/value.h"

namespace pmp::db {

/// One recorded event: who reported it, when (virtual time), and an
/// arbitrary structured payload (for motor actions: method, args, duration).
struct Record {
    std::uint64_t seq = 0;     ///< assigned by the store, strictly increasing
    std::string source;        ///< reporting node label, e.g. "robot:1:1"
    SimTime at;                ///< when the event happened
    rt::Value data;
};

/// Query predicate; unset fields match everything.
struct Query {
    std::optional<std::string> source;
    std::optional<SimTime> from;   // inclusive
    std::optional<SimTime> until;  // exclusive
    std::size_t limit = SIZE_MAX;
};

/// Retention policy: the hall event log must not grow without bound
/// across epochs. Zero fields are unlimited. When a cap is exceeded the
/// oldest records are trimmed (counter `db.eventstore.compactions`);
/// sequence numbers are never reused — trimmed seqs simply no longer
/// resolve.
struct Retention {
    std::size_t max_records = 0;  ///< keep at most this many records
    std::size_t max_bytes = 0;    ///< keep at most ~this many payload bytes
};

/// Append-only event store with per-source indexing.
class EventStore {
public:
    /// Append and return the assigned sequence number.
    std::uint64_t append(std::string source, SimTime at, rt::Value data);

    std::vector<Record> query(const Query& q) const;

    /// Distinct sources seen so far (the Fig 6 tool's robot list).
    std::vector<std::string> sources() const;

    std::size_t size() const { return records_.size(); }
    const Record& at(std::uint64_t seq) const;

    /// Install a retention policy (label tags the compaction counter,
    /// typically the owning node's label). Applies immediately and on
    /// every subsequent append.
    void set_retention(Retention retention, std::string label = {});
    const Retention& retention() const { return retention_; }

    /// Sequence number of the oldest retained record, or base_seq()+1 ==
    /// next assigned seq when empty. Seqs at or below base_seq() were
    /// trimmed by retention.
    std::uint64_t base_seq() const { return base_seq_; }

    /// Serialize the whole store (canonical Value encoding) — the hall's
    /// database surviving a base-station restart.
    Bytes snapshot() const;
    /// Rebuild from snapshot() bytes. Malformed or hostile input raises a
    /// typed pmp::Error describing what was wrong — never an unstructured
    /// escape from the decoder.
    static EventStore restore(std::span<const std::uint8_t> snapshot);

    /// Observer invoked after every append — how the extension base
    /// journals hall records as they arrive. Pass nullptr to detach.
    void set_append_hook(std::function<void(const Record&)> fn) {
        append_hook_ = std::move(fn);
    }

private:
    void apply_retention();
    static std::size_t approx_size(const Record& rec);

    std::vector<Record> records_;  // seq == base_seq_ + index + 1
    std::uint64_t base_seq_ = 0;   // seqs <= base_seq_ were trimmed
    Retention retention_;
    std::string label_;
    std::vector<std::size_t> sizes_;  // parallel to records_; only kept
                                      // while byte retention is active
    std::size_t bytes_ = 0;
    std::function<void(const Record&)> append_hook_;
};

/// Replays a queried range in order, preserving relative timing — the
/// paper's simulation feature ("replay the sequence of movements of all
/// robots at the right relative time").
class ReplayCursor {
public:
    explicit ReplayCursor(std::vector<Record> records);

    bool done() const { return pos_ >= records_.size(); }
    const Record& peek() const { return records_[pos_]; }
    Record next();

    /// Virtual-time gap between the previous record and the current one
    /// (zero for the first). Scales let replay run faster or slower.
    Duration gap_before_next(double time_scale = 1.0) const;

private:
    std::vector<Record> records_;
    std::size_t pos_ = 0;
};

}  // namespace pmp::db
