#include "db/journal.h"

#include <algorithm>
#include <array>
#include <iterator>

#include "obs/metrics.h"

namespace pmp::db {

namespace {

// Frame layout: [u32 payload length][u32 crc32(payload)][payload].
constexpr std::size_t kFrameHeader = 8;

// A batch frame's payload opens with this magic. The first byte is not a
// valid rt::Value tag (tags are 0..7), so no single-record payload can
// collide with it — legacy and batch frames interleave unambiguously.
constexpr std::array<std::uint8_t, 4> kBatchMagic = {0xB5, 'G', 'C', '1'};
// After the magic: [u32 record count][per record: u32 length][encoding]...
constexpr std::size_t kBatchHeader = kBatchMagic.size() + 4;

std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

void append_frame(Bytes& out, std::span<const std::uint8_t> payload) {
    append_u32(out, static_cast<std::uint32_t>(payload.size()));
    append_u32(out, crc32(payload));
    out.insert(out.end(), payload.begin(), payload.end());
}

void write_u32_at(Bytes& out, std::size_t pos, std::uint32_t v) {
    out[pos] = static_cast<std::uint8_t>(v >> 24);
    out[pos + 1] = static_cast<std::uint8_t>(v >> 16);
    out[pos + 2] = static_cast<std::uint8_t>(v >> 8);
    out[pos + 3] = static_cast<std::uint8_t>(v);
}

/// CRC-validate one frame at `data[pos...]`. Returns the payload span and
/// advances pos, or nullopt on a truncated or corrupt frame (pos untouched).
std::optional<std::span<const std::uint8_t>> read_frame_payload(
    std::span<const std::uint8_t> data, std::size_t& pos) {
    if (data.size() - pos < kFrameHeader) return std::nullopt;
    ByteReader reader(data.subspan(pos));
    std::uint32_t len = reader.read_u32();
    std::uint32_t crc = reader.read_u32();
    if (reader.remaining() < len) return std::nullopt;  // torn tail write
    std::span<const std::uint8_t> payload = reader.read(len);
    if (crc32(payload) != crc) return std::nullopt;
    pos += kFrameHeader + len;
    return payload;
}

bool is_batch_payload(std::span<const std::uint8_t> payload) {
    return payload.size() >= kBatchMagic.size() &&
           std::equal(kBatchMagic.begin(), kBatchMagic.end(), payload.begin());
}

/// Decode a CRC-valid WAL frame payload into `out`. A batch frame yields
/// its member records in order; a per-record frame yields one record.
/// False means the payload is malformed despite the CRC (collision or
/// hostile bytes) — the caller drops the whole frame, all-or-nothing.
bool decode_wal_payload(std::span<const std::uint8_t> payload,
                        std::vector<rt::Value>& out) {
    if (!is_batch_payload(payload)) {
        try {
            out.push_back(rt::Value::decode(payload));
            return true;
        } catch (const std::exception&) {
            return false;
        }
    }
    if (payload.size() < kBatchHeader) return false;
    ByteReader reader(payload.subspan(kBatchMagic.size()));
    std::uint32_t count = reader.read_u32();
    std::vector<rt::Value> records;
    records.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        if (reader.remaining() < 4) return false;
        std::uint32_t len = reader.read_u32();
        if (reader.remaining() < len) return false;
        try {
            records.push_back(rt::Value::decode(reader.read(len)));
        } catch (const std::exception&) {
            return false;
        }
    }
    if (reader.remaining() != 0) return false;  // trailing garbage
    std::move(records.begin(), records.end(), std::back_inserter(out));
    return true;
}

/// Decode one snapshot field: either a single legacy frame or a chunk
/// chain (manifest + N chunks, each its own CRC frame). nullopt on any
/// damage — the caller may fall back to the previous chain.
std::optional<rt::Value> read_snapshot_field(std::span<const std::uint8_t> field) {
    std::size_t pos = 0;
    auto first = read_frame_payload(field, pos);
    if (!first) return std::nullopt;
    rt::Value head;
    try {
        head = rt::Value::decode(*first);
    } catch (const std::exception&) {
        return std::nullopt;
    }
    const rt::Value* marker =
        head.is_dict() ? head.as_dict().find("__snap__") : nullptr;
    if (!marker) return head;  // legacy monolithic snapshot
    try {
        if (marker->as_str() != "manifest") return std::nullopt;
        const rt::Dict& m = head.as_dict();
        const std::int64_t chain = m.at("chain").as_int();
        const std::int64_t chunks = m.at("chunks").as_int();
        const std::uint64_t total = static_cast<std::uint64_t>(m.at("total").as_int());
        const auto want_crc = static_cast<std::uint32_t>(m.at("crc").as_int());
        if (chunks < 0 || total > field.size()) return std::nullopt;
        Bytes data;
        data.reserve(total);
        for (std::int64_t i = 0; i < chunks; ++i) {
            auto payload = read_frame_payload(field, pos);
            if (!payload) return std::nullopt;
            rt::Value cv = rt::Value::decode(*payload);
            const rt::Dict& cd = cv.as_dict();
            if (cd.at("__snap__").as_str() != "chunk" ||
                cd.at("chain").as_int() != chain || cd.at("index").as_int() != i) {
                return std::nullopt;
            }
            const Bytes& blob = cd.at("data").as_blob();
            data.insert(data.end(), blob.begin(), blob.end());
        }
        if (data.size() != total || crc32(data) != want_crc) return std::nullopt;
        return rt::Value::decode(data);
    } catch (const std::exception&) {
        return std::nullopt;
    }
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::uint8_t b : data) {
        c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

Journal::Journal(std::shared_ptr<JournalStorage> storage)
    : Journal(std::move(storage), JournalConfig{}, nullptr) {}

Journal::Journal(std::shared_ptr<JournalStorage> storage, JournalConfig config,
                 sim::Simulator* sim)
    : storage_(std::move(storage)), config_(config), sim_(sim) {
    if (!storage_) storage_ = std::make_shared<JournalStorage>();
}

Journal::~Journal() {
    // A clean shutdown is not a crash: the pending group reaches the disk.
    if (powered_) flush();
    cancel_flush_timer();
}

Journal::Restored Journal::restore() const {
    Restored out;
    if (!storage_->snapshot.empty() || !storage_->snapshot_prev.empty()) {
        out.snapshot = read_snapshot_field(storage_->snapshot);
        if (!out.snapshot && !storage_->snapshot_prev.empty()) {
            out.snapshot = read_snapshot_field(storage_->snapshot_prev);
            if (out.snapshot) out.snapshot_fallback = true;
        }
        if (!out.snapshot) out.snapshot_corrupt = true;
    }
    std::span<const std::uint8_t> wal(storage_->wal);
    std::size_t pos = 0;
    while (pos < wal.size()) {
        std::size_t frame_start = pos;
        std::optional<std::span<const std::uint8_t>> payload =
            read_frame_payload(wal, pos);
        if (!payload || !decode_wal_payload(*payload, out.wal)) {
            // First bad frame: everything after it is unreadable too (frames
            // are not self-synchronising), so stop and report the loss.
            out.dropped_bytes = wal.size() - frame_start;
            out.tail_corrupt = true;
            break;
        }
    }
    auto& reg = obs::Registry::global();
    reg.counter("db.journal.restores", storage_->name).inc();
    reg.counter("db.journal.restored_records", storage_->name)
        .inc(static_cast<std::uint64_t>(out.wal.size()));
    if (out.snapshot_fallback) {
        reg.counter("db.journal.snapshot_fallbacks", storage_->name).inc();
    }
    if (out.dropped_bytes > 0) {
        reg.counter("db.journal.dropped_bytes", storage_->name)
            .inc(static_cast<std::uint64_t>(out.dropped_bytes));
    }
    return out;
}

void Journal::append(const rt::Value& record) {
    if (!powered_) return;
    ++wal_records_;
    if (!config_.batching()) {
        append_frame(storage_->wal, record.encode());
        obs::Registry::global().counter("db.journal.appends", storage_->name).inc();
        return;
    }
    if (pending_count_ == 0) {
        pending_.insert(pending_.end(), kBatchMagic.begin(), kBatchMagic.end());
        append_u32(pending_, 0);  // record count, patched at flush
    }
    const std::size_t len_pos = pending_.size();
    append_u32(pending_, 0);  // record length, patched below
    const std::size_t start = pending_.size();
    record.encode(pending_);
    write_u32_at(pending_, len_pos, static_cast<std::uint32_t>(pending_.size() - start));
    ++pending_count_;
    if (config_.batch_bytes > 0 && pending_.size() >= config_.batch_bytes) {
        flush();
    } else {
        arm_flush_timer();
    }
}

void Journal::flush() {
    cancel_flush_timer();
    if (!powered_ || pending_count_ == 0) return;
    write_u32_at(pending_, kBatchMagic.size(), static_cast<std::uint32_t>(pending_count_));
    append_frame(storage_->wal, pending_);
    auto& reg = obs::Registry::global();
    reg.counter("db.journal.appends", storage_->name)
        .inc(static_cast<std::uint64_t>(pending_count_));
    reg.counter("db.journal.batch_flushes", storage_->name).inc();
    pending_.clear();
    pending_count_ = 0;
}

void Journal::compact(const rt::Value& state) {
    if (!powered_) return;
    // Buffered records are superseded: `state` is built from the live
    // structures they already updated.
    pending_.clear();
    pending_count_ = 0;
    cancel_flush_timer();

    Bytes payload = state.encode();
    if (config_.snapshot_chunk_bytes > 0) {
        const std::size_t chunk = config_.snapshot_chunk_bytes;
        const std::uint64_t id = ++chain_counter_;
        const std::size_t chunks = (payload.size() + chunk - 1) / chunk;
        Bytes chain;
        chain.reserve(payload.size() + (chunks + 1) * 64);
        rt::Value manifest{rt::Dict{
            {"__snap__", rt::Value{std::string("manifest")}},
            {"chain", rt::Value{static_cast<std::int64_t>(id)}},
            {"chunks", rt::Value{static_cast<std::int64_t>(chunks)}},
            {"total", rt::Value{static_cast<std::int64_t>(payload.size())}},
            {"crc", rt::Value{static_cast<std::int64_t>(crc32(payload))}}}};
        append_frame(chain, manifest.encode());
        for (std::size_t i = 0; i < chunks; ++i) {
            const std::size_t off = i * chunk;
            const std::size_t n = std::min(chunk, payload.size() - off);
            rt::Value cv{rt::Dict{
                {"__snap__", rt::Value{std::string("chunk")}},
                {"chain", rt::Value{static_cast<std::int64_t>(id)}},
                {"index", rt::Value{static_cast<std::int64_t>(i)}},
                {"data",
                 rt::Value{Bytes(payload.begin() + static_cast<std::ptrdiff_t>(off),
                                 payload.begin() + static_cast<std::ptrdiff_t>(off + n))}}}};
            append_frame(chain, cv.encode());
        }
        // The old chain stays readable until the new one is complete on
        // the medium — a crash mid-compact degrades, never destroys.
        storage_->snapshot_prev = std::move(storage_->snapshot);
        storage_->snapshot = std::move(chain);
    } else {
        Bytes snap;
        append_frame(snap, payload);
        storage_->snapshot = std::move(snap);
        // A stale fallback chain must not resurrect pre-compact state.
        storage_->snapshot_prev.clear();
    }
    storage_->wal.clear();
    wal_records_ = 0;
    obs::Registry::global().counter("db.journal.compactions", storage_->name).inc();
}

void Journal::power_off() {
    powered_ = false;
    // Torn group: buffered records never reached the medium.
    pending_.clear();
    pending_count_ = 0;
    cancel_flush_timer();
}

void Journal::arm_flush_timer() {
    if (flush_armed_ || sim_ == nullptr || config_.batch_ms.count() <= 0) return;
    flush_armed_ = true;
    flush_timer_ = sim_->schedule_after(config_.batch_ms, [this] {
        flush_armed_ = false;
        flush();
    });
}

void Journal::cancel_flush_timer() {
    if (!flush_armed_) return;
    if (sim_ != nullptr) sim_->cancel(flush_timer_);
    flush_armed_ = false;
}

}  // namespace pmp::db
