#include "db/journal.h"

#include <array>

#include "obs/metrics.h"

namespace pmp::db {

namespace {

// Frame layout: [u32 payload length][u32 crc32(payload)][payload].
constexpr std::size_t kFrameHeader = 8;

std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

void append_frame(Bytes& out, const Bytes& payload) {
    append_u32(out, static_cast<std::uint32_t>(payload.size()));
    append_u32(out, crc32(payload));
    append(out, payload);
}

/// Decode one frame at `data[pos...]`. Returns the decoded value and
/// advances pos, or nullopt on a truncated / corrupt / undecodable frame
/// (pos untouched).
std::optional<rt::Value> read_frame(std::span<const std::uint8_t> data, std::size_t& pos) {
    if (data.size() - pos < kFrameHeader) return std::nullopt;
    ByteReader reader(data.subspan(pos));
    std::uint32_t len = reader.read_u32();
    std::uint32_t crc = reader.read_u32();
    if (reader.remaining() < len) return std::nullopt;  // torn tail write
    std::span<const std::uint8_t> payload = reader.read(len);
    if (crc32(payload) != crc) return std::nullopt;
    try {
        rt::Value v = rt::Value::decode(payload);
        pos += kFrameHeader + len;
        return v;
    } catch (const std::exception&) {
        return std::nullopt;  // CRC collision or hostile bytes: treat as corrupt
    }
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::uint8_t b : data) {
        c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

Journal::Journal(std::shared_ptr<JournalStorage> storage) : storage_(std::move(storage)) {
    if (!storage_) storage_ = std::make_shared<JournalStorage>();
}

Journal::Restored Journal::restore() const {
    Restored out;
    if (!storage_->snapshot.empty()) {
        std::size_t pos = 0;
        out.snapshot = read_frame(storage_->snapshot, pos);
        if (!out.snapshot) out.snapshot_corrupt = true;
    }
    std::span<const std::uint8_t> wal(storage_->wal);
    std::size_t pos = 0;
    while (pos < wal.size()) {
        std::optional<rt::Value> v = read_frame(wal, pos);
        if (!v) {
            // First bad frame: everything after it is unreadable too (frames
            // are not self-synchronising), so stop and report the loss.
            out.dropped_bytes = wal.size() - pos;
            out.tail_corrupt = true;
            break;
        }
        out.wal.push_back(std::move(*v));
    }
    auto& reg = obs::Registry::global();
    reg.counter("db.journal.restores", storage_->name).inc();
    reg.counter("db.journal.restored_records", storage_->name)
        .inc(static_cast<std::uint64_t>(out.wal.size()));
    if (out.dropped_bytes > 0) {
        reg.counter("db.journal.dropped_bytes", storage_->name)
            .inc(static_cast<std::uint64_t>(out.dropped_bytes));
    }
    return out;
}

void Journal::append(const rt::Value& record) {
    if (!powered_) return;
    append_frame(storage_->wal, record.encode());
    ++wal_records_;
    obs::Registry::global().counter("db.journal.appends", storage_->name).inc();
}

void Journal::compact(const rt::Value& state) {
    if (!powered_) return;
    Bytes snap;
    append_frame(snap, state.encode());
    storage_->snapshot = std::move(snap);
    storage_->wal.clear();
    wal_records_ = 0;
    obs::Registry::global().counter("db.journal.compactions", storage_->name).inc();
}

}  // namespace pmp::db
