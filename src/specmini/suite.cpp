#include "specmini/suite.h"

#include <cmath>
#include <map>

#include "common/error.h"
#include "common/rng.h"

namespace pmp::specmini {

using rt::List;
using rt::TypeKind;
using rt::Value;

namespace {

// ----------------------------------------------------------- compress ----

/// Run-length compressor state: counts produced output bytes.
struct CompressState {
    int last = -1;
    std::uint32_t run = 0;
    std::uint64_t out_bytes = 0;

    std::int64_t put(std::int64_t byte) {
        if (byte == last && run < 255) {
            ++run;
            return 0;
        }
        std::int64_t emitted = last >= 0 ? 2 : 0;  // (value, count) pair
        out_bytes += emitted;
        last = static_cast<int>(byte);
        run = 1;
        return emitted;
    }
};

// ----------------------------------------------------------------- db ----

struct DbState {
    std::map<std::int64_t, std::int64_t> table;
};

// ---------------------------------------------------------------- ray ----

struct RayState {
    // A fixed little scene of spheres: (cx, cy, cz, r).
    static constexpr double spheres[4][4] = {
        {0, 0, 5, 1}, {2, 1, 8, 2}, {-3, -1, 12, 1.5}, {1, -2, 6, 0.5}};

    /// Nearest positive intersection distance, or -1.
    double trace(double ox, double oy, double dx, double dy) const {
        double dz = 1.0;
        double norm = std::sqrt(dx * dx + dy * dy + dz * dz);
        dx /= norm;
        dy /= norm;
        dz /= norm;
        double best = -1.0;
        for (const auto& s : spheres) {
            double lx = s[0] - ox, ly = s[1] - oy, lz = s[2];
            double tca = lx * dx + ly * dy + lz * dz;
            if (tca < 0) continue;
            double d2 = lx * lx + ly * ly + lz * lz - tca * tca;
            double r2 = s[3] * s[3];
            if (d2 > r2) continue;
            double thc = std::sqrt(r2 - d2);
            double t = tca - thc;
            if (t > 0 && (best < 0 || t < best)) best = t;
        }
        return best;
    }
};

// -------------------------------------------------------------- parse ----

/// Tiny tokenizer: counts identifiers, numbers and punctuation in a
/// character stream.
struct ParseState {
    enum class In { kNone, kWord, kNumber } in = In::kNone;
    std::uint64_t tokens = 0;

    std::int64_t feed(std::int64_t c) {
        bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
        bool digit = c >= '0' && c <= '9';
        std::int64_t completed = 0;
        if (alpha) {
            if (in != In::kWord) {
                if (in != In::kNone) completed = 1;
                in = In::kWord;
            }
        } else if (digit) {
            if (in == In::kNone) in = In::kNumber;
            // digits extend words too
        } else {
            if (in != In::kNone) completed = 1;
            in = In::kNone;
            if (c > ' ') ++tokens;  // punctuation is its own token
        }
        tokens += completed;
        return completed;
    }
};

void register_types(rt::Runtime& runtime) {
    if (runtime.find_type("SpecCompress")) return;

    runtime.register_type(
        rt::TypeInfo::Builder("SpecCompress")
            .method("put", TypeKind::kInt, {{"byte", TypeKind::kInt}},
                    [](rt::ServiceObject& self, List& args) -> Value {
                        return Value{self.state<CompressState>().put(args[0].as_int())};
                    })
            .method("out_bytes", TypeKind::kInt, {},
                    [](rt::ServiceObject& self, List&) -> Value {
                        return Value{
                            static_cast<std::int64_t>(self.state<CompressState>().out_bytes)};
                    })
            .build());

    runtime.register_type(
        rt::TypeInfo::Builder("SpecDb")
            .method("insert", TypeKind::kVoid,
                    {{"key", TypeKind::kInt}, {"value", TypeKind::kInt}},
                    [](rt::ServiceObject& self, List& args) -> Value {
                        self.state<DbState>().table[args[0].as_int()] = args[1].as_int();
                        return Value{};
                    })
            .method("get", TypeKind::kInt, {{"key", TypeKind::kInt}},
                    [](rt::ServiceObject& self, List& args) -> Value {
                        auto& table = self.state<DbState>().table;
                        auto it = table.find(args[0].as_int());
                        return Value{it == table.end() ? std::int64_t{-1} : it->second};
                    })
            .method("count_gt", TypeKind::kInt, {{"threshold", TypeKind::kInt}},
                    [](rt::ServiceObject& self, List& args) -> Value {
                        auto& table = self.state<DbState>().table;
                        std::int64_t n = 0;
                        for (auto it = table.upper_bound(args[0].as_int());
                             it != table.end(); ++it) {
                            ++n;
                        }
                        return Value{n};
                    })
            .build());

    runtime.register_type(
        rt::TypeInfo::Builder("SpecRay")
            .method("trace", TypeKind::kReal,
                    {{"ox", TypeKind::kReal},
                     {"oy", TypeKind::kReal},
                     {"dx", TypeKind::kReal},
                     {"dy", TypeKind::kReal}},
                    [](rt::ServiceObject& self, List& args) -> Value {
                        return Value{self.state<RayState>().trace(
                            args[0].as_real(), args[1].as_real(), args[2].as_real(),
                            args[3].as_real())};
                    })
            .build());

    runtime.register_type(
        rt::TypeInfo::Builder("SpecParse")
            .method("feed", TypeKind::kInt, {{"char", TypeKind::kInt}},
                    [](rt::ServiceObject& self, List& args) -> Value {
                        return Value{self.state<ParseState>().feed(args[0].as_int())};
                    })
            .method("tokens", TypeKind::kInt, {},
                    [](rt::ServiceObject& self, List&) -> Value {
                        return Value{
                            static_cast<std::int64_t>(self.state<ParseState>().tokens)};
                    })
            .build());
}

/// Dispatch through the selected mode.
Value call(rt::ServiceObject& obj, rt::Method& method, List args, DispatchMode mode) {
    switch (mode) {
        case DispatchMode::kHooked: return method.invoke(obj, std::move(args));
        case DispatchMode::kHookedNoObs: return method.invoke_no_obs(obj, std::move(args));
        case DispatchMode::kUnhooked: break;
    }
    return method.invoke_unhooked(obj, std::move(args));
}

}  // namespace

Suite::Suite(rt::Runtime& runtime) : runtime_(runtime) {
    register_types(runtime_);
    auto get_or_create = [&](const char* type, const char* name) {
        if (auto existing = runtime_.find_object(name)) return existing;
        return runtime_.create(type, name);
    };
    compress_ = get_or_create("SpecCompress", "spec.compress");
    compress_->emplace_state<CompressState>();
    db_ = get_or_create("SpecDb", "spec.db");
    db_->emplace_state<DbState>();
    ray_ = get_or_create("SpecRay", "spec.ray");
    ray_->emplace_state<RayState>();
    parse_ = get_or_create("SpecParse", "spec.parse");
    parse_->emplace_state<ParseState>();
}

const std::vector<std::string>& Suite::kernel_names() {
    static const std::vector<std::string> names{"compress", "db", "ray", "parse"};
    return names;
}

KernelResult Suite::run(const std::string& kernel, std::uint64_t scale, DispatchMode mode) {
    Rng rng(0xC0FFEEull ^ std::hash<std::string>{}(kernel));
    KernelResult result{kernel, 0, 0};

    if (kernel == "compress") {
        compress_->emplace_state<CompressState>();  // fresh run
        rt::Method& put = *compress_->type().method("put");
        for (std::uint64_t i = 0; i < scale; ++i) {
            // Runs of repeated bytes with pseudo-random lengths.
            std::int64_t byte = static_cast<std::int64_t>(rng.next_below(16));
            std::uint64_t run = 1 + rng.next_below(8);
            for (std::uint64_t j = 0; j < run && i < scale; ++j, ++i) {
                result.checksum +=
                    static_cast<std::uint64_t>(call(*compress_, put, {Value{byte}}, mode).as_int());
                ++result.calls;
            }
        }
    } else if (kernel == "db") {
        db_->emplace_state<DbState>();
        rt::Method& insert = *db_->type().method("insert");
        rt::Method& get = *db_->type().method("get");
        rt::Method& count_gt = *db_->type().method("count_gt");
        for (std::uint64_t i = 0; i < scale; ++i) {
            std::int64_t key = static_cast<std::int64_t>(rng.next_below(1024));
            switch (rng.next_below(8)) {
                case 0:
                    call(*db_, insert, {Value{key}, Value{static_cast<std::int64_t>(i)}},
                         mode);
                    break;
                case 1:
                    result.checksum += static_cast<std::uint64_t>(
                        call(*db_, count_gt, {Value{key}}, mode).as_int());
                    break;
                default:
                    result.checksum += static_cast<std::uint64_t>(
                        call(*db_, get, {Value{key}}, mode).as_int() + 1);
                    break;
            }
            ++result.calls;
        }
    } else if (kernel == "ray") {
        rt::Method& trace = *ray_->type().method("trace");
        for (std::uint64_t i = 0; i < scale; ++i) {
            double ox = rng.next_double() * 4 - 2;
            double oy = rng.next_double() * 4 - 2;
            double dx = rng.next_double() - 0.5;
            double dy = rng.next_double() - 0.5;
            double t = call(*ray_, trace,
                            {Value{ox}, Value{oy}, Value{dx}, Value{dy}}, mode)
                           .as_real();
            result.checksum += t > 0 ? static_cast<std::uint64_t>(t * 1000) : 1;
            ++result.calls;
        }
    } else if (kernel == "parse") {
        parse_->emplace_state<ParseState>();
        rt::Method& feed = *parse_->type().method("feed");
        static const char kText[] =
            "let x1 = foo(bar, 42); while (x1 < 100) { x1 = x1 + qux_7; } // demo\n";
        for (std::uint64_t i = 0; i < scale; ++i) {
            std::int64_t c = kText[i % (sizeof(kText) - 1)];
            result.checksum +=
                static_cast<std::uint64_t>(call(*parse_, feed, {Value{c}}, mode).as_int());
            ++result.calls;
        }
    } else {
        throw Error("unknown specmini kernel '" + kernel + "'");
    }
    return result;
}

std::vector<KernelResult> Suite::run_all(std::uint64_t scale, DispatchMode mode) {
    std::vector<KernelResult> out;
    for (const std::string& kernel : kernel_names()) {
        out.push_back(run(kernel, scale, mode));
    }
    return out;
}

}  // namespace pmp::specmini
