// specmini: a SPECjvm98-flavoured synthetic workload suite (DESIGN.md E3).
//
// The paper measures the cost of carrying the adaptation platform — hooks
// present but no extensions woven — as ~7% on SPECjvm. We reproduce the
// measurement's structure with four kernels in the spirit of the SPECjvm98
// programs (compress, db, raytrace, and a parser in lieu of javac), each
// doing its work through metaobject dispatch so the presence of the minimal
// hook is on the measured path:
//
//   compress — RLE-style compressor fed one byte per call
//   db       — in-memory table: insert / point lookup / range count
//   ray      — ray-sphere intersection arithmetic per call
//   parse    — tokenizer state machine fed one character per call
//
// Each kernel runs in two dispatch modes: kUnhooked (platform absent — the
// baseline) and kHooked (platform active, nothing woven). Benchmarks may
// additionally weave advice through the kernels' types to reproduce the
// do-nothing-extension experiment (E2) at suite level.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rt/runtime.h"

namespace pmp::specmini {

enum class DispatchMode {
    kUnhooked,      ///< Method::invoke_unhooked — as if PROSE were absent
    kHooked,        ///< Method::invoke — normal platform dispatch
    kHookedNoObs,   ///< Method::invoke_no_obs — platform dispatch without the
                    ///< obs join-point counters (prices the instrumentation)
};

struct KernelResult {
    std::string name;
    std::uint64_t calls = 0;     ///< dispatched invocations performed
    std::uint64_t checksum = 0;  ///< mode-independent; guards against DCE and bugs
};

class Suite {
public:
    /// Registers the kernel service classes and creates one instance of
    /// each ("spec.compress", "spec.db", "spec.ray", "spec.parse").
    explicit Suite(rt::Runtime& runtime);

    static const std::vector<std::string>& kernel_names();

    /// Run one kernel at the given scale (roughly `scale` dispatched calls).
    /// Results are deterministic: same kernel+scale => same checksum in
    /// every mode.
    KernelResult run(const std::string& kernel, std::uint64_t scale, DispatchMode mode);

    /// Run all kernels; returns one result per kernel.
    std::vector<KernelResult> run_all(std::uint64_t scale, DispatchMode mode);

private:
    rt::Runtime& runtime_;
    std::shared_ptr<rt::ServiceObject> compress_;
    std::shared_ptr<rt::ServiceObject> db_;
    std::shared_ptr<rt::ServiceObject> ray_;
    std::shared_ptr<rt::ServiceObject> parse_;
};

}  // namespace pmp::specmini
