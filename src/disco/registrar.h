// Lookup service (the Jini registrar analog, paper §3.3 "service detection
// and brokerage").
//
// A Registrar runs on some node — typically the base station of a
// production hall — and brokers services for everything in radio range:
//
//   * services register under a type string with attributes, and receive a
//     *lease*: if the lease is not renewed, the registration evaporates.
//     Leasing is what gives MIDAS its locality in time and space.
//   * clients look up services by type.
//   * clients can *watch* a type: the registrar calls back (a remote event)
//     whenever a matching service appears or disappears. Watches are leased
//     too.
//
// The registrar is itself an ordinary ServiceObject named "registrar",
// invoked over RPC — so the middleware's own machinery can be adapted by
// aspects like any application service. Methods:
//
//   register(type str, attrs dict, duration_ms int) -> {service, lease, duration_ms}
//   renew(lease int, duration_ms int)               -> {ok, duration_ms}
//   cancel(lease int)                               -> bool
//   lookup(type str)                                -> [ {service, provider, type, attrs} ]
//   watch(type str, listener str, duration_ms int)  -> {lease}
//
// Watch events arrive as RPC calls notify(event dict) on the listener
// object exported by the watcher, with event = {type, appeared, item}.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "rt/rpc.h"

namespace pmp::disco {

class HashRing;

/// One registered service as seen in lookup results.
struct ServiceItem {
    ServiceId id;
    NodeId provider;
    std::string type;
    rt::Dict attributes;

    rt::Value to_value() const;
    static ServiceItem from_value(const rt::Value& v);
};

struct RegistrarConfig {
    Duration max_lease = seconds(10);      ///< grants are clamped to this
    Duration sweep_period = milliseconds(250);  ///< expiry scan granularity
    Duration announce_period = seconds(1);  ///< "disco.here" beacon period
    /// After a lease migrates to another shard, how long the old home
    /// remembers the forwarding address. A client renews at duration/2, so
    /// any live holder learns the new home well inside the grace window;
    /// after it, a renew against the old home simply fails (and the holder
    /// re-registers through its ring, which already points at the new
    /// shard).
    Duration moved_grace = seconds(30);
};

class Registrar {
public:
    /// Attaches to the node's router/RPC and starts announcing.
    Registrar(net::MessageRouter& router, rt::RpcEndpoint& rpc, RegistrarConfig config = {});
    ~Registrar();

    Registrar(const Registrar&) = delete;
    Registrar& operator=(const Registrar&) = delete;

    /// Local (same-node) lookup.
    std::vector<ServiceItem> lookup(const std::string& type) const;

    /// Allocation-free local iteration over one type's registrations (the
    /// extension base's per-tick orphan scan runs here; at fleet scale the
    /// vector-returning lookup() costs O(cell) allocations per tick).
    void for_each(const std::string& type,
                  const std::function<void(const ServiceItem&)>& fn) const;

    /// Shard rebalance: batch-migrate every leased registration AND remote
    /// watch whose type key hashes to another shard under `ring` (one RPC
    /// per target registrar, remaining lease durations preserved). Call
    /// after a shard joins the ring, or on the departing registrar — with
    /// a ring that no longer contains it — before it leaves. Holders
    /// renewing against this registrar are redirected to their lease's new
    /// home (see RegistrarConfig::moved_grace). Watches must move with the
    /// registrations: new registrations of the type route to the new
    /// owner, so a watch left behind would keep renewing successfully yet
    /// silently never fire again. Permanent registrations never move: they
    /// share fate with their host registrar.
    void rebalance(const HashRing& ring);

    struct ShardStats {
        std::uint64_t migrated_out = 0;  ///< registrations shipped to another shard
        std::uint64_t migrated_in = 0;   ///< registrations accepted from another shard
        std::uint64_t watches_migrated_out = 0;  ///< remote watches shipped out
        std::uint64_t watches_migrated_in = 0;   ///< remote watches accepted
        std::uint64_t moved_redirects = 0;  ///< renew/cancel answered with a forward
    };
    const ShardStats& shard_stats() const { return shard_stats_; }

    /// Register a service co-located with the registrar, without a lease:
    /// host and registrar share fate, so renewal would be a formality.
    /// Used for infrastructure services (e.g. a tuple-space host on the
    /// base station).
    ServiceId register_permanent(const std::string& type, rt::Dict attributes);

    /// Local watch; fires on appearance (appeared=true) and on cancellation
    /// or lease expiry (appeared=false). Returns a token for unwatch.
    using WatchFn = std::function<void(const ServiceItem&, bool appeared)>;
    std::uint64_t watch_local(const std::string& type, WatchFn fn);
    void unwatch_local(std::uint64_t token);

    std::size_t registration_count() const { return services_.size(); }

private:
    struct Registration {
        ServiceItem item;
        LeaseId lease;
        SimTime expires;
    };
    struct RemoteWatch {
        std::string type;
        NodeId watcher;
        std::string listener;  // instance name on the watcher node
        LeaseId lease;
        SimTime expires;
    };
    struct LocalWatch {
        std::string type;
        WatchFn fn;
    };

    /// Forwarding address for a lease that migrated to another shard.
    struct MovedLease {
        NodeId new_home;
        LeaseId new_lease;
        SimTime forget_at;  ///< moved_grace after the migration
    };

    void build_service_object();
    Duration clamp(std::int64_t duration_ms) const;
    void sweep();
    void announce();
    void notify_watchers(const ServiceItem& item, bool appeared);
    void remove_registration(std::map<ServiceId, Registration>::iterator it, bool notify);
    void index_add(const Registration& reg);
    void index_remove(const Registration& reg);
    void migrate_batch(NodeId target, std::vector<ServiceId> sids,
                       std::vector<LeaseId> watch_leases);

    rt::Value do_register(NodeId provider, const std::string& type, rt::Dict attrs,
                          std::int64_t duration_ms);
    rt::Value do_renew(std::uint64_t lease, std::int64_t duration_ms);
    bool do_cancel(std::uint64_t lease);
    rt::Value do_lookup(const std::string& type) const;
    rt::Value do_watch(NodeId watcher, const std::string& type, const std::string& listener,
                       std::int64_t duration_ms);
    rt::Value do_migrate(NodeId source, const rt::List& entries);

    net::MessageRouter& router_;
    rt::RpcEndpoint& rpc_;
    RegistrarConfig config_;

    IdGenerator<ServiceId> service_ids_;
    IdGenerator<LeaseId> lease_ids_;
    std::map<ServiceId, Registration> services_;
    std::map<LeaseId, ServiceId> service_by_lease_;
    /// Type -> registrations of that type: lookups and the per-tick
    /// for_each scan cost O(matching), not O(all registrations).
    std::map<std::string, std::set<ServiceId>> by_type_;
    std::map<LeaseId, MovedLease> moved_;  ///< migrated out; swept by grace
    ShardStats shard_stats_;
    std::map<LeaseId, RemoteWatch> remote_watches_;
    std::map<std::uint64_t, LocalWatch> local_watches_;
    std::uint64_t next_local_watch_ = 0;

    sim::TimerId sweep_timer_;
    sim::TimerId announce_timer_;
    std::shared_ptr<rt::ServiceObject> self_object_;
};

}  // namespace pmp::disco
