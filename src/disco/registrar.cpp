#include "disco/registrar.h"

#include "common/error.h"
#include "common/log.h"

namespace pmp::disco {

using rt::Dict;
using rt::List;
using rt::Value;

rt::Value ServiceItem::to_value() const {
    Dict d{{"service", Value{static_cast<std::int64_t>(id.value)}},
           {"provider", Value{static_cast<std::int64_t>(provider.value)}},
           {"type", Value{type}},
           {"attrs", Value{attributes}}};
    return Value{std::move(d)};
}

ServiceItem ServiceItem::from_value(const rt::Value& v) {
    const Dict& d = v.as_dict();
    ServiceItem item;
    item.id = ServiceId{static_cast<std::uint64_t>(d.at("service").as_int())};
    item.provider = NodeId{static_cast<std::uint64_t>(d.at("provider").as_int())};
    item.type = d.at("type").as_str();
    item.attributes = d.at("attrs").as_dict();
    return item;
}

Registrar::Registrar(net::MessageRouter& router, rt::RpcEndpoint& rpc, RegistrarConfig config)
    : router_(router), rpc_(rpc), config_(config) {
    build_service_object();

    // Discovery: answer probes and beacon periodically so roaming nodes
    // notice the registrar quickly after entering range.
    router_.route("disco.probe", [this](const net::Message& msg) {
        router_.send(msg.from, "disco.here", {});
    });
    announce_timer_ =
        router_.simulator().schedule_every(config_.announce_period, [this]() { announce(); });
    sweep_timer_ =
        router_.simulator().schedule_every(config_.sweep_period, [this]() { sweep(); });
}

Registrar::~Registrar() {
    router_.simulator().cancel(announce_timer_);
    router_.simulator().cancel(sweep_timer_);
    router_.unroute("disco.probe");
}

void Registrar::announce() { router_.broadcast("disco.here", {}); }

Duration Registrar::clamp(std::int64_t duration_ms) const {
    if (duration_ms <= 0) return config_.max_lease;
    Duration want = milliseconds(duration_ms);
    return want > config_.max_lease ? config_.max_lease : want;
}

void Registrar::build_service_object() {
    using rt::TypeKind;
    auto& runtime = rpc_.runtime();
    if (!runtime.find_type("Registrar")) {
        auto type =
            rt::TypeInfo::Builder("Registrar")
                .method("register", TypeKind::kDict,
                        {{"type", TypeKind::kStr},
                         {"attrs", TypeKind::kDict},
                         {"duration_ms", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return do_register(rpc_.current_caller(), args[0].as_str(),
                                               args[1].as_dict(), args[2].as_int());
                        })
                .method("renew", TypeKind::kDict,
                        {{"lease", TypeKind::kInt}, {"duration_ms", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return do_renew(static_cast<std::uint64_t>(args[0].as_int()),
                                            args[1].as_int());
                        })
                .method("cancel", TypeKind::kBool, {{"lease", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return Value{do_cancel(static_cast<std::uint64_t>(args[0].as_int()))};
                        })
                .method("lookup", TypeKind::kList, {{"type", TypeKind::kStr}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return do_lookup(args[0].as_str());
                        })
                .method("watch", TypeKind::kDict,
                        {{"type", TypeKind::kStr},
                         {"listener", TypeKind::kStr},
                         {"duration_ms", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return do_watch(rpc_.current_caller(), args[0].as_str(),
                                            args[1].as_str(), args[2].as_int());
                        })
                .build();
        runtime.register_type(type);
    }
    self_object_ = runtime.create("Registrar", "registrar");
    rpc_.export_object("registrar");
}

Value Registrar::do_register(NodeId provider, const std::string& type, Dict attrs,
                             std::int64_t duration_ms) {
    if (!provider.valid()) {
        // Local registration (same node as the registrar, no RPC hop).
        provider = router_.self();
    }
    Duration granted = clamp(duration_ms);
    Registration reg;
    reg.item = ServiceItem{service_ids_.next(), provider, type, std::move(attrs)};
    reg.lease = lease_ids_.next();
    reg.expires = router_.simulator().now() + granted;
    ServiceId sid = reg.item.id;
    LeaseId lease = reg.lease;
    ServiceItem item = reg.item;
    services_.emplace(sid, std::move(reg));
    service_by_lease_.emplace(lease, sid);

    log_debug(router_.simulator().now(), "registrar",
              "registered ", type, " from node ", provider.str());
    notify_watchers(item, true);

    Dict out{{"service", Value{static_cast<std::int64_t>(sid.value)}},
             {"lease", Value{static_cast<std::int64_t>(lease.value)}},
             {"duration_ms", Value{static_cast<std::int64_t>(
                                 granted.count() / 1'000'000)}}};
    return Value{std::move(out)};
}

Value Registrar::do_renew(std::uint64_t lease, std::int64_t duration_ms) {
    Duration granted = clamp(duration_ms);
    LeaseId lid{lease};
    if (auto it = service_by_lease_.find(lid); it != service_by_lease_.end()) {
        services_.at(it->second).expires = router_.simulator().now() + granted;
    } else if (auto wit = remote_watches_.find(lid); wit != remote_watches_.end()) {
        wit->second.expires = router_.simulator().now() + granted;
    } else {
        Dict out{{"ok", Value{false}}, {"duration_ms", Value{std::int64_t{0}}}};
        return Value{std::move(out)};
    }
    Dict out{{"ok", Value{true}},
             {"duration_ms",
              Value{static_cast<std::int64_t>(granted.count() / 1'000'000)}}};
    return Value{std::move(out)};
}

bool Registrar::do_cancel(std::uint64_t lease) {
    LeaseId lid{lease};
    if (auto it = service_by_lease_.find(lid); it != service_by_lease_.end()) {
        auto sit = services_.find(it->second);
        service_by_lease_.erase(it);
        if (sit != services_.end()) remove_registration(sit, /*notify=*/true);
        return true;
    }
    return remote_watches_.erase(lid) > 0;
}

Value Registrar::do_lookup(const std::string& type) const {
    List out;
    for (const auto& [_, reg] : services_) {
        if (reg.item.type == type) out.push_back(reg.item.to_value());
    }
    return Value{std::move(out)};
}

Value Registrar::do_watch(NodeId watcher, const std::string& type,
                          const std::string& listener, std::int64_t duration_ms) {
    if (!watcher.valid()) watcher = router_.self();
    Duration granted = clamp(duration_ms);
    RemoteWatch watch{type, watcher, listener, lease_ids_.next(),
                      router_.simulator().now() + granted};
    LeaseId lease = watch.lease;
    remote_watches_.emplace(lease, std::move(watch));

    // Jini semantics: a new watcher immediately learns about services that
    // are already present, delivered asynchronously as events.
    for (const auto& [_, reg] : services_) {
        if (reg.item.type != type) continue;
        Dict event{{"type", Value{type}}, {"appeared", Value{true}}, {"item", reg.item.to_value()}};
        rpc_.call_async(watcher, listener, "notify", {Value{std::move(event)}},
                        [](Value, std::exception_ptr) {});
    }

    Dict out{{"lease", Value{static_cast<std::int64_t>(lease.value)}},
             {"duration_ms",
              Value{static_cast<std::int64_t>(granted.count() / 1'000'000)}}};
    return Value{std::move(out)};
}

ServiceId Registrar::register_permanent(const std::string& type, rt::Dict attributes) {
    Registration reg;
    reg.item = ServiceItem{service_ids_.next(), router_.self(), type, std::move(attributes)};
    reg.lease = lease_ids_.next();
    reg.expires = SimTime::max();
    ServiceId sid = reg.item.id;
    ServiceItem item = reg.item;
    service_by_lease_.emplace(reg.lease, sid);
    services_.emplace(sid, std::move(reg));
    notify_watchers(item, true);
    return sid;
}

std::vector<ServiceItem> Registrar::lookup(const std::string& type) const {
    std::vector<ServiceItem> out;
    for (const auto& [_, reg] : services_) {
        if (reg.item.type == type) out.push_back(reg.item);
    }
    return out;
}

std::uint64_t Registrar::watch_local(const std::string& type, WatchFn fn) {
    std::uint64_t token = ++next_local_watch_;
    local_watches_.emplace(token, LocalWatch{type, std::move(fn)});
    // Catch up on already-present services, mirroring remote watch
    // semantics (but synchronously; the caller is local).
    for (const auto& [_, reg] : services_) {
        if (reg.item.type == type) local_watches_.at(token).fn(reg.item, true);
    }
    return token;
}

void Registrar::unwatch_local(std::uint64_t token) { local_watches_.erase(token); }

void Registrar::notify_watchers(const ServiceItem& item, bool appeared) {
    for (const auto& [_, watch] : local_watches_) {
        if (watch.type == item.type) watch.fn(item, appeared);
    }
    for (const auto& [_, watch] : remote_watches_) {
        if (watch.type != item.type) continue;
        Dict event{{"type", Value{item.type}},
                   {"appeared", Value{appeared}},
                   {"item", item.to_value()}};
        rpc_.call_async(watch.watcher, watch.listener, "notify", {Value{std::move(event)}},
                        [](Value, std::exception_ptr) {});
    }
}

void Registrar::remove_registration(std::map<ServiceId, Registration>::iterator it,
                                    bool notify) {
    ServiceItem item = it->second.item;
    service_by_lease_.erase(it->second.lease);
    services_.erase(it);
    if (notify) notify_watchers(item, false);
}

void Registrar::sweep() {
    SimTime now = router_.simulator().now();
    for (auto it = services_.begin(); it != services_.end();) {
        if (it->second.expires <= now) {
            log_debug(now, "registrar", "lease expired for ", it->second.item.type,
                      " from node ", it->second.item.provider.str());
            auto doomed = it++;
            remove_registration(doomed, /*notify=*/true);
        } else {
            ++it;
        }
    }
    std::erase_if(remote_watches_,
                  [now](const auto& entry) { return entry.second.expires <= now; });
}

}  // namespace pmp::disco
