#include "disco/registrar.h"

#include "common/error.h"
#include "common/log.h"
#include "disco/shard.h"

namespace pmp::disco {

using rt::Dict;
using rt::List;
using rt::Value;

rt::Value ServiceItem::to_value() const {
    Dict d{{"service", Value{static_cast<std::int64_t>(id.value)}},
           {"provider", Value{static_cast<std::int64_t>(provider.value)}},
           {"type", Value{type}},
           {"attrs", Value{attributes}}};
    return Value{std::move(d)};
}

ServiceItem ServiceItem::from_value(const rt::Value& v) {
    const Dict& d = v.as_dict();
    ServiceItem item;
    item.id = ServiceId{static_cast<std::uint64_t>(d.at("service").as_int())};
    item.provider = NodeId{static_cast<std::uint64_t>(d.at("provider").as_int())};
    item.type = d.at("type").as_str();
    item.attributes = d.at("attrs").as_dict();
    return item;
}

Registrar::Registrar(net::MessageRouter& router, rt::RpcEndpoint& rpc, RegistrarConfig config)
    : router_(router), rpc_(rpc), config_(config) {
    build_service_object();

    // Discovery: answer probes and beacon periodically so roaming nodes
    // notice the registrar quickly after entering range.
    router_.route("disco.probe", [this](const net::Message& msg) {
        router_.send(msg.from, "disco.here", {});
    });
    announce_timer_ =
        router_.simulator().schedule_every(config_.announce_period, [this]() { announce(); });
    sweep_timer_ =
        router_.simulator().schedule_every(config_.sweep_period, [this]() { sweep(); });
}

Registrar::~Registrar() {
    router_.simulator().cancel(announce_timer_);
    router_.simulator().cancel(sweep_timer_);
    router_.unroute("disco.probe");
}

void Registrar::announce() { router_.broadcast("disco.here", {}); }

Duration Registrar::clamp(std::int64_t duration_ms) const {
    if (duration_ms <= 0) return config_.max_lease;
    Duration want = milliseconds(duration_ms);
    return want > config_.max_lease ? config_.max_lease : want;
}

void Registrar::build_service_object() {
    using rt::TypeKind;
    auto& runtime = rpc_.runtime();
    if (!runtime.find_type("Registrar")) {
        auto type =
            rt::TypeInfo::Builder("Registrar")
                .method("register", TypeKind::kDict,
                        {{"type", TypeKind::kStr},
                         {"attrs", TypeKind::kDict},
                         {"duration_ms", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return do_register(rpc_.current_caller(), args[0].as_str(),
                                               args[1].as_dict(), args[2].as_int());
                        })
                .method("renew", TypeKind::kDict,
                        {{"lease", TypeKind::kInt}, {"duration_ms", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return do_renew(static_cast<std::uint64_t>(args[0].as_int()),
                                            args[1].as_int());
                        })
                .method("cancel", TypeKind::kBool, {{"lease", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return Value{do_cancel(static_cast<std::uint64_t>(args[0].as_int()))};
                        })
                .method("lookup", TypeKind::kList, {{"type", TypeKind::kStr}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return do_lookup(args[0].as_str());
                        })
                .method("watch", TypeKind::kDict,
                        {{"type", TypeKind::kStr},
                         {"listener", TypeKind::kStr},
                         {"duration_ms", TypeKind::kInt}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return do_watch(rpc_.current_caller(), args[0].as_str(),
                                            args[1].as_str(), args[2].as_int());
                        })
                .method("migrate", TypeKind::kList, {{"entries", TypeKind::kList}},
                        [this](rt::ServiceObject&, List& args) -> Value {
                            return do_migrate(rpc_.current_caller(), args[0].as_list());
                        })
                .build();
        runtime.register_type(type);
    }
    self_object_ = runtime.create("Registrar", "registrar");
    rpc_.export_object("registrar");
}

Value Registrar::do_register(NodeId provider, const std::string& type, Dict attrs,
                             std::int64_t duration_ms) {
    if (!provider.valid()) {
        // Local registration (same node as the registrar, no RPC hop).
        provider = router_.self();
    }
    Duration granted = clamp(duration_ms);
    Registration reg;
    reg.item = ServiceItem{service_ids_.next(), provider, type, std::move(attrs)};
    reg.lease = lease_ids_.next();
    reg.expires = router_.simulator().now() + granted;
    ServiceId sid = reg.item.id;
    LeaseId lease = reg.lease;
    ServiceItem item = reg.item;
    index_add(reg);
    services_.emplace(sid, std::move(reg));
    service_by_lease_.emplace(lease, sid);

    log_debug(router_.simulator().now(), "registrar",
              "registered ", type, " from node ", provider.str());
    notify_watchers(item, true);

    Dict out{{"service", Value{static_cast<std::int64_t>(sid.value)}},
             {"lease", Value{static_cast<std::int64_t>(lease.value)}},
             {"duration_ms", Value{static_cast<std::int64_t>(
                                 granted.count() / 1'000'000)}}};
    return Value{std::move(out)};
}

Value Registrar::do_renew(std::uint64_t lease, std::int64_t duration_ms) {
    Duration granted = clamp(duration_ms);
    LeaseId lid{lease};
    if (auto it = service_by_lease_.find(lid); it != service_by_lease_.end()) {
        services_.at(it->second).expires = router_.simulator().now() + granted;
    } else if (auto wit = remote_watches_.find(lid); wit != remote_watches_.end()) {
        wit->second.expires = router_.simulator().now() + granted;
    } else if (auto mit = moved_.find(lid); mit != moved_.end()) {
        // The lease migrated to another shard: hand the holder its new
        // home + new lease id; LeasedResource re-homes and renews there.
        ++shard_stats_.moved_redirects;
        Dict out{{"ok", Value{false}},
                 {"duration_ms", Value{std::int64_t{0}}},
                 {"moved_to",
                  Value{static_cast<std::int64_t>(mit->second.new_home.value)}},
                 {"moved_lease",
                  Value{static_cast<std::int64_t>(mit->second.new_lease.value)}}};
        return Value{std::move(out)};
    } else {
        Dict out{{"ok", Value{false}}, {"duration_ms", Value{std::int64_t{0}}}};
        return Value{std::move(out)};
    }
    Dict out{{"ok", Value{true}},
             {"duration_ms",
              Value{static_cast<std::int64_t>(granted.count() / 1'000'000)}}};
    return Value{std::move(out)};
}

bool Registrar::do_cancel(std::uint64_t lease) {
    LeaseId lid{lease};
    if (auto it = service_by_lease_.find(lid); it != service_by_lease_.end()) {
        auto sit = services_.find(it->second);
        service_by_lease_.erase(it);
        if (sit != services_.end()) remove_registration(sit, /*notify=*/true);
        return true;
    }
    if (auto mit = moved_.find(lid); mit != moved_.end()) {
        // Forward the cancellation to the lease's new home, best effort.
        ++shard_stats_.moved_redirects;
        rpc_.call_async(mit->second.new_home, "registrar", "cancel",
                        {Value{static_cast<std::int64_t>(mit->second.new_lease.value)}},
                        [](Value, std::exception_ptr) {});
        moved_.erase(mit);
        return true;
    }
    return remote_watches_.erase(lid) > 0;
}

Value Registrar::do_lookup(const std::string& type) const {
    List out;
    for_each(type, [&out](const ServiceItem& item) { out.push_back(item.to_value()); });
    return Value{std::move(out)};
}

void Registrar::for_each(const std::string& type,
                         const std::function<void(const ServiceItem&)>& fn) const {
    auto tit = by_type_.find(type);
    if (tit == by_type_.end()) return;
    for (ServiceId sid : tit->second) {
        auto sit = services_.find(sid);
        if (sit != services_.end()) fn(sit->second.item);
    }
}

void Registrar::index_add(const Registration& reg) {
    by_type_[reg.item.type].insert(reg.item.id);
}

void Registrar::index_remove(const Registration& reg) {
    auto tit = by_type_.find(reg.item.type);
    if (tit == by_type_.end()) return;
    tit->second.erase(reg.item.id);
    if (tit->second.empty()) by_type_.erase(tit);
}

void Registrar::rebalance(const HashRing& ring) {
    // Group the leased registrations — and the remote watches, which must
    // follow the registrations of their type or silently go deaf — whose
    // type now hashes elsewhere by their new owner, then ship one batched
    // migrate RPC per target.
    std::map<NodeId, std::pair<std::vector<ServiceId>, std::vector<LeaseId>>> outgoing;
    for (const auto& [sid, reg] : services_) {
        if (reg.expires == SimTime::max()) continue;  // permanent: shares fate
        NodeId owner = ring.owner(reg.item.type);
        if (!owner.valid() || owner == router_.self()) continue;
        outgoing[owner].first.push_back(sid);
    }
    for (const auto& [lease, watch] : remote_watches_) {
        NodeId owner = ring.owner(watch.type);
        if (!owner.valid() || owner == router_.self()) continue;
        outgoing[owner].second.push_back(lease);
    }
    for (auto& [target, batch] : outgoing) {
        migrate_batch(target, std::move(batch.first), std::move(batch.second));
    }
}

void Registrar::migrate_batch(NodeId target, std::vector<ServiceId> sids,
                              std::vector<LeaseId> watch_leases) {
    SimTime now = router_.simulator().now();
    List entries;
    std::vector<ServiceId> shipped;
    std::vector<LeaseId> shipped_watches;
    for (ServiceId sid : sids) {
        auto sit = services_.find(sid);
        if (sit == services_.end()) continue;
        const Registration& reg = sit->second;
        std::int64_t remaining_ms =
            reg.expires <= now ? 0 : (reg.expires - now).count() / 1'000'000;
        Dict entry{{"kind", Value{"reg"}},
                   {"type", Value{reg.item.type}},
                   {"attrs", Value{reg.item.attributes}},
                   {"provider", Value{static_cast<std::int64_t>(reg.item.provider.value)}},
                   {"remaining_ms", Value{remaining_ms}}};
        entries.push_back(Value{std::move(entry)});
        shipped.push_back(sid);
    }
    // Watch entries ride after the registrations; the reply's lease list
    // is aligned to this order.
    for (LeaseId lease : watch_leases) {
        auto wit = remote_watches_.find(lease);
        if (wit == remote_watches_.end()) continue;
        const RemoteWatch& watch = wit->second;
        std::int64_t remaining_ms =
            watch.expires <= now ? 0 : (watch.expires - now).count() / 1'000'000;
        Dict entry{{"kind", Value{"watch"}},
                   {"type", Value{watch.type}},
                   {"watcher", Value{static_cast<std::int64_t>(watch.watcher.value)}},
                   {"listener", Value{watch.listener}},
                   {"remaining_ms", Value{remaining_ms}}};
        entries.push_back(Value{std::move(entry)});
        shipped_watches.push_back(lease);
    }
    if (shipped.empty() && shipped_watches.empty()) return;

    rpc_.call_async(
        target, "registrar", "migrate", {Value{std::move(entries)}},
        [this, target, shipped = std::move(shipped),
         shipped_watches = std::move(shipped_watches)](Value reply, std::exception_ptr err) {
            if (err) {
                // Migration failed: the registrations and watches stay
                // home (their leases are still live here), and a later
                // rebalance can retry. Nothing was lost.
                log_debug(router_.simulator().now(), "registrar",
                          "migrate batch to ", target.str(), " failed; keeping entries");
                return;
            }
            const List& new_leases = reply.as_list();
            SimTime forget_at = router_.simulator().now() + config_.moved_grace;
            std::size_t i = 0;
            for (; i < shipped.size() && i < new_leases.size(); ++i) {
                auto sit = services_.find(shipped[i]);
                if (sit == services_.end()) continue;  // expired/cancelled meanwhile
                LeaseId old_lease = sit->second.lease;
                LeaseId new_lease{
                    static_cast<std::uint64_t>(new_leases[i].as_int())};
                moved_[old_lease] = MovedLease{target, new_lease, forget_at};
                remove_registration(sit, /*notify=*/true);
                ++shard_stats_.migrated_out;
            }
            for (std::size_t w = 0; w < shipped_watches.size() && i < new_leases.size();
                 ++w, ++i) {
                auto wit = remote_watches_.find(shipped_watches[w]);
                if (wit == remote_watches_.end()) continue;
                LeaseId new_lease{
                    static_cast<std::uint64_t>(new_leases[i].as_int())};
                moved_[wit->first] = MovedLease{target, new_lease, forget_at};
                remote_watches_.erase(wit);
                ++shard_stats_.watches_migrated_out;
            }
        });
}

Value Registrar::do_migrate(NodeId source, const List& entries) {
    SimTime now = router_.simulator().now();
    List new_leases;
    std::size_t regs = 0, watches = 0;
    for (const Value& v : entries) {
        const Dict& e = v.as_dict();
        if (const Value* kind = e.find("kind"); kind && kind->as_str() == "watch") {
            RemoteWatch watch{e.at("type").as_str(),
                              NodeId{static_cast<std::uint64_t>(e.at("watcher").as_int())},
                              e.at("listener").as_str(), lease_ids_.next(),
                              now + clamp(e.at("remaining_ms").as_int())};
            LeaseId lease = watch.lease;
            std::string type = watch.type;
            NodeId watcher = watch.watcher;
            std::string listener = watch.listener;
            remote_watches_.emplace(lease, std::move(watch));
            ++shard_stats_.watches_migrated_in;
            ++watches;
            new_leases.push_back(Value{static_cast<std::int64_t>(lease.value)});
            // Same catch-up as do_watch: services of the type may already
            // live here (registered fresh, or migrated in an earlier
            // batch). Duplicated appearance events are idempotent for
            // watchers by contract.
            for_each(type, [&](const ServiceItem& item) {
                Dict event{{"type", Value{type}},
                           {"appeared", Value{true}},
                           {"item", item.to_value()}};
                rpc_.call_async(watcher, listener, "notify", {Value{std::move(event)}},
                                [](Value, std::exception_ptr) {});
            });
            continue;
        }
        Registration reg;
        reg.item = ServiceItem{service_ids_.next(),
                               NodeId{static_cast<std::uint64_t>(e.at("provider").as_int())},
                               e.at("type").as_str(), e.at("attrs").as_dict()};
        reg.lease = lease_ids_.next();
        reg.expires = now + clamp(e.at("remaining_ms").as_int());
        ServiceId sid = reg.item.id;
        LeaseId lease = reg.lease;
        ServiceItem item = reg.item;
        new_leases.push_back(Value{static_cast<std::int64_t>(lease.value)});
        index_add(reg);
        services_.emplace(sid, std::move(reg));
        service_by_lease_.emplace(lease, sid);
        ++shard_stats_.migrated_in;
        ++regs;
        notify_watchers(item, true);
    }
    log_debug(now, "registrar", "accepted ", regs, " migrated registrations and ",
              watches, " watches from ", source.str());
    return Value{std::move(new_leases)};
}

Value Registrar::do_watch(NodeId watcher, const std::string& type,
                          const std::string& listener, std::int64_t duration_ms) {
    if (!watcher.valid()) watcher = router_.self();
    Duration granted = clamp(duration_ms);
    RemoteWatch watch{type, watcher, listener, lease_ids_.next(),
                      router_.simulator().now() + granted};
    LeaseId lease = watch.lease;
    remote_watches_.emplace(lease, std::move(watch));

    // Jini semantics: a new watcher immediately learns about services that
    // are already present, delivered asynchronously as events.
    for_each(type, [&](const ServiceItem& item) {
        Dict event{{"type", Value{type}}, {"appeared", Value{true}}, {"item", item.to_value()}};
        rpc_.call_async(watcher, listener, "notify", {Value{std::move(event)}},
                        [](Value, std::exception_ptr) {});
    });

    Dict out{{"lease", Value{static_cast<std::int64_t>(lease.value)}},
             {"duration_ms",
              Value{static_cast<std::int64_t>(granted.count() / 1'000'000)}}};
    return Value{std::move(out)};
}

ServiceId Registrar::register_permanent(const std::string& type, rt::Dict attributes) {
    Registration reg;
    reg.item = ServiceItem{service_ids_.next(), router_.self(), type, std::move(attributes)};
    reg.lease = lease_ids_.next();
    reg.expires = SimTime::max();
    ServiceId sid = reg.item.id;
    ServiceItem item = reg.item;
    service_by_lease_.emplace(reg.lease, sid);
    index_add(reg);
    services_.emplace(sid, std::move(reg));
    notify_watchers(item, true);
    return sid;
}

std::vector<ServiceItem> Registrar::lookup(const std::string& type) const {
    std::vector<ServiceItem> out;
    for_each(type, [&out](const ServiceItem& item) { out.push_back(item); });
    return out;
}

std::uint64_t Registrar::watch_local(const std::string& type, WatchFn fn) {
    std::uint64_t token = ++next_local_watch_;
    local_watches_.emplace(token, LocalWatch{type, std::move(fn)});
    // Catch up on already-present services, mirroring remote watch
    // semantics (but synchronously; the caller is local).
    for_each(type, [&](const ServiceItem& item) { local_watches_.at(token).fn(item, true); });
    return token;
}

void Registrar::unwatch_local(std::uint64_t token) { local_watches_.erase(token); }

void Registrar::notify_watchers(const ServiceItem& item, bool appeared) {
    for (const auto& [_, watch] : local_watches_) {
        if (watch.type == item.type) watch.fn(item, appeared);
    }
    for (const auto& [_, watch] : remote_watches_) {
        if (watch.type != item.type) continue;
        Dict event{{"type", Value{item.type}},
                   {"appeared", Value{appeared}},
                   {"item", item.to_value()}};
        rpc_.call_async(watch.watcher, watch.listener, "notify", {Value{std::move(event)}},
                        [](Value, std::exception_ptr) {});
    }
}

void Registrar::remove_registration(std::map<ServiceId, Registration>::iterator it,
                                    bool notify) {
    ServiceItem item = it->second.item;
    service_by_lease_.erase(it->second.lease);
    index_remove(it->second);
    services_.erase(it);
    if (notify) notify_watchers(item, false);
}

void Registrar::sweep() {
    SimTime now = router_.simulator().now();
    for (auto it = services_.begin(); it != services_.end();) {
        if (it->second.expires <= now) {
            log_debug(now, "registrar", "lease expired for ", it->second.item.type,
                      " from node ", it->second.item.provider.str());
            auto doomed = it++;
            remove_registration(doomed, /*notify=*/true);
        } else {
            ++it;
        }
    }
    std::erase_if(remote_watches_,
                  [now](const auto& entry) { return entry.second.expires <= now; });
    std::erase_if(moved_,
                  [now](const auto& entry) { return entry.second.forget_at <= now; });
}

}  // namespace pmp::disco
