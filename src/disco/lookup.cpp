#include "disco/lookup.h"

#include "common/hash.h"
#include "common/log.h"

namespace pmp::disco {

using rt::Dict;
using rt::List;
using rt::Value;

// ------------------------------------------------------ LeasedResource ----

LeasedResource::LeasedResource(rt::RpcEndpoint& rpc, NodeId registrar, LeaseId lease,
                               Duration duration, LostFn on_lost)
    : rpc_(rpc),
      registrar_(registrar),
      lease_(lease),
      duration_(duration),
      on_lost_(std::move(on_lost)) {
    expires_ = rpc_.router().simulator().now() + duration_;
    schedule_renewal(renewal_phase());
}

Duration lease_renewal_phase(NodeId registrar, LeaseId lease, Duration duration) {
    // Renew at half the lease, but with a deterministic per-lease phase
    // offset: without it every lease granted in the same instant (a cell
    // booting, a batch of extensions installing) renews in the same
    // instant forever, and the registrar sees a thundering herd each
    // period. The offset stays within duration/8 so the worst case still
    // lands inside the lease: first renew at 5/8·d, the slowest failure
    // (a lost message, detected by the d/4 call timeout) at 7/8·d, and
    // the first retry d/16 later at 15/16·d — leaving d/16 for its reply.
    std::uint64_t h =
        fnv1a64_mix(fnv1a64_mix(fnv1a64("lease-jitter"), registrar.value), lease.value);
    std::int64_t span = duration.count() / 8;
    std::int64_t offset = span > 0 ? static_cast<std::int64_t>(
                                         h % static_cast<std::uint64_t>(2 * span + 1)) -
                                         span
                                   : 0;
    return duration / 2 + Duration(offset);
}

Duration LeasedResource::renewal_phase() const {
    return lease_renewal_phase(registrar_, lease_, duration_);
}

LeasedResource::~LeasedResource() {
    if (alive_) cancel();
}

void LeasedResource::cancel() {
    if (!alive_) return;
    alive_ = false;
    rpc_.router().simulator().cancel(timer_);
    rpc_.call_async(registrar_, "registrar", "cancel",
                    {Value{static_cast<std::int64_t>(lease_.value)}},
                    [](Value, std::exception_ptr) {});
}

void LeasedResource::schedule_renewal(Duration delay) {
    timer_ = rpc_.router().simulator().schedule_after(delay, [this]() { renew(); });
}

void LeasedResource::renew() {
    if (!alive_) return;
    std::int64_t want_ms = duration_.count() / 1'000'000;
    rpc_.call_async(
        registrar_, "registrar", "renew",
        {Value{static_cast<std::int64_t>(lease_.value)}, Value{want_ms}},
        [this, guard = std::weak_ptr<char>(token_)](Value result,
                                                    std::exception_ptr error) {
            // The holder may drop the handle while the renew call is in
            // flight; the token expiring means `this` is gone.
            if (guard.expired() || !alive_) return;
            bool ok = !error && result.as_dict().at("ok").as_bool();
            if (ok) {
                expires_ = rpc_.router().simulator().now() + duration_;
                schedule_renewal(renewal_phase());
            } else if (!error && result.as_dict().contains("moved_to")) {
                // The lease migrated to another shard (registrar
                // rebalance): re-home and renew against the new
                // registrar right away. Not a retry — the move is a
                // redirect, not a failure.
                const Dict& d = result.as_dict();
                registrar_ = NodeId{static_cast<std::uint64_t>(d.at("moved_to").as_int())};
                lease_ = LeaseId{static_cast<std::uint64_t>(d.at("moved_lease").as_int())};
                renew();
            } else if (error) {
                // Transport failure — lost message, timeout, a partition
                // blocking the path. The lease may still have most of its
                // life left (an unreachable verdict comes back instantly),
                // so giving up after a fixed retry count would tear down
                // an adaptation over a blip shorter than the lease itself.
                // Instead, retry on a short cadence until the budget the
                // registrar granted is actually gone. The delay must stay
                // well under the lease: a *timed-out* renew has already
                // burned d/4 on the call timeout, and a positive-jitter
                // lease (first renew at 5/8·d) then has only d/8 of slack
                // — d/16 leaves the final retry's reply a d/16 margin.
                Duration delay = duration_ / 16;
                if (rpc_.router().simulator().now() + delay < expires_) {
                    timer_ = rpc_.router().simulator().schedule_after(
                        delay, [this]() { renew(); });
                } else {
                    mark_lost();
                }
            } else {
                // The registrar answered and refused: it no longer knows
                // the lease (expired and swept, or the registrar
                // restarted). Retrying cannot revive it — report the loss
                // so the holder re-registers.
                mark_lost();
            }
        },
        /*timeout=*/duration_ / 4);
}

void LeasedResource::mark_lost() {
    if (!alive_) return;
    alive_ = false;
    rpc_.router().simulator().cancel(timer_);
    // The callback typically drops the last handle to this resource (e.g.
    // erasing it from an advertisement map), so it must run off a local:
    // invoking the member directly would destroy the executing closure.
    LostFn fn = std::move(on_lost_);
    if (fn) fn();
}

// ----------------------------------------------------- DiscoveryClient ----

DiscoveryClient::DiscoveryClient(net::MessageRouter& router, rt::RpcEndpoint& rpc,
                                 DiscoveryConfig config)
    : router_(router), rpc_(rpc), config_(config) {
    router_.route("disco.here", [this](const net::Message& msg) { note_registrar(msg.from); });
    probe_timer_ =
        router_.simulator().schedule_every(config_.probe_period, [this]() { probe(); });
    timeout_timer_ = router_.simulator().schedule_every(config_.probe_period,
                                                        [this]() { check_timeouts(); });
    probe();
}

DiscoveryClient::~DiscoveryClient() {
    router_.simulator().cancel(probe_timer_);
    router_.simulator().cancel(timeout_timer_);
    router_.unroute("disco.here");
}

void DiscoveryClient::probe() { router_.broadcast("disco.probe", {}); }

void DiscoveryClient::note_registrar(NodeId node) {
    bool fresh = !last_seen_.contains(node);
    last_seen_[node] = router_.simulator().now();
    if (fresh) {
        log_debug(router_.simulator().now(), "disco",
                  router_.network().name_of(router_.self()), " found registrar on ",
                  router_.network().name_of(node));
        auto watchers = registrar_watchers_;
        for (auto& [_, fn] : watchers) fn(node, true);
    }
}

void DiscoveryClient::check_timeouts() {
    SimTime now = router_.simulator().now();
    std::vector<NodeId> lost;
    for (const auto& [node, seen] : last_seen_) {
        if (now - seen > config_.registrar_timeout) lost.push_back(node);
    }
    for (NodeId node : lost) {
        last_seen_.erase(node);
        log_debug(now, "disco", router_.network().name_of(router_.self()),
                  " lost registrar on ", router_.network().name_of(node));
        auto watchers = registrar_watchers_;
        for (auto& [_, fn] : watchers) fn(node, false);
    }
}

std::vector<NodeId> DiscoveryClient::registrars() const {
    std::vector<NodeId> out;
    out.reserve(last_seen_.size());
    for (const auto& [node, _] : last_seen_) out.push_back(node);
    return out;
}

std::uint64_t DiscoveryClient::on_registrar(RegistrarFn fn) {
    std::uint64_t token = ++next_token_;
    // Catch up on registrars already known.
    for (const auto& [node, _] : last_seen_) fn(node, true);
    registrar_watchers_.emplace(token, std::move(fn));
    return token;
}

void DiscoveryClient::off_registrar(std::uint64_t token) { registrar_watchers_.erase(token); }

void DiscoveryClient::register_service(NodeId registrar, const std::string& type,
                                       Dict attributes, LeasedResource::LostFn on_lost,
                                       RegisterDone on_done) {
    std::int64_t want_ms = config_.lease_duration.count() / 1'000'000;
    rpc_.call_async(
        registrar, "registrar", "register",
        {Value{type}, Value{std::move(attributes)}, Value{want_ms}},
        [this, registrar, on_lost = std::move(on_lost),
         on_done = std::move(on_done)](Value result, std::exception_ptr error) {
            if (error) {
                on_done(nullptr, error);
                return;
            }
            const Dict& grant = result.as_dict();
            LeaseId lease{static_cast<std::uint64_t>(grant.at("lease").as_int())};
            Duration granted = milliseconds(grant.at("duration_ms").as_int());
            auto handle = std::shared_ptr<LeasedResource>(
                new LeasedResource(rpc_, registrar, lease, granted, std::move(on_lost)));
            on_done(std::move(handle), nullptr);
        });
}

void DiscoveryClient::lookup(NodeId registrar, const std::string& type, LookupDone on_done) {
    rpc_.call_async(registrar, "registrar", "lookup", {Value{type}},
                    [on_done = std::move(on_done)](Value result, std::exception_ptr error) {
                        if (error) {
                            on_done({}, error);
                            return;
                        }
                        std::vector<ServiceItem> items;
                        for (const Value& v : result.as_list()) {
                            items.push_back(ServiceItem::from_value(v));
                        }
                        on_done(std::move(items), nullptr);
                    });
}

std::string DiscoveryClient::make_listener(EventFn on_event) {
    auto& runtime = rpc_.runtime();
    if (!runtime.find_type("EventListener")) {
        auto type = rt::TypeInfo::Builder("EventListener")
                        .method("notify", rt::TypeKind::kVoid,
                                {{"event", rt::TypeKind::kDict}},
                                [](rt::ServiceObject& self, List& args) -> Value {
                                    auto& fn = self.state<EventFn>();
                                    const Dict& event = args[0].as_dict();
                                    fn(ServiceItem::from_value(event.at("item")),
                                       event.at("appeared").as_bool());
                                    return Value{};
                                })
                        .build();
        runtime.register_type(type);
    }
    std::string name = "disco.listener:" + std::to_string(++next_listener_);
    auto listener = runtime.create("EventListener", name);
    listener->emplace_state<EventFn>(std::move(on_event));
    rpc_.export_object(name);
    return name;
}

void DiscoveryClient::watch(NodeId registrar, const std::string& type, EventFn on_event,
                            LeasedResource::LostFn on_lost, RegisterDone on_done) {
    std::string listener = make_listener(std::move(on_event));
    std::int64_t want_ms = config_.lease_duration.count() / 1'000'000;
    rpc_.call_async(
        registrar, "registrar", "watch", {Value{type}, Value{listener}, Value{want_ms}},
        [this, registrar, on_lost = std::move(on_lost),
         on_done = std::move(on_done)](Value result, std::exception_ptr error) {
            if (error) {
                on_done(nullptr, error);
                return;
            }
            const Dict& grant = result.as_dict();
            LeaseId lease{static_cast<std::uint64_t>(grant.at("lease").as_int())};
            Duration granted = milliseconds(grant.at("duration_ms").as_int());
            auto handle = std::shared_ptr<LeasedResource>(
                new LeasedResource(rpc_, registrar, lease, granted, std::move(on_lost)));
            on_done(std::move(handle), nullptr);
        });
}

}  // namespace pmp::disco
