// Consistent-hash sharded discovery (ROADMAP: million-node federation).
//
// One registrar per hall was the paper's deployment; at fleet scale a
// single registrar becomes both a hot spot (every lookup, registration and
// renewal lands on it) and a single point of failure. This module shards
// the directory across many registrars with a consistent-hash ring:
//
//   * HashRing places shard names on a 64-bit ring (many virtual points
//     per shard so load spreads evenly) and answers owner(key) — the
//     registrar responsible for a service-type key. Every party that holds
//     the same ring membership computes the same owner, with no
//     coordination traffic.
//   * ShardedLookup is the client-side router: lookup/register/watch calls
//     are sent to the owning shard's registrar instead of a fixed one.
//   * Lease migration keeps the ring elastic: when a shard joins (or is
//     about to leave), each registrar calls rebalance(ring) and the
//     registrations whose keys now hash elsewhere are transferred in one
//     batched RPC per target, with their remaining lease durations intact.
//     The old home remembers where each lease went for a grace period; a
//     client renewing against the old home gets a "moved" verdict carrying
//     the new home + new lease id, and its LeasedResource re-homes itself
//     (disco/lookup.h). No renewal is ever silently dropped by a move.
//
// Ring membership itself is configuration (tests/scenarios construct the
// ring), not a gossip protocol: the paper's proactive environments are
// infrastructure, and infrastructure knows its own shape.
#pragma once

#include <map>
#include <string>

#include "disco/lookup.h"

namespace pmp::disco {

/// Consistent-hash ring of named shards. Value type: copy it, mutate the
/// copy, hand it to Registrar::rebalance to enact the change.
class HashRing {
public:
    static constexpr int kDefaultVnodes = 64;

    /// Place `shard` (hosted by `node`) on the ring with `vnodes` virtual
    /// points. Re-adding an existing shard replaces its node.
    void add(const std::string& shard, NodeId node, int vnodes = kDefaultVnodes);
    bool remove(const std::string& shard);
    bool contains(const std::string& shard) const { return shards_.contains(shard); }

    /// The registrar responsible for `key` (clockwise successor on the
    /// ring). Invalid NodeId if the ring is empty.
    NodeId owner(const std::string& key) const;
    const std::string* owner_shard(const std::string& key) const;

    NodeId node_of(const std::string& shard) const;
    std::size_t shard_count() const { return shards_.size(); }
    const std::map<std::string, NodeId>& shards() const { return shards_; }

private:
    struct Point {
        std::string shard;
        NodeId node;
    };
    std::map<std::uint64_t, Point> points_;
    std::map<std::string, NodeId> shards_;
    std::map<std::string, int> vnodes_;
};

/// Client-side shard-aware routing: the same DiscoveryClient operations,
/// but addressed by key through the ring instead of to one fixed
/// registrar. Holders keep the ring current via ring().
class ShardedLookup {
public:
    explicit ShardedLookup(DiscoveryClient& disco) : disco_(disco) {}

    HashRing& ring() { return ring_; }
    const HashRing& ring() const { return ring_; }

    /// The registrar that owns `type` under the current ring.
    NodeId registrar_for(const std::string& type) const { return ring_.owner(type); }

    void lookup(const std::string& type, DiscoveryClient::LookupDone on_done);
    void register_service(const std::string& type, rt::Dict attributes,
                          LeasedResource::LostFn on_lost,
                          DiscoveryClient::RegisterDone on_done);
    void watch(const std::string& type, DiscoveryClient::EventFn on_event,
               LeasedResource::LostFn on_lost, DiscoveryClient::RegisterDone on_done);

private:
    DiscoveryClient& disco_;
    HashRing ring_;
};

}  // namespace pmp::disco
