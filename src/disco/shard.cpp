#include "disco/shard.h"

#include "common/error.h"
#include "common/hash.h"

namespace pmp::disco {

void HashRing::add(const std::string& shard, NodeId node, int vnodes) {
    if (vnodes < 1) vnodes = 1;
    if (shards_.contains(shard)) remove(shard);
    shards_[shard] = node;
    vnodes_[shard] = vnodes;
    for (int i = 0; i < vnodes; ++i) {
        std::uint64_t point =
            hash_avalanche(fnv1a64_mix(fnv1a64(shard), static_cast<std::uint64_t>(i)));
        // Collisions between distinct shards are astronomically unlikely
        // but must still be deterministic: first placement wins.
        points_.emplace(point, Point{shard, node});
    }
}

bool HashRing::remove(const std::string& shard) {
    auto it = shards_.find(shard);
    if (it == shards_.end()) return false;
    int vnodes = vnodes_.at(shard);
    for (int i = 0; i < vnodes; ++i) {
        std::uint64_t point =
            hash_avalanche(fnv1a64_mix(fnv1a64(shard), static_cast<std::uint64_t>(i)));
        auto pit = points_.find(point);
        if (pit != points_.end() && pit->second.shard == shard) points_.erase(pit);
    }
    shards_.erase(it);
    vnodes_.erase(shard);
    return true;
}

const std::string* HashRing::owner_shard(const std::string& key) const {
    if (points_.empty()) return nullptr;
    auto it = points_.lower_bound(hash_avalanche(fnv1a64(key)));
    if (it == points_.end()) it = points_.begin();  // wrap around
    return &it->second.shard;
}

NodeId HashRing::owner(const std::string& key) const {
    if (points_.empty()) return NodeId{};
    auto it = points_.lower_bound(hash_avalanche(fnv1a64(key)));
    if (it == points_.end()) it = points_.begin();
    return it->second.node;
}

NodeId HashRing::node_of(const std::string& shard) const {
    auto it = shards_.find(shard);
    return it == shards_.end() ? NodeId{} : it->second;
}

void ShardedLookup::lookup(const std::string& type, DiscoveryClient::LookupDone on_done) {
    NodeId owner = ring_.owner(type);
    if (!owner.valid()) {
        on_done({}, std::make_exception_ptr(Error("sharded lookup: empty ring")));
        return;
    }
    disco_.lookup(owner, type, std::move(on_done));
}

void ShardedLookup::register_service(const std::string& type, rt::Dict attributes,
                                     LeasedResource::LostFn on_lost,
                                     DiscoveryClient::RegisterDone on_done) {
    NodeId owner = ring_.owner(type);
    if (!owner.valid()) {
        on_done(nullptr, std::make_exception_ptr(Error("sharded register: empty ring")));
        return;
    }
    disco_.register_service(owner, type, std::move(attributes), std::move(on_lost),
                            std::move(on_done));
}

void ShardedLookup::watch(const std::string& type, DiscoveryClient::EventFn on_event,
                          LeasedResource::LostFn on_lost,
                          DiscoveryClient::RegisterDone on_done) {
    NodeId owner = ring_.owner(type);
    if (!owner.valid()) {
        on_done(nullptr, std::make_exception_ptr(Error("sharded watch: empty ring")));
        return;
    }
    disco_.watch(owner, type, std::move(on_event), std::move(on_lost), std::move(on_done));
}

}  // namespace pmp::disco
