// Client side of the lookup service: discovery, leased registrations,
// leased remote watches.
//
// Every node that participates in a proactive environment runs a
// DiscoveryClient. It notices registrars coming into and out of radio range
// (probe/beacon), keeps service registrations alive by renewing their
// leases, and maintains watches whose events arrive as remote calls on a
// locally exported listener object. When renewal stops succeeding — the
// node left the space, or the base died — the holder is told the lease was
// lost; that signal is what MIDAS turns into autonomous extension
// withdrawal.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "disco/registrar.h"

namespace pmp::disco {

struct DiscoveryConfig {
    Duration probe_period = milliseconds(500);
    Duration registrar_timeout = seconds(3);  ///< silence before "lost"
    Duration lease_duration = seconds(2);     ///< requested for registrations/watches
};

/// Deterministic renewal phase for a lease of `duration` held at
/// `registrar`: half the lease plus a per-lease offset within ±duration/8,
/// derived by hashing (registrar, lease). Leases granted in the same
/// instant therefore renew spread across a quarter-lease band instead of
/// as a thundering herd, and the spread is stable under replay — same
/// seed, same schedule.
Duration lease_renewal_phase(NodeId registrar, LeaseId lease, Duration duration);

/// A leased resource held at a remote registrar, kept alive by renewal.
/// Destroy the handle (or call cancel()) to give the lease up cleanly.
class LeasedResource {
public:
    using LostFn = std::function<void()>;

    ~LeasedResource();
    LeasedResource(const LeasedResource&) = delete;
    LeasedResource& operator=(const LeasedResource&) = delete;

    bool alive() const { return alive_; }
    NodeId registrar() const { return registrar_; }
    LeaseId lease() const { return lease_; }

    /// Cancel at the registrar and stop renewing.
    void cancel();

private:
    friend class DiscoveryClient;
    LeasedResource(rt::RpcEndpoint& rpc, NodeId registrar, LeaseId lease, Duration duration,
                   LostFn on_lost);

    void schedule_renewal(Duration delay);
    Duration renewal_phase() const;
    void renew();
    void mark_lost();

    rt::RpcEndpoint& rpc_;
    NodeId registrar_;
    LeaseId lease_;
    Duration duration_;
    SimTime expires_{};  ///< client-side estimate of the registrar's deadline
    LostFn on_lost_;
    sim::TimerId timer_;
    bool alive_ = true;
    // Liveness token for in-flight renew replies: a reply can arrive after
    // the holder dropped the handle, so the callback captures a weak_ptr to
    // this instead of a raw `this`.
    std::shared_ptr<char> token_ = std::make_shared<char>('\0');
};

class DiscoveryClient {
public:
    DiscoveryClient(net::MessageRouter& router, rt::RpcEndpoint& rpc,
                    DiscoveryConfig config = {});
    ~DiscoveryClient();

    DiscoveryClient(const DiscoveryClient&) = delete;
    DiscoveryClient& operator=(const DiscoveryClient&) = delete;

    /// Registrars currently believed reachable.
    std::vector<NodeId> registrars() const;

    /// Subscribe to registrar appearance/loss. Returns a token.
    using RegistrarFn = std::function<void(NodeId registrar, bool reachable)>;
    std::uint64_t on_registrar(RegistrarFn fn);
    void off_registrar(std::uint64_t token);

    /// Register a service at `registrar` with automatic lease renewal.
    /// `on_done(handle, error)`: on success `handle` is live; on failure it
    /// is nullptr and `error` explains. `on_lost` fires if renewal later
    /// stops working.
    using RegisterDone =
        std::function<void(std::shared_ptr<LeasedResource>, std::exception_ptr)>;
    void register_service(NodeId registrar, const std::string& type, rt::Dict attributes,
                          LeasedResource::LostFn on_lost, RegisterDone on_done);

    /// One-shot lookup by type.
    using LookupDone = std::function<void(std::vector<ServiceItem>, std::exception_ptr)>;
    void lookup(NodeId registrar, const std::string& type, LookupDone on_done);

    /// Watch a type at `registrar`; `on_event` fires for every appearance /
    /// disappearance (including a synthetic appearance for services already
    /// present). The watch is leased and auto-renewed like registrations.
    using EventFn = std::function<void(const ServiceItem&, bool appeared)>;
    void watch(NodeId registrar, const std::string& type, EventFn on_event,
               LeasedResource::LostFn on_lost, RegisterDone on_done);

    rt::RpcEndpoint& rpc() { return rpc_; }
    const DiscoveryConfig& config() const { return config_; }

private:
    void probe();
    void check_timeouts();
    void note_registrar(NodeId node);
    std::string make_listener(EventFn on_event);

    net::MessageRouter& router_;
    rt::RpcEndpoint& rpc_;
    DiscoveryConfig config_;

    std::map<NodeId, SimTime> last_seen_;
    std::map<std::uint64_t, RegistrarFn> registrar_watchers_;
    std::uint64_t next_token_ = 0;
    std::uint64_t next_listener_ = 0;

    sim::TimerId probe_timer_;
    sim::TimerId timeout_timer_;
};

}  // namespace pmp::disco
