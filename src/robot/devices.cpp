#include "robot/devices.h"

#include <cmath>

#include "common/error.h"

namespace pmp::robot {

using rt::Dict;
using rt::List;
using rt::TypeKind;
using rt::Value;

Duration MotorImpl::rotation_time(double degrees, std::int64_t power) const {
    if (power < 1) power = 1;
    if (power > 7) power = 7;
    double speed = deg_per_sec_full * static_cast<double>(power) / 7.0;
    double secs = std::fabs(degrees) / speed;
    return Duration{static_cast<std::int64_t>(secs * 1e9)};
}

void register_device_types(rt::Runtime& runtime) {
    // "The hardware entities have been encapsulated in a Device class with
    // Sensor and Motor as sub-classes." Device carries what every hardware
    // entity shares; pointcuts can select the whole family with "Device+".
    std::shared_ptr<rt::TypeInfo> device = runtime.find_type("Device");
    if (!device) {
        device = rt::TypeInfo::Builder("Device")
                     .field("enabled", TypeKind::kBool, Value{true})
                     .method("id", TypeKind::kStr, {},
                             [](rt::ServiceObject& self, List&) -> Value {
                                 return Value{self.name()};
                             })
                     .method("set_enabled", TypeKind::kVoid,
                             {{"enabled", TypeKind::kBool}},
                             [](rt::ServiceObject& self, List& args) -> Value {
                                 self.set("enabled", args[0]);
                                 return Value{};
                             })
                     .build();
        runtime.register_type(device);
    }
    if (!runtime.find_type("Motor")) {
        auto motor =
            rt::TypeInfo::Builder("Motor")
                .extends(device)
                .field("position", TypeKind::kReal, Value{0.0})
                .field("power", TypeKind::kInt, Value{std::int64_t{7}})
                .method("rotate", TypeKind::kInt, {{"degrees", TypeKind::kReal}},
                        [](rt::ServiceObject& self, List& args) -> Value {
                            auto& impl = self.state<MotorImpl>();
                            if (impl.frozen) {
                                throw Error("motor '" + self.name() + "' is frozen");
                            }
                            if (!self.peek("enabled").as_bool()) {
                                throw Error("motor '" + self.name() + "' is disabled");
                            }
                            double degrees = args[0].as_real();
                            std::int64_t power = self.peek("power").as_int();
                            Duration took = impl.rotation_time(degrees, power);
                            ++impl.actions;
                            // Position updates flow through set() so the
                            // field-set join point fires (state change *).
                            self.set("position", Value{self.peek("position").as_real() +
                                                        degrees});
                            return Value{took.count() / 1'000'000};
                        })
                .method("set_power", TypeKind::kVoid, {{"power", TypeKind::kInt}},
                        [](rt::ServiceObject& self, List& args) -> Value {
                            std::int64_t p = args[0].as_int();
                            if (p < 1 || p > 7) {
                                throw TypeError("motor power must be 1..7");
                            }
                            self.set("power", Value{p});
                            return Value{};
                        })
                .method("stop", TypeKind::kVoid, {},
                        [](rt::ServiceObject& self, List&) -> Value {
                            ++self.state<MotorImpl>().actions;
                            return Value{};
                        })
                .method("status", TypeKind::kDict, {},
                        [](rt::ServiceObject& self, List&) -> Value {
                            auto& impl = self.state<MotorImpl>();
                            Dict d{{"position", self.peek("position")},
                                   {"power", self.peek("power")},
                                   {"actions", Value{static_cast<std::int64_t>(impl.actions)}}};
                            return Value{std::move(d)};
                        })
                .build();
        runtime.register_type(motor);
    }
    if (!runtime.find_type("Sensor")) {
        auto sensor =
            rt::TypeInfo::Builder("Sensor")
                .extends(device)
                .field("reading", TypeKind::kInt, Value{std::int64_t{0}})
                .method("read", TypeKind::kInt, {},
                        [](rt::ServiceObject& self, List&) -> Value {
                            return self.get("reading");
                        })
                .method("kind", TypeKind::kStr, {},
                        [](rt::ServiceObject& self, List&) -> Value {
                            return Value{self.state<SensorImpl>().kind};
                        })
                .build();
        runtime.register_type(sensor);
    }
}

std::shared_ptr<rt::ServiceObject> make_motor(rt::Runtime& runtime, const std::string& name,
                                              double deg_per_sec_full) {
    register_device_types(runtime);
    auto motor = runtime.create("Motor", name);
    auto& impl = motor->emplace_state<MotorImpl>();
    impl.deg_per_sec_full = deg_per_sec_full;
    return motor;
}

std::shared_ptr<rt::ServiceObject> make_sensor(rt::Runtime& runtime, const std::string& name,
                                               const std::string& kind) {
    register_device_types(runtime);
    auto sensor = runtime.create("Sensor", name);
    sensor->emplace_state<SensorImpl>().kind = kind;
    return sensor;
}

void inject_reading(rt::ServiceObject& sensor, std::int64_t reading) {
    sensor.set("reading", Value{reading});
    auto& impl = sensor.state<SensorImpl>();
    if (impl.on_event) impl.on_event(reading);
}

}  // namespace pmp::robot
