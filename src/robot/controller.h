// Robot application layer (paper §4.1, second layer + Fig 3a).
//
// Tasks are "basic programs that decide what the robot is going to do",
// broken into *activity requests* (hardware macros) sent to the device
// layer. When a sensor detects an event of interest the hardware freezes
// and the task is notified; the task decides whether to continue the
// interrupted sequence or abort. The *direct mode* layer bypasses tasks and
// drives the hardware directly (for human control); the *overriding layer*
// suspends the current task, runs another one, and resumes.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "robot/devices.h"

namespace pmp::robot {

/// One activity request: invoke `action(args)` on a named device. The
/// invocation goes through the metaobject dispatch, so woven extensions
/// intercept every macro.
struct MacroStep {
    std::string device;  // instance name, e.g. "motor:x"
    std::string action;  // method, e.g. "rotate"
    rt::List args;
};

/// What a task wants after a sensor event interrupted it.
enum class TaskDecision { kContinue, kAbort };

/// A small program for the robot.
struct Task {
    std::string name;
    std::vector<MacroStep> steps;
    /// Called when a sensor fires while this task runs. Default: abort
    /// (obstacle => stop what you were doing).
    std::function<TaskDecision(const std::string& sensor, std::int64_t reading)> on_event;
    /// Called when the task ends; `completed` is false on abort.
    std::function<void(bool completed)> on_done;
};

class RobotController {
public:
    /// `sim` paces macro execution; devices are created in `runtime` under
    /// this controller's management.
    RobotController(sim::Simulator& sim, rt::Runtime& runtime, std::string label);
    ~RobotController();

    RobotController(const RobotController&) = delete;
    RobotController& operator=(const RobotController&) = delete;

    const std::string& label() const { return label_; }
    rt::Runtime& runtime() { return runtime_; }
    sim::Simulator& simulator() { return sim_; }

    /// Device construction. Motors/sensors are ServiceObjects; extensions
    /// can intercept them the moment they exist.
    std::shared_ptr<rt::ServiceObject> add_motor(const std::string& name,
                                                 double deg_per_sec_full = 90.0);
    std::shared_ptr<rt::ServiceObject> add_sensor(const std::string& name,
                                                  const std::string& kind);
    std::shared_ptr<rt::ServiceObject> device(const std::string& name) const;

    // ----- task layer -----

    /// Start a task; fails (returns false) if one is already running and
    /// no override is requested.
    bool start_task(Task task);
    bool busy() const { return current_.has_value(); }
    void abort_task();

    // ----- overriding layer -----

    /// Suspend the running task, run `task`, then resume the suspended one
    /// ("a way to override an existing task without using the direct mode").
    void push_override(Task task);

    // ----- direct mode -----

    /// Drive a device immediately, bypassing the task machinery ("an
    /// interface that allows direct connection to the robot hardware").
    rt::Value direct(const std::string& device, const std::string& action, rt::List args);

    /// Environment hook: a sensor observed `reading`. Freezes the hardware,
    /// notifies the current task, applies its decision.
    void sensor_event(const std::string& sensor, std::int64_t reading);

    struct Stats {
        std::uint64_t macros_executed = 0;
        std::uint64_t tasks_completed = 0;
        std::uint64_t tasks_aborted = 0;
        std::uint64_t events_handled = 0;
        std::uint64_t overrides_run = 0;
    };
    const Stats& stats() const { return stats_; }

private:
    struct Running {
        Task task;
        std::size_t next_step = 0;
    };

    void schedule_next_step(Duration delay);
    void run_step();
    void finish_task(bool completed);
    void freeze_hardware(bool frozen);

    sim::Simulator& sim_;
    rt::Runtime& runtime_;
    std::string label_;
    std::map<std::string, std::shared_ptr<rt::ServiceObject>> devices_;

    std::optional<Running> current_;
    std::deque<Running> suspended_;  // overriding stack
    sim::TimerId step_timer_;
    bool frozen_ = false;
    Stats stats_;
};

}  // namespace pmp::robot
