#include "robot/plotter.h"

#include <cmath>

#include "common/error.h"

namespace pmp::robot {

using rt::Dict;
using rt::List;
using rt::TypeKind;
using rt::Value;

struct Plotter::Impl {
    RobotController* controller = nullptr;
    double deg_per_unit = 10.0;
    std::string motor_x, motor_y, motor_z;
    std::vector<Segment> trace;

    /// Rotate one axis motor by the degrees covering `delta` units.
    /// Returns the physical duration in ms.
    std::int64_t turn(const std::string& motor, double delta_units) {
        if (delta_units == 0.0) return 0;
        Value took = controller->direct(motor, "rotate", {Value{delta_units * deg_per_unit}});
        return took.as_int();
    }

    std::int64_t travel(rt::ServiceObject& self, double x, double y) {
        double x0 = self.peek("pos_x").as_real();
        double y0 = self.peek("pos_y").as_real();
        // Both axes run concurrently; the move takes as long as the slower
        // axis.
        std::int64_t tx = turn(motor_x, x - x0);
        std::int64_t ty = turn(motor_y, y - y0);
        if (self.peek("pen").as_bool() && (x != x0 || y != y0)) {
            trace.push_back(Segment{x0, y0, x, y});
        }
        self.set("pos_x", Value{x});
        self.set("pos_y", Value{y});
        return std::max(tx, ty);
    }

    std::int64_t set_pen(rt::ServiceObject& self, bool down) {
        if (self.peek("pen").as_bool() == down) return 0;
        std::int64_t t = turn(motor_z, down ? 1.0 : -1.0);
        self.set("pen", Value{down});
        return t;
    }
};

namespace {

void register_drawing_type(rt::Runtime& runtime) {
    if (runtime.find_type("Drawing")) return;
    auto type =
        rt::TypeInfo::Builder("Drawing")
            .field("pos_x", TypeKind::kReal, Value{0.0})
            .field("pos_y", TypeKind::kReal, Value{0.0})
            .field("pen", TypeKind::kBool, Value{false})
            .method("move_to", TypeKind::kInt,
                    {{"x", TypeKind::kReal}, {"y", TypeKind::kReal}},
                    [](rt::ServiceObject& self, List& args) -> Value {
                        auto& impl = self.state<Plotter::Impl>();
                        return Value{impl.travel(self, args[0].as_real(), args[1].as_real())};
                    })
            .method("line_to", TypeKind::kInt,
                    {{"x", TypeKind::kReal}, {"y", TypeKind::kReal}},
                    [](rt::ServiceObject& self, List& args) -> Value {
                        auto& impl = self.state<Plotter::Impl>();
                        std::int64_t t = impl.set_pen(self, true);
                        t += impl.travel(self, args[0].as_real(), args[1].as_real());
                        return Value{t};
                    })
            .method("pen_up", TypeKind::kInt, {},
                    [](rt::ServiceObject& self, List&) -> Value {
                        return Value{self.state<Plotter::Impl>().set_pen(self, false)};
                    })
            .method("pen_down", TypeKind::kInt, {},
                    [](rt::ServiceObject& self, List&) -> Value {
                        return Value{self.state<Plotter::Impl>().set_pen(self, true)};
                    })
            .method("draw_polyline", TypeKind::kInt, {{"points", TypeKind::kList}},
                    [](rt::ServiceObject& self, List& args) -> Value {
                        auto& impl = self.state<Plotter::Impl>();
                        const List& points = args[0].as_list();
                        if (points.empty()) return Value{std::int64_t{0}};
                        auto xy = [](const Value& p) {
                            const List& pair = p.as_list();
                            if (pair.size() != 2) {
                                throw TypeError("polyline points must be [x, y]");
                            }
                            return std::pair<double, double>{pair[0].as_real(),
                                                             pair[1].as_real()};
                        };
                        std::int64_t total = impl.set_pen(self, false);
                        auto [x0, y0] = xy(points[0]);
                        // Route the decomposed strokes through self.call so
                        // extensions woven on Drawing.* see each stroke too.
                        total += self.call("move_to", {Value{x0}, Value{y0}}).as_int();
                        for (std::size_t i = 1; i < points.size(); ++i) {
                            auto [x, y] = xy(points[i]);
                            total += self.call("line_to", {Value{x}, Value{y}}).as_int();
                        }
                        total += impl.set_pen(self, false);
                        return Value{total};
                    })
            .method("position", TypeKind::kDict, {},
                    [](rt::ServiceObject& self, List&) -> Value {
                        Dict d{{"x", self.peek("pos_x")},
                               {"y", self.peek("pos_y")},
                               {"pen", self.peek("pen")}};
                        return Value{std::move(d)};
                    })
            .build();
    runtime.register_type(type);
}

}  // namespace

Plotter::Plotter(RobotController& controller, double deg_per_unit,
                 const std::string& object_name)
    : controller_(controller), impl_(std::make_shared<Impl>()) {
    impl_->controller = &controller_;
    impl_->deg_per_unit = deg_per_unit;
    impl_->motor_x = object_name + ".motor:x";
    impl_->motor_y = object_name + ".motor:y";
    impl_->motor_z = object_name + ".motor:z";
    controller_.add_motor(impl_->motor_x);
    controller_.add_motor(impl_->motor_y);
    controller_.add_motor(impl_->motor_z, /*deg_per_sec_full=*/180.0);

    rt::Runtime& runtime = controller_.runtime();
    register_drawing_type(runtime);
    drawing_ = runtime.create("Drawing", object_name);
    // The Impl is shared between this Plotter and the service object.
    drawing_->adopt_state(impl_);
}

const std::vector<Segment>& Plotter::trace() const { return impl_->trace; }

}  // namespace pmp::robot
