// Device layer: the LeJOS/RCX analog (paper §4.1, third layer).
//
// "The hardware entities have been encapsulated in a Device class with
// Sensor and Motor as sub-classes." Motors and sensors are ordinary
// ServiceObjects in the node's Runtime, so every actuation is a join point:
// the hardware-monitoring extension intercepts Motor.* calls exactly as in
// Fig 3b, and state changes go through field-set join points.
//
// Motor service class ("Motor"):
//   methods: rotate(degrees int) -> int      relative move; returns the
//                                            physical duration in ms
//            set_power(power int) -> void    RCX-style power 1..7
//            stop() -> void
//            status() -> dict                {position, power, actions}
//   fields:  position (real, degrees)        updated through set() => the
//                                            quality-control extension sees
//                                            every state change
//            power (int)
//
// Sensor service class ("Sensor"):
//   methods: read() -> int
//            kind() -> str                   "touch" / "light"
//   fields:  reading (int)
//
// The physical environment drives sensors via SensorImpl::inject (tests and
// scenarios), which also raises the robot-level event that freezes the
// hardware and notifies the running task (paper: "the hardware completely
// freezes its activity and notifies the robot application layer").
#pragma once

#include <functional>

#include "rt/runtime.h"
#include "sim/simulator.h"

namespace pmp::robot {

/// Physics/bookkeeping behind one Motor service object.
struct MotorImpl {
    double deg_per_sec_full = 90.0;  ///< speed at power 7
    std::uint64_t actions = 0;       ///< number of actuations performed
    bool frozen = false;             ///< set while the hardware is frozen

    /// Duration of rotating |degrees| at `power`.
    Duration rotation_time(double degrees, std::int64_t power) const;
};

/// Bookkeeping behind one Sensor service object.
struct SensorImpl {
    std::string kind;  // "touch" or "light"
    /// Raised on inject(); wired to the robot controller.
    std::function<void(std::int64_t reading)> on_event;
};

/// Register the Motor/Sensor service classes in `runtime` (idempotent).
void register_device_types(rt::Runtime& runtime);

/// Create a motor instance (e.g. "motor:x"). `deg_per_sec_full` is the
/// rotation speed at maximum power.
std::shared_ptr<rt::ServiceObject> make_motor(rt::Runtime& runtime, const std::string& name,
                                              double deg_per_sec_full = 90.0);

/// Create a sensor instance (e.g. "sensor:touch").
std::shared_ptr<rt::ServiceObject> make_sensor(rt::Runtime& runtime, const std::string& name,
                                               const std::string& kind);

/// Drive a sensor from the environment: updates the reading field (through
/// hooks) and raises the sensor event.
void inject_reading(rt::ServiceObject& sensor, std::int64_t reading);

}  // namespace pmp::robot
