// The plotter prototype (paper §4.3, Fig 4).
//
// "This robot acts as the head of a printer as it moves a marking pen
// across three dimensions. Movement across each dimension is controlled by
// a motor. The overall movement is determined by a drawing program that
// exports a drawing interface as a Jini service."
//
// The Plotter owns three motors (x, y, z/pen) on the robot controller and
// exports a service object of class "Drawing" named "drawing":
//
//   methods: move_to(x real, y real) -> int    travel with pen as-is; ms
//            line_to(x real, y real) -> int    lower pen, draw segment; ms
//            pen_up() -> int / pen_down() -> int
//            draw_polyline(points list) -> int  [[x,y], ...]: move to the
//                                               first point pen-up, draw the
//                                               rest pen-down
//            position() -> dict                {x, y, pen}
//   fields:  pos_x (real), pos_y (real), pen (bool)
//
// Every movement decomposes into Motor.rotate calls and Drawing field
// updates, so both the Motor.* monitoring extension and the state-change
// quality-control extension observe the plotter without it knowing.
#pragma once

#include "robot/controller.h"

namespace pmp::robot {

/// A drawn segment, recorded for tests and the replication example.
struct Segment {
    double x0, y0, x1, y1;
};

class Plotter {
public:
    /// Creates motors "<prefix>motor:x|y|z" and the "drawing" service
    /// object. `deg_per_unit` converts drawing units to motor degrees.
    Plotter(RobotController& controller, double deg_per_unit = 10.0,
            const std::string& object_name = "drawing");

    const std::shared_ptr<rt::ServiceObject>& drawing() { return drawing_; }
    RobotController& controller() { return controller_; }

    /// Ink on paper so far.
    const std::vector<Segment>& trace() const;

    /// Shared device model behind the "drawing" service object; public so
    /// the type's method handlers (implementation detail in plotter.cpp)
    /// can reach it through ServiceObject::state<Impl>().
    struct Impl;

private:
    RobotController& controller_;
    std::shared_ptr<rt::ServiceObject> drawing_;
    std::shared_ptr<Impl> impl_;
};

}  // namespace pmp::robot
