#include "robot/controller.h"

#include "common/error.h"
#include "common/log.h"

namespace pmp::robot {

using rt::List;
using rt::Value;

RobotController::RobotController(sim::Simulator& sim, rt::Runtime& runtime, std::string label)
    : sim_(sim), runtime_(runtime), label_(std::move(label)) {}

RobotController::~RobotController() { sim_.cancel(step_timer_); }

std::shared_ptr<rt::ServiceObject> RobotController::add_motor(const std::string& name,
                                                              double deg_per_sec_full) {
    auto motor = make_motor(runtime_, name, deg_per_sec_full);
    devices_[name] = motor;
    return motor;
}

std::shared_ptr<rt::ServiceObject> RobotController::add_sensor(const std::string& name,
                                                               const std::string& kind) {
    auto sensor = make_sensor(runtime_, name, kind);
    sensor->state<SensorImpl>().on_event = [this, name](std::int64_t reading) {
        sensor_event(name, reading);
    };
    devices_[name] = sensor;
    return sensor;
}

std::shared_ptr<rt::ServiceObject> RobotController::device(const std::string& name) const {
    auto it = devices_.find(name);
    return it == devices_.end() ? nullptr : it->second;
}

bool RobotController::start_task(Task task) {
    if (current_) return false;
    current_ = Running{std::move(task), 0};
    log_debug(sim_.now(), "robot@" + label_, "task '", current_->task.name, "' started");
    schedule_next_step(Duration{0});
    return true;
}

void RobotController::abort_task() {
    if (!current_) return;
    finish_task(false);
}

void RobotController::push_override(Task task) {
    ++stats_.overrides_run;
    sim_.cancel(step_timer_);
    if (current_) {
        suspended_.push_back(std::move(*current_));
        current_.reset();
    }
    current_ = Running{std::move(task), 0};
    log_debug(sim_.now(), "robot@" + label_, "override '", current_->task.name, "' started");
    schedule_next_step(Duration{0});
}

rt::Value RobotController::direct(const std::string& device_name, const std::string& action,
                                  rt::List args) {
    auto dev = device(device_name);
    if (!dev) throw Error("robot '" + label_ + "' has no device '" + device_name + "'");
    return dev->call(action, std::move(args));
}

void RobotController::schedule_next_step(Duration delay) {
    step_timer_ = sim_.schedule_after(delay, [this]() { run_step(); });
}

void RobotController::run_step() {
    if (!current_ || frozen_) return;
    Running& run = *current_;
    if (run.next_step >= run.task.steps.size()) {
        finish_task(true);
        return;
    }
    const MacroStep& step = run.task.steps[run.next_step++];
    auto dev = device(step.device);
    if (!dev) {
        log_warn(sim_.now(), "robot@" + label_, "task '", run.task.name,
                 "' references unknown device '", step.device, "'");
        finish_task(false);
        return;
    }
    Duration pace{0};
    try {
        Value result = dev->call(step.action, step.args);
        ++stats_.macros_executed;
        // Macros that take physical time (rotate) report their duration;
        // the next macro starts when this one finishes.
        if (result.is_int()) pace = milliseconds(result.as_int());
    } catch (const AccessDenied& e) {
        // A policy extension vetoed the macro: the task cannot proceed.
        log_info(sim_.now(), "robot@" + label_, "macro denied: ", e.what());
        finish_task(false);
        return;
    } catch (const Error& e) {
        log_warn(sim_.now(), "robot@" + label_, "macro failed: ", e.what());
        finish_task(false);
        return;
    }
    schedule_next_step(pace);
}

void RobotController::finish_task(bool completed) {
    sim_.cancel(step_timer_);
    if (!current_) return;
    Running finished = std::move(*current_);
    current_.reset();
    if (completed) {
        ++stats_.tasks_completed;
    } else {
        ++stats_.tasks_aborted;
    }
    log_debug(sim_.now(), "robot@" + label_, "task '", finished.task.name, "' ",
              completed ? "completed" : "aborted");
    if (finished.task.on_done) finished.task.on_done(completed);

    // Overriding layer: resume whatever was suspended.
    if (!current_ && !suspended_.empty()) {
        current_ = std::move(suspended_.back());
        suspended_.pop_back();
        schedule_next_step(Duration{0});
    }
}

void RobotController::freeze_hardware(bool frozen) {
    frozen_ = frozen;
    for (auto& [_, dev] : devices_) {
        if (dev->type().name() == "Motor") {
            dev->state<MotorImpl>().frozen = frozen;
        }
    }
}

void RobotController::sensor_event(const std::string& sensor, std::int64_t reading) {
    ++stats_.events_handled;
    if (!current_) return;

    // Paper: "the hardware completely freezes its activity and notifies the
    // robot application layer of the occurred event."
    freeze_hardware(true);
    sim_.cancel(step_timer_);

    TaskDecision decision = current_->task.on_event
                                ? current_->task.on_event(sensor, reading)
                                : TaskDecision::kAbort;
    freeze_hardware(false);
    if (decision == TaskDecision::kAbort) {
        finish_task(false);
    } else {
        schedule_next_step(Duration{0});
    }
}

}  // namespace pmp::robot
