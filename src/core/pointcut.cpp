#include "core/pointcut.h"

#include <cctype>

#include "common/error.h"

namespace pmp::prose {

bool glob_match(std::string_view pattern, std::string_view text) {
    // Iterative wildcard matching with backtracking over the last '*'.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string_view::npos, star_t = 0;
    while (t < text.size()) {
        if (p < pattern.size() && (pattern[p] == text[t] || pattern[p] == '?')) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            star_t = t;
        } else if (star != std::string_view::npos) {
            p = star + 1;
            t = ++star_t;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*') ++p;
    return p == pattern.size();
}

bool GlobMemo::match(std::string_view pattern, std::string_view text) {
    std::string key;
    key.reserve(pattern.size() + text.size() + 1);
    key.append(pattern);
    key.push_back('\0');  // member names never contain NUL
    key.append(text);
    auto [it, fresh] = memo_.try_emplace(std::move(key), false);
    if (fresh) it->second = glob_match(pattern, text);
    return it->second;
}

namespace {

/// What a primitive matches against.
enum class JoinKind { kMethod, kFieldSet, kFieldGet };

/// Glob through the memo when one is supplied.
inline bool glob(GlobMemo* memo, std::string_view pattern, std::string_view text) {
    return memo ? memo->match(pattern, text) : glob_match(pattern, text);
}

struct SignaturePattern {
    std::string ret;                  // pattern over type-kind names
    std::string cls;                  // pattern over class name
    bool cls_subtypes = false;        // trailing '+': match through ancestors
    std::string member;               // pattern over method/field name
    std::vector<std::string> params;  // patterns over param type-kind names
    bool ellipsis = false;            // trailing '..'
    bool any_params = false;          // parameter list was exactly '..' or SIG is a field

    bool match_params(const rt::MethodDecl& m, GlobMemo* memo) const {
        if (any_params) return true;
        if (ellipsis) {
            if (m.params.size() < params.size()) return false;
        } else {
            if (m.params.size() != params.size() && !m.varargs) return false;
            if (m.varargs && m.params.size() < params.size()) return false;
        }
        for (std::size_t i = 0; i < params.size(); ++i) {
            if (i >= m.params.size()) return false;
            if (!glob(memo, params[i], rt::type_kind_name(m.params[i].type))) return false;
        }
        return true;
    }
};

/// The inheritance chain of the candidate class, most-derived first.
using TypeChain = std::vector<std::string_view>;

/// Class pattern match over a chain: plain patterns bind to the concrete
/// class, '+' patterns to any ancestor.
bool class_match(const std::string& pattern, bool subtypes, const TypeChain& chain,
                 GlobMemo* memo) {
    if (!subtypes) return glob(memo, pattern, chain.front());
    for (std::string_view name : chain) {
        if (glob(memo, pattern, name)) return true;
    }
    return false;
}

}  // namespace

struct Pointcut::Node {
    enum class Op { kOr, kAnd, kNot, kPrim, kWithin };

    Op op;
    // kOr / kAnd / kNot children:
    std::shared_ptr<const Node> lhs, rhs;
    // kPrim:
    JoinKind join_kind = JoinKind::kMethod;
    SignaturePattern sig;
    // kWithin:
    std::string type_pattern;
    bool within_subtypes = false;

    bool eval_method(const TypeChain& chain, const rt::MethodDecl& m, GlobMemo* memo) const {
        switch (op) {
            case Op::kOr:
                return lhs->eval_method(chain, m, memo) || rhs->eval_method(chain, m, memo);
            case Op::kAnd:
                return lhs->eval_method(chain, m, memo) && rhs->eval_method(chain, m, memo);
            case Op::kNot: return !lhs->eval_method(chain, m, memo);
            case Op::kWithin: return class_match(type_pattern, within_subtypes, chain, memo);
            case Op::kPrim:
                return join_kind == JoinKind::kMethod &&
                       class_match(sig.cls, sig.cls_subtypes, chain, memo) &&
                       glob(memo, sig.member, m.name) &&
                       glob(memo, sig.ret, rt::type_kind_name(m.returns)) &&
                       sig.match_params(m, memo);
        }
        return false;
    }

    bool eval_field(const TypeChain& chain, const rt::FieldDecl& f, JoinKind want,
                    GlobMemo* memo) const {
        switch (op) {
            case Op::kOr:
                return lhs->eval_field(chain, f, want, memo) ||
                       rhs->eval_field(chain, f, want, memo);
            case Op::kAnd:
                return lhs->eval_field(chain, f, want, memo) &&
                       rhs->eval_field(chain, f, want, memo);
            case Op::kNot: return !lhs->eval_field(chain, f, want, memo);
            case Op::kWithin: return class_match(type_pattern, within_subtypes, chain, memo);
            case Op::kPrim:
                return join_kind == want && class_match(sig.cls, sig.cls_subtypes, chain, memo) &&
                       glob(memo, sig.member, f.name);
        }
        return false;
    }
};

namespace {
TypeChain chain_of(const rt::TypeInfo& type) {
    TypeChain chain;
    for (const rt::TypeInfo* t = &type; t != nullptr; t = t->parent().get()) {
        chain.push_back(t->name());
    }
    return chain;
}
}  // namespace

namespace {

/// Tiny tokenizer for pointcut expressions. Pattern atoms are runs of
/// identifier characters plus the wildcards '*' and '?'.
class PcParser {
public:
    explicit PcParser(const std::string& src) : src_(src) {}

    std::shared_ptr<const Pointcut::Node> parse() {
        auto node = or_expr();
        skip_ws();
        if (pos_ != src_.size()) fail("trailing input after pointcut");
        return node;
    }

private:
    using Node = Pointcut::Node;
    using NodePtr = std::shared_ptr<const Node>;

    [[noreturn]] void fail(const std::string& what) const {
        throw ParseError("pointcut: " + what, 1, static_cast<int>(pos_) + 1);
    }

    void skip_ws() {
        while (pos_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[pos_]))) ++pos_;
    }

    bool eat(char c) {
        skip_ws();
        if (pos_ < src_.size() && src_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool eat2(const char* two) {
        skip_ws();
        if (pos_ + 1 < src_.size() && src_[pos_] == two[0] && src_[pos_ + 1] == two[1]) {
            pos_ += 2;
            return true;
        }
        return false;
    }

    void expect(char c, const char* what) {
        if (!eat(c)) fail(std::string("expected ") + what);
    }

    static bool atom_char(char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '*' ||
               c == '?' || c == '+';
    }

    std::string atom(const char* what) {
        skip_ws();
        std::size_t start = pos_;
        while (pos_ < src_.size() && atom_char(src_[pos_])) ++pos_;
        if (pos_ == start) fail(std::string("expected ") + what);
        return src_.substr(start, pos_ - start);
    }

    NodePtr make(Node&& node) { return std::make_shared<const Node>(std::move(node)); }

    NodePtr or_expr() {
        NodePtr lhs = and_expr();
        while (eat2("||")) {
            Node n;
            n.op = Node::Op::kOr;
            n.lhs = lhs;
            n.rhs = and_expr();
            lhs = make(std::move(n));
        }
        return lhs;
    }

    NodePtr and_expr() {
        NodePtr lhs = unary_expr();
        while (eat2("&&")) {
            Node n;
            n.op = Node::Op::kAnd;
            n.lhs = lhs;
            n.rhs = unary_expr();
            lhs = make(std::move(n));
        }
        return lhs;
    }

    NodePtr unary_expr() {
        if (eat('!')) {
            Node n;
            n.op = Node::Op::kNot;
            n.lhs = unary_expr();
            return make(std::move(n));
        }
        if (eat('(')) {
            NodePtr inner = or_expr();
            expect(')', "')'");
            return inner;
        }
        return primitive();
    }

    NodePtr primitive() {
        std::string kw = atom("pointcut primitive");
        if (kw == "call" || kw == "execution") return signature_prim();
        if (kw == "fieldset") return field_prim(JoinKind::kFieldSet);
        if (kw == "fieldget") return field_prim(JoinKind::kFieldGet);
        if (kw == "within") {
            expect('(', "'('");
            Node n;
            n.op = Node::Op::kWithin;
            n.type_pattern = atom("type pattern");
            if (!n.type_pattern.empty() && n.type_pattern.back() == '+') {
                n.within_subtypes = true;
                n.type_pattern.pop_back();
                if (n.type_pattern.empty()) fail("type pattern missing before '+'");
            }
            expect(')', "')'");
            return make(std::move(n));
        }
        fail("unknown primitive '" + kw + "'");
    }

    /// CLASSPAT '.' MEMBERPAT — the final '.' splits class from member.
    void split_qualified(SignaturePattern& sig, const char* what) {
        std::string first = atom(what);
        std::vector<std::string> parts{std::move(first)};
        while (eat('.')) {
            // A '.' may be the start of a '..' ellipsis inside params; the
            // caller never invokes us in that state, so here a '.' always
            // separates name segments.
            parts.push_back(atom(what));
        }
        if (parts.size() < 2) fail(std::string(what) + " must be Class.member");
        sig.member = std::move(parts.back());
        parts.pop_back();
        std::string cls;
        for (std::size_t i = 0; i < parts.size(); ++i) {
            if (i) cls += '.';
            cls += parts[i];
        }
        if (!cls.empty() && cls.back() == '+') {
            sig.cls_subtypes = true;
            cls.pop_back();
            if (cls.empty()) fail("class pattern missing before '+'");
        }
        sig.cls = std::move(cls);
    }

    NodePtr signature_prim() {
        expect('(', "'('");
        Node n;
        n.op = Node::Op::kPrim;
        n.join_kind = JoinKind::kMethod;
        n.sig.ret = atom("return type pattern");
        split_qualified(n.sig, "method signature");
        expect('(', "'(' of parameter list");
        skip_ws();
        if (eat(')')) {
            // empty list: matches methods with zero parameters
        } else if (eat2("..")) {
            n.sig.any_params = true;
            expect(')', "')'");
        } else {
            for (;;) {
                n.sig.params.push_back(atom("parameter type pattern"));
                if (eat(',')) {
                    skip_ws();
                    if (eat2("..")) {
                        n.sig.ellipsis = true;
                        expect(')', "')'");
                        break;
                    }
                    continue;
                }
                expect(')', "')'");
                break;
            }
        }
        expect(')', "')' closing the primitive");
        return make(std::move(n));
    }

    NodePtr field_prim(JoinKind kind) {
        expect('(', "'('");
        Node n;
        n.op = Node::Op::kPrim;
        n.join_kind = kind;
        split_qualified(n.sig, "field pattern");
        n.sig.any_params = true;
        expect(')', "')'");
        return make(std::move(n));
    }

    const std::string& src_;
    std::size_t pos_ = 0;
};

}  // namespace

Pointcut::Pointcut(std::shared_ptr<const Node> root, std::string source)
    : root_(std::move(root)), source_(std::make_shared<const std::string>(std::move(source))) {}

Pointcut Pointcut::parse(const std::string& source) {
    return Pointcut(PcParser(source).parse(), source);
}

bool Pointcut::matches_method(std::string_view type_name, const rt::MethodDecl& method) const {
    return root_->eval_method(TypeChain{type_name}, method, nullptr);
}

bool Pointcut::matches_field_set(std::string_view type_name, const rt::FieldDecl& field) const {
    return root_->eval_field(TypeChain{type_name}, field, JoinKind::kFieldSet, nullptr);
}

bool Pointcut::matches_field_get(std::string_view type_name, const rt::FieldDecl& field) const {
    return root_->eval_field(TypeChain{type_name}, field, JoinKind::kFieldGet, nullptr);
}

bool Pointcut::matches_method(const rt::TypeInfo& type, const rt::MethodDecl& method) const {
    return root_->eval_method(chain_of(type), method, nullptr);
}

bool Pointcut::matches_field_set(const rt::TypeInfo& type, const rt::FieldDecl& field) const {
    return root_->eval_field(chain_of(type), field, JoinKind::kFieldSet, nullptr);
}

bool Pointcut::matches_field_get(const rt::TypeInfo& type, const rt::FieldDecl& field) const {
    return root_->eval_field(chain_of(type), field, JoinKind::kFieldGet, nullptr);
}

bool Pointcut::matches_method(const rt::TypeInfo& type, const rt::MethodDecl& method,
                              GlobMemo& memo) const {
    return root_->eval_method(chain_of(type), method, &memo);
}

bool Pointcut::matches_field_set(const rt::TypeInfo& type, const rt::FieldDecl& field,
                                 GlobMemo& memo) const {
    return root_->eval_field(chain_of(type), field, JoinKind::kFieldSet, &memo);
}

bool Pointcut::matches_field_get(const rt::TypeInfo& type, const rt::FieldDecl& field,
                                 GlobMemo& memo) const {
    return root_->eval_field(chain_of(type), field, JoinKind::kFieldGet, &memo);
}

const std::string& Pointcut::source() const { return *source_; }

}  // namespace pmp::prose
