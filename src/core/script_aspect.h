// Script-backed aspects: the bridge between PROSE and AdviceScript.
//
// This is how behaviour the device has never seen gets in: a MIDAS package
// carries AdviceScript source plus bindings mapping advice kinds/pointcuts
// to script functions. On arrival the source is compiled, its top level runs
// once (initialising extension globals from the shipped `config`), and each
// binding becomes native advice that invokes the corresponding script
// function inside the sandbox. During advice execution the script sees the
// current join point through the `ctx.*` builtins:
//
//   ctx.type() / ctx.target() / ctx.method()    what was intercepted
//   ctx.arg(i) / ctx.args() / ctx.set_arg(i,v)  call arguments
//   ctx.result() / ctx.set_result(v)            after / around
//   ctx.proceed()                               around only
//   ctx.error()                                 after-throwing
//   ctx.field() / ctx.oldval() / ctx.newval() / ctx.set_newval(v)   field advice
//   ctx.deny(msg)                               veto -> AccessDenied at caller
//   ctx.get_field(n) / ctx.set_field(n, v)      target state   [capability "target"]
//
// The shutdown procedure is the script function `onShutdown(reason)`, run
// when the aspect is withdrawn (lease expiry, replacement, or explicit).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/aspect.h"
#include "script/compile.h"
#include "script/engine.h"
#include "script/interp.h"
#include "script/parser.h"
#include "script/vm.h"

namespace pmp::prose {

/// Names and required capabilities of the ctx.* join-point builtins that
/// every script aspect gets. Static checkers (which run before any join
/// point exists) declare these as known functions. install_ctx_builtins
/// verifies at aspect build time that the list is complete.
const std::vector<std::pair<std::string, std::string>>& ctx_builtin_names();

/// Binds one advice kind + pointcut to a script function.
struct ScriptBinding {
    AdviceKind kind;
    std::string pointcut;
    std::string function;
    int priority = 0;
    /// Optionally pre-parsed (the MIDAS receiver caches Pointcuts by
    /// source string); when set, `pointcut` is not parsed again.
    std::optional<Pointcut> parsed;
};

/// Compiles script source into a weavable Aspect.
///
/// The advice hot path executes on the bytecode VM by default; the
/// tree-walking Interpreter remains available as the reference engine
/// (differential testing, debugging) via EngineMode::kInterpreter. Both
/// engines are observably identical — results, typed errors, step counts.
class ScriptAspect {
public:
    /// Throws ParseError on bad source, ScriptError if a bound function is
    /// missing, and whatever the top-level raises when it runs.
    ///
    /// `host_builtins` supplies node facilities (log.*, net.*, db.*, ...)
    /// on top of the core library; the sandbox decides which of those the
    /// extension may actually use. `config` is exposed to the script as the
    /// global `config` before the top level runs.
    ScriptAspect(std::string name, const std::string& source,
                 std::vector<ScriptBinding> bindings, script::Sandbox sandbox,
                 const script::BuiltinRegistry& host_builtins, rt::Value config = rt::Value{},
                 script::EngineMode mode = script::EngineMode::kVm);

    /// Build from an already-compiled unit (the MIDAS receiver caches one
    /// CompiledUnit per distinct script hash and shares it across installs;
    /// compilation happens once, not per aspect instance).
    ScriptAspect(std::string name, std::shared_ptr<const script::CompiledUnit> unit,
                 std::vector<ScriptBinding> bindings, script::Sandbox sandbox,
                 const script::BuiltinRegistry& host_builtins, rt::Value config = rt::Value{},
                 script::EngineMode mode = script::EngineMode::kVm);

    /// The weavable product. One instance per ScriptAspect.
    const std::shared_ptr<Aspect>& aspect() const { return aspect_; }

    /// Direct access to the extension's engine (tests, diagnostics).
    script::Engine& engine();

private:
    struct State;

    static void install_ctx_builtins(script::BuiltinRegistry& reg,
                                     const std::shared_ptr<State>& state);

    std::shared_ptr<State> state_;
    std::shared_ptr<Aspect> aspect_;
};

}  // namespace pmp::prose
