// Aspects: first-class run-time extensions (paper §3.1).
//
// An Aspect bundles advice bindings — (pointcut, kind, action) triples —
// plus an optional withdraw handler that MIDAS invokes before the aspect is
// removed ("each extension is notified before leaving a proactive space so
// that it can execute a shut-down procedure").
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/pointcut.h"

namespace pmp::prose {

enum class AdviceKind {
    kBefore,         ///< runs before the method body; may rewrite args or veto
    kAfter,          ///< runs after normal completion; sees/replaces the result
    kAfterThrowing,  ///< runs when the body (or earlier advice) throws
    kAround,         ///< wraps the execution; controls proceed()
    kFieldSet,       ///< runs on field writes; sees old value, may adjust new
    kFieldGet,       ///< runs on field reads; may adjust the value seen
};

const char* advice_kind_name(AdviceKind kind);

/// Why an aspect is being withdrawn — passed to the shutdown handler.
enum class WithdrawReason {
    kExplicit,       ///< host or base revoked it deliberately
    kLeaseExpired,   ///< the node left the proactive space (lease lapsed)
    kReplaced,       ///< a newer version of the same extension supersedes it
    kBaseRestarted,  ///< the issuing base restarted; this lease is from a
                     ///< previous epoch and a fresh install follows
    kQuarantined,    ///< the extension's advice kept crashing; the node
                     ///< withdrew it in self-defence
};

const char* withdraw_reason_name(WithdrawReason reason);

/// One advice binding. Exactly the member matching `kind` is set.
struct AdviceBinding {
    AdviceKind kind;
    Pointcut pointcut;
    int priority = 0;

    rt::EntryHook before;
    rt::ExitHook after;
    rt::ErrorHook after_throwing;
    rt::AroundHook around;
    rt::FieldSetHook field_set;
    rt::FieldGetHook field_get;
};

/// A run-time extension: named, holds advice bindings, knows how to shut
/// down. Build fluently:
///
///   auto logging = std::make_shared<Aspect>("logging");
///   logging->before("call(* Motor.*(..))",
///                   [](rt::CallFrame& f) { ... });
class Aspect {
public:
    explicit Aspect(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    Aspect& before(const std::string& pointcut, rt::EntryHook fn, int priority = 0);
    Aspect& after(const std::string& pointcut, rt::ExitHook fn, int priority = 0);
    Aspect& after_throwing(const std::string& pointcut, rt::ErrorHook fn, int priority = 0);
    Aspect& around(const std::string& pointcut, rt::AroundHook fn, int priority = 0);
    Aspect& on_field_set(const std::string& pointcut, rt::FieldSetHook fn, int priority = 0);
    Aspect& on_field_get(const std::string& pointcut, rt::FieldGetHook fn, int priority = 0);

    /// Pre-parsed overloads: callers that cache Pointcuts (e.g. the MIDAS
    /// receiver, which sees the same pointcut source across many package
    /// installs) skip the parse entirely. The string overloads delegate.
    Aspect& before(Pointcut pointcut, rt::EntryHook fn, int priority = 0);
    Aspect& after(Pointcut pointcut, rt::ExitHook fn, int priority = 0);
    Aspect& after_throwing(Pointcut pointcut, rt::ErrorHook fn, int priority = 0);
    Aspect& around(Pointcut pointcut, rt::AroundHook fn, int priority = 0);
    Aspect& on_field_set(Pointcut pointcut, rt::FieldSetHook fn, int priority = 0);
    Aspect& on_field_get(Pointcut pointcut, rt::FieldGetHook fn, int priority = 0);

    /// Install the shutdown procedure run at withdrawal.
    Aspect& on_withdraw(std::function<void(WithdrawReason)> fn);

    const std::vector<AdviceBinding>& bindings() const { return bindings_; }
    void notify_withdraw(WithdrawReason reason);

private:
    std::string name_;
    std::vector<AdviceBinding> bindings_;
    std::function<void(WithdrawReason)> withdraw_fn_;
};

}  // namespace pmp::prose
