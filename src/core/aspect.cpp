#include "core/aspect.h"

namespace pmp::prose {

const char* advice_kind_name(AdviceKind kind) {
    switch (kind) {
        case AdviceKind::kBefore: return "before";
        case AdviceKind::kAfter: return "after";
        case AdviceKind::kAfterThrowing: return "after-throwing";
        case AdviceKind::kAround: return "around";
        case AdviceKind::kFieldSet: return "field-set";
        case AdviceKind::kFieldGet: return "field-get";
    }
    return "?";
}

const char* withdraw_reason_name(WithdrawReason reason) {
    switch (reason) {
        case WithdrawReason::kExplicit: return "explicit";
        case WithdrawReason::kLeaseExpired: return "lease-expired";
        case WithdrawReason::kReplaced: return "replaced";
        case WithdrawReason::kBaseRestarted: return "base-restarted";
        case WithdrawReason::kQuarantined: return "quarantined";
    }
    return "?";
}

Aspect& Aspect::before(const std::string& pointcut, rt::EntryHook fn, int priority) {
    return before(Pointcut::parse(pointcut), std::move(fn), priority);
}

Aspect& Aspect::after(const std::string& pointcut, rt::ExitHook fn, int priority) {
    return after(Pointcut::parse(pointcut), std::move(fn), priority);
}

Aspect& Aspect::after_throwing(const std::string& pointcut, rt::ErrorHook fn, int priority) {
    return after_throwing(Pointcut::parse(pointcut), std::move(fn), priority);
}

Aspect& Aspect::around(const std::string& pointcut, rt::AroundHook fn, int priority) {
    return around(Pointcut::parse(pointcut), std::move(fn), priority);
}

Aspect& Aspect::on_field_set(const std::string& pointcut, rt::FieldSetHook fn, int priority) {
    return on_field_set(Pointcut::parse(pointcut), std::move(fn), priority);
}

Aspect& Aspect::on_field_get(const std::string& pointcut, rt::FieldGetHook fn, int priority) {
    return on_field_get(Pointcut::parse(pointcut), std::move(fn), priority);
}

Aspect& Aspect::before(Pointcut pointcut, rt::EntryHook fn, int priority) {
    AdviceBinding b{AdviceKind::kBefore, std::move(pointcut), priority,
                    std::move(fn), {}, {}, {}, {}, {}};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::after(Pointcut pointcut, rt::ExitHook fn, int priority) {
    AdviceBinding b{AdviceKind::kAfter, std::move(pointcut), priority,
                    {}, std::move(fn), {}, {}, {}, {}};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::after_throwing(Pointcut pointcut, rt::ErrorHook fn, int priority) {
    AdviceBinding b{AdviceKind::kAfterThrowing, std::move(pointcut), priority,
                    {}, {}, std::move(fn), {}, {}, {}};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::around(Pointcut pointcut, rt::AroundHook fn, int priority) {
    AdviceBinding b{AdviceKind::kAround, std::move(pointcut), priority,
                    {}, {}, {}, std::move(fn), {}, {}};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::on_field_set(Pointcut pointcut, rt::FieldSetHook fn, int priority) {
    AdviceBinding b{AdviceKind::kFieldSet, std::move(pointcut), priority,
                    {}, {}, {}, {}, std::move(fn), {}};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::on_field_get(Pointcut pointcut, rt::FieldGetHook fn, int priority) {
    AdviceBinding b{AdviceKind::kFieldGet, std::move(pointcut), priority,
                    {}, {}, {}, {}, {}, std::move(fn)};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::on_withdraw(std::function<void(WithdrawReason)> fn) {
    withdraw_fn_ = std::move(fn);
    return *this;
}

void Aspect::notify_withdraw(WithdrawReason reason) {
    if (withdraw_fn_) withdraw_fn_(reason);
}

}  // namespace pmp::prose
