#include "core/aspect.h"

namespace pmp::prose {

const char* advice_kind_name(AdviceKind kind) {
    switch (kind) {
        case AdviceKind::kBefore: return "before";
        case AdviceKind::kAfter: return "after";
        case AdviceKind::kAfterThrowing: return "after-throwing";
        case AdviceKind::kAround: return "around";
        case AdviceKind::kFieldSet: return "field-set";
        case AdviceKind::kFieldGet: return "field-get";
    }
    return "?";
}

const char* withdraw_reason_name(WithdrawReason reason) {
    switch (reason) {
        case WithdrawReason::kExplicit: return "explicit";
        case WithdrawReason::kLeaseExpired: return "lease-expired";
        case WithdrawReason::kReplaced: return "replaced";
        case WithdrawReason::kBaseRestarted: return "base-restarted";
        case WithdrawReason::kQuarantined: return "quarantined";
    }
    return "?";
}

Aspect& Aspect::before(const std::string& pointcut, rt::EntryHook fn, int priority) {
    AdviceBinding b{AdviceKind::kBefore, Pointcut::parse(pointcut), priority,
                    std::move(fn), {}, {}, {}, {}, {}};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::after(const std::string& pointcut, rt::ExitHook fn, int priority) {
    AdviceBinding b{AdviceKind::kAfter, Pointcut::parse(pointcut), priority,
                    {}, std::move(fn), {}, {}, {}, {}};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::after_throwing(const std::string& pointcut, rt::ErrorHook fn, int priority) {
    AdviceBinding b{AdviceKind::kAfterThrowing, Pointcut::parse(pointcut), priority,
                    {}, {}, std::move(fn), {}, {}, {}};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::around(const std::string& pointcut, rt::AroundHook fn, int priority) {
    AdviceBinding b{AdviceKind::kAround, Pointcut::parse(pointcut), priority,
                    {}, {}, {}, std::move(fn), {}, {}};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::on_field_set(const std::string& pointcut, rt::FieldSetHook fn, int priority) {
    AdviceBinding b{AdviceKind::kFieldSet, Pointcut::parse(pointcut), priority,
                    {}, {}, {}, {}, std::move(fn), {}};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::on_field_get(const std::string& pointcut, rt::FieldGetHook fn, int priority) {
    AdviceBinding b{AdviceKind::kFieldGet, Pointcut::parse(pointcut), priority,
                    {}, {}, {}, {}, {}, std::move(fn)};
    bindings_.push_back(std::move(b));
    return *this;
}

Aspect& Aspect::on_withdraw(std::function<void(WithdrawReason)> fn) {
    withdraw_fn_ = std::move(fn);
    return *this;
}

void Aspect::notify_withdraw(WithdrawReason reason) {
    if (withdraw_fn_) withdraw_fn_(reason);
}

}  // namespace pmp::prose
