// The run-time weaver (paper Fig 1).
//
// Weaving attaches an aspect's advice to every join point its pointcuts
// select, across every class registered in the node's Runtime — without
// stopping the application. Classes registered *after* weaving are
// instrumented on arrival (the JIT analogy: code compiled later still gets
// the hooks). Withdrawing restores the original dispatch exactly.
#pragma once

#include <map>
#include <atomic>
#include <memory>

#include "common/ids.h"
#include "core/aspect.h"
#include "core/matchplan.h"
#include "obs/trace.h"
#include "rt/runtime.h"

namespace pmp::prose {

/// How many join points a weave touched — used by tests, the weaving bench
/// (DESIGN.md E1) and MIDAS logging.
struct WeaveReport {
    std::size_t methods_matched = 0;
    std::size_t fields_matched = 0;
};

class Weaver {
public:
    explicit Weaver(rt::Runtime& runtime);
    ~Weaver();

    Weaver(const Weaver&) = delete;
    Weaver& operator=(const Weaver&) = delete;

    /// Weave an aspect into the runtime. The weaver keeps the aspect alive
    /// until withdrawal.
    AspectId weave(std::shared_ptr<Aspect> aspect);

    /// Run the aspect's shutdown procedure, then detach all of its advice.
    /// Returns false if the id is unknown (already withdrawn).
    bool withdraw(AspectId id, WithdrawReason reason = WithdrawReason::kExplicit);

    /// Withdraw everything (also runs from the destructor with kExplicit).
    void withdraw_all(WithdrawReason reason = WithdrawReason::kExplicit);

    std::shared_ptr<Aspect> find(AspectId id) const;
    const WeaveReport* report(AspectId id) const;
    std::size_t woven_count() const { return woven_.size(); }

    /// Per-advice outcome observer: fires after every advice execution with
    /// nullptr on success or the escaping exception on failure (which then
    /// propagates unchanged). One observer per weaver — the adaptation
    /// service uses it to quarantine extensions whose advice keeps
    /// crashing. Pass nullptr to detach. Applies to hooks woven after the
    /// call as well as existing ones (hooks capture the weaver, which
    /// outlives them in the node stack).
    using AdviceObserver = std::function<void(AspectId, const std::exception*)>;
    void set_advice_observer(AdviceObserver fn) { advice_observer_ = std::move(fn); }

    /// Per-dispatch gate: consulted before running any advice of an aspect.
    /// Returning false skips the advice for this join point — before/after/
    /// error/field hooks become no-ops and around advice passes straight
    /// through to proceed(), so the application call itself is untouched.
    /// One gate per weaver; the MIDAS receiver's resource governor uses it
    /// to suspend an over-budget extension without unweaving it (withdrawal
    /// runs shutdown advice and loses extension state — too heavy for a
    /// condition that clears at the next lease window). Pass nullptr to
    /// detach. Cost on the hot path when unset: one empty-function check.
    using DispatchGate = std::function<bool(AspectId)>;
    void set_dispatch_gate(DispatchGate fn) { dispatch_gate_ = std::move(fn); }

    rt::Runtime& runtime() { return runtime_; }

    /// The weaver's pointcut-match cache (diagnostics, tests).
    const MatchPlan& plan() const { return plan_; }

private:
    struct Woven {
        std::shared_ptr<Aspect> aspect;
        WeaveReport report;
        /// Every member this aspect hooked — withdraw walks exactly these
        /// instead of sweeping every member of every type.
        std::vector<rt::Method*> hooked_methods;
        std::vector<rt::Field*> hooked_fields;
        /// Causal position of the weave span. The first advice execution
        /// emits an `advice.first_dispatch` instant under this context, so
        /// install → verify → weave → first dispatch reads as one tree even
        /// though the dispatch happens on an unrelated application call.
        obs::TraceContext weave_ctx;
        /// Dispatch may run on many shard workers at once; exactly one of
        /// them wins the right to record the first-dispatch instant.
        std::atomic<bool> first_dispatched{false};
    };

    void weave_into_type(rt::TypeInfo& type, AspectId id, Woven& woven);
    void on_type_registered(rt::TypeInfo& type);
    bool allows(AspectId id) const { return !dispatch_gate_ || dispatch_gate_(id); }

    rt::Runtime& runtime_;
    rt::Runtime::ObserverId observer_;
    MatchPlan plan_;
    IdGenerator<AspectId> ids_;
    /// Woven entries are heap-pinned: installed hooks capture a raw
    /// pointer to their Woven, and a withdrawn entry is *retired* through
    /// rt::EpochDomain rather than deleted — a reader on another shard may
    /// still be walking a superseded hook-table snapshot whose closures
    /// dereference it until the grace period passes.
    std::map<AspectId, std::unique_ptr<Woven>> woven_;
    AdviceObserver advice_observer_;
    DispatchGate dispatch_gate_;
};

}  // namespace pmp::prose
