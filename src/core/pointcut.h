// Pointcut expression language (the paper's "crosscut" specifications).
//
// A pointcut describes *where* an extension applies, e.g. the paper's
//
//     before methods-with-signature 'void *.send*(byte[] x, ..)'
//
// is written here as the pointcut   call(void *.send*(blob, ..))   bound to
// before-advice. Grammar (AspectJ-lite):
//
//   pointcut  := and_or                        -- '&&' binds tighter than '||'
//   primitive := call(SIG) | execution(SIG)    -- synonyms in this system
//              | fieldset(FIELD) | fieldget(FIELD)
//              | within(TYPEPAT)
//              | '!' pointcut | '(' pointcut ')'
//   SIG       := RETPAT CLASSPAT.METHODPAT(PARAMS)
//   PARAMS    := empty | '..' | TYPEPAT (',' TYPEPAT)* (',' '..')?
//   FIELD     := CLASSPAT.FIELDPAT
//
// Patterns use '*' (any run of characters) and '?' (one character).
// RETPAT/TYPEPAT match against rt type-kind names ("void", "int", "blob",
// ...); CLASSPAT against the service class name; METHODPAT/FIELDPAT against
// member names.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rt/type.h"

namespace pmp::prose {

/// Glob match with '*' and '?'.
bool glob_match(std::string_view pattern, std::string_view text);

/// Memoizes glob_match verdicts per (pattern, text) pair. During a plan
/// build the same class/member patterns are tested against the same names
/// over and over (every binding × every member of a type); results are
/// pure functions of the two strings, so a verdict never goes stale.
class GlobMemo {
public:
    bool match(std::string_view pattern, std::string_view text);

    void clear() { memo_.clear(); }
    std::size_t size() const { return memo_.size(); }

private:
    std::unordered_map<std::string, bool> memo_;
};

/// Parsed, matchable pointcut. Value type (cheap to copy via shared nodes).
class Pointcut {
public:
    /// Parse an expression; throws ParseError on bad syntax.
    static Pointcut parse(const std::string& source);

    /// Does this pointcut select execution of `method` on class `type_name`?
    /// (Chain-of-one: subtype patterns like "Device+" only match the name
    /// itself. Use the TypeInfo overloads to honour inheritance.)
    bool matches_method(std::string_view type_name, const rt::MethodDecl& method) const;

    /// Does it select writes (resp. reads) of `field` on `type_name`?
    bool matches_field_set(std::string_view type_name, const rt::FieldDecl& field) const;
    bool matches_field_get(std::string_view type_name, const rt::FieldDecl& field) const;

    /// Inheritance-aware overloads: a class pattern "Device+" selects the
    /// type if any ancestor (or the type itself) matches "Device"; a plain
    /// pattern selects the concrete class only.
    bool matches_method(const rt::TypeInfo& type, const rt::MethodDecl& method) const;
    bool matches_field_set(const rt::TypeInfo& type, const rt::FieldDecl& field) const;
    bool matches_field_get(const rt::TypeInfo& type, const rt::FieldDecl& field) const;

    /// Memoized variants: identical verdicts, but every glob test is
    /// routed through `memo` (used by MatchPlan during bulk weaves).
    bool matches_method(const rt::TypeInfo& type, const rt::MethodDecl& method,
                        GlobMemo& memo) const;
    bool matches_field_set(const rt::TypeInfo& type, const rt::FieldDecl& field,
                           GlobMemo& memo) const;
    bool matches_field_get(const rt::TypeInfo& type, const rt::FieldDecl& field,
                           GlobMemo& memo) const;

    /// Original source text (for packages, logs and round-trips).
    const std::string& source() const;

    /// Parsed representation; public so the parser (an implementation
    /// detail in pointcut.cpp) can build it, opaque to everyone else.
    struct Node;

private:
    explicit Pointcut(std::shared_ptr<const Node> root, std::string source);

    std::shared_ptr<const Node> root_;
    std::shared_ptr<const std::string> source_;
};

}  // namespace pmp::prose
