#include "core/matchplan.h"

namespace pmp::prose {

MatchPlan::MatchPlan()
    : hits_(&obs::Registry::global().counter("prose.matchplan.hits")),
      misses_(&obs::Registry::global().counter("prose.matchplan.misses")) {}

void MatchPlan::note_type_registered() {
    ++epoch_;
    last_type_registration_ = epoch_;
    // Entries stay in the table and are rebuilt on next touch (see
    // entry_for); the glob memo is value-based and never goes stale, but
    // clearing it here bounds its growth to the life of a type population.
    memo_.clear();
}

MatchPlan::Entry& MatchPlan::entry_for(const Pointcut& pc, const rt::TypeInfo& type) {
    auto [it, fresh] = table_.try_emplace({pc.source(), &type});
    Entry& e = it->second;
    if (!fresh && e.built_epoch < last_type_registration_) {
        // Conservative: a type registered since this entry was built. The
        // member model makes existing matches immutable, but rebuilding
        // here keeps the plan correct even if that ever changes.
        e = Entry{};
    }
    if (e.built_epoch < last_type_registration_ || fresh) e.built_epoch = epoch_;
    return e;
}

const std::vector<rt::Method*>& MatchPlan::methods_for(const Pointcut& pc,
                                                       rt::TypeInfo& type) {
    Entry& e = entry_for(pc, type);
    if (e.methods_built) {
        hits_->inc();
        return e.methods;
    }
    misses_->inc();
    for (rt::Method* method : type.methods()) {
        if (pc.matches_method(type, method->decl(), memo_)) e.methods.push_back(method);
    }
    e.methods_built = true;
    return e.methods;
}

const std::vector<rt::Field*>& MatchPlan::fields_set_for(const Pointcut& pc,
                                                         rt::TypeInfo& type) {
    Entry& e = entry_for(pc, type);
    if (e.set_built) {
        hits_->inc();
        return e.fields_set;
    }
    misses_->inc();
    for (rt::Field& field : type.fields()) {
        if (pc.matches_field_set(type, field.decl(), memo_)) e.fields_set.push_back(&field);
    }
    e.set_built = true;
    return e.fields_set;
}

const std::vector<rt::Field*>& MatchPlan::fields_get_for(const Pointcut& pc,
                                                         rt::TypeInfo& type) {
    Entry& e = entry_for(pc, type);
    if (e.get_built) {
        hits_->inc();
        return e.fields_get;
    }
    misses_->inc();
    for (rt::Field& field : type.fields()) {
        if (pc.matches_field_get(type, field.decl(), memo_)) e.fields_get.push_back(&field);
    }
    e.get_built = true;
    return e.fields_get;
}

}  // namespace pmp::prose
