// MatchPlan: the weaver's compiled view of "which members does this
// pointcut select on this type?".
//
// Without a plan, every weave re-evaluates every pointcut against every
// member of every type — quadratic churn when a fleet pushes the same
// extension to a hundred objects, or when late type registration re-weaves
// every installed aspect. The plan caches match results per (pointcut
// source, TypeInfo) and memoizes the underlying glob verdicts, so each
// distinct (pattern, name) pair is matched once per node, not once per
// weave.
//
// Validity is tracked by an epoch counter the Weaver bumps on weave,
// withdraw and type registration. Member sets of a registered type never
// change, so only type registration actually invalidates entries; weave/
// withdraw bumps advance the epoch (visible in diagnostics, and the guard
// that would catch a future mutation of the member model) without
// discarding work.
//
// Cached Method*/Field* stay valid for the plan's lifetime: the Runtime
// pins TypeInfos, which own their members at stable addresses, and the
// Weaver (which owns the plan) never outlives its Runtime.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/pointcut.h"
#include "obs/metrics.h"
#include "rt/type.h"

namespace pmp::prose {

class MatchPlan {
public:
    MatchPlan();

    /// Members of `type` selected by `pc`, cached. The three member kinds
    /// are filled lazily and independently: a method pointcut used only
    /// with before-advice never pays for field matching.
    const std::vector<rt::Method*>& methods_for(const Pointcut& pc, rt::TypeInfo& type);
    const std::vector<rt::Field*>& fields_set_for(const Pointcut& pc, rt::TypeInfo& type);
    const std::vector<rt::Field*>& fields_get_for(const Pointcut& pc, rt::TypeInfo& type);

    /// Epoch discipline (see file comment). The Weaver calls these.
    void note_weave() { ++epoch_; }
    void note_withdraw() { ++epoch_; }
    void note_type_registered();

    std::uint64_t epoch() const { return epoch_; }
    std::size_t cached_entries() const { return table_.size(); }
    std::size_t memo_size() const { return memo_.size(); }

private:
    struct Entry {
        std::uint64_t built_epoch = 0;
        bool methods_built = false;
        bool set_built = false;
        bool get_built = false;
        std::vector<rt::Method*> methods;
        std::vector<rt::Field*> fields_set;
        std::vector<rt::Field*> fields_get;
    };

    Entry& entry_for(const Pointcut& pc, const rt::TypeInfo& type);

    std::map<std::pair<std::string, const rt::TypeInfo*>, Entry> table_;
    GlobMemo memo_;
    std::uint64_t epoch_ = 0;
    std::uint64_t last_type_registration_ = 0;  ///< epoch of the newest type
    obs::Counter* hits_;
    obs::Counter* misses_;
};

}  // namespace pmp::prose
