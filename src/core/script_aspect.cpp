#include "core/script_aspect.h"

#include "common/error.h"
#include "rt/object.h"

namespace pmp::prose {

using rt::Value;
using script::BuiltinRegistry;

/// The join point the advice currently executing can see. Saved/restored
/// around every script invocation so nested interceptions (e.g. proceed()
/// triggering further woven calls) see their own join point.
struct CurrentJoinPoint {
    rt::CallFrame* frame = nullptr;
    const std::function<Value()>* proceed = nullptr;
    std::string error_message;

    rt::ServiceObject* field_self = nullptr;
    const rt::FieldDecl* field = nullptr;
    const Value* old_value = nullptr;
    Value* new_value = nullptr;
};

struct ScriptAspect::State {
    std::unique_ptr<script::Engine> engine;
    CurrentJoinPoint jp;

    rt::CallFrame& frame() {
        if (!jp.frame) throw ScriptError("no method join point is active");
        return *jp.frame;
    }

    rt::ServiceObject& target() {
        if (jp.frame) return jp.frame->self;
        if (jp.field_self) return *jp.field_self;
        throw ScriptError("no join point is active");
    }

    /// Run `function` with the given join point installed.
    Value fire(const std::string& function, CurrentJoinPoint next) {
        CurrentJoinPoint saved = std::move(jp);
        jp = std::move(next);
        try {
            Value out = engine->call(function, {});
            jp = std::move(saved);
            return out;
        } catch (...) {
            jp = std::move(saved);
            throw;
        }
    }
};

const std::vector<std::pair<std::string, std::string>>& ctx_builtin_names() {
    static const std::vector<std::pair<std::string, std::string>> kNames = {
        {"ctx.type", ""},        {"ctx.target", ""},     {"ctx.method", ""},
        {"ctx.args", ""},        {"ctx.arg", ""},        {"ctx.set_arg", ""},
        {"ctx.result", ""},      {"ctx.set_result", ""}, {"ctx.proceed", ""},
        {"ctx.error", ""},       {"ctx.deny", ""},       {"ctx.set_note", ""},
        {"ctx.note", ""},        {"ctx.field", ""},      {"ctx.oldval", ""},
        {"ctx.newval", ""},      {"ctx.set_newval", ""}, {"ctx.get_field", "target"},
        {"ctx.set_field", "target"},
    };
    return kNames;
}

void ScriptAspect::install_ctx_builtins(BuiltinRegistry& reg,
                                        const std::shared_ptr<State>& state) {
    State* s = state.get();  // registry lives inside the interpreter owned by state

    reg.add("ctx.type", "", [s](rt::List&) -> Value {
        return Value{s->target().type().name()};
    });
    reg.add("ctx.target", "", [s](rt::List&) -> Value { return Value{s->target().name()}; });
    reg.add("ctx.method", "", [s](rt::List&) -> Value {
        return Value{s->frame().method.decl().name};
    });
    reg.add("ctx.args", "", [s](rt::List&) -> Value { return Value{s->frame().args}; });
    reg.add("ctx.arg", "", [s](rt::List& args) -> Value {
        if (args.size() != 1 || !args[0].is_int()) throw ScriptError("ctx.arg expects an index");
        auto& call_args = s->frame().args;
        std::int64_t i = args[0].as_int();
        if (i < 0 || i >= static_cast<std::int64_t>(call_args.size())) {
            throw ScriptError("ctx.arg index out of range");
        }
        return call_args[static_cast<std::size_t>(i)];
    });
    reg.add("ctx.set_arg", "", [s](rt::List& args) -> Value {
        if (args.size() != 2 || !args[0].is_int()) {
            throw ScriptError("ctx.set_arg expects (index, value)");
        }
        auto& call_args = s->frame().args;
        std::int64_t i = args[0].as_int();
        if (i < 0 || i >= static_cast<std::int64_t>(call_args.size())) {
            throw ScriptError("ctx.set_arg index out of range");
        }
        call_args[static_cast<std::size_t>(i)] = args[1];
        return Value{};
    });
    reg.add("ctx.result", "", [s](rt::List&) -> Value { return s->frame().result; });
    reg.add("ctx.set_result", "", [s](rt::List& args) -> Value {
        if (args.size() != 1) throw ScriptError("ctx.set_result expects (value)");
        s->frame().result = args[0];
        return Value{};
    });
    reg.add("ctx.proceed", "", [s](rt::List&) -> Value {
        if (!s->jp.proceed) throw ScriptError("ctx.proceed is only valid in around advice");
        s->frame().result = (*s->jp.proceed)();
        return s->frame().result;
    });
    reg.add("ctx.error", "", [s](rt::List&) -> Value { return Value{s->jp.error_message}; });
    // Per-call annotations (implicit context shared by cooperating
    // extensions along one invocation, e.g. session info).
    reg.add("ctx.set_note", "", [s](rt::List& args) -> Value {
        if (args.size() != 2 || !args[0].is_str()) {
            throw ScriptError("ctx.set_note expects (key, value)");
        }
        s->frame().notes.set(args[0].as_str(), args[1]);
        return Value{};
    });
    reg.add("ctx.note", "", [s](rt::List& args) -> Value {
        if (args.size() != 1 || !args[0].is_str()) {
            throw ScriptError("ctx.note expects (key)");
        }
        const Value* v = s->frame().notes.find(args[0].as_str());
        return v ? *v : Value{};
    });
    reg.add("ctx.deny", "", [s](rt::List& args) -> Value {
        (void)s;
        std::string why = args.empty() ? "denied by extension"
                                       : (args[0].is_str() ? args[0].as_str()
                                                           : args[0].to_string());
        throw AccessDenied(why);
    });

    reg.add("ctx.field", "", [s](rt::List&) -> Value {
        if (!s->jp.field) throw ScriptError("no field join point is active");
        return Value{s->jp.field->name};
    });
    reg.add("ctx.oldval", "", [s](rt::List&) -> Value {
        if (!s->jp.old_value) throw ScriptError("ctx.oldval: no field-set join point");
        return *s->jp.old_value;
    });
    reg.add("ctx.newval", "", [s](rt::List&) -> Value {
        if (!s->jp.new_value) throw ScriptError("ctx.newval: no field join point");
        return *s->jp.new_value;
    });
    reg.add("ctx.set_newval", "", [s](rt::List& args) -> Value {
        if (args.size() != 1) throw ScriptError("ctx.set_newval expects (value)");
        if (!s->jp.new_value) throw ScriptError("ctx.set_newval: no field join point");
        *s->jp.new_value = args[0];
        return Value{};
    });

    // Target state access is a real capability: it lets the extension read
    // and write the adapted object's fields directly.
    reg.add("ctx.get_field", "target", [s](rt::List& args) -> Value {
        if (args.size() != 1 || !args[0].is_str()) {
            throw ScriptError("ctx.get_field expects (name)");
        }
        return s->target().peek(args[0].as_str());
    });
    reg.add("ctx.set_field", "target", [s](rt::List& args) -> Value {
        if (args.size() != 2 || !args[0].is_str()) {
            throw ScriptError("ctx.set_field expects (name, value)");
        }
        s->target().poke(args[0].as_str(), args[1]);
        return Value{};
    });

    // Keep ctx_builtin_names() honest: every advertised name must really be
    // installed (a drifting list would make static checks false-reject).
    for (const auto& [name, _] : ctx_builtin_names()) {
        if (!reg.find(name)) {
            throw ScriptError("internal: ctx builtin list names unknown '" + name + "'");
        }
    }
}

ScriptAspect::ScriptAspect(std::string name, const std::string& source,
                           std::vector<ScriptBinding> bindings, script::Sandbox sandbox,
                           const BuiltinRegistry& host_builtins, Value config,
                           script::EngineMode mode)
    : ScriptAspect(std::move(name),
                   script::compile(std::make_shared<const script::Program>(
                       script::parse(source))),
                   std::move(bindings), std::move(sandbox), host_builtins,
                   std::move(config), mode) {}

ScriptAspect::ScriptAspect(std::string name,
                           std::shared_ptr<const script::CompiledUnit> unit,
                           std::vector<ScriptBinding> bindings, script::Sandbox sandbox,
                           const BuiltinRegistry& host_builtins, Value config,
                           script::EngineMode mode)
    : state_(std::make_shared<State>()) {
    std::shared_ptr<const script::Program> program = unit->program;

    // Compose the extension's view of the world: core library + host
    // facilities + join-point access.
    auto registry = std::make_shared<BuiltinRegistry>(host_builtins);
    install_ctx_builtins(*registry, state_);

    if (mode == script::EngineMode::kVm) {
        state_->engine = std::make_unique<script::Vm>(std::move(unit), std::move(sandbox),
                                                      std::move(registry));
    } else {
        state_->engine = std::make_unique<script::Interpreter>(program, std::move(sandbox),
                                                               std::move(registry));
    }
    state_->engine->set_global("config", std::move(config));
    state_->engine->run_top_level();

    aspect_ = std::make_shared<Aspect>(std::move(name));
    std::shared_ptr<State> state = state_;

    for (const ScriptBinding& binding : bindings) {
        if (!program->find_function(binding.function)) {
            throw ScriptError("extension script defines no function '" + binding.function + "'");
        }
        const std::string fn = binding.function;
        Pointcut pc = binding.parsed ? *binding.parsed : Pointcut::parse(binding.pointcut);
        switch (binding.kind) {
            case AdviceKind::kBefore:
                aspect_->before(
                    std::move(pc),
                    [state, fn](rt::CallFrame& frame) {
                        CurrentJoinPoint jp;
                        jp.frame = &frame;
                        state->fire(fn, std::move(jp));
                    },
                    binding.priority);
                break;
            case AdviceKind::kAfter:
                aspect_->after(
                    std::move(pc),
                    [state, fn](rt::CallFrame& frame) {
                        CurrentJoinPoint jp;
                        jp.frame = &frame;
                        state->fire(fn, std::move(jp));
                    },
                    binding.priority);
                break;
            case AdviceKind::kAfterThrowing:
                aspect_->after_throwing(
                    std::move(pc),
                    [state, fn](rt::CallFrame& frame, std::exception_ptr error) {
                        CurrentJoinPoint jp;
                        jp.frame = &frame;
                        try {
                            if (error) std::rethrow_exception(error);
                        } catch (const std::exception& e) {
                            jp.error_message = e.what();
                        } catch (...) {
                            jp.error_message = "unknown error";
                        }
                        state->fire(fn, std::move(jp));
                    },
                    binding.priority);
                break;
            case AdviceKind::kAround:
                aspect_->around(
                    std::move(pc),
                    [state, fn](rt::CallFrame& frame,
                                const std::function<Value()>& proceed) -> Value {
                        CurrentJoinPoint jp;
                        jp.frame = &frame;
                        jp.proceed = &proceed;
                        Value out = state->fire(fn, std::move(jp));
                        // Convention: if the function returns a value, that
                        // is the call result; a null return keeps whatever
                        // proceed()/set_result established.
                        return out.is_null() ? frame.result : out;
                    },
                    binding.priority);
                break;
            case AdviceKind::kFieldSet:
                aspect_->on_field_set(
                    std::move(pc),
                    [state, fn](rt::ServiceObject& self, const rt::FieldDecl& field,
                                const Value& old_value, Value& new_value) {
                        CurrentJoinPoint jp;
                        jp.field_self = &self;
                        jp.field = &field;
                        jp.old_value = &old_value;
                        jp.new_value = &new_value;
                        state->fire(fn, std::move(jp));
                    },
                    binding.priority);
                break;
            case AdviceKind::kFieldGet:
                aspect_->on_field_get(
                    std::move(pc),
                    [state, fn](rt::ServiceObject& self, const rt::FieldDecl& field,
                                Value& value) {
                        CurrentJoinPoint jp;
                        jp.field_self = &self;
                        jp.field = &field;
                        jp.new_value = &value;
                        state->fire(fn, std::move(jp));
                    },
                    binding.priority);
                break;
        }
    }

    if (program->find_function("onShutdown")) {
        aspect_->on_withdraw([state](WithdrawReason reason) {
            // The shutdown procedure must not prevent withdrawal; a failing
            // script forfeits its last words.
            try {
                state->engine->call("onShutdown",
                                    {Value{std::string(withdraw_reason_name(reason))}});
            } catch (const Error&) {
            }
        });
    }
}

script::Engine& ScriptAspect::engine() { return *state_->engine; }

}  // namespace pmp::prose
