#include "core/weaver.h"

namespace pmp::prose {

Weaver::Weaver(rt::Runtime& runtime) : runtime_(runtime) {
    observer_ = runtime_.add_type_observer([this](rt::TypeInfo& t) { on_type_registered(t); });
}

Weaver::~Weaver() {
    withdraw_all(WithdrawReason::kExplicit);
    runtime_.remove_type_observer(observer_);
}

void Weaver::weave_into_type(rt::TypeInfo& type, AspectId id, Woven& woven) {
    for (const AdviceBinding& binding : woven.aspect->bindings()) {
        switch (binding.kind) {
            case AdviceKind::kBefore:
            case AdviceKind::kAfter:
            case AdviceKind::kAfterThrowing:
            case AdviceKind::kAround:
                for (rt::Method* method : type.methods()) {
                    if (!binding.pointcut.matches_method(type, method->decl())) continue;
                    ++woven.report.methods_matched;
                    switch (binding.kind) {
                        case AdviceKind::kBefore:
                            method->add_entry_hook(id.value, binding.priority, binding.before);
                            break;
                        case AdviceKind::kAfter:
                            method->add_exit_hook(id.value, binding.priority, binding.after);
                            break;
                        case AdviceKind::kAfterThrowing:
                            method->add_error_hook(id.value, binding.priority,
                                                   binding.after_throwing);
                            break;
                        default:
                            method->add_around_hook(id.value, binding.priority, binding.around);
                            break;
                    }
                }
                break;
            case AdviceKind::kFieldSet:
                for (rt::Field& field : type.fields()) {
                    if (!binding.pointcut.matches_field_set(type, field.decl())) continue;
                    ++woven.report.fields_matched;
                    field.add_set_hook(id.value, binding.priority, binding.field_set);
                }
                break;
            case AdviceKind::kFieldGet:
                for (rt::Field& field : type.fields()) {
                    if (!binding.pointcut.matches_field_get(type, field.decl())) continue;
                    ++woven.report.fields_matched;
                    field.add_get_hook(id.value, binding.priority, binding.field_get);
                }
                break;
        }
    }
}

AspectId Weaver::weave(std::shared_ptr<Aspect> aspect) {
    AspectId id = ids_.next();
    auto [it, _] = woven_.emplace(id, Woven{std::move(aspect), WeaveReport{}});
    for (const auto& type : runtime_.types()) {
        weave_into_type(*type, id, it->second);
    }
    return id;
}

bool Weaver::withdraw(AspectId id, WithdrawReason reason) {
    auto it = woven_.find(id);
    if (it == woven_.end()) return false;
    // Shutdown procedure first (paper: the extension is notified before
    // leaving so it can reach a consistent state), then unhook.
    it->second.aspect->notify_withdraw(reason);
    for (const auto& type : runtime_.types()) {
        for (rt::Method* method : type->methods()) method->remove_hooks(id.value);
        for (rt::Field& field : type->fields()) field.remove_hooks(id.value);
    }
    woven_.erase(it);
    return true;
}

void Weaver::withdraw_all(WithdrawReason reason) {
    while (!woven_.empty()) {
        withdraw(woven_.begin()->first, reason);
    }
}

std::shared_ptr<Aspect> Weaver::find(AspectId id) const {
    auto it = woven_.find(id);
    return it == woven_.end() ? nullptr : it->second.aspect;
}

const WeaveReport* Weaver::report(AspectId id) const {
    auto it = woven_.find(id);
    return it == woven_.end() ? nullptr : &it->second.report;
}

void Weaver::on_type_registered(rt::TypeInfo& type) {
    for (auto& [id, woven] : woven_) {
        weave_into_type(type, id, woven);
    }
}

}  // namespace pmp::prose
